"""Quickstart: 3.5D-block a 7-point stencil and verify it against naive.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    Field3D,
    SevenPointStencil,
    TrafficStats,
    run_3_5d,
    run_naive,
)


def main() -> None:
    # A 7-point Jacobi stencil (e.g. 3D heat diffusion), single precision.
    kernel = SevenPointStencil(alpha=0.4, beta=0.1)
    field = Field3D.random((64, 64, 64), dtype=np.float32, seed=0)
    steps = 8

    # Reference: plain Jacobi sweeps, one full-grid pass per time step.
    naive_traffic = TrafficStats()
    reference = run_naive(kernel, field, steps, traffic=naive_traffic)

    # 3.5D blocking: dim_T = 2 time steps fused per memory round trip,
    # 48x48 XY tiles streamed through Z.
    blocked_traffic = TrafficStats()
    blocked = run_3_5d(
        kernel, field, steps, dim_t=2, tile_y=48, tile_x=48,
        traffic=blocked_traffic,
    )

    # Blocking reorganizes the schedule, never the arithmetic:
    assert np.array_equal(blocked.data, reference.data), "results must be bit-identical"

    ratio = naive_traffic.total_bytes / blocked_traffic.total_bytes
    print("3.5D blocking quickstart")
    print(f"  grid                 : 64^3 x {steps} steps, SP")
    print(f"  naive external bytes : {naive_traffic.total_bytes / 1e6:8.1f} MB")
    print(f"  3.5D external bytes  : {blocked_traffic.total_bytes / 1e6:8.1f} MB")
    print(f"  bandwidth reduction  : {ratio:.2f}X (ideal: dim_T / kappa ~ 1.9X)")
    print("  results              : bit-identical to the naive reference")


if __name__ == "__main__":
    main()
