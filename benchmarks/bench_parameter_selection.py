"""Section VI parameter choices: dim_T, dim_X, κ for every configuration.

Regenerates the blocking parameters the paper derives for the 7-point
stencil and LBM on both platforms, including the GPU LBM infeasibility and
the 4D-blocking overhead comparisons.
"""

import numpy as np
import pytest

from repro.core import kappa_4d, tune
from repro.gpu import plan_7pt_gpu, plan_lbm_gpu
from repro.lbm import LBMKernel
from repro.machine import CORE_I7, GTX_285
from repro.perf import format_table
from repro.stencils import SevenPointStencil

from .conftest import banner, record

#: paper Section VI: (dim_T, dim_X, kappa)
PAPER_PARAMS = {
    "7pt cpu sp": (2, 360, 1.02),
    "7pt cpu dp": (2, 256, 1.04),
    "lbm cpu sp": (3, 64, 1.21),
    "lbm cpu dp": (3, 44, 1.34),
    "7pt gpu sp": (2, 32, 1.31),
}


def select_all():
    seven = SevenPointStencil()
    lbm = LBMKernel(np.zeros((4, 4, 4), dtype=np.uint8))
    out = {}
    for name, kernel, dtype in (
        ("7pt cpu sp", seven, np.float32),
        ("7pt cpu dp", seven, np.float64),
        ("lbm cpu sp", lbm, np.float32),
        ("lbm cpu dp", lbm, np.float64),
    ):
        t = tune(kernel, CORE_I7, dtype, derated=False)
        out[name] = (t.params.dim_t, t.params.dim_x, t.params.kappa)
    p = plan_7pt_gpu("sp")
    out["7pt gpu sp"] = (p.dim_t, p.dim_x, p.kappa)
    return out


def test_section6_parameters(benchmark):
    result = benchmark(select_all)
    rows = [
        (
            name,
            f"{dt} / {PAPER_PARAMS[name][0]}",
            f"{dx} / {PAPER_PARAMS[name][1]}",
            f"{k:.3f} / {PAPER_PARAMS[name][2]:.2f}",
        )
        for name, (dt, dx, k) in result.items()
    ]
    print(banner("Section VI parameters (ours / paper)"))
    print(format_table(["configuration", "dim_T", "dim_X", "kappa"], rows))
    for name, (dt, dx, k) in result.items():
        pdt, pdx, pk = PAPER_PARAMS[name]
        assert dt == pdt, name
        assert dx == pdx, name
        assert k == pytest.approx(pk, abs=0.015), name
    record(benchmark, **{n.replace(" ", "_"): v[1] for n, v in result.items()})


def test_lbm_gpu_infeasibility(benchmark):
    """Section VI-B: 16 KB shared memory cannot host LBM SP blocking."""
    plan = benchmark(plan_lbm_gpu, "sp")
    print(banner("Section VI-B: LBM on GTX 285"))
    print(f"dim_T required: {plan.dim_t} (paper: >= 6.1)")
    print(f"dim_X bound   : {plan.dim_x} (paper: <= 2; <= 4 at dim_T=2)")
    print(f"verdict       : {'feasible' if plan.feasible else plan.reason}")
    assert not plan.feasible
    assert plan.dim_t == 7
    assert plan.dim_x <= 3


def test_4d_blocking_overheads(benchmark):
    """Section VI: the 4D compute overheads that rule 4D blocking out."""
    mb4 = 4 << 20

    def compute():
        side = lambda e, t: round((mb4 / (e * t)) ** (1 / 3))
        return {
            "7pt sp": kappa_4d(1, 2, side(4, 2)),
            "7pt dp": kappa_4d(1, 2, side(8, 2)),
            "lbm sp": kappa_4d(1, 3, side(80, 3)),
            "lbm dp": kappa_4d(1, 3, side(160, 3)),
        }

    result = benchmark(compute)
    paper = {"7pt sp": 1.18, "7pt dp": 1.21, "lbm sp": 2.03, "lbm dp": 2.71}
    rows = [(k, f"{v:.2f}", paper[k]) for k, v in result.items()]
    print(banner("Section VI: 4D blocking compute overheads (ours vs paper)"))
    print(format_table(["kernel", "model", "paper"], rows))
    for k, v in result.items():
        assert v == pytest.approx(paper[k], rel=0.12), k
