"""3D grid containers used by the stencil and LBM solvers.

The paper lays data out with X as the fastest-varying dimension followed by Y
and Z (Section V, Notation).  We use C-ordered NumPy arrays indexed
``[component, z, y, x]`` so that an XY *sub-plane* — the unit the 2.5D/3.5D
schemes stream through the cache — is a contiguous-ish 2D slice ``data[:, z]``.

A :class:`Field3D` carries ``ncomp`` values per grid point: 1 for PDE stencils
and 19 for the D3Q19 lattice (structure-of-arrays layout, Section III-B).

Boundary handling follows the paper's Jacobi setting: a shell of width equal
to the stencil radius is held fixed for all time ("z0 (boundary condition)
does not change with time", Section V-C).  Only interior points are updated.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Field3D", "copy_shell", "interior_slices", "interior_points"]


@dataclass
class Field3D:
    """A multi-component scalar field on a 3D grid.

    Parameters
    ----------
    data:
        Array of shape ``(ncomp, nz, ny, nx)``.
    """

    data: np.ndarray

    def __post_init__(self) -> None:
        if self.data.ndim != 4:
            raise ValueError(
                f"Field3D expects (ncomp, nz, ny, nx) data, got shape {self.data.shape}"
            )

    # -- constructors ------------------------------------------------------
    @classmethod
    def zeros(cls, shape: tuple[int, int, int], ncomp: int = 1, dtype=np.float64) -> "Field3D":
        """Allocate an all-zero field; ``shape`` is ``(nz, ny, nx)``."""
        nz, ny, nx = shape
        return cls(np.zeros((ncomp, nz, ny, nx), dtype=dtype))

    @classmethod
    def from_array(cls, arr: np.ndarray) -> "Field3D":
        """Wrap a 3D array as a single-component field (no copy)."""
        if arr.ndim == 3:
            return cls(arr[np.newaxis])
        return cls(arr)

    @classmethod
    def random(
        cls,
        shape: tuple[int, int, int],
        ncomp: int = 1,
        dtype=np.float64,
        seed: int | None = None,
    ) -> "Field3D":
        """A field with uniform random values in [0, 1); useful in tests."""
        rng = np.random.default_rng(seed)
        nz, ny, nx = shape
        return cls(rng.random((ncomp, nz, ny, nx)).astype(dtype))

    # -- basic properties --------------------------------------------------
    @property
    def ncomp(self) -> int:
        return self.data.shape[0]

    @property
    def shape(self) -> tuple[int, int, int]:
        """Grid shape ``(nz, ny, nx)``."""
        return self.data.shape[1:]

    @property
    def nz(self) -> int:
        return self.data.shape[1]

    @property
    def ny(self) -> int:
        return self.data.shape[2]

    @property
    def nx(self) -> int:
        return self.data.shape[3]

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def itemsize(self) -> int:
        return self.data.dtype.itemsize

    def element_size(self) -> int:
        """Bytes per grid point across all components (the paper's E)."""
        return self.ncomp * self.itemsize

    def nbytes_interior(self, radius: int) -> int:
        """Bytes occupied by the interior (updated) region for ``radius``."""
        return interior_points(self.shape, radius) * self.element_size()

    # -- views -------------------------------------------------------------
    def plane(self, z: int) -> np.ndarray:
        """View of the XY sub-plane at height ``z``, shape ``(ncomp, ny, nx)``."""
        return self.data[:, z]

    def copy(self) -> "Field3D":
        return Field3D(self.data.copy())

    def like(self) -> "Field3D":
        """An uninitialized field with identical shape/dtype."""
        return Field3D(np.empty_like(self.data))

    def __eq__(self, other: object) -> bool:  # pragma: no cover - convenience
        if not isinstance(other, Field3D):
            return NotImplemented
        return self.data.shape == other.data.shape and bool(
            np.array_equal(self.data, other.data)
        )


def interior_slices(radius: int) -> tuple[slice, slice, slice]:
    """Slices selecting the updated interior ``[R, n-R)`` in z, y, x."""
    s = slice(radius, -radius if radius else None)
    return (s, s, s)


def interior_points(shape: tuple[int, int, int], radius: int) -> int:
    """Number of interior (updated) grid points for a radius-R kernel."""
    nz, ny, nx = shape
    iz, iy, ix = (max(0, n - 2 * radius) for n in (nz, ny, nx))
    return iz * iy * ix


def copy_shell(src: Field3D, dst: Field3D, radius: int) -> None:
    """Copy the fixed boundary shell of width ``radius`` from src to dst.

    Jacobi double-buffering keeps two grids; both must carry the (constant)
    boundary values.  This is called once at solver setup, not per sweep.
    """
    if radius <= 0:
        return
    if src.data.shape != dst.data.shape:
        raise ValueError("shape mismatch")
    r = radius
    s, d = src.data, dst.data
    # Six slabs; overlapping corners are copied more than once, which is fine.
    d[:, :r, :, :] = s[:, :r, :, :]
    d[:, -r:, :, :] = s[:, -r:, :, :]
    d[:, :, :r, :] = s[:, :, :r, :]
    d[:, :, -r:, :] = s[:, :, -r:, :]
    d[:, :, :, :r] = s[:, :, :, :r]
    d[:, :, :, -r:] = s[:, :, :, -r:]
