"""Shared-memory capacity and bank-conflict model (GT200 generation).

The GTX 285 has 16 KB of shared memory per SM organized in 16 banks of
4-byte words; a half-warp's access is conflict-free when its lanes hit
distinct banks.  The capacity limit is what rules out 3.5D blocking for
LBM on this GPU (Section VI-B); the bank model quantifies the cost of the
shared-memory neighbor exchange the 7-point kernel performs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["bank_conflict_degree", "row_exchange_conflicts", "shared_fits"]

BANKS = 16
WORD = 4


def bank_conflict_degree(word_indices, banks: int = BANKS) -> int:
    """Maximum number of lanes hitting one bank (1 = conflict-free).

    ``word_indices`` are the 4-byte word offsets accessed by the lanes of a
    half-warp; replays scale with the worst bank's population.
    """
    idx = np.asarray(list(word_indices), dtype=np.int64)
    if idx.size == 0:
        return 0
    counts = np.bincount(idx % banks, minlength=banks)
    return int(counts.max())


def row_exchange_conflicts(
    row_pitch_words: int, n_lanes: int = 16, banks: int = BANKS
) -> int:
    """Conflict degree of lane i accessing ``shared[row, i]`` for a pitch.

    Unit-stride rows are conflict-free; a pitch that is a multiple of the
    bank count serializes column accesses — why shared tiles are padded.
    """
    idx = np.arange(n_lanes, dtype=np.int64)  # lane i -> word i of the row
    return bank_conflict_degree(idx, banks)


def shared_fits(
    tile_x: int,
    tile_y: int,
    element_size: int,
    planes: int,
    shared_bytes: int = 16 << 10,
) -> bool:
    """Does a blocked tile of ``planes`` XY sub-planes fit in shared memory?"""
    return tile_x * tile_y * element_size * planes <= shared_bytes
