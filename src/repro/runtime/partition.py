"""Work partitioning across threads (paper Section V-D, Figure 3b).

The paper divides ``dim_Y`` of every XY sub-plane by the thread count and
assigns each thread the corresponding rows — so every thread performs the
same amount of external memory traffic and the same number of stencil ops
("a flexible load-balancing scheme", Section I).  When ``dim_Y < T`` the
threads get partial rows; we expose both row-granular and point-granular
partitions.
"""

from __future__ import annotations

__all__ = ["partition_rows", "partition_span", "partition_balance"]


def partition_span(lo: int, hi: int, n_parts: int) -> list[tuple[int, int]]:
    """Split ``[lo, hi)`` into ``n_parts`` contiguous near-equal intervals.

    Sizes differ by at most one; empty intervals appear only when the span
    has fewer points than parts.
    """
    if n_parts < 1:
        raise ValueError("n_parts must be >= 1")
    if hi < lo:
        raise ValueError("hi must be >= lo")
    total = hi - lo
    base, extra = divmod(total, n_parts)
    parts = []
    start = lo
    for i in range(n_parts):
        size = base + (1 if i < extra else 0)
        parts.append((start, start + size))
        start += size
    return parts


def partition_rows(n_rows: int, n_threads: int) -> list[tuple[int, int]]:
    """Row ranges for each thread over ``[0, n_rows)``."""
    return partition_span(0, n_rows, n_threads)


def partition_balance(parts: list[tuple[int, int]]) -> int:
    """Max minus min part size — 0 or 1 for a fair partition."""
    sizes = [hi - lo for lo, hi in parts]
    return max(sizes) - min(sizes)
