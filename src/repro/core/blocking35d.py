"""The 3.5D blocking executor (paper Section V, especially V-C and V-E).

3.5D blocking = 2.5D spatial blocking (block the XY plane, stream through Z)
combined with 1D temporal blocking (execute ``dim_T`` time steps while the
working set is resident on chip).  Per round of ``dim_T`` steps each grid
element is read from and written to external memory once, cutting bandwidth
demand by ``dim_T / kappa`` where ``kappa`` is the ghost-layer
overestimation of Equation 2.

The implementation follows the paper's three phases — prolog, steady-state
stencil computation, epilog — by driving the explicit step schedule of
:mod:`repro.core.schedule` over the ring buffers of
:mod:`repro.core.buffer`:

* time instance 0 loads XY sub-planes of the source grid into its ring
  (**the** external-memory read),
* instances ``1 .. dim_T-1`` compute into their rings, each on a region that
  shrinks by R per instance away from cut tile edges (the trapezoid of
  :mod:`repro.core.regions`),
* instance ``dim_T`` computes the tile core and writes it straight to the
  destination grid (**the** external-memory write).

Planes in the fixed boundary shell (both the Z shell and the XY strips of
tiles that touch the grid edge) are constant in time; they are loaded once
per tile into persistent side buffers and served from there at every time
instance.

Executed single-threaded here; :mod:`repro.runtime.parallel35d` runs the same
schedule with each plane partitioned row-wise across a thread pool, which is
the paper's TLP scheme (Section V-D, option 2).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs.trace import TRACE
from ..stencils.base import PlaneKernel
from ..stencils.grid import Field3D, copy_shell, interior_points
from .buffer import RingSet
from .regions import Tile2D, compute_range, plan_tiles_2d
from .schedule import Schedule, StepKind, build_schedule
from .traffic import TrafficStats

__all__ = ["Blocking35D", "run_3_5d", "TileContext"]

#: lazily bound process-wide fault injector (layering: core must not pull
#: in repro.resilience at import time — see TuningCache for the pattern)
_FAULTS = None


def _ring_flip_probe(slot: np.ndarray, entropy: list[int]) -> None:
    """The ``memory.flip=ring`` fault site: corrupt a freshly loaded ring
    plane (the 3.5D scheme's on-chip working set).

    The flip lands *between* the external-memory read and every compute
    that consumes the plane, so it propagates into the round's output —
    exactly the in-flight SDC the re-execution check of
    :mod:`repro.resilience.sdc` exists to catch.  The ``:times`` budget is
    the bit count, drained like :func:`~repro.resilience.sdc.inject_flips`.
    """
    global _FAULTS
    if _FAULTS is None:
        from ..resilience.faultinject import FAULTS

        _FAULTS = FAULTS
    if not _FAULTS.should("memory.flip", "ring"):
        return
    from ..resilience.sdc import MAX_FLIPS_PER_PROBE, flip_bits

    bits = 1
    while bits < MAX_FLIPS_PER_PROBE and _FAULTS.should("memory.flip", "ring"):
        bits += 1
    flip_bits(slot, bits, entropy=entropy)


@dataclass
class TileContext:
    """Per-tile working state: rings plus persistent boundary-plane copies.

    Contexts are cached by the executor across rounds and across ``run()``
    calls, so in the steady state a sweep allocates no plane-sized buffers:
    the rings and shell-plane copies are reused, only their *contents* are
    refreshed when a new source grid arrives.
    """

    tile: Tile2D
    rings: RingSet
    #: persistent copies of the Z-shell planes over this tile's extent,
    #: indexed by global plane number.
    shell_planes: dict[int, np.ndarray]
    #: identity of the run whose shell values currently fill ``shell_planes``;
    #: the shell is constant in time, so it is copied once per run, not per
    #: round (``None`` = stale, must be refreshed).
    shell_token: object | None = None
    #: bytes per grid point, cached here so the per-step traffic accounting
    #: does not re-derive it from the source field on every schedule step.
    esize: int = 0
    #: fused-sweep runners bound to this tile (see repro.perf.fused), cached
    #: so the prebound per-iteration plans survive across rounds and runs.
    fused: list | None = None

    @property
    def ey(self) -> tuple[int, int]:
        return self.tile.y.extent

    @property
    def ex(self) -> tuple[int, int]:
        return self.tile.x.extent


class Blocking35D:
    """Reusable 3.5D executor bound to a kernel and blocking parameters.

    Parameters
    ----------
    kernel:
        Any :class:`~repro.stencils.base.PlaneKernel`.
    dim_t:
        Temporal blocking factor (the paper's ``dim_T``).
    tile_y, tile_x:
        On-chip blocking dimensions (the paper's ``dim_Y``, ``dim_X``).
    concurrent:
        ``True`` uses ``2R+2`` ring slots and the lag-(R+1) schedule whose
        per-iteration steps are mutually independent; ``False`` uses the
        minimal ``2R+1``-slot sequential schedule.
    validate:
        Validate the schedule's dependency/liveness invariants up front.
    """

    def __init__(
        self,
        kernel: PlaneKernel,
        dim_t: int,
        tile_y: int,
        tile_x: int,
        concurrent: bool = True,
        validate: bool = False,
    ) -> None:
        if dim_t < 1:
            raise ValueError("dim_t must be >= 1")
        self.kernel = kernel
        self.dim_t = dim_t
        self.tile_y = tile_y
        self.tile_x = tile_x
        self.concurrent = concurrent
        self.validate = validate
        # Steady-state caches: persistent per-tile contexts plus the tiling
        # and schedule plans, all keyed by the geometry that determines them.
        self._contexts: dict = {}
        self._tile_plans: dict = {}
        self._schedules: dict = {}
        self._run_buffers: dict = {}
        # Intermediate ring planes have dead seam positions (either refreshed
        # by the strip fill right after the compute, or outside every later
        # read window), so kernels that understand the seam-writable promise
        # can skip their copy-out there.
        self._seam_hint = bool(getattr(kernel, "accepts_seam_hint", False))

    # ------------------------------------------------------------------
    def clear_cache(self) -> None:
        """Drop all cached tile contexts, tilings, schedules and run buffers."""
        self._contexts.clear()
        self._tile_plans.clear()
        self._schedules.clear()
        self._run_buffers.clear()

    def _ping_pong(self, field: Field3D) -> tuple[Field3D, Field3D]:
        """Persistent source/destination buffers for ``run``.

        Reusing the same two arrays across ``run`` calls keeps every cached
        view — tile contexts, shell planes and especially the fused-sweep
        instruction plans, which prebind views of the exact buffers — valid
        from one run to the next, so the steady state allocates nothing and
        rebinds nothing.  ``run`` returns a *copy* of the final buffer, so
        results stay independent of later runs.
        """
        key = (field.shape, field.ncomp, field.dtype)
        bufs = self._run_buffers.get(key)
        if bufs is None:
            bufs = self._run_buffers[key] = (field.like(), field.like())
        return bufs

    # ------------------------------------------------------------------
    def run(
        self,
        field: Field3D,
        steps: int,
        traffic: TrafficStats | None = None,
    ) -> Field3D:
        """Advance ``field`` by ``steps`` time steps; input is untouched."""
        if steps < 0:
            raise ValueError("steps must be >= 0")
        if steps == 0:
            return field.copy()
        src, dst = self._ping_pong(field)
        np.copyto(src.data, field.data)
        copy_shell(src, dst, self.kernel.radius)
        # One shell token per run: the boundary shell is constant in time, so
        # cached shell planes are filled on the first round and reused after.
        token = object()
        with TRACE.span("sweep", executor="blocking35d", steps=steps,
                        dim_t=self.dim_t):
            remaining = steps
            round_index = 0
            while remaining > 0:
                round_t = min(self.dim_t, remaining)
                with TRACE.span("round", index=round_index, round_t=round_t):
                    self.sweep_round(src, dst, round_t, traffic,
                                     _shell_token=token)
                src, dst = dst, src
                remaining -= round_t
                round_index += 1
        return src.copy()

    # ------------------------------------------------------------------
    def sweep_round(
        self,
        src: Field3D,
        dst: Field3D,
        round_t: int,
        traffic: TrafficStats | None = None,
        *,
        _shell_token: object | None = None,
    ) -> None:
        """One blocked round: ``dst`` receives the state ``round_t`` steps ahead.

        ``_shell_token`` identifies the run whose (constant) boundary shell
        is in ``src``; direct callers may leave it ``None``, which refreshes
        the cached shell copies from ``src`` unconditionally.
        """
        token = _shell_token if _shell_token is not None else object()
        nz, ny, nx = src.shape
        tiles = self._plan_tiles(ny, nx, round_t)
        schedule = self._get_schedule(nz, round_t)
        if traffic is not None:
            traffic.notes.setdefault("tiles_per_round", len(tiles))
            traffic.notes.setdefault("dim_t", self.dim_t)
            # actual steps executed this round (may be < dim_t on the final
            # partial round), so traffic-model comparisons are not skewed
            traffic.notes.setdefault("round_t", []).append(round_t)
        # Whole-sweep codegen backends (repro.perf.codegen) replace the
        # entire tile loop — shell loading, ring rotation, seam writes and
        # every z-iteration — with one generated-kernel call per round.
        sweep_runner = getattr(self.kernel, "sweep_runner", None)
        if sweep_runner is not None:
            runner = sweep_runner(self, src, dst, round_t)
            if runner is not None:
                if TRACE.armed:
                    with TRACE.span("codegen_round", tiles=len(tiles),
                                    round_t=round_t):
                        runner.run(token, traffic)
                else:
                    runner.run(token, traffic)
                return
        if TRACE.armed:
            for tile in tiles:
                with TRACE.span("tile", y0=tile.y.core[0], y1=tile.y.core[1],
                                x0=tile.x.core[0], x1=tile.x.core[1]):
                    ctx = self._tile_context(src, tile, round_t)
                    self._load_shell_planes(src, ctx, traffic, token)
                    self._run_schedule(src, dst, ctx, schedule, round_t, traffic)
        else:
            for tile in tiles:
                ctx = self._tile_context(src, tile, round_t)
                self._load_shell_planes(src, ctx, traffic, token)
                self._run_schedule(src, dst, ctx, schedule, round_t, traffic)

    # ------------------------------------------------------------------
    def _plan_tiles(self, ny: int, nx: int, round_t: int) -> list[Tile2D]:
        key = (ny, nx, round_t)
        tiles = self._tile_plans.get(key)
        if tiles is None:
            r = self.kernel.radius
            tiles = plan_tiles_2d(ny, nx, r, round_t, self.tile_y, self.tile_x)
            self._tile_plans[key] = tiles
        return tiles

    def _get_schedule(self, nz: int, round_t: int) -> Schedule:
        key = (nz, round_t)
        schedule = self._schedules.get(key)
        if schedule is None:
            schedule = build_schedule(nz, self.kernel.radius, round_t, self.concurrent)
            if self.validate:
                schedule.validate()
            self._schedules[key] = schedule
        return schedule

    def _tile_context(self, src: Field3D, tile: Tile2D, round_t: int) -> TileContext:
        """The persistent context for ``tile``, rings reset for a new round."""
        key = (tile, round_t, src.nz, src.ncomp, src.dtype)
        ctx = self._contexts.get(key)
        if ctx is None:
            ey, ex = tile.y.extent, tile.x.extent
            rings = RingSet(
                dim_t=round_t,
                radius=self.kernel.radius,
                ncomp=src.ncomp,
                ny=ey[1] - ey[0],
                nx=ex[1] - ex[0],
                dtype=src.dtype,
                concurrent=self.concurrent,
            )
            ctx = TileContext(
                tile=tile,
                rings=rings,
                shell_planes={},
                esize=src.element_size(),
            )
            self._contexts[key] = ctx
        else:
            ctx.rings.reset()
        return ctx

    def _load_shell_planes(
        self,
        src: Field3D,
        ctx: TileContext,
        traffic: TrafficStats | None,
        token: object | None = None,
    ) -> None:
        """Copy the constant Z-shell planes of this tile's extent on chip.

        The copy is skipped when ``ctx`` already holds this run's shell
        (``token`` matches); the modeled external-memory traffic is recorded
        either way, because a capacity-limited machine re-reads the shell
        every time the tile pass returns to it.
        """
        r = self.kernel.radius
        nz = src.nz
        (ey0, ey1), (ex0, ex1) = ctx.ey, ctx.ex
        esize = ctx.esize
        refresh = token is None or ctx.shell_token is not token
        for z in list(range(r)) + list(range(nz - r, nz)):
            if refresh:
                buf = ctx.shell_planes.get(z)
                if buf is None:
                    ctx.shell_planes[z] = src.data[:, z, ey0:ey1, ex0:ex1].copy()
                else:
                    np.copyto(buf, src.data[:, z, ey0:ey1, ex0:ex1])
            if traffic is not None:
                traffic.read((ey1 - ey0) * (ex1 - ex0) * esize, planes=1)
        ctx.shell_token = token

    # ------------------------------------------------------------------
    def _fetch(self, ctx: TileContext, t: int, z: int) -> np.ndarray:
        """Plane ``z`` as seen by time instance ``t`` (local extent coords)."""
        if z in ctx.shell_planes:
            return ctx.shell_planes[z]
        return ctx.rings.ring(t).get(z)

    def instance_regions(
        self, ctx: TileContext, shape: tuple[int, int, int], round_t: int
    ) -> dict[int, tuple[tuple[int, int], tuple[int, int]]]:
        """Per-instance computable XY regions, global coords (constant in z)."""
        _, ny, nx = shape
        r = self.kernel.radius
        return {
            t: (
                compute_range(ctx.tile.y.core, ny, r, round_t, t),
                compute_range(ctx.tile.x.core, nx, r, round_t, t),
            )
            for t in range(1, round_t + 1)
        }

    def execute_step(
        self,
        src: Field3D,
        dst: Field3D,
        ctx: TileContext,
        step,
        regions,
        traffic: TrafficStats | None = None,
        rows: tuple[int, int] | None = None,
    ) -> None:
        """Execute one schedule step, optionally restricted to global rows.

        ``rows`` is a half-open global-Y interval; the paper's thread-level
        parallelization assigns each thread a row slice of every sub-plane
        (Section V-D option 2), so a step is complete once all row slices
        have run.  ``rows=None`` executes the full step.
        """
        kernel = self.kernel
        r = kernel.radius
        nz, ny, nx = src.shape
        (ey0, ey1), (ex0, ex1) = ctx.ey, ctx.ex
        esize = ctx.esize
        z = step.z

        if step.kind is StepKind.LOAD:
            if z in ctx.shell_planes:
                return  # already resident (loaded in _load_shell_planes)
            ly0, ly1 = ey0, ey1
            if rows is not None:
                ly0, ly1 = max(ey0, rows[0]), min(ey1, rows[1])
                if ly0 >= ly1:
                    return
            slot = ctx.rings.ring(0).slot_for(z)
            slot[:, ly0 - ey0 : ly1 - ey0, :] = src.data[:, z, ly0:ly1, ex0:ex1]
            _ring_flip_probe(slot, entropy=[z, ey0, ex0])
            if traffic is not None:
                traffic.read(
                    (ly1 - ly0) * (ex1 - ex0) * esize, planes=1 if rows is None else 0
                )
            return

        t = step.t
        (gy0, gy1), (gx0, gx1) = regions[t]
        if rows is not None:
            gy0, gy1 = max(gy0, rows[0]), min(gy1, rows[1])
        empty = gy0 >= gy1
        if step.kind is StepKind.STORE:
            if empty:
                return
            srcs = [self._fetch(ctx, t - 1, z + dz) for dz in range(-r, r + 1)]
            yr = (gy0 - ey0, gy1 - ey0)
            xr = (gx0 - ex0, gx1 - ex0)
            out = dst.data[:, z, ey0:ey1, ex0:ex1]
            kernel.compute_plane(out, srcs, yr, xr, gz=z, gy0=ey0, gx0=ex0)
            if traffic is not None:
                traffic.write((gy1 - gy0) * (gx1 - gx0) * esize, planes=1)
        else:
            # A row band whose slice of the compute region is empty may still
            # own boundary-strip rows of this plane, so the strip fill below
            # must run even when there is nothing to compute (otherwise a
            # thread whose band holds only strip rows leaves them stale).
            out = ctx.rings.ring(t).slot_for(z)
            prev = self._fetch(ctx, t - 1, z)
            if not empty:
                srcs = [self._fetch(ctx, t - 1, z + dz) for dz in range(-r, r + 1)]
                yr = (gy0 - ey0, gy1 - ey0)
                xr = (gx0 - ex0, gx1 - ex0)
                if self._seam_hint:
                    kernel.compute_plane(
                        out, srcs, yr, xr, gz=z, gy0=ey0, gx0=ex0,
                        seam_writable=True,
                    )
                else:
                    kernel.compute_plane(out, srcs, yr, xr, gz=z, gy0=ey0, gx0=ex0)
            # Boundary strips inside the extent are constant in time; refresh
            # them from the previous instance (which has them valid all the
            # way back to the loaded planes).
            self._fill_xy_strips(
                out, prev, (ey0, ey1), (ex0, ex1), ny, nx, rows=rows
            )
        if not empty and traffic is not None:
            traffic.update((gy1 - gy0) * (gx1 - gx0), kernel.ops_per_update)

    def _run_schedule(
        self,
        src: Field3D,
        dst: Field3D,
        ctx: TileContext,
        schedule: Schedule,
        round_t: int,
        traffic: TrafficStats | None,
    ) -> None:
        # Fused-sweep backends (repro.perf.fused) supply a per-tile runner
        # that executes each z-iteration — all round_t updates plus the
        # load/store seam planes — in one call, instead of one Python-level
        # kernel invocation per schedule step.
        tile_runner = getattr(self.kernel, "tile_runner", None)
        if tile_runner is not None:
            runner = tile_runner(self, src, dst, ctx, schedule, round_t)
            if runner is not None:
                if TRACE.armed:
                    for k in runner.iteration_keys:
                        with TRACE.span("z_iter", k=k, fused=True):
                            runner.run_iteration(k, traffic=traffic)
                else:
                    for k in runner.iteration_keys:
                        runner.run_iteration(k, traffic=traffic)
                return
        regions = self.instance_regions(ctx, src.shape, round_t)
        if TRACE.armed:
            # the flat step order equals the per-iteration grouping (steps
            # are generated k-outer/t-inner), so spanning by iteration does
            # not reorder execution
            for k, iter_steps in schedule.iterations().items():
                with TRACE.span("z_iter", k=k, fused=False):
                    for step in iter_steps:
                        self.execute_step(src, dst, ctx, step, regions, traffic)
        else:
            for step in schedule.steps:
                self.execute_step(src, dst, ctx, step, regions, traffic)

    def _fill_xy_strips(
        self,
        out: np.ndarray,
        prev: np.ndarray,
        ey: tuple[int, int],
        ex: tuple[int, int],
        ny: int,
        nx: int,
        rows: tuple[int, int] | None = None,
    ) -> None:
        """Copy grid-boundary strips (constant values) into a computed plane.

        With ``rows`` set, only the strip portions inside that global-Y slice
        are written, so row-partitioned threads touch disjoint memory.
        """
        r = self.kernel.radius
        ey0, ey1 = ey
        ex0, ex1 = ex
        ly0, ly1 = (0, ey1 - ey0)
        if rows is not None:
            ly0 = max(0, rows[0] - ey0)
            ly1 = min(ey1 - ey0, rows[1] - ey0)
            if ly0 >= ly1:
                return
        if ey0 < r:  # tile touches the low-Y grid boundary
            hi = min(r - ey0, ly1)
            if hi > ly0:
                out[:, ly0:hi, :] = prev[:, ly0:hi, :]
        if ey1 > ny - r:
            lo = max((ny - r) - ey0, ly0)
            if ly1 > lo:
                out[:, lo:ly1, :] = prev[:, lo:ly1, :]
        if ex0 < r:
            out[:, ly0:ly1, : r - ex0] = prev[:, ly0:ly1, : r - ex0]
        if ex1 > nx - r:
            k = ex1 - (nx - r)
            out[:, ly0:ly1, -k:] = prev[:, ly0:ly1, -k:]

    # ------------------------------------------------------------------
    def buffer_bytes(self, dtype, ncomp: int | None = None) -> int:
        """On-chip bytes the configuration needs (LHS of Equation 1)."""
        from .buffer import ring_slots

        ncomp = self.kernel.ncomp if ncomp is None else ncomp
        slots = ring_slots(self.kernel.radius, self.concurrent)
        return (
            np.dtype(dtype).itemsize
            * ncomp
            * slots
            * self.dim_t
            * self.tile_y
            * self.tile_x
        )


def run_3_5d(
    kernel: PlaneKernel,
    field: Field3D,
    steps: int,
    dim_t: int,
    tile_y: int,
    tile_x: int,
    *,
    concurrent: bool = True,
    validate: bool = False,
    traffic: TrafficStats | None = None,
) -> Field3D:
    """Convenience wrapper: advance ``field`` by ``steps`` with 3.5D blocking."""
    return Blocking35D(
        kernel, dim_t, tile_y, tile_x, concurrent=concurrent, validate=validate
    ).run(field, steps, traffic)
