"""Tests for the GPU execution model: SIMT, coalescing, plans, executor."""

import numpy as np
import pytest

from repro.core import run_naive
from repro.gpu import (
    GTX285_SM,
    GpuExecutor35D,
    bank_conflict_degree,
    coalescing_efficiency,
    occupancy,
    plan_7pt_gpu,
    plan_lbm_gpu,
    row_exchange_conflicts,
    shared_fits,
    simt_stencil_plane,
    transactions_for_warp,
    warp_row_transactions,
)
from repro.stencils import Field3D, SevenPointStencil


class TestOccupancy:
    def test_thread_limited(self):
        occ = occupancy(threads_per_block=512, regs_per_thread=4, shared_bytes_per_block=256)
        assert occ.blocks_per_sm == 2
        assert occ.limited_by == "threads"
        assert occ.occupancy == 1.0

    def test_shared_memory_limited(self):
        occ = occupancy(64, 4, shared_bytes_per_block=8 << 10)
        assert occ.limited_by == "shared_memory"
        assert occ.blocks_per_sm == 2

    def test_register_limited(self):
        # 16K registers per SM (64 KB / 4): 64 regs x 256 threads = 16K -> 1 block
        occ = occupancy(256, 64, 0)
        assert occ.limited_by == "registers"
        assert occ.blocks_per_sm == 1

    def test_warp_count(self):
        occ = occupancy(128, 8, 1024)
        assert occ.warps_per_sm == occ.threads_per_sm // 32

    def test_invalid(self):
        with pytest.raises(ValueError):
            occupancy(0, 1, 1)


class TestCoalescing:
    def test_fully_coalesced_row(self):
        # 32 SP lanes, unit stride, aligned: exactly one 128B transaction
        assert warp_row_transactions(0, 32, 4, 1) == 1
        assert coalescing_efficiency(0, 32, 4, 1) == pytest.approx(1.0)

    def test_misaligned_row_splits(self):
        assert warp_row_transactions(4, 32, 4, 1) == 2
        assert coalescing_efficiency(4, 32, 4, 1) == pytest.approx(0.5)

    def test_strided_access_fans_out(self):
        # stride 32 elements: every lane its own segment
        assert warp_row_transactions(0, 32, 4, 32) == 32

    def test_dp_needs_two_segments(self):
        assert warp_row_transactions(0, 32, 8, 1) == 2

    def test_transactions_for_explicit_addresses(self):
        assert transactions_for_warp([0, 4, 8, 127]) == 1
        assert transactions_for_warp([0, 128]) == 2
        assert transactions_for_warp([]) == 0

    def test_negative_addresses_rejected(self):
        with pytest.raises(ValueError):
            transactions_for_warp([-4])


class TestSharedMemory:
    def test_conflict_free_row(self):
        assert row_exchange_conflicts(row_pitch_words=17) == 1

    def test_same_bank_column(self):
        # lane i accesses word i*16: all hit bank 0 -> 16-way conflict
        assert bank_conflict_degree([i * 16 for i in range(16)]) == 16

    def test_unit_stride_no_conflict(self):
        assert bank_conflict_degree(range(16)) == 1

    def test_shared_fits_lbm_case(self):
        # Section VI-B: LBM SP tiles cannot fit 16 KB shared memory
        assert not shared_fits(8, 8, 160, planes=4 * 2)
        assert shared_fits(4, 4, 4, planes=8)


class TestPlans:
    def test_7pt_sp_plan_matches_paper(self):
        p = plan_7pt_gpu("sp")
        assert p.feasible
        assert p.dim_t == 2  # Section VI-A
        assert p.dim_x == 32  # warp-aligned, <= 45.2 bound
        assert p.kappa == pytest.approx(1.31, abs=0.01)
        assert p.uses_temporal_blocking

    def test_7pt_dp_plan_compute_bound(self):
        p = plan_7pt_gpu("dp")
        assert p.dim_t == 1
        assert not p.uses_temporal_blocking
        assert "compute bound" in p.reason

    def test_lbm_sp_infeasible(self):
        p = plan_lbm_gpu("sp")
        assert not p.feasible
        assert p.dim_t >= 6  # "dim_T >= 6.1"
        assert p.dim_x <= 3  # "dim_X <= 2" (paper); <= 4 at dim_T = 2
        assert "shared memory" in p.reason

    def test_lbm_dp_compute_bound(self):
        p = plan_lbm_gpu("dp")
        assert not p.feasible
        assert "compute bound" in p.reason

    def test_lbm_sp_feasible_on_fermi_class_cache(self):
        """Section VIII: an order-of-magnitude larger cache enables LBM SP."""
        from dataclasses import replace

        big_sm = replace(GTX285_SM, shared_mem_bytes=256 << 10)
        p = plan_lbm_gpu("sp", sm=big_sm)
        assert p.feasible
        assert p.dim_x > 2 * p.dim_t

    def test_occupancy_attached(self):
        p = plan_7pt_gpu("sp")
        assert p.occupancy is not None
        assert 0 < p.occupancy.occupancy <= 1


class TestSimtPlane:
    def test_matches_plane_kernel_bitwise(self):
        rng = np.random.default_rng(0)
        below, mid, above = (
            rng.random((12, 16), dtype=np.float32) for _ in range(3)
        )
        out, traffic = simt_stencil_plane(0.4, 0.1, below, mid, above)
        k = SevenPointStencil(alpha=0.4, beta=0.1)
        ref = np.zeros((1, 12, 16), dtype=np.float32)
        k.compute_plane(ref, [below[None], mid[None], above[None]], (1, 11), (1, 15))
        assert np.array_equal(out[1:11, 1:15], ref[0, 1:11, 1:15])

    def test_shared_traffic_accounting(self):
        below, mid, above = (np.ones((8, 8), dtype=np.float32) for _ in range(3))
        _, t = simt_stencil_plane(0.5, 0.1, below, mid, above)
        assert t.shared_stores == 64  # one store per thread
        assert t.shared_loads == 5 * 36  # 4 neighbors + center per interior pt
        assert t.syncthreads == 1
        assert t.register_reads == 2 * 36


class TestGpuExecutor:
    def test_bit_exact_vs_naive(self):
        k = SevenPointStencil()
        f = Field3D.random((10, 36, 36), dtype=np.float32, seed=2)
        plan = plan_7pt_gpu("sp")
        rep = GpuExecutor35D(k, plan).run(f, 4)
        ref = run_naive(k, f, 4)
        assert np.array_equal(rep.result.data, ref.data)

    def test_report_counters_positive(self):
        k = SevenPointStencil()
        f = Field3D.random((8, 34, 34), dtype=np.float32, seed=3)
        rep = GpuExecutor35D(k, plan_7pt_gpu("sp")).run(f, 2)
        assert rep.global_transactions > 0
        assert rep.shared_stores == rep.traffic.updates
        assert rep.shared_loads == 5 * rep.traffic.updates
        assert rep.syncthreads > 0
        assert rep.coalescing_efficiency == pytest.approx(1.0)

    def test_infeasible_plan_rejected(self):
        k = SevenPointStencil()
        with pytest.raises(ValueError):
            GpuExecutor35D(k, plan_lbm_gpu("sp"))
