"""Unit tests for the stencil kernels (Section IV accounting + arithmetic)."""

import numpy as np
import pytest

from repro.stencils import (
    Field3D,
    GenericStencil,
    SevenPointStencil,
    TwentySevenPointStencil,
    box_stencil,
    star_stencil,
    validate_footprint,
)


def apply_single(kernel, cube: np.ndarray) -> float:
    """Apply a kernel at the exact center of a (2R+1)^3 cube."""
    r = kernel.radius
    planes = [cube[np.newaxis, z] for z in range(2 * r + 1)]
    out = np.zeros_like(planes[0])
    kernel.compute_plane(out, planes, (r, r + 1), (r, r + 1))
    return out[0, r, r]


class TestSevenPoint:
    def test_paper_op_accounting(self):
        k = SevenPointStencil()
        # Section IV-A1: 2 mults + 6 adds + 7 loads + 1 store = 16 ops
        assert k.ops_per_update == 16
        assert k.radius == 1
        assert k.ncomp == 1

    def test_gamma_matches_paper(self):
        k = SevenPointStencil()
        assert k.gamma(np.float32) == pytest.approx(0.5)  # SP (Section IV-A1)
        assert k.gamma(np.float64) == pytest.approx(1.0)  # DP

    def test_pointwise_value(self):
        k = SevenPointStencil(alpha=2.0, beta=0.5)
        cube = np.zeros((3, 3, 3))
        cube[1, 1, 1] = 3.0  # center
        cube[0, 1, 1] = 1.0  # z-1
        cube[1, 0, 1] = 2.0  # y-1
        cube[1, 1, 2] = 4.0  # x+1
        assert apply_single(k, cube) == pytest.approx(2.0 * 3.0 + 0.5 * (1 + 2 + 4))

    def test_only_region_written(self):
        k = SevenPointStencil()
        planes = [np.ones((1, 6, 6)) for _ in range(3)]
        out = np.full((1, 6, 6), -1.0)
        k.compute_plane(out, planes, (2, 4), (1, 5))
        assert (out[0, 2:4, 1:5] != -1.0).all()
        mask = np.ones((6, 6), dtype=bool)
        mask[2:4, 1:5] = False
        assert (out[0][mask] == -1.0).all()

    def test_footprint_violation_raises(self):
        k = SevenPointStencil()
        planes = [np.ones((1, 4, 4)) for _ in range(3)]
        out = np.zeros((1, 4, 4))
        with pytest.raises(ValueError):
            k.compute_plane(out, planes, (0, 2), (1, 3))  # y0 - R < 0

    def test_dtype_preserved(self):
        k = SevenPointStencil()
        planes = [np.ones((1, 4, 4), dtype=np.float32) for _ in range(3)]
        out = np.zeros((1, 4, 4), dtype=np.float32)
        k.compute_plane(out, planes, (1, 3), (1, 3))
        assert out.dtype == np.float32


class TestTwentySevenPoint:
    def test_paper_op_accounting(self):
        k = TwentySevenPointStencil()
        # Section IV-A2: 4 mults + 26 adds + 27 loads + 1 store = 58 ops
        assert k.ops_per_update == 58

    def test_gamma_matches_paper(self):
        k = TwentySevenPointStencil()
        assert k.gamma(np.float32) == pytest.approx(8 / 58, abs=1e-3)  # ~0.14
        assert k.gamma(np.float64) == pytest.approx(16 / 58, abs=1e-3)  # ~0.28

    def test_uniform_input_weight_sum(self):
        k = TwentySevenPointStencil(center=0.5, face=0.02, edge=0.01, corner=0.005)
        cube = np.ones((3, 3, 3))
        expected = 0.5 + 6 * 0.02 + 12 * 0.01 + 8 * 0.005
        assert apply_single(k, cube) == pytest.approx(expected)

    def test_neighbor_classes_weighted_separately(self):
        k = TwentySevenPointStencil(center=0.0, face=1.0, edge=0.0, corner=0.0)
        cube = np.zeros((3, 3, 3))
        cube[1, 1, 0] = 5.0  # a face neighbor
        cube[0, 0, 0] = 100.0  # a corner (weight 0)
        assert apply_single(k, cube) == pytest.approx(5.0)


class TestGenericStencil:
    def test_radius_inferred(self):
        assert star_stencil(3).radius == 3
        assert box_stencil(2).radius == 2

    def test_tap_counts(self):
        assert len(star_stencil(2).taps) == 1 + 6 * 2
        assert len(box_stencil(1).taps) == 27

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            GenericStencil({})

    def test_radius_zero_rejected(self):
        with pytest.raises(ValueError):
            GenericStencil({(0, 0, 0): 1.0})

    def test_matches_seven_point_shape(self):
        """A generic star of radius 1 computes the same linear combination."""
        alpha, beta = 0.3, 0.15
        generic = star_stencil(1, center=alpha, arm=beta)
        rng = np.random.default_rng(0)
        cube = rng.random((3, 3, 3))
        seven = SevenPointStencil(alpha=alpha, beta=beta)
        assert apply_single(generic, cube) == pytest.approx(
            apply_single(seven, cube), rel=1e-12
        )

    def test_op_count_formula(self):
        k = star_stencil(1)  # 7 taps
        assert k.ops_per_update == 7 + 1 + 6 + 7


class TestValidateFootprint:
    def test_accepts_interior(self):
        validate_footprint((10, 10), (2, 8), (2, 8), 2)

    @pytest.mark.parametrize(
        "yr,xr",
        [((0, 5), (1, 5)), ((1, 10), (1, 5)), ((1, 5), (0, 5)), ((1, 5), (5, 10))],
    )
    def test_rejects_out_of_bounds(self, yr, xr):
        with pytest.raises(ValueError):
            validate_footprint((10, 10), yr, xr, 1)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            validate_footprint((10, 10), (5, 5), (1, 2), 1)
