"""Tests: the auto-tuner reproduces every Section VI configuration."""

import numpy as np
import pytest

from repro.core import run_naive, tune
from repro.lbm import LBMKernel
from repro.machine import CORE_I7, GTX_285, scaled_machine
from repro.stencils import Field3D, SevenPointStencil, TwentySevenPointStencil


@pytest.fixture
def lbm_kernel():
    return LBMKernel(np.zeros((4, 4, 4), dtype=np.uint8))


class TestPaperConfigurations:
    def test_7pt_cpu_sp(self):
        t = tune(SevenPointStencil(), CORE_I7, np.float32, derated=False)
        assert t.scheme == "3.5d"
        assert t.params.dim_t == 2
        assert t.params.dim_x == 360

    def test_7pt_cpu_dp(self):
        t = tune(SevenPointStencil(), CORE_I7, np.float64, derated=False)
        assert t.scheme == "3.5d"
        assert t.params.dim_t == 2
        assert t.params.dim_x == 256

    def test_lbm_cpu_sp(self, lbm_kernel):
        t = tune(lbm_kernel, CORE_I7, np.float32, derated=False)
        assert t.scheme == "3.5d"
        assert t.params.dim_t == 3
        assert t.params.dim_x == 64
        assert t.params.kappa == pytest.approx(1.21, abs=0.01)

    def test_lbm_cpu_dp(self, lbm_kernel):
        t = tune(lbm_kernel, CORE_I7, np.float64, derated=False)
        assert t.scheme == "3.5d"
        assert t.params.dim_t == 3
        assert t.params.dim_x == 44
        assert t.params.kappa == pytest.approx(1.34, abs=0.01)

    def test_27pt_spatial_only(self):
        # Section IV-C: 27-point is compute bound with spatial blocking alone
        t = tune(TwentySevenPointStencil(), CORE_I7, np.float32, derated=False)
        assert t.scheme == "2.5d"

    def test_lbm_gpu_sp_infeasible(self, lbm_kernel):
        t = tune(lbm_kernel, GTX_285, np.float32, capacity=16 << 10, derated=False)
        assert t.scheme == "none"
        assert "infeasible" in t.rationale

    def test_7pt_gpu_dp_compute_bound(self):
        t = tune(SevenPointStencil(), GTX_285, np.float64, derated=True)
        assert t.scheme == "2.5d"


class TestTunedExecutors:
    def test_tuned_35d_executor_correct(self):
        k = SevenPointStencil()
        # shrink capacity so tiles are small enough to test quickly
        machine = scaled_machine(CORE_I7, capacity_scale=0.001)
        t = tune(k, machine, np.float32, derated=False)
        assert t.scheme == "3.5d"
        ex = t.make_executor(k)
        f = Field3D.random((10, 30, 30), dtype=np.float32, seed=1)
        out = ex.run(f, 4)
        assert np.array_equal(out.data, run_naive(k, f, 4).data)

    def test_tuned_25d_executor_correct(self):
        k = TwentySevenPointStencil()
        machine = scaled_machine(CORE_I7, capacity_scale=0.0005)
        t = tune(k, machine, np.float32, derated=False)
        assert t.scheme == "2.5d"
        ex = t.make_executor(k)
        f = Field3D.random((8, 20, 20), dtype=np.float32, seed=2)
        out = ex.run(f, 3)
        assert np.array_equal(out.data, run_naive(k, f, 3).data)

    def test_none_scheme_has_no_executor(self, lbm_kernel):
        t = tune(lbm_kernel, GTX_285, np.float32, capacity=16 << 10, derated=False)
        with pytest.raises(ValueError):
            t.make_executor(lbm_kernel)


class TestFutureTrends:
    def test_falling_gamma_needs_bigger_dim_t(self):
        """Section VIII: Westmere-class machines need larger dim_T."""
        k = SevenPointStencil()
        now = tune(k, CORE_I7, np.float32, derated=False)
        future = tune(
            k, scaled_machine(CORE_I7, compute_scale=2.0), np.float32, derated=False
        )
        assert future.params.dim_t > now.params.dim_t

    def test_bigger_cache_restores_kappa(self):
        """Larger dim_T with the same cache pays more κ; more cache fixes it."""
        k = SevenPointStencil()
        fast = scaled_machine(CORE_I7, compute_scale=2.0)
        fast_big = scaled_machine(fast, capacity_scale=4.0)
        t_small = tune(k, fast, np.float32, derated=False)
        t_big = tune(k, fast_big, np.float32, derated=False)
        assert t_big.params.kappa < t_small.params.kappa
