"""Tests for serving observability: job tracing, usage ledger, quantiles.

The claims under test are accounting claims, so the assertions are
exact where the design promises exactness: merged per-thread quantile
sketches are bit-identical to a single-stream sketch (lossless merge),
and the per-tenant usage ledger's sums equal the daemon's global
counters to the integer after a mixed-tenant soak.  The trace tests
assert the one-trace_id-per-job contract end to end: minted at submit,
carried over the wire, stamped on every lifecycle span, and merged into
a single schema-valid chrome-trace document.
"""

from __future__ import annotations

import json
import threading
import time

import numpy as np
import pytest

from repro.obs import METRICS, TRACE, QuantileSketch
from repro.obs.export import (
    SPAN_PHASES,
    metrics_document,
    summarize_trace,
    write_chrome_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.schema import load_schema, validate
from repro.obs.serving import (
    JOB_SPAN_NAMES,
    JobTraceLog,
    UsageLedger,
    merge_job_trace,
    mint_trace_id,
    prometheus_exposition,
    read_rollups,
)
from repro.serve import JobSpec, ServeCore


@pytest.fixture(autouse=True)
def _clean_obs():
    TRACE.disarm()
    TRACE.reset()
    METRICS.disarm()
    METRICS.reset()
    yield
    TRACE.disarm()
    TRACE.reset()
    METRICS.disarm()
    METRICS.reset()


def _wait_terminal(core: ServeCore, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if all(r.terminal for r in core.jobs()):
            return
        time.sleep(0.01)
    raise AssertionError(
        f"jobs never drained: {[(r.id, r.status) for r in core.jobs()]}"
    )


class TestQuantileSketch:
    def test_relative_accuracy_on_lognormal(self):
        rng = np.random.default_rng(7)
        values = np.exp(rng.normal(0.0, 1.0, size=20_000))
        sk = QuantileSketch(accuracy=0.01)
        for v in values:
            sk.observe(float(v))
        for q in (0.5, 0.9, 0.99):
            true = float(np.quantile(values, q))
            assert sk.quantile(q) == pytest.approx(true, rel=0.03)
        assert sk.count == len(values)
        assert sk.sum == pytest.approx(float(values.sum()), rel=1e-9)

    def test_merge_is_lossless_across_threads(self):
        """N per-thread sketches merged == one single-stream sketch, exactly.

        The merge adds bucket counts, so the merged sketch must be
        bit-identical (same buckets, same counts, same extrema) to a
        sketch that saw every observation on one thread — the quantiles
        cannot drift with the worker count.
        """
        rng = np.random.default_rng(11)
        shards = [rng.uniform(1e-4, 10.0, size=2_500) for _ in range(4)]

        single = QuantileSketch(accuracy=0.01)
        for shard in shards:
            for v in shard:
                single.observe(float(v))

        per_thread = [QuantileSketch(accuracy=0.01) for _ in shards]
        threads = [
            threading.Thread(
                target=lambda sk, sh: [sk.observe(float(v)) for v in sh],
                args=(sk, sh),
            )
            for sk, sh in zip(per_thread, shards)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        merged = QuantileSketch(accuracy=0.01)
        for sk in per_thread:
            merged.merge(sk)

        assert merged.buckets == single.buckets
        assert merged.count == single.count
        assert merged.zeros == single.zeros
        assert merged.min == single.min
        assert merged.max == single.max
        for q in (0.5, 0.9, 0.99):
            assert merged.quantile(q) == single.quantile(q)

    def test_registry_observe_and_merge(self):
        reg = MetricsRegistry()
        reg.arm()
        for v in (0.1, 0.2, 0.3):
            reg.observe_quantile("q.latency", v)
        other = QuantileSketch()
        other.observe(0.4)
        reg.merge_quantile("q.latency", other)
        doc = reg.to_dict()
        assert doc["quantiles"]["q.latency"]["count"] == 4
        # disarmed registries drop observations silently
        reg.disarm()
        reg.observe_quantile("q.latency", 9.9)
        assert reg.to_dict()["quantiles"]["q.latency"]["count"] == 4


class TestUsageLedger:
    def test_totals_equal_per_tenant_sums(self, tmp_path):
        led = UsageLedger(str(tmp_path / "ledger.jsonl"), fsync=False)
        rng = np.random.default_rng(3)
        tenants = [f"t{i}" for i in range(3)]
        for _ in range(200):
            t = tenants[int(rng.integers(0, 3))]
            led.charge(
                t,
                site_updates=int(rng.integers(0, 1000)),
                bytes_read=int(rng.integers(0, 4096)),
                bytes_written=int(rng.integers(0, 4096)),
                cpu_ns=int(rng.integers(0, 10**6)),
            )
            led.count(t, "completed")
        totals = led.totals()
        per = led.per_tenant()
        for key, total in totals.items():
            assert total == sum(u[key] for u in per.values())

    def test_reconcile_exact_and_mismatch(self, tmp_path):
        led = UsageLedger(str(tmp_path / "l.jsonl"), fsync=False)
        led.charge("a", site_updates=100, cpu_ns=5)
        led.charge("b", site_updates=23, cpu_ns=7)
        assert led.reconcile({"site_updates": 123, "cpu_ns": 12}) == []
        bad = led.reconcile({"site_updates": 124})
        assert len(bad) == 1 and "site_updates" in bad[0]

    def test_rollup_jsonl_roundtrip_and_torn_tail(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        led = UsageLedger(str(path), fsync=True, rollup_every=4)
        for i in range(10):
            led.charge("t0", site_updates=i)
        led.rollup()
        rollups = read_rollups(str(path))
        assert rollups, "explicit rollup() must append a line"
        last = rollups[-1]
        assert last["schema"] == "repro.ledger/v1"
        assert last["totals"]["site_updates"] == sum(range(10))
        assert last["tenants"]["t0"]["site_updates"] == sum(range(10))
        # a torn tail (partial last line) is ignored, not fatal
        with open(path, "ab") as fh:
            fh.write(b'{"schema": "repro.ledger/v1", "tot')
        assert read_rollups(str(path)) == rollups

    def test_unknown_event_rejected(self, tmp_path):
        led = UsageLedger(str(tmp_path / "l.jsonl"), fsync=False)
        with pytest.raises(ValueError):
            led.count("t0", "exploded")


class TestJobTrace:
    def test_mint_trace_id_format(self):
        ids = {mint_trace_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(i) == 16 and int(i, 16) >= 0 for i in ids)

    def test_log_caps_spans_and_counts_drops(self):
        log = JobTraceLog("aabbccdd00112233", "j-1", cap=8)
        for i in range(20):
            log.add("job_round", i, i + 1, step=i)
        assert len(log.to_dicts()) == 8
        assert log.dropped == 12

    def test_trace_id_survives_the_wire(self):
        tid = mint_trace_id()
        spec = JobSpec(kernel="7pt", grid=8, steps=2, trace_id=tid)
        again = JobSpec.from_dict(spec.to_dict())
        assert again.trace_id == tid
        # trace identity must not split the plan cache
        untraced = JobSpec(kernel="7pt", grid=8, steps=2)
        assert spec.signature() == untraced.signature()

    def test_merged_trace_single_id_and_schema_valid(self):
        tid = mint_trace_id()
        client = JobTraceLog(tid, "job-1")
        t0 = time.time_ns()
        client.add("job_submit", t0, t0 + 1_000_000, tenant="t0")
        daemon = JobTraceLog(tid, "job-1")
        daemon.add("job_admit", t0 + 500_000, t0 + 600_000)
        daemon.add("job_run", t0 + 600_000, t0 + 5_000_000)
        doc = merge_job_trace(client.to_dicts(), daemon.to_dicts(), trace_id=tid)
        validate(doc, load_schema("repro.trace/v1"))
        spans = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        assert {e["args"]["trace_id"] for e in spans} == {tid}
        assert {e["pid"] for e in spans} == {1, 2}
        # rebased: the earliest span starts at ts 0, not at the epoch
        assert min(e["ts"] for e in spans) == 0.0
        assert all(e["name"] in JOB_SPAN_NAMES for e in spans)

    def test_traced_job_lifecycle_through_core(self, tmp_path):
        core = ServeCore(tmp_path / "s", workers=1, fsync=False)
        core.start()
        try:
            tid = mint_trace_id()
            spec = JobSpec(kernel="7pt", grid=8, steps=2, dim_t=1,
                           verify=False, trace_id=tid)
            reply = core.submit(spec.to_dict())
            assert reply["ok"], reply
            _wait_terminal(core)
            spans = core.spans(reply["id"])
            names = [s["name"] for s in spans]
            assert names[0] == "job_admit"
            assert "job_queue_wait" in names
            assert "job_run" in names
            assert names.index("job_queue_wait") < names.index("job_run")
            assert {s["trace_id"] for s in spans} == {tid}
            assert {s["attrs"]["id"] for s in spans} == {reply["id"]}
            # untraced jobs carry no span log at all
            plain = core.submit(JobSpec(kernel="7pt", grid=8, steps=2,
                                        dim_t=1, verify=False).to_dict())
            _wait_terminal(core)
            assert core.spans(plain["id"]) is None
        finally:
            core.drain(timeout=30.0)


class TestServeMetrics:
    def test_ledger_reconciles_after_mixed_tenant_soak(self, tmp_path):
        core = ServeCore(tmp_path / "s", workers=2, fsync=False,
                         tenant_quota=50)
        core.start()
        rng = np.random.default_rng(5)
        try:
            for i in range(9):
                spec = JobSpec(
                    kernel="7pt", grid=8, steps=3, dim_t=1,
                    tenant=f"tenant-{i % 3}",
                    priority=int(rng.integers(0, 3)),
                    verify=False,
                )
                core.submit(spec.to_dict())
            _wait_terminal(core)
        finally:
            core.drain(timeout=30.0)
        assert core.ledger_reconciliation() == []
        per = core.ledger.per_tenant()
        assert set(per) == {"tenant-0", "tenant-1", "tenant-2"}
        assert core.ledger.totals()["site_updates"] > 0

    def test_queue_wait_quantiles_and_queue_age(self, tmp_path):
        core = ServeCore(tmp_path / "s", workers=1, fsync=False)
        core.start()
        try:
            for _ in range(3):
                core.submit(JobSpec(kernel="7pt", grid=8, steps=2, dim_t=1,
                                    verify=False).to_dict())
            _wait_terminal(core)
        finally:
            core.drain(timeout=30.0)
        doc = core.metrics.to_dict()
        q = doc["quantiles"]
        for name in ("serve.queue_wait_s", "serve.service_s",
                     "serve.latency_s"):
            assert q[name]["count"] == 3, name
            assert q[name]["p99"] >= 0.0
        assert "serve.queue_age_s" in doc.get("histograms", {})
        st = core.stats()
        assert st["latency"]["serve.queue_wait_s"]["count"] == 3
        assert st["ledger_mismatches"] == []

    def test_prometheus_exposition_format(self):
        reg = MetricsRegistry()
        reg.arm()
        reg.inc("serve.completed", 3)
        reg.set_gauge("serve.queue_depth", 2)
        reg.observe_quantile("serve.queue_wait_s", 0.25)
        reg.observe("serve.queue_age_s", 0.5)
        text = prometheus_exposition(reg.to_dict())
        assert "# TYPE repro_serve_completed_total counter" in text
        assert "repro_serve_completed_total 3" in text
        assert "repro_serve_queue_depth 2" in text
        assert 'repro_serve_queue_wait_s{quantile="0.99"}' in text
        assert "repro_serve_queue_wait_s_count 1" in text
        assert "repro_serve_queue_age_s_sum" in text
        assert text.endswith("\n")


class TestDroppedSpanSurfacing:
    def test_metrics_document_carries_dropped_counter(self):
        TRACE.arm(capacity=4)
        for i in range(9):
            with TRACE.span("tile", i=i):
                pass
        doc = metrics_document()
        assert doc["counters"]["obs.dropped_spans"] == TRACE.dropped() > 0

    def test_write_chrome_trace_warns_on_stderr(self, tmp_path, capsys):
        TRACE.arm(capacity=4)
        for i in range(9):
            with TRACE.span("tile", i=i):
                pass
        write_chrome_trace(str(tmp_path / "t.json"))
        err = capsys.readouterr().err
        assert "dropped" in err and "ring buffer" in err

    def test_no_warning_when_nothing_dropped(self, tmp_path, capsys):
        TRACE.arm()
        with TRACE.span("tile"):
            pass
        write_chrome_trace(str(tmp_path / "t.json"))
        assert capsys.readouterr().err == ""


class TestPhaseRollup:
    def test_serve_spans_grouped_under_serving(self):
        for name in ("job_submit", "job_admit", "job_queue_wait", "job_run",
                     "job_round", "job_respond"):
            assert SPAN_PHASES[name] == "serving"

    def test_summarize_trace_reports_serving_phase(self):
        tid = mint_trace_id()
        log = JobTraceLog(tid, "j")
        t0 = time.time_ns()
        log.add("job_admit", t0, t0 + 1_000_000)
        log.add("job_run", t0 + 1_000_000, t0 + 9_000_000)
        doc = merge_job_trace(log.to_dicts(), [], trace_id=tid)
        lines = summarize_trace(doc)
        text = "\n".join(lines)
        assert "by phase:" in text
        assert "serving" in text
