"""Trapezoid region arithmetic for space-time blocking.

When ``dim_T`` time steps are executed on a tile held in on-chip memory, the
region with correct values shrinks by the stencil radius R per time step away
from every *cut* edge (an edge interior to the grid).  Edges that coincide
with the physical grid boundary do not shrink, because the boundary shell is
held constant in time (Section V-C: "z0 ... does not change with time").

This module provides the per-axis interval arithmetic used by every temporal
executor: the loaded extent of a tile, the computable region at each
intermediate time instance, and the decomposition of the grid interior into
tile cores (the ``dim - 2·R·dim_T`` valid regions of Equation 2).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "AxisTile",
    "axis_tiles",
    "compute_range",
    "loaded_extent",
    "Tile2D",
    "plan_tiles_2d",
    "SlabSplit",
    "split_slab",
]


@dataclass(frozen=True)
class AxisTile:
    """One tile along a single axis.

    ``core`` is the half-open range of final outputs this tile owns;
    ``extent`` is the half-open range of source data it loads (core plus a
    halo of ``radius * dim_t``, clipped to the axis).
    """

    core: tuple[int, int]
    extent: tuple[int, int]

    @property
    def core_size(self) -> int:
        return self.core[1] - self.core[0]

    @property
    def extent_size(self) -> int:
        return self.extent[1] - self.extent[0]


def loaded_extent(core: tuple[int, int], n: int, halo: int) -> tuple[int, int]:
    """Source extent needed for a tile core after ``halo`` total shrink steps."""
    return (max(0, core[0] - halo), min(n, core[1] + halo))


def compute_range(
    core: tuple[int, int],
    n: int,
    radius: int,
    dim_t: int,
    t: int,
) -> tuple[int, int]:
    """Computable range along one axis at time instance ``t`` (1-based).

    At ``t = dim_t`` this is exactly the core; at earlier instances it is the
    core expanded by ``radius * (dim_t - t)``, clamped to the grid interior
    ``[radius, n - radius)``.  The clamp encodes the no-shrink-at-boundary
    property: intermediate values adjacent to the physical boundary are exact
    because the boundary is constant in time.
    """
    if not 1 <= t <= dim_t:
        raise ValueError(f"time instance {t} outside [1, {dim_t}]")
    grow = radius * (dim_t - t)
    lo = max(radius, core[0] - grow)
    hi = min(n - radius, core[1] + grow)
    return (lo, hi)


def axis_tiles(n: int, radius: int, dim_t: int, tile: int) -> list[AxisTile]:
    """Decompose the interior ``[R, n-R)`` of one axis into tile cores.

    ``tile`` is the on-chip blocking dimension (the paper's ``dim_X``); the
    usable core per tile is ``tile - 2·R·dim_T`` (Equation 2's numerator),
    except that cores touching the physical boundary need no halo on that
    side and may extend their loaded extent less.

    Raises ``ValueError`` when ``tile`` is too small to make progress.
    """
    halo = radius * dim_t
    core_size = tile - 2 * halo
    interior = (radius, n - radius)
    if interior[0] >= interior[1]:
        raise ValueError(f"axis of size {n} has no interior for radius {radius}")
    if tile >= n:
        # The whole axis fits on chip: a single boundary-to-boundary tile
        # with no cut edges and hence no ghost cells at all.
        return [AxisTile(core=interior, extent=(0, n))]
    if core_size < 1:
        raise ValueError(
            f"tile {tile} cannot host 2*R*dim_T = {2 * halo} ghost cells"
        )
    tiles: list[AxisTile] = []
    lo = interior[0]
    while lo < interior[1]:
        hi = min(lo + core_size, interior[1])
        core = (lo, hi)
        tiles.append(AxisTile(core=core, extent=loaded_extent(core, n, halo)))
        lo = hi
    return tiles


@dataclass(frozen=True)
class Tile2D:
    """An XY tile: the cross product of one Y axis tile and one X axis tile."""

    y: AxisTile
    x: AxisTile

    @property
    def core_points(self) -> int:
        return self.y.core_size * self.x.core_size

    @property
    def extent_points(self) -> int:
        return self.y.extent_size * self.x.extent_size


def plan_tiles_2d(
    ny: int,
    nx: int,
    radius: int,
    dim_t: int,
    tile_y: int,
    tile_x: int,
) -> list[Tile2D]:
    """All XY tiles covering the grid interior, in row-major order."""
    return [
        Tile2D(y=ty, x=tx)
        for ty in axis_tiles(ny, radius, dim_t, tile_y)
        for tx in axis_tiles(nx, radius, dim_t, tile_x)
    ]


@dataclass(frozen=True)
class SlabSplit:
    """A rank's Z slab split for comm/compute overlap.

    ``interior`` is the part of the owned range ``[z0, z1)`` that sits at
    least ``halo = R * dim_T`` planes from every *cut* edge, so a blocked
    round over it depends only on owned planes — it can run while halo
    messages are in flight.  ``lo_strip`` / ``hi_strip`` are the remaining
    boundary strips (``None`` at a physical boundary), each blocked on the
    matching ghost planes.  All three are :class:`AxisTile`\\ s along Z:
    ``core`` is the output planes the region owns, ``extent`` the source
    planes its blocked round must read.

    When the slab is too thin to leave any interior (``interior is None``)
    the split degenerates and the caller must fall back to the fused
    exchange-then-compute schedule for that rank.
    """

    z0: int
    z1: int
    halo: int
    interior: AxisTile | None
    lo_strip: AxisTile | None
    hi_strip: AxisTile | None

    @property
    def owned(self) -> int:
        return self.z1 - self.z0

    def split_extent_planes(self) -> int:
        """Plane-sweeps the split schedule performs (its working set in Z)."""
        return sum(
            r.extent_size
            for r in (self.interior, self.lo_strip, self.hi_strip)
            if r is not None
        )

    def fused_extent_planes(self) -> int:
        """Plane-sweeps of the fused exchange-then-compute schedule."""
        lo = self.halo if self.lo_strip is not None or self.interior is None else 0
        hi = self.halo if self.hi_strip is not None or self.interior is None else 0
        return self.owned + lo + hi

    def redundant_planes(self) -> int:
        """Extra plane-sweeps the split pays to decouple interior from halos.

        Each boundary strip re-reads ~``2*halo`` planes that the fused
        schedule would have swept once, the classic overlap overestimation
        (analogous to the ghost-cell overhead of Equation 2).  Zero when the
        split degenerated to the fused fallback.
        """
        if self.interior is None:
            return 0
        return self.split_extent_planes() - self.fused_extent_planes()

    def overestimation(self) -> float:
        """Redundant work as a fraction of the fused schedule's sweeps."""
        return self.redundant_planes() / self.fused_extent_planes()


def split_slab(
    z0: int,
    z1: int,
    nz: int,
    halo: int,
    lo_cut: bool,
    hi_cut: bool,
) -> SlabSplit:
    """Split an owned Z range into overlap interior plus boundary strips.

    ``halo = R * dim_T`` is the depth a blocked round's dependence cone
    reaches past a cut edge.  The interior core pulls in by ``halo`` per cut
    side only — a physical boundary (``lo_cut``/``hi_cut`` False) does not
    shrink, because the constant Dirichlet shell makes every plane next to
    it exact (the same no-shrink property :func:`compute_range` encodes).
    The interior's extent is exactly the owned planes: it never reads a
    ghost.  Strip extents are the usual core ± ``halo``, clipped to the
    grid, and land entirely inside owned ∪ ghost planes.
    """
    if z1 <= z0:
        raise ValueError(f"empty slab [{z0}, {z1})")
    if halo < 1:
        raise ValueError("halo must be >= 1")
    ilo = z0 + (halo if lo_cut else 0)
    ihi = z1 - (halo if hi_cut else 0)
    if ilo >= ihi:  # too thin: nothing computable before the halos arrive
        return SlabSplit(z0, z1, halo, None, None, None)
    interior = AxisTile(core=(ilo, ihi), extent=(z0, z1))
    lo_strip = (
        AxisTile(core=(z0, ilo), extent=loaded_extent((z0, ilo), nz, halo))
        if lo_cut
        else None
    )
    hi_strip = (
        AxisTile(core=(ihi, z1), extent=loaded_extent((ihi, z1), nz, halo))
        if hi_cut
        else None
    )
    return SlabSplit(z0, z1, halo, interior, lo_strip, hi_strip)
