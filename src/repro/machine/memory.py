"""Memory-hierarchy composition and stencil address-trace simulation.

Drives the cache/TLB simulators with the line-level access streams of the
paper's kernels, so the working-set arguments of Sections III and VII can be
checked by measurement instead of assertion:

* a Jacobi sweep re-touches each XY slab ``2R+1`` times as z advances —
  if the LLC holds ~3 slabs the re-touches hit (the paper's "3 XY slabs
  ... fit well in the 8 MB L3"), and external traffic collapses to the
  compulsory one-read-one-write per element;
* when slabs outgrow the LLC, every touch misses and traffic inflates by
  up to ``2R+1``;
* LBM's 20 concurrent streams have no reuse at all — every line of every
  stream misses once per time step, plus RFO traffic on the stores.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cache import Cache, CacheStats
from .tlb import Tlb

__all__ = ["MemoryHierarchy", "SweepReport", "simulate_jacobi_sweep", "simulate_streaming_pass"]


@dataclass
class SweepReport:
    """External-memory traffic and per-level statistics of a simulated run."""

    external_read_bytes: int = 0
    external_write_bytes: int = 0
    level_stats: list[CacheStats] = field(default_factory=list)
    tlb_miss_rate: float = 0.0

    @property
    def external_bytes(self) -> int:
        return self.external_read_bytes + self.external_write_bytes


class MemoryHierarchy:
    """An inclusive cascade of cache levels plus an optional TLB."""

    def __init__(self, levels: list[Cache], tlb: Tlb | None = None) -> None:
        if not levels:
            raise ValueError("need at least one cache level")
        self.levels = levels
        self.tlb = tlb
        self.external_reads = 0  # lines fetched from memory
        self.external_writebacks = 0

    @property
    def line(self) -> int:
        return self.levels[-1].line

    def access(self, addr: int, write: bool = False) -> None:
        """One byte-address access through the hierarchy."""
        if self.tlb is not None:
            self.tlb.access(addr)
        for level in self.levels:
            wb_before = level.stats.writebacks
            hit = level.access(addr, write)
            if level is self.levels[-1]:
                self.external_writebacks += level.stats.writebacks - wb_before
            if hit:
                return
        self.external_reads += 1

    def access_line(self, lineno: int, write: bool = False) -> None:
        self.access(lineno * self.line, write)

    def external_traffic_bytes(self) -> tuple[int, int]:
        """(read bytes, write bytes) that crossed to external memory."""
        return (
            self.external_reads * self.line,
            self.external_writebacks * self.line,
        )

    def drain(self) -> None:
        """Flush every level, accounting final dirty writebacks externally."""
        self.external_writebacks += self.levels[-1].flush()
        for level in self.levels[:-1]:
            level.flush()

    def report(self) -> SweepReport:
        reads, writes = self.external_traffic_bytes()
        return SweepReport(
            external_read_bytes=reads,
            external_write_bytes=writes,
            level_stats=[lvl.stats for lvl in self.levels],
            tlb_miss_rate=self.tlb.stats.miss_rate if self.tlb else 0.0,
        )


def _plane_line_range(base: int, z: int, plane_bytes: int, line: int) -> range:
    start = base + z * plane_bytes
    return range(start // line, (start + plane_bytes + line - 1) // line)


def simulate_jacobi_sweep(
    hierarchy: MemoryHierarchy,
    shape: tuple[int, int, int],
    element_size: int,
    radius: int = 1,
    steps: int = 1,
    drain: bool = True,
) -> SweepReport:
    """Simulate the line traffic of ``steps`` naive Jacobi sweeps.

    Two grids A and B (Jacobi double buffering); each z-iteration reads the
    ``2R+1`` source planes around z and writes the destination plane z.
    Plane visits stream their lines in address order, matching the hardware
    prefetch-friendly layout the paper describes for 2.5D streaming.
    """
    nz, ny, nx = shape
    plane_bytes = ny * nx * element_size
    grid_bytes = nz * plane_bytes
    base_a, base_b = 0, grid_bytes
    line = hierarchy.line
    for _ in range(steps):
        for z in range(radius, nz - radius):
            for dz in range(-radius, radius + 1):
                for ln in _plane_line_range(base_a, z + dz, plane_bytes, line):
                    hierarchy.access_line(ln, write=False)
            for ln in _plane_line_range(base_b, z, plane_bytes, line):
                hierarchy.access_line(ln, write=True)
        base_a, base_b = base_b, base_a
    if drain:
        hierarchy.drain()
    return hierarchy.report()


def simulate_streaming_pass(
    hierarchy: MemoryHierarchy,
    shape: tuple[int, int, int],
    element_size: int,
    n_read_streams: int = 20,
    n_write_streams: int = 19,
    steps: int = 1,
    drain: bool = True,
) -> SweepReport:
    """Simulate LBM-style streaming: many SoA streams, no reuse (Sec. III-A).

    Each stream is a separate (nz*ny*nx*itemsize)-byte array; every time
    step touches every line of every read stream and dirties every line of
    every write stream.
    """
    nz, ny, nx = shape
    itemsize = element_size // max(1, (n_read_streams))
    stream_bytes = nz * ny * nx * max(1, itemsize)
    line = hierarchy.line
    lines_per_stream = (stream_bytes + line - 1) // line
    for _ in range(steps):
        for s in range(n_read_streams):
            base_line = (s * stream_bytes) // line
            for ln in range(base_line, base_line + lines_per_stream):
                hierarchy.access_line(ln, write=False)
        for s in range(n_write_streams):
            base_line = ((n_read_streams + s) * stream_bytes) // line
            for ln in range(base_line, base_line + lines_per_stream):
                hierarchy.access_line(ln, write=True)
    if drain:
        hierarchy.drain()
    return hierarchy.report()
