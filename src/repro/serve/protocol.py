"""Wire protocol and job model for the stencil-serving daemon.

The daemon speaks a thin newline-delimited JSON protocol over a stream
socket: one request object per line, one response object per line.  A
request is ``{"op": <name>, ...}``; a response always carries ``"ok"``
(plus ``"error"``/``"reason"`` when ``ok`` is false), so a client never
has to guess whether a reply is a rejection or a transport hiccup.

The job model mirrors the CLI's exit-code contract: a terminal
:class:`JobRecord` maps to the same 0/2/3/4 codes ``repro run`` uses —
0 completed clean, 2 rejected/shed by admission control (never executed),
3 completed degraded-but-correct (backend ladder descent, overload-shed
verification), 4 failed (deadline exceeded, cancelled, execution error).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

__all__ = [
    "PROTOCOL_VERSION",
    "JobRecord",
    "JobSpec",
    "STATUS_CODES",
    "TERMINAL_STATUSES",
    "read_message",
    "write_message",
]

#: bumped on wire-visible changes; servers refuse a mismatched client
PROTOCOL_VERSION = 1

#: job status -> exit-code-style verdict
STATUS_CODES = {
    "queued": None,
    "running": None,
    "done": 0,
    "rejected": 2,
    "shed": 2,
    "degraded": 3,
    "failed": 4,
    "cancelled": 4,
}

#: statuses a job can never leave
TERMINAL_STATUSES = frozenset(
    s for s, code in STATUS_CODES.items() if code is not None
)


@dataclass
class JobSpec:
    """What a tenant asks the daemon to compute.

    Deterministic by construction: the initial grid is derived from
    ``(grid, precision, seed)`` exactly as ``repro run`` derives it, so a
    completed job's result hash is reproducible offline — the property the
    chaos soak and the drain/zero-loss acceptance tests check.
    """

    kernel: str = "7pt"
    grid: int = 16
    steps: int = 4
    dim_t: int = 2
    tile: int = 8
    precision: str = "sp"
    seed: int = 0
    backend: str | None = None
    #: 0 = highest; larger numbers are shed first under overload
    priority: int = 1
    tenant: str = "default"
    #: wall-clock budget from acceptance to completion, seconds
    deadline_s: float | None = None
    #: cross-check the result against the naive reference (overload may
    #: shed this; the job then completes as degraded-but-correct)
    verify: bool = True
    #: silent-data-corruption integrity tier (``off``/``spot``/``seal``/
    #: ``full``, see :mod:`repro.resilience.sdc`).  Verification cpu is
    #: metered per tenant (``verify_cpu_ns`` in the usage ledger); under
    #: amber overload the tier is shed exactly like result verification
    #: and the job completes degraded-but-correct
    integrity: str = "off"
    #: end-to-end trace correlation id minted by the client at submit;
    #: stamped on every job span on both sides of the socket.  Empty means
    #: "untraced" — older clients simply never send the field
    #: (``from_dict`` filters unknown keys in both directions).
    trace_id: str = ""

    def validate(self) -> str | None:
        """A usage-error reason string, or None when the spec is runnable."""
        if self.kernel not in ("7pt", "27pt"):
            return f"unknown kernel {self.kernel!r} (serve runs 7pt/27pt)"
        if not 4 <= int(self.grid) <= 512:
            return f"grid {self.grid} outside the served range [4, 512]"
        if not 1 <= int(self.steps) <= 100_000:
            return f"steps {self.steps} outside the served range [1, 100000]"
        if int(self.dim_t) < 1 or int(self.tile) < 1:
            return "dim_t and tile must be >= 1"
        if self.precision not in ("sp", "dp"):
            return f"unknown precision {self.precision!r}"
        if self.priority < 0:
            return "priority must be >= 0"
        if self.integrity not in ("off", "spot", "seal", "full"):
            return (
                f"unknown integrity tier {self.integrity!r} "
                "(off/spot/seal/full)"
            )
        if self.deadline_s is not None and self.deadline_s <= 0:
            return "deadline_s must be positive"
        if not self.tenant:
            return "tenant must be non-empty"
        return None

    def signature(self) -> tuple:
        """The plan-cache key: everything that shapes the bound executor."""
        return (
            self.kernel, int(self.grid), int(self.dim_t), int(self.tile),
            self.precision, self.backend or "",
        )

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, doc: dict) -> "JobSpec":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in doc.items() if k in known})


@dataclass
class JobRecord:
    """One job's full lifecycle as the daemon tracks (and journals) it."""

    id: str
    spec: JobSpec
    status: str = "queued"
    reason: str = ""
    submitted_s: float = 0.0
    started_s: float | None = None
    finished_s: float | None = None
    done_steps: int = 0
    sha256: str = ""
    backend_used: str = ""
    degradations: list[str] = field(default_factory=list)
    preemptions: int = 0
    resumes: int = 0

    @property
    def code(self) -> int | None:
        """Exit-code-style verdict (None while the job is still live)."""
        return STATUS_CODES[self.status]

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATUSES

    @property
    def latency_s(self) -> float | None:
        """Acceptance-to-completion wall time for terminal executed jobs."""
        if self.finished_s is None:
            return None
        return self.finished_s - self.submitted_s

    def to_dict(self) -> dict:
        doc = asdict(self)
        doc["code"] = self.code
        return doc

    @classmethod
    def from_dict(cls, doc: dict) -> "JobRecord":
        doc = dict(doc)
        doc.pop("code", None)
        doc["spec"] = JobSpec.from_dict(doc.get("spec") or {})
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in doc.items() if k in known})


# ----------------------------------------------------------------------
# Newline-delimited JSON framing
# ----------------------------------------------------------------------


def write_message(fh, obj: dict) -> None:
    """Serialize one protocol message (newline-delimited JSON) and flush."""
    fh.write(json.dumps(obj, separators=(",", ":")).encode() + b"\n")
    fh.flush()


def read_message(fh) -> dict | None:
    """Read one message; None on EOF; ValueError on a malformed line."""
    line = fh.readline()
    if not line:
        return None
    doc = json.loads(line.decode())
    if not isinstance(doc, dict):
        raise ValueError("protocol messages must be JSON objects")
    return doc
