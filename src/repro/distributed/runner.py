"""Distributed Jacobi driver: slab-decomposed 3.5D blocking over SimComm.

Per blocked round of ``round_t`` time steps:

1. **halo exchange** — every rank sends its ``h = R * round_t`` boundary
   planes to each neighbor and receives the matching ghost planes (one
   ``sendrecv`` pair per internal boundary per round);
2. **local compute** — each rank runs one 3.5D round (or ``round_t`` naive
   sweeps) on its ghost-augmented slab.  By the depth induction of
   :mod:`repro.core.periodic`, every owned plane sits at depth ``>= h``
   from the slab cuts and is therefore exact; stale values nearer the cut
   are discarded;
3. the owned slab is replaced by the augmented result's core.

The naive scheme exchanges width-R halos every time step; temporal blocking
sends the *same total volume* in ``1/dim_T`` as many messages — the
latency-term reduction that distributed temporal blocking exists for
(Wittmann et al., Section II), which `transfer_time` makes quantitative.

**Comm/compute overlap** (``overlap=True``, the default) takes the rest of
the win: the round becomes *post → interior → wait → boundary*.  Every
rank posts its halo sends and receives up front (``isend``/``irecv``),
then immediately runs the blocked round on the *interior* of its slab —
the part :func:`repro.core.regions.split_slab` proves computable from
owned planes alone (pulled in by ``h`` per cut side; physical boundaries
don't shrink).  Only then does it ``wait`` on the ghost planes and finish
the two boundary strips.  The interior sweep's wall time is reported to
the communicator's simulated clock, so the transfer time it covers is
counted as *hidden* (``CommStats.overlapped_ns``) and only the remainder
as an exposed stall — measured, not assumed.  Results are bit-identical
to the exchange-then-compute schedule (and hence to the naive oracle): the
interior planes satisfy the same depth induction, and each strip's extent
lands entirely inside owned ∪ ghost planes.  A slab too thin to leave an
interior falls back to the fused schedule for that rank, still through
the nonblocking handles.

The driver is also **rank-failure tolerant** (``recover=True``).  Each
round starts with a buddy checkpoint — every rank replicates its
round-start slab in-memory to the next live rank — and a heartbeat probe
per rank (the ``rank.crash`` fault site).  A rank that dies is detected at
the next halo exchange (:class:`RankDeadError` from ``SimComm.recv``, not
a hang), and the run recovers instead of aborting:

    detect -> re-decompose -> buddy-restore -> replay

The surviving ranks rebuild the slab map over themselves
(:func:`decompose_z` with explicit rank ids), restore every round-start
slab from the :class:`~repro.resilience.rankrecovery.BuddyStore` (the dead
rank's from its buddy replica), purge the half-exchanged mail, and replay
the interrupted round — at most one blocked round of work is lost, and the
final field is bit-identical to a fault-free run because each round reads
only the full grid state of the previous one.  Every recovery is recorded
in :attr:`DistributedJacobi.recovery`, the ``resilience.*`` counters, and
a ``rank_recovery`` trace span.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.blocking35d import Blocking35D
from ..core.naive import naive_sweep, run_naive
from ..core.regions import loaded_extent, split_slab
from ..core.traffic import TrafficStats
from ..obs.metrics import METRICS
from ..obs.trace import TRACE
from ..resilience.rankrecovery import (
    BuddySnapshot,
    BuddyStore,
    RankDeadError,
    RecoveryReport,
    UnrecoverableRankFailureError,
    buddy_of,
)
from ..resilience.sdc import (
    INTEGRITY_TIERS,
    SdcError,
    SdcReport,
    SdcUnhealableError,
    inject_flips,
    plane_crcs,
)
from ..stencils.base import PlaneKernel
from ..stencils.grid import Field3D, copy_shell
from .comm import SimComm
from .decompose import Slab, decompose_z

__all__ = ["DistributedJacobi"]

_TAG_UP = 1  # planes travelling toward higher z
_TAG_DOWN = 2


class DistributedJacobi:
    """Slab-parallel Jacobi with per-round halo exchange.

    Parameters
    ----------
    kernel:
        Any :class:`PlaneKernel`; kernels with per-cell state must
        implement ``restricted_to``.
    n_ranks:
        Number of simulated ranks (Z slabs).
    dim_t:
        Temporal blocking factor; 1 reproduces the classic
        exchange-every-step scheme.
    scheme:
        ``"35d"`` runs a 3.5D round per exchange; ``"naive"`` runs plain
        sweeps (still ``dim_t`` per exchange — set ``dim_t=1`` for the
        classic baseline).
    recover:
        When True (default), rank failures are survived via buddy
        checkpoints and elastic re-decomposition; when False, the first
        dead rank surfaces as :class:`RankDeadError`.
    overlap:
        When True (default), each round runs post → interior → wait →
        boundary, hiding in-flight transfer time behind the interior
        sweep; when False, the classic exchange-then-compute schedule.
        Both produce bit-identical results.
    latency_s / bandwidth_bytes_s:
        The communicator's in-flight cost model (see :class:`SimComm`);
        with the default ``latency_s=0`` transfers are instantaneous and
        the hidden/exposed accounting stays zero.
    integrity:
        Silent-data-corruption tier (``off``/``spot``/``seal``/``full``,
        see :mod:`repro.resilience.sdc`).  Any active tier CRC-seals
        every rank's slab planes at the end of each round and verifies
        them at the top of the next — *before* the buddy checkpoint, so
        the snapshots stay clean — healing detected planes by replaying
        their ``R * round_t`` propagation cone from the previous round's
        buddy snapshots (the in-memory "last sealed state").  ``seal``
        and ``full`` additionally run the cross-rank halo handshake:
        each received ghost plane is checksummed against the sender's
        *seal-time* CRC, catching compute-side corruption of the
        boundary planes — distinct from the transport CRC inside
        :class:`SimComm`, which only covers the wire.  The
        ``memory.flip`` fault site fires per rank per round (detail
        ``"rank:round"``) after sealing.  Healing needs the buddy
        snapshots, i.e. ``recover=True`` and at least two live ranks.
    """

    def __init__(
        self,
        kernel: PlaneKernel,
        n_ranks: int,
        dim_t: int = 1,
        tile_y: int | None = None,
        tile_x: int | None = None,
        scheme: str = "35d",
        loss: float = 0.0,
        corruption: float = 0.0,
        comm_seed: int = 0,
        max_retries: int = 3,
        recover: bool = True,
        overlap: bool = True,
        latency_s: float = 0.0,
        bandwidth_bytes_s: float | None = None,
        integrity: str = "off",
        sdc_seed: int = 0,
        sdc_max_heals: int = 3,
    ) -> None:
        if scheme not in ("35d", "naive"):
            raise ValueError(f"unknown scheme {scheme!r}")
        if dim_t < 1:
            raise ValueError("dim_t must be >= 1")
        if integrity not in INTEGRITY_TIERS:
            raise ValueError(
                f"unknown integrity tier {integrity!r}; known: "
                f"{', '.join(INTEGRITY_TIERS)}"
            )
        self.kernel = kernel
        self.n_ranks = n_ranks
        self.dim_t = dim_t
        self.tile_y = tile_y
        self.tile_x = tile_x
        self.scheme = scheme
        # transport imperfection model, forwarded to SimComm: halo exchanges
        # survive injected/random drops via its ack/retry protocol
        self.loss = loss
        self.corruption = corruption
        self.comm_seed = comm_seed
        self.max_retries = max_retries
        self.recover = recover
        self.overlap = overlap
        self.latency_s = latency_s
        self.bandwidth_bytes_s = bandwidth_bytes_s
        self.integrity = integrity
        self.sdc_seed = sdc_seed
        self.sdc_max_heals = sdc_max_heals
        self.sdc_report = SdcReport(tier=integrity)
        #: per-rank seal-time plane CRCs of the previous round's output
        #: (None until the first round seals, and after any recovery)
        self._seals: dict[int, list[int]] | None = None
        self.recovery = RecoveryReport(initial_ranks=n_ranks,
                                       final_ranks=n_ranks)

    # ------------------------------------------------------------------
    def run(
        self,
        field: Field3D,
        steps: int,
        traffic: TrafficStats | None = None,
    ) -> tuple[Field3D, SimComm]:
        """Advance ``field`` by ``steps``; returns (result, communicator).

        The communicator carries the per-rank message/byte statistics;
        :attr:`recovery` carries the rank-failure record of this run.
        """
        if steps < 0:
            raise ValueError("steps must be >= 0")
        r = self.kernel.radius
        halo = r * self.dim_t
        live = list(range(self.n_ranks))
        slabs = decompose_z(field.nz, len(live), halo, ranks=live)
        comm = SimComm(
            self.n_ranks,
            loss=self.loss,
            corruption=self.corruption,
            seed=self.comm_seed,
            max_retries=self.max_retries,
            latency_s=self.latency_s,
            bandwidth_bytes_s=self.bandwidth_bytes_s,
        )
        local = {s.rank: field.data[:, s.z0 : s.z1].copy() for s in slabs}
        buddies = BuddyStore()
        report = RecoveryReport(initial_ranks=self.n_ranks,
                                final_ranks=self.n_ranks)
        self.recovery = report
        sdc = SdcReport(tier=self.integrity)
        self.sdc_report = sdc
        self._seals = None
        # cone height of a seal-to-verify window = steps of the round that
        # produced the sealed state (the final round may be shorter)
        last_round_t = self.dim_t

        with TRACE.span("sweep", executor="distributed", steps=steps,
                        ranks=self.n_ranks, scheme=self.scheme):
            remaining = steps
            round_index = 0
            while remaining > 0:
                round_t = min(self.dim_t, remaining)
                if self._seals is not None:
                    # verify BEFORE the buddy checkpoint refreshes: the
                    # snapshots are the trusted base the heal replays from,
                    # and must stay the previous round's clean start state
                    self._sdc_verify(
                        slabs, local, comm, buddies, last_round_t,
                        field.nz, steps - remaining,
                    )
                if self.recover and len(live) > 1:
                    self._buddy_checkpoint(
                        live, slabs, local, buddies, round_index
                    )
                for rank in live:
                    comm.heartbeat(rank)
                if all(not comm.alive(rank) for rank in live):
                    raise UnrecoverableRankFailureError(
                        f"all {len(live)} remaining rank(s) crashed at round "
                        f"{round_index}"
                    )
                try:
                    with TRACE.span("round", index=round_index,
                                    round_t=round_t, ranks=len(live)):
                        if self.overlap:
                            self._exchange_and_compute_overlap(
                                slabs, local, comm, round_t, traffic,
                                field.nz,
                            )
                        else:
                            self._exchange_and_compute(
                                slabs, local, comm, round_t, traffic
                            )
                except RankDeadError:
                    if not self.recover:
                        raise
                    live, slabs, local = self._recover(
                        field, live, slabs, comm, buddies, report,
                        round_index, halo,
                    )
                    # the replayed round rebinds every slab; the old seals
                    # describe state that no longer exists
                    self._seals = None
                    continue  # replay the interrupted round
                if self.integrity != "off":
                    self._seals = {
                        s.rank: plane_crcs(local[s.rank]) for s in slabs
                    }
                    sdc.sealed_planes += field.nz
                    last_round_t = round_t
                    for s in slabs:
                        # the memory.flip probe fires per rank per round,
                        # AFTER sealing — an injected flip is in-window
                        inject_flips(
                            local[s.rank], rank=s.rank,
                            round_index=round_index, seed=self.sdc_seed,
                        )
                remaining -= round_t
                round_index += 1
            if self._seals is not None:
                # flips landing after the final seal stay in-window
                self._sdc_verify(
                    slabs, local, comm, buddies, last_round_t,
                    field.nz, steps,
                )

        report.buddy_bytes = buddies.bytes_replicated
        report.buddy_snapshots = buddies.snapshots
        report.final_ranks = len(live)
        gathered = Field3D(
            np.concatenate([local[s.rank] for s in slabs], axis=1)
        )
        assert comm.pending() == 0
        if METRICS.armed:
            METRICS.merge_comm(comm)
            METRICS.merge_recovery(report)
        return gathered, comm

    # ------------------------------------------------------------------
    def _buddy_checkpoint(
        self,
        live: list[int],
        slabs: list[Slab],
        local: dict[int, np.ndarray],
        buddies: BuddyStore,
        round_index: int,
    ) -> None:
        """Replicate every rank's round-start slab to its buddy (in memory).

        The slab arrays are never mutated in place by the round (each round
        rebinds ``local[rank]`` to a fresh array), so the owner's own copy
        can alias the live slab; only the buddy replica costs a copy —
        that copy is the modeled inter-rank transfer, counted in
        ``buddy_bytes`` rather than in the halo-exchange comm stats.
        """
        for s in slabs:
            buddies.checkpoint(
                BuddySnapshot(
                    owner=s.rank,
                    round_index=round_index,
                    z0=s.z0,
                    z1=s.z1,
                    data=local[s.rank],
                    meta={"scheme": self.scheme, "dim_t": self.dim_t},
                ),
                holder=buddy_of(s.rank, live),
            )

    def _recover(
        self,
        field: Field3D,
        live: list[int],
        slabs: list[Slab],
        comm: SimComm,
        buddies: BuddyStore,
        report: RecoveryReport,
        round_index: int,
        halo: int,
    ) -> tuple[list[int], list[Slab], dict[int, np.ndarray]]:
        """The recovery path: re-decompose, buddy-restore, ready to replay.

        Reconstructs the *round-start* global state from the buddy
        snapshots (survivors serve their own copies; each dead rank's slab
        comes from its buddy replica), rebuilds the slab map over the
        surviving rank ids, and purges the half-exchanged mail of the
        aborted round.  The caller then replays the round — at most one
        blocked round of compute is lost per failure.
        """
        dead_now = [rank for rank in live if not comm.alive(rank)]
        survivors = [rank for rank in live if comm.alive(rank)]
        with TRACE.span("rank_recovery", round=round_index,
                        dead=",".join(map(str, dead_now)),
                        survivors=len(survivors)):
            if not survivors:
                raise UnrecoverableRankFailureError(
                    f"no rank survived round {round_index}"
                )
            # round-start global state, slab by slab from the buddy store
            restored = np.empty_like(field.data)
            for s in slabs:
                snap = buddies.restore(s.rank, comm.alive)
                restored[:, s.z0 : s.z1] = snap.data
            try:
                new_slabs = decompose_z(
                    field.nz, len(survivors), halo, ranks=survivors
                )
            except ValueError as exc:
                raise UnrecoverableRankFailureError(
                    f"cannot re-decompose over {len(survivors)} surviving "
                    f"rank(s): {exc}"
                ) from exc
            new_local = {
                s.rank: restored[:, s.z0 : s.z1].copy() for s in new_slabs
            }
            purged = comm.purge()
            report.failed_ranks.extend((round_index, r) for r in dead_now)
            report.recoveries += 1
            report.replayed_rounds += 1
            report.purged_messages += purged
            report.final_ranks = len(survivors)
        return survivors, new_slabs, new_local

    # ------------------------------------------------------------------
    def _sdc_verify(
        self,
        slabs: list[Slab],
        local: dict[int, np.ndarray],
        comm: SimComm,
        buddies: BuddyStore,
        round_t: int,
        nz: int,
        done: int,
    ) -> None:
        """Verify every slab against the previous round's seals; cone-heal.

        Mismatching planes are resting corruption of the previous round's
        output.  The heal replays their ``R * round_t`` propagation cone
        through the naive reference rung from the round-start global state
        still held by the buddy snapshots (the caller runs this *before*
        :meth:`_buddy_checkpoint` refreshes them), patches only the
        corrupted span, and re-verifies against the seals — bit-exact or
        :class:`SdcUnhealableError`.
        """
        report = self.sdc_report
        report.checks += 1
        if METRICS.armed:
            METRICS.inc("sdc.checks", 1)
        bad: list[int] = []  # corrupted planes, global z coordinates
        for s in slabs:
            sealed = self._seals.get(s.rank) if self._seals else None
            if sealed is None:
                continue
            crcs = plane_crcs(local[s.rank])
            bad.extend(
                s.z0 + z
                for z, (a, b) in enumerate(zip(crcs, sealed))
                if a != b
            )
        if not bad:
            return
        bad.sort()
        report.detections += 1
        report.detected_planes += len(bad)
        report.detected_at.append(done)
        if METRICS.armed:
            METRICS.inc("sdc.detected", 1)
        with TRACE.span("sdc_detected", channel="seal", step=done,
                        planes=len(bad)):
            pass
        if report.heals >= self.sdc_max_heals:
            report.unhealable += 1
            raise SdcUnhealableError(
                f"corruption detected at step {done} but the heal budget "
                f"({self.sdc_max_heals}) is exhausted — persistent "
                "corruption, restart on trusted hardware"
            )
        if not (self.recover and len(slabs) > 1 and buddies.snapshots):
            report.unhealable += 1
            raise SdcUnhealableError(
                f"corruption detected at step {done} but there is no "
                "trusted base to heal from — buddy snapshots need "
                "recover=True and at least two live ranks"
            )
        # round-start global state, slab by slab from the buddy store
        # (digest-verified at restore), then one cone replay patched back
        base = np.concatenate(
            [buddies.restore(s.rank, comm.alive).data for s in slabs],
            axis=1,
        )
        z0, z1 = bad[0], bad[-1] + 1
        h = self.kernel.radius * round_t
        e0, e1 = loaded_extent((z0, z1), nz, h)
        ny, nx = base.shape[2], base.shape[3]
        with TRACE.span("sdc_heal", step=done, planes=len(bad), z0=z0,
                        z1=z1, extent=e1 - e0, replay_steps=round_t):
            sub = Field3D(np.ascontiguousarray(base[:, e0:e1]))
            out = run_naive(
                self.kernel.restricted_to(e0, e1), sub, round_t
            )
            for s in slabs:
                lo, hi = max(s.z0, z0), min(s.z1, z1)
                if lo < hi:
                    local[s.rank][:, lo - s.z0 : hi - s.z0] = \
                        out.data[:, lo - e0 : hi - e0]
        report.heals += 1
        cells = (e1 - e0) * ny * nx * round_t
        report.replayed_cells += cells
        if METRICS.armed:
            METRICS.inc("sdc.healed", 1)
            METRICS.inc("sdc.replayed_cells", cells)
        for s in slabs:
            sealed = self._seals.get(s.rank) if self._seals else None
            if sealed is None:
                continue
            crcs = plane_crcs(local[s.rank])
            still = [
                s.z0 + z
                for z, (a, b) in enumerate(zip(crcs, sealed))
                if a != b
            ]
            if still:
                report.unhealable += 1
                raise SdcUnhealableError(
                    f"plane(s) {still} still fail seal verification after "
                    "a surgical heal — the sealed state itself was corrupt"
                )

    def _sdc_handshake(self, ghost: np.ndarray, sender: int,
                       edge: str) -> None:
        """Cross-rank halo handshake (``seal``/``full`` tiers).

        The received ghost planes must reproduce the *seal-time* CRCs of
        the sender's boundary (``edge="tail"`` for its last ``h`` planes,
        ``"head"`` for its first ``h``) — compute-side corruption of the
        boundary planes is caught at the receiver, which the transport CRC
        inside :class:`SimComm` (wire coverage only) cannot see.
        """
        if self.integrity not in ("seal", "full") or self._seals is None:
            return
        sealed = self._seals.get(sender)
        h = ghost.shape[1]
        if sealed is None or len(sealed) < h:
            return
        report = self.sdc_report
        report.checks += 1
        if METRICS.armed:
            METRICS.inc("sdc.checks", 1)
        expect = sealed[-h:] if edge == "tail" else sealed[:h]
        got = plane_crcs(ghost)
        bad = [i for i, (a, b) in enumerate(zip(got, expect)) if a != b]
        if not bad:
            return
        report.detections += 1
        report.detected_planes += len(bad)
        if METRICS.armed:
            METRICS.inc("sdc.detected", 1)
        with TRACE.span("sdc_detected", channel="handshake",
                        sender=sender, planes=len(bad)):
            pass
        raise SdcError(
            f"halo handshake failed: {len(bad)} ghost plane(s) received "
            f"from rank {sender} do not match its seal-time CRCs — "
            "compute-side corruption of the boundary planes"
        )

    # ------------------------------------------------------------------
    def _exchange_and_compute(
        self,
        slabs: list[Slab],
        local: dict[int, np.ndarray],
        comm: SimComm,
        round_t: int,
        traffic: TrafficStats | None,
    ) -> None:
        r = self.kernel.radius
        h = r * round_t
        # phase A: every live rank posts its boundary planes (a dead rank
        # posts nothing — that silence is what its neighbors detect)
        with TRACE.span("halo_exchange", phase="send", halo=h):
            for s in slabs:
                if not comm.alive(s.rank):
                    continue
                if s.hi_neighbor is not None:
                    comm.send(s.rank, s.hi_neighbor, _TAG_UP,
                              local[s.rank][:, -h:])
                if s.lo_neighbor is not None:
                    comm.send(s.rank, s.lo_neighbor, _TAG_DOWN,
                              local[s.rank][:, :h])
        # phase B: every rank assembles its augmented slab and computes;
        # a receive from a dead neighbor raises RankDeadError (detection)
        for s in slabs:
            if not comm.alive(s.rank):
                continue
            parts = []
            zlo = s.z0
            with TRACE.span("halo_exchange", phase="recv", rank=s.rank):
                if s.lo_neighbor is not None:
                    ghost = comm.recv(s.lo_neighbor, s.rank, _TAG_UP)
                    self._sdc_handshake(ghost, s.lo_neighbor, "tail")
                    parts.append(ghost)
                    zlo = s.z0 - h
                parts.append(local[s.rank])
                zhi = s.z1
                if s.hi_neighbor is not None:
                    ghost = comm.recv(s.hi_neighbor, s.rank, _TAG_DOWN)
                    self._sdc_handshake(ghost, s.hi_neighbor, "head")
                    parts.append(ghost)
                    zhi = s.z1 + h
            with TRACE.span("rank_compute", rank=s.rank):
                aug = Field3D(np.concatenate(parts, axis=1))
                out = self._advance_local(aug, zlo, zhi, round_t, traffic)
                lo_off = s.z0 - zlo
                local[s.rank] = out.data[:, lo_off : lo_off + s.owned].copy()

    # ------------------------------------------------------------------
    def _exchange_and_compute_overlap(
        self,
        slabs: list[Slab],
        local: dict[int, np.ndarray],
        comm: SimComm,
        round_t: int,
        traffic: TrafficStats | None,
        nz: int,
    ) -> None:
        """One overlapped round: post → interior → wait → boundary.

        Every live rank posts its halo sends *and* receives before anyone
        computes, then each rank runs the blocked round on its slab
        interior (owned planes only, so no ghost needed), reports that
        sweep's wall time to the communicator's clock, waits on the ghost
        planes (``halo_wait`` — the failure-detection point of the overlap
        path), and finishes the two boundary strips.  A slab too thin to
        leave an interior falls back to the fused schedule through the
        same handles.
        """
        r = self.kernel.radius
        h = r * round_t
        comm.sync_clocks()  # round barrier: in-flight time starts here
        with TRACE.span("halo_exchange", phase="post", halo=h):
            for s in slabs:
                if not comm.alive(s.rank):
                    continue
                if s.hi_neighbor is not None:
                    comm.isend(s.rank, s.hi_neighbor, _TAG_UP,
                               local[s.rank][:, -h:])
                if s.lo_neighbor is not None:
                    comm.isend(s.rank, s.lo_neighbor, _TAG_DOWN,
                               local[s.rank][:, :h])
            recvs: dict[int, tuple] = {}
            for s in slabs:
                if not comm.alive(s.rank):
                    continue
                lo_req = (comm.irecv(s.lo_neighbor, s.rank, _TAG_UP)
                          if s.lo_neighbor is not None else None)
                hi_req = (comm.irecv(s.hi_neighbor, s.rank, _TAG_DOWN)
                          if s.hi_neighbor is not None else None)
                recvs[s.rank] = (lo_req, hi_req)
        for s in slabs:
            if not comm.alive(s.rank):
                continue
            lo_req, hi_req = recvs[s.rank]
            split = split_slab(s.z0, s.z1, nz, h, s.lo_cut, s.hi_cut)
            if split.interior is None or s.owned < 2 * r + 1:
                self._compute_fused_from_handles(
                    s, local, comm, lo_req, hi_req, h, round_t, traffic
                )
                continue
            out = np.empty_like(local[s.rank])
            with TRACE.span("rank_compute", rank=s.rank, phase="interior"):
                t0 = time.perf_counter_ns()
                res = self._advance_local(
                    Field3D(local[s.rank]), s.z0, s.z1, round_t, traffic
                )
                comm.advance(s.rank, time.perf_counter_ns() - t0)
            ilo, ihi = split.interior.core
            out[:, ilo - s.z0 : ihi - s.z0] = \
                res.data[:, ilo - s.z0 : ihi - s.z0]
            with TRACE.span("halo_wait", rank=s.rank):
                lo_ghost = comm.wait(lo_req) if lo_req is not None else None
                hi_ghost = comm.wait(hi_req) if hi_req is not None else None
            if lo_ghost is not None:
                self._sdc_handshake(lo_ghost, s.lo_neighbor, "tail")
            if hi_ghost is not None:
                self._sdc_handshake(hi_ghost, s.hi_neighbor, "head")
            with TRACE.span("rank_compute", rank=s.rank, phase="boundary"):
                if split.lo_strip is not None:
                    self._compute_strip(out, split.lo_strip, s, local,
                                        lo_ghost, None, round_t, traffic)
                if split.hi_strip is not None:
                    self._compute_strip(out, split.hi_strip, s, local,
                                        None, hi_ghost, round_t, traffic)
            local[s.rank] = out

    def _compute_strip(
        self,
        out: np.ndarray,
        strip,
        s: Slab,
        local: dict[int, np.ndarray],
        lo_ghost: np.ndarray | None,
        hi_ghost: np.ndarray | None,
        round_t: int,
        traffic: TrafficStats | None,
    ) -> None:
        """Run one boundary strip and write its core planes into ``out``.

        The strip extent lies entirely inside owned ∪ ghost planes (see
        :func:`split_slab`), so the augmented strip field is a ghost +
        owned-slice concatenation and its blocked round is exact on the
        core by the usual depth induction.
        """
        (c0, c1), (e0, e1) = strip.core, strip.extent
        if lo_ghost is not None:  # low strip: ghost below + owned planes
            parts = [lo_ghost, local[s.rank][:, : e1 - s.z0]]
        else:  # high strip: owned planes + ghost above
            parts = [local[s.rank][:, e0 - s.z0 :], hi_ghost]
        aug = Field3D(np.concatenate(parts, axis=1))
        res = self._advance_local(aug, e0, e1, round_t, traffic)
        out[:, c0 - s.z0 : c1 - s.z0] = res.data[:, c0 - e0 : c1 - e0]

    def _compute_fused_from_handles(
        self,
        s: Slab,
        local: dict[int, np.ndarray],
        comm: SimComm,
        lo_req,
        hi_req,
        h: int,
        round_t: int,
        traffic: TrafficStats | None,
    ) -> None:
        """Fused fallback for slabs with no interior: wait, then compute.

        No compute ran between post and wait, so the transfer time of
        these ghosts is fully exposed — correctly so, nothing was hidden.
        """
        parts = []
        zlo = s.z0
        with TRACE.span("halo_wait", rank=s.rank, fallback="thin-slab"):
            if lo_req is not None:
                ghost = comm.wait(lo_req)
                self._sdc_handshake(ghost, s.lo_neighbor, "tail")
                parts.append(ghost)
                zlo = s.z0 - h
            parts.append(local[s.rank])
            zhi = s.z1
            if hi_req is not None:
                ghost = comm.wait(hi_req)
                self._sdc_handshake(ghost, s.hi_neighbor, "head")
                parts.append(ghost)
                zhi = s.z1 + h
        with TRACE.span("rank_compute", rank=s.rank, phase="fused"):
            aug = Field3D(np.concatenate(parts, axis=1))
            res = self._advance_local(aug, zlo, zhi, round_t, traffic)
            lo_off = s.z0 - zlo
            local[s.rank] = res.data[:, lo_off : lo_off + s.owned].copy()

    def _advance_local(
        self,
        aug: Field3D,
        zlo: int,
        zhi: int,
        round_t: int,
        traffic: TrafficStats | None,
    ) -> Field3D:
        kernel = self.kernel.restricted_to(zlo, zhi)
        if self.scheme == "35d":
            ty = self.tile_y or aug.ny
            tx = self.tile_x or aug.nx
            ex = Blocking35D(kernel, dim_t=round_t, tile_y=ty, tile_x=tx)
            return ex.run(aug, round_t, traffic)
        src = aug.copy()
        dst = aug.like()
        copy_shell(src, dst, kernel.radius)
        for _ in range(round_t):
            naive_sweep(kernel, src, dst, traffic)
            src, dst = dst, src
        return src

    # ------------------------------------------------------------------
    def expected_messages(self, nz: int, steps: int) -> int:
        """Messages a full run generates: 2 per internal boundary per round."""
        rounds = -(-steps // self.dim_t)
        return 2 * (self.n_ranks - 1) * rounds

    def expected_bytes(self, field: Field3D, steps: int) -> int:
        """Total exchanged payload: volume is dim_T-independent."""
        r = self.kernel.radius
        per_round_planes = r * self.dim_t
        rounds, rem = divmod(steps, self.dim_t)
        plane = field.ny * field.nx * field.element_size()
        total = 2 * (self.n_ranks - 1) * per_round_planes * plane * rounds
        if rem:
            total += 2 * (self.n_ranks - 1) * r * rem * plane
        return total
