"""Figure 4(b): 7-point stencil on the Core i7 across grid sizes and schemes.

Model series checked against the paper's anchors (naive bandwidth bound at
~21-22 GB/s; 3.5D ~3900 SP / ~1995 DP, 1.5X over no-blocking and 1.4X over
spatial-only; small grids see no benefit), plus a measured run of the real
NumPy executors with the traffic reduction that drives the figure.
"""

import numpy as np
import pytest

from repro.core import Blocking35D, TrafficStats, run_naive
from repro.perf import format_table, predict_7pt_cpu
from repro.stencils import Field3D, SevenPointStencil

from .conftest import banner, record

GRIDS = (64, 256, 512)
SCHEMES = ("none", "spatial", "35d")


def model_series():
    return {
        (p, g, s): predict_7pt_cpu(s, p, g)
        for p in ("sp", "dp")
        for g in GRIDS
        for s in SCHEMES
    }


def test_fig4b_model_series(benchmark):
    series = benchmark(model_series)
    rows = [
        (f"{p.upper()} {g}^3", *(f"{series[(p, g, s)].mupdates_per_s:.0f}" for s in SCHEMES))
        for p in ("sp", "dp")
        for g in GRIDS
    ]
    print(banner("Figure 4(b): 7pt CPU MU/s (model)"))
    print(format_table(["case", "no blocking", "spatial", "3.5D"], rows))

    sp35 = series[("sp", 256, "35d")].mupdates_per_s
    assert sp35 == pytest.approx(3900, rel=0.1)
    assert series[("dp", 256, "35d")].mupdates_per_s == pytest.approx(1995, rel=0.1)
    # "a 1.5X speed up over no-blocking, and 1.4X over spatial blocking only"
    assert sp35 / series[("sp", 256, "none")].mupdates_per_s == pytest.approx(1.5, abs=0.15)
    # small grids: blocking is a slight slowdown
    assert series[("sp", 64, "35d")].mupdates_per_s < series[("sp", 64, "none")].mupdates_per_s
    # DP = half SP (compute and bandwidth both scale by 2)
    assert series[("dp", 512, "35d")].mupdates_per_s == pytest.approx(
        series[("sp", 512, "35d")].mupdates_per_s / 2, rel=0.1
    )
    record(benchmark, sp_256_35d=sp35)


@pytest.mark.parametrize("scheme", ["naive", "35d"])
def test_fig4b_measured_executor(benchmark, scheme):
    """Wall-clock MU/s of the real NumPy executors (reduced 96^2 x 48)."""
    kernel = SevenPointStencil()
    field = Field3D.random((48, 96, 96), dtype=np.float32, seed=0)
    steps = 4
    if scheme == "naive":
        out = benchmark(run_naive, kernel, field, steps)
    else:
        ex = Blocking35D(kernel, dim_t=2, tile_y=96, tile_x=96)
        out = benchmark(ex.run, field, steps)
    ups = field.nz * field.ny * field.nx * steps / benchmark.stats["mean"] / 1e6
    print(f"\nmeasured {scheme}: {ups:.0f} MU/s (NumPy substrate)")
    record(benchmark, measured_mups=ups)
    assert np.isfinite(out.data).all()


def test_fig4b_traffic_reduction(benchmark):
    """3.5D halves external traffic at dim_T=2 (the figure's mechanism)."""
    kernel = SevenPointStencil()
    field = Field3D.random((32, 90, 90), dtype=np.float32, seed=1)

    def measure():
        t_naive, t_35d = TrafficStats(), TrafficStats()
        run_naive(kernel, field, 4, traffic=t_naive)
        Blocking35D(kernel, 2, 90, 90).run(field, 4, t_35d)
        return t_naive.total_bytes / t_35d.total_bytes

    ratio = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\nmeasured traffic reduction: {ratio:.2f}X (ideal ~2X at dim_T=2)")
    assert ratio == pytest.approx(2.0, rel=0.15)
