"""Auto-tuner: pick a blocking scheme and parameters for (kernel, machine).

This is the paper's decision procedure made executable (Sections IV-C, V,
VI): compare the kernel's bytes/op γ against the machine balance Γ; if the
kernel is already compute bound, spatial blocking (2.5D) suffices; otherwise
derive ``dim_T`` from Equation 3 and the block dimensions from Equation 4,
falling back with an explicit verdict when the on-chip capacity cannot host
the ghost layers (the LBM-on-GTX285 case).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..stencils.base import PlaneKernel
from .blocking25d import Blocking25D
from .blocking35d import Blocking35D
from .params import BlockingParams, select_params

__all__ = ["TuningResult", "tune"]


@dataclass(frozen=True)
class TuningResult:
    """The tuner's verdict for one (kernel, machine, precision)."""

    scheme: str  # "2.5d" | "3.5d" | "none"
    params: BlockingParams | None
    gamma: float
    big_gamma: float
    rationale: str

    def make_executor(self, kernel: PlaneKernel):
        """Instantiate the chosen executor for ``kernel``."""
        if self.scheme == "3.5d":
            assert self.params is not None
            return Blocking35D(
                kernel, self.params.dim_t, self.params.dim_y, self.params.dim_x
            )
        if self.scheme == "2.5d":
            assert self.params is not None
            return Blocking25D(kernel, self.params.dim_y, self.params.dim_x)
        raise ValueError(f"scheme {self.scheme!r} has no executor")


def tune(
    kernel: PlaneKernel,
    machine,
    dtype=np.float32,
    capacity: int | None = None,
    align: int = 4,
    derated: bool = True,
) -> TuningResult:
    """Choose a blocking configuration for ``kernel`` on ``machine``.

    ``machine`` is a :class:`~repro.machine.spec.MachineSpec`; ``capacity``
    overrides its blocking budget (e.g. the GPU's 16 KB shared memory for
    LBM instead of the 64 KB register file).
    """
    precision = "sp" if np.dtype(dtype).itemsize == 4 else "dp"
    gamma = kernel.gamma(dtype)
    big_gamma = machine.bytes_per_op(precision, derated=derated)
    cap = machine.blocking_capacity if capacity is None else capacity
    esize = kernel.element_size(dtype)

    if gamma <= big_gamma:
        # already compute bound: 2.5D spatial blocking maximizes reuse with
        # minimal overestimation and no temporal ghosts
        dim = int((cap / (esize * (2 * kernel.radius + 1))) ** 0.5)
        dim = max((dim // align) * align, 2 * kernel.radius + 1)
        params = select_params(
            gamma, big_gamma, cap, esize, kernel.radius, align, dim_t=1
        )
        return TuningResult(
            scheme="2.5d",
            params=params,
            gamma=gamma,
            big_gamma=big_gamma,
            rationale=(
                f"gamma={gamma:.3f} <= Gamma={big_gamma:.3f}: compute bound; "
                "2.5D spatial blocking suffices (Section IV-C)"
            ),
        )

    params = select_params(gamma, big_gamma, cap, esize, kernel.radius, align)
    if not params.feasible:
        return TuningResult(
            scheme="none",
            params=params,
            gamma=gamma,
            big_gamma=big_gamma,
            rationale=f"temporal blocking infeasible: {params.reason}",
        )
    return TuningResult(
        scheme="3.5d",
        params=params,
        gamma=gamma,
        big_gamma=big_gamma,
        rationale=(
            f"gamma={gamma:.3f} > Gamma={big_gamma:.3f}: bandwidth bound; "
            f"3.5D blocking with dim_T={params.dim_t}, dim_X={params.dim_x} "
            f"(kappa={params.kappa:.3f}) makes it compute bound"
        ),
    )
