"""Tests for the fused z-iteration sweep layer and the wall-clock autotuner.

Fused sweeps (:mod:`repro.perf.fused`) must be *bit-identical* to the naive
reference for every executor, thread count, and dim_T — they re-order
nothing, they only pre-lower the per-step work into one instruction plan per
z-iteration.  The wall-clock autotuner must answer repeat invocations from
its persistent cache with zero probe runs.
"""

import numpy as np
import pytest

from repro.core import Blocking35D, TrafficStats, run_naive
from repro.core.autotune import (
    REPRO_TUNE_CACHE_ENV,
    TuningCache,
    autotune_empirical,
    autotune_wallclock,
    machine_fingerprint,
    shape_class,
)
from repro.machine import CORE_I7
from repro.perf.backends import (
    BackendUnavailableError,
    backend_names,
    get_backend,
    wrap_kernel,
)
from repro.runtime import ParallelBlocking35D
from repro.stencils import (
    Field3D,
    SevenPointStencil,
    TwentySevenPointStencil,
    VariableCoefficientStencil,
)
from repro.stencils.generic import box_stencil, star_stencil

from .conftest import assert_fields_equal

_NUMBA = get_backend("fused-numba").available


def _varco(shape, dtype=np.float32):
    rng = np.random.default_rng(7)
    alpha = (0.8 + 0.4 * rng.random(shape)).astype(dtype)
    beta = (0.05 + 0.02 * rng.random(shape)).astype(dtype)
    return VariableCoefficientStencil(alpha=alpha, beta=beta)


def _kernels(shape):
    return {
        "7pt": SevenPointStencil(),
        "27pt": TwentySevenPointStencil(),
        "star-r2": star_stencil(2),
        "box-r1": box_stencil(1),
        "varco": _varco(shape),
    }


def _fused_backends():
    names = ["fused-numpy"]
    if _NUMBA:  # pragma: no cover - depends on environment
        names.append("fused-numba")
    return names


class TestRegistry:
    def test_fused_backends_registered(self):
        assert {"fused-numpy", "fused-numba"} <= set(backend_names())
        assert get_backend("fused-numpy").available

    def test_fused_numba_unavailable_message_is_actionable(self):
        b = get_backend("fused-numba")
        if b.available:  # pragma: no cover - depends on environment
            pytest.skip("numba installed in this environment")
        assert "pip install" in b.unavailable_reason
        with pytest.raises(BackendUnavailableError, match="pip install"):
            wrap_kernel(SevenPointStencil(), "fused-numba")

    def test_wrapping_preserves_kernel_contract(self):
        k = wrap_kernel(star_stencil(2), "fused-numpy")
        assert k.radius == 2
        assert k.ncomp == 1
        inner = SevenPointStencil()
        w = wrap_kernel(inner, "fused-numpy")
        assert type(w.padded_for(1, (8, 8, 8))) is type(w)
        assert type(w.restricted_to(1, 7)) is type(w)


class TestFusedBitExactness:
    @pytest.mark.parametrize("backend", _fused_backends())
    @pytest.mark.parametrize("name", ["7pt", "27pt", "star-r2", "box-r1", "varco"])
    def test_serial_matches_naive(self, backend, name):
        shape = (10, 20, 20)
        kernel = _kernels(shape)[name]
        field = Field3D.random(shape, dtype=np.float32, seed=3)
        wrapped = wrap_kernel(kernel, backend)
        for dim_t, tile in ((1, 20), (2, 12), (3, 10)):
            if tile <= 2 * kernel.radius * dim_t:
                continue
            out = Blocking35D(wrapped, dim_t, tile, tile).run(field, 5)
            ref = run_naive(kernel, field, 5)
            assert_fields_equal(out, ref)

    @pytest.mark.parametrize("backend", _fused_backends())
    @pytest.mark.parametrize("threads", [1, 3])
    @pytest.mark.parametrize("name", ["7pt", "27pt", "star-r2", "varco"])
    def test_parallel_matches_naive(self, backend, threads, name):
        shape = (9, 18, 18)
        kernel = _kernels(shape)[name]
        field = Field3D.random(shape, dtype=np.float32, seed=4)
        wrapped = wrap_kernel(kernel, backend)
        ex = ParallelBlocking35D(wrapped, 2, 12, 12, threads)
        out = ex.run(field, 5)
        ref = run_naive(kernel, field, 5)
        assert_fields_equal(out, ref)

    @pytest.mark.parametrize("backend", _fused_backends())
    def test_double_precision(self, backend):
        field = Field3D.random((8, 16, 16), dtype=np.float64, seed=5)
        wrapped = wrap_kernel(SevenPointStencil(), backend)
        out = Blocking35D(wrapped, 2, 12, 12).run(field, 4)
        assert_fields_equal(out, run_naive(SevenPointStencil(), field, 4))

    @pytest.mark.parametrize("backend", _fused_backends())
    def test_full_plane_tile(self, backend):
        """tile >= plane exercises the direct-store (flat dst) path."""
        field = Field3D.random((8, 12, 12), dtype=np.float32, seed=6)
        wrapped = wrap_kernel(SevenPointStencil(), backend)
        out = Blocking35D(wrapped, 2, 12, 12).run(field, 4)
        assert_fields_equal(out, run_naive(SevenPointStencil(), field, 4))

    def test_multicomponent_fallback(self):
        """ncomp > 1 kernels (LBM) run through the per-plane fallback path."""
        from repro.lbm import LBMKernel, Lattice

        shape = (8, 10, 10)
        rng = np.random.default_rng(0)
        lat = Lattice.from_moments(
            (1.0 + 0.02 * rng.random(shape)).astype(np.float32),
            (0.01 * (rng.random((3,) + shape) - 0.5)).astype(np.float32),
        )
        kernel = LBMKernel(lat.flags, omega=1.2)
        wrapped = wrap_kernel(kernel, "fused-numpy")
        out = Blocking35D(wrapped, 2, 8, 8).run(lat.f, 4)
        assert_fields_equal(out, run_naive(kernel, lat.f, 4))

    def test_traffic_parity_with_numpy_backend(self):
        """Fusing changes execution, not the external-traffic accounting."""
        kernel = SevenPointStencil()
        field = Field3D.random((10, 24, 24), dtype=np.float32, seed=1)
        t_ref, t_fused = TrafficStats(), TrafficStats()
        Blocking35D(wrap_kernel(kernel, "numpy"), 2, 16, 16).run(field, 4, t_ref)
        Blocking35D(wrap_kernel(kernel, "fused-numpy"), 2, 16, 16).run(
            field, 4, t_fused
        )
        assert t_fused.bytes_read == t_ref.bytes_read
        assert t_fused.bytes_written == t_ref.bytes_written
        assert t_fused.plane_loads == t_ref.plane_loads
        assert t_fused.plane_stores == t_ref.plane_stores

    def test_runner_cache_is_reused_across_runs(self):
        kernel = wrap_kernel(SevenPointStencil(), "fused-numpy")
        ex = Blocking35D(kernel, 2, 16, 16)
        field = Field3D.random((8, 16, 16), dtype=np.float32, seed=2)
        ex.run(field, 4)
        ctxs = [c for c in ex._contexts.values()]
        sizes = [len(c.fused) for c in ctxs if c.fused is not None]
        ex.run(field, 4)
        # the ping/pong buffers keep runner identity: no new runners appear
        assert sizes == [len(c.fused) for c in ctxs if c.fused is not None]


class TestProbeValidation:
    def test_empirical_rejects_thin_probe(self):
        with pytest.raises(ValueError, match="no interior"):
            autotune_empirical(
                star_stencil(2), CORE_I7, probe_shape=(4, 64, 64)
            )

    def test_wallclock_rejects_thin_probe(self):
        with pytest.raises(ValueError, match="no interior"):
            autotune_wallclock(
                SevenPointStencil(), probe_shape=(12, 2, 96), use_cache=False
            )

    def test_valid_probe_accepted(self):
        results = autotune_empirical(
            SevenPointStencil(),
            CORE_I7,
            probe_shape=(8, 24, 24),
            dim_t_candidates=(1, 2),
            tile_candidates=(16, 24),
        )
        assert results


class TestTuningCache:
    def test_shape_class_buckets_to_pow2(self):
        assert shape_class((128, 128, 128)) == "128x128x128"
        assert shape_class((120, 100, 65)) == "128x128x128"
        assert shape_class((12, 96, 96)) == "16x128x128"

    def test_fingerprint_is_stable(self):
        assert machine_fingerprint() == machine_fingerprint()

    def test_round_trip(self, tmp_path):
        cache = TuningCache(tmp_path / "tuning.json")
        entry = {"fingerprint": "abc", "dim_t": 4, "tile": 32}
        cache.put("k", entry)
        reloaded = TuningCache(tmp_path / "tuning.json")
        assert reloaded.get("k", fingerprint="abc") == entry

    def test_fingerprint_mismatch_invalidates(self, tmp_path):
        cache = TuningCache(tmp_path / "tuning.json")
        cache.put("k", {"fingerprint": "abc", "dim_t": 4, "tile": 32})
        assert cache.get("k", fingerprint="other") is None

    def test_env_override(self, tmp_path, monkeypatch):
        monkeypatch.setenv(REPRO_TUNE_CACHE_ENV, str(tmp_path / "alt.json"))
        assert TuningCache().path == tmp_path / "alt.json"

    def test_corrupt_file_treated_as_empty(self, tmp_path):
        path = tmp_path / "tuning.json"
        path.write_text("{not json")
        cache = TuningCache(path)
        assert cache.get("k", fingerprint="abc") is None
        cache.put("k", {"fingerprint": "abc"})  # overwrites cleanly
        assert cache.get("k", fingerprint="abc") is not None

    def test_half_written_file_is_quarantined(self, tmp_path):
        path = tmp_path / "tuning.json"
        path.write_text('{"k": {"fingerprint"')  # truncated by a crash
        cache = TuningCache(path)
        assert cache.get("k", fingerprint="abc") is None
        assert not path.exists()
        assert (tmp_path / "tuning.json.corrupt").exists()

    def test_put_crash_leaves_recoverable_state(self, tmp_path):
        from repro.resilience.faultinject import FAULTS

        path = tmp_path / "tuning.json"
        cache = TuningCache(path)
        with FAULTS.injected("cache.corrupt"):
            cache.put("k", {"fingerprint": "abc"})  # simulated mid-write crash
        # the torn file is quarantined at next load, never parsed as truth
        fresh = TuningCache(path)
        assert fresh.get("k", fingerprint="abc") is None
        assert (tmp_path / "tuning.json.corrupt").exists()
        # and a clean put uses write-then-rename: no temp file survives
        fresh.put("k", {"fingerprint": "abc", "dim_t": 2})
        assert fresh.get("k", fingerprint="abc") is not None
        assert not list(tmp_path.glob("*.tmp"))


class TestWallClockAutotune:
    _kwargs = dict(
        probe_shape=(8, 24, 24),
        dim_t_candidates=(1, 2),
        tile_candidates=(16, 24),
        repeats=2,
        warmup=1,
    )

    def test_cold_run_measures_and_persists(self, tmp_path):
        cache = TuningCache(tmp_path / "tuning.json")
        res = autotune_wallclock(SevenPointStencil(), cache=cache, **self._kwargs)
        assert not res.from_cache
        assert res.probe_runs > 0
        assert res.best.seconds_per_round > 0
        assert cache.get(res.cache_key) is not None

    def test_warm_cache_performs_zero_probe_runs(self, tmp_path):
        cache = TuningCache(tmp_path / "tuning.json")
        cold = autotune_wallclock(SevenPointStencil(), cache=cache, **self._kwargs)
        warm = autotune_wallclock(SevenPointStencil(), cache=cache, **self._kwargs)
        assert warm.from_cache
        assert warm.probe_runs == 0
        assert (warm.best.dim_t, warm.best.tile) == (cold.best.dim_t, cold.best.tile)

    def test_refresh_forces_remeasurement(self, tmp_path):
        cache = TuningCache(tmp_path / "tuning.json")
        autotune_wallclock(SevenPointStencil(), cache=cache, **self._kwargs)
        res = autotune_wallclock(
            SevenPointStencil(), cache=cache, refresh=True, **self._kwargs
        )
        assert not res.from_cache
        assert res.probe_runs > 0

    def test_candidates_ranked_by_measured_time(self, tmp_path):
        cache = TuningCache(tmp_path / "tuning.json")
        res = autotune_wallclock(SevenPointStencil(), cache=cache, **self._kwargs)
        fitting = [c.seconds_per_update for c in res.candidates if c.fits_capacity]
        assert fitting == sorted(fitting)

    def test_capacity_gate(self, tmp_path):
        cache = TuningCache(tmp_path / "tuning.json")
        res = autotune_wallclock(
            SevenPointStencil(), capacity=1, cache=cache, **self._kwargs
        )
        assert not any(c.fits_capacity for c in res.candidates)

    def test_cache_disabled(self):
        res = autotune_wallclock(
            SevenPointStencil(), use_cache=False, **self._kwargs
        )
        assert not res.from_cache
        assert res.probe_runs > 0


class TestCLI:
    def test_tune_wallclock_mode(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv(REPRO_TUNE_CACHE_ENV, str(tmp_path / "tuning.json"))
        assert main(["tune", "--mode", "wallclock", "--kernel", "7pt"]) == 0
        out = capsys.readouterr().out
        assert "dim_T" in out and "wallclock" in out
        # warm repeat answers from the cache
        assert main(["tune", "--mode", "wallclock", "--kernel", "7pt"]) == 0
        assert "0 probe runs" in capsys.readouterr().out

    def test_run_with_wallclock_tuning(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv(REPRO_TUNE_CACHE_ENV, str(tmp_path / "tuning.json"))
        rc = main(
            ["run", "--kernel", "7pt", "--grid", "16", "--steps", "2",
             "--tune", "wallclock", "--backend", "fused-numpy"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "autotuned" in out
        assert "bit-identical" in out
