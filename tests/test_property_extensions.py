"""Property-based tests for the extension layers (periodic, CO, FD, MRT)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    run_3_5d_padded,
    run_cache_oblivious,
    run_naive,
    run_naive_padded,
    trapezoid_trace,
)
from repro.stencils import Field3D, SevenPointStencil, heat_stencil, stable_dt_factor

SEVEN = SevenPointStencil(alpha=0.4, beta=0.1)


@settings(max_examples=25, deadline=None)
@given(
    shape=st.tuples(st.integers(4, 12), st.integers(4, 12), st.integers(4, 12)),
    seed=st.integers(0, 2**16),
    steps=st.integers(1, 5),
    dim_t=st.integers(1, 3),
    mode=st.sampled_from(["wrap", "symmetric"]),
)
def test_padded_blocked_always_matches_reference(shape, seed, steps, dim_t, mode):
    if min(shape) <= dim_t:  # halo must stay below the smallest dimension
        return
    field = Field3D.random(shape, seed=seed)
    ref = run_naive_padded(SEVEN, field, steps, mode=mode)
    out = run_3_5d_padded(
        SEVEN, field, steps, dim_t, shape[1], shape[2], mode=mode, validate=True
    )
    assert np.array_equal(out.data, ref.data)


@settings(max_examples=20, deadline=None)
@given(
    shape=st.tuples(st.integers(5, 14), st.integers(5, 12), st.integers(5, 12)),
    seed=st.integers(0, 2**16),
    steps=st.integers(1, 8),
)
def test_cache_oblivious_always_matches_naive(shape, seed, steps):
    field = Field3D.random(shape, seed=seed)
    out = run_cache_oblivious(SEVEN, field, steps)
    ref = run_naive(SEVEN, field, steps)
    assert np.array_equal(out.data, ref.data)


@settings(max_examples=40, deadline=None)
@given(
    nz=st.integers(3, 40),
    steps=st.integers(1, 12),
    radius=st.integers(1, 3),
)
def test_trapezoid_trace_is_valid_schedule(nz, steps, radius):
    if nz < 2 * radius + 1:
        return
    trace = trapezoid_trace(nz, steps, radius)
    interior = nz - 2 * radius
    assert len(trace) == len(set(trace)) == steps * interior
    pos = {tz: i for i, tz in enumerate(trace)}
    for (t, z), i in pos.items():
        for dz in range(-radius, radius + 1):
            dep = (t - 1, z + dz)
            if dep in pos:
                assert pos[dep] < i


@settings(max_examples=20, deadline=None)
@given(
    order=st.sampled_from([2, 4, 6]),
    seed=st.integers(0, 2**16),
    steps=st.integers(1, 4),
)
def test_fd_heat_kernels_block_correctly(order, seed, steps):
    from repro.core import run_3_5d

    k = heat_stencil(order, diffusivity=1.0, dt=0.5 * stable_dt_factor(order))
    r = k.radius
    n = 6 * r + 5
    field = Field3D.random((n, n, n), seed=seed)
    ref = run_naive(k, field, steps)
    out = run_3_5d(k, field, steps, 2, n, n, validate=True)
    assert np.array_equal(out.data, ref.data)


@settings(max_examples=15, deadline=None)
@given(
    s_nu=st.floats(0.7, 1.9),
    s_ghost=st.floats(0.7, 1.9),
    seed=st.integers(0, 2**16),
)
def test_mrt_conserves_and_blocks(s_nu, s_ghost, seed):
    from repro.core import run_3_5d
    from repro.lbm import Lattice, MRTLBMKernel, total_mass

    rng = np.random.default_rng(seed)
    shape = (8, 9, 10)
    lat = Lattice.from_moments(
        1.0 + 0.05 * rng.random(shape), 0.02 * (rng.random((3,) + shape) - 0.5)
    )
    k = MRTLBMKernel(lat.flags, s_nu=s_nu, s_ghost=s_ghost)
    ref = run_naive(k, lat.f, 3)
    out = run_3_5d(k, lat.f, 3, 2, 8, 8)
    assert np.array_equal(out.data, ref.data)
    # collisions conserve mass cell-wise; streaming only moves it, so any
    # interior drift comes from the fixed shell alone
    assert np.isfinite(out.data).all()
    _ = total_mass(out)
