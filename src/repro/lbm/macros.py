"""Macroscopic moments of the distribution functions."""

from __future__ import annotations

import numpy as np

from ..stencils.grid import Field3D
from .d3q19 import N_DIRECTIONS, VELOCITIES

__all__ = ["density", "velocity", "momentum", "total_mass", "kinetic_energy"]


def density(f: Field3D | np.ndarray) -> np.ndarray:
    """Cell density: zeroth moment ``rho = sum_i f_i``."""
    data = f.data if isinstance(f, Field3D) else np.asarray(f)
    return data.sum(axis=0)


def momentum(f: Field3D | np.ndarray) -> np.ndarray:
    """Momentum density ``rho*u = sum_i c_i f_i``, shape ``(3,) + S``."""
    data = f.data if isinstance(f, Field3D) else np.asarray(f)
    mom = np.zeros((3,) + data.shape[1:], dtype=data.dtype)
    for i in range(N_DIRECTIONS):
        cz, cy, cx = VELOCITIES[i]
        if cz:
            mom[0] += cz * data[i]
        if cy:
            mom[1] += cy * data[i]
        if cx:
            mom[2] += cx * data[i]
    return mom


def velocity(f: Field3D | np.ndarray) -> np.ndarray:
    """Velocity field ``u = momentum / rho``, shape ``(3,) + S``."""
    return momentum(f) / density(f)


def total_mass(f: Field3D | np.ndarray, mask: np.ndarray | None = None) -> float:
    """Total mass, optionally restricted to ``mask`` (e.g. fluid cells)."""
    rho = density(f)
    if mask is not None:
        rho = rho[mask]
    return float(rho.sum(dtype=np.float64))


def kinetic_energy(f: Field3D | np.ndarray, mask: np.ndarray | None = None) -> float:
    """Total kinetic energy ``0.5 * sum rho |u|^2`` over the (masked) domain."""
    rho = density(f)
    mom = momentum(f)
    ke = 0.5 * (mom[0] ** 2 + mom[1] ** 2 + mom[2] ** 2) / rho
    if mask is not None:
        ke = ke[mask]
    return float(ke.sum(dtype=np.float64))
