"""Section IV kernel analysis: op counts and bytes/op for all three kernels.

Regenerates the per-kernel γ values (7pt 0.5/1.0, 27pt 0.14/0.28, LBM
0.88/1.75) and the boundedness verdicts of Section IV-C.
"""

import pytest

from repro.machine import CORE_I7, GTX_285, is_bandwidth_bound
from repro.perf import KERNELS, format_table

from .conftest import banner, record

PAPER_GAMMAS = {  # kernel -> (γ SP, γ DP) as the paper quotes them
    "7pt": (0.5, 1.0),
    "27pt": (0.14, 0.28),
    "lbm": (0.88, 1.75),
}

#: Section IV-C verdicts: (kernel, precision, platform) -> bandwidth bound?
PAPER_VERDICTS = {
    ("7pt", "sp", "cpu"): True,
    ("7pt", "dp", "cpu"): True,
    ("7pt", "sp", "gpu"): True,
    ("7pt", "dp", "gpu"): False,
    ("27pt", "sp", "cpu"): False,
    ("27pt", "dp", "cpu"): False,
    ("lbm", "sp", "cpu"): True,
    ("lbm", "dp", "cpu"): True,
    ("lbm", "sp", "gpu"): True,
    ("lbm", "dp", "gpu"): False,
}


def kernel_gamma(kernel, precision: str) -> float:
    """γ as the paper quotes it: blocked traffic for stencils, raw for LBM."""
    if kernel.name == "lbm":
        return kernel.gamma(precision)
    return kernel.gamma_blocked(precision)


def analyze():
    rows = []
    for name, k in KERNELS.items():
        rows.append(
            (
                name,
                k.ops_per_update,
                k.flops_per_update,
                f"{kernel_gamma(k, 'sp'):.3f}",
                f"{kernel_gamma(k, 'dp'):.3f}",
            )
        )
    return rows


def test_kernel_gammas(benchmark):
    rows = benchmark(analyze)
    print(banner("Section IV: kernel op counts and bytes/op"))
    print(format_table(["kernel", "ops", "flops", "gamma SP", "gamma DP"], rows))
    for name, k in KERNELS.items():
        sp, dp = PAPER_GAMMAS[name]
        assert kernel_gamma(k, "sp") == pytest.approx(sp, abs=0.01)
        assert kernel_gamma(k, "dp") == pytest.approx(dp, abs=0.05)
    record(benchmark, lbm_gamma_sp=kernel_gamma(KERNELS["lbm"], "sp"))


def test_boundedness_verdicts(benchmark):
    """Section IV-C: which (kernel, precision, platform) is bandwidth bound."""

    def verdicts():
        out = {}
        for (name, prec, plat) in PAPER_VERDICTS:
            k = KERNELS[name]
            machine = CORE_I7 if plat == "cpu" else GTX_285
            out[(name, prec, plat)] = is_bandwidth_bound(
                machine, prec, kernel_gamma(k, prec), derated=plat == "gpu"
            )
        return out

    result = benchmark(verdicts)
    rows = [
        (f"{n} {p.upper()} {plat}", "BW bound" if v else "compute bound",
         "BW bound" if PAPER_VERDICTS[(n, p, plat)] else "compute bound")
        for (n, p, plat), v in sorted(result.items())
    ]
    print(banner("Section IV-C boundedness"))
    print(format_table(["case", "model", "paper"], rows))
    assert result == PAPER_VERDICTS
