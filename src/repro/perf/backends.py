"""Pluggable plane-kernel execution backends (the hot-path layer).

The blocking executors make stencils *bandwidth*-efficient, but on the NumPy
substrate the inner kernel itself can be *allocation*-bound: every
``compute_plane`` call of the reference kernels builds 4–6 plane-sized
temporaries.  AN5D and the wavefront-diamond line of work (PAPERS.md) both
show that temporal blocking only pays off once the inner kernel is fused or
compiled; this module provides that layering for the reproduction.

A *backend* is a strategy for executing a :class:`~repro.stencils.base.PlaneKernel`:

``numpy``
    The reference kernels exactly as written — allocating, and the bit-exact
    ground truth every other backend is tested against.
``numpy-inplace``
    Wraps a kernel so every ``compute_plane`` call routes to the kernel's
    ``compute_plane_inplace`` path: all temporaries come from a persistent
    per-kernel :class:`~repro.stencils.base.ScratchArena` and all arithmetic
    uses ``np.add/np.multiply(..., out=...)`` with the same operand pairing,
    so results stay bit-identical while the steady state allocates nothing.
``numba``
    Optional ``@njit``-compiled plane loops, auto-detected at import time.
    Kernels without a compiled specialization fall back to the in-place
    path.  Unavailable (but still listed) when numba is not installed.

Selection: explicitly by name, or via the ``REPRO_BACKEND`` environment
variable (the default when no name is given), or through the CLI's
``--backend`` flag and the empirical autotuner's ``backend=`` parameter.
"""

from __future__ import annotations

import os
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from ..resilience.faultinject import FAULTS
from ..stencils.base import PlaneKernel, ScratchArena, validate_footprint

__all__ = [
    "REPRO_BACKEND_ENV",
    "Backend",
    "BackendUnavailableError",
    "InplaceKernel",
    "ScratchArena",
    "available_backends",
    "backend_availability",
    "backend_names",
    "bound_rung",
    "default_backend_name",
    "get_backend",
    "register_backend",
    "wrap_kernel",
]

#: environment variable consulted when no backend name is given explicitly
REPRO_BACKEND_ENV = "REPRO_BACKEND"


class BackendUnavailableError(RuntimeError):
    """Raised when a registered backend cannot run in this environment."""


class InplaceKernel(PlaneKernel):
    """Adapter routing ``compute_plane`` to the wrapped kernel's in-place path.

    Owns a :class:`ScratchArena` so repeated calls on the same region shapes
    reuse the same buffers.  Delegates every other part of the
    :class:`PlaneKernel` contract (element size, padding, slab restriction)
    to the wrapped kernel, re-wrapping derived kernels so the in-place path
    survives periodic padding and distributed slab slicing.
    """

    #: executors that can promise dead seam positions on the target plane
    #: (intermediate ring slots) pass ``seam_writable=True`` to
    #: ``compute_plane`` when this attribute is set, letting the in-place
    #: fast paths skip their copy-out (see PlaneKernel.compute_plane_inplace).
    accepts_seam_hint = True

    def __init__(self, inner: PlaneKernel) -> None:
        if isinstance(inner, InplaceKernel):
            inner = inner.inner
        self.inner = inner
        self.radius = inner.radius
        self.ncomp = inner.ncomp
        self.ops_per_update = inner.ops_per_update
        self.flops_per_update = getattr(inner, "flops_per_update", 0)
        self.arena = ScratchArena()

    def __repr__(self) -> str:
        return f"InplaceKernel({self.inner!r})"

    def compute_plane(self, out, src, yr, xr, gz=0, gy0=0, gx0=0, seam_writable=False):
        FAULTS.fire("backend.compute", detail="numpy-inplace")
        self.inner.compute_plane_inplace(
            out, src, yr, xr, gz, gy0, gx0,
            arena=self.arena, seam_writable=seam_writable,
        )

    def compute_plane_inplace(
        self, out, src, yr, xr, gz=0, gy0=0, gx0=0, *, arena, seam_writable=False
    ):
        self.inner.compute_plane_inplace(
            out, src, yr, xr, gz, gy0, gx0,
            arena=arena, seam_writable=seam_writable,
        )

    def element_size(self, dtype) -> int:
        return self.inner.element_size(dtype)

    def padded_for(self, halo: int, shape: tuple[int, int, int]) -> PlaneKernel:
        inner = self.inner.padded_for(halo, shape)
        return self if inner is self.inner else InplaceKernel(inner)

    def restricted_to(self, zlo: int, zhi: int) -> PlaneKernel:
        inner = self.inner.restricted_to(zlo, zhi)
        return self if inner is self.inner else InplaceKernel(inner)


# ----------------------------------------------------------------------
# optional numba backend
# ----------------------------------------------------------------------

def _detect_numba() -> tuple[bool, str | None]:
    try:
        import numba  # noqa: F401
    except Exception as exc:  # pragma: no cover - depends on environment
        return False, (
            f"numba not importable: {exc}; install it with "
            "`pip install numba` (or `pip install 'repro[numba]'`)"
        )
    return True, None


_NUMBA_AVAILABLE, _NUMBA_REASON = _detect_numba()
_SEVEN_POINT_JIT = None
_TWENTY_SEVEN_JIT = None
_GENERIC_R1_JIT = None
_VARCO_JIT = None


def _seven_point_jit():  # pragma: no cover - requires numba
    """Compile (once) the scalar-loop 7-point plane update.

    The loop associates the neighbor sums exactly as the NumPy reference —
    ``((below+above) + (y-pair)) + (x-pair)`` — and numba's default
    ``fastmath=False`` forbids FMA contraction, so results are bit-identical.
    """
    global _SEVEN_POINT_JIT
    if _SEVEN_POINT_JIT is None:
        import numba

        @numba.njit(cache=False)
        def run(out, below, mid, above, y0, y1, x0, x1, alpha, beta):
            for y in range(y0, y1):
                for x in range(x0, x1):
                    acc = (
                        (below[y, x] + above[y, x])
                        + (mid[y - 1, x] + mid[y + 1, x])
                    ) + (mid[y, x - 1] + mid[y, x + 1])
                    out[y, x] = alpha * mid[y, x] + beta * acc

        _SEVEN_POINT_JIT = run
    return _SEVEN_POINT_JIT


def _twenty_seven_jit():  # pragma: no cover - requires numba
    """Compile (once) the scalar-loop 27-point plane update.

    Per point the four neighbor groups are summed in the reference
    generation order (``_FACES``/``_EDGES``/``_CORNERS``), each group
    starting from its first member, then weighted and accumulated onto
    ``center * mid`` — the exact association of
    ``TwentySevenPointStencil.compute_plane``.
    """
    global _TWENTY_SEVEN_JIT
    if _TWENTY_SEVEN_JIT is None:
        import numba

        @numba.njit(cache=False)
        def run(out, below, mid, above, y0, y1, x0, x1, offs,
                center, face, edge, corner):
            for y in range(y0, y1):
                for x in range(x0, x1):
                    sface = below[y + offs[0, 1], x + offs[0, 2]]
                    for j in range(1, 6):
                        dz = offs[j, 0]
                        yy = y + offs[j, 1]
                        xx = x + offs[j, 2]
                        if dz < 0:
                            sface += below[yy, xx]
                        elif dz > 0:
                            sface += above[yy, xx]
                        else:
                            sface += mid[yy, xx]
                    dz = offs[6, 0]
                    yy = y + offs[6, 1]
                    xx = x + offs[6, 2]
                    if dz < 0:
                        sedge = below[yy, xx]
                    elif dz > 0:
                        sedge = above[yy, xx]
                    else:
                        sedge = mid[yy, xx]
                    for j in range(7, 18):
                        dz = offs[j, 0]
                        yy = y + offs[j, 1]
                        xx = x + offs[j, 2]
                        if dz < 0:
                            sedge += below[yy, xx]
                        elif dz > 0:
                            sedge += above[yy, xx]
                        else:
                            sedge += mid[yy, xx]
                    dz = offs[18, 0]
                    yy = y + offs[18, 1]
                    xx = x + offs[18, 2]
                    if dz < 0:
                        scorner = below[yy, xx]
                    else:
                        scorner = above[yy, xx]
                    for j in range(19, 26):
                        dz = offs[j, 0]
                        yy = y + offs[j, 1]
                        xx = x + offs[j, 2]
                        if dz < 0:
                            scorner += below[yy, xx]
                        else:
                            scorner += above[yy, xx]
                    v = center * mid[y, x]
                    v += face * sface
                    v += edge * sedge
                    v += corner * scorner
                    out[y, x] = v

        _TWENTY_SEVEN_JIT = run
    return _TWENTY_SEVEN_JIT


def _generic_r1_jit():  # pragma: no cover - requires numba
    """Compile (once) the radius-1 generic-taps plane update.

    Accumulates taps in the kernel's sorted order starting from the first
    tap, matching ``GenericStencil.compute_plane``'s zero-initialized sum
    (identical up to the sign of exact zeros, which ``np.array_equal``
    treats as equal).
    """
    global _GENERIC_R1_JIT
    if _GENERIC_R1_JIT is None:
        import numba

        @numba.njit(cache=False)
        def run(out, below, mid, above, y0, y1, x0, x1, offs, weights):
            ntaps = offs.shape[0]
            for y in range(y0, y1):
                for x in range(x0, x1):
                    dz = offs[0, 0]
                    yy = y + offs[0, 1]
                    xx = x + offs[0, 2]
                    if dz < 0:
                        v = below[yy, xx]
                    elif dz > 0:
                        v = above[yy, xx]
                    else:
                        v = mid[yy, xx]
                    acc = weights[0] * v
                    for j in range(1, ntaps):
                        dz = offs[j, 0]
                        yy = y + offs[j, 1]
                        xx = x + offs[j, 2]
                        if dz < 0:
                            v = below[yy, xx]
                        elif dz > 0:
                            v = above[yy, xx]
                        else:
                            v = mid[yy, xx]
                        acc += weights[j] * v
                    out[y, x] = acc

        _GENERIC_R1_JIT = run
    return _GENERIC_R1_JIT


def _varco_jit():  # pragma: no cover - requires numba
    """Compile (once) the variable-coefficient 7-point plane update.

    Neighbor accumulation order matches
    ``VariableCoefficientStencil.compute_plane``: the z pair first, then the
    four unpaired in-plane neighbors, then ``a*mid + b*acc``.
    """
    global _VARCO_JIT
    if _VARCO_JIT is None:
        import numba

        @numba.njit(cache=False)
        def run(out, below, mid, above, y0, y1, x0, x1,
                coef_a, coef_b, gz, gy0, gx0):
            for y in range(y0, y1):
                for x in range(x0, x1):
                    acc = below[y, x] + above[y, x]
                    acc += mid[y - 1, x]
                    acc += mid[y + 1, x]
                    acc += mid[y, x - 1]
                    acc += mid[y, x + 1]
                    out[y, x] = (
                        coef_a[gz, gy0 + y, gx0 + x] * mid[y, x]
                        + coef_b[gz, gy0 + y, gx0 + x] * acc
                    )

        _VARCO_JIT = run
    return _VARCO_JIT


class _NumbaPlaneKernel(PlaneKernel):  # pragma: no cover - requires numba
    """Shared delegation shell for njit-compiled plane kernels."""

    def __init__(self, inner) -> None:
        self.inner = inner
        self.radius = inner.radius
        self.ncomp = inner.ncomp
        self.ops_per_update = inner.ops_per_update
        self.flops_per_update = getattr(inner, "flops_per_update", 0)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.inner!r})"

    def element_size(self, dtype) -> int:
        return self.inner.element_size(dtype)

    def padded_for(self, halo: int, shape: tuple[int, int, int]) -> PlaneKernel:
        inner = self.inner.padded_for(halo, shape)
        return self if inner is self.inner else type(self)(inner)

    def restricted_to(self, zlo: int, zhi: int) -> PlaneKernel:
        inner = self.inner.restricted_to(zlo, zhi)
        return self if inner is self.inner else type(self)(inner)


class _NumbaSevenPoint(_NumbaPlaneKernel):  # pragma: no cover - requires numba
    """njit-compiled SevenPointStencil (same coefficients, same bits)."""

    def __init__(self, inner) -> None:
        super().__init__(inner)
        self._fn = _seven_point_jit()

    def compute_plane(self, out, src, yr, xr, gz=0, gy0=0, gx0=0):
        validate_footprint(out.shape[1:], yr, xr, self.radius)
        dtype = out.dtype.type
        self._fn(
            out[0],
            src[0][0],
            src[1][0],
            src[2][0],
            yr[0],
            yr[1],
            xr[0],
            xr[1],
            dtype(self.inner.alpha),
            dtype(self.inner.beta),
        )


class _NumbaTwentySevenPoint(_NumbaPlaneKernel):  # pragma: no cover
    """njit-compiled TwentySevenPointStencil (same group order, same bits)."""

    def __init__(self, inner) -> None:
        super().__init__(inner)
        from ..stencils.twentyseven_point import _CORNERS, _EDGES, _FACES

        self._offs = np.array(
            list(_FACES) + list(_EDGES) + list(_CORNERS), dtype=np.int64
        )
        self._fn = _twenty_seven_jit()

    def compute_plane(self, out, src, yr, xr, gz=0, gy0=0, gx0=0):
        validate_footprint(out.shape[1:], yr, xr, self.radius)
        dtype = out.dtype.type
        self._fn(
            out[0], src[0][0], src[1][0], src[2][0],
            yr[0], yr[1], xr[0], xr[1], self._offs,
            dtype(self.inner.center), dtype(self.inner.face),
            dtype(self.inner.edge), dtype(self.inner.corner),
        )


class _NumbaGenericR1(_NumbaPlaneKernel):  # pragma: no cover - requires numba
    """njit-compiled radius-1 GenericStencil (sorted tap order, same bits)."""

    def __init__(self, inner) -> None:
        super().__init__(inner)
        self._offs = np.array(inner._order, dtype=np.int64)
        self._weights: dict = {}
        self._fn = _generic_r1_jit()

    def compute_plane(self, out, src, yr, xr, gz=0, gy0=0, gx0=0):
        validate_footprint(out.shape[1:], yr, xr, self.radius)
        weights = self._weights.get(out.dtype)
        if weights is None:
            weights = self._weights[out.dtype] = np.array(
                [self.inner.taps[o] for o in self.inner._order], dtype=out.dtype
            )
        self._fn(
            out[0], src[0][0], src[1][0], src[2][0],
            yr[0], yr[1], xr[0], xr[1], self._offs, weights,
        )


class _NumbaVariableCoefficient(_NumbaPlaneKernel):  # pragma: no cover
    """njit-compiled VariableCoefficientStencil (same-dtype coefficients)."""

    def __init__(self, inner) -> None:
        super().__init__(inner)
        self._fn = _varco_jit()
        self._fallback = InplaceKernel(inner)

    def compute_plane(self, out, src, yr, xr, gz=0, gy0=0, gx0=0):
        if self.inner.alpha.dtype != out.dtype:
            # mixed precision follows NumPy promotion in the reference;
            # delegate instead of silently changing the rounding
            self._fallback.compute_plane(out, src, yr, xr, gz, gy0, gx0)
            return
        validate_footprint(out.shape[1:], yr, xr, self.radius)
        self._fn(
            out[0], src[0][0], src[1][0], src[2][0],
            yr[0], yr[1], xr[0], xr[1],
            self.inner.alpha, self.inner.beta, gz, gy0, gx0,
        )


def _numba_specialize(kernel: PlaneKernel) -> PlaneKernel | None:  # pragma: no cover
    """The njit per-plane specialization for ``kernel``, or ``None``."""
    from ..stencils.generic import GenericStencil
    from ..stencils.seven_point import SevenPointStencil
    from ..stencils.twentyseven_point import TwentySevenPointStencil
    from ..stencils.variable import VariableCoefficientStencil

    if type(kernel) is SevenPointStencil:
        return _NumbaSevenPoint(kernel)
    if type(kernel) is TwentySevenPointStencil:
        return _NumbaTwentySevenPoint(kernel)
    if type(kernel) is GenericStencil and kernel.radius == 1:
        return _NumbaGenericR1(kernel)
    if type(kernel) is VariableCoefficientStencil:
        return _NumbaVariableCoefficient(kernel)
    return None


def _wrap_numba(kernel: PlaneKernel) -> PlaneKernel:  # pragma: no cover
    if not _NUMBA_AVAILABLE:
        raise BackendUnavailableError(f"backend 'numba' unavailable: {_NUMBA_REASON}")
    specialized = _numba_specialize(kernel)
    if specialized is not None:
        return specialized
    # no compiled specialization: the in-place path is the next-best hot path
    return InplaceKernel(kernel)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Backend:
    """A named kernel-execution strategy.

    ``available``/``unavailable_reason`` describe availability decided at
    import time; backends whose availability depends on mutable environment
    state (e.g. ``codegen``, whose ``REPRO_CODEGEN_MODE=python`` fallback
    can be enabled at any point) supply ``probe``, a callable re-evaluated
    on every availability query.
    """

    name: str
    description: str
    wrap: Callable[[PlaneKernel], PlaneKernel]
    available: bool = True
    unavailable_reason: str | None = None
    probe: Callable[[], tuple[bool, str | None]] | None = None


_REGISTRY: dict[str, Backend] = {}


def register_backend(backend: Backend) -> None:
    """Add (or replace) a backend in the registry."""
    _REGISTRY[backend.name] = backend


def backend_names() -> list[str]:
    """All registered backend names, available or not."""
    return list(_REGISTRY)


def backend_availability(name: str) -> tuple[bool, str | None]:
    """Current ``(available, reason)`` for a backend, probing dynamic ones."""
    b = get_backend(name)
    if b.probe is not None:
        return b.probe()
    return b.available, b.unavailable_reason


def available_backends() -> list[str]:
    """Names of the backends that can run in this environment."""
    return [name for name in _REGISTRY if backend_availability(name)[0]]


def get_backend(name: str) -> Backend:
    """Look up a backend by name; raises ``ValueError`` on unknown names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; registered: {', '.join(_REGISTRY)}"
        ) from None


def default_backend_name() -> str:
    """The backend used when none is named: ``$REPRO_BACKEND`` or ``numpy``."""
    return os.environ.get(REPRO_BACKEND_ENV, "numpy")


def wrap_kernel(kernel: PlaneKernel, backend: str | None = None) -> PlaneKernel:
    """Bind ``kernel`` to a backend (default: :func:`default_backend_name`).

    Raises :class:`BackendUnavailableError` when the backend exists but
    cannot run here (e.g. ``numba`` without numba installed).  The
    ``backend.bind`` fault site fires here (detail = backend name), so the
    fallback chain's bind-failure path is testable on any machine.
    """
    b = get_backend(backend if backend is not None else default_backend_name())
    ok, reason = backend_availability(b.name)
    if not ok:
        raise BackendUnavailableError(
            f"backend {b.name!r} unavailable: {reason}"
        )
    FAULTS.fire("backend.bind", detail=b.name)
    return b.wrap(kernel)


register_backend(
    Backend(
        name="numpy",
        description="reference NumPy kernels (allocating; bit-exact ground truth)",
        wrap=lambda kernel: kernel,
    )
)
register_backend(
    Backend(
        name="numpy-inplace",
        description="preallocated scratch arena + out= ufuncs (bit-identical, "
        "allocation-free steady state)",
        wrap=InplaceKernel,
    )
)
register_backend(
    Backend(
        name="numba",
        description="njit-compiled plane loops (7pt/27pt/generic-R1/varco; "
        "other kernels fall back to the in-place path)",
        wrap=_wrap_numba,
        available=_NUMBA_AVAILABLE,
        unavailable_reason=_NUMBA_REASON,
    )
)


def _wrap_fused_numpy(kernel: PlaneKernel) -> PlaneKernel:
    from .fused import FusedSweepKernel  # deferred: fused imports this module

    return FusedSweepKernel(kernel)


def _wrap_fused_numba(kernel: PlaneKernel) -> PlaneKernel:  # pragma: no cover
    if not _NUMBA_AVAILABLE:
        raise BackendUnavailableError(
            f"backend 'fused-numba' unavailable: {_NUMBA_REASON}"
        )
    from .fused import FusedNumbaSweepKernel

    return FusedNumbaSweepKernel(kernel)


register_backend(
    Backend(
        name="fused-numpy",
        description="fused z-iteration sweeps via prebound ufunc instruction "
        "plans (per-time-instance loop and Python dispatch hoisted out of "
        "the 3.5D hot path)",
        wrap=_wrap_fused_numpy,
    )
)
register_backend(
    Backend(
        name="fused-numba",
        description="njit whole-z-iteration sweeps with prange row "
        "parallelism (7pt/27pt/generic/varco; other kernels use the fused "
        "numpy plan)",
        wrap=_wrap_fused_numba,
        available=_NUMBA_AVAILABLE,
        unavailable_reason=_NUMBA_REASON,
    )
)


def _wrap_codegen(kernel: PlaneKernel) -> PlaneKernel:
    from .codegen import CodegenSweepKernel, codegen_available

    ok, reason = codegen_available()
    if not ok:
        raise BackendUnavailableError(f"backend 'codegen' unavailable: {reason}")
    return CodegenSweepKernel(kernel)


def _codegen_probe() -> tuple[bool, str | None]:
    from .codegen import codegen_available

    return codegen_available()


register_backend(
    Backend(
        name="codegen",
        description="whole-sweep generated kernels, disk-cached per machine "
        "fingerprint + plan hash, prange over tiles (7pt/27pt/generic/varco; "
        "other kernels use the fused numpy plan)",
        wrap=_wrap_codegen,
        probe=_codegen_probe,
    )
)


def bound_rung(kernel: PlaneKernel) -> str:
    """The fallback-ladder rung a wrapped kernel actually executes on.

    Benchmarks record this next to the *requested* backend so trajectory
    plots attribute speedups to the rung that really ran.
    """
    engine = getattr(kernel, "engine", None)
    if engine == "codegen":
        return "codegen"
    if engine == "numba":
        return "fused-numba"
    if engine == "numpy":
        return "fused-numpy"
    if isinstance(kernel, _NumbaPlaneKernel):
        return "numba"
    if isinstance(kernel, InplaceKernel):
        return "numpy-inplace"
    return "numpy"
