"""SDC defense benchmark: verification overhead, detection, healing cost.

Not a paper artifact — the paper assumes perfect hardware — but the cost
model of the silent-data-corruption defense (``repro.resilience.sdc``)
needs the same regression discipline as the kernels it protects:

* **overhead** — guarded sweep wall time per integrity tier relative to
  an unguarded sweep.  Acceptance: tier ``off`` costs < 2% (it is one
  branch per round); ``spot``/``seal`` cost about one band re-execution
  per round; ``full`` costs about one extra reference sweep per round.
* **detection** — seeded ``memory.flip`` schedules, measuring the
  fraction of flip rounds detected at the ``spot`` and ``full`` tiers.
  Acceptance: ``full`` detects 100%; ``spot`` >= 95%.
* **healing** — cells replayed by the surgical cone heal versus a
  full-round restart from the last checkpoint.  Acceptance: the cone
  replays < 10% of the cells the restart would.

Usage::

    PYTHONPATH=src python benchmarks/bench_sdc.py --quick   # CI smoke
    PYTHONPATH=src python benchmarks/bench_sdc.py           # full gate

Results land in ``BENCH_sdc.json`` (``repro bench diff`` judges them
against ``benchmarks/baselines/BENCH_sdc.json``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.core.blocking35d import Blocking35D
from repro.core.naive import run_naive
from repro.resilience.faultinject import FAULTS
from repro.resilience.sdc import INTEGRITY_TIERS
from repro.resilience.watchdog import GuardedSweep
from repro.stencils.grid import Field3D
from repro.stencils.seven_point import SevenPointStencil


def _sweep_seconds(kernel, field, steps, dim_t, *, tier=None, repeats=3):
    """Median wall seconds of a (possibly guarded) 3.5D sweep."""
    times = []
    for _ in range(repeats):
        ex = Blocking35D(kernel, dim_t, field.ny, field.nx)
        if tier is None:
            # the pre-SDC guard path: what `repro run` cost before this tier
            # existed, and what `--verify off` must stay within 2% of
            runner = GuardedSweep(ex)
        else:
            runner = GuardedSweep(ex, sdc=tier, sdc_seed=0)
        t0 = time.perf_counter()
        runner.run(Field3D(field.data.copy()), steps)
        times.append(time.perf_counter() - t0)
    return float(np.median(times))


def bench_overhead(kernel, field, steps, dim_t, repeats):
    """Relative guarded-sweep overhead per tier vs the bare executor."""
    base = _sweep_seconds(kernel, field, steps, dim_t, repeats=repeats)
    out = {"baseline_s": base}
    for tier in INTEGRITY_TIERS:
        t = _sweep_seconds(
            kernel, field, steps, dim_t, tier=tier, repeats=repeats
        )
        out[tier] = t / base - 1.0
        print(f"tier {tier:<5}: {t * 1e3:8.2f} ms  "
              f"({100 * out[tier]:+6.1f}% vs unguarded)")
    return out


def bench_detection(kernel, grid, steps, dim_t, seeds):
    """Fraction of seeded flip rounds detected, per tier."""
    rounds = -(-steps // dim_t)
    out = {"seeds": len(seeds)}
    for tier in ("spot", "full"):
        fired = detected = 0
        for seed in seeds:
            rng = np.random.default_rng([seed, 7])
            rnd = int(rng.integers(0, rounds))
            fld = Field3D.random((grid,) * 3, dtype=np.float32, seed=seed)
            guard = GuardedSweep(
                Blocking35D(kernel, dim_t, grid, grid),
                sdc=tier, sdc_seed=seed,
            )
            with FAULTS.injected(f"memory.flip=0:{rnd}:1"):
                out_field = guard.run(fld, steps)
            ref = run_naive(
                kernel, Field3D.random((grid,) * 3, dtype=np.float32,
                                       seed=seed), steps,
            )
            assert np.array_equal(out_field.data, ref.data), (
                f"seed {seed} tier {tier}: healed grid differs from the "
                "fault-free oracle"
            )
            fired += 1
            detected += 1 if guard.sdc.report.detections else 0
        out[f"{tier}_rate"] = detected / fired if fired else 0.0
        print(f"detection {tier:<5}: {detected}/{fired} flip round(s) "
              f"({100 * out[f'{tier}_rate']:.0f}%)")
    return out


def bench_healing(kernel, nz, ny, steps, dim_t, seeds):
    """Surgical cone replay cells vs full-round restarts from checkpoint."""
    replayed = restart = heals = 0
    rounds = -(-steps // dim_t)
    for seed in seeds:
        rng = np.random.default_rng([seed, 13])
        rnd = int(rng.integers(0, rounds))
        fld = Field3D.random((nz, ny, ny), dtype=np.float32, seed=seed)
        guard = GuardedSweep(
            Blocking35D(kernel, dim_t, ny, ny), sdc="full", sdc_seed=seed,
        )
        with FAULTS.injected(f"memory.flip=0:{rnd}:1"):
            guard.run(fld, steps)
        r = guard.sdc.report
        replayed += r.replayed_cells
        heals += r.heals
        # the alternative to each surgical heal: recompute the whole grid
        # for the round the corruption is confined to
        restart += r.heals * nz * ny * ny * dim_t
    ratio = replayed / restart if restart else 0.0
    print(f"healing      : {heals} heal(s), {replayed} cone cell(s) vs "
          f"{restart} full-restart cell(s) -> ratio {ratio:.3f}")
    return {
        "heals": heals,
        "replayed_cells": replayed,
        "full_restart_cells": restart,
        "heal_replay_ratio": ratio,
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small grids / fewer seeds (CI smoke mode)")
    ap.add_argument("--grid", type=int, default=None,
                    help="cubic grid side for overhead/detection "
                    "(default 48; 24 quick)")
    ap.add_argument("--steps", type=int, default=8)
    ap.add_argument("--dim-t", type=int, default=2)
    ap.add_argument("--seeds", type=int, default=None,
                    help="flip schedules per tier (default 6; 3 quick)")
    ap.add_argument("--repeats", type=int, default=None)
    ap.add_argument("--json", default=None, metavar="PATH",
                    help="machine-readable output path "
                    "(default BENCH_sdc.json next to this script)")
    args = ap.parse_args(argv)

    grid = args.grid or (24 if args.quick else 48)
    n_seeds = args.seeds or (3 if args.quick else 6)
    repeats = args.repeats or (2 if args.quick else 4)
    seeds = list(range(n_seeds))
    kernel = SevenPointStencil()
    field = Field3D.random((grid,) * 3, dtype=np.float32, seed=0)
    # healing uses a deep-Z slab so the cone extent is small relative to
    # the grid (the surgical-vs-restart claim is about that ratio)
    heal_nz, heal_ny = (64, 20) if args.quick else (96, 32)

    print(f"sdc bench    : grid {grid}^3 x {args.steps} steps "
          f"(dim_T={args.dim_t}), {n_seeds} seed(s), {repeats} repeat(s)")
    overhead = bench_overhead(kernel, field, args.steps, args.dim_t, repeats)
    detection = bench_detection(kernel, grid, args.steps, args.dim_t, seeds)
    healing = bench_healing(
        kernel, heal_nz, heal_ny, args.steps, args.dim_t, seeds
    )

    rc = 0
    acceptance = {}
    gates = (
        ("off_overhead_lt_2pct", overhead["off"] < 0.02),
        ("full_detects_all", detection["full_rate"] >= 1.0),
        ("spot_detects_95pct", detection["spot_rate"] >= 0.95),
        ("heal_replay_lt_10pct", healing["heal_replay_ratio"] < 0.10),
    )
    print()
    for name, ok in gates:
        verdict = "PASS" if ok else ("n/a (quick)" if args.quick else "FAIL")
        acceptance[name] = ok
        print(f"acceptance   : {name}: {verdict}")
        if not ok and not args.quick:
            rc = 1
    acceptance["quick"] = args.quick

    json_path = args.json or os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "BENCH_sdc.json"
    )
    with open(json_path, "w", encoding="utf-8") as fh:
        json.dump(
            {
                "benchmark": "sdc",
                "grid": grid,
                "steps": args.steps,
                "dim_t": args.dim_t,
                "seeds": n_seeds,
                "quick": args.quick,
                "overhead": overhead,
                "detection": detection,
                "healing": healing,
                "acceptance": acceptance,
            },
            fh, indent=2,
        )
        fh.write("\n")
    print(f"wrote {json_path}")
    return rc


if __name__ == "__main__":
    sys.exit(main())
