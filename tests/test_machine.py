"""Tests for machine specs (Table I), cache/TLB simulators, roofline."""

import pytest

from repro.machine import (
    CORE_I7,
    GTX_285,
    PAGE_2M,
    PAGE_4K,
    Cache,
    MemoryHierarchy,
    Tlb,
    attainable_updates,
    is_bandwidth_bound,
    scaled_machine,
    simulate_jacobi_sweep,
    simulate_streaming_pass,
)


class TestTableI:
    """Table I values must reproduce exactly."""

    def test_core_i7_bytes_per_op(self):
        assert CORE_I7.bytes_per_op("sp") == pytest.approx(0.29, abs=0.005)
        assert CORE_I7.bytes_per_op("dp") == pytest.approx(0.59, abs=0.005)

    def test_gtx285_bytes_per_op(self):
        assert GTX_285.bytes_per_op("sp") == pytest.approx(0.14, abs=0.005)
        assert GTX_285.bytes_per_op("dp") == pytest.approx(1.7, abs=0.02)

    def test_gtx285_derated(self):
        # "the actual bytes/op about 0.43 for SP and 3.44 for DP"
        assert GTX_285.bytes_per_op("sp", derated=True) == pytest.approx(0.43, abs=0.01)
        assert GTX_285.bytes_per_op("dp", derated=True) == pytest.approx(3.44, rel=0.02)

    def test_achievable_bandwidths(self):
        # "we have measured 22 GB/s on Core i7 and 131 GB/s on GTX 285"
        assert CORE_I7.achievable_bandwidth == pytest.approx(22e9)
        assert GTX_285.achievable_bandwidth == pytest.approx(131e9)
        # "achievable bandwidths are usually about 20-25% off from peak"
        for m in (CORE_I7, GTX_285):
            off = 1 - m.achievable_bandwidth / m.peak_bandwidth
            assert 0.15 < off < 0.3

    def test_capacities(self):
        assert CORE_I7.llc_bytes == 8 << 20
        assert CORE_I7.blocking_capacity == 4 << 20  # half LLC (Section VI-A)
        assert GTX_285.llc_bytes == 16 << 10  # shared memory
        assert GTX_285.blocking_capacity == 64 << 10  # register file

    def test_simd_widths(self):
        assert CORE_I7.simd_width("sp") == 4
        assert CORE_I7.simd_width("dp") == 2
        assert GTX_285.simd_width("sp") == 32

    def test_scaled_machine(self):
        future = scaled_machine(CORE_I7, compute_scale=2.0)
        assert future.peak_ops_sp == 2 * CORE_I7.peak_ops_sp
        assert future.bytes_per_op("sp") == pytest.approx(
            CORE_I7.bytes_per_op("sp") / 2
        )


class TestCache:
    def test_cold_miss_then_hit(self):
        c = Cache(1024, line=64, assoc=2)
        assert not c.access(0)
        assert c.access(0)
        assert c.access(63)  # same line
        assert not c.access(64)  # next line

    def test_lru_eviction(self):
        c = Cache(128, line=64, assoc=2)  # 1 set, 2 ways
        c.access(0)
        c.access(64)
        c.access(0)  # refresh line 0
        c.access(128)  # evicts line 64 (LRU)
        assert c.access(0)
        assert not c.access(64)

    def test_writeback_on_dirty_eviction(self):
        c = Cache(128, line=64, assoc=2)
        c.access(0, write=True)
        c.access(64)
        c.access(128)  # evicts dirty line 0
        assert c.stats.writebacks == 1

    def test_flush_counts_dirty(self):
        c = Cache(1024, line=64, assoc=2)
        c.access(0, write=True)
        c.access(64, write=False)
        assert c.flush() == 1
        assert c.resident_lines() == 0

    def test_capacity_respected(self):
        c = Cache(4096, line=64, assoc=4)
        for i in range(200):
            c.access(i * 64)
        assert c.resident_lines() <= 4096 // 64

    def test_validation(self):
        with pytest.raises(ValueError):
            Cache(100, line=64, assoc=2)  # not a multiple
        with pytest.raises(ValueError):
            Cache(0)

    def test_hit_rate(self):
        c = Cache(1024, line=64, assoc=2)
        c.access(0)
        c.access(0)
        assert c.stats.hit_rate == pytest.approx(0.5)


class TestTlb:
    def test_page_hit_miss(self):
        t = Tlb(entries=2, page_size=PAGE_4K)
        assert not t.access(0)
        assert t.access(100)  # same page
        assert not t.access(PAGE_4K)
        assert not t.access(2 * PAGE_4K)  # evicts page 0
        assert not t.access(0)

    def test_large_pages_reduce_misses(self):
        """Section VI: 2 MB pages cut TLB misses for streaming sweeps."""
        small, large = Tlb(32, PAGE_4K), Tlb(32, PAGE_2M)
        stride = 4096
        for i in range(4096):
            small.access(i * stride)
            large.access(i * stride)
        assert large.stats.misses < small.stats.misses / 50

    def test_reach(self):
        assert Tlb(512, PAGE_4K).reach() == 512 * PAGE_4K


class TestHierarchySweeps:
    def test_fitting_slabs_give_compulsory_traffic(self):
        """3 slabs fit: each element fetched once per sweep (Section VII-A)."""
        shape, esize = (16, 32, 32), 8
        h = MemoryHierarchy([Cache(256 << 10, 64, 8)])
        r = simulate_jacobi_sweep(h, shape, esize, steps=2)
        grid = shape[0] * shape[1] * shape[2] * esize
        # compulsory: read grid + write grid per sweep (plus cold dst fills)
        assert r.external_bytes / (2 * 2 * grid) < 1.1

    def test_small_cache_thrashes(self):
        shape, esize = (16, 32, 32), 8
        h = MemoryHierarchy([Cache(16 << 10, 64, 8)])
        r = simulate_jacobi_sweep(h, shape, esize, steps=2)
        grid = shape[0] * shape[1] * shape[2] * esize
        # every touch misses: ~(2R+1) reads + writes per element
        assert r.external_bytes / (2 * 2 * grid) > 1.8

    def test_streaming_pass_has_no_reuse(self):
        h = MemoryHierarchy([Cache(512 << 10, 64, 8)])
        r = simulate_streaming_pass(h, (8, 16, 16), 80, steps=1)
        assert r.level_stats[0].hit_rate == 0.0

    def test_multilevel_cascade(self):
        h = MemoryHierarchy([Cache(4 << 10, 64, 4), Cache(64 << 10, 64, 8)])
        r = simulate_jacobi_sweep(h, (8, 16, 16), 8, steps=1)
        l1, l2 = r.level_stats
        assert l1.accesses > 0
        assert l2.accesses == l1.misses  # only L1 misses reach L2
        assert r.external_bytes > 0

    def test_needs_levels(self):
        with pytest.raises(ValueError):
            MemoryHierarchy([])


class TestRoofline:
    def test_bandwidth_bound_detection(self):
        # Section IV-C: 7pt SP (γ=0.5) is BW bound on CPU; 27pt (0.14) is not
        assert is_bandwidth_bound(CORE_I7, "sp", 0.5, derated=False)
        assert not is_bandwidth_bound(CORE_I7, "sp", 0.138, derated=False)
        # LBM DP on GPU: compute bound at the derated ratio
        assert not is_bandwidth_bound(GTX_285, "dp", 1.75, derated=True)

    def test_attainable_min_of_limits(self):
        p = attainable_updates(CORE_I7, "sp", ops_per_update=16, bytes_per_update=8)
        assert p.bandwidth_bound
        assert p.updates_per_s == pytest.approx(22e9 / 8)
        p2 = attainable_updates(CORE_I7, "sp", ops_per_update=16, bytes_per_update=1)
        assert not p2.bandwidth_bound

    def test_zero_bytes_is_compute_bound(self):
        p = attainable_updates(CORE_I7, "sp", 16, 0)
        assert not p.bandwidth_bound

    def test_efficiency_scales_compute(self):
        a = attainable_updates(CORE_I7, "sp", 16, 0, compute_efficiency=1.0)
        b = attainable_updates(CORE_I7, "sp", 16, 0, compute_efficiency=0.5)
        assert b.updates_per_s == pytest.approx(a.updates_per_s / 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            attainable_updates(CORE_I7, "sp", 0, 8)
        with pytest.raises(ValueError):
            attainable_updates(CORE_I7, "sp", 16, 8, compute_efficiency=1.5)


class TestSimdModel:
    """Section VII-A's SSE scalings from one microarchitectural constant."""

    def test_sp_scaling_matches_paper(self):
        from repro.machine import sse_scaling_7pt

        assert sse_scaling_7pt("sp") == pytest.approx(3.2, abs=0.1)

    def test_dp_scaling_matches_paper(self):
        from repro.machine import sse_scaling_7pt

        assert sse_scaling_7pt("dp") == pytest.approx(1.65, abs=0.1)

    def test_free_unaligned_loads_recover_ideal(self):
        from repro.machine import sse_scaling_7pt

        assert sse_scaling_7pt("sp", unaligned_cost=1.0) == pytest.approx(4.0)
        assert sse_scaling_7pt("dp", unaligned_cost=1.0) == pytest.approx(2.0)

    def test_speedup_monotone_in_unaligned_cost(self):
        from repro.machine import sse_scaling_7pt

        costs = [sse_scaling_7pt("sp", unaligned_cost=c) for c in (1, 2, 3, 5)]
        assert costs == sorted(costs, reverse=True)

    def test_simd_cost_accounting(self):
        from repro.machine import SimdCost, simd_speedup

        cost = SimdCost(width=4, arithmetic=8, aligned_loads=7,
                        unaligned_loads=0, stores=1)
        assert cost.instruction_equivalents == 16
        assert simd_speedup(16, cost) == pytest.approx(4.0)
