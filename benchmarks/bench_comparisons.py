"""Section VII-D: normalized comparisons against prior work.

Regenerates every comparison row — Datta's 7-point numbers (CPU and GPU),
Habich's LBM, and the bandwidth-bound baselines — with the paper's own
normalization arithmetic, and checks the modeled speedups land on the
reported 1.5X / 2.08X / 2.1X / 1.8X / ~0.87X.
"""

import pytest

from repro.perf import format_comparisons, section_viid_comparisons

from .conftest import banner, record

PAPER_SPEEDUPS = {
    "7pt DP CPU vs Datta [10]": 1.5,
    "7pt SP CPU vs best bandwidth-bound prior": 1.5,
    "LBM DP CPU vs Habich [13]": 2.08,
    "LBM SP CPU vs bandwidth-bound baseline": 2.1,
    "7pt SP GPU vs spatially blocked prior": 1.8,
    "7pt DP GPU vs Datta [11]": 0.87,
}


def test_section_viid(benchmark):
    rows = benchmark(section_viid_comparisons)
    print()
    print(format_comparisons(rows, "Section VII-D: comparisons vs prior work"))
    assert {r.label for r in rows} == set(PAPER_SPEEDUPS)
    for r in rows:
        assert r.paper_speedup == PAPER_SPEEDUPS[r.label]
        assert r.modeled_speedup == pytest.approx(r.paper_speedup, rel=0.15), r.label
    # headline claims survive modeling
    by = {r.label: r for r in rows}
    assert by["LBM DP CPU vs Habich [13]"].modeled_speedup > 2.0
    assert by["7pt SP GPU vs spatially blocked prior"].modeled_speedup > 1.7
    assert by["7pt DP GPU vs Datta [11]"].modeled_speedup < 1.0  # the honest loss
    record(
        benchmark,
        **{r.label.split(" vs ")[0].replace(" ", "_"): round(r.modeled_speedup, 2) for r in rows},
    )


def test_normalization_arithmetic(benchmark):
    """The paper's normalizations themselves (Section VII-D text)."""

    def normalize():
        datta = 1000 * 22 / 16.5  # "1000 * 22/16.5 = 1333"
        habich = 64 * 0.5 * (3.2 / 2.66)  # "scale by 0.5 ... then by 3.2/2.66"
        return datta, habich

    datta, habich = benchmark(normalize)
    print(f"\nDatta normalized: {datta:.0f} MU/s (paper: 1333)")
    print(f"Habich normalized: {habich:.1f} MLUPS (paper: 38.5)")
    assert datta == pytest.approx(1333, abs=1)
    assert habich == pytest.approx(38.5, abs=0.1)
