"""The paper's primary contribution: 3.5D blocking and its comparisons."""

from .autotune import (
    Candidate,
    TuningCache,
    WallClockCandidate,
    WallClockResult,
    autotune_empirical,
    autotune_wallclock,
    machine_fingerprint,
    shape_class,
)
from .blocking3d import Blocking3D, run_3d
from .blocking4d import Blocking4D, run_4d
from .blocking25d import Blocking25D, run_2_5d
from .blocking35d import Blocking35D, run_3_5d
from .buffer import PlaneRing, RingSet, ring_slots
from .cache_oblivious import run_cache_oblivious, trapezoid_trace
from .naive import naive_sweep, run_naive
from .periodic import (
    PAD_MODES,
    pad_field,
    run_3_5d_padded,
    run_3_5d_periodic,
    run_naive_padded,
    run_naive_periodic,
    wrap_pad,
)
from .overestimation import (
    compute_overestimation_4d,
    compute_overestimation_35d,
    kappa_3d,
    kappa_4d,
    kappa_25d,
    kappa_35d,
    wavefront_working_set,
)
from .params import (
    BlockingParams,
    InfeasibleBlockingError,
    blocking_dim,
    capacity_bytes_needed,
    fits_capacity,
    min_dim_t,
    select_params,
)
from .regions import (
    AxisTile,
    SlabSplit,
    Tile2D,
    axis_tiles,
    compute_range,
    loaded_extent,
    plan_tiles_2d,
    split_slab,
)
from .schedule import Schedule, Step, StepKind, build_schedule, lag_for
from .temporal import advance_tile_trapezoid
from .tuner import TuningResult, tune
from .traffic import TrafficStats

__all__ = [
    "Blocking3D",
    "Candidate",
    "autotune_empirical",
    "autotune_wallclock",
    "TuningCache",
    "WallClockCandidate",
    "WallClockResult",
    "machine_fingerprint",
    "shape_class",
    "Blocking4D",
    "Blocking25D",
    "Blocking35D",
    "run_3d",
    "run_4d",
    "run_2_5d",
    "run_3_5d",
    "PlaneRing",
    "RingSet",
    "ring_slots",
    "naive_sweep",
    "run_cache_oblivious",
    "trapezoid_trace",
    "run_3_5d_periodic",
    "run_naive_periodic",
    "run_3_5d_padded",
    "run_naive_padded",
    "pad_field",
    "PAD_MODES",
    "wrap_pad",
    "run_naive",
    "kappa_3d",
    "kappa_25d",
    "kappa_35d",
    "kappa_4d",
    "compute_overestimation_35d",
    "compute_overestimation_4d",
    "wavefront_working_set",
    "BlockingParams",
    "InfeasibleBlockingError",
    "blocking_dim",
    "capacity_bytes_needed",
    "fits_capacity",
    "min_dim_t",
    "select_params",
    "AxisTile",
    "SlabSplit",
    "Tile2D",
    "axis_tiles",
    "compute_range",
    "loaded_extent",
    "plan_tiles_2d",
    "split_slab",
    "Schedule",
    "Step",
    "StepKind",
    "build_schedule",
    "lag_for",
    "advance_tile_trapezoid",
    "TuningResult",
    "tune",
    "TrafficStats",
]
