"""BGK collision operator and equilibrium distributions.

The single-relaxation-time (BGK) collision relaxes the distributions toward
the discrete Maxwell-Boltzmann equilibrium:

.. math::

   f_i^{eq} = w_i \\rho \\bigl(1 + 3 (c_i \\cdot u) + 4.5 (c_i \\cdot u)^2
              - 1.5 u^2\\bigr)

   f_i' = f_i - \\omega (f_i - f_i^{eq})

The paper's op accounting for a D3Q19 cell update is 259 ops — about 12
flops per direction (220 total) plus 20 reads and 19 writes (Section IV-B).

All functions are vectorized over trailing spatial axes, matching the
structure-of-arrays layout the paper requires for SIMD (Section III-B).
"""

from __future__ import annotations

import numpy as np

from .d3q19 import N_DIRECTIONS, VELOCITIES, WEIGHTS

__all__ = [
    "equilibrium",
    "collide_bgk",
    "collide_bgk_inplace",
    "OPS_PER_UPDATE",
    "FLOPS_PER_UPDATE",
]

#: Section IV-B: 220 flops + 20 reads + 19 writes
OPS_PER_UPDATE = 259
FLOPS_PER_UPDATE = 220


def equilibrium(rho: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Equilibrium distributions for density ``rho`` and velocity ``u``.

    Parameters
    ----------
    rho:
        Density, shape ``S`` (any trailing spatial shape).
    u:
        Velocity, shape ``(3,) + S`` ordered (uz, uy, ux).

    Returns
    -------
    Array of shape ``(19,) + S``.
    """
    rho = np.asarray(rho)
    u = np.asarray(u)
    dtype = np.result_type(rho, u)
    one5 = dtype.type(1.5)
    three = dtype.type(3.0)
    four5 = dtype.type(4.5)
    usq = u[0] * u[0] + u[1] * u[1] + u[2] * u[2]
    feq = np.empty((N_DIRECTIONS,) + rho.shape, dtype=dtype)
    for i in range(N_DIRECTIONS):
        cz, cy, cx = VELOCITIES[i]
        cu = dtype.type(cz) * u[0] + dtype.type(cy) * u[1] + dtype.type(cx) * u[2]
        feq[i] = (
            dtype.type(WEIGHTS[i])
            * rho
            * (dtype.type(1.0) + three * cu + four5 * cu * cu - one5 * usq)
        )
    return feq


def collide_bgk(f: np.ndarray, omega: float) -> np.ndarray:
    """Apply one BGK collision to distributions ``f`` of shape ``(19,) + S``.

    Returns the post-collision distributions (a new array).
    """
    f = np.asarray(f)
    dtype = f.dtype
    # Explicit sequential reduction: np.sum(axis=0) switches between
    # pairwise and sequential strategies depending on the trailing shape,
    # which would break the bit-exactness contract between blocking
    # schedules that compute different-sized regions of the same cells.
    rho = f[0].copy()
    for i in range(1, N_DIRECTIONS):
        rho += f[i]
    u = np.zeros((3,) + f.shape[1:], dtype=dtype)
    for i in range(N_DIRECTIONS):
        cz, cy, cx = VELOCITIES[i]
        if cz:
            u[0] += dtype.type(cz) * f[i]
        if cy:
            u[1] += dtype.type(cy) * f[i]
        if cx:
            u[2] += dtype.type(cx) * f[i]
    inv_rho = dtype.type(1.0) / rho
    u *= inv_rho
    feq = equilibrium(rho, u)
    w = dtype.type(omega)
    return f + w * (feq - f)


def collide_bgk_inplace(f: np.ndarray, omega: float, out: np.ndarray, arena) -> None:
    """Allocation-free BGK collision, bit-identical to :func:`collide_bgk`.

    Writes the post-collision distributions into ``out`` (same ``(19,) + S``
    shape as ``f``; must not alias ``f``), drawing every temporary from the
    scratch ``arena``.  Each expression reproduces the exact operand pairing
    of :func:`collide_bgk` / :func:`equilibrium` so that all blocking
    schedules remain bit-identical to the naive reference.
    """
    dtype = f.dtype
    space = f.shape[1:]
    rho = arena.get("bgk.rho", space, dtype)
    u = arena.get("bgk.u", (3,) + space, dtype)
    t = arena.get("bgk.t", space, dtype)
    usq = arena.get("bgk.usq", space, dtype)
    cu = arena.get("bgk.cu", space, dtype)
    poly = arena.get("bgk.poly", space, dtype)
    feq = arena.get("bgk.feq", f.shape, dtype)

    # moments: sequential rho reduction, then velocity accumulation
    np.copyto(rho, f[0])
    for i in range(1, N_DIRECTIONS):
        rho += f[i]
    u[...] = 0
    for i in range(N_DIRECTIONS):
        cz, cy, cx = VELOCITIES[i]
        if cz:
            np.multiply(f[i], dtype.type(cz), out=t)
            u[0] += t
        if cy:
            np.multiply(f[i], dtype.type(cy), out=t)
            u[1] += t
        if cx:
            np.multiply(f[i], dtype.type(cx), out=t)
            u[2] += t
    np.divide(dtype.type(1.0), rho, out=t)
    u *= t

    # equilibrium, direction by direction (same polynomial grouping)
    one = dtype.type(1.0)
    one5 = dtype.type(1.5)
    three = dtype.type(3.0)
    four5 = dtype.type(4.5)
    np.multiply(u[0], u[0], out=usq)
    np.multiply(u[1], u[1], out=t)
    usq += t
    np.multiply(u[2], u[2], out=t)
    usq += t
    for i in range(N_DIRECTIONS):
        cz, cy, cx = VELOCITIES[i]
        np.multiply(u[0], dtype.type(cz), out=cu)
        np.multiply(u[1], dtype.type(cy), out=t)
        cu += t
        np.multiply(u[2], dtype.type(cx), out=t)
        cu += t
        # 1 + 3 cu + 4.5 cu^2 - 1.5 usq, associated exactly as equilibrium()
        np.multiply(cu, three, out=poly)
        np.add(one, poly, out=poly)
        np.multiply(cu, four5, out=t)
        t *= cu
        poly += t
        np.multiply(usq, one5, out=t)
        poly -= t
        np.multiply(rho, dtype.type(WEIGHTS[i]), out=t)
        np.multiply(t, poly, out=feq[i])

    # f' = f + omega * (feq - f)
    np.subtract(feq, f, out=feq)
    feq *= dtype.type(omega)
    np.add(f, feq, out=out)
