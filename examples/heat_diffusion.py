"""Heat diffusion in a 3D block — the PDE-solver workload of Section IV-A.

A hot sphere embedded in a cold block diffuses over time; the update is the
paper's 7-point stencil with coefficients chosen as an explicit-Euler heat
equation step.  The solver is auto-tuned for a (scaled) Core i7 and run with
3.5D blocking; a naive run cross-checks the physics.

Run:  python examples/heat_diffusion.py
"""

import numpy as np

from repro import Field3D, SevenPointStencil, TrafficStats, run_naive
from repro.core import tune
from repro.machine import CORE_I7, scaled_machine


def make_hot_sphere(n: int, radius: float, t_hot: float = 100.0) -> Field3D:
    z, y, x = np.ogrid[:n, :n, :n]
    c = (n - 1) / 2
    sphere = (z - c) ** 2 + (y - c) ** 2 + (x - c) ** 2 <= radius**2
    data = np.zeros((n, n, n), dtype=np.float32)
    data[sphere] = t_hot
    return Field3D.from_array(data.copy())


def main() -> None:
    n, steps = 48, 40
    # explicit Euler step of du/dt = D*laplacian(u): alpha = 1-6k, beta = k
    k = 1.0 / 8.0
    kernel = SevenPointStencil(alpha=1 - 6 * k, beta=k)
    field = make_hot_sphere(n, radius=6)

    # Tune for a cache scaled down to make tiling visible at this grid size.
    machine = scaled_machine(CORE_I7, capacity_scale=0.002)  # ~8 KB budget
    tuning = tune(kernel, machine, np.float32, derated=False)
    print("Heat diffusion (7-point stencil)")
    print(f"  tuner verdict: {tuning.rationale}")

    traffic = TrafficStats()
    executor = tuning.make_executor(kernel)
    result = executor.run(field, steps, traffic)

    # cross-check against the naive reference
    reference = run_naive(kernel, field, steps)
    assert np.array_equal(result.data, reference.data)

    total0 = float(field.data.sum(dtype=np.float64))
    total1 = float(result.data.sum(dtype=np.float64))
    center = result.data[0, n // 2, n // 2, n // 2]
    edge = result.data[0, n // 2, n // 2, 2]
    print(f"  steps                : {steps}")
    print(f"  peak temperature     : {field.data.max():.1f} -> {result.data.max():.2f}")
    print(f"  center / near-edge   : {center:.2f} / {edge:.4f}")
    print(f"  heat retained        : {total1 / total0 * 100:.1f}% (rest lost via the cold boundary)")
    print(f"  external traffic     : {traffic.total_bytes / 1e6:.1f} MB "
          f"({traffic.bytes_per_update():.2f} B/update)")
    print("  blocked result matches the naive solver bit-for-bit")


if __name__ == "__main__":
    main()
