"""3D spatial blocking (paper Section V-A2, Figure 2a).

The grid is divided into overlapping axis-aligned 3D blocks; each block is
loaded on chip (ghost layer of width R included) and the stencil is applied
to its interior.  One time step per sweep.  The ghost layers are re-loaded by
every neighboring block, which is the 3D overestimation
:math:`\\kappa^{3D} = ((1-2R/d_x)(1-2R/d_y)(1-2R/d_z))^{-1}` the paper uses
to motivate 2.5D blocking.
"""

from __future__ import annotations

from ..stencils.base import PlaneKernel, ScratchArena
from ..stencils.grid import Field3D, copy_shell
from .regions import axis_tiles
from .temporal import advance_tile_trapezoid
from .traffic import TrafficStats

__all__ = ["Blocking3D", "run_3d"]


class Blocking3D:
    """3D spatial blocking executor (one time step per grid sweep)."""

    def __init__(
        self, kernel: PlaneKernel, tile_z: int, tile_y: int, tile_x: int
    ) -> None:
        self.kernel = kernel
        self.tile_z = tile_z
        self.tile_y = tile_y
        self.tile_x = tile_x
        self.scratch = ScratchArena()

    def clear_cache(self) -> None:
        """Drop the trapezoid scratch buffers."""
        self.scratch.clear()

    def run(
        self,
        field: Field3D,
        steps: int,
        traffic: TrafficStats | None = None,
    ) -> Field3D:
        if steps < 0:
            raise ValueError("steps must be >= 0")
        if steps == 0:
            return field.copy()
        src = field.copy()
        dst = field.like()
        copy_shell(src, dst, self.kernel.radius)
        for _ in range(steps):
            self.sweep(src, dst, traffic)
            src, dst = dst, src
        return src

    def sweep(
        self,
        src: Field3D,
        dst: Field3D,
        traffic: TrafficStats | None = None,
    ) -> None:
        """One Jacobi step as a sweep of overlapping 3D blocks."""
        r = self.kernel.radius
        nz, ny, nx = src.shape
        # dim_t=1: each block's core shrinks by one ghost layer per cut side.
        for tz in axis_tiles(nz, r, 1, self.tile_z):
            for ty in axis_tiles(ny, r, 1, self.tile_y):
                for tx in axis_tiles(nx, r, 1, self.tile_x):
                    advance_tile_trapezoid(
                        self.kernel,
                        src,
                        dst,
                        (tz.core, ty.core, tx.core),
                        1,
                        traffic,
                        scratch=self.scratch,
                    )


def run_3d(
    kernel: PlaneKernel,
    field: Field3D,
    steps: int,
    tile_z: int,
    tile_y: int,
    tile_x: int,
    *,
    traffic: TrafficStats | None = None,
) -> Field3D:
    """Convenience wrapper for :class:`Blocking3D`."""
    return Blocking3D(kernel, tile_z, tile_y, tile_x).run(field, steps, traffic)
