"""Structured run reports: what degraded, what retried, what recovered.

A resilient run that silently falls back to a slower backend is only half a
feature — the run must *say* it degraded, in a machine-checkable form.
:class:`RunReport` is that record: the fallback chain's degradations, the
watchdog's retries/repairs, checkpoint activity, and warnings, plus the
single ``degraded`` verdict the CLI maps to exit code 3
(degraded-but-correct) versus 0 (clean).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RunReport"]


@dataclass
class RunReport:
    """Accumulated resilience events of one run."""

    requested_backend: str = ""
    used_backend: str = ""
    degradations: list = field(default_factory=list)
    retries: int = 0
    repairs: int = 0
    rounds: int = 0
    checkpoints_written: int = 0
    resumed_from: int | None = None
    warnings: list[str] = field(default_factory=list)
    #: integrity record of an active SDC tier (see repro.resilience.sdc);
    #: a run that detected-and-healed corruption finished *degraded* —
    #: correct bits, but not on the clean path
    sdc: object | None = None

    @property
    def degraded(self) -> bool:
        """True when the run completed but not on the clean path."""
        return (
            bool(self.degradations)
            or self.retries > 0
            or self.repairs > 0
            or (self.sdc is not None and self.sdc.degraded)
        )

    def lines(self) -> list[str]:
        """Human-readable summary lines (empty for a clean run)."""
        out = []
        if self.sdc is not None:
            out.extend(self.sdc.lines())
        for deg in self.degradations:
            out.append(f"degraded     : {deg}")
        if self.used_backend and self.used_backend != self.requested_backend:
            out.append(
                f"backend used : {self.used_backend} "
                f"(requested {self.requested_backend})"
            )
        if self.retries:
            out.append(f"retries      : {self.retries}")
        if self.repairs:
            out.append(f"repairs      : {self.repairs}")
        if self.resumed_from is not None:
            out.append(f"resumed      : from step {self.resumed_from}")
        if self.checkpoints_written:
            out.append(f"checkpoints  : {self.checkpoints_written} written")
        for w in self.warnings:
            out.append(f"warning      : {w}")
        return out
