"""The D3Q19 lattice container: distributions in SoA layout plus cell flags.

Section III-B: "the neighboring velocity vectors must be stored in
structure-of-arrays format to enable SIMD processing" — the 19 distribution
components live in 19 separate (nz, ny, nx) arrays, which is exactly
:class:`~repro.stencils.grid.Field3D` with ``ncomp = 19``.

Each cell also carries a flag (fluid / solid) checked during propagation
(Section IV-B step 1 reads "19 values plus a flag array").  The element size
the paper uses for capacity and bandwidth math is therefore 20 values:
80 bytes SP, 160 bytes DP.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..stencils.grid import Field3D
from .collision import equilibrium
from .d3q19 import N_DIRECTIONS, WEIGHTS

__all__ = ["CellType", "Lattice", "element_size_with_flag"]


class CellType:
    """Cell flags; stored in a uint8 array."""

    FLUID = 0
    SOLID = 1


def element_size_with_flag(dtype) -> int:
    """The paper's per-cell E: 19 distributions plus one flag-sized slot."""
    return (N_DIRECTIONS + 1) * np.dtype(dtype).itemsize


@dataclass
class Lattice:
    """Distributions + flags on a 3D lattice."""

    f: Field3D
    flags: np.ndarray

    def __post_init__(self) -> None:
        if self.f.ncomp != N_DIRECTIONS:
            raise ValueError(f"expected {N_DIRECTIONS} components, got {self.f.ncomp}")
        if self.flags.shape != self.f.shape:
            raise ValueError(
                f"flags shape {self.flags.shape} != lattice shape {self.f.shape}"
            )

    # -- constructors ------------------------------------------------------
    @classmethod
    def uniform(
        cls,
        shape: tuple[int, int, int],
        rho: float = 1.0,
        velocity: tuple[float, float, float] = (0.0, 0.0, 0.0),
        dtype=np.float64,
    ) -> "Lattice":
        """A lattice at uniform equilibrium with given density and velocity."""
        nz, ny, nx = shape
        rho_arr = np.full(shape, rho, dtype=dtype)
        u = np.empty((3,) + shape, dtype=dtype)
        for a in range(3):
            u[a] = velocity[a]
        f = Field3D(np.ascontiguousarray(equilibrium(rho_arr, u)))
        return cls(f=f, flags=np.zeros(shape, dtype=np.uint8))

    @classmethod
    def from_moments(
        cls,
        rho: np.ndarray,
        u: np.ndarray,
        flags: np.ndarray | None = None,
    ) -> "Lattice":
        """Initialize distributions at equilibrium of the given moment fields."""
        f = Field3D(np.ascontiguousarray(equilibrium(rho, u)))
        if flags is None:
            flags = np.zeros(rho.shape, dtype=np.uint8)
        return cls(f=f, flags=flags)

    # -- properties --------------------------------------------------------
    @property
    def shape(self) -> tuple[int, int, int]:
        return self.f.shape

    @property
    def dtype(self):
        return self.f.dtype

    def element_size(self) -> int:
        """Bytes per cell including the flag (80 SP / 160 DP)."""
        return element_size_with_flag(self.dtype)

    def fluid_mask(self) -> np.ndarray:
        return self.flags == CellType.FLUID

    def solid_fraction(self) -> float:
        return float((self.flags == CellType.SOLID).mean())

    def copy(self) -> "Lattice":
        return Lattice(f=self.f.copy(), flags=self.flags.copy())

    # -- initialization helpers --------------------------------------------
    def set_solid(self, mask: np.ndarray) -> None:
        """Mark cells as solid obstacles."""
        self.flags[mask] = CellType.SOLID

    def set_equilibrium_shell(
        self,
        velocity_top: tuple[float, float, float] = (0.0, 0.0, 0.0),
        rho: float = 1.0,
    ) -> None:
        """Impose equilibrium values on the boundary shell (width 1).

        The top plane (z = nz-1) gets ``velocity_top`` — the moving lid of
        the classic lid-driven cavity; the remaining shell is at rest.  The
        blocking framework holds these values fixed in time, which is a
        Dirichlet velocity boundary condition.
        """
        nz, ny, nx = self.shape
        dtype = self.dtype
        rest = np.asarray(WEIGHTS, dtype=dtype) * dtype.type(rho)
        d = self.f.data
        for i in range(N_DIRECTIONS):
            d[i, 0, :, :] = rest[i]
            d[i, -1, :, :] = rest[i]
            d[i, :, 0, :] = rest[i]
            d[i, :, -1, :] = rest[i]
            d[i, :, :, 0] = rest[i]
            d[i, :, :, -1] = rest[i]
        if any(velocity_top):
            u = np.empty((3, ny, nx), dtype=dtype)
            for a in range(3):
                u[a] = velocity_top[a]
            lid = equilibrium(np.full((ny, nx), rho, dtype=dtype), u)
            d[:, -1, :, :] = lid
