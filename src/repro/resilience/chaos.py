"""Chaos soak harness: randomized seeded fault schedules, bit-exact or bust.

The rank-recovery path (buddy checkpoints + elastic re-decomposition, see
:mod:`repro.resilience.rankrecovery`) claims that *any* survivable fault
schedule yields a final field bit-identical to the fault-free run.  A
handful of hand-written tests cannot earn that claim; a soak can: this
module derives a random-but-reproducible fault schedule from a seed —
rank crashes, message loss, payload corruption, delayed acks — runs the
distributed driver under it, and compares the result bit-for-bit against
a fault-free naive reference.  Every seed is a complete repro recipe: the
same seed always produces the same schedule, the same recovery sequence,
and the same (correct) bits.

Entry points: :func:`make_case` (seed -> schedule), :func:`run_case`
(one soak iteration), :func:`run_soak` (the multi-seed loop used by
``repro chaos`` and ``benchmarks/bench_chaos.py``).  A failing case can be
dumped as a **repro bundle** (fault specs + trace JSON + case metadata)
via :func:`write_bundle` — the artifact CI uploads so a red soak is
debuggable offline.
"""

from __future__ import annotations

import json
import time
from dataclasses import asdict, dataclass, field
from pathlib import Path

import numpy as np

from .faultinject import FAULTS, ResilienceError

__all__ = [
    "SCHEDULES",
    "ChaosCase",
    "ChaosResult",
    "make_case",
    "run_case",
    "run_soak",
    "write_bundle",
]

#: every fault family the schedule generator knows how to draw
SCHEDULES = ("crash", "loss", "corruption", "delay")


@dataclass
class ChaosCase:
    """One seeded soak iteration: the run shape plus its fault schedule."""

    seed: int
    ranks: int
    grid: int
    steps: int
    dim_t: int
    specs: list[str] = field(default_factory=list)
    loss: float = 0.0
    corruption: float = 0.0
    #: run the overlapped (post -> interior -> wait -> boundary) schedule,
    #: so crashes land mid-``wait`` and soak the pending-handle purge path
    overlap: bool = True
    latency_s: float = 0.0

    def describe(self) -> str:
        faults = ", ".join(self.specs) if self.specs else "no injected faults"
        return (
            f"seed {self.seed}: {self.ranks} ranks, {self.grid}^3 x "
            f"{self.steps} steps (dim_T={self.dim_t}); {faults}; "
            f"loss={self.loss} corruption={self.corruption}; "
            f"{'overlap' if self.overlap else 'no overlap'}"
            f" latency={self.latency_s}"
        )


@dataclass
class ChaosResult:
    """Outcome of one soak iteration, everything needed to judge and debug."""

    case: ChaosCase
    ok: bool
    bit_exact: bool
    error: str | None
    recoveries: int
    replayed_rounds: int
    failed_ranks: list
    comm_retries: int
    comm_dropped: int
    comm_corrupted: int
    comm_delayed: int
    elapsed_s: float

    def to_dict(self) -> dict:
        doc = asdict(self)
        doc["case"] = asdict(self.case)
        return doc


def make_case(
    seed: int,
    *,
    ranks: int = 4,
    grid: int = 24,
    steps: int = 6,
    dim_t: int = 2,
    schedules: tuple[str, ...] = SCHEDULES,
) -> ChaosCase:
    """Derive a deterministic fault schedule from ``seed``.

    ``crash`` kills one uniformly-chosen rank at a uniformly-chosen round
    (via the ``rank.crash`` heartbeat site — always a *survivable* single
    failure, the buddy scheme's design point); ``loss``/``corruption``
    draw per-message probabilities for the transport; ``delay`` arms a
    burst of delayed acks.  Unknown schedule names raise ``ValueError``.
    """
    unknown = set(schedules) - set(SCHEDULES)
    if unknown:
        raise ValueError(
            f"unknown chaos schedule(s) {sorted(unknown)}; "
            f"known: {', '.join(SCHEDULES)}"
        )
    rng = np.random.default_rng(seed)
    rounds = -(-steps // dim_t)
    specs: list[str] = []
    loss = corruption = 0.0
    if "crash" in schedules and ranks >= 2:
        victim = int(rng.integers(0, ranks))
        when = int(rng.integers(0, rounds))
        specs.append(f"rank.crash={victim}" + (f"@{when}" if when else ""))
    if "loss" in schedules:
        loss = round(float(rng.uniform(0.02, 0.15)), 3)
    if "corruption" in schedules:
        corruption = round(float(rng.uniform(0.02, 0.10)), 3)
    if "delay" in schedules:
        times = int(rng.integers(1, 4))
        after = int(rng.integers(0, 6))
        specs.append(f"comm.delay:{times}" + (f"@{after}" if after else ""))
    # mostly soak the overlapped schedule (crashes detected mid-wait, with
    # handles pending); 1-in-5 cases keep the fused path covered too
    overlap = bool(rng.random() < 0.8)
    latency_s = round(float(rng.uniform(1e-6, 1e-4)), 9)
    return ChaosCase(
        seed=seed, ranks=ranks, grid=grid, steps=steps, dim_t=dim_t,
        specs=specs, loss=loss, corruption=corruption,
        overlap=overlap, latency_s=latency_s,
    )


def run_case(case: ChaosCase, *, trace: bool = False) -> ChaosResult:
    """One soak iteration: run under the schedule, verify bit-exactness.

    The reference is a fault-free serial naive run of the same field and
    step count — the strongest possible oracle.  ``trace=True`` arms the
    span tracer around the faulty run so a failure's recovery timeline can
    be exported into the repro bundle.
    """
    from ..core.naive import run_naive
    from ..distributed.runner import DistributedJacobi
    from ..obs.trace import TRACE
    from ..stencils.grid import Field3D
    from ..stencils.seven_point import SevenPointStencil

    kernel = SevenPointStencil()
    shape = (case.grid,) * 3
    fld = Field3D.random(shape, dtype=np.float32, seed=case.seed)
    ref = run_naive(kernel, fld, case.steps)

    runner = DistributedJacobi(
        kernel,
        case.ranks,
        dim_t=case.dim_t,
        loss=case.loss,
        corruption=case.corruption,
        comm_seed=case.seed,
        max_retries=64,  # lossy links must exhaust probabilistically never
        overlap=case.overlap,
        latency_s=case.latency_s,
    )
    error = None
    out = comm = None
    if trace:
        TRACE.arm()
    t0 = time.perf_counter()
    try:
        with FAULTS.injected(*case.specs):
            out, comm = runner.run(fld, case.steps)
    except ResilienceError as exc:
        error = f"{type(exc).__name__}: {exc}"
    elapsed = time.perf_counter() - t0

    bit_exact = out is not None and bool(np.array_equal(out.data, ref.data))
    total = comm.total_stats() if comm is not None else None
    rep = runner.recovery
    return ChaosResult(
        case=case,
        ok=error is None and bit_exact,
        bit_exact=bit_exact,
        error=error,
        recoveries=rep.recoveries,
        replayed_rounds=rep.replayed_rounds,
        failed_ranks=list(rep.failed_ranks),
        comm_retries=total.retries if total else 0,
        comm_dropped=total.dropped if total else 0,
        comm_corrupted=total.corrupted if total else 0,
        comm_delayed=total.delayed if total else 0,
        elapsed_s=elapsed,
    )


def run_soak(
    seeds,
    *,
    ranks: int = 4,
    grid: int = 24,
    steps: int = 6,
    dim_t: int = 2,
    schedules: tuple[str, ...] = SCHEDULES,
    trace: bool = False,
) -> list[ChaosResult]:
    """Run one :func:`run_case` per seed; never raises on a red case —
    the caller inspects ``result.ok`` (and bundles the failures)."""
    return [
        run_case(
            make_case(
                seed, ranks=ranks, grid=grid, steps=steps, dim_t=dim_t,
                schedules=schedules,
            ),
            trace=trace,
        )
        for seed in seeds
    ]


def write_bundle(result: ChaosResult, directory) -> Path:
    """Dump a failing seed's repro bundle; returns the bundle directory.

    Contents: ``case.json`` (the full result, including the fault specs
    that reproduce the failure), ``faults.txt`` (the ``$REPRO_FAULTS``
    value to re-arm the schedule by hand), and — when the tracer was armed
    during the run — ``trace.json`` with the recovery spans.
    """
    from ..obs.export import write_chrome_trace
    from ..obs.trace import TRACE

    bundle = Path(directory) / f"seed-{result.case.seed}"
    bundle.mkdir(parents=True, exist_ok=True)
    with open(bundle / "case.json", "w", encoding="utf-8") as fh:
        json.dump(result.to_dict(), fh, indent=2)
        fh.write("\n")
    with open(bundle / "faults.txt", "w", encoding="utf-8") as fh:
        fh.write(",".join(result.case.specs) + "\n")
    if TRACE.armed or TRACE.events():
        write_chrome_trace(str(bundle / "trace.json"))
    return bundle
