"""Guarded sweep execution: health checks, retry, repair, checkpoints.

:class:`GuardedSweep` wraps any executor with a ``run(field, steps[,
traffic])`` method (the blocking executors, the threaded 3.5D executor, or
a plain function adapter) and drives it **round by round** — chunks of
``round_steps`` time steps, the executor's natural ``dim_T`` granularity.
Driving rounds externally is bit-exact (each round reads only the full
grid state of the previous one) and is what makes the guards possible:

* after every round the grid is health-checked for NaN/Inf; the ``health``
  policy decides whether a poisoned grid raises
  (:class:`HealthCheckError`), warns and continues, or **repairs** — rolls
  back to the last good state and re-executes the rounds since;
* a round that *raises* a transient error (an injected fault, a flaky
  backend) is retried up to ``max_retries`` times with exponential
  backoff before :class:`SweepRetriesExhaustedError` surfaces the original
  exception;
* every ``checkpoint_every`` rounds the state is snapshotted atomically to
  a :class:`~repro.resilience.checkpoint.CheckpointStore`, and ``run``
  resumes from a matching snapshot — the crash/restart path of long sweeps.

The ``grid.nan`` fault site fires here (poisoning one plane after a round)
so every policy is testable without a genuinely unstable kernel.
"""

from __future__ import annotations

import time
import warnings

import numpy as np

from ..obs.metrics import METRICS
from ..obs.trace import TRACE
from .checkpoint import CheckpointError, CheckpointStore
from .faultinject import FAULTS, ResilienceError
from .report import RunReport
from .sdc import SdcGuard, inject_flips

__all__ = [
    "GuardedSweep",
    "HealthCheckError",
    "HealthWarning",
    "SweepInterruptedError",
    "SweepRetriesExhaustedError",
    "grid_is_finite",
]


class HealthCheckError(ResilienceError):
    """A round produced non-finite values and the policy is ``raise`` (or
    repair was impossible/exhausted)."""


class HealthWarning(UserWarning):
    """A round produced non-finite values and the policy is ``warn``."""


class SweepRetriesExhaustedError(ResilienceError):
    """A round kept failing after every allowed retry."""


class SweepInterruptedError(ResilienceError):
    """The sweep stopped cooperatively at a round boundary (``stop`` set).

    Raised only between rounds, so the carried ``state`` is a complete,
    consistent grid at ``step`` applied time steps — resuming the remaining
    ``steps - step`` rounds from it is bit-identical to the uninterrupted
    run.  When the sweep has a checkpoint store, a final snapshot of that
    state is written before this is raised.
    """

    def __init__(self, step: int, state=None, checkpointed: bool = False):
        self.step = step
        self.state = state
        self.checkpointed = checkpointed
        suffix = "; final checkpoint written" if checkpointed else ""
        super().__init__(
            f"sweep interrupted at a round boundary after {step} step(s)"
            f"{suffix}"
        )


def grid_is_finite(data: np.ndarray) -> bool:
    """True when the grid holds no NaN/Inf (trivially true for int grids)."""
    if not np.issubdtype(data.dtype, np.floating):
        return True
    return bool(np.isfinite(data).all())


class GuardedSweep:
    """Watchdog wrapper around an executor's ``run`` method.

    Parameters
    ----------
    executor:
        Anything with ``run(field, steps, traffic=None) -> Field3D``.
    round_steps:
        Steps advanced per guarded round; defaults to ``executor.dim_t``
        (falling back to 1), the granularity at which chunked execution is
        bit-identical to a single call.
    health:
        ``"off"``, ``"raise"``, ``"warn"``, ``"repair"`` or ``"sdc"``
        (NaN/Inf raise plus silent-data-corruption guarding at the
        ``spot`` tier unless ``sdc`` names a stronger one).
    sdc / sdc_seed / sdc_sample / sdc_max_heals:
        Integrity tier (``off``/``spot``/``seal``/``full``, see
        :mod:`repro.resilience.sdc`) plus the spot-check sampling seed,
        bands sampled per round, and the surgical-heal budget.  An
        active tier CRC-seals the grid after every round, verifies the
        seals at the next round boundary, re-executes Z bands from the
        last trusted state through the naive reference rung, and heals
        detected corruption by replaying only its propagation cone.
        The ``memory.flip`` fault site fires here (after sealing, so
        flips are *resting* corruption the next verify must catch).
    kernel:
        The stencil kernel, required by an active ``sdc`` tier for the
        re-execution/heal replays; defaults to ``executor.kernel``.
    max_retries:
        Retries per round for rounds that raise; 0 disables catching.
    backoff / backoff_factor:
        First retry delay in seconds and its growth per retry.
    checkpoint / checkpoint_every:
        Optional :class:`CheckpointStore` and snapshot period in rounds.
    meta:
        Run identity stored in checkpoints; a resume refuses a snapshot
        whose metadata differs.
    report:
        A :class:`RunReport` accumulating degradations/retries/repairs.
    stop:
        Optional ``threading.Event``-like object (anything with
        ``is_set()``).  Checked at every round boundary; when set, the
        sweep writes a final checkpoint (if a store is configured) and
        raises :class:`SweepInterruptedError` carrying the consistent
        state — the cooperative-cancellation hook behind graceful
        SIGINT/SIGTERM in ``repro run`` and job preemption in the serve
        daemon.
    sleep:
        Injection point for the backoff clock (tests pass a no-op).
    """

    def __init__(
        self,
        executor,
        *,
        round_steps: int | None = None,
        health: str = "raise",
        max_retries: int = 0,
        backoff: float = 0.05,
        backoff_factor: float = 2.0,
        checkpoint: CheckpointStore | None = None,
        checkpoint_every: int = 1,
        meta: dict | None = None,
        report: RunReport | None = None,
        stop=None,
        sleep=time.sleep,
        sdc: str = "off",
        sdc_seed: int = 0,
        sdc_sample: int = 2,
        sdc_max_heals: int = 3,
        kernel=None,
    ) -> None:
        if health not in ("off", "raise", "warn", "repair", "sdc"):
            raise ValueError(f"unknown health policy {health!r}")
        if health == "sdc":
            # SDC guarding beside the NaN/Inf check: strictest NaN policy,
            # integrity at least at the spot tier
            health = "raise"
            if sdc == "off":
                sdc = "spot"
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        self.executor = executor
        self.round_steps = round_steps or getattr(executor, "dim_t", 1)
        self.health = health
        self.max_retries = max_retries
        self.backoff = backoff
        self.backoff_factor = backoff_factor
        self.checkpoint = checkpoint
        self.checkpoint_every = checkpoint_every
        self.meta = dict(meta or {})
        self.report = report if report is not None else RunReport()
        self.stop = stop
        self._sleep = sleep
        self.sdc_seed = sdc_seed
        self.kernel = kernel if kernel is not None else getattr(
            executor, "kernel", None
        )
        if sdc != "off" and self.kernel is None:
            raise ValueError(
                "an active sdc tier needs the stencil kernel for its "
                "re-execution replays; pass kernel= or use an executor "
                "with a .kernel attribute"
            )
        self.sdc = SdcGuard(
            self.kernel,
            tier=sdc,
            seed=sdc_seed,
            sample_bands=sdc_sample,
            max_heals=sdc_max_heals,
        ) if sdc != "off" else None
        if self.sdc is not None:
            self.report.sdc = self.sdc.report

    # ------------------------------------------------------------------
    def run(self, field, steps: int, traffic=None, resume: bool = False):
        """Advance ``field`` by ``steps`` under the configured guards."""
        if steps < 0:
            raise ValueError("steps must be >= 0")
        state, done = field, 0
        if resume:
            state, done = self._try_resume(field, steps)
        if steps == 0 or done >= steps:
            return state.copy()

        # last verified-good (state, step) pair, for repair-from-checkpoint;
        # refreshed at every checkpoint boundary (in memory even when no
        # on-disk store is configured).
        good_state, good_done = state.copy(), done
        repairs_left = max(1, self.max_retries) if self.health == "repair" else 0
        rounds_since_snapshot = 0
        retries_before = self.report.retries
        repairs_before = self.report.repairs
        round_index = 0
        with TRACE.span("guarded_run", steps=steps, health=self.health):
            while done < steps:
                if self.stop is not None and self.stop.is_set():
                    self._interrupt(state, done)
                if self.sdc is not None:
                    # resting corruption since the last seal (the window the
                    # memory.flip probe below opens) heals here, *before*
                    # this round consumes it
                    state = self.sdc.verify_seals(
                        state, done, good_state, good_done
                    )
                round_t = min(self.round_steps, steps - done)
                with TRACE.span("guard_round", done=done, round_t=round_t):
                    state = self._round_with_retry(state, round_t, traffic)
                done += round_t
                self.report.rounds += 1
                round_index += 1
                if FAULTS.should("grid.nan"):
                    state.data[:, state.nz // 2] = np.nan
                if self.health != "off" and not grid_is_finite(state.data):
                    state, done, rounds_since_snapshot, repairs_left = (
                        self._unhealthy(
                            state, done, good_state, good_done,
                            rounds_since_snapshot, repairs_left,
                        )
                    )
                    if self.sdc is not None:
                        self.sdc.invalidate()  # rollback voided the seals
                    continue
                if self.sdc is not None:
                    # compute-side SDC: re-execute bands from the trusted
                    # base through the naive rung, then seal the verified
                    # grid for the next round's resting-corruption check
                    state = self.sdc.check_round(
                        state, done, good_state, good_done, round_index - 1
                    )
                    self.sdc.seal(state)
                rounds_since_snapshot += 1
                if rounds_since_snapshot >= self.checkpoint_every and done < steps:
                    good_state, good_done = state.copy(), done
                    rounds_since_snapshot = 0
                    if self.checkpoint is not None:
                        self.checkpoint.save(state.data, done, self.meta)
                        self.report.checkpoints_written += 1
                        METRICS.inc("resilience.checkpoint_bytes",
                                    state.data.nbytes)
                if self.sdc is not None:
                    # the memory.flip probe: resting bit flips land *after*
                    # sealing and after the trusted base was refreshed, so
                    # they are in-window for the next verify_seals
                    inject_flips(
                        state.data, rank=0, round_index=round_index - 1,
                        seed=self.sdc_seed,
                    )
            if self.sdc is not None:
                # final verify: flips injected after the last round's seal
                # stay in-window
                state = self.sdc.verify_seals(
                    state, done, good_state, good_done
                )
        if METRICS.armed:
            METRICS.inc("resilience.retries",
                        self.report.retries - retries_before)
            METRICS.inc("resilience.repairs",
                        self.report.repairs - repairs_before)
            METRICS.set_gauge("resilience.degradations",
                              len(self.report.degradations))
        return state.copy()

    # ------------------------------------------------------------------
    def _interrupt(self, state, done: int) -> None:
        """Cooperative stop at a round boundary: final checkpoint, then raise."""
        checkpointed = False
        if self.checkpoint is not None:
            self.checkpoint.save(state.data, done, self.meta)
            self.report.checkpoints_written += 1
            checkpointed = True
        raise SweepInterruptedError(
            done, state=state.copy(), checkpointed=checkpointed
        )

    # ------------------------------------------------------------------
    def _try_resume(self, field, steps: int):
        """State/step to restart from, validated against this run's identity."""
        if self.checkpoint is None:
            return field, 0
        try:
            snap = self.checkpoint.load(
                expected_shape=field.data.shape,
                expected_dtype=field.data.dtype,
            )
        except CheckpointError as exc:
            # a versioned/geometry refusal is actionable but not fatal to a
            # guarded run: say why and start from scratch
            warnings.warn(HealthWarning(str(exc)), stacklevel=3)
            self.report.warnings.append(str(exc))
            return field, 0
        if snap is None:
            return field, 0
        if (
            snap.data.shape != field.data.shape
            or snap.data.dtype != field.data.dtype
            or snap.meta != self.meta
            or snap.step > steps
        ):
            warnings.warn(
                HealthWarning(
                    f"checkpoint {self.checkpoint.path} does not match this "
                    "run (shape/dtype/meta/steps); starting from scratch"
                ),
                stacklevel=3,
            )
            return field, 0
        resumed = field.like()
        np.copyto(resumed.data, snap.data)
        self.report.resumed_from = snap.step
        return resumed, snap.step

    def _round_with_retry(self, state, round_t: int, traffic):
        """One executor round, retried with exponential backoff."""
        if self.max_retries == 0:
            return self.executor.run(state, round_t, traffic)
        delay = self.backoff
        attempt = 0
        while True:
            # per-attempt traffic: merged only on success so retried rounds
            # are not double counted
            attempt_traffic = None
            if traffic is not None:
                attempt_traffic = type(traffic)()
            try:
                out = self.executor.run(state, round_t, attempt_traffic)
            except Exception as exc:
                attempt += 1
                if attempt > self.max_retries:
                    raise SweepRetriesExhaustedError(
                        f"round failed {attempt} time(s), retries exhausted: "
                        f"{type(exc).__name__}: {exc}"
                    ) from exc
                self.report.retries += 1
                self._sleep(delay)
                delay *= self.backoff_factor
                continue
            if traffic is not None:
                traffic.merge(attempt_traffic)
            return out

    def _unhealthy(
        self, state, done, good_state, good_done, rounds_since_snapshot,
        repairs_left,
    ):
        """Apply the health policy to a non-finite grid."""
        msg = f"non-finite values in the grid after step {done}"
        if self.health == "warn":
            warnings.warn(HealthWarning(msg), stacklevel=3)
            self.report.warnings.append(msg)
            return state, done, rounds_since_snapshot + 1, repairs_left
        if self.health == "repair" and repairs_left > 0:
            self.report.repairs += 1
            return good_state.copy(), good_done, 0, repairs_left - 1
        raise HealthCheckError(
            msg
            + (
                " (repair attempts exhausted)"
                if self.health == "repair"
                else ""
            )
        )
