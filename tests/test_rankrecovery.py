"""Tests for rank-failure tolerance: liveness, buddy store, recovery."""

import numpy as np
import pytest

from repro.core import run_naive
from repro.distributed import (
    DistributedJacobi,
    RankDeadError,
    SimComm,
    UnrecoverableRankFailureError,
    decompose_z,
)
from repro.obs import METRICS, TRACE
from repro.resilience import (
    FAULTS,
    BuddySnapshot,
    BuddyStore,
    buddy_of,
)
from repro.stencils import Field3D, SevenPointStencil


@pytest.fixture(autouse=True)
def _clean_state():
    yield
    FAULTS.disarm()
    TRACE.disarm()
    METRICS.disarm()


class TestLiveness:
    def test_all_alive_initially(self):
        comm = SimComm(3)
        assert comm.live_ranks() == [0, 1, 2]
        assert comm.dead == frozenset()
        assert all(comm.alive(r) for r in range(3))

    def test_kill_marks_dead(self):
        comm = SimComm(3)
        comm.kill(1)
        assert not comm.alive(1)
        assert comm.live_ranks() == [0, 2]
        assert comm.dead == frozenset({1})

    def test_send_from_dead_rank_raises(self):
        comm = SimComm(2)
        comm.kill(0)
        with pytest.raises(RankDeadError):
            comm.send(0, 1, 0, np.zeros(1))

    def test_recv_from_dead_rank_raises_not_hangs(self):
        comm = SimComm(2)
        comm.kill(0)
        with pytest.raises(RankDeadError) as exc:
            comm.recv(0, 1, 0)
        assert exc.value.rank == 0
        assert "halo exchange" in str(exc.value)

    def test_buffered_message_from_now_dead_rank_is_unreachable(self):
        # death invalidates in-flight mail: the round will be replayed
        comm = SimComm(2)
        comm.send(0, 1, 0, np.ones(3))
        comm.kill(0)
        with pytest.raises(RankDeadError):
            comm.recv(0, 1, 0)

    def test_purge_clears_mail(self):
        comm = SimComm(3)
        comm.send(0, 1, 0, np.ones(2))
        comm.send(1, 2, 0, np.ones(2))
        assert comm.purge() == 2
        assert comm.pending() == 0

    def test_heartbeat_kills_via_fault_site(self):
        comm = SimComm(3)
        with FAULTS.injected("rank.crash=1"):
            assert comm.heartbeat(0) is True
            assert comm.heartbeat(1) is False
            assert comm.heartbeat(2) is True
        assert comm.live_ranks() == [0, 2]

    def test_heartbeat_after_budget(self):
        # @after counts survived probes of that same rank
        comm = SimComm(2)
        with FAULTS.injected("rank.crash=1@2"):
            assert comm.heartbeat(1)
            assert comm.heartbeat(1)
            assert not comm.heartbeat(1)

    def test_delay_fault_counted_and_recovered(self):
        comm = SimComm(2, seed=0)
        payload = np.arange(4.0)
        with FAULTS.injected("comm.delay"):
            comm.send(0, 1, 0, payload)
            out = comm.recv(0, 1, 0)
        assert np.array_equal(out, payload)
        assert comm.stats[1].delayed == 1
        assert comm.stats[1].retries == 1


class TestBuddyStore:
    def _snap(self, owner, data=None):
        return BuddySnapshot(
            owner=owner, round_index=0, z0=0, z1=2,
            data=np.full((1, 2, 2, 2), float(owner)) if data is None else data,
        )

    def test_live_owner_serves_own_copy(self):
        store = BuddyStore()
        snap = self._snap(0)
        store.checkpoint(snap, holder=1)
        got = store.restore(0, alive=lambda r: True)
        assert got is snap

    def test_dead_owner_restored_from_replica(self):
        store = BuddyStore()
        snap = self._snap(0)
        store.checkpoint(snap, holder=1)
        got = store.restore(0, alive=lambda r: r != 0)
        assert got is not snap  # the replica, not the lost copy
        assert np.array_equal(got.data, snap.data)
        assert store.holder_of(0) == 1

    def test_replica_is_a_deep_copy(self):
        store = BuddyStore()
        snap = self._snap(0)
        store.checkpoint(snap, holder=1)
        snap.data[:] = -1.0  # owner's memory is lost/garbage after a crash
        got = store.restore(0, alive=lambda r: r != 0)
        assert (got.data == 0.0).all()

    def test_owner_and_buddy_both_dead_is_unrecoverable(self):
        store = BuddyStore()
        store.checkpoint(self._snap(0), holder=1)
        with pytest.raises(UnrecoverableRankFailureError, match="both died"):
            store.restore(0, alive=lambda r: r not in (0, 1))

    def test_no_replica_is_unrecoverable(self):
        store = BuddyStore()
        store.checkpoint(self._snap(0), holder=None)
        with pytest.raises(UnrecoverableRankFailureError, match="no buddy"):
            store.restore(0, alive=lambda r: False)

    def test_self_buddy_rejected(self):
        store = BuddyStore()
        with pytest.raises(ValueError):
            store.checkpoint(self._snap(0), holder=0)

    def test_byte_accounting(self):
        store = BuddyStore()
        snap = self._snap(0)
        store.checkpoint(snap, holder=1)
        store.checkpoint(self._snap(1), holder=None)
        assert store.snapshots == 2
        assert store.bytes_replicated == snap.data.nbytes  # replicas only

    def test_buddy_of_ring(self):
        assert buddy_of(0, [0, 1, 2]) == 1
        assert buddy_of(2, [0, 1, 2]) == 0  # cyclic wrap
        assert buddy_of(3, [1, 3]) == 1
        assert buddy_of(0, [0]) is None


class TestElasticDecompose:
    def test_explicit_rank_ids(self):
        slabs = decompose_z(24, 3, halo=2, ranks=[0, 2, 5])
        assert [s.rank for s in slabs] == [0, 2, 5]
        assert slabs[0].hi_neighbor == 2
        assert slabs[1].lo_neighbor == 0
        assert slabs[1].hi_neighbor == 5
        assert slabs[2].lo_neighbor == 2
        assert slabs[2].hi_neighbor is None

    def test_covers_axis_like_default(self):
        default = decompose_z(30, 4, halo=2)
        renamed = decompose_z(30, 4, halo=2, ranks=[9, 7, 3, 1])
        assert [(s.z0, s.z1) for s in default] == [
            (s.z0, s.z1) for s in renamed
        ]

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            decompose_z(24, 3, halo=2, ranks=[0, 1])

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ValueError):
            decompose_z(24, 3, halo=2, ranks=[0, 1, 1])


class TestRankRecovery:
    """The acceptance scenario: crash one of 4 ranks mid-run."""

    def _run(self, spec, *, ranks=4, steps=8, dim_t=2, recover=True, **kw):
        kernel = SevenPointStencil()
        field = Field3D.random((24, 24, 24), dtype=np.float32, seed=7)
        ref = run_naive(kernel, field, steps)
        runner = DistributedJacobi(kernel, ranks, dim_t=dim_t,
                                   recover=recover, **kw)
        with FAULTS.injected(*([spec] if spec else [])):
            out, comm = runner.run(field, steps)
        return out, ref, runner, comm

    def test_crash_mid_run_is_bit_exact(self):
        out, ref, runner, _ = self._run("rank.crash=2@2")
        assert np.array_equal(out.data, ref.data)
        rep = runner.recovery
        assert rep.recoveries == 1
        assert rep.replayed_rounds <= 1
        assert rep.failed_ranks == [(2, 2)]
        assert rep.final_ranks == 3 and rep.initial_ranks == 4
        assert rep.degraded

    @pytest.mark.parametrize("victim", [0, 1, 3])
    def test_any_single_victim_recovers(self, victim):
        out, ref, runner, _ = self._run(f"rank.crash={victim}@1")
        assert np.array_equal(out.data, ref.data)
        assert runner.recovery.recoveries == 1

    def test_crash_at_round_zero(self):
        out, ref, runner, _ = self._run("rank.crash=1")
        assert np.array_equal(out.data, ref.data)
        assert runner.recovery.failed_ranks == [(0, 1)]

    def test_two_sequential_crashes_recover(self):
        # different rounds -> each is a survivable single failure
        kernel = SevenPointStencil()
        field = Field3D.random((24, 24, 24), dtype=np.float32, seed=3)
        ref = run_naive(kernel, field, 8)
        runner = DistributedJacobi(kernel, 4, dim_t=2)
        with FAULTS.injected("rank.crash=3@1", "rank.crash=0@2"):
            out, _ = runner.run(field, 8)
        assert np.array_equal(out.data, ref.data)
        assert runner.recovery.recoveries == 2
        assert runner.recovery.final_ranks == 2

    def test_failure_free_run_reports_clean(self):
        out, ref, runner, comm = self._run(None)
        assert np.array_equal(out.data, ref.data)
        rep = runner.recovery
        assert not rep.degraded
        assert rep.lines() == []
        assert rep.buddy_snapshots > 0  # checkpoints still taken

    def test_recover_false_propagates_rank_death(self):
        with pytest.raises(RankDeadError):
            self._run("rank.crash=2@1", recover=False)

    def test_comm_accounting_excludes_buddy_traffic(self):
        # buddy replication is full slabs every round — far more volume
        # than the halo planes; none of it may leak into the comm stats
        kernel = SevenPointStencil()
        field = Field3D.random((24, 24, 24), dtype=np.float32, seed=7)
        runner = DistributedJacobi(kernel, 4, dim_t=2)
        with FAULTS.injected("rank.crash=2@2"):
            out, comm = runner.run(field, 8)
        total = comm.total_stats()
        assert runner.recovery.buddy_bytes > total.bytes_sent
        # halo volume stays bounded by one aborted round's extra sends
        assert total.bytes_sent <= runner.expected_bytes(field, 8 + 2)

    def test_crash_with_lossy_transport(self):
        out, ref, runner, comm = self._run(
            "rank.crash=1@1", loss=0.1, comm_seed=5, max_retries=64,
        )
        assert np.array_equal(out.data, ref.data)
        assert runner.recovery.recoveries == 1

    def test_naive_scheme_recovers_too(self):
        out, ref, runner, _ = self._run("rank.crash=1@1", scheme="naive")
        assert np.array_equal(out.data, ref.data)
        assert runner.recovery.recoveries == 1

    def test_all_ranks_dead_is_unrecoverable(self):
        with pytest.raises(UnrecoverableRankFailureError):
            self._run("rank.crash:*")  # every heartbeat fails

    def test_recovery_down_to_single_rank(self):
        # losing 1 of 2 ranks degenerates to a serial run — still bit-exact
        kernel = SevenPointStencil()
        field = Field3D.random((16, 12, 12), dtype=np.float32, seed=0)
        ref = run_naive(kernel, field, 8)
        runner = DistributedJacobi(kernel, 2, dim_t=2)
        with FAULTS.injected("rank.crash=1@1"):
            out, comm = runner.run(field, 8)
        assert np.array_equal(out.data, ref.data)
        assert runner.recovery.final_ranks == 1
        assert comm.pending() == 0


class TestRecoveryObservability:
    def test_recovery_span_and_counters(self):
        kernel = SevenPointStencil()
        field = Field3D.random((24, 24, 24), dtype=np.float32, seed=7)
        runner = DistributedJacobi(kernel, 4, dim_t=2)
        TRACE.arm()
        METRICS.arm()
        with FAULTS.injected("rank.crash=2@2"):
            out, comm = runner.run(field, 8)
        spans = [e for e in TRACE.events() if e.name == "rank_recovery"]
        assert len(spans) == 1
        assert spans[0].attrs["dead"] == "2"
        assert spans[0].attrs["survivors"] == 3
        counters = METRICS.to_dict()["counters"]
        assert counters["resilience.recoveries"] == 1
        assert counters["resilience.replayed_rounds"] == 1
        assert counters["resilience.rank_failures"] == 1
        assert counters["resilience.buddy_bytes"] > 0

    def test_no_counters_when_clean(self):
        kernel = SevenPointStencil()
        field = Field3D.random((16, 12, 12), dtype=np.float32, seed=0)
        runner = DistributedJacobi(kernel, 2, dim_t=2)
        METRICS.arm()
        runner.run(field, 4)
        counters = METRICS.to_dict()["counters"]
        assert counters.get("resilience.recoveries", 0) == 0
