"""Functional GPU 3.5D execution with SIMT-level accounting.

Runs a :class:`~repro.gpu.plan.Gpu35DPlan` through the generic 3.5D schedule
(so the numerics are bit-identical to the CPU path and the naive reference)
while accounting for the GPU-specific costs the paper discusses:

* global-memory transactions, from the coalescing model (dim_X = 32 keeps
  every row load fully coalesced);
* shared-memory traffic of the neighbor exchange (one store + one barrier
  per thread per time instance, ~5 in-plane loads per update for a 7-point
  stencil);
* the divergence overhead of suppressing ghost-layer writes at
  ``t' = dim_T`` (Section VI-A: threads in the ghost region "should not
  write out their results, which requires ... branch divergence").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.blocking35d import Blocking35D
from ..core.traffic import TrafficStats
from ..stencils.base import PlaneKernel
from ..stencils.grid import Field3D
from .coalescing import coalescing_efficiency
from .plan import Gpu35DPlan
from .simt import GTX285_SM, SMConfig

__all__ = ["GpuRunReport", "GpuExecutor35D"]


@dataclass
class GpuRunReport:
    """Result and execution accounting of one GPU 3.5D run."""

    result: Field3D
    traffic: TrafficStats
    global_transactions: int
    coalescing_efficiency: float
    shared_stores: int
    shared_loads: int
    syncthreads: int
    divergent_warps: int

    @property
    def global_bytes(self) -> int:
        return self.traffic.total_bytes


class GpuExecutor35D:
    """Execute a plan on a field; numerics identical to the CPU executors."""

    def __init__(
        self,
        kernel: PlaneKernel,
        plan: Gpu35DPlan,
        sm: SMConfig = GTX285_SM,
        inplane_loads_per_update: int = 5,
    ) -> None:
        if not plan.feasible and plan.dim_t > 1:
            raise ValueError(f"plan is infeasible: {plan.reason}")
        self.kernel = kernel
        self.plan = plan
        self.sm = sm
        self.inplane_loads_per_update = inplane_loads_per_update

    def run(self, field: Field3D, steps: int) -> GpuRunReport:
        plan = self.plan
        traffic = TrafficStats()
        dim_t = max(1, plan.dim_t)
        ex = Blocking35D(
            self.kernel,
            dim_t=dim_t,
            tile_y=max(plan.dim_y, 2 * dim_t + 1),
            tile_x=max(plan.dim_x, 2 * dim_t + 1),
        )
        result = ex.run(field, steps, traffic)

        seg = self.sm.warp_size * field.itemsize  # fully-coalesced warp access
        eff = coalescing_efficiency(
            base=0,
            n_lanes=self.sm.warp_size,
            elem_size=field.itemsize,
            stride=1,
            segment=max(seg, 128),
        )
        segment = max(seg, 128)
        global_transactions = -(-traffic.total_bytes // segment)

        # shared-memory exchange: every computed update stores its value once
        # and reads its in-plane neighbors from shared memory
        shared_stores = traffic.updates
        shared_loads = traffic.updates * self.inplane_loads_per_update
        # one barrier per (plane, instance) pair per tile
        nz = field.nz
        tiles = traffic.notes.get("tiles_per_round", 1)
        rounds = -(-steps // dim_t)
        syncthreads = rounds * tiles * (nz - 2 * self.kernel.radius) * dim_t

        # warps whose lanes straddle the ghost/core boundary at the store step
        ghost = 2 * self.kernel.radius * dim_t
        core = max(plan.dim_x - ghost, 1)
        warps_per_row = -(-plan.dim_x // self.sm.warp_size) if plan.dim_x else 1
        divergent = 0
        if ghost and plan.dim_x:
            # a row's core occupies a sub-range of its warps: the edge warps
            # diverge (some lanes write, some do not)
            divergent = min(2, warps_per_row) * max(plan.dim_y - ghost, 1)
            divergent *= rounds * tiles * (nz - 2 * self.kernel.radius)
        _ = core

        return GpuRunReport(
            result=result,
            traffic=traffic,
            global_transactions=int(global_transactions),
            coalescing_efficiency=eff,
            shared_stores=int(shared_stores),
            shared_loads=int(shared_loads),
            syncthreads=int(syncthreads),
            divergent_warps=int(divergent),
        )
