"""External-memory traffic and operation accounting.

Every blocking executor in :mod:`repro.core` threads a :class:`TrafficStats`
through its inner loops.  The counters model the quantities the paper reasons
about in Sections IV and V:

* ``bytes_read`` / ``bytes_written`` — traffic between external memory and the
  on-chip blocking buffers.  Ghost-layer cells are counted every time they are
  (re)loaded, so the measured overestimation factor :math:`\\kappa` can be
  compared against the closed forms in :mod:`repro.core.overestimation`.
* ``updates`` — grid-point updates actually executed, including the redundant
  recomputation of ghost cells that temporal blocking introduces.
* ``ops`` — total operations, using the per-kernel op counts of Section IV
  (16 ops for the 7-point stencil, 58 for the 27-point, 259 for D3Q19 LBM).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class TrafficStats:
    """Accumulated external-memory traffic and executed work.

    The executor is responsible for calling :meth:`read`, :meth:`write` and
    :meth:`update` at the points where a real implementation would touch
    external memory or retire stencil updates.
    """

    bytes_read: int = 0
    bytes_written: int = 0
    updates: int = 0
    ops: int = 0
    plane_loads: int = 0
    plane_stores: int = 0
    #: optional free-form notes recorded by executors (e.g. chosen tiling)
    notes: dict = field(default_factory=dict)

    def read(self, nbytes: int, *, planes: int = 0) -> None:
        """Record ``nbytes`` read from external memory."""
        self.bytes_read += int(nbytes)
        self.plane_loads += planes

    def write(self, nbytes: int, *, planes: int = 0) -> None:
        """Record ``nbytes`` written to external memory."""
        self.bytes_written += int(nbytes)
        self.plane_stores += planes

    def update(self, npoints: int, ops_per_update: int) -> None:
        """Record ``npoints`` grid-point updates of ``ops_per_update`` ops each."""
        self.updates += int(npoints)
        self.ops += int(npoints) * int(ops_per_update)

    @property
    def total_bytes(self) -> int:
        """Total external traffic in bytes (read + write)."""
        return self.bytes_read + self.bytes_written

    def bytes_per_update(self) -> float:
        """Average external bytes moved per executed grid-point update."""
        if self.updates == 0:
            return 0.0
        return self.total_bytes / self.updates

    def kappa_measured(self, ideal_bytes: int) -> float:
        """Measured overestimation: actual traffic over the compulsory traffic.

        ``ideal_bytes`` is the compulsory traffic — each interior element read
        once and written once per round of blocked time steps.
        """
        if ideal_bytes <= 0:
            raise ValueError("ideal_bytes must be positive")
        return self.total_bytes / ideal_bytes

    def merge(self, other: "TrafficStats") -> None:
        """Fold another counter (e.g. from a worker thread) into this one."""
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written
        self.updates += other.updates
        self.ops += other.ops
        self.plane_loads += other.plane_loads
        self.plane_stores += other.plane_stores

    def __add__(self, other: "TrafficStats") -> "TrafficStats":
        out = TrafficStats()
        out.merge(self)
        out.merge(other)
        return out
