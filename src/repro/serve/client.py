"""Client side of the serve protocol: one request, one reply, no hangs.

:class:`ServeClient` opens a fresh unix-socket connection per request —
the protocol is a single line each way, so connection reuse buys nothing
and per-request connections mean a daemon restart is invisible to the
client.  Every failure mode maps to a typed :class:`ServeUnavailable`
(daemon not running, socket gone, connection dropped mid-reply) so
callers and the CLI can distinguish "the daemon said no" (an ``ok: false``
reply with a reason) from "the daemon is gone".
"""

from __future__ import annotations

import socket
from pathlib import Path

from .protocol import read_message, write_message

__all__ = ["ServeClient", "ServeUnavailable"]


class ServeUnavailable(RuntimeError):
    """The daemon could not be reached or dropped the connection."""


class ServeClient:
    """Thin synchronous client for the serve daemon's unix socket."""

    def __init__(self, socket_path: str, timeout: float = 30.0):
        self.socket_path = Path(socket_path)
        self.timeout = timeout

    def request(self, op: str, **fields) -> dict:
        """Send one ``{"op": ...}`` request and return the reply object."""
        try:
            conn = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            conn.settimeout(self.timeout)
            conn.connect(str(self.socket_path))
        except OSError as exc:
            raise ServeUnavailable(
                f"cannot reach serve daemon at {self.socket_path}: {exc} "
                "(is `repro serve` running?)"
            ) from exc
        try:
            fh = conn.makefile("rwb")
            write_message(fh, {"op": op, **fields})
            try:
                reply = read_message(fh)
            except ValueError as exc:
                raise ServeUnavailable(
                    f"malformed reply from serve daemon: {exc}"
                ) from exc
            if reply is None:
                # the daemon accepted the connection but closed it before
                # replying — e.g. killed mid-request, or an injected
                # accept-drop tore the connection down; safe to retry
                raise ServeUnavailable(
                    "serve daemon closed the connection without replying; "
                    "the request may not have been accepted — retry it"
                )
            return reply
        except socket.timeout as exc:
            raise ServeUnavailable(
                f"serve daemon did not reply within {self.timeout:g}s"
            ) from exc
        finally:
            try:
                conn.close()
            except OSError:
                pass

    # -- convenience wrappers -----------------------------------------
    def ping(self) -> dict:
        return self.request("ping")

    def submit(self, job: dict) -> dict:
        return self.request("submit", job=job)

    def status(self, job_id: str) -> dict:
        return self.request("status", id=job_id)

    def spans(self, job_id: str) -> list[dict]:
        """The daemon-side spans of a traced job (empty when untraced)."""
        reply = self.request("status", id=job_id, spans=True)
        return reply.get("spans") or [] if reply.get("ok") else []

    def jobs(self) -> dict:
        return self.request("jobs")

    def stats(self, prom: bool = False) -> dict:
        return self.request("stats", prom=prom) if prom else self.request("stats")

    def cancel(self, job_id: str) -> dict:
        return self.request("cancel", id=job_id)

    def drain(self, timeout: float = 60.0) -> dict:
        return self.request("drain", timeout=timeout)

    def wait(self, job_id: str, timeout: float = 120.0,
             poll_s: float = 0.05) -> dict:
        """Poll until the job reaches a terminal status; returns the record."""
        import time as _time

        deadline = _time.monotonic() + timeout
        while True:
            reply = self.status(job_id)
            if not reply.get("ok"):
                return reply
            job = reply["job"]
            if job.get("code") is not None:
                return reply
            if _time.monotonic() > deadline:
                raise ServeUnavailable(
                    f"job {job_id} still {job.get('status')!r} after "
                    f"{timeout:g}s"
                )
            _time.sleep(poll_s)
