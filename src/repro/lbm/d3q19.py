"""The D3Q19 lattice: velocity set, quadrature weights, opposite directions.

D3Q19 (paper Section IV-B, Figure 1b) discretizes velocity space into 19
directions: the rest vector, 6 face neighbors and 12 edge neighbors of the
unit cube.  Its radius of extent is 1 in the L-infinity norm (the paper's
definition of R for LBM), so the blocking machinery treats LBM exactly like
a radius-1 box stencil with 19 values per grid point.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "VELOCITIES",
    "WEIGHTS",
    "OPPOSITE",
    "N_DIRECTIONS",
    "CS2",
    "direction_index",
]

#: number of discrete velocities
N_DIRECTIONS = 19

#: lattice speed of sound squared (c_s^2 = 1/3 in lattice units)
CS2 = 1.0 / 3.0


def _build_velocities() -> np.ndarray:
    vels = [(0, 0, 0)]
    # 6 face neighbors
    for axis in range(3):
        for sign in (-1, 1):
            v = [0, 0, 0]
            v[axis] = sign
            vels.append(tuple(v))
    # 12 edge neighbors (two non-zero components)
    for a in range(3):
        for b in range(a + 1, 3):
            for sa in (-1, 1):
                for sb in (-1, 1):
                    v = [0, 0, 0]
                    v[a], v[b] = sa, sb
                    vels.append(tuple(v))
    return np.array(vels, dtype=np.int64)


#: (19, 3) integer array of lattice velocities, ordered (dz, dy, dx)
VELOCITIES = _build_velocities()

#: quadrature weights: 1/3 rest, 1/18 face, 1/36 edge
WEIGHTS = np.array(
    [1.0 / 3.0]
    + [1.0 / 18.0] * 6
    + [1.0 / 36.0] * 12
)


def _build_opposite() -> np.ndarray:
    opp = np.empty(N_DIRECTIONS, dtype=np.int64)
    for i, v in enumerate(VELOCITIES):
        (j,) = np.nonzero((VELOCITIES == -v).all(axis=1))[0]
        opp[i] = j
    return opp


#: OPPOSITE[i] is the direction with velocity -c_i (used by bounce-back)
OPPOSITE = _build_opposite()


def direction_index(dz: int, dy: int, dx: int) -> int:
    """Index of the direction with velocity (dz, dy, dx)."""
    matches = np.nonzero((VELOCITIES == (dz, dy, dx)).all(axis=1))[0]
    if len(matches) != 1:
        raise ValueError(f"({dz}, {dy}, {dx}) is not a D3Q19 velocity")
    return int(matches[0])
