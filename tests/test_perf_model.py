"""Tests: the performance model reproduces the paper's reported numbers.

Each test quotes the paper number it checks.  Tolerances are ~10-15% — the
model is built from independently sourced constants (Table I rates, stated
scaling factors, κ formulas), so landing on the headline numbers is the
consistency check the reproduction rests on.
"""

import pytest

from repro.perf import (
    LBM_D3Q19,
    SEVEN_POINT,
    TWENTY_SEVEN_POINT,
    breakdown_7pt_gpu,
    breakdown_lbm_cpu,
    predict_7pt_cpu,
    predict_7pt_gpu,
    predict_lbm_cpu,
    predict_lbm_gpu,
    section_viid_comparisons,
)


class TestKernelGammas:
    """Section IV's bytes/op table."""

    def test_7pt(self):
        assert SEVEN_POINT.gamma_blocked("sp") == pytest.approx(0.5)
        assert SEVEN_POINT.gamma_blocked("dp") == pytest.approx(1.0)

    def test_27pt(self):
        assert TWENTY_SEVEN_POINT.gamma_blocked("sp") == pytest.approx(0.14, abs=0.005)
        assert TWENTY_SEVEN_POINT.gamma_blocked("dp") == pytest.approx(0.28, abs=0.01)

    def test_lbm(self):
        assert LBM_D3Q19.gamma("sp") == pytest.approx(0.88, abs=0.01)
        assert LBM_D3Q19.gamma("dp") == pytest.approx(1.75, abs=0.02)

    def test_lbm_bytes(self):
        # "about 228 bytes in SP (and 456 bytes in DP)"
        assert LBM_D3Q19.bytes_unblocked("sp", False) == pytest.approx(228)
        assert LBM_D3Q19.bytes_unblocked("dp", False) == pytest.approx(456)

    def test_op_counts(self):
        assert SEVEN_POINT.ops_per_update == 16
        assert TWENTY_SEVEN_POINT.ops_per_update == 58
        assert LBM_D3Q19.ops_per_update == 259


class TestFig4b7ptCpu:
    def test_sp_35d_3900(self):
        e = predict_7pt_cpu("35d", "sp", 256)
        assert e.mupdates_per_s == pytest.approx(3900, rel=0.1)
        assert not e.bandwidth_bound

    def test_dp_35d_1995(self):
        e = predict_7pt_cpu("35d", "dp", 256)
        assert e.mupdates_per_s == pytest.approx(1995, rel=0.1)

    def test_dp_half_of_sp(self):
        sp = predict_7pt_cpu("35d", "sp", 256).mupdates_per_s
        dp = predict_7pt_cpu("35d", "dp", 256).mupdates_per_s
        assert dp == pytest.approx(sp / 2, rel=0.1)

    def test_naive_bandwidth_bound_21gbs(self):
        # "achieving about 21 GB/s, close to maximum achievable bandwidth"
        e = predict_7pt_cpu("none", "sp", 256)
        assert e.bandwidth_bound
        gbps = e.mupdates_per_s * 1e6 * e.bytes_per_update / 1e9
        assert gbps == pytest.approx(22, rel=0.1)

    def test_small_grid_blocking_not_helpful(self):
        # "On the small example ... blocking does not improve performance.
        # In fact, there are ... slight slowdowns."
        naive = predict_7pt_cpu("none", "sp", 64).mupdates_per_s
        blocked = predict_7pt_cpu("35d", "sp", 64).mupdates_per_s
        assert blocked < naive

    def test_spatial_vs_naive_same_on_large(self):
        # "spatial blocking in itself did not obtain much benefit"
        naive = predict_7pt_cpu("none", "sp", 512).mupdates_per_s
        spatial = predict_7pt_cpu("spatial", "sp", 512).mupdates_per_s
        assert spatial == pytest.approx(naive, rel=0.05)

    def test_speedup_1_5x(self):
        ratio = (
            predict_7pt_cpu("35d", "sp", 256).mupdates_per_s
            / predict_7pt_cpu("none", "sp", 256).mupdates_per_s
        )
        assert ratio == pytest.approx(1.5, abs=0.15)


class TestFig4aLbmCpu:
    def test_sp_naive_87(self):
        e = predict_lbm_cpu("none", "sp", 256)
        assert e.bandwidth_bound
        assert e.mupdates_per_s == pytest.approx(87, rel=0.12)

    def test_sp_35d_171_180(self):
        e = predict_lbm_cpu("35d", "sp", 256)
        assert not e.bandwidth_bound
        assert 160 <= e.mupdates_per_s <= 195

    def test_dp_35d_80(self):
        e = predict_lbm_cpu("35d", "dp", 256)
        assert e.mupdates_per_s == pytest.approx(80, rel=0.1)

    def test_temporal_only_helps_small_grids_only(self):
        helped = predict_lbm_cpu("temporal", "sp", 64).mupdates_per_s
        naive64 = predict_lbm_cpu("none", "sp", 64).mupdates_per_s
        assert helped > 1.5 * naive64
        big = predict_lbm_cpu("temporal", "sp", 256)
        assert big.mupdates_per_s == pytest.approx(
            predict_lbm_cpu("none", "sp", 256).mupdates_per_s
        )
        assert "no benefit" in big.note

    def test_speedup_2_1x(self):
        ratio = (
            predict_lbm_cpu("35d", "sp", 256).mupdates_per_s
            / predict_lbm_cpu("none", "sp", 256).mupdates_per_s
        )
        assert ratio == pytest.approx(2.1, abs=0.3)

    def test_4d_only_marginal(self):
        # "the performance only improves by 8%"
        ratio = (
            predict_lbm_cpu("4d", "sp", 256, ilp=False).mupdates_per_s
            / predict_lbm_cpu("none", "sp", 256, ilp=False).mupdates_per_s
        )
        assert 0.95 < ratio < 1.25

    def test_dp_half_of_sp(self):
        sp = predict_lbm_cpu("35d", "sp", 256).mupdates_per_s
        dp = predict_lbm_cpu("35d", "dp", 256).mupdates_per_s
        assert dp == pytest.approx(sp / 2, rel=0.15)


class TestFig4c7ptGpu:
    def test_sp_series(self):
        assert predict_7pt_gpu("none", "sp").mupdates_per_s == pytest.approx(3300, rel=0.1)
        assert predict_7pt_gpu("spatial", "sp").mupdates_per_s == pytest.approx(9234, rel=0.1)
        assert predict_7pt_gpu("35d", "sp").mupdates_per_s == pytest.approx(17100, rel=0.1)

    def test_spatial_gain_2_8x(self):
        ratio = (
            predict_7pt_gpu("spatial", "sp").mupdates_per_s
            / predict_7pt_gpu("none", "sp").mupdates_per_s
        )
        assert ratio == pytest.approx(2.8, abs=0.3)

    def test_35d_gain_1_8x_over_spatial(self):
        ratio = (
            predict_7pt_gpu("35d", "sp").mupdates_per_s
            / predict_7pt_gpu("spatial", "sp").mupdates_per_s
        )
        assert ratio == pytest.approx(1.9, abs=0.2)

    def test_dp_4600_compute_bound(self):
        e = predict_7pt_gpu("spatial", "dp")
        assert not e.bandwidth_bound
        assert e.mupdates_per_s == pytest.approx(4600, rel=0.05)

    def test_dp_temporal_blocking_changes_nothing(self):
        assert predict_7pt_gpu("35d", "dp").mupdates_per_s == pytest.approx(
            predict_7pt_gpu("spatial", "dp").mupdates_per_s
        )


class TestLbmGpu:
    def test_sp_485(self):
        e = predict_lbm_gpu("none", "sp")
        assert e.bandwidth_bound
        assert e.mupdates_per_s == pytest.approx(485, rel=0.05)

    def test_sp_blocking_infeasible(self):
        e = predict_lbm_gpu("35d", "sp")
        assert "infeasible" in e.note
        assert e.mupdates_per_s == pytest.approx(
            predict_lbm_gpu("none", "sp").mupdates_per_s
        )

    def test_dp_39_gops(self):
        e = predict_lbm_gpu("none", "dp")
        gops = e.mupdates_per_s * 1e6 * 259 / 1e9
        assert gops == pytest.approx(39, rel=0.05)
        assert not e.bandwidth_bound


class TestBreakdowns:
    def test_fig5a_all_stages_within_tolerance(self):
        for stage in breakdown_lbm_cpu():
            assert stage.ratio == pytest.approx(1.0, abs=0.15), stage.name

    def test_fig5a_monotone_story(self):
        vals = [s.modeled_mups for s in breakdown_lbm_cpu()]
        # SSE > scalar; spatial flat; 3.5D big jump; ILP on top
        assert vals[1] > vals[0]
        assert vals[2] == pytest.approx(vals[1])
        assert vals[4] > 1.5 * vals[2]
        assert vals[5] > vals[4]

    def test_fig5b_all_stages_within_tolerance(self):
        for stage in breakdown_7pt_gpu():
            assert stage.ratio == pytest.approx(1.0, abs=0.15), stage.name

    def test_fig5b_4d_barely_beats_spatial(self):
        vals = {s.name: s.modeled_mups for s in breakdown_7pt_gpu()}
        assert vals["4D blocking"] < 1.15 * vals["spatial blocking"]
        assert vals["3.5D blocking"] > 1.3 * vals["4D blocking"]


class TestComparisons:
    def test_all_speedups_near_paper(self):
        for row in section_viid_comparisons():
            assert row.modeled_speedup == pytest.approx(
                row.paper_speedup, rel=0.15
            ), row.label

    def test_headline_claims(self):
        rows = {r.label: r for r in section_viid_comparisons()}
        assert rows["LBM DP CPU vs Habich [13]"].modeled_speedup > 2.0
        assert rows["7pt SP GPU vs spatially blocked prior"].modeled_speedup > 1.7
        # the one place the paper loses: DP GPU vs Datta
        assert rows["7pt DP GPU vs Datta [11]"].modeled_speedup < 1.0
