#!/usr/bin/env python
"""Distributed benchmark: message-reduction ablation + comm/compute overlap.

Two sections, both extensions of the paper's Section II lineage (the
single-node paper positions itself against Wittmann/Hager/Wellein's
distributed temporal blocking):

1. **Message reduction** — one halo exchange per ``dim_T`` steps cuts the
   message count (the latency term of the alpha-beta cost) by ``dim_T``
   at constant byte volume.
2. **Overlap** — the overlapped schedule (post -> interior -> wait ->
   boundary) against exchange-then-compute on the same run, under a
   nonzero simulated per-message latency.  Reported: exposed/hidden comm
   nanoseconds, the overlap fraction, and rounds/sec.  Both paths are
   cross-checked bit-exactly against each other and the fault-free naive
   oracle before anything is timed.

The acceptance bar for this layer: the overlapped schedule hides more
than **50%** of the simulated transfer time (overlap fraction > 0.5) on a
4-rank 128^3 7-point run (run without ``--quick``).

Results are also written as machine-readable JSON (``--json``, default
``BENCH_distributed.json`` next to this script) for CI artifact upload.

Usage::

    PYTHONPATH=src python benchmarks/bench_distributed.py          # full (128^3)
    PYTHONPATH=src python benchmarks/bench_distributed.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.core import run_naive
from repro.distributed import DistributedJacobi, transfer_time
from repro.perf import format_table
from repro.stencils import Field3D, SevenPointStencil


def _message_reduction(kernel, grid: int, ranks: int, steps: int) -> dict:
    """dim_T sweep: messages shrink by dim_T, bytes stay constant."""
    field = Field3D.random((grid, max(24, grid // 2), max(24, grid // 2)),
                           dtype=np.float32, seed=0)
    ref = run_naive(kernel, field, steps)
    rows = []
    for dim_t in (1, 2, 3, 4):
        dj = DistributedJacobi(kernel, ranks, dim_t=dim_t)
        out, comm = dj.run(field, steps)
        assert np.array_equal(out.data, ref.data), f"dim_T={dim_t} mismatch"
        total = comm.total_stats()
        rows.append((dim_t, total.messages_sent, total.bytes_sent,
                     transfer_time(total.messages_sent, total.bytes_sent) * 1e6))
    print(f"\n== message reduction  {ranks} ranks  {steps} steps  "
          f"{field.nz}x{field.ny}x{field.nx} SP ==")
    print(format_table(
        ["dim_T", "messages", "bytes", "alpha-beta cost (us)"],
        [(d, m, b, f"{t:.1f}") for d, m, b, t in rows],
    ))
    msgs = {d: m for d, m, _, _ in rows}
    assert msgs[1] == 2 * msgs[2] == 3 * msgs[3]
    assert len({b for _, _, b, _ in rows}) == 1  # volume dim_T-independent
    times = [t for *_, t in rows]
    assert times == sorted(times, reverse=True)  # latency term shrinks
    return {
        "rows": [
            {"dim_t": d, "messages": m, "bytes": b, "alpha_beta_us": t}
            for d, m, b, t in rows
        ],
        "messages_dt1": msgs[1],
        "messages_dt4": msgs[4],
    }


def _overlap_run(kernel, field, steps: int, dim_t: int, ranks: int,
                 overlap: bool, latency_s: float, bandwidth: float,
                 repeats: int) -> dict:
    """Best-of-``repeats`` timed run of one schedule; returns its record."""
    dj = DistributedJacobi(kernel, ranks, dim_t=dim_t, overlap=overlap,
                           latency_s=latency_s, bandwidth_bytes_s=bandwidth)
    best, out, comm = float("inf"), None, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out, comm = dj.run(field, steps)
        best = min(best, time.perf_counter() - t0)
    total = comm.total_stats()
    rounds = -(-steps // dim_t)
    frac = total.overlap_fraction()
    return {
        "overlap": overlap,
        "wall_s": best,
        "rounds_per_s": rounds / best,
        "messages": total.messages_sent,
        "bytes": total.bytes_sent,
        "posted": total.posted,
        "completed": total.completed,
        "overlapped_ns": total.overlapped_ns,
        "exposed_ns": total.exposed_ns,
        "overlap_fraction": frac,
        "_out": out,
    }


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small grid / fewer repeats (CI smoke mode)")
    ap.add_argument("--grid", type=int, default=None,
                    help="override the grid side (default 128; 32 quick)")
    ap.add_argument("--steps", type=int, default=8)
    ap.add_argument("--dim-t", type=int, default=2)
    ap.add_argument("--ranks", type=int, default=4)
    ap.add_argument("--latency", type=float, default=5e-4, metavar="SECONDS",
                    help="simulated per-message latency (default 500us)")
    ap.add_argument("--bandwidth", type=float, default=10e9,
                    metavar="BYTES_PER_S",
                    help="simulated transport bandwidth (default 10 GB/s)")
    ap.add_argument("--repeats", type=int, default=None)
    ap.add_argument("--json", default=None, metavar="PATH",
                    help="machine-readable output path "
                    "(default BENCH_distributed.json next to this script)")
    args = ap.parse_args(argv)

    grid = args.grid or (32 if args.quick else 128)
    repeats = args.repeats or (1 if args.quick else 3)
    kernel = SevenPointStencil()

    reduction = _message_reduction(kernel, min(grid, 48), args.ranks,
                                   3 * args.ranks)

    field = Field3D.random((grid, grid, grid), dtype=np.float32, seed=17)
    ref = run_naive(kernel, field, args.steps)

    print(f"\n== overlap  grid={grid}^3  steps={args.steps}  "
          f"dim_T={args.dim_t}  ranks={args.ranks}  "
          f"latency={args.latency * 1e6:.0f}us  "
          f"bandwidth={args.bandwidth / 1e9:.0f}GB/s ==")
    runs = {}
    for overlap in (False, True):
        runs[overlap] = _overlap_run(
            kernel, field, args.steps, args.dim_t, args.ranks,
            overlap, args.latency, args.bandwidth, repeats,
        )
    for overlap, rec in runs.items():
        if not np.array_equal(rec.pop("_out").data, ref.data):
            print(f"overlap={overlap}: BIT-EXACTNESS FAILURE vs naive oracle")
            raise SystemExit(1)
    print("both schedules bit-identical to each other and the naive oracle")

    print(f"{'schedule':<22} {'wall s':>8} {'rounds/s':>9} "
          f"{'exposed ms':>11} {'hidden ms':>10} {'hidden %':>9}")
    for overlap, rec in runs.items():
        name = "post/interior/wait" if overlap else "exchange-then-compute"
        frac = rec["overlap_fraction"]
        print(f"{name:<22} {rec['wall_s']:>8.3f} {rec['rounds_per_s']:>9.2f} "
              f"{rec['exposed_ns'] / 1e6:>11.2f} "
              f"{rec['overlapped_ns'] / 1e6:>10.2f} "
              f"{(frac if frac is not None else 0):>8.1%}")

    rc = 0
    bar = 0.5
    frac = runs[True]["overlap_fraction"]
    if args.quick:
        verdict = "n/a (quick)"
    elif frac is not None and frac > bar:
        verdict = "PASS"
    else:
        verdict = "FAIL"
        rc = 1
    print(f"\noverlap fraction: {frac:.1%} hidden "
          f"(acceptance > {bar:.0%} at 128^3, 4 ranks: {verdict})")

    json_path = args.json or os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "BENCH_distributed.json"
    )
    with open(json_path, "w", encoding="utf-8") as fh:
        json.dump(
            {
                "benchmark": "distributed",
                "grid": grid,
                "steps": args.steps,
                "dim_t": args.dim_t,
                "ranks": args.ranks,
                "latency_s": args.latency,
                "bandwidth_bytes_s": args.bandwidth,
                "quick": args.quick,
                "repeats": repeats,
                "message_reduction": reduction,
                "no_overlap": runs[False],
                "overlap": runs[True],
                "acceptance": {
                    "bar": bar,
                    "overlap_fraction": frac,
                    "verdict": verdict,
                },
            },
            fh, indent=2,
        )
        fh.write("\n")
    print(f"wrote {json_path}")
    return rc


if __name__ == "__main__":
    sys.exit(main())
