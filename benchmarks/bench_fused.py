#!/usr/bin/env python
"""Fused-sweep benchmark: whole-z-iteration kernels vs per-plane backends.

Times the 3.5D executor with the ``fused-numpy`` (and, when numba is
installed, ``fused-numba``) backends against the per-plane ``numpy`` and
``numpy-inplace`` backends, on the 7-point, 27-point and variable-coefficient
kernels, serial and threaded.  Every configuration is cross-checked
bit-exactly against the naive reference before it is timed.

The acceptance bar for this layer: ``fused-numpy`` reaches at least **2x**
the single-thread GUPS of the per-plane ``numpy`` backend on the 7-point
kernel at 128^3 with dim_T >= 2 (run without ``--quick``); ``fused-numba``
must be faster still wherever it is available.

Results are also written as machine-readable JSON (``--json``, default
``BENCH_fused.json`` next to this script) for CI artifact upload.

Usage::

    PYTHONPATH=src python benchmarks/bench_fused.py          # full (128^3)
    PYTHONPATH=src python benchmarks/bench_fused.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.core import Blocking35D, run_naive
from repro.perf.backends import available_backends, bound_rung, wrap_kernel
from repro.resilience import GuardedSweep, bind_with_fallback
from repro.runtime import ParallelBlocking35D
from repro.stencils import (
    Field3D,
    SevenPointStencil,
    TwentySevenPointStencil,
    VariableCoefficientStencil,
)

DEFAULT_BACKENDS = ["numpy", "numpy-inplace", "fused-numpy", "fused-numba", "codegen"]


def _make_case(name: str, grid: int):
    shape = (grid, grid, grid)
    if name == "7pt":
        kernel = SevenPointStencil()
    elif name == "27pt":
        kernel = TwentySevenPointStencil()
    elif name == "varco":
        rng = np.random.default_rng(21)
        kernel = VariableCoefficientStencil(
            alpha=(0.8 + 0.4 * rng.random(shape)).astype(np.float32),
            beta=(0.05 + 0.02 * rng.random(shape)).astype(np.float32),
        )
    else:  # pragma: no cover - guarded by argparse choices
        raise ValueError(name)
    field = Field3D.random(shape, dtype=np.float32, seed=17)
    return kernel, field


def _timed(fn, *args) -> float:
    t0 = time.perf_counter()
    fn(*args)
    return time.perf_counter() - t0


def bench_case(
    name: str,
    grid: int,
    steps: int,
    dim_t: int,
    tile: int,
    backends: list[str],
    threads: int,
    repeats: int,
    check: bool,
    rungs: dict[str, str] | None = None,
) -> dict[str, float]:
    kernel, field = _make_case(name, grid)
    n_updates = grid**3 * steps
    ref = run_naive(kernel, field, steps) if check else None

    print(f"\n== {name}  grid={grid}^3  steps={steps}  dim_T={dim_t}  "
          f"tile={tile}  threads={threads} ==")
    print(f"{'backend':<16} {'ms/run':>9} {'GUPS':>8} {'vs numpy':>9}")
    executors = {}
    for bname in backends:
        # bind through the resilience layer — the gate must hold with the
        # full production path (fallback chain + guarded sweep) enabled
        bound = bind_with_fallback(kernel, bname)
        if bound.used != bname:
            print(f"{bname:<16} degraded to {bound.used}; skipped")
            continue
        wrapped = bound.kernel
        if rungs is not None:
            # the ladder rung the wrapped kernel actually executes on — a
            # codegen/fused-numba request can silently serve the fused numpy
            # plan for unsupported kernels, and CI wants to see that
            rungs[bname] = bound_rung(wrapped)
        if threads > 1:
            inner = ParallelBlocking35D(wrapped, dim_t, tile, tile, threads)
        else:
            inner = Blocking35D(wrapped, dim_t, tile, tile)
        ex = GuardedSweep(inner)
        out = ex.run(field, steps)  # warm-up + correctness
        if ref is not None and not np.array_equal(out.data, ref.data):
            print(f"{bname:<16} BIT-EXACTNESS FAILURE vs naive reference")
            raise SystemExit(1)
        executors[bname] = ex
    # Interleave timed repeats so machine-speed drift hits all backends alike.
    best = {bname: float("inf") for bname in executors}
    for _ in range(repeats):
        for bname, ex in executors.items():
            best[bname] = min(best[bname], _timed(ex.run, field, steps))
    gups = {bname: n_updates / t / 1e9 for bname, t in best.items()}
    for bname in executors:
        ratio = gups[bname] / gups[backends[0]]
        print(f"{bname:<16} {best[bname] * 1e3:>9.2f} {gups[bname]:>8.4f} "
              f"{ratio:>8.2f}x")
    return gups


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small grids / fewer repeats (CI smoke mode)")
    ap.add_argument("--grid", type=int, default=None,
                    help="override the grid side (default 128; 32 quick)")
    ap.add_argument("--steps", type=int, default=4)
    ap.add_argument("--dim-t", type=int, default=4)
    ap.add_argument("--repeats", type=int, default=None)
    ap.add_argument("--kernels", nargs="+", default=["7pt", "27pt", "varco"],
                    choices=["7pt", "27pt", "varco"])
    ap.add_argument("--backends", nargs="+", default=None,
                    help="backend names (default: available fused + per-plane)")
    ap.add_argument("--threads", nargs="+", type=int, default=[1],
                    help="thread counts to bench (1 = serial executor)")
    ap.add_argument("--no-check", action="store_true",
                    help="skip the naive bit-exactness cross-check")
    ap.add_argument("--json", default=None, metavar="PATH",
                    help="machine-readable output path "
                    "(default BENCH_fused.json next to this script)")
    args = ap.parse_args(argv)

    grid = args.grid or (32 if args.quick else 128)
    repeats = args.repeats or (1 if args.quick else 4)
    if args.backends is not None:
        backends = args.backends
        for bname in backends:
            try:
                wrap_kernel(SevenPointStencil(), bname)  # fail fast
            except Exception as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
    else:
        avail = set(available_backends())
        backends = [b for b in DEFAULT_BACKENDS if b in avail]
    if backends[0] != "numpy":
        backends = ["numpy"] + [b for b in backends if b != "numpy"]

    dim_t = max(2, args.dim_t) if not args.quick else args.dim_t
    tile = min(grid, 128)
    results: dict[str, dict[str, dict[str, float]]] = {}
    bound_rungs: dict[str, dict[str, str]] = {}
    for threads in args.threads:
        tkey = f"threads={threads}"
        results[tkey] = {}
        for name in args.kernels:
            rungs = bound_rungs.setdefault(name, {})
            results[tkey][name] = bench_case(
                name, grid, args.steps, dim_t, tile, backends, threads,
                repeats, not args.no_check, rungs=rungs,
            )

    rc = 0
    acceptance = {}
    serial = results.get("threads=1", {}).get("7pt", {})
    if "fused-numpy" in serial and "numpy" in serial:
        speedup = serial["fused-numpy"] / serial["numpy"]
        bar = 2.0
        verdict = "PASS" if speedup >= bar else ("n/a (quick)" if args.quick else "FAIL")
        print(f"\n7pt fused-numpy vs numpy (dim_T={dim_t}): {speedup:.2f}x "
              f"(acceptance >= {bar}x at 128^3: {verdict})")
        acceptance["fused_numpy_speedup"] = speedup
        acceptance["verdict"] = verdict
        if not args.quick and speedup < bar:
            rc = 1
        if "fused-numba" in serial:
            nb = serial["fused-numba"] / serial["fused-numpy"]
            print(f"7pt fused-numba vs fused-numpy: {nb:.2f}x")
            acceptance["fused_numba_vs_numpy_plan"] = nb

    # One extra metered sweep (outside the timed repeats) joins measured
    # traffic against the Eq. 2 model so CI can watch kappa drift.
    from repro.obs.validate import metered_sweep_metrics

    mkernel, mfield = _make_case("7pt", grid)
    mbackend = "fused-numpy" if "fused-numpy" in backends else backends[0]
    mthreads = max(args.threads)
    metrics_block = metered_sweep_metrics(
        bind_with_fallback(mkernel, mbackend).kernel, mfield, args.steps,
        dim_t=dim_t, tile=tile, threads=mthreads,
    )
    metrics_block["kernel"] = "7pt"
    metrics_block["backend"] = mbackend
    metrics_block["bound_rung"] = bound_rungs.get("7pt", {}).get(mbackend, mbackend)
    print(f"\nmetrics (7pt, {mbackend}, threads={mthreads}): "
          f"kappa {metrics_block['kappa_measured']:.4f} vs predicted "
          f"{metrics_block['kappa_predicted']:.4f}"
          + (f", barrier wait {100 * metrics_block['barrier_wait_fraction']:.1f}%"
             if metrics_block["barrier_wait_fraction"] is not None else ""))

    json_path = args.json or os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "BENCH_fused.json"
    )
    with open(json_path, "w", encoding="utf-8") as fh:
        json.dump(
            {
                "benchmark": "fused",
                "grid": grid,
                "steps": args.steps,
                "dim_t": dim_t,
                "tile": tile,
                "quick": args.quick,
                "repeats": repeats,
                "backends": backends,
                "bound_rungs": bound_rungs,
                "gups": results,
                "metrics": metrics_block,
                "acceptance": acceptance,
            },
            fh, indent=2,
        )
        fh.write("\n")
    print(f"wrote {json_path}")
    return rc


if __name__ == "__main__":
    sys.exit(main())
