"""Ring buffers of XY sub-planes (paper Section V-C, Figure 3a).

The 3.5D scheme keeps, for each blocked time instance, a small ring of XY
sub-planes resident in on-chip memory.  The paper shows that ``2R+1`` planes
per instance suffice when the time instances are processed strictly in order
(one barrier per step), and that adding one more plane — ``2R+2`` — decouples
the instances so that one step of *every* instance can run concurrently,
multiplying the available parallelism by ``dim_T``.

A plane for height ``z`` always lives in slot ``z % slots`` (the paper's
"Buffer index for any z_s equals z_s % (2R+2)").  The ring tracks which
global plane each slot currently holds so executors can assert the liveness
invariant: a slot is never read for a plane it no longer holds.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["PlaneRing", "RingSet", "ring_slots"]


def ring_slots(radius: int, concurrent: bool) -> int:
    """Planes per time instance: ``2R+2`` for concurrent steps, else ``2R+1``."""
    return 2 * radius + (2 if concurrent else 1)


class PlaneRing:
    """A rotating buffer of ``slots`` XY planes for one time instance."""

    def __init__(
        self,
        slots: int,
        ncomp: int,
        ny: int,
        nx: int,
        dtype,
    ) -> None:
        if slots < 1:
            raise ValueError("ring needs at least one slot")
        self.slots = slots
        # Zero-filled (not np.empty): the flat contiguous kernel paths compute
        # over seam positions whose operands may be ring memory that was never
        # written.  Starting from finite values keeps those throwaway lanes
        # finite, so the kernels need no per-call FP-warning suppression.
        self.data = np.zeros((slots, ncomp, ny, nx), dtype=dtype)
        self._held = [-1] * slots
        self._crc = [0] * slots

    @property
    def nbytes(self) -> int:
        return self.data.nbytes

    def slot_for(self, z: int) -> np.ndarray:
        """Writable view of the slot that plane ``z`` maps to; marks it held."""
        idx = z % self.slots
        self._held[idx] = z
        return self.data[idx]

    def get(self, z: int) -> np.ndarray:
        """Read the plane for height ``z``; raises if it has been recycled."""
        idx = z % self.slots
        if self._held[idx] != z:
            raise LookupError(
                f"ring liveness violated: slot {idx} holds plane "
                f"{self._held[idx]}, wanted {z}"
            )
        return self.data[idx]

    def holds(self, z: int) -> bool:
        return self._held[z % self.slots] == z

    # -- per-plane CRC seals (the SDC defense of repro.resilience.sdc) --
    def seal(self, z: int) -> int:
        """CRC32-seal the plane currently held for ``z``; returns the CRC.

        A seal outlives the slot's recycling only as the *record* — once a
        new plane claims the slot, :meth:`check` for the old ``z`` reports
        the liveness miss, not a corruption.
        """
        idx = z % self.slots
        crc = zlib.crc32(np.ascontiguousarray(self.data[idx]))
        self._crc[idx] = crc
        return crc

    def check(self, z: int) -> bool:
        """True when plane ``z`` is held and still matches its seal —
        a resting bit flip in ring memory makes this False."""
        idx = z % self.slots
        if self._held[idx] != z:
            return False
        return zlib.crc32(np.ascontiguousarray(self.data[idx])) == self._crc[idx]

    def reset(self) -> None:
        # In-place fill so steady-state executors can recycle rings without
        # allocating a fresh slot list each sweep.
        for i in range(self.slots):
            self._held[i] = -1
            self._crc[i] = 0


class RingSet:
    """Rings for time instances ``0 .. dim_t - 1`` of one tile.

    Instance 0 holds planes loaded from external memory; instances
    ``1 .. dim_t - 1`` hold intermediate results.  The final instance
    ``dim_t`` writes straight to the destination grid and needs no ring.
    The aggregate footprint is the capacity term of Equation 1:
    ``E * (2R+2) * dim_T * dim_X * dim_Y`` in the concurrent configuration.
    """

    def __init__(
        self,
        dim_t: int,
        radius: int,
        ncomp: int,
        ny: int,
        nx: int,
        dtype,
        concurrent: bool = True,
    ) -> None:
        if dim_t < 1:
            raise ValueError("dim_t must be >= 1")
        self.dim_t = dim_t
        self.radius = radius
        self.slots = ring_slots(radius, concurrent)
        self.rings = [
            PlaneRing(self.slots, ncomp, ny, nx, dtype) for _ in range(dim_t)
        ]

    @property
    def nbytes(self) -> int:
        """On-chip bytes this configuration occupies (Equation 1 LHS)."""
        return sum(r.nbytes for r in self.rings)

    def ring(self, t: int) -> PlaneRing:
        """Ring for time instance ``t`` in ``[0, dim_t)``."""
        return self.rings[t]

    def reset(self) -> None:
        for r in self.rings:
            r.reset()
