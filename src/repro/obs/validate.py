"""Model-validation report: measured counters vs analytic predictions.

Joins the traffic actually accounted by an executor run against the
paper's models — Eq. 2's overestimation factor κ
(:mod:`repro.core.overestimation`), the trapezoid compute
overestimation, and optionally the roofline throughput of
:mod:`repro.machine.roofline` — plus the per-thread load-imbalance
ratio that backs the paper's "every thread does identical traffic"
argument.

κ conventions
-------------
Eq. 2 models the *read-side* amplification of one blocked round: the
grid must be read once per round compulsorily, and ghost layers inflate
that by κ.  We therefore report

``kappa_measured = bytes_read / (rounds * grid_bytes)``

as the headline figure, directly comparable to :func:`kappa_35d`.  The
write side has no ghost traffic (each point is stored exactly once per
round), so the total-bytes amplification sits between 1 and κ and is
reported separately as ``kappa_total_measured``.  Edge tiles clamp at
the domain boundary instead of loading ghosts, so measured κ is
expected to sit *below* the prediction — the prediction is an upper
bound that becomes tight as grid/tile grows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..core.overestimation import compute_overestimation_35d, kappa_35d

__all__ = ["ModelValidation", "validate_35d", "load_imbalance", "metered_sweep_metrics"]


def _effective_kappa(radius: int, dim_t: int, tile_x: int, tile_y: int,
                     nx: int, ny: int) -> float:
    """Eq. 2 κ with uncut axes contributing no ghost factor.

    A tile spanning the whole axis loads no ghosts on that axis (the
    shell clamps at the domain boundary), so its factor is 1.
    """
    dx = tile_x if tile_x < nx else None
    dy = tile_y if tile_y < ny else None
    if dx is None and dy is None:
        return 1.0
    if dx is None:
        return kappa_35d(radius, dim_t, dy)  # one cut axis only
    if dy is None:
        return kappa_35d(radius, dim_t, dx)
    return kappa_35d(radius, dim_t, dx, dy)


def load_imbalance(per_thread_bytes: list[int]) -> float | None:
    """max/mean ratio of per-thread traffic; 1.0 is perfect balance."""
    if not per_thread_bytes:
        return None
    mean = sum(per_thread_bytes) / len(per_thread_bytes)
    if mean <= 0:
        return None
    return max(per_thread_bytes) / mean


@dataclass
class ModelValidation:
    """Measured-vs-predicted join for one executor run."""

    executor: str
    rounds: int
    grid_bytes: int
    kappa_measured: float
    kappa_predicted: float
    kappa_total_measured: float
    compute_overestimation_measured: float
    compute_overestimation_predicted: float
    load_imbalance: float | None = None
    per_thread_bytes: list[int] = field(default_factory=list)
    achieved_mupdates_per_s: float | None = None
    roofline_mupdates_per_s: float | None = None

    @property
    def kappa_ratio(self) -> float:
        """measured/predicted; 1.0 means the model is exact."""
        return self.kappa_measured / self.kappa_predicted

    def within(self, tol: float = 0.15) -> bool:
        """Is measured κ within ``tol`` relative error of the prediction?"""
        return abs(self.kappa_ratio - 1.0) <= tol

    def to_dict(self) -> dict[str, Any]:
        doc: dict[str, Any] = {
            "executor": self.executor,
            "rounds": self.rounds,
            "grid_bytes": self.grid_bytes,
            "kappa_measured": self.kappa_measured,
            "kappa_predicted": self.kappa_predicted,
            "kappa_ratio": self.kappa_ratio,
            "kappa_total_measured": self.kappa_total_measured,
            "compute_overestimation_measured":
                self.compute_overestimation_measured,
            "compute_overestimation_predicted":
                self.compute_overestimation_predicted,
        }
        if self.load_imbalance is not None:
            doc["load_imbalance"] = self.load_imbalance
        if self.per_thread_bytes:
            doc["per_thread_bytes"] = self.per_thread_bytes
        if self.achieved_mupdates_per_s is not None:
            doc["achieved_mupdates_per_s"] = self.achieved_mupdates_per_s
        if self.roofline_mupdates_per_s is not None:
            doc["roofline_mupdates_per_s"] = self.roofline_mupdates_per_s
        return doc

    def lines(self) -> list[str]:
        out = [
            f"model validation ({self.executor}):",
            f"  kappa measured {self.kappa_measured:.4f} vs predicted "
            f"{self.kappa_predicted:.4f} (ratio {self.kappa_ratio:.3f}, "
            f"total-bytes {self.kappa_total_measured:.4f})",
            f"  compute overestimation measured "
            f"{self.compute_overestimation_measured:.4f} vs predicted "
            f"{self.compute_overestimation_predicted:.4f}",
        ]
        if self.load_imbalance is not None:
            out.append(f"  per-thread load imbalance (max/mean) "
                       f"{self.load_imbalance:.3f}")
        if (self.achieved_mupdates_per_s is not None
                and self.roofline_mupdates_per_s is not None):
            pct = 100 * self.achieved_mupdates_per_s / self.roofline_mupdates_per_s
            out.append(f"  achieved {self.achieved_mupdates_per_s:.1f} "
                       f"MUpdates/s = {pct:.0f}% of roofline "
                       f"{self.roofline_mupdates_per_s:.1f}")
        return out


def validate_35d(
    kernel: Any,
    field3d: Any,
    steps: int,
    traffic: Any,
    *,
    dim_t: int,
    tile_y: int,
    tile_x: int,
    executor: str = "blocking35d",
    per_thread_bytes: list[int] | None = None,
    machine: Any = None,
    precision: str = "sp",
    elapsed_s: float | None = None,
) -> ModelValidation:
    """Join one 3.5D run's measured TrafficStats against the paper models.

    ``traffic`` must come from the run being validated (one executor,
    ``steps`` time steps on ``field3d``).  ``per_thread_bytes`` enables
    the load-imbalance ratio; ``machine`` + ``elapsed_s`` enable the
    roofline join.
    """
    radius = kernel.radius
    rounds = max(1, -(-steps // dim_t)) if steps else 1
    nvox = field3d.nz * field3d.ny * field3d.nx
    grid_bytes = nvox * field3d.element_size()
    ty = min(tile_y, field3d.ny)
    tx = min(tile_x, field3d.nx)

    kappa_measured = traffic.bytes_read / (rounds * grid_bytes)
    kappa_total = traffic.total_bytes / (rounds * 2 * grid_bytes)
    kappa_predicted = _effective_kappa(
        radius, dim_t, tx, ty, field3d.nx, field3d.ny)

    # only interior points are ever updated (the shell is constant), so the
    # compulsory update count excludes the radius-R boundary
    interior = ((field3d.nz - 2 * radius) * (field3d.ny - 2 * radius)
                * (field3d.nx - 2 * radius))
    ideal_updates = interior * steps
    comp_measured = traffic.updates / ideal_updates if ideal_updates else 1.0
    try:
        dx_eff = tx if tx < field3d.nx else 10**9
        dy_eff = ty if ty < field3d.ny else 10**9
        comp_predicted = compute_overestimation_35d(radius, dim_t, dx_eff, dy_eff)
    except ValueError:
        comp_predicted = float("nan")

    achieved = None
    roofline = None
    if elapsed_s and elapsed_s > 0 and traffic.updates:
        achieved = traffic.updates / elapsed_s / 1e6
    if machine is not None and traffic.updates:
        from ..machine.roofline import attainable_updates

        point = attainable_updates(
            machine,
            precision,
            ops_per_update=traffic.ops / traffic.updates,
            bytes_per_update=traffic.total_bytes / traffic.updates,
        )
        roofline = point.mupdates_per_s

    return ModelValidation(
        executor=executor,
        rounds=rounds,
        grid_bytes=grid_bytes,
        kappa_measured=kappa_measured,
        kappa_predicted=kappa_predicted,
        kappa_total_measured=kappa_total,
        compute_overestimation_measured=comp_measured,
        compute_overestimation_predicted=comp_predicted,
        load_imbalance=load_imbalance(per_thread_bytes or []),
        per_thread_bytes=per_thread_bytes or [],
        achieved_mupdates_per_s=achieved,
        roofline_mupdates_per_s=roofline,
    )


def metered_sweep_metrics(
    kernel: Any,
    field3d: Any,
    steps: int,
    *,
    dim_t: int,
    tile: int,
    threads: int = 1,
    executor: Any = None,
) -> dict[str, Any]:
    """One metered 3.5D sweep; returns the flat block the benches embed.

    Arms the global metrics registry for the duration of a single run of
    ``executor`` (built from ``kernel`` and the blocking parameters when
    not supplied) and joins the measured traffic against Eq. 2.  The
    block carries bytes, measured-vs-predicted κ, and — for threaded
    runs — the barrier-wait fraction.
    """
    import time

    from ..core.traffic import TrafficStats
    from .metrics import METRICS

    if executor is None:
        if threads > 1:
            from ..runtime.parallel35d import ParallelBlocking35D

            executor = ParallelBlocking35D(kernel, dim_t, tile, tile, threads)
        else:
            from ..core.blocking35d import Blocking35D

            executor = Blocking35D(kernel, dim_t, tile, tile)
    METRICS.arm()
    try:
        traffic = TrafficStats()
        t0 = time.perf_counter()
        executor.run(field3d, steps, traffic)
        elapsed = time.perf_counter() - t0
        METRICS.merge_traffic(traffic)
        v = validate_35d(
            kernel, field3d, steps, traffic,
            dim_t=dim_t, tile_y=tile, tile_x=tile,
            executor="parallel35d" if threads > 1 else "blocking35d",
            elapsed_s=elapsed,
        )
        return {
            "bytes_read": traffic.bytes_read,
            "bytes_written": traffic.bytes_written,
            "updates": traffic.updates,
            "kappa_measured": v.kappa_measured,
            "kappa_predicted": v.kappa_predicted,
            "kappa_ratio": v.kappa_ratio,
            "barrier_wait_fraction": METRICS.barrier_wait_fraction(),
            "achieved_mupdates_per_s": v.achieved_mupdates_per_s,
            "threads": threads,
        }
    finally:
        METRICS.disarm()
