"""Figure 4(a): LBM on the Core i7 across grid sizes and blocking schemes.

Two reproductions in one harness:

* the **model series** — predicted MLUPS for 64^3/256^3/512^3 x {no
  blocking, temporal-only, 3.5D} x {SP, DP}, checked against the paper's
  reported values and shape claims (temporal-only helps only at 64^3; 3.5D
  is compute bound at ~171-180 SP / ~80 DP);
* a **measured run** — the actual NumPy D3Q19 solver at a reduced grid,
  timed for real (our wall-clock MLUPS) with external-traffic ratios that
  must show the dim_T/κ bandwidth reduction the figure rests on.
"""

import numpy as np
import pytest

from repro.core import TrafficStats
from repro.lbm import Lattice, run_lbm, run_lbm_35d
from repro.perf import format_table, predict_lbm_cpu

from .conftest import banner, record

GRIDS = (64, 256, 512)
SCHEMES = ("none", "temporal", "35d")


def model_series():
    return {
        (p, g, s): predict_lbm_cpu(s, p, g)
        for p in ("sp", "dp")
        for g in GRIDS
        for s in SCHEMES
    }


def test_fig4a_model_series(benchmark):
    series = benchmark(model_series)
    rows = [
        (f"{p.upper()} {g}^3", *(f"{series[(p, g, s)].mupdates_per_s:.0f}" for s in SCHEMES))
        for p in ("sp", "dp")
        for g in GRIDS
    ]
    print(banner("Figure 4(a): LBM CPU MLUPS (model)"))
    print(format_table(["case", "no blocking", "temporal only", "3.5D"], rows))

    # paper anchor points
    assert series[("sp", 256, "none")].mupdates_per_s == pytest.approx(87, rel=0.12)
    assert 160 <= series[("sp", 256, "35d")].mupdates_per_s <= 195  # 171-180
    assert series[("dp", 256, "35d")].mupdates_per_s == pytest.approx(80, rel=0.1)
    # shape: temporal-only helps only at 64^3
    for g in (256, 512):
        assert series[("sp", g, "temporal")].mupdates_per_s == pytest.approx(
            series[("sp", g, "none")].mupdates_per_s
        )
    assert (
        series[("sp", 64, "temporal")].mupdates_per_s
        > 1.5 * series[("sp", 64, "none")].mupdates_per_s
    )
    # shape: 3.5D speedup ~2.1X SP, ~2X DP, grid-size independent
    for p, target in (("sp", 2.1), ("dp", 1.9)):
        for g in (256, 512):
            ratio = (
                series[(p, g, "35d")].mupdates_per_s
                / series[(p, g, "none")].mupdates_per_s
            )
            assert ratio == pytest.approx(target, rel=0.2)
    record(
        benchmark,
        sp_256_none=series[("sp", 256, "none")].mupdates_per_s,
        sp_256_35d=series[("sp", 256, "35d")].mupdates_per_s,
    )


@pytest.mark.parametrize("scheme", ["none", "35d"])
def test_fig4a_measured_executor(benchmark, scheme):
    """Wall-clock MLUPS of the real NumPy solver (reduced 48^2 x 32 grid)."""
    shape = (32, 48, 48)
    rng = np.random.default_rng(0)
    lat = Lattice.from_moments(
        (1.0 + 0.02 * rng.random(shape)).astype(np.float32),
        (0.01 * (rng.random((3,) + shape) - 0.5)).astype(np.float32),
    )
    steps = 3

    if scheme == "none":
        out = benchmark(run_lbm, lat, steps, 1.2)
    else:
        out = benchmark(run_lbm_35d, lat, steps, 3, (24, 24), None, 1.2)
    cells = shape[0] * shape[1] * shape[2] * steps
    mlups = cells / benchmark.stats["mean"] / 1e6
    print(f"\nmeasured {scheme}: {mlups:.1f} MLUPS (NumPy substrate)")
    record(benchmark, measured_mlups=mlups)
    assert np.isfinite(out.f.data).all()


def test_fig4a_traffic_reduction(benchmark):
    """The mechanism behind the figure: 3.5D cuts traffic by ~dim_T/κ."""
    shape = (24, 66, 66)
    rng = np.random.default_rng(1)
    lat = Lattice.from_moments(
        1.0 + 0.02 * rng.random(shape), 0.01 * (rng.random((3,) + shape) - 0.5)
    )

    def measure():
        t_naive, t_35d = TrafficStats(), TrafficStats()
        run_lbm(lat, 3, traffic=t_naive)
        run_lbm_35d(lat, 3, dim_t=3, tile=64, traffic=t_35d)
        return t_naive.total_bytes / t_35d.total_bytes

    ratio = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(f"\nmeasured traffic reduction (naive / 3.5D): {ratio:.2f}X "
          f"(ideal dim_T/kappa = {3 / 1.21:.2f}X)")
    assert ratio > 2.2
    record(benchmark, traffic_reduction=ratio)
