"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.stencils import Field3D, SevenPointStencil


@pytest.fixture
def seven_point() -> SevenPointStencil:
    return SevenPointStencil(alpha=0.4, beta=0.1)


@pytest.fixture
def small_field() -> Field3D:
    return Field3D.random((12, 13, 14), dtype=np.float32, seed=7)


@pytest.fixture
def medium_field() -> Field3D:
    return Field3D.random((24, 26, 28), dtype=np.float64, seed=11)


def assert_fields_equal(a: Field3D, b: Field3D) -> None:
    """Exact (bitwise) equality — blocking must not change arithmetic."""
    assert a.data.shape == b.data.shape
    assert a.data.dtype == b.data.dtype
    if not np.array_equal(a.data, b.data):
        diff = np.argwhere(a.data != b.data)
        raise AssertionError(
            f"fields differ at {len(diff)} points; first at index {tuple(diff[0])}: "
            f"{a.data[tuple(diff[0])]} vs {b.data[tuple(diff[0])]}"
        )
