"""1D domain decomposition along Z.

The Z axis is the streaming dimension of 2.5D blocking, so slab
decomposition along Z composes naturally with the 3.5D executors: each rank
streams through its own slab while the XY tiling is unchanged.  Halo width
per exchange is ``R * dim_T`` — one exchange feeds a whole blocked round.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..runtime.partition import partition_span

__all__ = ["Slab", "decompose_z"]


@dataclass(frozen=True)
class Slab:
    """One rank's owned portion of the global Z axis."""

    rank: int
    z0: int
    z1: int
    lo_neighbor: int | None
    hi_neighbor: int | None

    @property
    def owned(self) -> int:
        return self.z1 - self.z0


def decompose_z(nz: int, n_ranks: int, halo: int) -> list[Slab]:
    """Partition ``[0, nz)`` into contiguous near-equal slabs.

    Every slab must own at least ``halo`` planes so a single neighbor
    exchange provides the full ghost zone for one blocked round.
    """
    if n_ranks < 1:
        raise ValueError("n_ranks must be >= 1")
    if halo < 0:
        raise ValueError("halo must be >= 0")
    spans = partition_span(0, nz, n_ranks)
    min_owned = min(hi - lo for lo, hi in spans)
    if n_ranks > 1 and min_owned < halo:
        raise ValueError(
            f"{n_ranks} ranks over {nz} planes leave a slab of {min_owned} < "
            f"halo {halo}: use fewer ranks or a smaller dim_T"
        )
    slabs = []
    for rank, (lo, hi) in enumerate(spans):
        slabs.append(
            Slab(
                rank=rank,
                z0=lo,
                z1=hi,
                lo_neighbor=rank - 1 if rank > 0 else None,
                hi_neighbor=rank + 1 if rank < n_ranks - 1 else None,
            )
        )
    return slabs
