"""Unit tests for the Field3D grid container and boundary-shell helpers."""

import numpy as np
import pytest

from repro.stencils import Field3D, copy_shell, interior_points, interior_slices


class TestField3D:
    def test_zeros_shape_and_dtype(self):
        f = Field3D.zeros((4, 5, 6), ncomp=3, dtype=np.float32)
        assert f.shape == (4, 5, 6)
        assert f.ncomp == 3
        assert f.dtype == np.float32
        assert f.data.shape == (3, 4, 5, 6)
        assert not f.data.any()

    def test_from_array_wraps_3d(self):
        arr = np.arange(24.0).reshape(2, 3, 4)
        f = Field3D.from_array(arr)
        assert f.ncomp == 1
        assert f.shape == (2, 3, 4)
        assert np.shares_memory(f.data, arr)

    def test_rejects_wrong_rank(self):
        with pytest.raises(ValueError):
            Field3D(np.zeros((3, 4)))

    def test_random_reproducible(self):
        a = Field3D.random((3, 4, 5), seed=42)
        b = Field3D.random((3, 4, 5), seed=42)
        assert np.array_equal(a.data, b.data)

    def test_element_size(self):
        f = Field3D.zeros((2, 3, 4), ncomp=19, dtype=np.float32)
        assert f.element_size() == 76  # 19 SP values per point
        g = Field3D.zeros((2, 3, 4), ncomp=1, dtype=np.float64)
        assert g.element_size() == 8

    def test_plane_is_view(self):
        f = Field3D.zeros((4, 5, 6))
        f.plane(2)[...] = 7.0
        assert (f.data[:, 2] == 7.0).all()
        assert (f.data[:, 1] == 0.0).all()

    def test_copy_and_like(self):
        f = Field3D.random((3, 4, 5), seed=1)
        c = f.copy()
        assert np.array_equal(c.data, f.data)
        assert not np.shares_memory(c.data, f.data)
        empty = f.like()
        assert empty.data.shape == f.data.shape
        assert empty.dtype == f.dtype

    def test_equality(self):
        f = Field3D.random((3, 4, 5), seed=1)
        assert f == f.copy()
        g = f.copy()
        g.data[0, 1, 2, 3] += 1
        assert not (f == g)


class TestInteriorHelpers:
    def test_interior_slices_radius1(self):
        f = np.arange(27).reshape(3, 3, 3)
        sz, sy, sx = interior_slices(1)
        assert f[sz, sy, sx].shape == (1, 1, 1)
        assert f[sz, sy, sx][0, 0, 0] == 13  # the exact center

    def test_interior_points(self):
        assert interior_points((10, 10, 10), 1) == 8**3
        assert interior_points((10, 10, 10), 2) == 6**3
        assert interior_points((4, 4, 4), 2) == 0

    def test_nbytes_interior(self):
        f = Field3D.zeros((6, 6, 6), dtype=np.float32)
        assert f.nbytes_interior(1) == 4**3 * 4


class TestCopyShell:
    def test_copies_only_shell(self):
        src = Field3D.random((6, 7, 8), seed=2)
        dst = Field3D.zeros((6, 7, 8))
        copy_shell(src, dst, 1)
        # shell matches
        assert np.array_equal(dst.data[:, 0], src.data[:, 0])
        assert np.array_equal(dst.data[:, -1], src.data[:, -1])
        assert np.array_equal(dst.data[:, :, 0], src.data[:, :, 0])
        assert np.array_equal(dst.data[:, :, :, -1], src.data[:, :, :, -1])
        # interior untouched
        assert not dst.data[:, 1:-1, 1:-1, 1:-1].any()

    def test_radius2_shell(self):
        src = Field3D.random((8, 8, 8), seed=3)
        dst = Field3D.zeros((8, 8, 8))
        copy_shell(src, dst, 2)
        assert np.array_equal(dst.data[:, :2], src.data[:, :2])
        assert not dst.data[:, 2:-2, 2:-2, 2:-2].any()

    def test_zero_radius_noop(self):
        src = Field3D.random((4, 4, 4), seed=4)
        dst = Field3D.zeros((4, 4, 4))
        copy_shell(src, dst, 0)
        assert not dst.data.any()

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            copy_shell(Field3D.zeros((4, 4, 4)), Field3D.zeros((4, 4, 5)), 1)
