"""Unit tests for the trapezoid region arithmetic."""

import pytest

from repro.core import axis_tiles, compute_range, loaded_extent, plan_tiles_2d, split_slab


class TestLoadedExtent:
    def test_interior_tile(self):
        assert loaded_extent((10, 20), 100, 4) == (6, 24)

    def test_clips_at_edges(self):
        assert loaded_extent((1, 10), 100, 4) == (0, 14)
        assert loaded_extent((90, 99), 100, 4) == (86, 100)


class TestComputeRange:
    def test_final_instance_is_core(self):
        assert compute_range((10, 20), 100, 1, 3, 3) == (10, 20)

    def test_growth_per_instance(self):
        # at t the region grows by R*(dim_t - t) per side
        assert compute_range((10, 20), 100, 1, 3, 2) == (9, 21)
        assert compute_range((10, 20), 100, 1, 3, 1) == (8, 22)

    def test_clamped_at_physical_boundary(self):
        # a core starting at the interior edge never reaches below R
        assert compute_range((1, 10), 100, 1, 3, 1) == (1, 12)
        assert compute_range((90, 99), 100, 1, 3, 1) == (88, 99)

    def test_radius2(self):
        assert compute_range((20, 30), 100, 2, 2, 1) == (18, 32)

    def test_invalid_instance(self):
        with pytest.raises(ValueError):
            compute_range((10, 20), 100, 1, 3, 0)
        with pytest.raises(ValueError):
            compute_range((10, 20), 100, 1, 3, 4)


class TestAxisTiles:
    def test_cores_partition_interior(self):
        tiles = axis_tiles(100, 1, 2, 20)
        cores = [t.core for t in tiles]
        # cores are contiguous and cover exactly [R, n-R)
        assert cores[0][0] == 1
        assert cores[-1][1] == 99
        for a, b in zip(cores, cores[1:]):
            assert a[1] == b[0]

    def test_core_size_is_tile_minus_ghosts(self):
        tiles = axis_tiles(100, 1, 3, 20)
        assert tiles[0].core_size == 20 - 2 * 3

    def test_extents_include_halo(self):
        tiles = axis_tiles(100, 1, 2, 20)
        inner = tiles[1]
        assert inner.extent == (inner.core[0] - 2, inner.core[1] + 2)

    def test_single_tile_covers_whole_axis(self):
        tiles = axis_tiles(30, 1, 5, 30)
        assert len(tiles) == 1
        assert tiles[0].extent == (0, 30)
        assert tiles[0].core == (1, 29)

    def test_whole_axis_even_when_core_formula_fails(self):
        # tile >= n: no cut edges at all, so no ghosts are needed
        tiles = axis_tiles(10, 1, 10, 10)
        assert len(tiles) == 1

    def test_too_small_tile_rejected(self):
        with pytest.raises(ValueError):
            axis_tiles(100, 1, 5, 10)  # 2*R*dim_t = 10 >= tile

    def test_no_interior_rejected(self):
        with pytest.raises(ValueError):
            axis_tiles(4, 2, 1, 4)


class TestPlanTiles2D:
    def test_cross_product(self):
        tiles = plan_tiles_2d(50, 60, 1, 2, 20, 25)
        ny_tiles = len(axis_tiles(50, 1, 2, 20))
        nx_tiles = len(axis_tiles(60, 1, 2, 25))
        assert len(tiles) == ny_tiles * nx_tiles

    def test_cores_cover_interior_exactly_once(self):
        tiles = plan_tiles_2d(40, 40, 1, 2, 18, 14)
        covered = set()
        for t in tiles:
            for y in range(*t.y.core):
                for x in range(*t.x.core):
                    assert (y, x) not in covered
                    covered.add((y, x))
        assert covered == {(y, x) for y in range(1, 39) for x in range(1, 39)}

    def test_extent_points_exceed_core_points(self):
        tiles = plan_tiles_2d(60, 60, 1, 3, 30, 30)
        for t in tiles:
            assert t.extent_points >= t.core_points


class TestSplitSlab:
    def test_two_cut_sides(self):
        s = split_slab(10, 20, 40, halo=2, lo_cut=True, hi_cut=True)
        assert s.interior.core == (12, 18)
        assert s.interior.extent == (10, 20)  # owned planes only, no ghosts
        assert s.lo_strip.core == (10, 12)
        assert s.lo_strip.extent == (8, 14)
        assert s.hi_strip.core == (18, 20)
        assert s.hi_strip.extent == (16, 22)

    def test_cores_tile_the_owned_range(self):
        s = split_slab(10, 20, 40, halo=3, lo_cut=True, hi_cut=True)
        assert s.lo_strip.core[1] == s.interior.core[0]
        assert s.interior.core[1] == s.hi_strip.core[0]
        assert (s.lo_strip.core[0], s.hi_strip.core[1]) == (10, 20)

    def test_physical_boundary_does_not_shrink(self):
        lo = split_slab(0, 10, 40, halo=2, lo_cut=False, hi_cut=True)
        assert lo.interior.core == (0, 8)
        assert lo.lo_strip is None
        hi = split_slab(30, 40, 40, halo=2, lo_cut=True, hi_cut=False)
        assert hi.interior.core == (32, 40)
        assert hi.hi_strip is None

    def test_single_rank_no_cuts(self):
        s = split_slab(0, 40, 40, halo=2, lo_cut=False, hi_cut=False)
        assert s.interior.core == (0, 40)
        assert s.lo_strip is None and s.hi_strip is None
        assert s.redundant_planes() == 0

    def test_strip_extent_clipped_at_grid(self):
        # slab thinner than 2*halo but thicker than halo: the strip's far
        # side clips at the physical boundary instead of reading past it
        s = split_slab(37, 40, 40, halo=2, lo_cut=True, hi_cut=False)
        assert s.interior.core == (39, 40)
        assert s.lo_strip.core == (37, 39)
        assert s.lo_strip.extent == (35, 40)

    def test_too_thin_degenerates(self):
        s = split_slab(10, 14, 40, halo=2, lo_cut=True, hi_cut=True)
        assert s.interior is None
        assert s.lo_strip is None and s.hi_strip is None
        assert s.redundant_planes() == 0

    def test_redundancy_accounting(self):
        s = split_slab(10, 20, 40, halo=2, lo_cut=True, hi_cut=True)
        # split sweeps 10 + 6 + 6 planes; fused sweeps 10 + 2 + 2
        assert s.split_extent_planes() == 22
        assert s.fused_extent_planes() == 14
        assert s.redundant_planes() == 8  # 2 * 2*halo
        assert s.overestimation() == pytest.approx(8 / 14)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            split_slab(10, 10, 40, halo=2, lo_cut=True, hi_cut=True)
        with pytest.raises(ValueError):
            split_slab(10, 20, 40, halo=0, lo_cut=True, hi_cut=True)
