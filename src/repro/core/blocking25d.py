"""2.5D spatial blocking (paper Section V-A3, Figure 2b).

Block in the XY plane and *stream* through Z: only ``2R+1`` XY sub-planes
need be resident on chip at once, so the blocked dimensions ``dim_X, dim_Y``
can be much larger than a 3D block's side — the ghost-layer overestimation
drops from :math:`((1-2R/d)^3)^{-1}` to :math:`((1-2R/d_x)(1-2R/d_y))^{-1}`
with a much larger ``d``.  There is *no* ghost traffic in Z at all.

The implementation is the paper's two-phase flow, per XY sub-plane:

* **Phase 1 (prolog)** — load the sub-planes for ``z = 0 .. 2R`` into the
  ring ``Buffer[0 .. 2R]``.
* **Phase 2** — for each ``z`` in ``[R, Nz - R)``: (a) load the sub-plane for
  ``z + R`` into ``Buffer[(z+R) % (2R+1)]``; (b) run the stencil on the
  sub-plane in ``Buffer[z % (2R+1)]`` and store the result to external
  memory.

This is also exactly the 3.5D algorithm at ``dim_T = 1`` with the sequential
(2R+1 slot) ring — a property the test suite checks.
"""

from __future__ import annotations

import numpy as np

from ..obs.trace import TRACE
from ..stencils.base import PlaneKernel
from ..stencils.grid import Field3D, copy_shell
from .buffer import PlaneRing
from .regions import plan_tiles_2d
from .traffic import TrafficStats

__all__ = ["Blocking25D", "run_2_5d"]


class Blocking25D:
    """2.5D spatial blocking executor (one time step per grid sweep)."""

    def __init__(self, kernel: PlaneKernel, tile_y: int, tile_x: int) -> None:
        self.kernel = kernel
        self.tile_y = tile_y
        self.tile_x = tile_x
        self._rings: dict = {}
        self._tile_plans: dict = {}

    def clear_cache(self) -> None:
        """Drop cached rings and tile plans (frees their buffers)."""
        self._rings.clear()
        self._tile_plans.clear()

    def _plan_tiles(self, ny: int, nx: int):
        key = (ny, nx)
        plan = self._tile_plans.get(key)
        if plan is None:
            plan = plan_tiles_2d(
                ny, nx, self.kernel.radius, 1, self.tile_y, self.tile_x
            )
            self._tile_plans[key] = plan
        return plan

    def _ring(self, tile, ncomp: int, dtype) -> PlaneRing:
        r = self.kernel.radius
        (ey0, ey1), (ex0, ex1) = tile.y.extent, tile.x.extent
        key = (ey1 - ey0, ex1 - ex0, ncomp, np.dtype(dtype))
        ring = self._rings.get(key)
        if ring is None:
            ring = PlaneRing(2 * r + 1, ncomp, ey1 - ey0, ex1 - ex0, dtype)
            self._rings[key] = ring
        else:
            ring.reset()
        return ring

    def run(
        self,
        field: Field3D,
        steps: int,
        traffic: TrafficStats | None = None,
    ) -> Field3D:
        """Advance ``field`` by ``steps`` time steps; input is untouched."""
        if steps < 0:
            raise ValueError("steps must be >= 0")
        if steps == 0:
            return field.copy()
        src = field.copy()
        dst = field.like()
        copy_shell(src, dst, self.kernel.radius)
        with TRACE.span("sweep", executor="blocking25d", steps=steps):
            for i in range(steps):
                with TRACE.span("round", index=i, round_t=1):
                    self.sweep(src, dst, traffic)
                src, dst = dst, src
        return src

    def sweep(
        self,
        src: Field3D,
        dst: Field3D,
        traffic: TrafficStats | None = None,
    ) -> None:
        """One Jacobi time step using 2.5D blocked streaming."""
        kernel = self.kernel
        r = kernel.radius
        nz, ny, nx = src.shape
        esize = src.element_size()
        # dim_t=1 tiling: halo R on cut edges only.
        for tile in self._plan_tiles(ny, nx):
            (ey0, ey1), (ex0, ex1) = tile.y.extent, tile.x.extent
            (cy0, cy1), (cx0, cx1) = tile.y.core, tile.x.core
            extent_area = (ey1 - ey0) * (ex1 - ex0)
            ring = self._ring(tile, src.ncomp, src.dtype)

            def load(z: int, ring: PlaneRing = ring) -> None:
                np.copyto(ring.slot_for(z), src.data[:, z, ey0:ey1, ex0:ex1])
                if traffic is not None:
                    traffic.read(extent_area * esize, planes=1)

            def z_iter(z: int) -> None:
                load(z + r)
                srcs = [ring.get(z + dz) for dz in range(-r, r + 1)]
                out = dst.data[:, z, ey0:ey1, ex0:ex1]
                kernel.compute_plane(out, srcs, yr, xr, gz=z, gy0=ey0, gx0=ex0)
                if traffic is not None:
                    traffic.write((cy1 - cy0) * (cx1 - cx0) * esize, planes=1)
                    traffic.update((cy1 - cy0) * (cx1 - cx0), kernel.ops_per_update)

            yr = (cy0 - ey0, cy1 - ey0)
            xr = (cx0 - ex0, cx1 - ex0)
            if TRACE.armed:
                with TRACE.span("tile", y0=cy0, y1=cy1, x0=cx0, x1=cx1):
                    for z in range(2 * r):  # Phase 1: prolog — planes [0, 2R)
                        load(z)
                    for z in range(r, nz - r):  # Phase 2: stream through z
                        with TRACE.span("z_iter", k=z):
                            z_iter(z)
            else:
                for z in range(2 * r):  # Phase 1: prolog — planes [0, 2R)
                    load(z)
                for z in range(r, nz - r):  # Phase 2: stream through z
                    z_iter(z)


def run_2_5d(
    kernel: PlaneKernel,
    field: Field3D,
    steps: int,
    tile_y: int,
    tile_x: int,
    *,
    traffic: TrafficStats | None = None,
) -> Field3D:
    """Convenience wrapper for :class:`Blocking25D`."""
    return Blocking25D(kernel, tile_y, tile_x).run(field, steps, traffic)
