"""Roofline throughput model (the analysis engine of Sections IV-VII).

A kernel whose bytes/op γ exceeds the machine balance Γ is bandwidth bound:
its throughput is ``BW / bytes_per_update``.  Otherwise it is compute bound
at ``ops_rate / ops_per_update``.  Every performance argument in the paper —
which kernels need temporal blocking (Section IV-C), what dim_T buys
(Section V-E), and the absolute updates/s of Figures 4 and 5 — is an
instance of this model, parameterized by the traffic and op inflation of the
chosen blocking scheme.
"""

from __future__ import annotations

from dataclasses import dataclass

from .spec import MachineSpec

__all__ = ["RooflinePoint", "attainable_updates", "is_bandwidth_bound"]


@dataclass(frozen=True)
class RooflinePoint:
    """Predicted throughput of one (kernel, scheme, machine) combination."""

    updates_per_s: float
    bandwidth_bound: bool
    compute_limit: float
    bandwidth_limit: float
    bytes_per_update: float
    ops_per_update: float

    @property
    def mupdates_per_s(self) -> float:
        """Millions of updates per second (the paper's reporting unit)."""
        return self.updates_per_s / 1e6


def attainable_updates(
    machine: MachineSpec,
    precision: str,
    ops_per_update: float,
    bytes_per_update: float,
    compute_efficiency: float = 1.0,
    derated: bool = True,
    achievable_bw: bool = True,
) -> RooflinePoint:
    """Roofline throughput in grid-point updates per second.

    ``ops_per_update`` and ``bytes_per_update`` should already include any
    blocking overheads (κ-inflated ops, dim_T-reduced traffic).
    ``compute_efficiency`` folds in implementation effects the paper
    quantifies separately — SIMD efficiency, unaligned accesses, per-thread
    overheads (Section VII-C).
    """
    if ops_per_update <= 0 or bytes_per_update < 0:
        raise ValueError("invalid kernel characteristics")
    if not 0 < compute_efficiency <= 1:
        raise ValueError("compute_efficiency must be in (0, 1]")
    ops_rate = machine.stencil_ops(precision) if derated else machine.peak_ops(precision)
    bw = machine.achievable_bandwidth if achievable_bw else machine.peak_bandwidth
    compute_limit = ops_rate * compute_efficiency / ops_per_update
    bandwidth_limit = (
        bw / bytes_per_update if bytes_per_update > 0 else float("inf")
    )
    bound_by_bw = bandwidth_limit < compute_limit
    return RooflinePoint(
        updates_per_s=min(compute_limit, bandwidth_limit),
        bandwidth_bound=bound_by_bw,
        compute_limit=compute_limit,
        bandwidth_limit=bandwidth_limit,
        bytes_per_update=bytes_per_update,
        ops_per_update=ops_per_update,
    )


def is_bandwidth_bound(
    machine: MachineSpec, precision: str, gamma: float, derated: bool = True
) -> bool:
    """Section IV-C's test: γ (kernel bytes/op) > Γ (machine bytes/op)."""
    return gamma > machine.bytes_per_op(precision, derated=derated)
