"""Periodic boundary conditions via wrapped halo padding.

The paper's formulation holds a boundary shell fixed in time (Dirichlet).
Many stencil workloads are periodic instead; this module supports them on
top of the *unchanged* executors by the classic halo trick:

for each round of ``round_t`` fused steps, pad the grid with a wrapped halo
of width ``h = R * round_t``, run one blocked round on the augmented grid,
and extract the original region.  Correctness follows by induction on the
time instance: a cell at depth ``d`` from the augmented boundary is exact at
instance ``t`` whenever ``d >= R*t`` (its dependencies sit at depth
``>= R*(t-1)``), so at ``t = round_t`` the entire original region — depth
``>= h`` — is exact.  The stale values the fixed-shell machinery produces
nearer the augmented boundary are never extracted.

Kernels with auxiliary per-cell state (the LBM flag field) participate by
overriding :meth:`~repro.stencils.base.PlaneKernel.padded_for` to wrap
their state the same way.
"""

from __future__ import annotations

import numpy as np

from ..stencils.base import PlaneKernel
from ..stencils.grid import Field3D
from .blocking35d import Blocking35D
from .traffic import TrafficStats

__all__ = [
    "wrap_pad",
    "pad_field",
    "run_naive_periodic",
    "run_3_5d_periodic",
    "run_naive_padded",
    "run_3_5d_padded",
    "PAD_MODES",
]

#: pad modes whose halo evolution provably tracks the true boundary
#: condition: "wrap" (periodic) always; "symmetric" (zero-gradient Neumann)
#: for reflection-symmetric kernels, because mirrored inputs produce
#: bitwise-mirrored outputs (FP addition is commutative).
PAD_MODES = ("wrap", "symmetric")


def pad_field(field: Field3D, halo: int, mode: str = "wrap") -> Field3D:
    """The field extended by ``halo`` cells per side with the given pad mode."""
    if mode not in PAD_MODES:
        raise ValueError(f"mode must be one of {PAD_MODES}, got {mode!r}")
    if halo < 0:
        raise ValueError("halo must be >= 0")
    if halo == 0:
        return field.copy()
    nz, ny, nx = field.shape
    if halo >= min(nz, ny, nx):
        raise ValueError(
            f"halo {halo} must be smaller than every grid dimension {field.shape}"
        )
    padded = np.pad(
        field.data, ((0, 0), (halo, halo), (halo, halo), (halo, halo)), mode=mode
    )
    return Field3D(padded)


def wrap_pad(field: Field3D, halo: int) -> Field3D:
    """The field extended by ``halo`` periodically-wrapped cells per side."""
    return pad_field(field, halo, "wrap")


def _extract(aug: Field3D, halo: int, shape: tuple[int, int, int]) -> Field3D:
    nz, ny, nx = shape
    return Field3D(
        aug.data[:, halo : halo + nz, halo : halo + ny, halo : halo + nx].copy()
    )


def run_naive_padded(
    kernel: PlaneKernel,
    field: Field3D,
    steps: int,
    mode: str = "wrap",
    traffic: TrafficStats | None = None,
) -> Field3D:
    """Reference padded-BC Jacobi: re-pad with a radius-R halo every step.

    ``mode="wrap"`` is periodic; ``mode="symmetric"`` is the cell-centered
    zero-gradient (Neumann) boundary condition.
    """
    if steps < 0:
        raise ValueError("steps must be >= 0")
    r = kernel.radius
    current = field.copy()
    pk = kernel.padded_for(r, field.shape)
    if mode != "wrap" and pk is not kernel:
        raise ValueError(
            f"mode {mode!r} needs a translation-invariant kernel; "
            f"{type(kernel).__name__} carries wrapped auxiliary state"
        )
    for _ in range(steps):
        aug = pad_field(current, r, mode)
        nzp, nyp, nxp = aug.shape
        dst = aug.like()
        for z in range(r, nzp - r):
            planes = [aug.plane(z + dz) for dz in range(-r, r + 1)]
            pk.compute_plane(dst.plane(z), planes, (r, nyp - r), (r, nxp - r), gz=z)
        current = _extract(dst, r, field.shape)
        if traffic is not None:
            esize = field.element_size()
            npts = field.nz * field.ny * field.nx
            traffic.read(aug.nz * aug.ny * aug.nx * esize)
            traffic.write(npts * esize)
            traffic.update(npts, kernel.ops_per_update)
    return current


def run_naive_periodic(
    kernel: PlaneKernel,
    field: Field3D,
    steps: int,
    traffic: TrafficStats | None = None,
) -> Field3D:
    """Reference periodic Jacobi (``run_naive_padded`` with wrap mode)."""
    return run_naive_padded(kernel, field, steps, "wrap", traffic)


def run_3_5d_padded(
    kernel: PlaneKernel,
    field: Field3D,
    steps: int,
    dim_t: int,
    tile_y: int,
    tile_x: int,
    *,
    mode: str = "wrap",
    concurrent: bool = True,
    validate: bool = False,
    traffic: TrafficStats | None = None,
) -> Field3D:
    """Padded-boundary 3.5D blocking: one halo pad per blocked round.

    Matches :func:`run_naive_padded` bit-for-bit.  The per-round halo is
    ``R * round_t``, so one pad replaces ``round_t`` naive pads — temporal
    blocking reduces boundary-exchange *frequency* exactly as it reduces
    memory traffic (the property distributed implementations rely on; see
    :mod:`repro.distributed`).

    ``mode="symmetric"`` (Neumann) requires a reflection-symmetric kernel:
    the halo then evolves as the exact mirror of the interior, bitwise,
    because the kernels' sums commute.  Kernels with auxiliary per-cell
    state currently wrap that state, so symmetric mode rejects them.
    """
    if steps < 0:
        raise ValueError("steps must be >= 0")
    if dim_t < 1:
        raise ValueError("dim_t must be >= 1")
    r = kernel.radius
    current = field.copy()
    remaining = steps
    while remaining > 0:
        round_t = min(dim_t, remaining)
        halo = r * round_t
        aug = pad_field(current, halo, mode)
        pk = kernel.padded_for(halo, field.shape)
        if mode != "wrap" and pk is not kernel:
            raise ValueError(
                f"mode {mode!r} needs a translation-invariant kernel; "
                f"{type(kernel).__name__} carries wrapped auxiliary state"
            )
        ex = Blocking35D(
            pk,
            dim_t=round_t,
            tile_y=tile_y + 2 * halo,
            tile_x=tile_x + 2 * halo,
            concurrent=concurrent,
            validate=validate,
        )
        out = ex.run(aug, round_t, traffic)
        current = _extract(out, halo, field.shape)
        remaining -= round_t
    return current


def run_3_5d_periodic(
    kernel: PlaneKernel,
    field: Field3D,
    steps: int,
    dim_t: int,
    tile_y: int,
    tile_x: int,
    *,
    concurrent: bool = True,
    validate: bool = False,
    traffic: TrafficStats | None = None,
) -> Field3D:
    """Periodic 3.5D blocking (``run_3_5d_padded`` with wrap mode)."""
    return run_3_5d_padded(
        kernel,
        field,
        steps,
        dim_t,
        tile_y,
        tile_x,
        mode="wrap",
        concurrent=concurrent,
        validate=validate,
        traffic=traffic,
    )
