"""Tests for the silent-data-corruption defense (repro.resilience.sdc).

The claims under test are end-to-end: seeded ``memory.flip`` /
``disk.bitrot`` faults must be *detected* (never silently absorbed),
healing must be *surgical* (cone replay, not a full restart) and
*bit-exact* (the healed grid equals the fault-free oracle), durable
artifacts must refuse rotted payloads, and the serving layer must meter,
shed and report integrity work like any other degradable feature.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core import Blocking35D, run_naive
from repro.core.buffer import PlaneRing
from repro.distributed import DistributedJacobi
from repro.resilience import (
    FAULTS,
    CheckpointError,
    CheckpointStore,
    GuardedSweep,
    RunReport,
)
from repro.resilience.quarantine import gc_corrupt, quarantine
from repro.resilience.rankrecovery import (
    BuddySnapshot,
    BuddyStore,
    UnrecoverableRankFailureError,
)
from repro.resilience.sdc import (
    INTEGRITY_TIERS,
    MAX_FLIPS_PER_PROBE,
    SdcError,
    SdcGuard,
    SdcReport,
    SdcUnhealableError,
    flip_bits,
    inject_flips,
    make_sdc_case,
    plane_crcs,
    rot_file,
    run_sdc_case,
    write_sdc_bundle,
)
from repro.obs.serving import prometheus_exposition
from repro.serve import JobSpec, ServeCore
from repro.stencils import Field3D, SevenPointStencil

from .conftest import assert_fields_equal
from .test_serve import reference_sha, wait_terminal


@pytest.fixture(autouse=True)
def _clean_faults():
    FAULTS.disarm()
    yield
    FAULTS.disarm()


def guarded(kernel, *, tile=8, dim_t=2, **kw):
    return GuardedSweep(Blocking35D(kernel, dim_t, tile, tile), **kw)


class TestPrimitives:
    def test_plane_crcs_change_with_any_plane(self):
        data = np.zeros((1, 4, 3, 3), dtype=np.float64)
        base = plane_crcs(data)
        assert len(base) == 4
        data[0, 2, 1, 1] = 1.0
        after = plane_crcs(data)
        assert after[2] != base[2]
        assert [after[z] for z in (0, 1, 3)] == [base[z] for z in (0, 1, 3)]

    def test_flip_bits_distinct_finite_and_reversible(self):
        data = np.random.default_rng(0).random((2, 3, 4, 5))
        orig = data.copy()
        flipped = flip_bits(data, 8, entropy=[1, 2])
        assert len({(idx, bit) for idx, bit in flipped}) == 8
        assert np.isfinite(data).all()  # mantissa-only: silent, not loud
        assert not np.array_equal(data, orig)
        flip_bits(data, 8, entropy=[1, 2])  # same entropy: same positions
        np.testing.assert_array_equal(data, orig)

    def test_inject_flips_detail_grammar_and_budget(self):
        data = np.ones((1, 4, 4, 4))
        with FAULTS.injected("memory.flip=0:2:3"):
            assert inject_flips(data, rank=0, round_index=1) == 0
            assert inject_flips(data, rank=1, round_index=2) == 0
            assert inject_flips(data, rank=0, round_index=2) == 3
            assert inject_flips(data, rank=0, round_index=2) == 0  # drained

    def test_inject_flips_unbounded_spec_is_capped(self):
        data = np.ones((1, 8, 8, 8))
        with FAULTS.injected("memory.flip:*"):
            assert inject_flips(data, rank=0, round_index=0) == \
                MAX_FLIPS_PER_PROBE

    def test_rot_file_flips_one_byte(self, tmp_path):
        p = tmp_path / "payload.bin"
        p.write_bytes(b"\x00" * 64)
        assert rot_file(p)
        raw = p.read_bytes()
        assert len(raw) == 64 and raw.count(b"\x40") == 1
        assert not rot_file(tmp_path / "missing.bin")


class TestSdcGuard:
    def _setup(self, tier="spot", steps=2, **kw):
        kernel = SevenPointStencil()
        good = Field3D.random((8, 6, 6), dtype=np.float64, seed=3)
        state = run_naive(kernel, good, steps)
        guard = SdcGuard(kernel, tier=tier, **kw)
        return kernel, guard, good, state, steps

    def test_rejects_unknown_tier(self):
        with pytest.raises(ValueError, match="unknown integrity tier"):
            SdcGuard(SevenPointStencil(), tier="paranoid")
        assert INTEGRITY_TIERS == ("off", "spot", "seal", "full")

    def test_off_tier_is_inert(self):
        _, guard, good, state, s = self._setup(tier="off")
        guard.seal(state)
        guard.verify_seals(state, s, good, 0)
        guard.check_round(state, s, good, 0, 0)
        assert guard.report.checks == 0 and not guard.active

    def test_clean_state_verifies_clean(self):
        _, guard, good, state, s = self._setup()
        guard.seal(state)
        guard.verify_seals(state, s, good, 0)
        guard.check_round(state, s, good, 0, 0)
        assert guard.report.detections == 0
        assert guard.report.checks == 2

    def test_resting_flip_detected_and_healed_bit_exact(self):
        _, guard, good, state, s = self._setup()
        pristine = Field3D(state.data.copy())
        guard.seal(state)
        flip_bits(state.data, 2, entropy=[9])
        guard.verify_seals(state, s, good, 0)
        r = guard.report
        assert r.detections == 1 and r.heals == 1
        assert r.detected_at == [s]
        assert_fields_equal(state, pristine)

    def test_heal_is_surgical_not_full_grid(self):
        kernel, guard, good, state, s = self._setup()
        guard.seal(state)
        state.data[0, 4, 2, 2] += 1e-9  # one plane corrupted
        guard.verify_seals(state, s, good, 0)
        nz, ny, nx = state.shape
        cone = (1 + 2 * kernel.radius * s) * ny * nx * s
        assert 0 < guard.report.replayed_cells <= cone
        assert guard.report.replayed_cells < nz * ny * nx * s

    def test_full_tier_compute_side_corruption_interior_plane(self):
        # regression: check_round passes its whole-grid replay into _heal,
        # whose patch slice must use the replay's own offset (0), not the
        # cone extent's e0 — for an interior plane (e0 > 0) the old code
        # patched with *shifted* planes, corrupting instead of healing
        _, guard, good, state, s = self._setup(tier="full")
        pristine = Field3D(state.data.copy())
        state.data[0, 5, 3, 3] += 1e-9  # interior: cone extent starts > 0
        guard.check_round(state, s, good, 0, 0)
        assert guard.report.detections == 1
        assert_fields_equal(state, pristine)

    def test_heal_budget_exhaustion_raises(self):
        _, guard, good, state, s = self._setup(max_heals=0)
        guard.seal(state)
        flip_bits(state.data, 1, entropy=[4])
        with pytest.raises(SdcUnhealableError, match="heal budget"):
            guard.verify_seals(state, s, good, 0)
        assert guard.report.unhealable == 1

    def test_no_trusted_base_raises(self):
        _, guard, good, state, s = self._setup()
        guard.seal(state)
        flip_bits(state.data, 1, entropy=[4])
        with pytest.raises(SdcUnhealableError, match="no trusted base"):
            guard.verify_seals(state, s, good, good_done=s + 1)

    def test_invalidate_drops_seals(self):
        _, guard, good, state, s = self._setup()
        guard.seal(state)
        guard.invalidate()
        flip_bits(state.data, 1, entropy=[4])
        guard.verify_seals(state, s, good, 0)  # no seals -> no verdict
        assert guard.report.detections == 0

    def test_report_lines_and_degraded(self):
        r = SdcReport(tier="spot")
        assert not r.degraded and r.lines() == []
        r.detections, r.detected_planes, r.heals = 1, 2, 1
        r.detected_at.append(4)
        assert r.degraded
        assert any("sdc detected" in line for line in r.lines())


class TestGuardedSweepIntegrity:
    @pytest.mark.parametrize("tier", ["spot", "seal", "full"])
    def test_flip_healed_bit_exact_every_tier(self, seven_point, tier):
        field = Field3D.random((12, 10, 10), dtype=np.float64, seed=5)
        oracle = run_naive(seven_point, field, 8)
        guard = guarded(seven_point, tile=10, sdc=tier, sdc_seed=7)
        with FAULTS.injected("memory.flip=0:1:2"):
            out = guard.run(field, 8)
        r = guard.sdc.report
        assert r.detections >= 1 and r.heals >= 1
        assert_fields_equal(out, oracle)

    def test_flip_after_final_seal_is_in_window(self, seven_point):
        field = Field3D.random((10, 8, 8), dtype=np.float64, seed=2)
        oracle = run_naive(seven_point, field, 6)
        guard = guarded(seven_point, sdc="full", sdc_seed=1)
        # rounds are 0..2; a flip at the last round lands after its seal
        # and only the post-loop verify can catch it
        with FAULTS.injected("memory.flip=0:2:1"):
            out = guard.run(field, 6)
        assert guard.sdc.report.detections == 1
        assert_fields_equal(out, oracle)

    def test_clean_run_reports_clean(self, seven_point, small_field):
        guard = guarded(seven_point, sdc="full")
        guard.run(small_field, 4)
        r = guard.sdc.report
        assert r.detections == 0 and r.heals == 0
        assert r.checks > 0 and r.sealed_planes > 0

    def test_health_sdc_policy_implies_spot(self, seven_point):
        guard = guarded(seven_point, health="sdc")
        assert guard.sdc is not None and guard.sdc.tier == "spot"

    def test_report_carries_sdc_and_degrades_exit(self, seven_point):
        report = RunReport()
        guard = guarded(seven_point, sdc="full", report=report)
        field = Field3D.random((10, 8, 8), dtype=np.float64, seed=6)
        with FAULTS.injected("memory.flip=0:0:1"):
            guard.run(field, 4)
        assert report.sdc is guard.sdc.report
        assert report.degraded  # healed-but-not-clean maps to exit 3
        assert any("sdc detected" in line for line in report.lines())

    def test_persistent_corruption_raises_unhealable(self, seven_point):
        field = Field3D.random((10, 8, 8), dtype=np.float64, seed=8)
        guard = guarded(seven_point, sdc="full", sdc_max_heals=1)
        with FAULTS.injected("memory.flip:*"):
            with pytest.raises(SdcUnhealableError):
                guard.run(field, 8)


class TestRingIntegrity:
    def test_plane_ring_seal_and_check(self):
        ring = PlaneRing(4, 1, 3, 3, np.float64)
        ring.slot_for(5)[:] = 1.5
        ring.seal(5)
        assert ring.check(5)
        ring.data[5 % 4][0, 1, 1] = 2.0  # a resting flip in ring memory
        assert not ring.check(5)
        assert not ring.check(9)  # recycled slot: liveness miss, not match
        ring.reset()
        assert not ring.check(5)

    def test_ring_flips_at_tile_seams_healed_bit_exact(self, seven_point):
        # tile 6 on an 8-wide axis: multiple XY tiles with loaded seam
        # planes.  The @skip sweep walks the flip probe across every
        # tile's ring loads (interior, seam-adjacent and boundary).  The
        # contract is no *silent* corruption: every run must end
        # bit-exact, and any flip that actually perturbed the sweep must
        # show up as a detection+heal.  (A flip can land in the unused
        # tail of a reused max-size ring slot — harmless by construction,
        # nothing to detect.)
        fired_total = detected = 0
        for skip in range(0, 24, 2):
            field = Field3D.random((6, 8, 8), dtype=np.float64, seed=skip)
            oracle = run_naive(seven_point, field, 4)
            guard = guarded(seven_point, tile=6, sdc="full", sdc_seed=skip)
            fired_before = len(FAULTS.fired)
            with FAULTS.injected(f"memory.flip=ring:1@{skip}"):
                out = guard.run(field, 4)
            fired = sum(
                1 for site, _ in FAULTS.fired[fired_before:]
                if site == "memory.flip"
            )
            assert_fields_equal(out, oracle)
            fired_total += 1 if fired else 0
            detected += 1 if guard.sdc.report.detections else 0
            assert guard.sdc.report.heals == guard.sdc.report.detections
        assert fired_total >= 6  # the sweep really exercised the probe
        assert detected >= 1  # and some flips landed where they matter


class TestDurableDigests:
    def test_checkpoint_roundtrip_keeps_digest(self, tmp_path):
        store = CheckpointStore(tmp_path / "snap.npz")
        data = np.random.default_rng(1).random((1, 6, 5, 5))
        store.save(data, 4)
        snap = store.load()
        assert snap is not None and snap.step == 4
        np.testing.assert_array_equal(snap.data, data)

    def test_bitrot_refused_and_quarantined(self, tmp_path):
        store = CheckpointStore(tmp_path / "snap.npz")
        data = np.random.default_rng(1).random((1, 6, 5, 5))
        with FAULTS.injected("disk.bitrot"):
            store.save(data, 4)
        # the rotted byte either survives container parsing (payload
        # digest mismatch -> loud CheckpointError) or breaks the npz
        # framing (quarantined -> None); both refuse to resume from rot
        try:
            snap = store.load()
        except CheckpointError as exc:
            assert "digest" in str(exc)
        else:
            assert snap is None
        assert not store.path.exists()
        assert list(tmp_path.glob("*.corrupt"))

    def test_buddy_replica_digest_verified(self):
        store = BuddyStore()
        data = np.ones((1, 4, 3, 3))
        store.checkpoint(
            BuddySnapshot(owner=0, round_index=1, z0=0, z1=4, data=data),
            holder=1,
        )
        restored = store.restore(0, alive=lambda r: True)
        np.testing.assert_array_equal(restored.data, data)
        data[0, 2, 1, 1] += 1e-12  # rot the owner's copy in place
        with pytest.raises(UnrecoverableRankFailureError, match="sha256"):
            store.restore(0, alive=lambda r: True)
        # the replica was copied before the rot: still restorable
        replica = store.restore(0, alive=lambda r: r != 0)
        assert replica.sha256 and not np.shares_memory(replica.data, data)


class TestQuarantineGC:
    def test_quarantine_names_are_unique(self, tmp_path):
        paths = []
        for _ in range(3):
            f = tmp_path / "store.json"
            f.write_text("junk")
            paths.append(quarantine(f, keep=10))
        names = [p.name for p in paths]
        assert len(set(names)) == 3
        assert all(n.endswith(".corrupt") for n in names)

    def test_gc_keeps_newest_n(self, tmp_path, monkeypatch):
        import os

        for i in range(6):
            p = tmp_path / f"f{i}.corrupt"
            p.write_text(str(i))
            t = 1_700_000_000 + i
            os.utime(p, (t, t))
        removed = gc_corrupt(tmp_path, keep=2)
        assert len(removed) == 4
        survivors = sorted(p.name for p in tmp_path.glob("*.corrupt"))
        assert survivors == ["f4.corrupt", "f5.corrupt"]
        monkeypatch.setenv("REPRO_CORRUPT_KEEP", "0")
        gc_corrupt(tmp_path)
        assert not list(tmp_path.glob("*.corrupt"))


class TestSdcChaos:
    def test_case_derivation_is_deterministic(self):
        a = make_sdc_case(7)
        b = make_sdc_case(7)
        assert a == b
        assert a.specs and all(
            s.startswith(("memory.flip", "disk.bitrot")) for s in a.specs
        )
        with pytest.raises(ValueError, match="active tier"):
            make_sdc_case(0, tier="off")
        with pytest.raises(ValueError, match="unknown sdc chaos"):
            make_sdc_case(0, schedules=("gamma-ray",))

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_soak_seeds_no_silent_corruption(self, seed):
        result = run_sdc_case(
            make_sdc_case(seed, grid=14, steps=6, dim_t=2)
        )
        assert result.ok, (
            f"seed {seed}: {result.error or 'silent corruption'} "
            f"({result.detections}/{result.flip_rounds_fired} detected)"
        )
        assert result.bit_exact
        if result.flips_fired:
            assert result.detections >= result.flip_rounds_fired
        if result.case.bitrot:
            assert result.bitrot_detected

    def test_bundle_written_for_failures(self, tmp_path):
        result = run_sdc_case(make_sdc_case(1, grid=12, steps=4, dim_t=2))
        bundle = write_sdc_bundle(result, tmp_path)
        assert (bundle / "case.json").exists()
        assert (bundle / "faults.txt").read_text().strip() == \
            ",".join(result.case.specs)


class TestDistributedIntegrity:
    @pytest.mark.parametrize("overlap", [False, True])
    def test_flip_healed_bit_exact(self, seven_point, overlap):
        field = Field3D.random((16, 16, 16), dtype=np.float64, seed=1)
        oracle = run_naive(seven_point, field, 8)
        dj = DistributedJacobi(
            seven_point, 4, dim_t=2, integrity="seal", sdc_seed=3,
            overlap=overlap,
        )
        with FAULTS.injected("memory.flip=1:1:2"):
            out, _ = dj.run(Field3D(field.data.copy()), 8)
        assert dj.sdc_report.detections >= 1
        assert dj.sdc_report.heals >= 1
        assert_fields_equal(out, oracle)

    @pytest.mark.parametrize("overlap", [False, True])
    def test_halo_handshake_is_a_second_line_of_defense(
        self, seven_point, overlap
    ):
        # disable the compute-side seal verification so corrupt planes
        # survive to the halo exchange: the cross-rank checksum handshake
        # must still refuse to consume them (defense in depth; healing
        # needs the seals, so refusal is the contract here)
        class HandshakeOnly(DistributedJacobi):
            def _sdc_verify(self, *args, **kwargs):
                return None

        dj = HandshakeOnly(
            seven_point, 4, dim_t=2, integrity="seal", sdc_seed=0,
            overlap=overlap,
        )
        field = Field3D.random((16, 16, 16), dtype=np.float64, seed=2)
        with FAULTS.injected("memory.flip=1:0:64"):
            with pytest.raises(SdcError):
                dj.run(field, 8)

    def test_unhealable_when_budget_exhausted(self, seven_point):
        dj = DistributedJacobi(
            seven_point, 4, dim_t=2, integrity="seal", sdc_max_heals=0,
        )
        field = Field3D.random((16, 16, 16), dtype=np.float64, seed=3)
        with FAULTS.injected("memory.flip=2:1:1"):
            with pytest.raises(SdcUnhealableError):
                dj.run(field, 8)

    def test_flip_and_crash_coexist(self, seven_point):
        # rank recovery (crash) and SDC healing (flip) are independent
        # defenses; a run suffering both must still end bit-exact
        field = Field3D.random((16, 16, 16), dtype=np.float64, seed=4)
        oracle = run_naive(seven_point, field, 8)
        dj = DistributedJacobi(
            seven_point, 4, dim_t=2, integrity="seal", sdc_seed=5,
        )
        with FAULTS.injected("rank.crash=3@1", "memory.flip=0:2:1"):
            out, _ = dj.run(Field3D(field.data.copy()), 8)
        assert_fields_equal(out, oracle)


class TestServeIntegrity:
    def test_full_tier_heals_meters_and_traces(self, tmp_path):
        core = ServeCore(tmp_path / "s", workers=1, fsync=False)
        core.start()
        spec = JobSpec(grid=12, steps=6, dim_t=2, integrity="full",
                       verify=False, tenant="acme", trace_id="t-sdc")
        with FAULTS.injected("memory.flip=0:1:1"):
            jid = core.submit(spec.to_dict())["id"]
            wait_terminal(core)
        record = core.status(jid)
        assert record.status == "degraded" and record.code == 3
        assert any("healed surgically" in d for d in record.degradations)
        # healed output is bit-identical to the fault-free oracle
        assert record.sha256 == reference_sha(record.spec)
        stats = core.stats()
        counters = stats["metrics"]["counters"]
        for name in ("sdc.checks", "sdc.detected", "sdc.healed",
                     "sdc.replayed_cells"):
            assert counters.get(name, 0) >= 1, name
        assert stats["tenants"]["acme"]["verify_cpu_ns"] > 0
        assert stats["ledger_mismatches"] == []
        # the counters ride the normal stats -> prometheus path
        prom = prometheus_exposition(stats["metrics"])
        assert "repro_sdc_detected_total" in prom
        assert "repro_sdc_replayed_cells_total" in prom
        names = [s["name"] for s in core.spans(jid)]
        assert "sdc_check" in names and "sdc_heal" in names
        assert core.drain()

    def test_clean_full_tier_job_is_not_degraded(self, tmp_path):
        core = ServeCore(tmp_path / "s", workers=1, fsync=False)
        core.start()
        spec = JobSpec(grid=12, steps=4, integrity="full", tenant="acme")
        jid = core.submit(spec.to_dict())["id"]
        wait_terminal(core)
        record = core.status(jid)
        assert record.status == "done" and record.code == 0
        # verification work is still metered even when nothing is found
        assert core.stats()["tenants"]["acme"]["verify_cpu_ns"] > 0
        assert core.drain()

    def test_amber_overload_sheds_integrity_tier(self, tmp_path):
        core = ServeCore(tmp_path / "s", workers=1, queue_cap=2,
                         degrade_at=0.0, fsync=False)
        core.start()  # degrade_at=0: any queue depth counts as amber
        jid = core.submit(JobSpec(grid=12, steps=4, integrity="full",
                                  verify=False).to_dict())["id"]
        core.submit(JobSpec(grid=12, steps=4, seed=1,
                            verify=False).to_dict())
        wait_terminal(core)
        record = core.status(jid)
        assert record.status == "degraded" and record.code == 3
        assert any("integrity tier full shed" in d
                   for d in record.degradations)
        assert record.sha256 == reference_sha(record.spec)
        assert core.counters["sdc_shed"] >= 1
        assert core.drain()

    def test_unknown_tier_rejected_at_submit(self, tmp_path):
        core = ServeCore(tmp_path / "s", workers=1, fsync=False)
        core.start()
        doc = JobSpec(grid=10, steps=2).to_dict()
        doc["integrity"] = "paranoid"
        reply = core.submit(doc)
        assert not reply["ok"]
        assert "integrity" in reply["reason"]
        assert core.drain()


class TestCliSdc:
    def test_run_verify_full_heals_and_exits_degraded(self, capsys):
        with FAULTS.injected("memory.flip=0:1:1"):
            rc = cli_main([
                "run", "--grid", "12", "--steps", "6", "--dim-t", "2",
                "--verify", "full",
            ])
        out = capsys.readouterr().out
        assert rc == 3
        assert "bit-identical to the naive reference" in out
        assert "sdc detected" in out

    def test_run_verify_full_unhealable_exits_failed(self, capsys):
        with FAULTS.injected("memory.flip:*"):
            rc = cli_main([
                "run", "--grid", "12", "--steps", "6", "--dim-t", "2",
                "--verify", "full",
            ])
        assert rc == 4

    def test_faults_env_is_honored(self, capsys, monkeypatch):
        # the CI smoke arms sites via $REPRO_FAULTS with no CLI plumbing
        monkeypatch.setenv("REPRO_FAULTS", "memory.flip=0:1:1")
        rc = cli_main([
            "run", "--grid", "12", "--steps", "6", "--dim-t", "2",
            "--verify", "full",
        ])
        assert rc == 3

    def test_faults_list_documents_sdc_sites(self, capsys):
        assert cli_main(["faults"]) == 0
        out = capsys.readouterr().out
        assert "memory.flip" in out and "disk.bitrot" in out
        assert "memory.flip=ring" in out  # the grammar examples

    def test_chaos_target_sdc_clean_seed(self, capsys):
        rc = cli_main([
            "chaos", "--target", "sdc", "--seeds", "1", "--grid", "14",
            "--steps", "6",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "clean" in out

    def test_tune_prune_sweeps_quarantine(self, tmp_path, capsys,
                                          monkeypatch):
        cache_dir = tmp_path / "cache"
        cache_dir.mkdir()
        monkeypatch.setenv("REPRO_TUNE_CACHE", str(cache_dir / "tuning.json"))
        monkeypatch.setenv("REPRO_CORRUPT_KEEP", "2")
        for i in range(5):
            (cache_dir / f"old{i}.corrupt").write_text("x")
        rc = cli_main(["tune", "--prune"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "quarantine" in out
        assert len(list(cache_dir.glob("*.corrupt"))) == 2
