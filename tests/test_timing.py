"""Tests for the parallel-execution timing simulator (Section VII-A claims)."""

import pytest

from repro.machine import (
    CORE_I7,
    FAST_BARRIER_S,
    PTHREAD_BARRIER_S,
    scaling_curve,
    simulate_parallel_run,
)


class TestTimedRun:
    def test_basic_accounting(self):
        r = simulate_parallel_run(CORE_I7, 128, 4, 16, 4.0, 2, 128, 4)
        assert r.total_s > 0
        assert r.total_s >= max(r.compute_s, r.memory_s)
        assert r.iterations > 0
        assert 0 <= r.barrier_fraction < 1
        assert r.mupdates_per_s > 0

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            simulate_parallel_run(CORE_I7, 64, 2, 16, 4.0, 2, 4, 4)  # tile too small
        with pytest.raises(ValueError):
            simulate_parallel_run(CORE_I7, 64, 2, 16, 4.0, 2, 64, 0)

    def test_more_threads_not_slower(self):
        times = [
            simulate_parallel_run(CORE_I7, 128, 4, 16, 4.0, 2, 360, t).total_s
            for t in (1, 2, 4)
        ]
        assert times == sorted(times, reverse=True)


class TestScalingClaims:
    def test_near_linear_scaling_with_fast_barrier(self):
        """Section VII-A: 'scales near-linearly with the available cores'."""
        curve = scaling_curve(CORE_I7, tile=360)
        assert curve[4] > 3.6  # paper measured 3.6X; the simulator excludes
        # memory contention so it sits at the optimistic end
        assert curve[2] > 1.9

    def test_pthread_barrier_hurts(self):
        """The '50X faster barrier' claim's mechanism."""
        fast = scaling_curve(CORE_I7, tile=360, barrier_s=FAST_BARRIER_S)
        slow = scaling_curve(CORE_I7, tile=360, barrier_s=PTHREAD_BARRIER_S)
        assert slow[4] < fast[4]

    def test_small_tiles_amplify_barrier_cost(self):
        """LBM-class small tiles + slow barrier: scaling collapses.

        This is exactly why the paper implements its own barrier — one
        barrier per z-iteration at dim_X = 64 leaves little work between
        synchronizations.
        """
        slow_small = scaling_curve(CORE_I7, tile=64, barrier_s=PTHREAD_BARRIER_S)
        slow_large = scaling_curve(CORE_I7, tile=360, barrier_s=PTHREAD_BARRIER_S)
        assert slow_small[4] < 2.0 < slow_large[4]
        fast_small = scaling_curve(CORE_I7, tile=64, barrier_s=FAST_BARRIER_S)
        assert fast_small[4] > 3.0  # the fast barrier rescues small tiles

    def test_barrier_fraction_scales_with_cost(self):
        fast = simulate_parallel_run(
            CORE_I7, 128, 4, 16, 4.0, 2, 64, 4, barrier_s=FAST_BARRIER_S
        )
        slow = simulate_parallel_run(
            CORE_I7, 128, 4, 16, 4.0, 2, 64, 4, barrier_s=PTHREAD_BARRIER_S
        )
        assert fast.barrier_fraction < 0.2
        assert slow.barrier_fraction > 0.5  # the pthread barrier dominates
