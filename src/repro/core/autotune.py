"""Empirical auto-tuning: pick blocking parameters by measurement.

The analytic tuner (:mod:`repro.core.tuner`) applies the paper's closed
forms.  The related work the paper compares against (Datta et al.) instead
*searches* the parameter space with measurements; this module provides that
style on top of our traffic counters: run one blocked round of each
candidate configuration on a small probe grid, measure the external traffic
and executed ops, convert both to a roofline time on the target machine,
and rank.

On the paper's configurations the empirical search lands on the same knee
as Equation 3/4 (the test suite checks this agreement) — the two tuners
cross-validate each other.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..stencils.base import PlaneKernel
from ..stencils.grid import Field3D, interior_points
from .blocking35d import Blocking35D
from .params import capacity_bytes_needed
from .traffic import TrafficStats

__all__ = ["Candidate", "autotune_empirical"]


@dataclass(frozen=True)
class Candidate:
    """One measured configuration, ranked by predicted roofline time."""

    dim_t: int
    tile: int
    bytes_per_update: float
    ops_per_update: float
    predicted_time_per_update: float
    buffer_bytes: int
    fits_capacity: bool


def autotune_empirical(
    kernel: PlaneKernel,
    machine,
    dtype=np.float32,
    probe_shape: tuple[int, int, int] = (12, 96, 96),
    dim_t_candidates: tuple[int, ...] = (1, 2, 3, 4, 6),
    tile_candidates: tuple[int, ...] | None = None,
    capacity: int | None = None,
    precision: str | None = None,
    seed: int = 0,
    backend: str | None = None,
) -> list[Candidate]:
    """Measure candidate (dim_T, tile) configurations; best first.

    Predicted time per update is the roofline
    ``max(bytes / achievable_BW, ops / stencil_ops_rate)`` using *measured*
    bytes and ops per update (so the probe grid's real edge effects and κ
    are included).  Configurations whose Equation-1 buffer exceeds the
    capacity are measured but marked and ranked after fitting ones.

    ``backend`` names a kernel backend from :mod:`repro.perf.backends` to run
    the probe sweeps with (the traffic model is backend-independent, but the
    wall-clock of the search itself benefits from the hot-path backends).
    """
    if precision is None:
        precision = "sp" if np.dtype(dtype).itemsize == 4 else "dp"
    if backend is not None:
        # lazy import: repro.core must not depend on repro.perf at module level
        from ..perf.backends import wrap_kernel

        kernel = wrap_kernel(kernel, backend)
    cap = machine.blocking_capacity if capacity is None else capacity
    esize = kernel.element_size(dtype)
    field = Field3D.random(probe_shape, ncomp=kernel.ncomp, dtype=dtype, seed=seed)
    npts = interior_points(probe_shape, kernel.radius)
    bw = machine.achievable_bandwidth
    ops_rate = machine.stencil_ops(precision)

    if tile_candidates is None:
        tile_candidates = tuple(
            t for t in (16, 24, 32, 48, 64, 96) if t <= min(probe_shape[1:])
        )

    results: list[Candidate] = []
    for dim_t in dim_t_candidates:
        for tile in tile_candidates:
            if tile <= 2 * kernel.radius * dim_t:
                continue
            traffic = TrafficStats()
            try:
                Blocking35D(kernel, dim_t, tile, tile).run(field, dim_t, traffic)
            except ValueError:
                continue
            bpu = traffic.total_bytes / (npts * dim_t)
            opu = traffic.ops / (npts * dim_t)
            time_pu = max(bpu / bw, opu / ops_rate)
            buf = capacity_bytes_needed(esize, kernel.radius, dim_t, tile, tile)
            results.append(
                Candidate(
                    dim_t=dim_t,
                    tile=tile,
                    bytes_per_update=bpu,
                    ops_per_update=opu,
                    predicted_time_per_update=time_pu,
                    buffer_bytes=buf,
                    fits_capacity=buf <= cap,
                )
            )
    if not results:
        raise ValueError("no feasible candidate configurations")
    results.sort(key=lambda c: (not c.fits_capacity, c.predicted_time_per_update))
    return results
