"""Multiple-relaxation-time (MRT) collision for D3Q19.

BGK relaxes every kinetic moment at the single rate ω, which couples the
shear viscosity to the (physically irrelevant) ghost-moment damping and
limits stability at low viscosity.  MRT (d'Humieres et al.) relaxes each
moment group at its own rate:

.. math::

   f' = f - M^{-1} S M (f - f^{eq})

where ``M`` maps distributions to moments and ``S`` is diagonal.  We build
``M`` by Gram-Schmidt orthonormalization of tagged velocity polynomials, so
``M^{-1} = M^T`` exactly and each row is attributable to a moment group:

* **conserved** — density and momentum (rate irrelevant: the equilibrium
  carries the same values);
* **shear** — the five traceless second-order moments; their rate ``s_nu``
  sets the shear viscosity ``nu = (1/s_nu - 1/2)/3``;
* **bulk** — the energy moment; sets the bulk viscosity;
* **ghost** — everything higher order; damping them hard (rates near 2 are
  common) improves stability without touching the hydrodynamics.

With all rates equal to ω, MRT reduces to BGK (numerically, to rounding).
The physics tests verify that the *shear* rate alone controls the measured
shear-wave viscosity while the ghost rates do not.
"""

from __future__ import annotations

import numpy as np

from .d3q19 import N_DIRECTIONS, VELOCITIES
from .kernel import LBMKernel

__all__ = ["moment_basis", "MRTLBMKernel", "collide_mrt"]


def _candidate_polynomials() -> list[tuple[str, np.ndarray]]:
    """Tagged velocity polynomials spanning the D3Q19 function space."""
    c = VELOCITIES.astype(np.float64)
    z, y, x = c[:, 0], c[:, 1], c[:, 2]
    csq = x * x + y * y + z * z
    return [
        ("conserved", np.ones(N_DIRECTIONS)),
        ("conserved", z),
        ("conserved", y),
        ("conserved", x),
        ("bulk", csq),
        ("shear", x * x - y * y),
        ("shear", y * y - z * z),
        ("shear", x * y),
        ("shear", y * z),
        ("shear", z * x),
        ("ghost", x * csq),
        ("ghost", y * csq),
        ("ghost", z * csq),
        ("ghost", x * (y * y - z * z)),
        ("ghost", y * (z * z - x * x)),
        ("ghost", z * (x * x - y * y)),
        ("ghost", csq * csq),
        ("ghost", x * x * csq),
        ("ghost", y * y * csq),
        ("ghost", x * x * y * y),
        ("ghost", y * y * z * z),
    ]


def moment_basis() -> tuple[np.ndarray, list[str]]:
    """Orthonormal moment matrix ``M`` (19x19) and per-row group tags.

    Rows are produced by Gram-Schmidt over the tagged candidates; linearly
    dependent candidates are dropped, leaving exactly 19 orthonormal rows
    (so ``M @ M.T == I`` and the inverse transform is the transpose).
    """
    rows: list[np.ndarray] = []
    groups: list[str] = []
    for group, poly in _candidate_polynomials():
        v = poly.astype(np.float64).copy()
        for r in rows:
            v -= (v @ r) * r
        norm = np.linalg.norm(v)
        if norm < 1e-10:
            continue  # dependent on earlier candidates
        rows.append(v / norm)
        groups.append(group)
    if len(rows) != N_DIRECTIONS:
        raise RuntimeError(f"basis has {len(rows)} rows, expected {N_DIRECTIONS}")
    return np.array(rows), groups


_M, _GROUPS = moment_basis()


def relaxation_rates(
    s_nu: float,
    s_bulk: float | None = None,
    s_ghost: float | None = None,
) -> np.ndarray:
    """Diagonal of S by moment group (conserved moments get rate 1)."""
    s_bulk = s_nu if s_bulk is None else s_bulk
    s_ghost = s_nu if s_ghost is None else s_ghost
    table = {"conserved": 1.0, "shear": s_nu, "bulk": s_bulk, "ghost": s_ghost}
    return np.array([table[g] for g in _GROUPS])


def collision_matrix(rates: tuple[float, ...]) -> np.ndarray:
    """The combined operator ``K = M^T diag(rates) M`` for a rate vector."""
    r = np.asarray(rates, dtype=np.float64)
    if r.shape != (N_DIRECTIONS,):
        raise ValueError(f"need {N_DIRECTIONS} rates, got {r.shape}")
    return _M.T @ (r[:, np.newaxis] * _M)


def collide_mrt(f: np.ndarray, rates: np.ndarray) -> np.ndarray:
    """MRT collision: relax each moment of ``f`` toward equilibrium.

    The moment transform is applied as an explicit sequential accumulation
    of the precomputed ``M^T S M`` matrix rather than a BLAS matmul: BLAS
    blocking depends on the trailing array shape at the last-bit level,
    which would break the bit-exactness contract between blocking schedules
    (the same pitfall as ``np.sum(axis=0)``; see ``collide_bgk``).
    """
    from .collision import equilibrium

    f = np.asarray(f)
    dtype = f.dtype
    # sequential reductions, as in collide_bgk
    rho = f[0].copy()
    for i in range(1, N_DIRECTIONS):
        rho += f[i]
    u = np.zeros((3,) + f.shape[1:], dtype=dtype)
    for i in range(N_DIRECTIONS):
        cz, cy, cx = VELOCITIES[i]
        if cz:
            u[0] += dtype.type(cz) * f[i]
        if cy:
            u[1] += dtype.type(cy) * f[i]
        if cx:
            u[2] += dtype.type(cx) * f[i]
    u *= dtype.type(1.0) / rho
    feq = equilibrium(rho, u)
    delta = f - feq
    K = collision_matrix(tuple(np.asarray(rates)))
    out = f.copy()
    for i in range(N_DIRECTIONS):
        acc = dtype.type(K[i, 0]) * delta[0]
        for j in range(1, N_DIRECTIONS):
            acc += dtype.type(K[i, j]) * delta[j]
        out[i] -= acc
    return out


class MRTLBMKernel(LBMKernel):
    """D3Q19 pull stream + MRT collide, drop-in for :class:`LBMKernel`."""

    def __init__(
        self,
        flags: np.ndarray,
        s_nu: float = 1.0,
        s_bulk: float | None = None,
        s_ghost: float | None = None,
    ) -> None:
        # reuse the base validation; omega doubles as the shear rate
        super().__init__(flags, omega=s_nu)
        self.rates = relaxation_rates(s_nu, s_bulk, s_ghost)
        self.s_nu = s_nu

    def __repr__(self) -> str:
        return f"MRTLBMKernel(s_nu={self.s_nu}, shape={self.flags.shape})"

    def padded_for(self, halo: int, shape):
        base = LBMKernel.padded_for(self, halo, shape)
        if base is self:
            return self
        out = MRTLBMKernel(base.flags, s_nu=self.s_nu)
        out.rates = self.rates
        return out

    def restricted_to(self, zlo: int, zhi: int) -> "MRTLBMKernel":
        base = LBMKernel.restricted_to(self, zlo, zhi)
        out = MRTLBMKernel(base.flags, s_nu=self.s_nu)
        out.rates = self.rates
        return out

    def _collide(self, f_in: np.ndarray) -> np.ndarray:
        return collide_mrt(f_in, self.rates)
