"""A simulated message-passing communicator (the mpi4py stand-in).

The paper's temporal-blocking lineage extends to distributed memory
(Wittmann, Hager & Wellein, cited in Section II): blocking ``dim_T`` steps
per halo exchange trades message *frequency* for ghost-zone width.  No MPI
runtime is available here, so this module provides a deterministic
in-process communicator with the mpi4py buffer-protocol flavor —
``send``/``recv`` of NumPy arrays by (source, dest, tag) — plus the
accounting a performance study needs: per-rank message and byte counters
and a latency/bandwidth cost model.

Ranks execute sequentially inside the driver (a valid schedule of the real
parallel execution); all sends of a phase complete before the matching
receives, like buffered MPI sends.

Long-running sweeps must survive imperfect transport, so the communicator
also models it: a deterministic per-transmission *loss/corruption* mode
(``loss``/``corruption`` probabilities under a seeded RNG, plus the
``comm.drop``/``comm.corrupt`` fault sites) with a simple ack/retry
protocol on top.  Every payload travels with a checksum; a receiver that
finds the message dropped or checksummed wrong requests a retransmission
from the sender's reliable outbox, up to ``max_retries`` times, before
:class:`CommFailedError` surfaces.  Retries are counted per rank in
:class:`CommStats`, so the cost of an unreliable link is measurable.  The
``comm.delay`` fault site models an ack delayed past its timeout: the
payload is fine but the receiver requests a redundant retransmission.

Ranks can also *die*.  :meth:`SimComm.kill` marks a rank dead, and
:meth:`SimComm.heartbeat` — probed once per rank per blocked round by the
distributed driver — is where the ``rank.crash[=rank][@rounds]`` fault
site fires.  A dead rank never hangs its peers: any receive from (or send
by) a dead rank raises :class:`~repro.resilience.rankrecovery.RankDeadError`
immediately, so failure detection happens at the next halo exchange and
the driver's buddy-checkpoint recovery path takes over (see
:mod:`repro.resilience.rankrecovery`).
"""

from __future__ import annotations

import zlib
from collections import deque
from dataclasses import dataclass

import numpy as np

from ..resilience.faultinject import FAULTS, ResilienceError
from ..resilience.rankrecovery import RankDeadError

__all__ = [
    "CommFailedError",
    "CommStats",
    "RankDeadError",
    "SimComm",
    "transfer_time",
]


class CommFailedError(ResilienceError):
    """A message stayed undeliverable after every allowed retransmission."""


@dataclass
class CommStats:
    """Per-rank communication counters."""

    messages_sent: int = 0
    messages_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    dropped: int = 0
    corrupted: int = 0
    delayed: int = 0
    retries: int = 0

    def merge(self, other: "CommStats") -> None:
        self.messages_sent += other.messages_sent
        self.messages_received += other.messages_received
        self.bytes_sent += other.bytes_sent
        self.bytes_received += other.bytes_received
        self.dropped += other.dropped
        self.corrupted += other.corrupted
        self.delayed += other.delayed
        self.retries += other.retries


class _Message:
    """One in-flight message: pristine retransmit copy plus the wire state."""

    __slots__ = ("pristine", "wire", "checksum")

    def __init__(self, pristine: np.ndarray, wire: np.ndarray | None,
                 checksum: int) -> None:
        self.pristine = pristine
        self.wire = wire  # None = lost in flight
        self.checksum = checksum


def _checksum(array: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(array).tobytes())


class SimComm:
    """An in-process communicator for ``size`` ranks.

    ``loss`` and ``corruption`` are per-transmission probabilities drawn
    from a ``seed``-initialized RNG (deterministic across runs); the
    ``comm.drop``/``comm.corrupt`` fault sites force the same fates
    regardless of the probabilities.  ``max_retries`` bounds the
    retransmissions the ack/retry protocol attempts per message.
    """

    def __init__(
        self,
        size: int,
        *,
        loss: float = 0.0,
        corruption: float = 0.0,
        seed: int = 0,
        max_retries: int = 3,
    ) -> None:
        if size < 1:
            raise ValueError("size must be >= 1")
        if not 0.0 <= loss < 1.0 or not 0.0 <= corruption < 1.0:
            raise ValueError("loss/corruption must be probabilities in [0, 1)")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        self.size = size
        self.loss = loss
        self.corruption = corruption
        self.max_retries = max_retries
        self._rng = np.random.default_rng(seed)
        self._mail: dict[tuple[int, int, int], deque[_Message]] = {}
        self._dead: set[int] = set()
        self.stats = [CommStats() for _ in range(size)]

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} outside [0, {self.size})")

    # -- liveness ------------------------------------------------------
    @property
    def dead(self) -> frozenset[int]:
        """The ranks that have died so far."""
        return frozenset(self._dead)

    def alive(self, rank: int) -> bool:
        self._check_rank(rank)
        return rank not in self._dead

    def live_ranks(self) -> list[int]:
        return [r for r in range(self.size) if r not in self._dead]

    def kill(self, rank: int) -> None:
        """Mark ``rank`` dead.  Its pending mail stays queued but any
        receive from it raises :class:`RankDeadError` — peers detect the
        death at their next exchange instead of hanging on a message that
        will never arrive."""
        self._check_rank(rank)
        self._dead.add(rank)

    def heartbeat(self, rank: int) -> bool:
        """One liveness probe, fired per rank per blocked round.

        The ``rank.crash`` fault site is consulted here (``arg`` = rank id,
        ``@after`` = heartbeats survived, i.e. rounds), so deterministic
        mid-run crashes are expressible as ``rank.crash=2@3``.  Returns
        whether the rank is (still) alive.
        """
        self._check_rank(rank)
        if rank in self._dead:
            return False
        if FAULTS.should("rank.crash", detail=str(rank)):
            self.kill(rank)
            return False
        return True

    def purge(self) -> int:
        """Drop all undelivered mail (recovery abandons the broken round);
        returns the number of messages discarded."""
        count = sum(len(q) for q in self._mail.values())
        self._mail.clear()
        return count

    # -- transport -----------------------------------------------------
    def _transmit(self, src: int, payload: np.ndarray) -> np.ndarray | None:
        """One transmission attempt: the wire copy, corrupted, or ``None``.

        The fault sites are consulted first (so tests can force fates
        deterministically), then the seeded RNG applies the configured
        loss/corruption probabilities.
        """
        if FAULTS.should("comm.drop", detail=str(src)):
            fate = "drop"
        elif FAULTS.should("comm.corrupt", detail=str(src)):
            fate = "corrupt"
        elif self.loss and self._rng.random() < self.loss:
            fate = "drop"
        elif self.corruption and self._rng.random() < self.corruption:
            fate = "corrupt"
        else:
            return payload
        if fate == "drop":
            self.stats[src].dropped += 1
            return None
        wire = payload.copy()
        flat = wire.reshape(-1).view(np.uint8)
        if flat.size == 0:  # nothing to corrupt: treat as a drop
            self.stats[src].dropped += 1
            return None
        flat[int(self._rng.integers(flat.size))] ^= 0xFF  # single bit-level hit
        self.stats[src].corrupted += 1
        return wire

    def send(self, src: int, dst: int, tag: int, array: np.ndarray) -> None:
        """Buffered send: the payload is copied at send time (MPI semantics).

        The pristine copy stays in the sender's outbox until delivery, so
        the receiver-driven retry protocol can retransmit it.  A dead rank
        cannot send; sending *to* a dead rank completes locally (buffered
        semantics — the payload is purged during recovery).
        """
        self._check_rank(src)
        self._check_rank(dst)
        if src in self._dead:
            raise RankDeadError(src, f"dead rank {src} cannot send")
        payload = np.ascontiguousarray(array).copy()
        wire = self._transmit(src, payload)
        msg = _Message(payload, wire, _checksum(payload))
        self._mail.setdefault((src, dst, tag), deque()).append(msg)
        self.stats[src].messages_sent += 1
        self.stats[src].bytes_sent += payload.nbytes

    def recv(self, src: int, dst: int, tag: int) -> np.ndarray:
        """Receive the oldest matching message; raises if none is pending.

        A dropped or corrupted wire copy triggers the ack/retry protocol:
        the receiver requests a retransmission of the pristine payload
        (each resend counted against both ranks) until it checksums clean
        or ``max_retries`` is exhausted (:class:`CommFailedError`).

        Receiving from a dead rank raises :class:`RankDeadError` at once —
        this is the failure-detection point of the distributed driver: a
        crashed neighbor is noticed at the next halo exchange, never waited
        on.  The ``comm.delay`` fault site fires here too: the ack timer
        expires on a healthy payload and a redundant retransmission is
        requested (counted as ``delayed`` + one retry).
        """
        self._check_rank(src)
        self._check_rank(dst)
        if src in self._dead:
            raise RankDeadError(
                src, f"rank {src} died; detected by rank {dst} at halo exchange"
            )
        if dst in self._dead:
            raise RankDeadError(dst, f"dead rank {dst} cannot receive")
        box = self._mail.get((src, dst, tag))
        if not box:
            raise LookupError(
                f"no message from rank {src} to rank {dst} with tag {tag}"
            )
        msg = box.popleft()
        wire = msg.wire
        if wire is not None and FAULTS.should("comm.delay", detail=str(src)):
            # the ack never made it back in time: discard the (healthy)
            # wire copy and let the retry protocol fetch it again
            self.stats[dst].delayed += 1
            wire = None
        attempts = 0
        while wire is None or _checksum(wire) != msg.checksum:
            if attempts >= self.max_retries:
                raise CommFailedError(
                    f"message {src}->{dst} (tag {tag}) undeliverable after "
                    f"{attempts} retransmission(s)"
                )
            attempts += 1
            self.stats[dst].retries += 1
            # nack + retransmit from the sender's reliable outbox
            self.stats[src].messages_sent += 1
            self.stats[src].bytes_sent += msg.pristine.nbytes
            wire = self._transmit(src, msg.pristine)
        self.stats[dst].messages_received += 1
        self.stats[dst].bytes_received += wire.nbytes
        return wire

    def sendrecv(
        self,
        rank: int,
        dest: int,
        send_array: np.ndarray,
        source: int,
        tag: int,
    ) -> np.ndarray:
        """Exchange with two partners, the halo-exchange primitive."""
        self.send(rank, dest, tag, send_array)
        return self.recv(source, rank, tag)

    def pending(self) -> int:
        """Messages sent but not yet received (0 after a clean exchange)."""
        return sum(len(q) for q in self._mail.values())

    def total_stats(self) -> CommStats:
        total = CommStats()
        for s in self.stats:
            total.merge(s)
        return total


def transfer_time(
    messages: int,
    nbytes: int,
    latency_s: float = 1e-6,
    bandwidth_bytes_s: float = 10e9,
) -> float:
    """Alpha-beta communication cost: messages*latency + bytes/bandwidth.

    Temporal blocking keeps the byte term constant (the same planes cross
    per simulated time step) while dividing the latency term by ``dim_T``.
    """
    return messages * latency_s + nbytes / bandwidth_bytes_s
