"""Plain-text bar charts for the paper's figures (no plotting dependency).

Renders Figure-4-style grouped series and Figure-5-style breakdowns as
aligned ASCII bars, so the reproduction report is readable in any terminal
or log file.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

__all__ = ["bar_chart", "grouped_bar_chart", "breakdown_chart", "roofline_chart"]

_BAR = "#"


def bar_chart(
    values: Mapping[str, float],
    width: int = 50,
    unit: str = "",
    title: str = "",
) -> str:
    """One bar per (label, value), scaled to the maximum."""
    if not values:
        return title
    peak = max(values.values())
    label_w = max(len(k) for k in values)
    lines = [title] if title else []
    for label, v in values.items():
        bar = _BAR * (round(v / peak * width) if peak > 0 else 0)
        lines.append(f"{label.ljust(label_w)} | {bar} {v:,.0f}{unit}")
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Mapping[str, Mapping[str, float]],
    width: int = 40,
    unit: str = "",
    title: str = "",
) -> str:
    """Figure-4 style: one group (grid size / precision) of bars per row set."""
    peak = max(v for g in groups.values() for v in g.values())
    label_w = max(len(k) for g in groups.values() for k in g)
    lines = [title] if title else []
    for group_name, series in groups.items():
        lines.append(f"{group_name}:")
        for label, v in series.items():
            bar = _BAR * (round(v / peak * width) if peak > 0 else 0)
            lines.append(f"  {label.ljust(label_w)} | {bar} {v:,.0f}{unit}")
    return "\n".join(lines)


def breakdown_chart(stages: Sequence, width: int = 40, title: str = "") -> str:
    """Figure-5 style: cumulative optimization bars, model vs paper."""
    peak = max(max(s.modeled_mups, s.paper_mups) for s in stages)
    label_w = max(len(s.name) for s in stages)
    lines = [title] if title else []
    for s in stages:
        model_bar = _BAR * round(s.modeled_mups / peak * width)
        paper_bar = "." * round(s.paper_mups / peak * width)
        lines.append(
            f"{s.name.ljust(label_w)} | {model_bar} {s.modeled_mups:,.0f} (model)"
        )
        lines.append(
            f"{''.ljust(label_w)} | {paper_bar} {s.paper_mups:,.0f} (paper)"
        )
    return "\n".join(lines)


def roofline_chart(
    machine,
    points: Mapping[str, tuple[float, float]],
    precision: str = "sp",
    width: int = 56,
    height: int = 14,
) -> str:
    """ASCII roofline: machine ceilings with kernel points overlaid.

    ``points`` maps labels to ``(bytes_per_op, ops_per_update_rate)`` pairs
    where the rate is in updates/s times ops/update — i.e. achieved ops/s.
    Axes are log-scaled: x = operational intensity (ops/byte),
    y = achieved ops/s.
    """
    import math

    bw = machine.achievable_bandwidth
    peak = machine.stencil_ops(precision)
    # x-range: around the ridge point intensity = peak / bw
    ridge = peak / bw
    x_lo, x_hi = ridge / 32, ridge * 32
    y_hi, y_lo = peak * 2, peak / 256

    def x_col(intensity):
        t = (math.log(intensity) - math.log(x_lo)) / (math.log(x_hi) - math.log(x_lo))
        return min(width - 1, max(0, int(t * (width - 1))))

    def y_row(ops):
        t = (math.log(ops) - math.log(y_lo)) / (math.log(y_hi) - math.log(y_lo))
        return min(height - 1, max(0, height - 1 - int(t * (height - 1))))

    grid = [[" "] * width for _ in range(height)]
    for c in range(width):
        intensity = x_lo * (x_hi / x_lo) ** (c / (width - 1))
        attainable = min(peak, bw * intensity)
        r = y_row(max(attainable, y_lo))
        grid[r][c] = "-" if attainable >= peak else "/"
    marks = []
    for i, (label, (bytes_per_op, achieved_ops)) in enumerate(points.items()):
        intensity = 1.0 / bytes_per_op
        r, c = y_row(max(achieved_ops, y_lo)), x_col(intensity)
        sym = chr(ord("A") + i)
        grid[r][c] = sym
        marks.append(f"  {sym} = {label}")
    lines = [f"roofline: {machine.name} ({precision.upper()})"]
    lines += ["|" + "".join(row) for row in grid]
    lines.append("+" + "-" * width + "> ops/byte (log)")
    lines += marks
    return "\n".join(lines)
