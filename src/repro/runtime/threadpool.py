"""A persistent worker pool (the pthreads analog of Section VI).

The paper keeps one pthread per core alive for the whole run and
synchronizes them with its software barrier; spawning threads per time step
would dwarf the stencil work.  This pool mirrors that: N persistent workers,
each with a task queue, plus a ``run_spmd`` entry that hands every worker
the same function with its thread id — the SPMD launch shape of the 3.5D
algorithm.

The pool is a context manager and its :meth:`~WorkerPool.shutdown` is
idempotent and thread-safe: closing twice, or closing after a worker raised,
must neither hang nor raise.  Each ``run_spmd`` launch carries a generation
tag so completions left over from an interrupted launch (e.g. the caller was
interrupted between enqueueing and draining) can never satisfy a later
launch's join.
"""

from __future__ import annotations

import queue
import threading
from collections.abc import Callable

__all__ = ["WorkerPool"]


class WorkerPool:
    """N persistent worker threads executing SPMD tasks."""

    def __init__(self, n_threads: int) -> None:
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        self.n_threads = n_threads
        self._queues: list[queue.Queue] = [queue.Queue() for _ in range(n_threads)]
        self._done: queue.Queue = queue.Queue()
        self._shutdown = False
        self._generation = 0
        self._lock = threading.Lock()
        self._threads = [
            threading.Thread(target=self._worker, args=(tid,), daemon=True)
            for tid in range(n_threads)
        ]
        for t in self._threads:
            t.start()

    @property
    def closed(self) -> bool:
        """True once :meth:`shutdown` has begun."""
        return self._shutdown

    def _worker(self, tid: int) -> None:
        q = self._queues[tid]
        while True:
            task = q.get()
            if task is None:
                return
            gen, fn = task
            try:
                fn(tid)
                self._done.put((gen, tid, None))
            except BaseException as exc:  # propagate to the caller
                self._done.put((gen, tid, exc))

    def run_spmd(self, fn: Callable[[int], None]) -> None:
        """Run ``fn(thread_id)`` on every worker; blocks until all finish.

        The first worker exception is re-raised in the caller (after all
        workers of this launch have finished, so the pool stays reusable).
        Launches are serialized: concurrent callers take turns.
        """
        with self._lock:
            if self._shutdown:
                raise RuntimeError("pool is shut down")
            self._generation += 1
            gen = self._generation
            for q in self._queues:
                q.put((gen, fn))
            first_exc: BaseException | None = None
            remaining = self.n_threads
            while remaining > 0:
                got_gen, _, exc = self._done.get()
                if got_gen != gen:
                    # stale completion from an interrupted earlier launch
                    continue
                remaining -= 1
                if exc is not None and first_exc is None:
                    first_exc = exc
            if first_exc is not None:
                raise first_exc

    def shutdown(self) -> None:
        """Stop the workers.  Safe to call repeatedly and from any thread."""
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
            for q in self._queues:
                q.put(None)
        for t in self._threads:
            t.join(timeout=5)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
