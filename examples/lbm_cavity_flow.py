"""Lid-driven cavity flow with D3Q19 LBM (the Section IV-B workload).

A closed box of fluid whose top boundary (the "lid") moves at constant
velocity: the canonical LBM validation case.  The simulation runs with 3.5D
blocking at the paper's CPU configuration (dim_T = 3, capacity-derived
tiles) and is cross-checked against the naive sweep.

Run:  python examples/lbm_cavity_flow.py
"""

import numpy as np

from repro.core import TrafficStats
from repro.lbm import Lattice, run_lbm, run_lbm_35d, total_mass, velocity


def main() -> None:
    n, steps = 32, 60
    lid_speed = 0.08
    omega = 1.3  # relaxation: kinematic viscosity nu = (1/omega - 0.5)/3

    lattice = Lattice.uniform((n, n, n), rho=1.0, dtype=np.float64)
    lattice.set_equilibrium_shell(velocity_top=(0.0, 0.0, lid_speed))

    print("Lid-driven cavity (D3Q19 LBM, 3.5D blocked)")
    print(f"  lattice {n}^3, {steps} steps, lid u_x = {lid_speed}, omega = {omega}")

    traffic = TrafficStats()
    blocked = run_lbm_35d(
        lattice, steps, dim_t=3, tile=(24, 24), omega=omega, traffic=traffic
    )
    reference = run_lbm(lattice, steps, omega=omega)
    assert np.array_equal(blocked.f.data, reference.f.data)

    u = velocity(blocked.f)
    mid = n // 2
    print(f"  mass change          : "
          f"{abs(total_mass(blocked.f) - total_mass(lattice.f)) / total_mass(lattice.f):.2e}")
    print(f"  max |u| in interior  : {np.abs(u[:, 1:-1, 1:-1, 1:-1]).max():.4f}")
    print("  centerline u_x(z) profile (cavity center column):")
    for z in range(n - 2, 0, -max(1, n // 8)):
        ux = u[2, z, mid, mid]
        bar = "#" * int(abs(ux) / lid_speed * 40)
        sign = "+" if ux >= 0 else "-"
        print(f"    z={z:3d}: {ux:+.4f} {sign}{bar}")
    # the primary vortex: flow follows the lid near the top, returns below
    assert u[2, n - 2, mid, mid] > 0
    assert u[2, 1:-1, 1:-1, 1:-1].min() < 0
    print(f"  external traffic     : {traffic.total_bytes / 1e6:.0f} MB "
          f"({traffic.bytes_per_update():.0f} B/update; naive would be ~3X)")
    print("  3.5D result matches the naive LBM sweep bit-for-bit")


if __name__ == "__main__":
    main()
