"""The 27-point Jacobi stencil (paper Section IV-A2).

Each update reads the full 3x3x3 cube around a point; the center, face,
edge and corner neighbors are weighted by four distinct constants.  The
paper's cost accounting is 58 ops per update: 4 multiplies, 26 adds,
27 loads and 1 store, giving :math:`\\gamma = 0.14` (SP) / ``0.28`` (DP)
after spatial blocking — low enough that spatial blocking alone makes the
kernel compute bound on both architectures (Section IV-C).
"""

from __future__ import annotations

from collections.abc import Sequence
from contextlib import nullcontext

import numpy as np

from .base import PlaneKernel, ScratchArena, validate_footprint

__all__ = ["TwentySevenPointStencil"]

# Offsets grouped by neighbor class within the 3x3x3 cube.
_FACES = [
    (dz, dy, dx)
    for dz in (-1, 0, 1)
    for dy in (-1, 0, 1)
    for dx in (-1, 0, 1)
    if abs(dz) + abs(dy) + abs(dx) == 1
]
_EDGES = [
    (dz, dy, dx)
    for dz in (-1, 0, 1)
    for dy in (-1, 0, 1)
    for dx in (-1, 0, 1)
    if abs(dz) + abs(dy) + abs(dx) == 2
]
_CORNERS = [
    (dz, dy, dx)
    for dz in (-1, 0, 1)
    for dy in (-1, 0, 1)
    for dx in (-1, 0, 1)
    if abs(dz) + abs(dy) + abs(dx) == 3
]


class TwentySevenPointStencil(PlaneKernel):
    """Radius-1 box stencil with distinct center/face/edge/corner weights."""

    radius = 1
    ncomp = 1
    # 4 mults + 26 adds + 27 loads + 1 store (Section IV-A2)
    ops_per_update = 58
    flops_per_update = 30

    def __init__(
        self,
        center: float = 0.5,
        face: float = 0.02,
        edge: float = 0.01,
        corner: float = 0.005,
    ) -> None:
        self.center = center
        self.face = face
        self.edge = edge
        self.corner = corner
        # Contraction test for the flat path's throwaway seam lanes — see
        # SevenPointStencil.__init__.
        self._seam_contractive = (
            abs(center) + 6 * abs(face) + 12 * abs(edge) + 8 * abs(corner)
        ) <= 1.0

    def __repr__(self) -> str:
        return (
            f"TwentySevenPointStencil(center={self.center}, face={self.face}, "
            f"edge={self.edge}, corner={self.corner})"
        )

    def compute_plane(
        self,
        out: np.ndarray,
        src: Sequence[np.ndarray],
        yr: tuple[int, int],
        xr: tuple[int, int],
        gz: int = 0,
        gy0: int = 0,
        gx0: int = 0,
    ) -> None:
        validate_footprint(out.shape[1:], yr, xr, self.radius)
        y0, y1 = yr
        x0, x1 = xr
        dtype = out.dtype.type

        def shifted(dz: int, dy: int, dx: int) -> np.ndarray:
            plane = src[dz + 1][0]
            return plane[y0 + dy : y1 + dy, x0 + dx : x1 + dx]

        def group_sum(offsets) -> np.ndarray:
            acc = shifted(*offsets[0]).copy()
            for off in offsets[1:]:
                acc += shifted(*off)
            return acc

        result = dtype(self.center) * shifted(0, 0, 0)
        result += dtype(self.face) * group_sum(_FACES)
        result += dtype(self.edge) * group_sum(_EDGES)
        result += dtype(self.corner) * group_sum(_CORNERS)
        out[0, y0:y1, x0:x1] = result

    def compute_plane_inplace(
        self,
        out: np.ndarray,
        src: Sequence[np.ndarray],
        yr: tuple[int, int],
        xr: tuple[int, int],
        gz: int = 0,
        gy0: int = 0,
        gx0: int = 0,
        *,
        arena: ScratchArena,
        seam_writable: bool = False,
    ) -> None:
        # Same center/face/edge/corner grouping and accumulation order as
        # compute_plane; the weighted result accumulates straight into out.
        # On contiguous planes the tap windows become 1D contiguous slices of
        # the flattened planes over the tight window [y0*nx+x0, (y1-1)*nx+x1)
        # (see GenericStencil.compute_plane_inplace for the bounds argument);
        # seam positions between rows hold junk and are never copied out.
        validate_footprint(out.shape[1:], yr, xr, self.radius)
        y0, y1 = yr
        x0, x1 = xr
        dtype = out.dtype.type
        planes = [src[0][0], src[1][0], src[2][0]]
        if all(p.flags.c_contiguous for p in planes):
            ny, nx = planes[1].shape
            s0 = y0 * nx + x0
            e0 = (y1 - 1) * nx + x1
            flats = [p.ravel() for p in planes]
            oplane = out[0]
            # Seam-writable targets accumulate straight into out's flat
            # window (junk lands on the dead seam columns between rows); see
            # SevenPointStencil.compute_plane_inplace.
            if seam_writable and oplane.flags.c_contiguous:
                result = oplane.ravel()[s0:e0]
                copy_back = False
            else:
                result = arena.get("27pt.facc", (e0 - s0,), out.dtype)
                copy_back = True
            group = arena.get("27pt.fgrp", (e0 - s0,), out.dtype)

            def shifted(dz: int, dy: int, dx: int) -> np.ndarray:
                off = dy * nx + dx
                return flats[dz + 1][s0 + off : e0 + off]

            flat = True
        else:
            shape = (y1 - y0, x1 - x0)
            group = arena.get("27pt.group", shape, out.dtype)
            result = out[0, y0:y1, x0:x1]

            def shifted(dz: int, dy: int, dx: int) -> np.ndarray:
                plane = src[dz + 1][0]
                return plane[y0 + dy : y1 + dy, x0 + dx : x1 + dx]

            flat = copy_back = False

        def add_group(offsets, weight) -> None:
            np.copyto(group, shifted(*offsets[0]))
            for off in offsets[1:]:
                np.add(group, shifted(*off), out=group)
            np.multiply(group, weight, out=group)
            np.add(result, group, out=result)

        # Seam lanes of the flat path can overflow round over round for
        # non-contractive weights; suppress their spurious FP warnings then
        # (see SevenPointStencil.compute_plane_inplace).
        ctx = (
            nullcontext()
            if self._seam_contractive or not flat
            else np.errstate(all="ignore")
        )
        with ctx:
            np.multiply(shifted(0, 0, 0), dtype(self.center), out=result)
            add_group(_FACES, dtype(self.face))
            add_group(_EDGES, dtype(self.edge))
            add_group(_CORNERS, dtype(self.corner))
        if copy_back:
            isize = result.itemsize
            view = np.lib.stride_tricks.as_strided(
                result, shape=(y1 - y0, x1 - x0), strides=(nx * isize, isize)
            )
            out[0, y0:y1, x0:x1] = view
