"""Step schedule for the 3.5D computation flow (paper Section V-C, Figure 3a).

A *step* :math:`S_i` computes (or loads, or stores) one XY sub-plane at one
time instance.  For stencil radius R the schedule advances every time
instance by one plane per z-iteration, with instance ``t`` trailing instance
``t-1`` by a fixed *lag* of planes:

* **sequential** variant — lag R, ``2R+1`` ring slots.  Steps inside one
  iteration depend on each other (instance t reads planes instance t-1
  produced in the same iteration) and must run in instance order, with a
  barrier after each step.
* **concurrent** variant — lag R+1, ``2R+2`` ring slots.  All ``dim_T + 1``
  steps of an iteration are mutually independent and can run in parallel,
  which is the paper's extension that multiplies the available parallelism
  by ``dim_T`` (at R = 1 the lag is 2, matching the paper's
  ``z_s = z + 2R(dim_T - t'')`` schedule).

The executor in :mod:`repro.core.blocking35d` inlines this iteration; the
explicit schedule object here exists so tests, examples, and the GPU planner
can inspect, validate, and visualize the exact step order of Figure 3(a).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["StepKind", "Step", "Schedule", "build_schedule", "lag_for"]


class StepKind(enum.Enum):
    LOAD = "load"        # t = 0: read an XY sub-plane from external memory
    COMPUTE = "compute"  # 0 < t < dim_t: stencil into an on-chip ring
    STORE = "store"      # t = dim_t: stencil + write result to external memory


@dataclass(frozen=True)
class Step:
    """One schedule step: plane ``z`` at time instance ``t`` in iteration ``k``."""

    index: int
    iteration: int
    t: int
    z: int
    kind: StepKind

    def reads(self, radius: int) -> list[tuple[int, int]]:
        """(instance, plane) pairs this step consumes."""
        if self.kind is StepKind.LOAD:
            return []
        return [(self.t - 1, self.z + dz) for dz in range(-radius, radius + 1)]


def lag_for(radius: int, concurrent: bool) -> int:
    """Planes by which instance t trails instance t-1."""
    return radius + 1 if concurrent else radius


@dataclass
class Schedule:
    """The complete ordered step list for one tile sweep."""

    nz: int
    radius: int
    dim_t: int
    concurrent: bool
    steps: list[Step]

    @property
    def lag(self) -> int:
        return lag_for(self.radius, self.concurrent)

    def iterations(self) -> dict[int, list[Step]]:
        """Steps grouped by z-iteration (the unit between barriers)."""
        out: dict[int, list[Step]] = {}
        for s in self.steps:
            out.setdefault(s.iteration, []).append(s)
        return out

    def validate(self) -> None:
        """Check dependency ordering and ring-slot liveness.

        Raises ``AssertionError`` on any violation.  Dependencies on planes in
        the fixed boundary shell are satisfied by persistent shell copies and
        are exempt from ring liveness.
        """
        from .buffer import ring_slots

        slots = ring_slots(self.radius, self.concurrent)
        produced: dict[tuple[int, int], int] = {}  # (instance, plane) -> step idx
        recycled: dict[tuple[int, int], int] = {}  # overwrite step idx
        shell = set(range(self.radius)) | set(range(self.nz - self.radius, self.nz))
        for s in self.steps:
            if s.kind is not StepKind.STORE:
                key = (s.t, s.z)
                old = (s.t, s.z - slots)
                if old in produced:
                    recycled[old] = s.index
                produced[key] = s.index
            for t_src, z_src in s.reads(self.radius):
                if z_src in shell:
                    continue  # served by the persistent boundary-plane copies
                key = (t_src, z_src)
                assert key in produced, (
                    f"step {s} reads ({t_src}, z={z_src}) which was never produced"
                )
                if self.concurrent:
                    assert produced[key] < s.index and not _same_iteration(
                        self.steps[produced[key]], s
                    ), f"concurrent step {s} depends on same-iteration step"
                else:
                    assert produced[key] < s.index
                assert key not in recycled or recycled[key] > s.index, (
                    f"step {s} reads ({t_src}, z={z_src}) after its slot was recycled"
                )

    def phase_of(self, step: Step) -> str:
        """Classify a step into the paper's prolog/steady/epilog phases."""
        first_store = next(s.iteration for s in self.steps if s.kind is StepKind.STORE)
        last_load = max(s.iteration for s in self.steps if s.kind is StepKind.LOAD)
        if step.iteration < first_store:
            return "prolog"
        if step.iteration > last_load:
            return "epilog"
        return "steady"


def _same_iteration(a: Step, b: Step) -> bool:
    return a.iteration == b.iteration


def schedule_to_text(schedule: Schedule, max_iterations: int | None = None) -> str:
    """Render the schedule as a Figure-3(a)-style table.

    Rows are time instances (t' = 0 loads, t' = dim_T stores), columns are
    z-iterations; each cell shows the plane index handled at that step.
    """
    iters = schedule.iterations()
    keys = sorted(iters)
    if max_iterations is not None:
        keys = keys[:max_iterations]
    header = "t'\\iter |" + "".join(f"{k:>5}" for k in keys)
    lines = [header, "-" * len(header)]
    for t in range(schedule.dim_t + 1):
        cells = []
        for k in keys:
            step = next((s for s in iters[k] if s.t == t), None)
            cells.append(f"{step.z:>5}" if step else "    .")
        kind = "load " if t == 0 else ("store" if t == schedule.dim_t else "comp ")
        lines.append(f"t'={t} {kind}|" + "".join(cells))
    return "\n".join(lines)


def build_schedule(
    nz: int,
    radius: int,
    dim_t: int,
    concurrent: bool = True,
) -> Schedule:
    """Build the full step schedule for a z-axis of ``nz`` planes.

    Instance 0 loads plane ``k`` at iteration ``k``; instance ``t`` computes
    plane ``k - lag*t``.  Loads cover ``[0, nz)``; computes/stores cover the
    interior ``[R, nz - R)``.  Iterations continue until the final instance
    has stored its last plane.
    """
    if nz < 2 * radius + 1:
        raise ValueError(f"nz={nz} too small for radius {radius}")
    lag = lag_for(radius, concurrent)
    steps: list[Step] = []
    idx = 0
    last_iter = (nz - radius - 1) + lag * dim_t
    for k in range(last_iter + 1):
        for t in range(dim_t + 1):
            z = k - lag * t
            if t == 0:
                if 0 <= z < nz:
                    steps.append(Step(idx, k, t, z, StepKind.LOAD))
                    idx += 1
            elif radius <= z < nz - radius:
                kind = StepKind.STORE if t == dim_t else StepKind.COMPUTE
                steps.append(Step(idx, k, t, z, kind))
                idx += 1
    return Schedule(nz=nz, radius=radius, dim_t=dim_t, concurrent=concurrent, steps=steps)
