"""Stencil kernels and grid containers (the PDE-solver substrate)."""

from .base import PlaneKernel, ScratchArena, validate_footprint
from .fd import heat_stencil, laplacian_coefficients, laplacian_stencil, stable_dt_factor
from .generic import GenericStencil, box_stencil, star_stencil
from .grid import Field3D, copy_shell, interior_points, interior_slices
from .seven_point import SevenPointStencil
from .twentyseven_point import TwentySevenPointStencil
from .variable import VariableCoefficientStencil

__all__ = [
    "PlaneKernel",
    "ScratchArena",
    "validate_footprint",
    "Field3D",
    "copy_shell",
    "interior_points",
    "interior_slices",
    "SevenPointStencil",
    "TwentySevenPointStencil",
    "VariableCoefficientStencil",
    "GenericStencil",
    "star_stencil",
    "box_stencil",
    "laplacian_stencil",
    "laplacian_coefficients",
    "heat_stencil",
    "stable_dt_factor",
]
