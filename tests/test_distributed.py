"""Tests for the distributed (simulated-MPI) layer."""

import numpy as np
import pytest

from repro.core import run_naive
from repro.distributed import (
    CommFailedError,
    DistributedJacobi,
    RankDeadError,
    SimComm,
    decompose_z,
    transfer_time,
)
from repro.stencils import (
    Field3D,
    SevenPointStencil,
    VariableCoefficientStencil,
    star_stencil,
)


class TestSimComm:
    def test_send_recv_roundtrip(self):
        comm = SimComm(2)
        payload = np.arange(6.0).reshape(2, 3)
        comm.send(0, 1, tag=7, array=payload)
        out = comm.recv(0, 1, tag=7)
        assert np.array_equal(out, payload)
        assert comm.stats[0].bytes_sent == payload.nbytes
        assert comm.stats[1].bytes_received == payload.nbytes

    def test_send_copies_payload(self):
        comm = SimComm(2)
        payload = np.zeros(4)
        comm.send(0, 1, 0, payload)
        payload[:] = 99  # mutation after send must not leak (MPI semantics)
        assert not comm.recv(0, 1, 0).any()

    def test_fifo_per_channel(self):
        comm = SimComm(2)
        comm.send(0, 1, 0, np.array([1.0]))
        comm.send(0, 1, 0, np.array([2.0]))
        assert comm.recv(0, 1, 0)[0] == 1.0
        assert comm.recv(0, 1, 0)[0] == 2.0

    def test_missing_message_raises(self):
        comm = SimComm(2)
        with pytest.raises(LookupError):
            comm.recv(0, 1, 0)

    def test_rank_validation(self):
        comm = SimComm(2)
        with pytest.raises(ValueError):
            comm.send(0, 5, 0, np.zeros(1))
        with pytest.raises(ValueError):
            SimComm(0)

    def test_sendrecv(self):
        comm = SimComm(3)
        # ring shift: every rank sends right, receives from left
        for r in range(3):
            comm.send(r, (r + 1) % 3, 0, np.array([float(r)]))
        for r in range(3):
            got = comm.recv((r - 1) % 3, r, 0)
            assert got[0] == (r - 1) % 3
        assert comm.pending() == 0

    def test_transfer_time_model(self):
        few_big = transfer_time(messages=2, nbytes=1 << 20)
        many_small = transfer_time(messages=20, nbytes=1 << 20)
        assert few_big < many_small  # same volume, fewer messages wins


class TestDecompose:
    def test_partition_covers_axis(self):
        slabs = decompose_z(30, 4, halo=2)
        assert slabs[0].z0 == 0 and slabs[-1].z1 == 30
        for a, b in zip(slabs, slabs[1:]):
            assert a.z1 == b.z0

    def test_neighbors(self):
        slabs = decompose_z(30, 3, halo=2)
        assert slabs[0].lo_neighbor is None
        assert slabs[0].hi_neighbor == 1
        assert slabs[1].lo_neighbor == 0 and slabs[1].hi_neighbor == 2
        assert slabs[2].hi_neighbor is None

    def test_too_thin_slabs_rejected(self):
        with pytest.raises(ValueError, match="fewer ranks"):
            decompose_z(10, 5, halo=3)

    def test_single_rank(self):
        (slab,) = decompose_z(10, 1, halo=3)
        assert (slab.z0, slab.z1) == (0, 10)
        assert slab.lo_neighbor is None and slab.hi_neighbor is None


class TestDistributedCorrectness:
    @pytest.mark.parametrize("n_ranks", [1, 2, 3, 5])
    @pytest.mark.parametrize("scheme,dim_t", [("naive", 1), ("35d", 2), ("35d", 3)])
    def test_matches_serial_naive(self, n_ranks, scheme, dim_t):
        k = SevenPointStencil()
        f = Field3D.random((24, 12, 14), seed=n_ranks * 10 + dim_t)
        ref = run_naive(k, f, 6)
        out, comm = DistributedJacobi(k, n_ranks, dim_t=dim_t, scheme=scheme).run(f, 6)
        assert np.array_equal(out.data, ref.data)
        assert comm.pending() == 0

    def test_remainder_steps(self):
        k = SevenPointStencil()
        f = Field3D.random((20, 10, 10), seed=3)
        ref = run_naive(k, f, 7)
        out, _ = DistributedJacobi(k, 3, dim_t=3).run(f, 7)
        assert np.array_equal(out.data, ref.data)

    def test_radius2(self):
        k = star_stencil(2, center=0.3, arm=0.02)
        f = Field3D.random((24, 12, 12), seed=4)
        ref = run_naive(k, f, 4)
        out, _ = DistributedJacobi(k, 2, dim_t=2).run(f, 4)
        assert np.array_equal(out.data, ref.data)

    def test_lbm_with_obstacles(self):
        from repro.lbm import Lattice, channel_with_sphere, make_kernel, run_lbm

        flags = channel_with_sphere((16, 12, 14), 2.0)
        rng = np.random.default_rng(5)
        lat = Lattice.from_moments(
            1.0 + 0.05 * rng.random((16, 12, 14)),
            0.02 * (rng.random((3, 16, 12, 14)) - 0.5),
            flags,
        )
        kernel = make_kernel(lat, omega=1.3)
        ref = run_lbm(lat, 4, omega=1.3)
        out, _ = DistributedJacobi(kernel, 3, dim_t=2).run(lat.f, 4)
        assert np.array_equal(out.data, ref.f.data)

    def test_variable_coefficients(self):
        k = VariableCoefficientStencil.layered((18, 10, 10), [0.2, 1.0, 0.6])
        f = Field3D.random((18, 10, 10), seed=6)
        ref = run_naive(k, f, 4)
        out, _ = DistributedJacobi(k, 3, dim_t=2).run(f, 4)
        assert np.array_equal(out.data, ref.data)

    def test_too_many_ranks_rejected(self):
        k = SevenPointStencil()
        f = Field3D.random((8, 8, 8), seed=7)
        with pytest.raises(ValueError):
            DistributedJacobi(k, 6, dim_t=3).run(f, 3)


class TestCommunicationAccounting:
    def test_message_count_reduced_by_dim_t(self):
        """Temporal blocking sends 1/dim_T as many messages."""
        k = SevenPointStencil()
        f = Field3D.random((24, 10, 10), seed=8)
        _, comm1 = DistributedJacobi(k, 4, dim_t=1).run(f, 6)
        _, comm3 = DistributedJacobi(k, 4, dim_t=3).run(f, 6)
        m1 = comm1.total_stats().messages_sent
        m3 = comm3.total_stats().messages_sent
        assert m1 == 3 * m3

    def test_volume_independent_of_dim_t(self):
        k = SevenPointStencil()
        f = Field3D.random((24, 10, 10), seed=9)
        _, comm1 = DistributedJacobi(k, 4, dim_t=1).run(f, 6)
        _, comm3 = DistributedJacobi(k, 4, dim_t=3).run(f, 6)
        assert comm1.total_stats().bytes_sent == comm3.total_stats().bytes_sent

    def test_expected_counters_match(self):
        k = SevenPointStencil()
        f = Field3D.random((24, 10, 10), seed=10)
        dj = DistributedJacobi(k, 3, dim_t=2)
        _, comm = dj.run(f, 6)
        total = comm.total_stats()
        assert total.messages_sent == dj.expected_messages(f.nz, 6)
        assert total.bytes_sent == dj.expected_bytes(f, 6)

    def test_edge_ranks_send_less(self):
        k = SevenPointStencil()
        f = Field3D.random((24, 10, 10), seed=11)
        _, comm = DistributedJacobi(k, 4, dim_t=2).run(f, 4)
        sent = [s.messages_sent for s in comm.stats]
        assert sent[0] == sent[-1]
        assert sent[1] == sent[2] == 2 * sent[0]  # interior ranks: two neighbors


class TestLossyTransport:
    """The ack/retry protocol: imperfect links, bit-perfect delivery."""

    def test_forced_drop_is_retransmitted(self):
        from repro.resilience.faultinject import FAULTS

        comm = SimComm(2, max_retries=3)
        payload = np.arange(5.0)
        with FAULTS.injected("comm.drop"):
            comm.send(0, 1, 0, payload)
            out = comm.recv(0, 1, 0)
        assert np.array_equal(out, payload)
        assert comm.stats[0].dropped == 1
        assert comm.stats[1].retries == 1

    def test_corruption_caught_by_checksum(self):
        from repro.resilience.faultinject import FAULTS

        comm = SimComm(2, max_retries=3)
        payload = np.arange(5.0)
        with FAULTS.injected("comm.corrupt"):
            comm.send(0, 1, 0, payload)
            out = comm.recv(0, 1, 0)
        assert np.array_equal(out, payload)  # the retransmission, bit-exact
        assert comm.stats[0].corrupted == 1
        assert comm.stats[1].retries == 1

    def test_persistent_loss_exhausts_retries(self):
        from repro.distributed import CommFailedError
        from repro.resilience.faultinject import FAULTS

        comm = SimComm(2, max_retries=2)
        with FAULTS.injected("comm.drop:*"):
            comm.send(0, 1, 0, np.arange(3.0))
            with pytest.raises(CommFailedError, match="undeliverable"):
                comm.recv(0, 1, 0)
        FAULTS.disarm()

    def test_random_loss_is_seed_deterministic(self):
        def total_retries(seed):
            comm = SimComm(2, loss=0.4, seed=seed, max_retries=16)
            for i in range(10):
                comm.send(0, 1, i, np.arange(4.0))
                comm.recv(0, 1, i)
            return comm.total_stats().retries

        assert total_retries(3) == total_retries(3)
        assert total_retries(3) > 0

    def test_invalid_transport_config_rejected(self):
        with pytest.raises(ValueError):
            SimComm(2, loss=1.5)
        with pytest.raises(ValueError):
            SimComm(2, max_retries=-1)

    def test_lossy_halo_exchange_stays_bit_exact(self):
        """A 30%-lossy link changes the stats, never the physics."""
        k = SevenPointStencil()
        f = Field3D.random((24, 10, 10), seed=12)
        lossy = DistributedJacobi(
            k, 3, dim_t=2, loss=0.3, corruption=0.1, comm_seed=5,
            max_retries=32,
        )
        out, comm = lossy.run(f, 6)
        assert np.array_equal(out.data, run_naive(k, f, 6).data)
        total = comm.total_stats()
        assert total.retries > 0
        assert total.dropped + total.corrupted > 0


class TestNonblocking:
    def test_isend_irecv_wait_roundtrip(self):
        comm = SimComm(2)
        payload = np.arange(6.0).reshape(2, 3)
        sreq = comm.isend(0, 1, 7, payload)
        rreq = comm.irecv(0, 1, 7)
        assert sreq.done  # buffered send completes locally at once
        assert not rreq.done
        got = comm.wait(rreq)
        assert np.array_equal(got, payload)
        assert rreq.done
        assert comm.wait(rreq) is got  # waiting again returns the cache
        assert comm.pending() == 0 and comm.outstanding() == 0

    def test_posted_completed_accounting(self):
        comm = SimComm(2)
        comm.isend(0, 1, 0, np.zeros(3))
        req = comm.irecv(0, 1, 0)
        assert comm.stats[0].posted == comm.stats[0].completed == 1
        assert comm.stats[1].posted == 1 and comm.stats[1].completed == 0
        comm.wait(req)
        assert comm.stats[1].completed == 1

    def test_waitall_preserves_order(self):
        comm = SimComm(2)
        for v in (1.0, 2.0, 3.0):
            comm.isend(0, 1, 0, np.array([v]))
        reqs = [comm.irecv(0, 1, 0) for _ in range(3)]
        got = comm.waitall(reqs)
        assert [g[0] for g in got] == [1.0, 2.0, 3.0]

    def test_test_polls_without_blocking(self):
        comm = SimComm(2, latency_s=1e-6)
        req = comm.irecv(0, 1, 0)
        assert comm.test(req) == (False, None)  # nothing posted yet
        comm.isend(0, 1, 0, np.array([5.0]))
        done, _ = comm.test(req)
        assert not done  # posted, but not arrived on the simulated clock
        comm.advance(1, comm.transfer_ns(8))
        done, got = comm.test(req)
        assert done and got[0] == 5.0
        assert comm.test(req) == (True, got)

    def test_wait_detects_dead_rank(self):
        comm = SimComm(2)
        req = comm.irecv(0, 1, 0)  # posting against a live rank is fine
        comm.kill(0)
        with pytest.raises(RankDeadError):
            comm.wait(req)

    def test_purge_cancels_pending_handles(self):
        comm = SimComm(2)
        comm.isend(0, 1, 0, np.zeros(2))
        req = comm.irecv(0, 1, 0)
        assert comm.outstanding() == 1
        comm.purge()
        assert comm.outstanding() == 0
        with pytest.raises(CommFailedError):
            comm.wait(req)  # a purged round can never be hung on
        with pytest.raises(CommFailedError):
            comm.test(req)

    def test_blocking_recv_still_works_alongside(self):
        comm = SimComm(2)
        comm.isend(0, 1, 0, np.array([1.0]))
        assert comm.recv(0, 1, 0)[0] == 1.0


class TestOverlapTiming:
    def test_untimed_comm_keeps_counters_silent(self):
        comm = SimComm(2)
        comm.isend(0, 1, 0, np.zeros(4))
        comm.wait(comm.irecv(0, 1, 0))
        total = comm.total_stats()
        assert total.overlapped_ns == total.exposed_ns == 0
        assert total.overlap_fraction() is None

    def test_transfer_cost_model(self):
        comm = SimComm(2, latency_s=1e-6, bandwidth_bytes_s=1e9)
        assert comm.transfer_ns(0) == 1000  # latency only
        assert comm.transfer_ns(1000) == 2000  # + bytes/bandwidth
        assert SimComm(2, latency_s=1e-6).transfer_ns(10**9) == 1000

    def test_blocking_recv_is_fully_exposed(self):
        comm = SimComm(2, latency_s=1e-6)
        comm.send(0, 1, 0, np.zeros(4))
        comm.recv(0, 1, 0)
        cost = comm.transfer_ns(32)
        assert comm.stats[1].exposed_ns == cost
        assert comm.stats[1].overlapped_ns == 0
        assert comm.total_stats().overlap_fraction() == 0.0

    def test_compute_past_transfer_hides_everything(self):
        comm = SimComm(2, latency_s=1e-6)
        comm.isend(0, 1, 0, np.zeros(4))
        req = comm.irecv(0, 1, 0)
        cost = comm.transfer_ns(32)
        comm.advance(1, cost + 500)  # interior compute outlasts the wire
        comm.wait(req)
        assert comm.stats[1].overlapped_ns == cost
        assert comm.stats[1].exposed_ns == 0
        assert comm.total_stats().overlap_fraction() == 1.0

    def test_partial_overlap_splits_the_transfer(self):
        comm = SimComm(2, latency_s=1e-6)
        comm.isend(0, 1, 0, np.zeros(4))
        req = comm.irecv(0, 1, 0)
        cost = comm.transfer_ns(32)
        comm.advance(1, cost // 4)
        comm.wait(req)
        assert comm.stats[1].overlapped_ns == cost // 4
        assert comm.stats[1].exposed_ns == cost - cost // 4

    def test_retries_are_always_exposed(self):
        from repro.resilience.faultinject import FAULTS

        comm = SimComm(2, latency_s=1e-6)
        comm.isend(0, 1, 0, np.zeros(4))
        req = comm.irecv(0, 1, 0)
        cost = comm.transfer_ns(32)
        comm.advance(1, 10 * cost)  # transfer fully hidden...
        with FAULTS.injected("comm.delay:1"):
            comm.wait(req)
        # ...but the delayed-ack retransmission is a synchronous round trip
        assert comm.stats[1].overlapped_ns == cost
        assert comm.stats[1].exposed_ns == cost
        assert comm.stats[1].delayed == 1

    def test_sync_clocks_aligns_ranks(self):
        comm = SimComm(3, latency_s=1e-6)
        comm.advance(1, 700)
        comm.sync_clocks()
        assert [comm.now_ns(r) for r in range(3)] == [700, 700, 700]

    def test_invalid_timing_config_rejected(self):
        with pytest.raises(ValueError):
            SimComm(2, latency_s=-1.0)
        with pytest.raises(ValueError):
            SimComm(2, bandwidth_bytes_s=0)
        with pytest.raises(ValueError):
            SimComm(2).advance(0, -5)


class TestDecomposeEdgeCases:
    def test_nz_barely_above_ranks_times_halo(self):
        # 13 planes, 4 ranks, halo 3: min slab owns exactly halo planes
        slabs = decompose_z(13, 4, halo=3)
        assert sum(s.owned for s in slabs) == 13
        assert min(s.owned for s in slabs) == 3
        assert slabs[0].z0 == 0 and slabs[-1].z1 == 13

    def test_exactly_ranks_times_halo(self):
        slabs = decompose_z(12, 4, halo=3)
        assert all(s.owned == 3 for s in slabs)

    def test_one_plane_short_is_rejected(self):
        with pytest.raises(ValueError, match="fewer ranks"):
            decompose_z(11, 4, halo=3)

    def test_maximally_uneven_slabs(self):
        # partition_span spreads the remainder: sizes differ by at most 1
        slabs = decompose_z(17, 5, halo=3)
        sizes = sorted(s.owned for s in slabs)
        assert sizes == [3, 3, 3, 4, 4]
        for a, b in zip(slabs, slabs[1:]):
            assert a.z1 == b.z0  # still contiguous

    def test_cut_flags_match_neighbors(self):
        slabs = decompose_z(30, 3, halo=2)
        assert not slabs[0].lo_cut and slabs[0].hi_cut
        assert slabs[1].lo_cut and slabs[1].hi_cut
        assert slabs[2].lo_cut and not slabs[2].hi_cut

    def test_single_rank_never_too_thin(self):
        (slab,) = decompose_z(2, 1, halo=5)
        assert slab.owned == 2 and not slab.lo_cut and not slab.hi_cut


class TestOverlapCorrectness:
    @pytest.mark.parametrize("n_ranks", [1, 2, 3, 5])
    @pytest.mark.parametrize("scheme,dim_t", [("naive", 1), ("35d", 2), ("35d", 3)])
    def test_overlap_matches_serial_and_fused(self, n_ranks, scheme, dim_t):
        k = SevenPointStencil()
        f = Field3D.random((24, 12, 14), seed=n_ranks * 10 + dim_t)
        ref = run_naive(k, f, 6)
        on, comm = DistributedJacobi(
            k, n_ranks, dim_t=dim_t, scheme=scheme,
            overlap=True, latency_s=1e-6,
        ).run(f, 6)
        off, _ = DistributedJacobi(
            k, n_ranks, dim_t=dim_t, scheme=scheme, overlap=False,
        ).run(f, 6)
        assert np.array_equal(on.data, ref.data)
        assert np.array_equal(on.data, off.data)
        assert comm.pending() == 0 and comm.outstanding() == 0

    def test_thin_slabs_fall_back_bit_exactly(self):
        # owned == halo on every rank: no interior anywhere, fused fallback
        k = SevenPointStencil()
        f = Field3D.random((8, 10, 10), seed=5)
        ref = run_naive(k, f, 4)
        out, comm = DistributedJacobi(
            k, 4, dim_t=2, overlap=True, latency_s=1e-6
        ).run(f, 4)
        assert np.array_equal(out.data, ref.data)
        assert comm.outstanding() == 0

    def test_overlap_radius2(self):
        k = star_stencil(2)
        f = Field3D.random((24, 10, 10), seed=3)
        ref = run_naive(k, f, 4)
        out, _ = DistributedJacobi(
            k, 3, dim_t=2, overlap=True, latency_s=1e-6
        ).run(f, 4)
        assert np.array_equal(out.data, ref.data)

    def test_overlap_hides_transfer_time(self):
        k = SevenPointStencil()
        f = Field3D.random((24, 12, 12), seed=1)
        _, comm = DistributedJacobi(
            k, 3, dim_t=2, overlap=True, latency_s=1e-9,
        ).run(f, 6)
        total = comm.total_stats()
        assert total.posted == total.completed > 0
        # 1 ns of latency vs real interior sweeps: always fully hidden
        assert total.overlap_fraction() == 1.0

    def test_overlap_survives_lossy_transport(self):
        k = SevenPointStencil()
        f = Field3D.random((20, 10, 10), seed=11)
        ref = run_naive(k, f, 6)
        out, comm = DistributedJacobi(
            k, 3, dim_t=2, overlap=True, latency_s=1e-6,
            loss=0.2, corruption=0.1, comm_seed=4, max_retries=64,
        ).run(f, 6)
        assert np.array_equal(out.data, ref.data)
        assert comm.total_stats().retries > 0

    def test_overlap_rank_crash_recovers_bit_exactly(self):
        from repro.resilience.faultinject import FAULTS

        k = SevenPointStencil()
        f = Field3D.random((24, 10, 10), seed=9)
        ref = run_naive(k, f, 8)
        dj = DistributedJacobi(k, 4, dim_t=2, overlap=True, latency_s=1e-6)
        with FAULTS.injected("rank.crash=2@2"):
            out, comm = dj.run(f, 8)
        assert np.array_equal(out.data, ref.data)
        assert dj.recovery.recoveries == 1
        assert dj.recovery.replayed_rounds == 1
        assert comm.pending() == 0 and comm.outstanding() == 0

    def test_overlap_emits_halo_wait_spans(self):
        from repro.obs.trace import TRACE

        k = SevenPointStencil()
        f = Field3D.random((24, 10, 10), seed=2)
        TRACE.arm()
        try:
            DistributedJacobi(
                k, 3, dim_t=2, overlap=True, latency_s=1e-6
            ).run(f, 4)
            names = {e.name for e in TRACE.events()}
        finally:
            TRACE.disarm()
        assert "halo_wait" in names
        assert "halo_exchange" in names and "rank_compute" in names
