"""Finite-difference stencil builders of arbitrary accuracy order.

The paper's general-R formulation (Section V) covers "k-point stencils" of
any radius; real PDE codes get large R from high-order central differences.
These builders produce :class:`~repro.stencils.generic.GenericStencil`
instances from the standard central-difference Laplacian coefficients:

========  ======  =======================================================
accuracy  radius  axis coefficients (second derivative)
========  ======  =======================================================
2            1    [1, -2, 1]
4            2    [-1/12, 4/3, -5/2, 4/3, -1/12]
6            3    [1/90, -3/20, 3/2, -49/18, 3/2, -3/20, 1/90]
8            4    [-1/560, 8/315, -1/5, 8/5, -205/72, ...]
========  ======  =======================================================

The test suite verifies the *observed* convergence order of each stencil
against a smooth analytic field — the standard numerics validation — and
runs the radius-2/3 kernels through the full blocking machinery.
"""

from __future__ import annotations

from fractions import Fraction

from .generic import GenericStencil

__all__ = [
    "laplacian_coefficients",
    "laplacian_stencil",
    "heat_stencil",
    "stable_dt_factor",
]

#: one-sided coefficient tables for d2/dx2, by accuracy order
_D2_COEFFS: dict[int, list[Fraction]] = {
    2: [Fraction(1)],
    4: [Fraction(4, 3), Fraction(-1, 12)],
    6: [Fraction(3, 2), Fraction(-3, 20), Fraction(1, 90)],
    8: [Fraction(8, 5), Fraction(-1, 5), Fraction(8, 315), Fraction(-1, 560)],
}


def laplacian_coefficients(order: int) -> tuple[float, list[float]]:
    """(center, [c_1 .. c_R]) axis coefficients of the order-N Laplacian."""
    if order not in _D2_COEFFS:
        raise ValueError(f"order must be one of {sorted(_D2_COEFFS)}, got {order}")
    side = _D2_COEFFS[order]
    center_1d = -2 * sum(side)
    return float(center_1d), [float(c) for c in side]


def laplacian_stencil(order: int = 2, dx: float = 1.0) -> GenericStencil:
    """A 3D Laplacian stencil of the given accuracy order (radius order/2)."""
    center_1d, side = laplacian_coefficients(order)
    inv_dx2 = 1.0 / (dx * dx)
    taps = {(0, 0, 0): 3.0 * center_1d * inv_dx2}
    for k, c in enumerate(side, start=1):
        for axis in range(3):
            for sign in (-1, 1):
                off = [0, 0, 0]
                off[axis] = sign * k
                taps[tuple(off)] = c * inv_dx2
    return GenericStencil(taps)


def heat_stencil(
    order: int = 2, diffusivity: float = 1.0, dt: float = 0.1, dx: float = 1.0
) -> GenericStencil:
    """Explicit-Euler heat-equation update ``u + D*dt*laplacian(u)``."""
    lap = laplacian_stencil(order, dx)
    k = diffusivity * dt
    taps = {off: k * c for off, c in lap.taps.items()}
    taps[(0, 0, 0)] = 1.0 + taps[(0, 0, 0)]
    return GenericStencil(taps)


def stable_dt_factor(order: int) -> float:
    """The explicit-Euler stability bound ``D*dt/dx^2`` for this order.

    Derived from the most negative eigenvalue of the discrete Laplacian
    (the checkerboard mode): ``dt <= 2 / |lambda_min|``.
    """
    center_1d, side = laplacian_coefficients(order)
    lam_min = 3 * (center_1d + 2 * sum(c * (-1) ** k for k, c in enumerate(side, 1)))
    return 2.0 / abs(lam_min)
