"""Metrics registry: named counters, gauges, histograms, per-thread slots.

Like the tracer, the registry is a process-wide singleton
(:data:`METRICS`) and disarmed by default.  Disarmed, every mutator
returns after a single attribute check; hot loops additionally branch on
``METRICS.armed`` so the common path contains no calls at all.

Three kinds of instruments:

* **counters** — monotonically increasing sums (``inc``).  Locked, so
  only incremented outside per-element loops (per round / per launch).
* **gauges** — last-write-wins values (``set_gauge``).
* **histograms** — bounded summaries (count/sum/min/max) of observed
  values (``observe``); raw samples are not retained.

For genuinely hot per-thread accumulation the registry hands out
**thread slots**: preallocated ``numpy.int64`` arrays indexed by worker
id, written lock-free by workers and summed only at export time
(:meth:`MetricsRegistry.to_dict`).  The executors' per-thread
``TrafficStats`` are folded in the same way via
:meth:`merge_per_thread_traffic` at sweep end.

Counter catalog (see docs/observability.md for the full list):

``traffic.bytes_read`` / ``traffic.bytes_written``  executor-accounted bytes
``traffic.updates`` / ``traffic.ops``               point updates and flops
``traffic.plane_loads`` / ``traffic.plane_stores``  ring-buffer plane moves
``barrier.wait_ns`` / ``barrier.spmd_ns``           thread idle vs launch wall
``barrier.launches``                                run_spmd calls
``comm.messages`` / ``comm.bytes`` / ``comm.dropped`` / ``comm.corrupted`` /
``comm.delayed`` / ``comm.retries``                 SimComm totals
``comm.posted`` / ``comm.completed``                nonblocking requests
``comm.overlapped_ns`` / ``comm.exposed_ns``        transfer time hidden
                                                    behind compute vs stalled
``resilience.retries`` / ``resilience.repairs`` /
``resilience.degradations`` / ``resilience.checkpoint_bytes``
``resilience.recoveries`` / ``resilience.replayed_rounds`` /
``resilience.rank_failures`` / ``resilience.buddy_bytes``
                                                    rank-failure recovery
``serve.accepted`` / ``serve.rejected`` / ``serve.shed``
                                                    admission outcomes
``serve.completed`` / ``serve.degraded`` / ``serve.failed`` /
``serve.cancelled``                                 terminal job statuses
``serve.preemptions`` / ``serve.deadline_misses``   scheduler interventions
``serve.queue_depth`` (gauge)                       current queued jobs
"""

from __future__ import annotations

import threading
from typing import Any, Iterable

import numpy as np

__all__ = ["MetricsRegistry", "METRICS"]


class _Hist:
    __slots__ = ("count", "sum", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def to_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": (self.sum / self.count) if self.count else 0.0,
        }


class MetricsRegistry:
    """Process-wide counters/gauges/histograms with per-thread slots."""

    def __init__(self) -> None:
        self.armed = False
        self._lock = threading.Lock()
        self._counters: dict[str, float] = {}
        self._gauges: dict[str, float] = {}
        self._hists: dict[str, _Hist] = {}
        self._slots: dict[str, np.ndarray] = {}

    # -- lifecycle -----------------------------------------------------
    def arm(self) -> None:
        self.reset()
        self.armed = True

    def disarm(self) -> None:
        self.armed = False

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._hists.clear()
            self._slots.clear()

    # -- instruments ---------------------------------------------------
    def inc(self, name: str, value: float = 1) -> None:
        if not self.armed:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        if not self.armed:
            return
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        if not self.armed:
            return
        with self._lock:
            hist = self._hists.get(name)
            if hist is None:
                hist = self._hists[name] = _Hist()
            hist.observe(value)

    def thread_slots(self, name: str, n_threads: int) -> np.ndarray:
        """Preallocated int64 per-thread accumulator, summed at export.

        Workers write ``slots[tid] += v`` lock-free; the array is
        registered under ``name`` and its per-thread values appear in
        ``to_dict()["per_thread"]``.  Call only while armed.
        """
        with self._lock:
            arr = self._slots.get(name)
            if arr is None or len(arr) != n_threads:
                arr = np.zeros(n_threads, dtype=np.int64)
                self._slots[name] = arr
            return arr

    # -- domain merges (duck-typed to avoid package cycles) ------------
    def merge_traffic(self, traffic: Any, prefix: str = "traffic") -> None:
        """Fold a TrafficStats-shaped object into the counters."""
        if not self.armed:
            return
        self.inc(f"{prefix}.bytes_read", traffic.bytes_read)
        self.inc(f"{prefix}.bytes_written", traffic.bytes_written)
        self.inc(f"{prefix}.updates", traffic.updates)
        self.inc(f"{prefix}.ops", traffic.ops)
        self.inc(f"{prefix}.plane_loads", traffic.plane_loads)
        self.inc(f"{prefix}.plane_stores", traffic.plane_stores)

    def merge_per_thread_traffic(self, stats: Iterable[Any]) -> None:
        """Record each worker's TrafficStats into per-thread slots."""
        if not self.armed:
            return
        stats = list(stats)
        if not stats:
            return
        read = self.thread_slots("traffic.bytes_read.per_thread", len(stats))
        written = self.thread_slots("traffic.bytes_written.per_thread", len(stats))
        updates = self.thread_slots("traffic.updates.per_thread", len(stats))
        for i, s in enumerate(stats):
            read[i] += s.bytes_read
            written[i] += s.bytes_written
            updates[i] += s.updates

    def merge_comm(self, comm: Any, prefix: str = "comm") -> None:
        """Fold a SimComm's aggregated CommStats into the counters."""
        if not self.armed:
            return
        total = comm.total_stats()
        self.inc(f"{prefix}.messages", total.messages_sent)
        self.inc(f"{prefix}.bytes", total.bytes_sent)
        self.inc(f"{prefix}.dropped", total.dropped)
        self.inc(f"{prefix}.corrupted", total.corrupted)
        self.inc(f"{prefix}.delayed", getattr(total, "delayed", 0))
        self.inc(f"{prefix}.retries", total.retries)
        self.inc(f"{prefix}.posted", getattr(total, "posted", 0))
        self.inc(f"{prefix}.completed", getattr(total, "completed", 0))
        self.inc(f"{prefix}.overlapped_ns", getattr(total, "overlapped_ns", 0))
        self.inc(f"{prefix}.exposed_ns", getattr(total, "exposed_ns", 0))

    def merge_recovery(self, report: Any, prefix: str = "resilience") -> None:
        """Fold a rank-failure RecoveryReport into the counters."""
        if not self.armed:
            return
        self.inc(f"{prefix}.recoveries", report.recoveries)
        self.inc(f"{prefix}.replayed_rounds", report.replayed_rounds)
        self.inc(f"{prefix}.rank_failures", len(report.failed_ranks))
        self.inc(f"{prefix}.buddy_bytes", report.buddy_bytes)

    # -- derived -------------------------------------------------------
    def barrier_wait_fraction(self) -> float | None:
        """Fraction of worker-time spent idle at the implicit barrier.

        ``sum(wait_ns) / (n_threads * sum(spmd wall ns))`` over every
        ``run_spmd`` launch; ``None`` if no threaded launches happened.
        """
        with self._lock:
            wait = self._counters.get("barrier.wait_ns")
            wall = self._counters.get("barrier.spmd_ns")
            threads = self._gauges.get("barrier.threads")
        if wait is None or not wall or not threads:
            return None
        return wait / (threads * wall)

    def counter(self, name: str, default: float = 0) -> float:
        with self._lock:
            return self._counters.get(name, default)

    def to_dict(self) -> dict[str, Any]:
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            hists = {k: h.to_dict() for k, h in self._hists.items()}
            per_thread = {k: [int(v) for v in arr]
                          for k, arr in self._slots.items()}
        doc: dict[str, Any] = {
            "counters": counters,
            "gauges": gauges,
            "histograms": hists,
            "per_thread": per_thread,
        }
        frac = self.barrier_wait_fraction()
        if frac is not None:
            doc["derived"] = {"barrier_wait_fraction": frac}
        return doc


METRICS = MetricsRegistry()
