"""Resilient execution layer: fault injection, fallback, watchdog, restart.

The paper's 3.5D schedule keeps N persistent threads in lockstep with one
barrier per z-iteration and assumes every backend, worker and cache file
behaves perfectly.  This package is the part of the reproduction that
drops that assumption:

* :mod:`~repro.resilience.faultinject` — deterministic named fault sites
  (armed via :data:`FAULTS` or ``$REPRO_FAULTS``) so every failure mode is
  testable;
* :mod:`~repro.resilience.fallback` — the bit-exact backend fallback chain
  ``fused-numba -> fused-numpy -> numpy-inplace -> numpy``;
* :mod:`~repro.resilience.watchdog` — :class:`GuardedSweep` per-round
  NaN/Inf health checks, retry with exponential backoff, repair from the
  last good state;
* :mod:`~repro.resilience.checkpoint` — atomic grid+step snapshots and
  bit-exact restart;
* :mod:`~repro.resilience.report` — the structured record of every
  degradation, mapped to the CLI's exit codes (0 clean, 3 degraded-but-
  correct, 4 failed).

See ``docs/robustness.md`` for the full contract.
"""

from .checkpoint import Checkpoint, CheckpointError, CheckpointStore
from .fallback import (
    FALLBACK_ORDER,
    BoundBackend,
    Degradation,
    DegradedExecutionWarning,
    FallbackExhaustedError,
    bind_with_fallback,
    fallback_chain,
)
from .faultinject import (
    FAULTS,
    REPRO_FAULTS_ENV,
    SITES,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    ResilienceError,
)
from .report import RunReport
from .watchdog import (
    GuardedSweep,
    HealthCheckError,
    HealthWarning,
    SweepRetriesExhaustedError,
    grid_is_finite,
)

__all__ = [
    "FAULTS",
    "REPRO_FAULTS_ENV",
    "SITES",
    "FALLBACK_ORDER",
    "BoundBackend",
    "Checkpoint",
    "CheckpointError",
    "CheckpointStore",
    "Degradation",
    "DegradedExecutionWarning",
    "FallbackExhaustedError",
    "FaultInjector",
    "FaultSpec",
    "GuardedSweep",
    "HealthCheckError",
    "HealthWarning",
    "InjectedFault",
    "ResilienceError",
    "RunReport",
    "SweepRetriesExhaustedError",
    "bind_with_fallback",
    "fallback_chain",
    "grid_is_finite",
]
