"""Machine descriptions: the paper's Table I plus capacity/topology details.

The two evaluation platforms (Section III-D/E):

* **Intel Core i7** (Nehalem, 4 cores @ 3.2 GHz): 30 GB/s peak DDR3
  bandwidth (22 GB/s achievable), 102 SP / 51 DP Gops, 8 MB shared LLC of
  which the paper budgets half (4 MB) for the blocking buffers, 4-wide SP
  SSE (2-wide DP).
* **NVIDIA GTX 285** (30 SMs @ 1.55 GHz (actually 1.476 for the SPs;
  we keep the paper's figure)): 159 GB/s peak (131 achievable), 1116 SP /
  93 DP Gops *assuming full SFU + madd use* — stencil op mixes get roughly
  a third of SP and half of DP peak, making the *effective* bytes/op 0.43 SP
  and ~3.4 DP (Section III-E).  On-chip storage per SM: 16 KB shared memory
  and a 64 KB register file.

Every quantity the evaluation relies on is data here, so hypothetical
machines (Section VIII's falling bandwidth-to-compute trend, Fermi-class
caches) are just other instances.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["MachineSpec", "CORE_I7", "GTX_285", "FERMI", "scaled_machine"]

GB = 1e9
MB = 1 << 20
KB = 1 << 10


@dataclass(frozen=True)
class MachineSpec:
    """Peak rates and capacities of one platform."""

    name: str
    #: peak external memory bandwidth, bytes/s
    peak_bandwidth: float
    #: measured achievable bandwidth, bytes/s (Section III-E: 20-25% off peak)
    achievable_bandwidth: float
    #: peak ops/s, single / double precision (the paper's "Gops")
    peak_ops_sp: float
    peak_ops_dp: float
    #: ops/s reachable by stencil-style op mixes (GPU: no SFU, few madds)
    stencil_ops_sp: float
    stencil_ops_dp: float
    cores: int
    #: hardware SIMD lanes per core (SP); DP is half
    simd_width_sp: int
    #: on-chip capacity available for blocking buffers, bytes
    blocking_capacity: int
    #: total last-level cache / shared-memory size, bytes
    llc_bytes: int
    frequency_ghz: float
    cache_line: int = 64
    is_gpu: bool = False

    # ------------------------------------------------------------------
    def peak_ops(self, precision: str) -> float:
        return self.peak_ops_sp if precision == "sp" else self.peak_ops_dp

    def stencil_ops(self, precision: str) -> float:
        return self.stencil_ops_sp if precision == "sp" else self.stencil_ops_dp

    def bytes_per_op(self, precision: str, derated: bool = False) -> float:
        """The machine balance Γ (Table I), optionally with the stencil derate."""
        ops = self.stencil_ops(precision) if derated else self.peak_ops(precision)
        return self.peak_bandwidth / ops

    def simd_width(self, precision: str) -> int:
        return self.simd_width_sp if precision == "sp" else max(1, self.simd_width_sp // 2)


#: Intel Core i7 (Table I row 1)
CORE_I7 = MachineSpec(
    name="Intel Core i7 (Nehalem 3.2 GHz)",
    peak_bandwidth=30 * GB,
    achievable_bandwidth=22 * GB,
    peak_ops_sp=102e9,
    peak_ops_dp=51e9,
    stencil_ops_sp=102e9,
    stencil_ops_dp=51e9,
    cores=4,
    simd_width_sp=4,
    blocking_capacity=4 * MB,  # half the LLC (Section VI-A)
    llc_bytes=8 * MB,
    frequency_ghz=3.2,
)

#: NVIDIA GTX 285 (Table I row 2).  blocking_capacity is the 64 KB register
#: file used for the 7-point stencil (Section VI-A); LBM is limited to the
#: 16 KB shared memory, passed explicitly where needed.
GTX_285 = MachineSpec(
    name="NVIDIA GTX 285",
    peak_bandwidth=159 * GB,
    achievable_bandwidth=131 * GB,
    peak_ops_sp=1116e9,
    peak_ops_dp=93e9,
    stencil_ops_sp=1116e9 / 3,  # "only get a third of the peak SP compute"
    stencil_ops_dp=93e9 / 2,  # "half of peak DP ops"
    cores=30,  # streaming multiprocessors
    simd_width_sp=32,  # logical SIMD width (warp)
    blocking_capacity=64 * KB,  # register file per SM
    llc_bytes=16 * KB,  # shared memory per SM
    frequency_ghz=1.55,
    cache_line=128,  # coalescing segment
    is_gpu=True,
)


#: NVIDIA Fermi (Tesla C2050 class) — the "upcoming Fermi [9]" of the
#: paper's Sections I and VIII.  Modeled values: 144 GB/s, 1.03 TFLOPS SP,
#: 515 GFLOPS DP, 48 KB shared memory and a 128 KB register file per SM.
#: Used to check the Discussion's predictions: LBM SP becomes blockable,
#: and the much higher DP rate makes DP stencils bandwidth bound.
FERMI = MachineSpec(
    name="NVIDIA Fermi (C2050 class)",
    peak_bandwidth=144 * GB,
    achievable_bandwidth=115 * GB,
    peak_ops_sp=1030e9,
    peak_ops_dp=515e9,
    stencil_ops_sp=1030e9 / 2,  # no SFU derate as severe as GT200; madd-capable
    stencil_ops_dp=515e9 / 2,
    cores=14,
    simd_width_sp=32,
    blocking_capacity=128 * KB,  # register file per SM
    llc_bytes=48 * KB,  # configurable shared memory per SM
    frequency_ghz=1.15,
    cache_line=128,
    is_gpu=True,
)


def scaled_machine(
    base: MachineSpec,
    name: str | None = None,
    bandwidth_scale: float = 1.0,
    compute_scale: float = 1.0,
    capacity_scale: float = 1.0,
) -> MachineSpec:
    """A hypothetical machine scaled from ``base`` (Section VIII trends)."""
    return replace(
        base,
        name=name or f"{base.name} (x{compute_scale} compute, x{bandwidth_scale} BW)",
        peak_bandwidth=base.peak_bandwidth * bandwidth_scale,
        achievable_bandwidth=base.achievable_bandwidth * bandwidth_scale,
        peak_ops_sp=base.peak_ops_sp * compute_scale,
        peak_ops_dp=base.peak_ops_dp * compute_scale,
        stencil_ops_sp=base.stencil_ops_sp * compute_scale,
        stencil_ops_dp=base.stencil_ops_dp * compute_scale,
        blocking_capacity=int(base.blocking_capacity * capacity_scale),
        llc_bytes=int(base.llc_bytes * capacity_scale),
    )
