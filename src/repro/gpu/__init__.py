"""GPU execution model: SIMT machine, coalescing, shared memory, 3.5D plans."""

from .coalescing import (
    coalescing_efficiency,
    transactions_for_warp,
    warp_row_transactions,
)
from .executor import GpuExecutor35D, GpuRunReport
from .plan import Gpu35DPlan, plan_7pt_gpu, plan_lbm_gpu
from .sharedmem import bank_conflict_degree, row_exchange_conflicts, shared_fits
from .simt import (
    GTX285_SM,
    Occupancy,
    SharedTraffic,
    SMConfig,
    occupancy,
    simt_stencil_plane,
)

__all__ = [
    "SMConfig",
    "GTX285_SM",
    "Occupancy",
    "occupancy",
    "SharedTraffic",
    "simt_stencil_plane",
    "transactions_for_warp",
    "warp_row_transactions",
    "coalescing_efficiency",
    "bank_conflict_degree",
    "row_exchange_conflicts",
    "shared_fits",
    "Gpu35DPlan",
    "plan_7pt_gpu",
    "plan_lbm_gpu",
    "GpuExecutor35D",
    "GpuRunReport",
]
