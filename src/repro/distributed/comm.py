"""A simulated message-passing communicator (the mpi4py stand-in).

The paper's temporal-blocking lineage extends to distributed memory
(Wittmann, Hager & Wellein, cited in Section II): blocking ``dim_T`` steps
per halo exchange trades message *frequency* for ghost-zone width.  No MPI
runtime is available here, so this module provides a deterministic
in-process communicator with the mpi4py buffer-protocol flavor —
``send``/``recv`` of NumPy arrays by (source, dest, tag) — plus the
accounting a performance study needs: per-rank message and byte counters
and a latency/bandwidth cost model.

Ranks execute sequentially inside the driver (a valid schedule of the real
parallel execution); all sends of a phase complete before the matching
receives, like buffered MPI sends.

Long-running sweeps must survive imperfect transport, so the communicator
also models it: a deterministic per-transmission *loss/corruption* mode
(``loss``/``corruption`` probabilities under a seeded RNG, plus the
``comm.drop``/``comm.corrupt`` fault sites) with a simple ack/retry
protocol on top.  Every payload travels with a checksum; a receiver that
finds the message dropped or checksummed wrong requests a retransmission
from the sender's reliable outbox, up to ``max_retries`` times, before
:class:`CommFailedError` surfaces.  Retries are counted per rank in
:class:`CommStats`, so the cost of an unreliable link is measurable.  The
``comm.delay`` fault site models an ack delayed past its timeout: the
payload is fine but the receiver requests a redundant retransmission.

Ranks can also *die*.  :meth:`SimComm.kill` marks a rank dead, and
:meth:`SimComm.heartbeat` — probed once per rank per blocked round by the
distributed driver — is where the ``rank.crash[=rank][@rounds]`` fault
site fires.  A dead rank never hangs its peers: any receive from (or send
by) a dead rank raises :class:`~repro.resilience.rankrecovery.RankDeadError`
immediately, so failure detection happens at the next halo exchange and
the driver's buddy-checkpoint recovery path takes over (see
:mod:`repro.resilience.rankrecovery`).

Nonblocking operations and the in-flight latency model
------------------------------------------------------
:meth:`SimComm.isend` / :meth:`SimComm.irecv` return :class:`CommRequest`
handles completed by :meth:`SimComm.wait` / :meth:`SimComm.waitall` (or
polled with :meth:`SimComm.test`), mirroring MPI's
``Isend``/``Irecv``/``Wait``.  What makes overlap *measurable* rather than
assumed is the communicator's simulated clock: each rank owns a clock
(nanoseconds), every message posted at sender-time ``t`` becomes ready at
``t + latency + nbytes/bandwidth``, and the compute a rank performs while
messages are in flight is reported via :meth:`SimComm.advance`.  When the
receiver finally waits, the part of the transfer that its own clock has
already moved past is **overlapped** (hidden) time and the remainder —
plus every retransmission the ack/retry protocol needs — is **exposed**
stall time; both are accumulated per rank in
:attr:`CommStats.overlapped_ns` / :attr:`CommStats.exposed_ns`.  A
blocking :meth:`SimComm.recv` is an ``irecv`` waited on immediately, so
its transfer time is fully exposed — exactly the baseline an
exchange-then-compute schedule pays.  The model composes with the fault
sites: a ``comm.delay``-forced redundant retransmission, or a
drop/corruption retry, each costs one more latency+bandwidth term of
exposed time.  With the default ``latency_s=0`` the clock never moves and
every timing counter stays zero.
"""

from __future__ import annotations

import zlib
from collections import deque
from dataclasses import dataclass

import numpy as np

from ..resilience.faultinject import FAULTS, ResilienceError
from ..resilience.rankrecovery import RankDeadError

__all__ = [
    "CommFailedError",
    "CommRequest",
    "CommStats",
    "RankDeadError",
    "SimComm",
    "transfer_time",
]


class CommFailedError(ResilienceError):
    """A message stayed undeliverable after every allowed retransmission."""


@dataclass
class CommStats:
    """Per-rank communication counters."""

    messages_sent: int = 0
    messages_received: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    dropped: int = 0
    corrupted: int = 0
    delayed: int = 0
    retries: int = 0
    #: nonblocking requests posted (isend + irecv) and completed
    posted: int = 0
    completed: int = 0
    #: simulated transfer time hidden behind compute vs exposed as stalls
    overlapped_ns: int = 0
    exposed_ns: int = 0

    def merge(self, other: "CommStats") -> None:
        self.messages_sent += other.messages_sent
        self.messages_received += other.messages_received
        self.bytes_sent += other.bytes_sent
        self.bytes_received += other.bytes_received
        self.dropped += other.dropped
        self.corrupted += other.corrupted
        self.delayed += other.delayed
        self.retries += other.retries
        self.posted += other.posted
        self.completed += other.completed
        self.overlapped_ns += other.overlapped_ns
        self.exposed_ns += other.exposed_ns

    def overlap_fraction(self) -> float | None:
        """Hidden share of the simulated comm time (``None`` if untimed)."""
        total = self.overlapped_ns + self.exposed_ns
        if total == 0:
            return None
        return self.overlapped_ns / total


class _Message:
    """One in-flight message: pristine retransmit copy plus the wire state."""

    __slots__ = ("pristine", "wire", "checksum", "ready_ns", "transfer_ns")

    def __init__(self, pristine: np.ndarray, wire: np.ndarray | None,
                 checksum: int, ready_ns: int = 0, transfer_ns: int = 0) -> None:
        self.pristine = pristine
        self.wire = wire  # None = lost in flight
        self.checksum = checksum
        #: simulated-clock instant the first wire copy arrives at the receiver
        self.ready_ns = ready_ns
        #: latency + bytes/bandwidth cost of one transmission of this payload
        self.transfer_ns = transfer_ns


class CommRequest:
    """Handle for one nonblocking operation (mpi4py ``Request`` stand-in).

    Returned by :meth:`SimComm.isend` / :meth:`SimComm.irecv`; completed by
    :meth:`SimComm.wait` (which returns the payload for receives, ``None``
    for sends) or polled by :meth:`SimComm.test`.  A recovery
    :meth:`SimComm.purge` *cancels* every outstanding request so a crashed
    round can never be hung on — waiting on a cancelled handle raises
    :class:`CommFailedError` instead of blocking forever.
    """

    __slots__ = ("kind", "src", "dst", "tag", "done", "cancelled", "result")

    def __init__(self, kind: str, src: int, dst: int, tag: int) -> None:
        self.kind = kind  # "send" | "recv"
        self.src = src
        self.dst = dst
        self.tag = tag
        self.done = False
        self.cancelled = False
        self.result: np.ndarray | None = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = ("cancelled" if self.cancelled
                 else "done" if self.done else "pending")
        return (f"<CommRequest {self.kind} {self.src}->{self.dst} "
                f"tag={self.tag} {state}>")


def _checksum(array: np.ndarray) -> int:
    return zlib.crc32(np.ascontiguousarray(array).tobytes())


class SimComm:
    """An in-process communicator for ``size`` ranks.

    ``loss`` and ``corruption`` are per-transmission probabilities drawn
    from a ``seed``-initialized RNG (deterministic across runs); the
    ``comm.drop``/``comm.corrupt`` fault sites force the same fates
    regardless of the probabilities.  ``max_retries`` bounds the
    retransmissions the ack/retry protocol attempts per message.

    ``latency_s`` / ``bandwidth_bytes_s`` arm the in-flight cost model:
    one transmission of ``n`` bytes occupies the simulated wire for
    ``latency_s + n / bandwidth_bytes_s`` seconds (``bandwidth_bytes_s=None``
    means infinitely fast, so only the per-message latency counts).  With
    the default ``latency_s=0`` every transfer is instantaneous and the
    overlap accounting stays silent.
    """

    def __init__(
        self,
        size: int,
        *,
        loss: float = 0.0,
        corruption: float = 0.0,
        seed: int = 0,
        max_retries: int = 3,
        latency_s: float = 0.0,
        bandwidth_bytes_s: float | None = None,
    ) -> None:
        if size < 1:
            raise ValueError("size must be >= 1")
        if not 0.0 <= loss < 1.0 or not 0.0 <= corruption < 1.0:
            raise ValueError("loss/corruption must be probabilities in [0, 1)")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if latency_s < 0:
            raise ValueError("latency_s must be >= 0")
        if bandwidth_bytes_s is not None and bandwidth_bytes_s <= 0:
            raise ValueError("bandwidth_bytes_s must be > 0 (or None)")
        self.size = size
        self.loss = loss
        self.corruption = corruption
        self.max_retries = max_retries
        self.latency_s = latency_s
        self.bandwidth_bytes_s = bandwidth_bytes_s
        self._latency_ns = int(round(latency_s * 1e9))
        self._ns_per_byte = (1e9 / bandwidth_bytes_s) if bandwidth_bytes_s else 0.0
        self._rng = np.random.default_rng(seed)
        self._mail: dict[tuple[int, int, int], deque[_Message]] = {}
        self._dead: set[int] = set()
        self._clock_ns = [0] * size
        self._requests: list[CommRequest] = []
        self.stats = [CommStats() for _ in range(size)]

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} outside [0, {self.size})")

    # -- simulated clock -----------------------------------------------
    def transfer_ns(self, nbytes: int) -> int:
        """Simulated wire time of one transmission of ``nbytes``."""
        return self._latency_ns + int(round(nbytes * self._ns_per_byte))

    def now_ns(self, rank: int) -> int:
        """The rank's simulated-clock reading."""
        self._check_rank(rank)
        return self._clock_ns[rank]

    def advance(self, rank: int, dur_ns: int) -> None:
        """Move a rank's clock forward by ``dur_ns`` of local compute.

        This is how overlap becomes measurable: the driver reports the wall
        time of the interior sweep it ran between posting receives and
        waiting on them, and any transfer time the clock has moved past is
        counted as hidden when the wait happens.
        """
        self._check_rank(rank)
        if dur_ns < 0:
            raise ValueError("dur_ns must be >= 0")
        self._clock_ns[rank] += dur_ns

    def sync_clocks(self) -> None:
        """Round barrier: align every rank's clock to the furthest one."""
        top = max(self._clock_ns)
        self._clock_ns = [top] * self.size

    # -- liveness ------------------------------------------------------
    @property
    def dead(self) -> frozenset[int]:
        """The ranks that have died so far."""
        return frozenset(self._dead)

    def alive(self, rank: int) -> bool:
        self._check_rank(rank)
        return rank not in self._dead

    def live_ranks(self) -> list[int]:
        return [r for r in range(self.size) if r not in self._dead]

    def kill(self, rank: int) -> None:
        """Mark ``rank`` dead.  Its pending mail stays queued but any
        receive from it raises :class:`RankDeadError` — peers detect the
        death at their next exchange instead of hanging on a message that
        will never arrive."""
        self._check_rank(rank)
        self._dead.add(rank)

    def heartbeat(self, rank: int) -> bool:
        """One liveness probe, fired per rank per blocked round.

        The ``rank.crash`` fault site is consulted here (``arg`` = rank id,
        ``@after`` = heartbeats survived, i.e. rounds), so deterministic
        mid-run crashes are expressible as ``rank.crash=2@3``.  Returns
        whether the rank is (still) alive.
        """
        self._check_rank(rank)
        if rank in self._dead:
            return False
        if FAULTS.should("rank.crash", detail=str(rank)):
            self.kill(rank)
            return False
        return True

    def purge(self) -> int:
        """Drop all undelivered mail (recovery abandons the broken round);
        returns the number of messages discarded.

        Every outstanding nonblocking request is *cancelled* at the same
        time, so no handle posted before the crash can ever be hung on:
        waiting on a cancelled request raises :class:`CommFailedError`.
        """
        count = sum(len(q) for q in self._mail.values())
        self._mail.clear()
        for req in self._requests:
            if not req.done:
                req.cancelled = True
        self._requests.clear()
        return count

    # -- transport -----------------------------------------------------
    def _transmit(self, src: int, payload: np.ndarray) -> np.ndarray | None:
        """One transmission attempt: the wire copy, corrupted, or ``None``.

        The fault sites are consulted first (so tests can force fates
        deterministically), then the seeded RNG applies the configured
        loss/corruption probabilities.
        """
        if FAULTS.should("comm.drop", detail=str(src)):
            fate = "drop"
        elif FAULTS.should("comm.corrupt", detail=str(src)):
            fate = "corrupt"
        elif self.loss and self._rng.random() < self.loss:
            fate = "drop"
        elif self.corruption and self._rng.random() < self.corruption:
            fate = "corrupt"
        else:
            return payload
        if fate == "drop":
            self.stats[src].dropped += 1
            return None
        wire = payload.copy()
        flat = wire.reshape(-1).view(np.uint8)
        if flat.size == 0:  # nothing to corrupt: treat as a drop
            self.stats[src].dropped += 1
            return None
        flat[int(self._rng.integers(flat.size))] ^= 0xFF  # single bit-level hit
        self.stats[src].corrupted += 1
        return wire

    def send(self, src: int, dst: int, tag: int, array: np.ndarray) -> None:
        """Buffered send: the payload is copied at send time (MPI semantics).

        The pristine copy stays in the sender's outbox until delivery, so
        the receiver-driven retry protocol can retransmit it.  A dead rank
        cannot send; sending *to* a dead rank completes locally (buffered
        semantics — the payload is purged during recovery).
        """
        self._check_rank(src)
        self._check_rank(dst)
        if src in self._dead:
            raise RankDeadError(src, f"dead rank {src} cannot send")
        payload = np.ascontiguousarray(array).copy()
        wire = self._transmit(src, payload)
        cost = self.transfer_ns(payload.nbytes)
        msg = _Message(payload, wire, _checksum(payload),
                       ready_ns=self._clock_ns[src] + cost, transfer_ns=cost)
        self._mail.setdefault((src, dst, tag), deque()).append(msg)
        self.stats[src].messages_sent += 1
        self.stats[src].bytes_sent += payload.nbytes

    def recv(self, src: int, dst: int, tag: int) -> np.ndarray:
        """Receive the oldest matching message; raises if none is pending.

        A dropped or corrupted wire copy triggers the ack/retry protocol:
        the receiver requests a retransmission of the pristine payload
        (each resend counted against both ranks) until it checksums clean
        or ``max_retries`` is exhausted (:class:`CommFailedError`).

        Receiving from a dead rank raises :class:`RankDeadError` at once —
        this is the failure-detection point of the distributed driver: a
        crashed neighbor is noticed at the next halo exchange, never waited
        on.  The ``comm.delay`` fault site fires here too: the ack timer
        expires on a healthy payload and a redundant retransmission is
        requested (counted as ``delayed`` + one retry).

        A blocking receive performs no compute between post and completion,
        so its whole simulated transfer time lands in ``exposed_ns``.
        """
        return self._deliver(src, dst, tag)

    def _deliver(self, src: int, dst: int, tag: int) -> np.ndarray:
        """Complete one receive: retries, byte accounting, clock movement."""
        self._check_rank(src)
        self._check_rank(dst)
        if src in self._dead:
            raise RankDeadError(
                src, f"rank {src} died; detected by rank {dst} at halo exchange"
            )
        if dst in self._dead:
            raise RankDeadError(dst, f"dead rank {dst} cannot receive")
        box = self._mail.get((src, dst, tag))
        if not box:
            raise LookupError(
                f"no message from rank {src} to rank {dst} with tag {tag}"
            )
        msg = box.popleft()
        wire = msg.wire
        if wire is not None and FAULTS.should("comm.delay", detail=str(src)):
            # the ack never made it back in time: discard the (healthy)
            # wire copy and let the retry protocol fetch it again
            self.stats[dst].delayed += 1
            wire = None
        attempts = 0
        while wire is None or _checksum(wire) != msg.checksum:
            if attempts >= self.max_retries:
                raise CommFailedError(
                    f"message {src}->{dst} (tag {tag}) undeliverable after "
                    f"{attempts} retransmission(s)"
                )
            attempts += 1
            self.stats[dst].retries += 1
            # nack + retransmit from the sender's reliable outbox
            self.stats[src].messages_sent += 1
            self.stats[src].bytes_sent += msg.pristine.nbytes
            wire = self._transmit(src, msg.pristine)
        # -- simulated-clock accounting --------------------------------
        # Stall until the first copy arrives; whatever share of the wire
        # time the receiver's clock already moved past was hidden behind
        # its compute.  Every retransmission is a synchronous round trip
        # discovered only at delivery, so retries are always exposed.
        now = self._clock_ns[dst]
        stall = max(0, msg.ready_ns - now)
        hidden = min(max(msg.transfer_ns - stall, 0), msg.transfer_ns)
        retry_ns = attempts * msg.transfer_ns
        self._clock_ns[dst] = max(now, msg.ready_ns) + retry_ns
        self.stats[dst].exposed_ns += stall + retry_ns
        self.stats[dst].overlapped_ns += hidden
        self.stats[dst].messages_received += 1
        self.stats[dst].bytes_received += wire.nbytes
        return wire

    # -- nonblocking operations ----------------------------------------
    def isend(self, src: int, dst: int, tag: int,
              array: np.ndarray) -> CommRequest:
        """Nonblocking send; completes locally at once (buffered semantics).

        The payload is copied into the outbox immediately — like MPI's
        buffered mode, the send-side request is already complete and
        :meth:`wait` on it is free.  The *transfer* still takes simulated
        time: the message becomes ready at the receiver only
        ``transfer_ns`` after the sender's clock at post time.
        """
        self.send(src, dst, tag, array)
        req = CommRequest("send", src, dst, tag)
        req.done = True
        self.stats[src].posted += 1
        self.stats[src].completed += 1
        return req

    def irecv(self, src: int, dst: int, tag: int) -> CommRequest:
        """Post a nonblocking receive; match and deliver at :meth:`wait`.

        Nothing is checked against the mailbox yet — like a real
        ``MPI_Irecv``, the request only records the envelope.  Rank death
        is therefore detected at the *wait*, which is exactly where the
        overlapped driver's recovery path expects it.
        """
        self._check_rank(src)
        self._check_rank(dst)
        req = CommRequest("recv", src, dst, tag)
        self._requests.append(req)
        self.stats[dst].posted += 1
        return req

    def wait(self, req: CommRequest) -> np.ndarray | None:
        """Block until ``req`` completes; returns the payload for receives.

        Raises :class:`RankDeadError` when the peer died since the post
        (the overlap path's failure-detection point),
        :class:`CommFailedError` when the request was cancelled by a
        recovery :meth:`purge` or retries are exhausted, and
        :class:`LookupError` when no matching message was ever posted.
        """
        if req.cancelled:
            raise CommFailedError(
                f"request {req.kind} {req.src}->{req.dst} (tag {req.tag}) "
                "was cancelled by a recovery purge"
            )
        if req.done:
            return req.result
        req.result = self._deliver(req.src, req.dst, req.tag)
        req.done = True
        try:
            self._requests.remove(req)
        except ValueError:  # pragma: no cover - defensive
            pass
        self.stats[req.dst].completed += 1
        return req.result

    def waitall(self, reqs) -> list[np.ndarray | None]:
        """Complete every request, in order; returns their payloads."""
        return [self.wait(r) for r in reqs]

    def test(self, req: CommRequest) -> tuple[bool, np.ndarray | None]:
        """Poll a request: ``(done, payload|None)`` without blocking.

        A receive whose message has not been posted, or whose wire copy
        has not *arrived* on the simulated clock yet, reports ``False``
        without advancing time.  A testable-complete request is delivered
        exactly as :meth:`wait` would.
        """
        if req.cancelled:
            raise CommFailedError(
                f"request {req.kind} {req.src}->{req.dst} (tag {req.tag}) "
                "was cancelled by a recovery purge"
            )
        if req.done:
            return True, req.result
        if req.src in self._dead:
            raise RankDeadError(
                req.src,
                f"rank {req.src} died; detected by rank {req.dst} at test",
            )
        box = self._mail.get((req.src, req.dst, req.tag))
        if not box:
            return False, None
        if box[0].ready_ns > self._clock_ns[req.dst]:
            return False, None
        return True, self.wait(req)

    def outstanding(self) -> int:
        """Nonblocking requests posted but neither completed nor cancelled."""
        return sum(1 for r in self._requests if not r.done and not r.cancelled)

    def sendrecv(
        self,
        rank: int,
        dest: int,
        send_array: np.ndarray,
        source: int,
        tag: int,
    ) -> np.ndarray:
        """Exchange with two partners, the halo-exchange primitive."""
        self.send(rank, dest, tag, send_array)
        return self.recv(source, rank, tag)

    def pending(self) -> int:
        """Messages sent but not yet received (0 after a clean exchange)."""
        return sum(len(q) for q in self._mail.values())

    def total_stats(self) -> CommStats:
        total = CommStats()
        for s in self.stats:
            total.merge(s)
        return total


def transfer_time(
    messages: int,
    nbytes: int,
    latency_s: float = 1e-6,
    bandwidth_bytes_s: float = 10e9,
) -> float:
    """Alpha-beta communication cost: messages*latency + bytes/bandwidth.

    Temporal blocking keeps the byte term constant (the same planes cross
    per simulated time step) while dividing the latency term by ``dim_T``.
    """
    return messages * latency_s + nbytes / bandwidth_bytes_s
