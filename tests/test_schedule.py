"""Unit tests for the 3.5D step schedule (Section V-C / Figure 3a)."""

import pytest

from repro.core import StepKind, build_schedule, lag_for


class TestLag:
    def test_paper_lag_at_radius1(self):
        # concurrent lag R+1 = 2 matches the paper's z_s = z + 2R(dim_T - t'')
        assert lag_for(1, concurrent=True) == 2
        assert lag_for(1, concurrent=False) == 1
        assert lag_for(3, concurrent=True) == 4


class TestBuildSchedule:
    def test_load_coverage(self):
        s = build_schedule(nz=10, radius=1, dim_t=2)
        loads = [st.z for st in s.steps if st.kind is StepKind.LOAD]
        assert loads == list(range(10))

    def test_store_coverage_is_interior(self):
        s = build_schedule(nz=10, radius=1, dim_t=2)
        stores = sorted(st.z for st in s.steps if st.kind is StepKind.STORE)
        assert stores == list(range(1, 9))

    def test_compute_per_intermediate_instance(self):
        s = build_schedule(nz=12, radius=1, dim_t=3)
        for t in (1, 2):
            zs = sorted(st.z for st in s.steps if st.t == t)
            assert zs == list(range(1, 11))

    def test_instances_trail_by_lag(self):
        s = build_schedule(nz=20, radius=1, dim_t=3, concurrent=True)
        for st in s.steps:
            assert st.z == st.iteration - s.lag * st.t

    def test_dependencies_validate_concurrent(self):
        build_schedule(nz=16, radius=1, dim_t=3, concurrent=True).validate()

    def test_dependencies_validate_sequential(self):
        build_schedule(nz=16, radius=1, dim_t=3, concurrent=False).validate()

    def test_dependencies_validate_radius2(self):
        build_schedule(nz=20, radius=2, dim_t=2, concurrent=True).validate()
        build_schedule(nz=20, radius=2, dim_t=2, concurrent=False).validate()

    def test_steps_reads_window(self):
        s = build_schedule(nz=10, radius=2, dim_t=1)
        store = next(st for st in s.steps if st.kind is StepKind.STORE)
        reads = store.reads(2)
        assert reads == [(0, store.z + dz) for dz in range(-2, 3)]
        load = next(st for st in s.steps if st.kind is StepKind.LOAD)
        assert load.reads(2) == []

    def test_phases(self):
        s = build_schedule(nz=30, radius=1, dim_t=2)
        phases = {s.phase_of(st) for st in s.steps}
        assert phases == {"prolog", "steady", "epilog"}
        # prolog comes first: the earliest store iteration bounds it
        first_store_iter = min(
            st.iteration for st in s.steps if st.kind is StepKind.STORE
        )
        for st in s.steps:
            if st.iteration < first_store_iter:
                assert s.phase_of(st) == "prolog"

    def test_concurrent_iterations_are_independent(self):
        """No step in an iteration reads a plane produced in that iteration."""
        s = build_schedule(nz=24, radius=1, dim_t=4, concurrent=True)
        produced_by_iter: dict[tuple[int, int], int] = {}
        for st in s.steps:
            if st.kind is not StepKind.STORE:
                produced_by_iter[(st.t, st.z)] = st.iteration
        shell = {0, 23}
        for st in s.steps:
            for dep in st.reads(1):
                if dep[1] in shell:
                    continue
                assert produced_by_iter[dep] < st.iteration

    def test_too_small_grid_rejected(self):
        with pytest.raises(ValueError):
            build_schedule(nz=2, radius=1, dim_t=1)

    def test_iterations_grouping(self):
        s = build_schedule(nz=10, radius=1, dim_t=2)
        groups = s.iterations()
        assert sum(len(v) for v in groups.values()) == len(s.steps)
        for k, steps in groups.items():
            assert all(st.iteration == k for st in steps)
            # at most one step per time instance per iteration
            instances = [st.t for st in steps]
            assert len(instances) == len(set(instances))
