"""Thread-parallel 3.5D executor (paper Sections V-D and V-E).

This is the paper's chosen parallelization — option (2) of Section V-D:

* every XY sub-plane (at every time instance) is divided row-wise across
  *all* threads, so each thread performs the same amount of external memory
  traffic and stencil computation (the load-balance property the tests
  assert);
* the ``2R+2``-plane (concurrent) ring layout makes the ``dim_T + 1`` steps
  of one z-iteration mutually independent, so threads sweep through an
  entire iteration without intermediate synchronization;
* one barrier separates consecutive z-iterations ("There is a barrier after
  each thread has finished its computation before moving to the next z").

Every thread reads from memory for ``t' = 0``, works in the cached buffers
for the intermediate instances, and writes to memory for ``t' = dim_T`` —
unlike wavefront schemes where dedicated threads own time instances and
bandwidth use is imbalanced (the Section II critique of Habich/Wellein).
"""

from __future__ import annotations

import numpy as np

from ..core.blocking35d import Blocking35D
from ..core.schedule import build_schedule
from ..core.traffic import TrafficStats
from ..obs.metrics import METRICS
from ..obs.trace import TRACE
from ..stencils.base import PlaneKernel
from ..stencils.grid import Field3D, copy_shell
from .partition import partition_span
from .threadpool import WorkerPool

__all__ = ["ParallelBlocking35D", "run_parallel_3_5d"]


class ParallelBlocking35D:
    """Row-partitioned threaded 3.5D executor.

    Numerically identical to the serial :class:`Blocking35D` (and hence the
    naive reference); the schedule requires the concurrent (2R+2 slot) ring
    configuration.
    """

    def __init__(
        self,
        kernel: PlaneKernel,
        dim_t: int,
        tile_y: int,
        tile_x: int,
        n_threads: int,
        pool: WorkerPool | None = None,
        validate: bool = False,
        spmd_deadline: float | None = None,
    ) -> None:
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        self.inner = Blocking35D(
            kernel, dim_t, tile_y, tile_x, concurrent=True, validate=validate
        )
        self.kernel = kernel
        self.n_threads = n_threads
        self._pool = pool
        self._owns_pool = pool is None
        #: watchdog bound (seconds) on each SPMD launch — i.e. on each
        #: z-iteration barrier interval; ``None`` waits forever (the launch
        #: still fails fast if a worker thread dies).
        self.spmd_deadline = spmd_deadline

    @property
    def dim_t(self) -> int:
        """The temporal blocking factor (per-round step granularity)."""
        return self.inner.dim_t

    # ------------------------------------------------------------------
    def run(
        self,
        field: Field3D,
        steps: int,
        traffic: TrafficStats | None = None,
        per_thread_traffic: list[TrafficStats] | None = None,
    ) -> Field3D:
        """Advance ``field`` by ``steps``; optionally collect per-thread stats."""
        if steps < 0:
            raise ValueError("steps must be >= 0")
        if steps == 0:
            return field.copy()
        pool = self._pool or WorkerPool(self.n_threads)
        try:
            # Persistent ping/pong buffers (see Blocking35D._ping_pong): keeps
            # fused-sweep instruction plans bound across runs; the result is
            # copied out below, so returned fields stay independent.
            src, dst = self.inner._ping_pong(field)
            np.copyto(src.data, field.data)
            copy_shell(src, dst, self.kernel.radius)
            thread_stats = [TrafficStats() for _ in range(self.n_threads)]
            token = object()  # shell planes are loaded once per run
            with TRACE.span("sweep", executor="parallel35d", steps=steps,
                            dim_t=self.inner.dim_t, threads=self.n_threads):
                remaining = steps
                round_index = 0
                while remaining > 0:
                    round_t = min(self.inner.dim_t, remaining)
                    with TRACE.span("round", index=round_index,
                                    round_t=round_t):
                        self._sweep_round(
                            pool, src, dst, round_t, traffic, thread_stats,
                            token
                        )
                    src, dst = dst, src
                    remaining -= round_t
                    round_index += 1
            if traffic is not None:
                for ts in thread_stats:
                    traffic.merge(ts)
            if METRICS.armed:
                METRICS.merge_per_thread_traffic(thread_stats)
            if per_thread_traffic is not None:
                per_thread_traffic.extend(thread_stats)
            return src.copy()
        finally:
            if self._owns_pool:
                pool.shutdown()

    # ------------------------------------------------------------------
    def _sweep_round(
        self,
        pool: WorkerPool,
        src: Field3D,
        dst: Field3D,
        round_t: int,
        traffic: TrafficStats | None,
        thread_stats: list[TrafficStats],
        shell_token: object | None = None,
    ) -> None:
        inner = self.inner
        nz, ny, nx = src.shape
        tiles = inner._plan_tiles(ny, nx, round_t)
        schedule = inner._get_schedule(nz, round_t)
        if traffic is not None:
            traffic.notes.setdefault("tiles_per_round", len(tiles))
            traffic.notes.setdefault("threads", self.n_threads)
            traffic.notes.setdefault("round_t", []).append(round_t)
        # Whole-sweep codegen backends (repro.perf.codegen) execute the
        # entire round in one generated call whose tile loop is a numba
        # ``prange`` — the compiled threads replace the WorkerPool here, and
        # the aggregate traffic lands on thread 0's counters.
        sweep_runner = getattr(self.kernel, "sweep_runner", None)
        if sweep_runner is not None:
            runner = sweep_runner(inner, src, dst, round_t, parallel=True)
            if runner is not None:
                if TRACE.armed:
                    with TRACE.span("codegen_round", tiles=len(tiles),
                                    round_t=round_t, threads=self.n_threads):
                        runner.run(shell_token, thread_stats[0])
                else:
                    runner.run(shell_token, thread_stats[0])
                return
        iterations = schedule.iterations()
        tile_runner = getattr(self.kernel, "tile_runner", None)
        armed = TRACE.armed
        for tile in tiles:
            tile_span = TRACE.span(
                "tile", y0=tile.y.core[0], y1=tile.y.core[1],
                x0=tile.x.core[0], x1=tile.x.core[1],
            ) if armed else None
            if tile_span is not None:
                tile_span.__enter__()
            try:
                ctx = inner._tile_context(src, tile, round_t)
                inner._load_shell_planes(src, ctx, traffic, shell_token)
                rows = partition_span(ctx.ey[0], ctx.ey[1], self.n_threads)
                if tile_runner is not None:
                    # Fused sweep: every worker executes the whole z-iteration
                    # on its row span in one call (repro.perf.fused); run_spmd
                    # still supplies the paper's single barrier per z-iteration.
                    runner = tile_runner(inner, src, dst, ctx, schedule, round_t)
                    if runner is not None:
                        for k in runner.iteration_keys:

                            def run_fused(tid: int, k=k) -> None:
                                row = rows[tid]
                                if row[0] >= row[1]:
                                    return
                                runner.run_iteration(
                                    k, rows=row, traffic=thread_stats[tid]
                                )

                            if armed:
                                with TRACE.span("z_iter", k=k, fused=True):
                                    pool.run_spmd(
                                        run_fused, deadline=self.spmd_deadline
                                    )
                            else:
                                pool.run_spmd(
                                    run_fused, deadline=self.spmd_deadline
                                )
                        continue
                regions = inner.instance_regions(ctx, src.shape, round_t)
                for k in sorted(iterations):
                    steps_k = iterations[k]

                    def run_iteration(tid: int, steps_k=steps_k) -> None:
                        row = rows[tid]
                        if row[0] >= row[1]:
                            return
                        for step in steps_k:
                            inner.execute_step(
                                src, dst, ctx, step, regions,
                                thread_stats[tid], rows=row
                            )

                    # run_spmd joins all workers: the per-iteration barrier
                    if armed:
                        with TRACE.span("z_iter", k=k, fused=False):
                            pool.run_spmd(
                                run_iteration, deadline=self.spmd_deadline
                            )
                    else:
                        pool.run_spmd(run_iteration, deadline=self.spmd_deadline)
            finally:
                if tile_span is not None:
                    tile_span.__exit__(None, None, None)


def run_parallel_3_5d(
    kernel: PlaneKernel,
    field: Field3D,
    steps: int,
    dim_t: int,
    tile_y: int,
    tile_x: int,
    n_threads: int = 4,
    *,
    traffic: TrafficStats | None = None,
    validate: bool = False,
) -> Field3D:
    """Convenience wrapper for :class:`ParallelBlocking35D`."""
    return ParallelBlocking35D(
        kernel, dim_t, tile_y, tile_x, n_threads, validate=validate
    ).run(field, steps, traffic)
