"""Pluggable plane-kernel execution backends (the hot-path layer).

The blocking executors make stencils *bandwidth*-efficient, but on the NumPy
substrate the inner kernel itself can be *allocation*-bound: every
``compute_plane`` call of the reference kernels builds 4–6 plane-sized
temporaries.  AN5D and the wavefront-diamond line of work (PAPERS.md) both
show that temporal blocking only pays off once the inner kernel is fused or
compiled; this module provides that layering for the reproduction.

A *backend* is a strategy for executing a :class:`~repro.stencils.base.PlaneKernel`:

``numpy``
    The reference kernels exactly as written — allocating, and the bit-exact
    ground truth every other backend is tested against.
``numpy-inplace``
    Wraps a kernel so every ``compute_plane`` call routes to the kernel's
    ``compute_plane_inplace`` path: all temporaries come from a persistent
    per-kernel :class:`~repro.stencils.base.ScratchArena` and all arithmetic
    uses ``np.add/np.multiply(..., out=...)`` with the same operand pairing,
    so results stay bit-identical while the steady state allocates nothing.
``numba``
    Optional ``@njit``-compiled plane loops, auto-detected at import time.
    Kernels without a compiled specialization fall back to the in-place
    path.  Unavailable (but still listed) when numba is not installed.

Selection: explicitly by name, or via the ``REPRO_BACKEND`` environment
variable (the default when no name is given), or through the CLI's
``--backend`` flag and the empirical autotuner's ``backend=`` parameter.
"""

from __future__ import annotations

import os
from collections.abc import Callable
from dataclasses import dataclass

from ..stencils.base import PlaneKernel, ScratchArena, validate_footprint

__all__ = [
    "REPRO_BACKEND_ENV",
    "Backend",
    "BackendUnavailableError",
    "InplaceKernel",
    "ScratchArena",
    "available_backends",
    "backend_names",
    "default_backend_name",
    "get_backend",
    "register_backend",
    "wrap_kernel",
]

#: environment variable consulted when no backend name is given explicitly
REPRO_BACKEND_ENV = "REPRO_BACKEND"


class BackendUnavailableError(RuntimeError):
    """Raised when a registered backend cannot run in this environment."""


class InplaceKernel(PlaneKernel):
    """Adapter routing ``compute_plane`` to the wrapped kernel's in-place path.

    Owns a :class:`ScratchArena` so repeated calls on the same region shapes
    reuse the same buffers.  Delegates every other part of the
    :class:`PlaneKernel` contract (element size, padding, slab restriction)
    to the wrapped kernel, re-wrapping derived kernels so the in-place path
    survives periodic padding and distributed slab slicing.
    """

    #: executors that can promise dead seam positions on the target plane
    #: (intermediate ring slots) pass ``seam_writable=True`` to
    #: ``compute_plane`` when this attribute is set, letting the in-place
    #: fast paths skip their copy-out (see PlaneKernel.compute_plane_inplace).
    accepts_seam_hint = True

    def __init__(self, inner: PlaneKernel) -> None:
        if isinstance(inner, InplaceKernel):
            inner = inner.inner
        self.inner = inner
        self.radius = inner.radius
        self.ncomp = inner.ncomp
        self.ops_per_update = inner.ops_per_update
        self.flops_per_update = getattr(inner, "flops_per_update", 0)
        self.arena = ScratchArena()

    def __repr__(self) -> str:
        return f"InplaceKernel({self.inner!r})"

    def compute_plane(self, out, src, yr, xr, gz=0, gy0=0, gx0=0, seam_writable=False):
        self.inner.compute_plane_inplace(
            out, src, yr, xr, gz, gy0, gx0,
            arena=self.arena, seam_writable=seam_writable,
        )

    def compute_plane_inplace(
        self, out, src, yr, xr, gz=0, gy0=0, gx0=0, *, arena, seam_writable=False
    ):
        self.inner.compute_plane_inplace(
            out, src, yr, xr, gz, gy0, gx0,
            arena=arena, seam_writable=seam_writable,
        )

    def element_size(self, dtype) -> int:
        return self.inner.element_size(dtype)

    def padded_for(self, halo: int, shape: tuple[int, int, int]) -> PlaneKernel:
        inner = self.inner.padded_for(halo, shape)
        return self if inner is self.inner else InplaceKernel(inner)

    def restricted_to(self, zlo: int, zhi: int) -> PlaneKernel:
        inner = self.inner.restricted_to(zlo, zhi)
        return self if inner is self.inner else InplaceKernel(inner)


# ----------------------------------------------------------------------
# optional numba backend
# ----------------------------------------------------------------------

def _detect_numba() -> tuple[bool, str | None]:
    try:
        import numba  # noqa: F401
    except Exception as exc:  # pragma: no cover - depends on environment
        return False, f"numba not importable: {exc}"
    return True, None


_NUMBA_AVAILABLE, _NUMBA_REASON = _detect_numba()
_SEVEN_POINT_JIT = None


def _seven_point_jit():  # pragma: no cover - requires numba
    """Compile (once) the scalar-loop 7-point plane update.

    The loop associates the neighbor sums exactly as the NumPy reference —
    ``((below+above) + (y-pair)) + (x-pair)`` — and numba's default
    ``fastmath=False`` forbids FMA contraction, so results are bit-identical.
    """
    global _SEVEN_POINT_JIT
    if _SEVEN_POINT_JIT is None:
        import numba

        @numba.njit(cache=False)
        def run(out, below, mid, above, y0, y1, x0, x1, alpha, beta):
            for y in range(y0, y1):
                for x in range(x0, x1):
                    acc = (
                        (below[y, x] + above[y, x])
                        + (mid[y - 1, x] + mid[y + 1, x])
                    ) + (mid[y, x - 1] + mid[y, x + 1])
                    out[y, x] = alpha * mid[y, x] + beta * acc

        _SEVEN_POINT_JIT = run
    return _SEVEN_POINT_JIT


class _NumbaSevenPoint(PlaneKernel):  # pragma: no cover - requires numba
    """njit-compiled SevenPointStencil (same coefficients, same bits)."""

    radius = 1
    ncomp = 1

    def __init__(self, inner) -> None:
        self.inner = inner
        self.ops_per_update = inner.ops_per_update
        self.flops_per_update = getattr(inner, "flops_per_update", 0)
        self._fn = _seven_point_jit()

    def __repr__(self) -> str:
        return f"NumbaSevenPoint({self.inner!r})"

    def compute_plane(self, out, src, yr, xr, gz=0, gy0=0, gx0=0):
        validate_footprint(out.shape[1:], yr, xr, self.radius)
        dtype = out.dtype.type
        self._fn(
            out[0],
            src[0][0],
            src[1][0],
            src[2][0],
            yr[0],
            yr[1],
            xr[0],
            xr[1],
            dtype(self.inner.alpha),
            dtype(self.inner.beta),
        )


def _wrap_numba(kernel: PlaneKernel) -> PlaneKernel:  # pragma: no cover
    from ..stencils.seven_point import SevenPointStencil

    if not _NUMBA_AVAILABLE:
        raise BackendUnavailableError(f"backend 'numba' unavailable: {_NUMBA_REASON}")
    if type(kernel) is SevenPointStencil:
        return _NumbaSevenPoint(kernel)
    # no compiled specialization: the in-place path is the next-best hot path
    return InplaceKernel(kernel)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Backend:
    """A named kernel-execution strategy."""

    name: str
    description: str
    wrap: Callable[[PlaneKernel], PlaneKernel]
    available: bool = True
    unavailable_reason: str | None = None


_REGISTRY: dict[str, Backend] = {}


def register_backend(backend: Backend) -> None:
    """Add (or replace) a backend in the registry."""
    _REGISTRY[backend.name] = backend


def backend_names() -> list[str]:
    """All registered backend names, available or not."""
    return list(_REGISTRY)


def available_backends() -> list[str]:
    """Names of the backends that can run in this environment."""
    return [name for name, b in _REGISTRY.items() if b.available]


def get_backend(name: str) -> Backend:
    """Look up a backend by name; raises ``ValueError`` on unknown names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; registered: {', '.join(_REGISTRY)}"
        ) from None


def default_backend_name() -> str:
    """The backend used when none is named: ``$REPRO_BACKEND`` or ``numpy``."""
    return os.environ.get(REPRO_BACKEND_ENV, "numpy")


def wrap_kernel(kernel: PlaneKernel, backend: str | None = None) -> PlaneKernel:
    """Bind ``kernel`` to a backend (default: :func:`default_backend_name`).

    Raises :class:`BackendUnavailableError` when the backend exists but
    cannot run here (e.g. ``numba`` without numba installed).
    """
    b = get_backend(backend if backend is not None else default_backend_name())
    if not b.available:
        raise BackendUnavailableError(
            f"backend {b.name!r} unavailable: {b.unavailable_reason}"
        )
    return b.wrap(kernel)


register_backend(
    Backend(
        name="numpy",
        description="reference NumPy kernels (allocating; bit-exact ground truth)",
        wrap=lambda kernel: kernel,
    )
)
register_backend(
    Backend(
        name="numpy-inplace",
        description="preallocated scratch arena + out= ufuncs (bit-identical, "
        "allocation-free steady state)",
        wrap=InplaceKernel,
    )
)
register_backend(
    Backend(
        name="numba",
        description="njit-compiled plane loops (7pt; other kernels fall back "
        "to the in-place path)",
        wrap=_wrap_numba,
        available=_NUMBA_AVAILABLE,
        unavailable_reason=_NUMBA_REASON,
    )
)
