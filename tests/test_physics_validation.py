"""Quantitative physics validation of the substrates against analytic results.

The blocking machinery is validated by bit-exactness; these tests validate
that the *kernels themselves* solve the PDEs they claim to:

* the 7-point Jacobi update has the exact discrete-Fourier symbol
  ``lambda(k) = alpha + 2*beta*(cos kz + cos ky + cos kx)`` — a single mode
  on a torus decays by ``lambda^T``;
* one Jacobi step equals a scipy.ndimage correlation with the stencil mask;
* a D3Q19 shear wave decays at the BGK viscosity
  ``nu = (1/omega - 1/2)/3`` — the standard LBM validation.
"""

import numpy as np
import pytest
import scipy.ndimage

from repro.core import run_3_5d_periodic, run_naive_periodic
from repro.lbm import Lattice, make_kernel, velocity
from repro.stencils import Field3D, SevenPointStencil


class TestHeatEquationSpectrum:
    def mode_field(self, n, kvec):
        z, y, x = np.meshgrid(np.arange(n), np.arange(n), np.arange(n), indexing="ij")
        phase = 2 * np.pi * (kvec[0] * z + kvec[1] * y + kvec[2] * x) / n
        return Field3D.from_array(np.cos(phase))

    @pytest.mark.parametrize("kvec", [(1, 0, 0), (1, 2, 0), (2, 2, 1)])
    def test_fourier_mode_decay(self, kvec):
        n, steps, beta = 16, 10, 0.05
        kernel = SevenPointStencil(alpha=1 - 6 * beta, beta=beta)
        field = self.mode_field(n, kvec)
        out = run_naive_periodic(kernel, field, steps)
        w = 2 * np.pi * np.asarray(kvec) / n
        lam = 1 - 6 * beta + 2 * beta * np.cos(w).sum()
        expected = field.data * lam**steps
        np.testing.assert_allclose(out.data, expected, atol=1e-12)

    def test_mode_decay_through_blocked_executor(self):
        """The same physics through the 3.5D periodic path."""
        n, steps, beta = 12, 6, 0.04
        kernel = SevenPointStencil(alpha=1 - 6 * beta, beta=beta)
        field = self.mode_field(n, (1, 1, 0))
        out = run_3_5d_periodic(kernel, field, steps, 2, 10, 10)
        w = 2 * np.pi / n
        lam = 1 - 6 * beta + 2 * beta * (2 * np.cos(w) + 1)
        np.testing.assert_allclose(out.data, field.data * lam**steps, atol=1e-12)

    def test_stability_limit(self):
        """beta <= 1/6 is the explicit-Euler stability bound; beyond it the
        checkerboard mode grows."""
        n = 8
        z, y, x = np.meshgrid(*(np.arange(n),) * 3, indexing="ij")
        checker = Field3D.from_array(((-1.0) ** (z + y + x)))
        stable = SevenPointStencil(alpha=1 - 6 * 0.1, beta=0.1)
        unstable = SevenPointStencil(alpha=1 - 6 * 0.2, beta=0.2)
        s = run_naive_periodic(stable, checker, 10)
        u = run_naive_periodic(unstable, checker, 10)
        assert np.abs(s.data).max() < 1.0
        assert np.abs(u.data).max() > 1.0


class TestScipyCrossCheck:
    def test_one_step_equals_ndimage_correlate(self):
        alpha, beta = 0.37, 0.08
        kernel = SevenPointStencil(alpha=alpha, beta=beta)
        f = Field3D.random((10, 11, 12), seed=0)
        ours = run_naive_periodic(kernel, f, 1)
        mask = np.zeros((3, 3, 3))
        mask[1, 1, 1] = alpha
        for off in [(0, 1, 1), (2, 1, 1), (1, 0, 1), (1, 2, 1), (1, 1, 0), (1, 1, 2)]:
            mask[off] = beta
        ref = scipy.ndimage.correlate(f.data[0], mask, mode="wrap")
        np.testing.assert_allclose(ours.data[0], ref, rtol=1e-12)

    def test_27pt_equals_ndimage_correlate(self):
        from repro.stencils import TwentySevenPointStencil

        k = TwentySevenPointStencil(center=0.3, face=0.05, edge=0.02, corner=0.01)
        f = Field3D.random((8, 9, 10), seed=1)
        ours = run_naive_periodic(k, f, 1)
        mask = np.empty((3, 3, 3))
        for dz in range(3):
            for dy in range(3):
                for dx in range(3):
                    dist = abs(dz - 1) + abs(dy - 1) + abs(dx - 1)
                    mask[dz, dy, dx] = [k.center, k.face, k.edge, k.corner][dist]
        ref = scipy.ndimage.correlate(f.data[0], mask, mode="wrap")
        np.testing.assert_allclose(ours.data[0], ref, rtol=1e-11)


class TestLbmShearWaveDecay:
    @pytest.mark.parametrize("omega", [1.0, 1.4, 0.8])
    def test_viscosity_matches_bgk_theory(self, omega):
        """u_x(z) = U sin(2 pi z / N) decays as exp(-nu k^2 t)."""
        n, steps, amp = 24, 40, 0.005
        z = np.arange(n)
        u = np.zeros((3, n, n, n))
        u[2] = amp * np.sin(2 * np.pi * z / n)[:, None, None]
        lat = Lattice.from_moments(np.ones((n, n, n)), u)
        kernel = make_kernel(lat, omega=omega)
        out_f = run_naive_periodic(kernel, lat.f, steps)
        ux = velocity(out_f)[2]
        measured_amp = np.abs(
            np.fft.fft(ux.mean(axis=(1, 2)))[1]
        ) * 2 / n
        nu = (1 / omega - 0.5) / 3
        k = 2 * np.pi / n
        expected_amp = amp * np.exp(-nu * k * k * steps)
        assert measured_amp == pytest.approx(expected_amp, rel=0.02)

    def test_density_wave_oscillates_at_sound_speed(self):
        """A pressure wave is acoustic, not diffusive: at a quarter period
        (T/4 = N / (4 c_s) ~ 10 steps for N=24) the density perturbation has
        converted into velocity, and near the half period it reappears with
        opposite sign — sanity that the shear test measures viscosity, not
        sound."""
        n = 24
        z = np.arange(n)
        rho = 1.0 + 0.01 * np.sin(2 * np.pi * z / n)[:, None, None] * np.ones((n, n, n))
        lat = Lattice.from_moments(rho, np.zeros((3, n, n, n)))
        kernel = make_kernel(lat, omega=1.2)
        from repro.lbm import density

        quarter = run_naive_periodic(kernel, lat.f, 10)
        # density perturbation nearly gone, energy now in the velocity field
        assert np.abs(density(quarter) - 1.0).max() < 0.002
        assert np.abs(velocity(quarter)[0]).max() > 0.003  # u_z motion

        half = run_naive_periodic(kernel, lat.f, 21)
        drho_half = density(half) - 1.0
        # sign-flipped density wave: anticorrelated with the initial one
        corr = float((drho_half * (rho - 1.0)).sum())
        assert corr < 0
        assert np.abs(drho_half).max() > 0.004
