"""Blocking-parameter selection (paper Equations 1, 3, 4).

Given the kernel's bandwidth-to-compute ratio γ (bytes/op after perfect
spatial blocking), the machine's peak bytes/op Γ, the on-chip capacity C and
the element size E, the paper's framework chooses:

* the temporal factor ``dim_T ≥ η = ⌈γ/Γ⌉`` (Equation 3) — the minimum
  bandwidth reduction that makes the kernel compute bound; larger values
  only increase overestimation, so the minimum is used;
* the blocking dimensions
  ``dim_X = dim_Y = ⌊sqrt(C / (E·(2R+2)·dim_T))⌋`` (Equation 4), which
  minimizes overestimation subject to the capacity constraint
  ``E·(2R+2)·dim_T·dim_X·dim_Y ≤ C`` (Equation 1).

Reproduced paper instances (Section VI) — see ``tests/test_params.py``:

* 7-point CPU, C = 4 MB: dim_T = 2; SP dim_X ≈ 362 → 360 aligned, κ ≈ 1.02;
  DP dim_X = 256, κ ≈ 1.03.
* LBM CPU (E = 80/160 B): dim_T = 3; SP dim_X 66 → 64, κ ≈ 1.21;
  DP dim_X 46 → 44, κ ≈ 1.34.
* 7-point GPU (C = 64 KB register file): dim_T = 2, dim_X ≤ 45 → 32
  (warp-width aligned), κ ≈ 1.31.
* LBM GPU (C = 16 KB shared memory): dim_X ≤ 2–3 < 2·R·dim_T — blocking
  infeasible, matching the paper's conclusion.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "min_dim_t",
    "blocking_dim",
    "capacity_bytes_needed",
    "fits_capacity",
    "BlockingParams",
    "select_params",
    "InfeasibleBlockingError",
]


class InfeasibleBlockingError(ValueError):
    """Raised when no valid blocking exists for the given capacity."""


def min_dim_t(gamma: float, big_gamma: float) -> int:
    """Equation 3: minimum temporal factor η = ⌈γ/Γ⌉ to become compute bound."""
    if gamma <= 0 or big_gamma <= 0:
        raise ValueError("gamma and Gamma must be positive")
    return max(1, math.ceil(gamma / big_gamma))


def blocking_dim(
    capacity: int,
    element_size: int,
    radius: int,
    dim_t: int,
    planes_per_instance: int | None = None,
    align: int = 1,
) -> int:
    """Equation 4: square blocking dimension for a given configuration.

    ``planes_per_instance`` defaults to the concurrent scheme's ``2R+2``.
    ``align`` rounds the result down to a multiple (SIMD width or warp size).
    """
    planes = (2 * radius + 2) if planes_per_instance is None else planes_per_instance
    denom = element_size * planes * dim_t
    if denom <= 0:
        raise ValueError("invalid configuration")
    d = int(math.isqrt(capacity // denom))
    if align > 1:
        d = (d // align) * align
    return d


def capacity_bytes_needed(
    element_size: int,
    radius: int,
    dim_t: int,
    dim_x: int,
    dim_y: int,
    planes_per_instance: int | None = None,
) -> int:
    """LHS of Equation 1: on-chip bytes a blocking configuration occupies."""
    planes = (2 * radius + 2) if planes_per_instance is None else planes_per_instance
    return element_size * planes * dim_t * dim_x * dim_y


def fits_capacity(
    capacity: int,
    element_size: int,
    radius: int,
    dim_t: int,
    dim_x: int,
    dim_y: int,
    planes_per_instance: int | None = None,
) -> bool:
    """Equation 1 as a predicate."""
    return (
        capacity_bytes_needed(
            element_size, radius, dim_t, dim_x, dim_y, planes_per_instance
        )
        <= capacity
    )


@dataclass(frozen=True)
class BlockingParams:
    """A complete 3.5D configuration plus its analytic overheads."""

    dim_t: int
    dim_x: int
    dim_y: int
    radius: int
    element_size: int
    kappa: float
    compute_overestimation: float
    buffer_bytes: int
    feasible: bool
    #: why the configuration is infeasible, when it is
    reason: str = ""

    def bandwidth_reduction(self) -> float:
        """Net bandwidth reduction over no-blocking: dim_T / κ (Section V-E)."""
        return self.dim_t / self.kappa


def select_params(
    gamma: float,
    big_gamma: float,
    capacity: int,
    element_size: int,
    radius: int = 1,
    align: int = 4,
    dim_t: int | None = None,
    concurrent: bool = True,
) -> BlockingParams:
    """Select 3.5D parameters per the paper's framework (Equations 1–4).

    Uses the minimum ``dim_T`` of Equation 3 unless one is given.  Returns a
    :class:`BlockingParams` whose ``feasible`` flag is False when the derived
    block dimension cannot host the ``2·R·dim_T`` ghost cells — the situation
    of LBM on the GTX 285's 16 KB shared memory (Section VI-B).
    """
    from .overestimation import compute_overestimation_35d, kappa_35d

    planes = 2 * radius + (2 if concurrent else 1)
    dt = min_dim_t(gamma, big_gamma) if dim_t is None else dim_t
    d = blocking_dim(capacity, element_size, radius, dt, planes, align)
    min_d = 2 * radius * dt + 1
    if d < min_d:
        # report the unaligned bound in the reason, like the paper's
        # "dim_X <= 2, which is too small".
        raw = blocking_dim(capacity, element_size, radius, dt, planes, align=1)
        return BlockingParams(
            dim_t=dt,
            dim_x=d,
            dim_y=d,
            radius=radius,
            element_size=element_size,
            kappa=math.inf,
            compute_overestimation=math.inf,
            buffer_bytes=capacity_bytes_needed(element_size, radius, dt, d, d, planes),
            feasible=False,
            reason=(
                f"dim_X <= {raw} cannot host 2*R*dim_T = {2 * radius * dt} ghost "
                f"cells; capacity {capacity} B is too small for temporal blocking"
            ),
        )
    return BlockingParams(
        dim_t=dt,
        dim_x=d,
        dim_y=d,
        radius=radius,
        element_size=element_size,
        kappa=kappa_35d(radius, dt, d),
        compute_overestimation=compute_overestimation_35d(radius, dt, d),
        buffer_bytes=capacity_bytes_needed(element_size, radius, dt, d, d, planes),
        feasible=True,
    )
