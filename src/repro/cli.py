"""Command-line interface: run, tune, and reproduce from the shell.

Subcommands
-----------
``repro run``        execute a kernel with a chosen blocking scheme, verify
                     against the naive reference, and report traffic.
``repro tune``       print the Section VI decision for a kernel/machine.
``repro reproduce``  regenerate paper artifacts (tables/figures) as text.
``repro schedule``   render and validate the Figure-3a step schedule.
``repro trace``      summarize a chrome-trace JSON written by ``run --trace``.
``repro faults``     list the deterministic fault-injection sites and grammar.
``repro chaos``      seeded chaos soak: randomized fault schedules against the
                     distributed driver (``--target distributed``, default) or
                     the serve daemon (``--target serve``), asserting
                     bit-exactness (exit 4 on a red seed, with an optional
                     repro bundle).
``repro serve``      run the long-lived sweep daemon on a unix socket:
                     admission control, deadlines, graceful degradation,
                     journaled crash-safe lifecycle.
``repro submit``     submit one job to a running daemon (optionally wait for
                     its verdict; the exit code mirrors the job's 0/2/3/4).
                     ``--trace`` mints a trace_id and writes one merged
                     client+daemon Perfetto trace of the job's whole life.
``repro jobs``       list a running daemon's jobs or print its stats
                     (``--watch`` refreshes, ``--prom`` dumps Prometheus
                     text exposition).
``repro top``        live queue/tenant/SLO view of a running daemon.
``repro bench``      ``bench diff`` compares BENCH_*.json results against
                     committed baselines with noise-aware thresholds
                     (exit 4 on regression; the CI perf gate).
``repro info``       version, machine table, package inventory.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="3.5D blocking for stencil computations (Nguyen et al., SC'10)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a kernel with a blocking scheme")
    run.add_argument("--kernel", choices=["7pt", "27pt", "lbm"], default="7pt")
    run.add_argument(
        "--scheme",
        choices=["naive", "3d", "2.5d", "4d", "3.5d", "cache-oblivious"],
        default="3.5d",
    )
    run.add_argument("--grid", type=int, default=48, help="cubic grid side")
    run.add_argument("--steps", type=int, default=4)
    run.add_argument("--dim-t", type=int, default=2)
    run.add_argument("--tile", type=int, default=32, help="dim_X = dim_Y")
    run.add_argument("--precision", choices=["sp", "dp"], default="sp")
    run.add_argument("--threads", type=int, default=1)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--no-check", action="store_true", help="skip the naive cross-check"
    )
    run.add_argument(
        "--backend",
        default=None,
        help="kernel backend (default: $REPRO_BACKEND or 'numpy'); "
        "'codegen' compiles whole sweeps to cached parallel kernels; "
        "see 'repro info' for the registry",
    )
    run.add_argument(
        "--tune",
        choices=["wallclock"],
        default=None,
        help="auto-pick dim_T/tile before running (3.5d scheme only): "
        "'wallclock' times real sweeps and caches the winner on disk",
    )
    run.add_argument(
        "--no-fallback",
        action="store_true",
        help="bind the requested backend directly; a failure aborts instead "
        "of degrading down the fallback chain",
    )
    run.add_argument(
        "--health",
        choices=["off", "raise", "warn", "repair"],
        default="raise",
        help="per-round NaN/Inf policy (default 'raise'); 'repair' rolls "
        "back to the last good state",
    )
    run.add_argument(
        "--verify",
        choices=["off", "spot", "seal", "full"],
        default="off",
        help="silent-data-corruption integrity tier (default off): 'spot' "
        "CRC-seals planes per round plus sampled re-execution, 'seal' adds "
        "digest-enforced checkpoints and the cross-rank halo handshake, "
        "'full' re-derives every plane from the last trusted state; "
        "detected corruption is healed surgically (cone replay) and the "
        "run exits 3, unhealable corruption exits 4",
    )
    run.add_argument(
        "--retries", type=int, default=0,
        help="retries per round for rounds that raise (default 0)",
    )
    run.add_argument(
        "--checkpoint", default=None, metavar="PATH",
        help="snapshot the grid to PATH every --checkpoint-every rounds",
    )
    run.add_argument(
        "--checkpoint-every", type=int, default=1, metavar="N",
        help="rounds between snapshots (default 1)",
    )
    run.add_argument(
        "--resume", action="store_true",
        help="restart from the --checkpoint snapshot if one matches this run",
    )
    run.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="watchdog deadline per threaded z-sweep (--threads > 1); a "
        "stalled worker raises with per-thread stack dumps",
    )
    run.add_argument(
        "--trace", default=None, metavar="PATH",
        help="record sweep/round/z_iter/tile spans and write a chrome-trace "
        "JSON to PATH (open with Perfetto or chrome://tracing)",
    )
    run.add_argument(
        "--metrics", nargs="?", const="metrics.json", default=None,
        metavar="PATH",
        help="collect counters (bytes, barrier wait, comm, resilience) and "
        "write a metrics JSON (default metrics.json), including the "
        "measured-vs-model kappa validation for the 3.5d scheme",
    )
    run.add_argument(
        "--ranks", type=int, default=1, metavar="N",
        help="simulate a distributed slab run over N ranks (SimComm halo "
        "exchange; schemes 3.5d and naive, reference kernel only)",
    )
    run.add_argument(
        "--loss", type=float, default=0.0,
        help="per-message drop probability of the simulated transport "
        "(--ranks > 1); recovered via ack/retry and surfaced in the summary",
    )
    run.add_argument(
        "--corruption", type=float, default=0.0,
        help="per-message corruption probability of the simulated transport "
        "(--ranks > 1)",
    )
    run.add_argument(
        "--no-recovery", action="store_true",
        help="disable rank-failure tolerance (--ranks > 1): no buddy "
        "checkpoints, a dead rank aborts the run instead of recovering",
    )
    run.add_argument(
        "--overlap", action=argparse.BooleanOptionalAction, default=True,
        help="hide halo-exchange latency behind the interior sweep "
        "(post -> interior -> wait -> boundary; --ranks > 1, default on); "
        "--no-overlap restores exchange-then-compute",
    )
    run.add_argument(
        "--comm-latency", type=float, default=0.0, metavar="SECONDS",
        help="simulated per-message latency of the distributed transport "
        "(--ranks > 1); arms the hidden-vs-exposed comm accounting",
    )
    run.add_argument(
        "--comm-bandwidth", type=float, default=None, metavar="BYTES_PER_S",
        help="simulated transport bandwidth (--ranks > 1, default infinite)",
    )

    tune = sub.add_parser("tune", help="Section VI parameter selection")
    tune.add_argument("--kernel", choices=["7pt", "27pt", "lbm"], default="7pt")
    tune.add_argument("--machine", choices=["corei7", "gtx285"], default="corei7")
    tune.add_argument("--precision", choices=["sp", "dp"], default="sp")
    tune.add_argument("--capacity", type=int, default=None, help="override bytes")
    tune.add_argument(
        "--mode",
        choices=["analytic", "wallclock"],
        default="analytic",
        help="'analytic' applies the paper's closed forms; 'wallclock' times "
        "real sweeps on this host and persists the winner in the tuning cache",
    )
    tune.add_argument(
        "--backend",
        default=None,
        help="backend for wallclock probes (default 'fused-numpy')",
    )
    tune.add_argument(
        "--probe-grid", type=int, default=32,
        help="cubic probe side for wallclock LBM tuning (default 32)",
    )
    tune.add_argument(
        "--refresh", action="store_true",
        help="ignore cached wallclock winners and re-measure",
    )
    tune.add_argument(
        "--prune", action="store_true",
        help="LRU-prune the on-disk tuning cache down to the entry cap "
        "($REPRO_TUNE_CACHE_MAX_ENTRIES or --cache-max) and exit",
    )
    tune.add_argument(
        "--cache-max", type=int, default=None, metavar="N",
        help="entry cap used by --prune (default: the env var, else 256)",
    )

    rep = sub.add_parser("reproduce", help="regenerate paper artifacts")
    rep.add_argument(
        "artifact",
        nargs="?",
        default="all",
        choices=["all", "table1", "fig4a", "fig4b", "fig4c", "fig5a", "fig5b", "comparisons"],
    )

    sched = sub.add_parser("schedule", help="print the Figure-3a step schedule")
    sched.add_argument("--nz", type=int, default=12)
    sched.add_argument("--dim-t", type=int, default=3)
    sched.add_argument("--radius", type=int, default=1)
    sched.add_argument("--sequential", action="store_true",
                       help="use the 2R+1-plane sequential variant")
    sched.add_argument("--iterations", type=int, default=None,
                       help="truncate the printout")

    trace = sub.add_parser(
        "trace", help="summarize a chrome-trace JSON written by run --trace"
    )
    trace.add_argument("file", help="path to a repro.trace/v1 JSON file")

    faults = sub.add_parser(
        "faults", help="list the deterministic fault-injection sites"
    )
    faults.add_argument(
        "--list", action="store_true", dest="list_sites",
        help="enumerate every fault site with the spec grammar (default)",
    )

    chaos = sub.add_parser(
        "chaos",
        help="seeded chaos soak (distributed driver or serve daemon)",
        description="Run randomized-but-reproducible fault schedules against "
        "the distributed 3.5D driver (rank crashes, message loss, corruption, "
        "delayed acks) or the serve daemon (accept drops, worker stalls, "
        "journal tears, deadline storms, hard kills) and assert results are "
        "bit-identical to a fault-free reference. Exit 0 when every seed "
        "passes, 4 when any seed fails.",
    )
    chaos.add_argument(
        "--target", choices=["distributed", "serve", "sdc"],
        default="distributed",
        help="what to soak (default: the distributed driver); 'sdc' soaks "
        "the silent-data-corruption defense with seeded memory.flip / "
        "disk.bitrot schedules",
    )
    chaos.add_argument("--seeds", type=int, default=3, metavar="N",
                       help="number of seeds to soak (default 3)")
    chaos.add_argument("--seed-base", type=int, default=0, metavar="S",
                       help="first seed; seeds are S..S+N-1 (default 0)")
    chaos.add_argument("--ranks", type=int, default=4)
    chaos.add_argument("--grid", type=int, default=None,
                       help="cubic grid side (default: 24 distributed, "
                       "12 serve)")
    chaos.add_argument("--steps", type=int, default=6)
    chaos.add_argument("--dim-t", type=int, default=2)
    chaos.add_argument("--jobs", type=int, default=12, metavar="N",
                       help="jobs per seed (--target serve, default 12)")
    chaos.add_argument("--tier", choices=["spot", "seal", "full"],
                       default="full",
                       help="integrity tier to soak (--target sdc, "
                       "default full)")
    chaos.add_argument(
        "--schedules", default=None,
        help="comma-separated fault families to draw from (default: all "
        "families of the chosen target)",
    )
    chaos.add_argument(
        "--bundle", default=None, metavar="DIR",
        help="write a repro bundle (fault specs, case JSON, recovery trace) "
        "for every failing seed under DIR",
    )

    serve = sub.add_parser(
        "serve",
        help="run the long-lived sweep daemon on a unix socket",
        description="Accept stencil jobs over a unix socket with token-bucket "
        "admission control, per-tenant quotas, a bounded priority queue, "
        "per-job deadlines, and a journaled crash-safe lifecycle. SIGTERM "
        "drains with zero accepted-job loss; restart after a hard kill "
        "recovers from the journal plus per-job checkpoints.",
    )
    serve.add_argument("--socket", default="repro-serve.sock", metavar="PATH",
                       help="unix socket path (default repro-serve.sock)")
    serve.add_argument("--state-dir", default=".repro-serve", metavar="DIR",
                       help="journal + checkpoint directory "
                       "(default .repro-serve)")
    serve.add_argument("--workers", type=int, default=2)
    serve.add_argument("--rate", type=float, default=100.0,
                       help="sustained accepts/second (token bucket)")
    serve.add_argument("--burst", type=float, default=200.0,
                       help="token-bucket burst capacity")
    serve.add_argument("--queue-cap", type=int, default=16,
                       help="bounded queue capacity (default 16)")
    serve.add_argument("--tenant-quota", type=int, default=8,
                       help="max inflight jobs per tenant (default 8)")
    serve.add_argument("--deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="default per-job deadline when the job sets none")
    serve.add_argument("--no-fsync", action="store_true",
                       help="skip journal fsyncs (tests only; weakens the "
                       "zero-loss guarantee)")

    submit = sub.add_parser(
        "submit", help="submit one job to a running serve daemon"
    )
    submit.add_argument("--socket", default="repro-serve.sock", metavar="PATH")
    submit.add_argument("--kernel", choices=["7pt", "27pt"], default="7pt")
    submit.add_argument("--grid", type=int, default=16)
    submit.add_argument("--steps", type=int, default=4)
    submit.add_argument("--dim-t", type=int, default=2)
    submit.add_argument("--tile", type=int, default=8)
    submit.add_argument("--precision", choices=["sp", "dp"], default="sp")
    submit.add_argument("--seed", type=int, default=0)
    submit.add_argument("--backend", default=None)
    submit.add_argument("--priority", type=int, default=1,
                        help="0 = highest; larger numbers shed first")
    submit.add_argument("--tenant", default="default")
    submit.add_argument("--deadline", type=float, default=None,
                        metavar="SECONDS")
    submit.add_argument("--no-verify", action="store_true",
                        help="skip the naive cross-check on the daemon")
    submit.add_argument("--integrity",
                        choices=["off", "spot", "seal", "full"],
                        default="off",
                        help="silent-data-corruption integrity tier for the "
                        "job (default off); verification cpu is metered to "
                        "the tenant and the tier is shed under amber "
                        "overload like result verification")
    submit.add_argument("--wait", action="store_true",
                        help="poll until the job is terminal; the exit code "
                        "mirrors the job's verdict (0/2/3/4)")
    submit.add_argument("--timeout", type=float, default=300.0,
                        help="--wait poll budget in seconds (default 300)")
    submit.add_argument("--trace", default=None, metavar="PATH",
                        help="mint a trace_id, collect the job's client- and "
                        "daemon-side spans, and write one merged Perfetto "
                        "trace to PATH (requires --wait)")

    jobs = sub.add_parser(
        "jobs", help="list a running serve daemon's jobs or stats"
    )
    jobs.add_argument("--socket", default="repro-serve.sock", metavar="PATH")
    jobs.add_argument("--stats", action="store_true",
                      help="print daemon stats instead of the job table")
    jobs.add_argument("--drain", action="store_true",
                      help="ask the daemon to drain and shut down")
    jobs.add_argument("--watch", action="store_true",
                      help="refresh the queue/tenant/SLO table until "
                      "interrupted")
    jobs.add_argument("--interval", type=float, default=2.0, metavar="S",
                      help="--watch refresh period in seconds (default 2)")
    jobs.add_argument("--iterations", type=int, default=0, metavar="N",
                      help="stop --watch after N refreshes (0 = forever)")
    jobs.add_argument("--prom", default=None, metavar="FILE",
                      help="write the daemon metrics as Prometheus text "
                      "exposition to FILE ('-' for stdout)")

    top = sub.add_parser(
        "top", help="live queue/tenant/SLO view of a running serve daemon"
    )
    top.add_argument("--socket", default="repro-serve.sock", metavar="PATH")
    top.add_argument("--interval", type=float, default=2.0, metavar="S")
    top.add_argument("--iterations", type=int, default=0, metavar="N",
                     help="stop after N refreshes (0 = forever)")

    bench = sub.add_parser(
        "bench", help="benchmark result tooling (regression diffing)"
    )
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)
    bdiff = bench_sub.add_parser(
        "diff",
        help="diff BENCH_*.json against committed baselines",
        description="Compare benchmark result files against the baselines "
        "committed under benchmarks/baselines/ using noise-aware per-metric "
        "thresholds (relative tolerance plus an absolute floor). Exit 0 "
        "clean, 2 when a baseline is missing, 4 on a regression.",
    )
    bdiff.add_argument("files", nargs="+", metavar="BENCH_FILE",
                       help="benchmark result JSON file(s) to judge")
    bdiff.add_argument("--baselines", default="benchmarks/baselines",
                       metavar="DIR",
                       help="baseline directory (default benchmarks/baselines)")
    bdiff.add_argument("--update", action="store_true",
                       help="refresh (or create) the baselines from the "
                       "current files instead of judging them")
    bdiff.add_argument("--json", default=None, metavar="OUT",
                       help="also write the verdicts as JSON to OUT")

    sub.add_parser("info", help="version and machine inventory")
    return parser


def _make_kernel(name: str, grid: int, precision: str):
    from repro.lbm import LBMKernel, Lattice
    from repro.stencils import SevenPointStencil, TwentySevenPointStencil

    dtype = np.float32 if precision == "sp" else np.float64
    if name == "7pt":
        return SevenPointStencil(), None, dtype
    if name == "27pt":
        return TwentySevenPointStencil(), None, dtype
    shape = (grid, grid, grid)
    rng = np.random.default_rng(0)
    lat = Lattice.from_moments(
        (1.0 + 0.02 * rng.random(shape)).astype(dtype),
        (0.01 * (rng.random((3,) + shape) - 0.5)).astype(dtype),
    )
    return LBMKernel(lat.flags, omega=1.2), lat, dtype


def _arm_obs(args) -> bool:
    """Arm tracer/metrics per the run flags; returns True if either armed."""
    from repro.obs import METRICS, TRACE

    if args.trace is not None:
        TRACE.arm()
    if args.metrics is not None:
        METRICS.arm()
    return args.trace is not None or args.metrics is not None


def _disarm_obs() -> None:
    from repro.obs import METRICS, TRACE

    TRACE.disarm()
    METRICS.disarm()


def _emit_obs_outputs(args, validation=None, run_info=None) -> None:
    """Write --trace / --metrics files and print their summary lines."""
    from repro.obs import METRICS
    from repro.obs.export import write_chrome_trace, write_metrics

    if args.metrics is not None:
        if validation is not None:
            for line in validation.lines():
                print(line)
        frac = METRICS.barrier_wait_fraction()
        if frac is not None:
            print(f"barrier wait : {100 * frac:.1f}% of worker time")
        write_metrics(args.metrics, validation=validation, run=run_info)
        print(f"metrics      : wrote {args.metrics}")
    if args.trace is not None:
        doc = write_chrome_trace(args.trace)
        n_spans = sum(1 for ev in doc["traceEvents"] if ev.get("ph") == "X")
        print(f"trace        : wrote {args.trace} ({n_spans} spans)")


def _metrics_validation(args, ref_kernel, field, traffic, elapsed):
    """The measured-vs-model join for a 3.5d run, or None."""
    if args.metrics is None or args.scheme != "3.5d":
        return None
    from repro.obs import METRICS
    from repro.obs.validate import validate_35d

    per_thread = None
    slots = METRICS.to_dict()["per_thread"]
    read = slots.get("traffic.bytes_read.per_thread")
    written = slots.get("traffic.bytes_written.per_thread")
    if read and written:
        per_thread = [r + w for r, w in zip(read, written)]
    executor = "parallel35d" if args.threads > 1 else "blocking35d"
    return validate_35d(
        ref_kernel, field, args.steps, traffic,
        dim_t=args.dim_t, tile_y=args.tile, tile_x=args.tile,
        executor=executor, per_thread_bytes=per_thread, elapsed_s=elapsed,
    )


class _FnExecutor:
    """Adapter giving function-style schemes the executor ``run`` shape."""

    dim_t = 1

    def __init__(self, fn, kernel):
        self.fn = fn
        self.kernel = kernel

    def run(self, field, steps, traffic=None):
        return self.fn(self.kernel, field, steps, traffic)


def _cmd_run(args) -> int:
    """Exit codes: 0 clean, 2 usage error, 3 degraded-but-correct, 4 failed."""
    import signal
    import threading
    import time

    from repro.core import (
        Blocking3D,
        Blocking4D,
        Blocking25D,
        Blocking35D,
        TrafficStats,
        run_cache_oblivious,
        run_naive,
    )
    from repro.perf.backends import (
        BackendUnavailableError,
        default_backend_name,
        wrap_kernel,
    )
    from repro.resilience import (
        CheckpointStore,
        FallbackExhaustedError,
        GuardedSweep,
        ResilienceError,
        RunReport,
        SweepInterruptedError,
        bind_with_fallback,
    )
    from repro.runtime import ParallelBlocking35D
    from repro.stencils import Field3D

    if args.resume and not args.checkpoint:
        print("error: --resume requires --checkpoint", file=sys.stderr)
        return 2

    ref_kernel, lattice, dtype = _make_kernel(args.kernel, args.grid, args.precision)
    if lattice is not None:
        field = lattice.f
    else:
        field = Field3D.random((args.grid,) * 3, dtype=dtype, seed=args.seed)

    if args.ranks > 1:
        return _cmd_run_distributed(args, ref_kernel, field)
    if args.loss or args.corruption:
        print("error: --loss/--corruption require --ranks > 1", file=sys.stderr)
        return 2
    if args.comm_latency or args.comm_bandwidth:
        print("error: --comm-latency/--comm-bandwidth require --ranks > 1",
              file=sys.stderr)
        return 2

    backend_name = args.backend if args.backend is not None else default_backend_name()
    report = RunReport(requested_backend=backend_name)
    if args.no_fallback:
        try:
            kernel = wrap_kernel(ref_kernel, backend_name)
        except (ValueError, BackendUnavailableError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except ResilienceError as exc:
            print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
            return 4
        report.used_backend = backend_name
    else:
        try:
            bound = bind_with_fallback(ref_kernel, backend_name, probe_field=field)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        except FallbackExhaustedError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 4
        kernel = bound.kernel
        report.used_backend = bound.used
        report.degradations = list(bound.degradations)

    tuned = None
    if args.tune == "wallclock":
        if args.scheme != "3.5d":
            print("note: --tune wallclock only applies to --scheme 3.5d; ignored",
                  file=sys.stderr)
        else:
            from repro.core.autotune import autotune_wallclock

            tuned = autotune_wallclock(
                ref_kernel, dtype=dtype, backend=report.used_backend,
                probe_field=field, repeats=2,
            )
            args.dim_t, args.tile = tuned.best.dim_t, tuned.best.tile

    if args.scheme == "naive":
        ex = _FnExecutor(run_naive, kernel)
    elif args.scheme == "3d":
        ex = Blocking3D(kernel, args.tile, args.tile, args.tile)
    elif args.scheme == "2.5d":
        ex = Blocking25D(kernel, args.tile, args.tile)
    elif args.scheme == "4d":
        ex = Blocking4D(kernel, args.dim_t, args.tile, args.tile, args.tile)
    elif args.scheme == "cache-oblivious":
        ex = _FnExecutor(run_cache_oblivious, kernel)
    elif args.threads > 1:
        ex = ParallelBlocking35D(
            kernel, args.dim_t, args.tile, args.tile, args.threads,
            spmd_deadline=args.deadline,
        )
    else:
        ex = Blocking35D(kernel, args.dim_t, args.tile, args.tile)

    checkpoint = CheckpointStore(args.checkpoint) if args.checkpoint else None
    # SIGINT/SIGTERM request a *graceful* stop: the sweep halts at the next
    # round boundary, writes a final checkpoint (when --checkpoint is set),
    # flushes --trace/--metrics exporters, and exits 4
    stop = threading.Event()
    got_signal: list[int] = []

    def _on_signal(signum, frame):
        got_signal.append(signum)
        stop.set()

    old_handlers: dict = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            old_handlers[signum] = signal.signal(signum, _on_signal)
        except ValueError:  # not the main thread (embedded use)
            pass

    guard = GuardedSweep(
        ex,
        health=args.health,
        max_retries=args.retries,
        checkpoint=checkpoint,
        checkpoint_every=args.checkpoint_every,
        meta={
            "kernel": args.kernel, "scheme": args.scheme, "grid": args.grid,
            "precision": args.precision, "seed": args.seed,
        },
        report=report,
        stop=stop,
        sdc=args.verify,
        sdc_seed=args.seed,
        # replays always run through the reference kernel — a different
        # rung of the bit-exact ladder than the bound backend
        kernel=ref_kernel,
    )

    traffic = TrafficStats()
    _arm_obs(args)
    try:
        t0 = time.perf_counter()
        try:
            out = guard.run(field, args.steps, traffic, resume=args.resume)
        except SweepInterruptedError as exc:
            name = (signal.Signals(got_signal[0]).name if got_signal
                    else "stop request")
            ck = ("final checkpoint written; re-run with --resume to continue"
                  if exc.checkpointed else "no --checkpoint, progress lost")
            print(f"interrupted  : {name} after {exc.step}/{args.steps} "
                  f"steps; {ck}", file=sys.stderr)
            _emit_obs_outputs(args)
            return 4
        except ResilienceError as exc:
            print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
            return 4
        elapsed = time.perf_counter() - t0

        if args.metrics is not None:
            from repro.obs import METRICS

            METRICS.merge_traffic(traffic)
        n_updates = args.grid**3 * args.steps
        print(f"kernel       : {args.kernel} ({args.precision.upper()})")
        print(f"scheme       : {args.scheme}")
        print(f"backend      : {report.used_backend}")
        if tuned is not None:
            origin = ("cache hit, 0 probe runs" if tuned.from_cache
                      else f"measured, {tuned.probe_runs} probe runs")
            print(f"autotuned    : dim_T={tuned.best.dim_t} tile={tuned.best.tile} "
                  f"({origin})")
        print(f"grid         : {args.grid}^3 x {args.steps} steps")
        print(f"wall time    : {elapsed:.3f} s "
              f"({n_updates / elapsed / 1e6:.1f} MU/s on the NumPy substrate)")
        print(f"ext. read    : {traffic.bytes_read / 1e6:.1f} MB")
        print(f"ext. write   : {traffic.bytes_written / 1e6:.1f} MB")
        print(f"bytes/update : {traffic.bytes_per_update():.2f}")
        if not args.no_check:
            # the cross-check always uses the reference (numpy) kernel
            ref = run_naive(ref_kernel, field, args.steps)
            if np.array_equal(out.data, ref.data):
                print("check        : bit-identical to the naive reference")
            else:
                print("check        : MISMATCH against the naive reference")
                return 4
        for line in report.lines():
            print(line)
        validation = _metrics_validation(args, ref_kernel, field, traffic, elapsed)
        _emit_obs_outputs(args, validation, run_info={
            "kernel": args.kernel, "scheme": args.scheme,
            "backend": report.used_backend, "grid": args.grid,
            "steps": args.steps, "dim_t": args.dim_t, "tile": args.tile,
            "threads": args.threads, "precision": args.precision,
            "elapsed_s": elapsed,
        })
        return 3 if report.degraded else 0
    finally:
        _disarm_obs()
        for signum, handler in old_handlers.items():
            signal.signal(signum, handler)


def _cmd_run_distributed(args, ref_kernel, field) -> int:
    """Simulated multi-rank slab run; surfaces SimComm transport stats."""
    import time

    from repro.core import TrafficStats, run_naive
    from repro.distributed import DistributedJacobi
    from repro.resilience import ResilienceError

    if args.scheme not in ("3.5d", "naive"):
        print("error: --ranks requires --scheme 3.5d or naive", file=sys.stderr)
        return 2
    if args.threads > 1:
        print("error: --ranks and --threads are mutually exclusive",
              file=sys.stderr)
        return 2
    runner = DistributedJacobi(
        ref_kernel,
        args.ranks,
        dim_t=args.dim_t,
        tile_y=args.tile,
        tile_x=args.tile,
        scheme="35d" if args.scheme == "3.5d" else "naive",
        loss=args.loss,
        corruption=args.corruption,
        comm_seed=args.seed,
        recover=not args.no_recovery,
        overlap=args.overlap,
        latency_s=args.comm_latency,
        bandwidth_bytes_s=args.comm_bandwidth,
        integrity=args.verify,
        sdc_seed=args.seed,
    )
    traffic = TrafficStats()
    _arm_obs(args)
    try:
        t0 = time.perf_counter()
        try:
            out, comm = runner.run(field, args.steps, traffic)
        except ResilienceError as exc:
            print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
            return 4
        elapsed = time.perf_counter() - t0

        n_updates = args.grid**3 * args.steps
        print(f"kernel       : {args.kernel} ({args.precision.upper()})")
        print(f"scheme       : {args.scheme} (distributed, {args.ranks} ranks)")
        print("backend      : numpy (reference kernel)")
        print(f"grid         : {args.grid}^3 x {args.steps} steps")
        print(f"wall time    : {elapsed:.3f} s "
              f"({n_updates / elapsed / 1e6:.1f} MU/s on the NumPy substrate)")
        total = comm.total_stats()
        print(f"comm         : {total.messages_sent} messages, "
              f"{total.bytes_sent / 1e6:.1f} MB payload")
        print(f"comm faults  : {total.dropped} dropped, "
              f"{total.corrupted} corrupted, {total.retries} retries"
              + (" (all recovered)" if total.retries else ""))
        frac = total.overlap_fraction()
        if frac is not None:
            mode = "overlap" if args.overlap else "no overlap"
            print(f"comm overlap : {frac:.1%} of simulated transfer time "
                  f"hidden behind compute ({mode}, "
                  f"{total.exposed_ns / 1e6:.2f} ms exposed)")
        recovery = runner.recovery
        for line in recovery.lines():
            print(line)
        sdc = runner.sdc_report
        for line in sdc.lines():
            print(line)
        if not args.no_check:
            ref = run_naive(ref_kernel, field, args.steps)
            if np.array_equal(out.data, ref.data):
                print("check        : bit-identical to the naive reference")
            else:
                print("check        : MISMATCH against the naive reference")
                return 4
        if args.metrics is not None:
            from repro.obs import METRICS

            METRICS.merge_traffic(traffic)
        _emit_obs_outputs(args, None, run_info={
            "kernel": args.kernel, "scheme": args.scheme,
            "ranks": args.ranks, "grid": args.grid, "steps": args.steps,
            "dim_t": args.dim_t, "tile": args.tile,
            "precision": args.precision, "elapsed_s": elapsed,
            "loss": args.loss, "corruption": args.corruption,
            "overlap": args.overlap,
        })
        # a run that survived rank failures (or healed corruption) is
        # degraded-but-correct
        return 3 if (recovery.degraded or sdc.degraded) else 0
    finally:
        _disarm_obs()


def _cmd_tune_wallclock(args, machine) -> int:
    from repro.core.autotune import TuningCache, autotune_wallclock
    from repro.perf.backends import BackendUnavailableError

    kernel, lattice, dtype = _make_kernel(args.kernel, args.probe_grid, args.precision)
    backend = args.backend or "fused-numpy"
    try:
        res = autotune_wallclock(
            kernel,
            machine,
            dtype,
            probe_field=lattice.f if lattice is not None else None,
            capacity=args.capacity,
            backend=backend,
            refresh=args.refresh,
        )
    except (ValueError, BackendUnavailableError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    best = res.best
    print(f"machine  : {machine.name} (capacity gate only)")
    print(f"kernel   : {args.kernel} ({args.precision.upper()})")
    print(f"backend  : {backend}")
    print("mode     : wallclock (measured on this host)")
    print(f"dim_T    : {best.dim_t}")
    print(f"dim_X=Y  : {best.tile}")
    print(f"median   : {best.seconds_per_round:.3e} s/round "
          f"({best.seconds_per_update:.3e} s/update)")
    print(f"buffer   : {best.buffer_bytes / 1024:.0f} KB of "
          f"{(args.capacity or machine.blocking_capacity) / 1024:.0f} KB"
          f"{'' if best.fits_capacity else ' (exceeds capacity)'}")
    origin = ("cache hit, 0 probe runs" if res.from_cache
              else f"measured, {res.probe_runs} probe runs")
    print(f"cache    : {origin} ({TuningCache().path})")
    return 0


def _cmd_tune(args) -> int:
    from repro.core import tune
    from repro.machine import CORE_I7, GTX_285

    if args.prune:
        from repro.core.autotune import TuningCache
        from repro.resilience.quarantine import corrupt_keep, gc_corrupt

        cache = TuningCache(max_entries=args.cache_max)
        removed, remaining = cache.prune()
        print(f"tuning cache : {cache.path}")
        print(f"pruned       : {removed} entr{'y' if removed == 1 else 'ies'} "
              f"removed, {remaining} remaining (cap {cache.max_entries})")
        gone = gc_corrupt(cache.path.parent)
        print(f"quarantine   : {len(gone)} .corrupt file(s) collected "
              f"(keep {corrupt_keep()})")
        return 0
    machine = CORE_I7 if args.machine == "corei7" else GTX_285
    if args.mode == "wallclock":
        return _cmd_tune_wallclock(args, machine)
    kernel, _, dtype = _make_kernel(args.kernel, 16, args.precision)
    result = tune(
        kernel,
        machine,
        dtype,
        capacity=args.capacity,
        derated=machine.is_gpu,
    )
    print(f"machine  : {machine.name}")
    print(f"kernel   : {args.kernel} ({args.precision.upper()})")
    print(f"gamma    : {result.gamma:.3f} bytes/op")
    print(f"Gamma    : {result.big_gamma:.3f} bytes/op")
    print(f"scheme   : {result.scheme}")
    if result.params is not None and result.params.feasible:
        p = result.params
        print(f"dim_T    : {p.dim_t}")
        print(f"dim_X=Y  : {p.dim_x}")
        print(f"kappa    : {p.kappa:.3f}")
        print(f"buffer   : {p.buffer_bytes / 1024:.0f} KB of "
              f"{(args.capacity or machine.blocking_capacity) / 1024:.0f} KB")
    print(f"rationale: {result.rationale}")
    return 0


def _cmd_reproduce(artifact: str) -> int:
    from repro.perf import (
        breakdown_7pt_gpu,
        breakdown_lbm_cpu,
        format_comparisons,
        format_stages,
        predict_7pt_cpu,
        predict_7pt_gpu,
        predict_lbm_cpu,
        section_viid_comparisons,
    )
    from repro.perf.figures import breakdown_chart, grouped_bar_chart

    def fig4(name, predict, schemes, grids=(64, 256, 512)):
        groups = {}
        for p in ("sp", "dp"):
            for g in grids:
                groups[f"{p.upper()} {g}^3"] = {
                    s: predict(s, p, g).mupdates_per_s for s in schemes
                }
        print(grouped_bar_chart(groups, unit=" MU/s", title=name))

    did = False
    if artifact in ("all", "table1"):
        from repro.machine import CORE_I7, GTX_285
        from repro.perf import format_table

        rows = [
            (
                m.name,
                f"{m.peak_bandwidth / 1e9:.0f}",
                f"{m.peak_ops_sp / 1e9:.0f}",
                f"{m.peak_ops_dp / 1e9:.0f}",
                f"{m.bytes_per_op('sp'):.2f}",
                f"{m.bytes_per_op('dp'):.2f}",
            )
            for m in (CORE_I7, GTX_285)
        ]
        print(format_table(
            ["platform", "BW GB/s", "SP Gops", "DP Gops", "B/op SP", "B/op DP"],
            rows, "Table I",
        ))
        did = True
    if artifact in ("all", "fig4a"):
        print()
        fig4("Figure 4(a): LBM on Core i7", predict_lbm_cpu, ("none", "temporal", "35d"))
        did = True
    if artifact in ("all", "fig4b"):
        print()
        fig4("Figure 4(b): 7pt on Core i7", predict_7pt_cpu, ("none", "spatial", "35d"))
        did = True
    if artifact in ("all", "fig4c"):
        print()
        groups = {
            p.upper(): {
                s: predict_7pt_gpu(s, p).mupdates_per_s
                for s in ("none", "spatial", "35d")
            }
            for p in ("sp", "dp")
        }
        print(grouped_bar_chart(groups, unit=" MU/s", title="Figure 4(c): 7pt on GTX 285"))
        did = True
    if artifact in ("all", "fig5a"):
        print()
        print(breakdown_chart(breakdown_lbm_cpu(), title="Figure 5(a): LBM CPU breakdown"))
        did = True
    if artifact in ("all", "fig5b"):
        print()
        print(breakdown_chart(breakdown_7pt_gpu(), title="Figure 5(b): GPU 7pt breakdown"))
        did = True
    if artifact in ("all", "comparisons"):
        print()
        print(format_comparisons(section_viid_comparisons(), "Section VII-D"))
        did = True
    if artifact == "all":
        print()
        print(format_stages(breakdown_lbm_cpu(), "Figure 5(a) stage table"))
    return 0 if did else 1


#: fault-site prefix -> human subsystem heading for ``repro faults``
_FAULT_SUBSYSTEMS = {
    "backend": "backends (bind/compute failures)",
    "worker": "runtime (threaded sweep workers)",
    "comm": "distributed transport (drop/corrupt/delay)",
    "rank": "distributed ranks (crash/recovery)",
    "cache": "tuning cache (crash-safety)",
    "grid": "grid health (NaN/Inf poisoning)",
    "serve": "serve daemon (admission/journal/deadlines)",
    "memory": "silent data corruption (bit flips in grid/ring memory)",
    "disk": "durable artifacts (checkpoint payload bitrot)",
}


def _cmd_faults() -> int:
    from repro.resilience import REPRO_FAULTS_ENV, SITES

    # the grammar once, up top; then sites grouped by subsystem prefix
    print("fault spec grammar: site[=arg][:times][@after]")
    print("  arg    restrict to probes whose detail matches (backend name,")
    print("         rank id, journal event, ...)")
    print("  times  probes that fire before the spec exhausts (default 1,")
    print("         '*' = forever)")
    print("  after  matching probes skipped before the first firing")
    print(f"arm via ${REPRO_FAULTS_ENV} (comma-separated specs) or "
          "FAULTS.injected(...)")
    width = max(len(site) for site in SITES)
    groups: dict[str, list[str]] = {}
    for site in sorted(SITES):
        groups.setdefault(site.split(".", 1)[0], []).append(site)
    for prefix in sorted(groups):
        print()
        print(f"{_FAULT_SUBSYSTEMS.get(prefix, prefix)}:")
        for site in groups[prefix]:
            print(f"  {site:<{width}}  {SITES[site]}")
    print()
    print("examples:")
    print("  rank.crash=2@1   kill rank 2 after it survives 1 round")
    print("  comm.drop:3      drop the next 3 transported messages")
    print("  serve.journal=done   tear the next terminal journal record")
    print("  backend.compute=fused-numba:*   every fused-numba compute raises")
    print("  memory.flip=0:2:3    flip 3 bits in rank 0's grid after round 2")
    print("  memory.flip=ring     flip a bit in a 3.5D ring-buffer plane")
    print("  disk.bitrot@1        rot the 2nd checkpoint payload written")
    return 0


def _cmd_chaos(args) -> int:
    """Exit codes: 0 all seeds green, 2 usage error, 4 any seed red."""
    if args.target == "serve":
        return _cmd_chaos_serve(args)
    if args.target == "sdc":
        return _cmd_chaos_sdc(args)
    from repro.resilience.chaos import (
        SCHEDULES,
        make_case,
        run_case,
        write_bundle,
    )

    if args.grid is None:
        args.grid = 24
    schedules = tuple(
        s.strip()
        for s in (args.schedules or ",".join(SCHEDULES)).split(",")
        if s.strip()
    )
    unknown = set(schedules) - set(SCHEDULES)
    if unknown:
        print(
            f"error: unknown schedule(s) {', '.join(sorted(unknown))}; "
            f"known: {', '.join(SCHEDULES)}",
            file=sys.stderr,
        )
        return 2
    if args.seeds < 1 or args.ranks < 1:
        print("error: --seeds and --ranks must be >= 1", file=sys.stderr)
        return 2

    seeds = range(args.seed_base, args.seed_base + args.seeds)
    print(f"chaos soak   : {args.seeds} seed(s), {args.ranks} ranks, "
          f"{args.grid}^3 x {args.steps} steps (dim_T={args.dim_t})")
    print(f"schedules    : {', '.join(schedules)}")
    failures = 0
    for seed in seeds:
        case = make_case(
            seed, ranks=args.ranks, grid=args.grid, steps=args.steps,
            dim_t=args.dim_t, schedules=schedules,
        )
        result = run_case(case, trace=args.bundle is not None)
        status = "ok" if result.ok else "FAIL"
        detail = (
            f"{result.recoveries} recoveries, "
            f"{result.comm_retries} retries, "
            f"{result.comm_dropped} dropped, "
            f"{result.comm_corrupted} corrupted, "
            f"{result.comm_delayed} delayed"
        )
        print(f"seed {seed:<4}    : {status} ({detail}) [{case.describe()}]")
        if not result.ok:
            failures += 1
            if result.error:
                print(f"             ! {result.error}")
            if not result.bit_exact and result.error is None:
                print("             ! result differs from the fault-free "
                      "reference")
            if args.bundle:
                bundle = write_bundle(result, args.bundle)
                print(f"             ! repro bundle: {bundle}")
        from repro.obs import TRACE

        TRACE.disarm()
    if failures:
        print(f"verdict      : {failures}/{args.seeds} seed(s) FAILED")
        return 4
    print(f"verdict      : all {args.seeds} seed(s) bit-exact")
    return 0


def _cmd_chaos_serve(args) -> int:
    """Serve-daemon soak: accepted jobs terminal, completed jobs bit-exact."""
    import json

    from pathlib import Path

    from repro.serve.chaos import (
        SERVE_SCHEDULES,
        make_serve_case,
        run_serve_case,
    )

    if args.grid is None:
        args.grid = 12
    schedules = tuple(
        s.strip()
        for s in (args.schedules or ",".join(SERVE_SCHEDULES)).split(",")
        if s.strip()
    )
    unknown = set(schedules) - set(SERVE_SCHEDULES)
    if unknown:
        print(
            f"error: unknown schedule(s) {', '.join(sorted(unknown))}; "
            f"known: {', '.join(SERVE_SCHEDULES)}",
            file=sys.stderr,
        )
        return 2
    if args.seeds < 1:
        print("error: --seeds must be >= 1", file=sys.stderr)
        return 2

    seeds = range(args.seed_base, args.seed_base + args.seeds)
    print(f"serve soak   : {args.seeds} seed(s), {args.jobs} jobs of "
          f"{args.grid}^3 x {args.steps} steps (dim_T={args.dim_t})")
    print(f"schedules    : {', '.join(schedules)}")
    failures = 0
    for seed in seeds:
        case = make_serve_case(
            seed, jobs=args.jobs, grid=args.grid, steps=args.steps,
            dim_t=args.dim_t, schedules=schedules,
        )
        result = run_serve_case(case)
        status = "ok" if result.ok else "FAIL"
        detail = (
            f"{result.accepted} accepted, {result.refused} refused, "
            f"{result.completed} done, {result.degraded} degraded, "
            f"{result.failed} failed, {result.recovered} recovered, "
            f"{result.quarantined_records} quarantined"
        )
        print(f"seed {seed:<4}    : {status} ({detail}) [{case.describe()}]")
        if not result.ok:
            failures += 1
            if result.error:
                print(f"             ! {result.error}")
            if result.hash_mismatches:
                print(f"             ! {result.hash_mismatches} completed "
                      "job(s) differ from the fault-free reference")
            if result.non_terminal:
                print(f"             ! {result.non_terminal} accepted job(s) "
                      "never reached a terminal status")
            if args.bundle:
                bundle = Path(args.bundle) / f"serve-seed-{seed}"
                bundle.mkdir(parents=True, exist_ok=True)
                with open(bundle / "case.json", "w", encoding="utf-8") as fh:
                    json.dump(result.to_dict(), fh, indent=2)
                    fh.write("\n")
                with open(bundle / "faults.txt", "w", encoding="utf-8") as fh:
                    fh.write(",".join(case.specs) + "\n")
                print(f"             ! repro bundle: {bundle}")
    if failures:
        print(f"verdict      : {failures}/{args.seeds} seed(s) FAILED")
        return 4
    print(f"verdict      : all {args.seeds} seed(s) clean "
          "(no silent loss, completed jobs bit-exact)")
    return 0


def _cmd_chaos_sdc(args) -> int:
    """SDC soak: no silent corruption — every healed run bit-exact."""
    from repro.resilience.sdc import (
        SDC_SCHEDULES,
        make_sdc_case,
        run_sdc_case,
        write_sdc_bundle,
    )

    if args.grid is None:
        args.grid = 20
    schedules = tuple(
        s.strip()
        for s in (args.schedules or ",".join(SDC_SCHEDULES)).split(",")
        if s.strip()
    )
    unknown = set(schedules) - set(SDC_SCHEDULES)
    if unknown:
        print(
            f"error: unknown schedule(s) {', '.join(sorted(unknown))}; "
            f"known: {', '.join(SDC_SCHEDULES)}",
            file=sys.stderr,
        )
        return 2
    if args.seeds < 1:
        print("error: --seeds must be >= 1", file=sys.stderr)
        return 2

    seeds = range(args.seed_base, args.seed_base + args.seeds)
    print(f"sdc soak     : {args.seeds} seed(s), tier {args.tier}, "
          f"{args.grid}^3 x {args.steps} steps (dim_T={args.dim_t})")
    print(f"schedules    : {', '.join(schedules)}")
    failures = 0
    for seed in seeds:
        case = make_sdc_case(
            seed, grid=args.grid, steps=args.steps, dim_t=args.dim_t,
            tier=args.tier, schedules=schedules,
        )
        result = run_sdc_case(case)
        status = "ok" if result.ok else "FAIL"
        detail = (
            f"{result.flips_fired} flip(s), {result.detections} detected, "
            f"{result.heals} healed, {result.replayed_cells} cells replayed, "
            f"{result.checks} checks"
        )
        if result.bitrot_detected is not None:
            detail += (", bitrot refused" if result.bitrot_detected
                       else ", BITROT TRUSTED")
        print(f"seed {seed:<4}    : {status} ({detail}) [{case.describe()}]")
        if not result.ok:
            failures += 1
            if result.error:
                print(f"             ! {result.error}")
            if not result.bit_exact and result.error is None:
                print("             ! result differs from the fault-free "
                      "reference")
            if args.bundle:
                bundle = write_sdc_bundle(result, args.bundle)
                print(f"             ! repro bundle: {bundle}")
    if failures:
        print(f"verdict      : {failures}/{args.seeds} seed(s) FAILED")
        return 4
    print(f"verdict      : all {args.seeds} seed(s) clean "
          "(every flip detected, healed runs bit-exact)")
    return 0


def _cmd_serve(args) -> int:
    """Foreground daemon; SIGTERM/SIGINT drain (exit 0 clean, 4 dirty)."""
    import signal
    import threading

    from repro.serve import JobServer, ServeCore

    core = ServeCore(
        args.state_dir,
        workers=args.workers,
        rate=args.rate,
        burst=args.burst,
        queue_cap=args.queue_cap,
        tenant_quota=args.tenant_quota,
        default_deadline_s=args.deadline,
        fsync=not args.no_fsync,
    )
    core.start()
    server = JobServer(core, args.socket)
    server.start()
    replay = core.replay_info
    print(f"serve        : listening on {args.socket}")
    print(f"state        : {args.state_dir} "
          f"({replay.get('records', 0)} journal records replayed, "
          f"{core.counters['recovered']} job(s) recovered)")
    print(f"admission    : {args.rate:g} jobs/s (burst {args.burst:g}), "
          f"queue {args.queue_cap}, {args.tenant_quota}/tenant, "
          f"{args.workers} worker(s)")

    stop = threading.Event()

    def _on_signal(signum, frame):
        stop.set()

    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            signal.signal(signum, _on_signal)
        except ValueError:
            pass
    stop.wait()
    print("serve        : draining (no new jobs; finishing accepted work)")
    server.stop()
    clean = core.drain()
    c = core.counters
    print(f"serve        : drained; {c['accepted']} accepted, "
          f"{c['completed']} completed, {c['degraded']} degraded, "
          f"{c['failed']} failed, {c['shed']} shed, {c['rejected']} rejected")
    if not clean:
        print("serve        : DRAIN INCOMPLETE — accepted jobs left "
              "non-terminal (they will recover on restart)", file=sys.stderr)
        return 4
    return 0


def _cmd_submit(args) -> int:
    """Exit codes mirror the job verdict under --wait; else 0/2."""
    import json
    import time

    from repro.serve import JobSpec, ServeClient, ServeUnavailable

    if args.trace and not args.wait:
        print("error: --trace requires --wait (the daemon-side spans only "
              "exist once the job ran)", file=sys.stderr)
        return 2
    trace_id = ""
    client_spans: list[dict] = []
    if args.trace:
        from repro.obs.serving import mint_trace_id

        trace_id = mint_trace_id()
    spec = JobSpec(
        kernel=args.kernel, grid=args.grid, steps=args.steps,
        dim_t=args.dim_t, tile=args.tile, precision=args.precision,
        seed=args.seed, backend=args.backend, priority=args.priority,
        tenant=args.tenant, deadline_s=args.deadline,
        verify=not args.no_verify, integrity=args.integrity,
        trace_id=trace_id,
    )
    client = ServeClient(args.socket)
    try:
        submit_t0 = time.time_ns()
        reply = client.submit(spec.to_dict())
        if trace_id:
            client_spans.append({
                "name": "job_submit", "start_ns": submit_t0,
                "dur_ns": time.time_ns() - submit_t0, "trace_id": trace_id,
                "attrs": {"tenant": spec.tenant, "ok": bool(reply.get("ok"))},
            })
        if not reply.get("ok"):
            print(f"rejected     : {reply.get('reason', reply.get('error'))}",
                  file=sys.stderr)
            return 2
        jid = reply["id"]
        print(f"accepted     : {jid} (priority {spec.priority}, "
              f"tenant {spec.tenant})")
        if trace_id:
            print(f"trace id     : {trace_id}")
        if reply.get("shed"):
            print(f"displaced    : {reply['shed']} was shed to make room")
        if not args.wait:
            return 0
        reply = client.wait(jid, timeout=args.timeout)
        if trace_id:
            respond_t0 = time.time_ns()
            daemon_spans = client.spans(jid)
            client_spans.append({
                "name": "job_respond", "start_ns": respond_t0,
                "dur_ns": time.time_ns() - respond_t0, "trace_id": trace_id,
                "attrs": {"id": jid,
                          "status": reply.get("job", {}).get("status", "")},
            })
            from repro.obs.serving import merge_job_trace

            doc = merge_job_trace(client_spans, daemon_spans,
                                  trace_id=trace_id)
            with open(args.trace, "w", encoding="utf-8") as fh:
                json.dump(doc, fh, indent=1)
                fh.write("\n")
            n = sum(1 for ev in doc["traceEvents"] if ev.get("ph") == "X")
            print(f"trace        : wrote {args.trace} ({n} spans, "
                  f"trace_id {trace_id})")
    except ServeUnavailable as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 4
    job = reply.get("job", {})
    print(f"status       : {job.get('status')} "
          f"(backend {job.get('backend_used') or '?'}, "
          f"{job.get('done_steps')} steps)")
    if job.get("sha256"):
        print(f"result sha   : {job['sha256']}")
    for d in job.get("degradations") or []:
        print(f"degraded     : {d}")
    if job.get("reason"):
        print(f"reason       : {job['reason']}")
    code = job.get("code")
    return int(code) if code is not None else 4


def _top_lines(stats: dict) -> list[str]:
    """The queue/tenant/SLO table ``repro top`` and ``jobs --watch`` render."""
    c = stats.get("counters", {})
    lines = [
        f"serve: up {stats.get('uptime_s', 0.0):.0f}s  "
        f"queue {stats.get('queue_depth', 0)}/{stats.get('queue_cap', 0)}  "
        f"busy {stats.get('busy_workers', 0)}/{stats.get('workers', 0)}  "
        f"load {stats.get('overload', '?')}"
        + ("  DRAINING" if stats.get("draining") else ""),
        f"jobs : {c.get('accepted', 0)} accepted  "
        f"{c.get('completed', 0)} done  {c.get('degraded', 0)} degraded  "
        f"{c.get('failed', 0)} failed  {c.get('shed', 0)} shed  "
        f"{c.get('rejected', 0)} rejected  "
        f"{c.get('preemptions', 0)} preempted",
    ]
    latency = stats.get("latency") or {}
    slo = []
    for key, label in (("serve.queue_wait_s", "queue-wait"),
                       ("serve.service_s", "service"),
                       ("serve.latency_s", "latency")):
        q = latency.get(key)
        if q:
            slo.append(f"{label} p50 {q['p50'] * 1e3:.1f}ms "
                       f"p99 {q['p99'] * 1e3:.1f}ms")
    if slo:
        lines.append("slo  : " + "  |  ".join(slo))
    tenants = stats.get("tenants") or {}
    if tenants:
        lines.append(f"{'tenant':<12} {'updates':>12} {'cpu ms':>9} "
                     f"{'done':>5} {'degr':>5} {'fail':>5} {'shed':>5} "
                     f"{'rej':>5}")
        for tenant, u in tenants.items():
            lines.append(
                f"{tenant:<12} {u.get('site_updates', 0):>12} "
                f"{u.get('cpu_ns', 0) / 1e6:>9.1f} "
                f"{u.get('completed', 0):>5} {u.get('degraded', 0):>5} "
                f"{u.get('failed', 0):>5} {u.get('shed', 0):>5} "
                f"{u.get('rejected', 0):>5}"
            )
    mismatches = stats.get("ledger_mismatches") or []
    if mismatches:
        lines.append(f"LEDGER MISMATCH: {'; '.join(mismatches)}")
    return lines


def _watch_stats(socket_path: str, interval: float, iterations: int) -> int:
    """Refreshing stats view shared by ``repro top`` and ``jobs --watch``."""
    import time

    from repro.serve import ServeClient, ServeUnavailable

    client = ServeClient(socket_path)
    shown = 0
    try:
        while True:
            try:
                stats = client.stats().get("stats", {})
            except ServeUnavailable as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 4
            if shown and sys.stdout.isatty():
                print("\x1b[2J\x1b[H", end="")
            for line in _top_lines(stats):
                print(line)
            shown += 1
            if iterations and shown >= iterations:
                return 0
            time.sleep(interval)
    except KeyboardInterrupt:
        return 0


def _cmd_top(args) -> int:
    return _watch_stats(args.socket, args.interval, args.iterations)


def _cmd_jobs(args) -> int:
    import json

    from repro.serve import ServeClient, ServeUnavailable

    client = ServeClient(args.socket)
    try:
        if args.drain:
            client.drain()
            print("drain requested; the daemon exits once accepted work "
                  "finishes")
            return 0
        if args.prom is not None:
            reply = client.stats(prom=True)
            text = reply.get("prom", "")
            if args.prom == "-":
                print(text, end="")
            else:
                with open(args.prom, "w", encoding="utf-8") as fh:
                    fh.write(text)
                print(f"prometheus   : wrote {args.prom} "
                      f"({len(text.splitlines())} lines)")
            return 0
        if args.watch:
            return _watch_stats(args.socket, args.interval, args.iterations)
        if args.stats:
            print(json.dumps(client.stats().get("stats", {}), indent=2))
            return 0
        reply = client.jobs()
    except ServeUnavailable as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 4
    jobs = reply.get("jobs", [])
    if not jobs:
        print("no jobs")
        return 0
    print(f"{'id':<9} {'status':<10} {'code':<5} {'prio':<5} {'tenant':<10} "
          f"{'steps':<11} reason")
    for job in jobs:
        spec = job.get("spec", {})
        code = job.get("code")
        steps = f"{job.get('done_steps', 0)}/{spec.get('steps', '?')}"
        print(f"{job.get('id', ''):<9} {job.get('status', ''):<10} "
              f"{'' if code is None else code:<5} "
              f"{spec.get('priority', ''):<5} {spec.get('tenant', ''):<10} "
              f"{steps:<11} {job.get('reason', '')}")
    return 0


def _cmd_bench_diff(args) -> int:
    """Exit codes: 0 clean, 2 missing baseline/file, 4 regression."""
    import json

    from repro.obs.regress import diff_bench_file

    worst = 0
    all_verdicts = []
    for path in args.files:
        code, lines, verdicts = diff_bench_file(
            path, args.baselines, update=args.update
        )
        for line in lines:
            print(line)
        all_verdicts.extend(v.to_dict() for v in verdicts)
        worst = max(worst, code)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump({"verdicts": all_verdicts, "exit": worst}, fh, indent=2)
            fh.write("\n")
    if worst == 4:
        print("verdict      : REGRESSION (see FAIL lines above)")
    elif worst == 0 and not args.update:
        print("verdict      : no regressions beyond noise thresholds")
    return worst


def _cmd_info() -> int:
    import repro
    from repro.machine import CORE_I7, GTX_285
    from repro.perf.backends import (
        backend_availability,
        backend_names,
        default_backend_name,
        get_backend,
    )

    print(f"repro {repro.__version__} — 3.5D blocking (Nguyen et al., SC 2010)")
    print("machines:")
    for m in (CORE_I7, GTX_285):
        print(
            f"  {m.name}: {m.peak_bandwidth / 1e9:.0f} GB/s, "
            f"{m.peak_ops_sp / 1e9:.0f}/{m.peak_ops_dp / 1e9:.0f} Gops SP/DP, "
            f"blocking capacity {m.blocking_capacity >> 10} KB"
        )
    default = default_backend_name()
    print("backends:")
    for name in backend_names():
        b = get_backend(name)
        ok, reason = backend_availability(name)
        status = "" if ok else f" [unavailable: {reason}]"
        marker = " (default)" if name == default else ""
        print(f"  {name}{marker}: {b.description}{status}")
    print("packages: core stencils lbm machine gpu runtime distributed perf")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    # honor $REPRO_FAULTS (documented by `repro faults`): chaos smokes arm
    # fault sites from the environment without touching the command line
    from repro.resilience import FAULTS

    FAULTS.load_env()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "tune":
        return _cmd_tune(args)
    if args.command == "reproduce":
        return _cmd_reproduce(args.artifact)
    if args.command == "schedule":
        from repro.core import build_schedule
        from repro.core.schedule import schedule_to_text

        schedule = build_schedule(
            args.nz, args.radius, args.dim_t, concurrent=not args.sequential
        )
        schedule.validate()
        variant = "sequential (2R+1 planes)" if args.sequential else "concurrent (2R+2 planes)"
        print(f"3.5D schedule: nz={args.nz}, R={args.radius}, dim_T={args.dim_t}, "
              f"{variant}, lag={schedule.lag}")
        print(schedule_to_text(schedule, max_iterations=args.iterations))
        print("(schedule validated: dependencies and ring liveness hold)")
        return 0
    if args.command == "trace":
        import json

        from repro.obs.export import summarize_trace

        try:
            with open(args.file, encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        for line in summarize_trace(doc):
            print(line)
        return 0
    if args.command == "faults":
        return _cmd_faults()
    if args.command == "chaos":
        return _cmd_chaos(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "jobs":
        return _cmd_jobs(args)
    if args.command == "top":
        return _cmd_top(args)
    if args.command == "bench":
        return _cmd_bench_diff(args)
    if args.command == "info":
        return _cmd_info()
    return 2  # pragma: no cover


if __name__ == "__main__":
    sys.exit(main())
