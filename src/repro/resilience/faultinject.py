"""Deterministic fault injection for the resilient execution layer.

Long 3.5D sweeps have to survive imperfect substrates: a backend whose JIT
refuses to compile, a worker thread that dies mid z-iteration, a dropped
halo message, a tuning-cache file truncated by a crash.  None of those
failure modes occur on a healthy CI machine, so this module makes them
*injectable* — every recovery path in :mod:`repro.resilience`,
:mod:`repro.runtime` and :mod:`repro.distributed` is guarded by a named
fault site that tests (or the ``REPRO_FAULTS`` environment variable) can
arm deterministically.

A fault *site* is a short dotted name checked at one specific place in the
code (see :data:`SITES`).  A :class:`FaultSpec` arms a site with a firing
budget::

    site[=arg][:times][@after]

``arg`` restricts the spec to probes whose detail matches (e.g. a backend
name), ``times`` is how many probes fire before the spec exhausts
(default 1, ``*`` = forever), and ``after`` skips the first N matching
probes — so "the second tile of the third round" is expressible and, with
a fixed schedule, perfectly reproducible.

The process-wide injector is :data:`FAULTS`; production code calls
``FAULTS.fire(site, detail)`` (raises :class:`InjectedFault`) or
``FAULTS.should(site, detail)`` (returns True — for sites whose failure is
*behavioral*, like dropping a message, rather than an exception).  Both are
a single attribute check when nothing is armed, so the clean hot path pays
essentially nothing.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = [
    "FAULTS",
    "REPRO_FAULTS_ENV",
    "SITES",
    "FaultInjector",
    "FaultSpec",
    "InjectedFault",
    "ResilienceError",
]

#: environment variable holding a comma-separated list of fault specs
REPRO_FAULTS_ENV = "REPRO_FAULTS"

#: every named injection site, with the module that checks it
SITES = {
    "backend.bind": "repro.perf.backends.wrap_kernel (backend bind raises)",
    "backend.compute": "fused tile runners / in-place kernels (first-tile or "
    "mid-sweep compute raises)",
    "worker.death": "repro.runtime.threadpool worker loop (thread dies "
    "without posting its completion)",
    "comm.drop": "repro.distributed.comm transmission (message lost in "
    "flight)",
    "comm.corrupt": "repro.distributed.comm transmission (payload corrupted "
    "in flight)",
    "comm.delay": "repro.distributed.comm receive (ack delayed past the "
    "timeout; the receiver requests a redundant retransmission)",
    "rank.crash": "repro.distributed.comm heartbeat (rank dies between "
    "rounds; arg = rank id, @after = rounds survived)",
    "cache.corrupt": "repro.core.autotune TuningCache.put (crash leaves a "
    "half-written JSON file)",
    "grid.nan": "repro.resilience.watchdog GuardedSweep (a plane is poisoned "
    "with NaN after a round)",
    "memory.flip": "repro.resilience.sdc flip probes (a single bit of a grid "
    "or ring array is flipped to a plausible finite value; arg = "
    "'rank:round' — single-process probes use rank 0 — or 'ring' for the "
    "3.5D ring buffers; the :times budget is the bit count)",
    "disk.bitrot": "repro.resilience.checkpoint CheckpointStore.save (the "
    "persisted payload rots on disk after the fsync: a byte of the stored "
    "grid data is corrupted in place)",
    "serve.accept": "repro.serve.server ServeCore.submit (an admitted job is "
    "dropped before it reaches the journal; the client sees an explicit "
    "retryable rejection, never a silent loss)",
    "serve.stall": "repro.serve.server job worker (the worker stalls between "
    "rounds, burning the job's deadline budget)",
    "serve.journal": "repro.serve.journal JobJournal.append (crash mid-append "
    "leaves a torn record at the journal tail)",
    "serve.deadline": "repro.serve.server job start (the job's deadline is "
    "forced to 'already expired', simulating a deadline storm)",
}


class ResilienceError(RuntimeError):
    """Base class for every typed failure of the resilient execution layer.

    Callers that want "fail fast with a typed error" semantics catch this
    one class; the CLI maps it to exit code 4.
    """


class InjectedFault(ResilienceError):
    """The exception raised by an armed raising fault site."""

    def __init__(self, site: str, detail: str | None = None) -> None:
        self.site = site
        self.detail = detail
        suffix = f" ({detail})" if detail else ""
        super().__init__(f"injected fault at site {site!r}{suffix}")


@dataclass
class FaultSpec:
    """One armed fault: a site, an optional qualifier, and a firing budget."""

    site: str
    arg: str | None = None
    times: int = 1  # firings remaining; -1 = unlimited
    after: int = 0  # matching probes to skip before the first firing

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; known sites: "
                f"{', '.join(sorted(SITES))}"
            )
        if self.times == 0 or self.times < -1:
            raise ValueError("times must be positive or -1 (unlimited)")
        if self.after < 0:
            raise ValueError("after must be >= 0")

    @classmethod
    def parse(cls, text: str) -> "FaultSpec":
        """Parse the ``site[=arg][:times][@after]`` spec syntax."""
        body = text.strip()
        after = 0
        if "@" in body:
            body, after_s = body.rsplit("@", 1)
            after = int(after_s)
        times = 1
        if ":" in body:
            body, times_s = body.rsplit(":", 1)
            times = -1 if times_s == "*" else int(times_s)
        arg: str | None = None
        if "=" in body:
            body, arg = body.split("=", 1)
        return cls(site=body, arg=arg or None, times=times, after=after)

    def matches(self, site: str, detail: str | None) -> bool:
        return (
            self.site == site
            and self.times != 0
            and (self.arg is None or self.arg == detail)
        )

    def __str__(self) -> str:
        out = self.site
        if self.arg:
            out += f"={self.arg}"
        if self.times != 1:
            out += ":*" if self.times == -1 else f":{self.times}"
        if self.after:
            out += f"@{self.after}"
        return out


class FaultInjector:
    """Process-wide registry of armed :class:`FaultSpec` instances.

    Thread-safe: probe accounting takes a lock, but the disarmed fast path
    is a lock-free emptiness check (the state every production run is in).
    """

    def __init__(self) -> None:
        self._specs: list[FaultSpec] = []
        self._lock = threading.Lock()
        self.fired: list[tuple[str, str | None]] = []

    # -- arming --------------------------------------------------------
    def arm(self, *specs: FaultSpec | str) -> None:
        """Add specs (objects or ``site[=arg][:times][@after]`` strings)."""
        parsed = [
            FaultSpec.parse(s) if isinstance(s, str) else s for s in specs
        ]
        with self._lock:
            self._specs.extend(parsed)

    def disarm(self) -> None:
        """Remove every armed spec and forget the firing history."""
        with self._lock:
            self._specs = []
            self.fired = []

    def load_env(self, environ=None) -> int:
        """Arm the specs in ``$REPRO_FAULTS`` (comma-separated); returns count."""
        environ = os.environ if environ is None else environ
        raw = environ.get(REPRO_FAULTS_ENV, "")
        specs = [s for s in (part.strip() for part in raw.split(",")) if s]
        if specs:
            self.arm(*specs)
        return len(specs)

    @contextmanager
    def injected(self, *specs: FaultSpec | str):
        """Arm specs for the duration of a ``with`` block, then restore."""
        with self._lock:
            saved = self._specs
            self._specs = list(saved)
        self.arm(*specs)
        try:
            yield self
        finally:
            with self._lock:
                self._specs = saved

    # -- probing -------------------------------------------------------
    def armed(self, site: str | None = None) -> bool:
        """True when any spec (for ``site``, if given) still has budget."""
        with self._lock:
            return any(
                s.times != 0 and (site is None or s.site == site)
                for s in self._specs
            )

    def should(self, site: str, detail: str | None = None) -> bool:
        """True when an armed spec fires for this probe (consumes budget)."""
        if not self._specs:
            return False
        with self._lock:
            for spec in self._specs:
                if not spec.matches(site, detail):
                    continue
                if spec.after > 0:
                    spec.after -= 1
                    return False
                if spec.times > 0:
                    spec.times -= 1
                self.fired.append((site, detail))
                return True
        return False

    def fire(self, site: str, detail: str | None = None) -> None:
        """Raise :class:`InjectedFault` when an armed spec fires here."""
        if self.should(site, detail):
            raise InjectedFault(site, detail)


#: the process-wide injector; ``$REPRO_FAULTS`` is armed at import time
FAULTS = FaultInjector()
FAULTS.load_env()
