"""Tests for the analytic overestimation factors vs the paper's examples."""

import pytest

from repro.core import (
    compute_overestimation_4d,
    compute_overestimation_35d,
    kappa_3d,
    kappa_4d,
    kappa_25d,
    kappa_35d,
    wavefront_working_set,
)


class TestPaperExamples:
    """Section V-A quotes specific κ values; they must reproduce."""

    def test_3d_kappa_at_r_10pct(self):
        # "with R ~ 10% of dim_X, κ3D is around 1.95X"
        d = 100
        assert kappa_3d(10, d) == pytest.approx(1.95, abs=0.02)

    def test_3d_kappa_at_r_20pct(self):
        # "for R ~ 20% of dim_X, κ3D increases to 4.62X"
        d = 100
        assert kappa_3d(20, d) == pytest.approx(4.62, abs=0.03)

    def test_25d_kappa_at_r_10pct(self):
        # "κ2.5D is around 1.2X" — for the same R and the same capacity, the
        # 2.5D block side grows to sqrt(C/(E(2R+1))) from the 3D cbrt(C/E).
        cap_over_e = 100**3  # capacity giving a 3D block side of 100
        r = 10
        d25 = round((cap_over_e / (2 * r + 1)) ** 0.5)
        assert kappa_25d(r, d25) == pytest.approx(1.2, abs=0.05)

    def test_25d_kappa_at_r_20pct(self):
        # "κ2.5D increases to only 1.77X, around 2.6X reduction over 3D"
        cap_over_e = 100**3
        r = 20
        d25 = round((cap_over_e / (2 * r + 1)) ** 0.5)
        assert kappa_25d(r, d25) == pytest.approx(1.77, abs=0.06)
        assert kappa_3d(r, 100) / kappa_25d(r, d25) == pytest.approx(2.6, abs=0.1)

    def test_35d_7pt_cpu_sp(self):
        # Section VI-A: dim_T=2, dim_X=360 -> κ ≈ 1.02
        assert kappa_35d(1, 2, 360) == pytest.approx(1.02, abs=0.005)

    def test_35d_7pt_cpu_dp(self):
        # dim_X=256 -> κ ≈ 1.03-1.04 (paper rounds to 1.04)
        assert kappa_35d(1, 2, 256) == pytest.approx(1.035, abs=0.01)

    def test_35d_lbm_cpu_sp(self):
        # Section VI-B: dim_T=3, dim_X=64 -> κ ≈ 1.21
        assert kappa_35d(1, 3, 64) == pytest.approx(1.21, abs=0.01)

    def test_35d_lbm_cpu_dp(self):
        # dim_X=44 -> κ ≈ 1.34
        assert kappa_35d(1, 3, 44) == pytest.approx(1.34, abs=0.01)

    def test_35d_7pt_gpu_sp(self):
        # Section VI-A GPU: dim_T=2, dim_X=32 -> κ ≈ 1.31
        assert kappa_35d(1, 2, 32) == pytest.approx(1.31, abs=0.01)


class TestFormulaProperties:
    def test_25d_never_worse_than_3d(self):
        for r in (1, 2, 4):
            for d in (32, 64, 128):
                if 2 * r < d:
                    assert kappa_25d(r, d) <= kappa_3d(r, d)

    def test_kappa_monotone_in_dim_t(self):
        assert kappa_35d(1, 2, 64) < kappa_35d(1, 3, 64) < kappa_35d(1, 4, 64)

    def test_kappa_decreases_with_block_size(self):
        assert kappa_35d(1, 2, 128) < kappa_35d(1, 2, 64) < kappa_35d(1, 2, 32)

    def test_kappa_rect_blocks(self):
        assert kappa_35d(1, 2, 64, 128) == pytest.approx(
            1 / ((1 - 4 / 64) * (1 - 4 / 128))
        )

    def test_kappa_at_least_one(self):
        assert kappa_35d(1, 1, 1000) >= 1.0

    def test_infeasible_raises(self):
        with pytest.raises(ValueError):
            kappa_35d(1, 4, 8)  # 2*R*dim_T = 8 >= dim_X

    def test_4d_worse_than_35d_at_same_dims(self):
        # the third shrinking dimension can only add overestimation
        assert kappa_4d(1, 2, 64) > kappa_35d(1, 2, 64)


class TestComputeOverestimation:
    def test_dim_t_1_has_no_redundant_compute_interiorless(self):
        # one time step: region == core, so ratio is exactly 1
        assert compute_overestimation_35d(1, 1, 64) == pytest.approx(1.0)

    def test_less_than_kappa_but_above_one(self):
        # intermediate instances recompute ghosts, so ratio in (1, κ]
        c = compute_overestimation_35d(1, 3, 64)
        assert 1.0 < c <= kappa_35d(1, 3, 64)

    def test_4d_paper_magnitudes(self):
        """Section VI quotes 4D overheads: 1.18/1.21 (7pt SP/DP), 2.03/2.71 (LBM).

        The paper states "the ratio of extra computation is similar to κ";
        with the cube-root block dims a 4 MB cache affords, κ4D lands on the
        paper's numbers.
        """
        mb4 = 4 << 20
        side = lambda e, t: round((mb4 / (e * t)) ** (1 / 3))
        assert kappa_4d(1, 2, side(4, 2)) == pytest.approx(1.18, abs=0.04)  # 7pt SP
        assert kappa_4d(1, 2, side(8, 2)) == pytest.approx(1.21, abs=0.04)  # 7pt DP
        assert kappa_4d(1, 3, side(80, 3)) == pytest.approx(2.03, rel=0.12)  # LBM SP
        assert kappa_4d(1, 3, side(160, 3)) == pytest.approx(2.71, rel=0.12)  # LBM DP

    def test_matches_manual_series(self):
        # dim_t=2, R=1, d=10 -> core 6; instance regions 8^2 and 6^2
        expected = (8 * 8 + 6 * 6) / (2 * 6 * 6)
        assert compute_overestimation_35d(1, 2, 10) == pytest.approx(expected)


class TestWavefront:
    def test_small_cube_exact(self):
        # 3x3x3, R=1: fattest slab s=3: |{x+y+z in [2,4]}| counted directly
        pts = [
            (x, y, z)
            for x in range(3)
            for y in range(3)
            for z in range(3)
        ]
        expected = max(
            sum(1 for p in pts if s - 1 <= sum(p) <= s + 1) for s in range(7)
        )
        assert wavefront_working_set(3, 3, 3, 1) == expected

    def test_scales_quadratically(self):
        w8 = wavefront_working_set(8, 8, 8)
        w16 = wavefront_working_set(16, 16, 16)
        assert 3.0 < w16 / w8 < 5.0  # ~4X for a 2X grid: O(N^2) working set

    def test_grows_with_grid_unlike_25d(self):
        # Section V-A1's complaint: the wavefront working set grows with the
        # *grid* (O(N^2)), while a 2.5D blocked buffer is a fixed (2R+1)
        # sub-planes of a capacity-chosen dim_X.  A buffer sized for n=16
        # cannot hold the n=64 wavefront.
        buf_16 = 3 * 16 * 16
        assert wavefront_working_set(16, 16, 16) <= 2 * buf_16
        assert wavefront_working_set(64, 64, 64) > 4 * buf_16
