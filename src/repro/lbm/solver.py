"""LBM time-loop drivers: naive, temporal-only, and 3.5D-blocked.

These are the three LBM variants Figure 4(a) compares:

* ``run_lbm`` (no blocking) — one full-lattice sweep per time step, the
  bandwidth-bound baseline;
* ``run_lbm_temporal_only`` — temporal blocking with the XY *plane* as the
  tile (no spatial blocking).  The buffer holds whole ``N^2`` planes, which
  fits on chip only for small grids — reproducing the paper's observation
  that temporal-only blocking helps at 64^3 but not beyond;
* ``run_lbm_35d`` — the full 3.5D scheme with the paper's ``dim_T = 3`` and
  capacity-derived ``dim_X = dim_Y``.

All three produce bit-identical lattices because they drive the same
:class:`~repro.lbm.kernel.LBMKernel` through different schedules.
"""

from __future__ import annotations

import numpy as np

from ..core.blocking35d import Blocking35D
from ..core.naive import run_naive
from ..core.traffic import TrafficStats
from .kernel import LBMKernel
from .lattice import Lattice

__all__ = ["run_lbm", "run_lbm_temporal_only", "run_lbm_35d", "make_kernel"]


def make_kernel(lattice: Lattice, omega: float = 1.0) -> LBMKernel:
    """An :class:`LBMKernel` bound to this lattice's flag field."""
    return LBMKernel(lattice.flags, omega=omega)


def _finish(lattice: Lattice, f) -> Lattice:
    return Lattice(f=f, flags=lattice.flags)


def run_lbm(
    lattice: Lattice,
    steps: int,
    omega: float = 1.0,
    traffic: TrafficStats | None = None,
) -> Lattice:
    """No-blocking LBM: full-lattice sweeps (the Figure 4a baseline)."""
    kernel = make_kernel(lattice, omega)
    return _finish(lattice, run_naive(kernel, lattice.f, steps, traffic))


def run_lbm_temporal_only(
    lattice: Lattice,
    steps: int,
    dim_t: int = 3,
    omega: float = 1.0,
    traffic: TrafficStats | None = None,
) -> Lattice:
    """Temporal blocking with whole XY planes as the tile (no XY blocking)."""
    ny, nx = lattice.shape[1], lattice.shape[2]
    kernel = make_kernel(lattice, omega)
    ex = Blocking35D(kernel, dim_t=dim_t, tile_y=ny, tile_x=nx)
    return _finish(lattice, ex.run(lattice.f, steps, traffic))


def run_lbm_35d(
    lattice: Lattice,
    steps: int,
    dim_t: int = 3,
    tile: int | tuple[int, int] | None = None,
    capacity: int | None = None,
    omega: float = 1.0,
    traffic: TrafficStats | None = None,
    validate: bool = False,
) -> Lattice:
    """3.5D-blocked LBM.

    ``tile`` may be given directly; otherwise it is derived from ``capacity``
    via Equation 4 (defaulting to the paper's 4 MB half-LLC budget, which
    yields dim_X = 64 SP / 44 DP at dim_T = 3).
    """
    kernel = make_kernel(lattice, omega)
    if tile is None:
        from ..core.params import blocking_dim

        cap = (4 << 20) if capacity is None else capacity
        d = blocking_dim(cap, kernel.element_size(lattice.dtype), 1, dim_t, align=4)
        if d < 2 * dim_t + 1:
            raise ValueError(
                f"capacity {cap} B too small for dim_T={dim_t} LBM blocking"
            )
        tile = (d, d)
    elif isinstance(tile, int):
        tile = (tile, tile)
    ex = Blocking35D(kernel, dim_t=dim_t, tile_y=tile[0], tile_x=tile[1], validate=validate)
    return _finish(lattice, ex.run(lattice.f, steps, traffic))
