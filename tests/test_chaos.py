"""Tests for the chaos soak harness."""

import json

import numpy as np
import pytest

from repro.obs import TRACE
from repro.resilience import (
    FAULTS,
    SCHEDULES,
    make_case,
    run_case,
    run_soak,
    write_bundle,
)


@pytest.fixture(autouse=True)
def _clean_state():
    yield
    FAULTS.disarm()
    TRACE.disarm()


class TestMakeCase:
    def test_same_seed_same_schedule(self):
        a, b = make_case(42), make_case(42)
        assert a == b

    def test_different_seeds_differ(self):
        cases = [make_case(s) for s in range(8)]
        assert len({tuple(c.specs) + (c.loss, c.corruption) for c in cases}) > 1

    def test_schedule_subset(self):
        case = make_case(0, schedules=("loss",))
        assert case.specs == []
        assert case.loss > 0
        assert case.corruption == 0.0

    def test_crash_schedule_targets_valid_rank_and_round(self):
        for seed in range(12):
            case = make_case(seed, ranks=4, steps=6, dim_t=2)
            crash = [s for s in case.specs if s.startswith("rank.crash")]
            assert len(crash) == 1
            body = crash[0].split("=", 1)[1]
            victim = int(body.split("@")[0])
            assert 0 <= victim < 4

    def test_crash_skipped_on_single_rank(self):
        case = make_case(0, ranks=1, schedules=("crash",))
        assert case.specs == []

    def test_unknown_schedule_rejected(self):
        with pytest.raises(ValueError, match="unknown chaos schedule"):
            make_case(0, schedules=("crash", "gamma-rays"))

    def test_describe_mentions_everything(self):
        text = make_case(3).describe()
        assert "seed 3" in text and "ranks" in text and "loss=" in text


class TestRunCase:
    def test_green_case_is_bit_exact(self):
        result = run_case(make_case(0, grid=20, steps=4))
        assert result.ok and result.bit_exact and result.error is None
        assert result.recoveries == 1  # seed 0 draws a crash
        assert result.replayed_rounds <= 1

    def test_fault_free_case(self):
        case = make_case(0, schedules=())
        result = run_case(case)
        assert result.ok and result.recoveries == 0

    def test_result_roundtrips_to_json(self):
        result = run_case(make_case(1, grid=16, steps=4))
        doc = json.loads(json.dumps(result.to_dict()))
        assert doc["case"]["seed"] == 1
        assert doc["ok"] is True

    def test_soak_multiple_seeds(self):
        results = run_soak(range(3), grid=16, steps=4)
        assert len(results) == 3
        assert all(r.ok for r in results)
        # seeds are independent: same seed re-run reproduces exactly
        again = run_soak([0], grid=16, steps=4)[0]
        assert again.recoveries == results[0].recoveries
        assert again.comm_dropped == results[0].comm_dropped

    def test_faults_disarmed_after_case(self):
        run_case(make_case(0, grid=16, steps=4))
        assert not FAULTS.armed()


class TestWriteBundle:
    def test_bundle_contents(self, tmp_path):
        result = run_case(make_case(2, grid=16, steps=4), trace=True)
        bundle = write_bundle(result, tmp_path)
        assert bundle == tmp_path / "seed-2"
        case_doc = json.loads((bundle / "case.json").read_text())
        assert case_doc["case"]["specs"] == result.case.specs
        faults = (bundle / "faults.txt").read_text().strip()
        assert faults == ",".join(result.case.specs)
        assert (bundle / "trace.json").exists()

    def test_bundle_without_trace(self, tmp_path):
        TRACE.disarm()
        result = run_case(make_case(2, grid=16, steps=4))
        bundle = write_bundle(result, tmp_path)
        assert (bundle / "case.json").exists()

    def test_schedules_constant_is_complete(self):
        assert set(SCHEDULES) == {"crash", "loss", "corruption", "delay"}
