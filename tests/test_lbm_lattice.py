"""Unit tests for the Lattice container, geometry builders, and macros."""

import numpy as np
import pytest

from repro.lbm import (
    CellType,
    Lattice,
    channel_with_sphere,
    density,
    element_size_with_flag,
    empty_box,
    kinetic_energy,
    momentum,
    porous_medium,
    solid_walls,
    sphere_obstacle,
    total_mass,
    velocity,
)


class TestLattice:
    def test_uniform_construction(self):
        lat = Lattice.uniform((4, 5, 6), rho=1.5)
        assert lat.shape == (4, 5, 6)
        np.testing.assert_allclose(density(lat.f), 1.5, rtol=1e-12)
        np.testing.assert_allclose(momentum(lat.f), 0.0, atol=1e-15)

    def test_uniform_with_velocity(self):
        lat = Lattice.uniform((4, 4, 4), rho=1.0, velocity=(0.0, 0.0, 0.05))
        u = velocity(lat.f)
        np.testing.assert_allclose(u[2], 0.05, rtol=1e-10)
        np.testing.assert_allclose(u[0], 0.0, atol=1e-15)

    def test_from_moments(self):
        rng = np.random.default_rng(0)
        rho = 1.0 + 0.1 * rng.random((3, 4, 5))
        u = 0.02 * (rng.random((3, 3, 4, 5)) - 0.5)
        lat = Lattice.from_moments(rho, u)
        np.testing.assert_allclose(density(lat.f), rho, rtol=1e-12)
        np.testing.assert_allclose(velocity(lat.f), u, rtol=1e-8, atol=1e-12)

    def test_element_size_matches_paper(self):
        # Section IV-B / VI-B: E = 80 bytes SP, 160 bytes DP (incl. flag)
        assert element_size_with_flag(np.float32) == 80
        assert element_size_with_flag(np.float64) == 160
        lat = Lattice.uniform((2, 2, 2), dtype=np.float32)
        assert lat.element_size() == 80

    def test_component_count_enforced(self):
        from repro.stencils import Field3D

        with pytest.raises(ValueError):
            Lattice(f=Field3D.zeros((2, 2, 2), ncomp=9), flags=np.zeros((2, 2, 2), np.uint8))

    def test_flags_shape_enforced(self):
        from repro.stencils import Field3D

        with pytest.raises(ValueError):
            Lattice(f=Field3D.zeros((2, 2, 2), ncomp=19), flags=np.zeros((2, 2, 3), np.uint8))

    def test_set_solid_and_masks(self):
        lat = Lattice.uniform((4, 4, 4))
        mask = np.zeros((4, 4, 4), dtype=bool)
        mask[1, 1, 1] = True
        lat.set_solid(mask)
        assert lat.flags[1, 1, 1] == CellType.SOLID
        assert lat.solid_fraction() == pytest.approx(1 / 64)
        assert lat.fluid_mask().sum() == 63

    def test_equilibrium_shell_lid(self):
        lat = Lattice.uniform((6, 6, 6))
        lat.set_equilibrium_shell(velocity_top=(0.0, 0.0, 0.1))
        u = velocity(lat.f)
        np.testing.assert_allclose(u[2, -1], 0.1, rtol=1e-10)  # lid moves in +x
        np.testing.assert_allclose(u[2, 0], 0.0, atol=1e-14)  # floor at rest

    def test_copy_independent(self):
        lat = Lattice.uniform((3, 3, 3))
        c = lat.copy()
        c.f.data[0, 1, 1, 1] = 99.0
        c.flags[0, 0, 0] = 1
        assert lat.f.data[0, 1, 1, 1] != 99.0
        assert lat.flags[0, 0, 0] == 0


class TestGeometry:
    def test_empty_box(self):
        assert not empty_box((4, 5, 6)).any()

    def test_solid_walls(self):
        flags = solid_walls((5, 5, 5))
        assert flags[0].all() and flags[-1].all()
        assert flags[:, 0].all() and flags[:, :, -1].all()
        assert not flags[1:-1, 1:-1, 1:-1].any()

    def test_solid_walls_width2(self):
        flags = solid_walls((8, 8, 8), width=2)
        assert flags[:2].all()
        assert not flags[2:-2, 2:-2, 2:-2].any()

    def test_sphere(self):
        flags = sphere_obstacle((11, 11, 11), (5, 5, 5), 2.0)
        assert flags[5, 5, 5] == 1
        assert flags[5, 5, 7] == 1
        assert flags[5, 5, 8] == 0
        assert flags[0, 0, 0] == 0

    def test_channel_with_sphere(self):
        flags = channel_with_sphere((12, 12, 24), 3.0)
        assert flags[0].all()  # walls
        assert flags[6, 6, 8] == 1  # sphere at 1/3 length
        assert flags[6, 6, 20] == 0  # downstream is open

    def test_porous_medium_porosity(self):
        flags = porous_medium((16, 16, 16), porosity=0.8, seed=1)
        interior = flags[1:-1, 1:-1, 1:-1]
        # generator stops at/after crossing the target solid fraction
        assert 0.1 < interior.mean() < 0.45

    def test_porous_medium_invalid(self):
        with pytest.raises(ValueError):
            porous_medium((8, 8, 8), porosity=0.0)


class TestMacros:
    def test_total_mass_masked(self):
        lat = Lattice.uniform((4, 4, 4), rho=2.0)
        assert total_mass(lat.f) == pytest.approx(2.0 * 64)
        mask = np.zeros((4, 4, 4), dtype=bool)
        mask[0] = True
        assert total_mass(lat.f, mask) == pytest.approx(2.0 * 16)

    def test_kinetic_energy_zero_at_rest(self):
        lat = Lattice.uniform((4, 4, 4))
        assert kinetic_energy(lat.f) == pytest.approx(0.0, abs=1e-20)

    def test_kinetic_energy_positive_with_flow(self):
        lat = Lattice.uniform((4, 4, 4), velocity=(0.02, 0.0, 0.0))
        assert kinetic_energy(lat.f) > 0
