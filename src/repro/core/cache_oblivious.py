"""Cache-oblivious space-time traversal (Frigo & Strumpen, cited in Sec. II).

The paper positions 3.5D blocking against prior temporal schemes; one of
them is the cache-oblivious trapezoid decomposition [12].  This module
implements it with the paper's plane-granularity twist: the recursion runs
over the (z, t) plane — each "cell" is a whole XY sub-plane, computed
vectorized — which is the natural cache-oblivious counterpart of 2.5D
streaming.

``walk`` recursively decomposes the space-time trapezoid
``{(z, t) : t0 <= t < t1, z0 + dz0*(t-t0) <= z < z1 + dz1*(t-t0)}``:

* *space cut* when the trapezoid is wide: split along a line of slope -R
  through the center; the left piece is computed before the right, which
  depends on it;
* *time cut* otherwise: compute the bottom half before the top half.

Leaves (height-1 rows) advance single planes by one time step.  The
traversal order confines the working set of every recursion level to a
trapezoid that eventually fits any cache — with no machine parameters,
hence "oblivious".  Results are bit-identical to the naive sweep; the
locality benefit is demonstrated against the cache simulator in the tests
and the ablation bench.
"""

from __future__ import annotations

from ..stencils.base import PlaneKernel
from ..stencils.grid import Field3D, copy_shell
from .traffic import TrafficStats

__all__ = ["run_cache_oblivious", "trapezoid_trace"]


def _walk(
    t0: int,
    t1: int,
    z0: int,
    dz0: int,
    z1: int,
    dz1: int,
    leaf,
    radius: int,
) -> None:
    dt = t1 - t0
    if dt <= 0:
        return
    if dt == 1:
        for z in range(z0, z1):
            leaf(t0, z)
        return
    r = radius
    if 2 * (z1 - z0) + (dz1 - dz0) * dt >= 4 * r * dt:
        # wide trapezoid: space cut along slope -R through the center
        zm = (2 * (z0 + z1) + (2 * r + dz0 + dz1) * dt) // 4
        _walk(t0, t1, z0, dz0, zm, -r, leaf, radius)
        _walk(t0, t1, zm, -r, z1, dz1, leaf, radius)
    else:
        # time cut: bottom half first
        s = dt // 2
        _walk(t0, t0 + s, z0, dz0, z1, dz1, leaf, radius)
        _walk(t0 + s, t1, z0 + dz0 * s, dz0, z1 + dz1 * s, dz1, leaf, radius)


def run_cache_oblivious(
    kernel: PlaneKernel,
    field: Field3D,
    steps: int,
    traffic: TrafficStats | None = None,
    trace: list | None = None,
) -> Field3D:
    """Advance ``field`` by ``steps`` via the cache-oblivious traversal.

    Two full grids hold even/odd time levels; the recursion orders the
    plane updates so that space-time-adjacent work is adjacent in time.
    ``trace``, if given, receives ``(t, z)`` tuples in execution order.
    """
    if steps < 0:
        raise ValueError("steps must be >= 0")
    if steps == 0:
        return field.copy()
    r = kernel.radius
    nz, ny, nx = field.shape
    grids = [field.copy(), field.like()]
    copy_shell(grids[0], grids[1], r)
    esize = field.element_size()

    def leaf(t: int, z: int) -> None:
        if not r <= z < nz - r:
            return  # boundary shell planes are fixed
        src = grids[t % 2]
        dst = grids[(t + 1) % 2]
        planes = [src.plane(z + dz) for dz in range(-r, r + 1)]
        kernel.compute_plane(dst.plane(z), planes, (r, ny - r), (r, nx - r), gz=z)
        if trace is not None:
            trace.append((t, z))
        if traffic is not None:
            traffic.update((ny - 2 * r) * (nx - 2 * r), kernel.ops_per_update)
            traffic.read((2 * r + 1) * ny * nx * esize, planes=2 * r + 1)
            traffic.write(ny * nx * esize, planes=1)

    _walk(0, steps, 0, 0, nz, 0, leaf, r)
    return grids[steps % 2]


def trapezoid_trace(nz: int, steps: int, radius: int = 1) -> list[tuple[int, int]]:
    """The (t, z) execution order of the traversal, without computing."""
    order: list[tuple[int, int]] = []

    def leaf(t: int, z: int) -> None:
        if radius <= z < nz - radius:
            order.append((t, z))

    _walk(0, steps, 0, 0, nz, 0, leaf, radius)
    return order
