"""Timing simulator for the threaded 3.5D execution (Section VII-A scaling).

Models one blocked round as the paper's runtime executes it: per
z-iteration, every thread computes its row slice of each time instance
(compute time at the machine's per-core rate), all threads share the
external memory bandwidth for the iteration's loads/stores, and a barrier
closes the iteration.  Summing over iterations, tiles and rounds yields a
simulated wall-clock from which core-scaling curves and barrier-cost
sensitivity fall out mechanically:

* with the paper's fast software barrier the 4-core scaling lands near the
  reported 3.6X;
* replacing it with a pthread-class barrier (the paper's "50X" comparison)
  visibly flattens the curve — the reason the paper bothered building one.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.overestimation import compute_overestimation_35d, kappa_35d
from .spec import MachineSpec

__all__ = ["TimedRun", "simulate_parallel_run", "scaling_curve"]

#: measured cost classes for a 4-thread barrier crossing
FAST_BARRIER_S = 0.2e-6  # centralized sense-reversing spin barrier
PTHREAD_BARRIER_S = 10e-6  # condition-variable barrier ("50X" slower class)


@dataclass(frozen=True)
class TimedRun:
    """Simulated execution of ``steps`` time steps of a blocked kernel."""

    total_s: float
    compute_s: float
    memory_s: float
    barrier_s: float
    iterations: int
    updates: int

    @property
    def mupdates_per_s(self) -> float:
        return self.updates / self.total_s / 1e6

    @property
    def barrier_fraction(self) -> float:
        return self.barrier_s / self.total_s


def simulate_parallel_run(
    machine: MachineSpec,
    grid: int,
    steps: int,
    ops_per_update: float,
    bytes_per_update: float,
    dim_t: int,
    tile: int,
    threads: int,
    precision: str = "sp",
    simd_efficiency: float = 0.8,
    barrier_s: float = FAST_BARRIER_S,
    radius: int = 1,
) -> TimedRun:
    """Simulate the threaded 3.5D run on a ``grid^3`` problem.

    Per iteration: ``dim_t`` sub-plane computations, row-partitioned over
    ``threads`` (the slowest thread carries the ceiling of the split);
    loads/stores of the iteration share the machine bandwidth; one barrier.
    """
    if threads < 1 or tile <= 2 * radius * dim_t:
        raise ValueError("invalid configuration")
    kappa = kappa_35d(radius, dim_t, min(tile, grid + 2 * radius * dim_t))
    compute_inflation = compute_overestimation_35d(
        radius, dim_t, min(tile, grid + 2 * radius * dim_t)
    )
    core_rate = (
        machine.peak_ops(precision) / machine.cores
    ) * simd_efficiency  # ops/s per core

    rounds = -(-steps // dim_t)
    core = max(tile - 2 * radius * dim_t, 1)
    tiles = (-(-grid // core)) ** 2
    iters_per_tile = grid + (radius + 1) * dim_t  # steady state + prolog/epilog
    iterations = rounds * tiles * iters_per_tile

    # per-iteration work: dim_t plane computations of ~tile^2 points each
    updates_per_iter = dim_t * tile * tile * compute_inflation / kappa
    rows_per_thread = -(-tile // threads)
    compute_per_iter = (
        dim_t * rows_per_thread * tile * compute_inflation / kappa * ops_per_update
    ) / core_rate
    # external traffic per iteration: one plane loaded + one core plane stored
    bytes_per_iter = (
        tile * tile * (bytes_per_update / 2)  # load share
        + core * core * (bytes_per_update / 2)  # store share
    ) * kappa / kappa  # ghost inflation already in the tile footprint
    memory_per_iter = bytes_per_iter / machine.achievable_bandwidth

    iter_time = max(compute_per_iter, memory_per_iter) + barrier_s
    compute_s = compute_per_iter * iterations
    memory_s = memory_per_iter * iterations
    total = iter_time * iterations
    return TimedRun(
        total_s=total,
        compute_s=compute_s,
        memory_s=memory_s,
        barrier_s=barrier_s * iterations,
        iterations=iterations,
        updates=int(updates_per_iter * iterations),
    )


def scaling_curve(
    machine: MachineSpec,
    grid: int = 256,
    steps: int = 4,
    ops_per_update: float = 16,
    bytes_per_update: float = 4.0,
    dim_t: int = 2,
    tile: int = 360,
    max_threads: int | None = None,
    barrier_s: float = FAST_BARRIER_S,
    **kw,
) -> dict[int, float]:
    """Speedup over 1 thread for 1..max_threads threads."""
    max_threads = machine.cores if max_threads is None else max_threads
    base = simulate_parallel_run(
        machine, grid, steps, ops_per_update, bytes_per_update, dim_t, tile, 1,
        barrier_s=barrier_s, **kw,
    ).total_s
    return {
        t: base
        / simulate_parallel_run(
            machine, grid, steps, ops_per_update, bytes_per_update, dim_t, tile, t,
            barrier_s=barrier_s, **kw,
        ).total_s
        for t in range(1, max_threads + 1)
    }
