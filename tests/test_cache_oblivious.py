"""Tests for the cache-oblivious trapezoid traversal (Frigo & Strumpen)."""

import numpy as np
import pytest

from repro.core import run_cache_oblivious, run_naive, trapezoid_trace
from repro.machine import Cache
from repro.stencils import Field3D, SevenPointStencil, star_stencil


@pytest.fixture(scope="module")
def seven():
    return SevenPointStencil()


class TestCorrectness:
    @pytest.mark.parametrize("shape,steps", [((12, 13, 14), 7), ((30, 8, 8), 16), ((8, 8, 8), 1)])
    def test_matches_naive(self, seven, shape, steps):
        f = Field3D.random(shape, seed=sum(shape))
        out = run_cache_oblivious(seven, f, steps)
        ref = run_naive(seven, f, steps)
        assert np.array_equal(out.data, ref.data)

    def test_radius2(self):
        k = star_stencil(2, center=0.35, arm=0.03)
        f = Field3D.random((16, 10, 10), seed=1)
        out = run_cache_oblivious(k, f, 6)
        assert np.array_equal(out.data, run_naive(k, f, 6).data)

    def test_zero_steps(self, seven):
        f = Field3D.random((6, 6, 6), seed=2)
        out = run_cache_oblivious(seven, f, 0)
        assert np.array_equal(out.data, f.data)

    def test_odd_even_parity(self, seven):
        """Both result parities (steps even/odd) select the right buffer."""
        f = Field3D.random((8, 8, 8), seed=3)
        for steps in (1, 2, 3, 4):
            out = run_cache_oblivious(seven, f, steps)
            assert np.array_equal(out.data, run_naive(seven, f, steps).data)

    def test_lbm_kernel(self):
        from repro.lbm import Lattice, make_kernel, run_lbm

        rng = np.random.default_rng(4)
        shape = (8, 10, 10)
        lat = Lattice.from_moments(
            1.0 + 0.05 * rng.random(shape), 0.02 * (rng.random((3,) + shape) - 0.5)
        )
        kernel = make_kernel(lat, omega=1.1)
        out = run_cache_oblivious(kernel, lat.f, 4)
        ref = run_lbm(lat, 4, omega=1.1)
        assert np.array_equal(out.data, ref.f.data)


class TestTraversalProperties:
    def test_each_step_once(self):
        trace = trapezoid_trace(nz=20, steps=8)
        assert len(trace) == len(set(trace)) == 8 * 18

    def test_dependencies_respected(self):
        trace = trapezoid_trace(nz=16, steps=6)
        pos = {tz: i for i, tz in enumerate(trace)}
        for (t, z), i in pos.items():
            if t == 0:
                continue
            for dz in (-1, 0, 1):
                dep = (t - 1, z + dz)
                if dep in pos:
                    assert pos[dep] < i, f"{(t, z)} ran before its dep {dep}"

    def test_radius2_dependencies(self):
        trace = trapezoid_trace(nz=20, steps=4, radius=2)
        pos = {tz: i for i, tz in enumerate(trace)}
        for (t, z), i in pos.items():
            if t == 0:
                continue
            for dz in range(-2, 3):
                dep = (t - 1, z + dz)
                if dep in pos:
                    assert pos[dep] < i

    def test_temporal_locality_beats_sweep_order(self):
        """The point of the traversal: plane re-use distance shrinks.

        Feed the plane-granularity access stream into a small cache (one
        'line' per plane) and compare hit rates with the naive sweep order,
        which cycles through all planes before reuse.
        """
        nz, steps = 128, 32

        def hit_rate(order):
            cache = Cache(32 * 64, line=64, assoc=32)  # holds 32 planes
            for t, z in order:
                for dz in (-1, 0, 1):
                    cache.access_line((t % 2) * nz + z + dz)
                cache.access_line(((t + 1) % 2) * nz + z, write=True)
            return cache.stats.hit_rate

        co = hit_rate(trapezoid_trace(nz, steps))
        sweep = hit_rate((t, z) for t in range(steps) for z in range(1, nz - 1))
        assert co > sweep + 0.2

    def test_invalid_steps(self):
        k = SevenPointStencil()
        with pytest.raises(ValueError):
            run_cache_oblivious(k, Field3D.random((6, 6, 6), seed=5), -1)
