"""repro — a reproduction of "3.5-D Blocking Optimization for Stencil
Computations on Modern CPUs and GPUs" (Nguyen et al., SC 2010).

The package implements the paper's 3.5D blocking scheme (2.5D spatial +
1D temporal) together with every substrate its evaluation depends on:
PDE stencil kernels, a D3Q19 lattice-Boltzmann solver, machine models of the
Core i7 and GTX 285, a SIMT GPU execution model, a threaded CPU runtime,
and the performance analysis that regenerates the paper's tables and
figures.  See DESIGN.md for the full inventory and EXPERIMENTS.md for the
paper-vs-reproduced numbers.

Quickstart::

    import numpy as np
    from repro import Field3D, SevenPointStencil, run_naive, run_3_5d

    kernel = SevenPointStencil(alpha=0.4, beta=0.1)
    field = Field3D.random((64, 64, 64), dtype=np.float32, seed=0)
    blocked = run_3_5d(kernel, field, steps=8, dim_t=2, tile_y=40, tile_x=40)
    reference = run_naive(kernel, field, steps=8)
    assert np.array_equal(blocked.data, reference.data)
"""

from .core import (
    Blocking3D,
    Blocking4D,
    Blocking25D,
    Blocking35D,
    BlockingParams,
    TrafficStats,
    kappa_3d,
    kappa_4d,
    kappa_25d,
    kappa_35d,
    min_dim_t,
    run_2_5d,
    run_3_5d,
    run_3d,
    run_4d,
    run_naive,
    select_params,
)
from .stencils import (
    Field3D,
    GenericStencil,
    SevenPointStencil,
    TwentySevenPointStencil,
    box_stencil,
    star_stencil,
)

__version__ = "1.0.0"

__all__ = [
    "Field3D",
    "SevenPointStencil",
    "TwentySevenPointStencil",
    "GenericStencil",
    "star_stencil",
    "box_stencil",
    "Blocking3D",
    "Blocking4D",
    "Blocking25D",
    "Blocking35D",
    "BlockingParams",
    "TrafficStats",
    "run_naive",
    "run_3d",
    "run_2_5d",
    "run_4d",
    "run_3_5d",
    "kappa_3d",
    "kappa_25d",
    "kappa_35d",
    "kappa_4d",
    "min_dim_t",
    "select_params",
    "__version__",
]
