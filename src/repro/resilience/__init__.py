"""Resilient execution layer: fault injection, fallback, watchdog, restart.

The paper's 3.5D schedule keeps N persistent threads in lockstep with one
barrier per z-iteration and assumes every backend, worker and cache file
behaves perfectly.  This package is the part of the reproduction that
drops that assumption:

* :mod:`~repro.resilience.faultinject` — deterministic named fault sites
  (armed via :data:`FAULTS` or ``$REPRO_FAULTS``) so every failure mode is
  testable;
* :mod:`~repro.resilience.fallback` — the bit-exact backend fallback chain
  ``fused-numba -> fused-numpy -> numpy-inplace -> numpy``;
* :mod:`~repro.resilience.watchdog` — :class:`GuardedSweep` per-round
  NaN/Inf health checks, retry with exponential backoff, repair from the
  last good state;
* :mod:`~repro.resilience.checkpoint` — atomic grid+step snapshots and
  bit-exact restart;
* :mod:`~repro.resilience.rankrecovery` — rank-failure tolerance for the
  distributed driver: in-memory buddy checkpoints, elastic
  re-decomposition over the survivors, at most one replayed round;
* :mod:`~repro.resilience.chaos` — the seeded chaos soak harness
  (randomized crash/loss/corruption/delay schedules, bit-exact oracle);
* :mod:`~repro.resilience.sdc` — silent-data-corruption defense:
  per-plane CRC seals, re-execution spot checks through the naive rung,
  and surgical cone-bounded healing (integrity tiers
  ``off``/``spot``/``seal``/``full``);
* :mod:`~repro.resilience.quarantine` — unique-name ``*.corrupt``
  quarantining with a count-capped GC (``$REPRO_CORRUPT_KEEP``);
* :mod:`~repro.resilience.report` — the structured record of every
  degradation, mapped to the CLI's exit codes (0 clean, 3 degraded-but-
  correct, 4 failed).

See ``docs/robustness.md`` for the full contract.
"""

from .chaos import (
    SCHEDULES,
    ChaosCase,
    ChaosResult,
    make_case,
    run_case,
    run_soak,
    write_bundle,
)
from .checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    Checkpoint,
    CheckpointError,
    CheckpointStore,
)
from .fallback import (
    FALLBACK_ORDER,
    BoundBackend,
    Degradation,
    DegradedExecutionWarning,
    FallbackExhaustedError,
    bind_with_fallback,
    fallback_chain,
)
from .faultinject import (
    FAULTS,
    REPRO_FAULTS_ENV,
    SITES,
    FaultInjector,
    FaultSpec,
    InjectedFault,
    ResilienceError,
)
from .quarantine import (
    DEFAULT_CORRUPT_KEEP,
    REPRO_CORRUPT_KEEP_ENV,
    corrupt_keep,
    gc_corrupt,
    quarantine,
)
from .rankrecovery import (
    BuddySnapshot,
    BuddyStore,
    RankDeadError,
    RecoveryReport,
    UnrecoverableRankFailureError,
    buddy_of,
)
from .report import RunReport
from .sdc import (
    INTEGRITY_TIERS,
    SDC_SCHEDULES,
    SdcChaosCase,
    SdcChaosResult,
    SdcError,
    SdcGuard,
    SdcReport,
    SdcUnhealableError,
    data_digest,
    flip_bits,
    inject_flips,
    make_sdc_case,
    plane_crcs,
    rot_file,
    run_sdc_case,
    run_sdc_soak,
    write_sdc_bundle,
)
from .watchdog import (
    GuardedSweep,
    HealthCheckError,
    HealthWarning,
    SweepInterruptedError,
    SweepRetriesExhaustedError,
    grid_is_finite,
)

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "DEFAULT_CORRUPT_KEEP",
    "FAULTS",
    "INTEGRITY_TIERS",
    "REPRO_CORRUPT_KEEP_ENV",
    "REPRO_FAULTS_ENV",
    "SCHEDULES",
    "SDC_SCHEDULES",
    "SITES",
    "FALLBACK_ORDER",
    "BoundBackend",
    "BuddySnapshot",
    "BuddyStore",
    "ChaosCase",
    "ChaosResult",
    "Checkpoint",
    "CheckpointError",
    "CheckpointStore",
    "Degradation",
    "DegradedExecutionWarning",
    "FallbackExhaustedError",
    "FaultInjector",
    "FaultSpec",
    "GuardedSweep",
    "HealthCheckError",
    "HealthWarning",
    "InjectedFault",
    "RankDeadError",
    "RecoveryReport",
    "ResilienceError",
    "RunReport",
    "SdcChaosCase",
    "SdcChaosResult",
    "SdcError",
    "SdcGuard",
    "SdcReport",
    "SdcUnhealableError",
    "SweepInterruptedError",
    "SweepRetriesExhaustedError",
    "UnrecoverableRankFailureError",
    "bind_with_fallback",
    "buddy_of",
    "corrupt_keep",
    "data_digest",
    "fallback_chain",
    "flip_bits",
    "gc_corrupt",
    "grid_is_finite",
    "inject_flips",
    "make_case",
    "make_sdc_case",
    "plane_crcs",
    "quarantine",
    "rot_file",
    "run_case",
    "run_sdc_case",
    "run_sdc_soak",
    "run_soak",
    "write_bundle",
    "write_sdc_bundle",
]
