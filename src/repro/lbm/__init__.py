"""D3Q19 Lattice-Boltzmann substrate (paper Section IV-B)."""

from .collision import FLOPS_PER_UPDATE, OPS_PER_UPDATE, collide_bgk, equilibrium
from .d3q19 import CS2, N_DIRECTIONS, OPPOSITE, VELOCITIES, WEIGHTS, direction_index
from .geometry import (
    channel_with_sphere,
    empty_box,
    porous_medium,
    solid_walls,
    sphere_obstacle,
)
from .forcing import ForcedLBMKernel, collide_bgk_forced
from .kernel import LBMKernel
from .lattice import CellType, Lattice, element_size_with_flag
from .mrt import MRTLBMKernel, collide_mrt, moment_basis, relaxation_rates
from .macros import density, kinetic_energy, momentum, total_mass, velocity
from .solver import make_kernel, run_lbm, run_lbm_35d, run_lbm_temporal_only
from .streaming import stream_pull, stream_push

__all__ = [
    "N_DIRECTIONS",
    "VELOCITIES",
    "WEIGHTS",
    "OPPOSITE",
    "CS2",
    "direction_index",
    "equilibrium",
    "collide_bgk",
    "OPS_PER_UPDATE",
    "FLOPS_PER_UPDATE",
    "Lattice",
    "CellType",
    "element_size_with_flag",
    "LBMKernel",
    "ForcedLBMKernel",
    "collide_bgk_forced",
    "MRTLBMKernel",
    "collide_mrt",
    "moment_basis",
    "relaxation_rates",
    "density",
    "velocity",
    "momentum",
    "total_mass",
    "kinetic_energy",
    "empty_box",
    "solid_walls",
    "sphere_obstacle",
    "channel_with_sphere",
    "porous_medium",
    "make_kernel",
    "run_lbm",
    "run_lbm_35d",
    "run_lbm_temporal_only",
    "stream_pull",
    "stream_push",
]
