"""Simulated hardware substrate: machine specs, caches, TLB, roofline."""

from .cache import Cache, CacheStats
from .memory import (
    MemoryHierarchy,
    SweepReport,
    simulate_jacobi_sweep,
    simulate_streaming_pass,
)
from .roofline import RooflinePoint, attainable_updates, is_bandwidth_bound
from .simd import SimdCost, simd_speedup, sse_scaling_7pt
from .spec import CORE_I7, FERMI, GTX_285, MachineSpec, scaled_machine
from .timing import (
    FAST_BARRIER_S,
    PTHREAD_BARRIER_S,
    TimedRun,
    scaling_curve,
    simulate_parallel_run,
)
from .tlb import PAGE_2M, PAGE_4K, Tlb, TlbStats

__all__ = [
    "MachineSpec",
    "CORE_I7",
    "GTX_285",
    "FERMI",
    "scaled_machine",
    "Cache",
    "CacheStats",
    "Tlb",
    "TlbStats",
    "PAGE_4K",
    "PAGE_2M",
    "MemoryHierarchy",
    "SweepReport",
    "TimedRun",
    "simulate_parallel_run",
    "scaling_curve",
    "FAST_BARRIER_S",
    "PTHREAD_BARRIER_S",
    "SimdCost",
    "simd_speedup",
    "sse_scaling_7pt",
    "simulate_jacobi_sweep",
    "simulate_streaming_pass",
    "RooflinePoint",
    "attainable_updates",
    "is_bandwidth_bound",
]
