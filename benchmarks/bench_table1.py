"""Table I: peak bandwidth, peak Gops, and bytes/op of Core i7 and GTX 285.

Regenerates every cell of the paper's Table I (plus the derated GPU ratios
quoted in Section III-E) from the machine specs.
"""

import pytest

from repro.machine import CORE_I7, GTX_285
from repro.perf import format_table

from .conftest import banner, record

PAPER_TABLE1 = {
    # platform: (BW GB/s, SP Gops, DP Gops, bytes/op SP, bytes/op DP)
    "Core i7": (30, 102, 51, 0.29, 0.59),
    "GTX 285": (159, 1116, 93, 0.14, 1.7),
}


def build_table1():
    rows = []
    for name, m in (("Core i7", CORE_I7), ("GTX 285", GTX_285)):
        rows.append(
            (
                name,
                f"{m.peak_bandwidth / 1e9:.0f}",
                f"{m.peak_ops_sp / 1e9:.0f}",
                f"{m.peak_ops_dp / 1e9:.0f}",
                f"{m.bytes_per_op('sp'):.2f}",
                f"{m.bytes_per_op('dp'):.2f}",
            )
        )
    return rows


def test_table1(benchmark):
    rows = benchmark(build_table1)
    print(banner("Table I: peak BW (GB/s), peak Gops, bytes/op"))
    print(
        format_table(
            ["platform", "peak BW", "SP Gops", "DP Gops", "B/op SP", "B/op DP"], rows
        )
    )
    for name, machine in (("Core i7", CORE_I7), ("GTX 285", GTX_285)):
        bw, sp, dp, bop_sp, bop_dp = PAPER_TABLE1[name]
        assert machine.peak_bandwidth / 1e9 == pytest.approx(bw)
        assert machine.peak_ops_sp / 1e9 == pytest.approx(sp)
        assert machine.peak_ops_dp / 1e9 == pytest.approx(dp)
        assert machine.bytes_per_op("sp") == pytest.approx(bop_sp, abs=0.005)
        assert machine.bytes_per_op("dp") == pytest.approx(bop_dp, abs=0.02)
    # Section III-E derates: "about 0.43 for SP and 3.44 for DP"
    print(
        f"\nGTX 285 effective (stencil op mix): "
        f"{GTX_285.bytes_per_op('sp', True):.2f} SP (paper 0.43), "
        f"{GTX_285.bytes_per_op('dp', True):.2f} DP (paper 3.44)"
    )
    assert GTX_285.bytes_per_op("sp", True) == pytest.approx(0.43, abs=0.01)
    assert GTX_285.bytes_per_op("dp", True) == pytest.approx(3.44, rel=0.02)
    record(
        benchmark,
        cpu_bytes_per_op_sp=CORE_I7.bytes_per_op("sp"),
        gpu_bytes_per_op_sp_derated=GTX_285.bytes_per_op("sp", True),
    )
