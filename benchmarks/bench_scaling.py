"""Section VII-A scaling: cores, SIMD, and the software barrier.

* Thread scaling of the real parallel 3.5D executor (structure: the row
  partition keeps per-thread work within 1 row of equal; wall-clock scaling
  in CPython is GIL-limited and reported honestly).
* The paper's SIMD-scaling statements (3.2X SP / 1.65X DP on 4-wide SSE)
  enter the model as calibration; here the *mechanism* is measured by
  comparing vectorized NumPy row updates against per-element loops.
* Barrier comparison: sense-reversing spin barrier vs threading.Barrier
  (the "50X faster than pthreads" engineering point, re-measured in
  CPython's reality).
"""

import threading
import time

import numpy as np
import pytest

from repro.runtime import (
    ParallelBlocking35D,
    PthreadsBarrier,
    SenseReversingBarrier,
)
from repro.stencils import Field3D, SevenPointStencil

from .conftest import banner, record


def test_thread_work_balance(benchmark):
    """Per-thread updates within 20% of equal for 1..8 threads."""
    kernel = SevenPointStencil()
    field = Field3D.random((12, 64, 64), dtype=np.float32, seed=0)

    def run_all():
        spread = {}
        for n in (2, 4, 8):
            per = []
            ParallelBlocking35D(kernel, 2, 64, 64, n).run(
                field, 2, per_thread_traffic=per
            )
            updates = [p.updates for p in per]
            spread[n] = max(updates) / min(updates)
        return spread

    spread = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print(banner("Per-thread work spread (max/min updates)"))
    for n, s in spread.items():
        print(f"{n} threads: {s:.3f}")
        assert s < 1.25
    record(benchmark, **{f"spread_{n}": s for n, s in spread.items()})


@pytest.mark.parametrize("n_threads", [1, 2, 4])
def test_parallel_executor_wall_clock(benchmark, n_threads):
    """Wall-clock of the threaded executor (GIL-bound; structure is the point)."""
    kernel = SevenPointStencil()
    field = Field3D.random((16, 96, 96), dtype=np.float32, seed=1)
    ex = ParallelBlocking35D(kernel, 2, 96, 96, n_threads)
    out = benchmark.pedantic(ex.run, (field, 2), rounds=3, iterations=1)
    assert np.isfinite(out.data).all()
    record(benchmark, threads=n_threads)


def test_simd_mechanism(benchmark):
    """Vectorized (SIMD-analog) vs scalar per-element stencil row update."""
    rng = np.random.default_rng(2)
    a = rng.random((3, 256, 256)).astype(np.float32)

    def vectorized():
        return 0.4 * a[1, 1:-1, 1:-1] + np.float32(0.1) * (
            a[0, 1:-1, 1:-1]
            + a[2, 1:-1, 1:-1]
            + a[1, :-2, 1:-1]
            + a[1, 2:, 1:-1]
            + a[1, 1:-1, :-2]
            + a[1, 1:-1, 2:]
        )

    benchmark(vectorized)

    t0 = time.perf_counter()
    out = np.empty((254, 254), dtype=np.float32)
    for y in range(1, 65):  # sample a quarter of the rows
        for x in range(1, 255):
            out[y - 1, x - 1] = 0.4 * a[1, y, x] + 0.1 * (
                a[0, y, x] + a[2, y, x] + a[1, y - 1, x]
                + a[1, y + 1, x] + a[1, y, x - 1] + a[1, y, x + 1]
            )
    scalar_time = (time.perf_counter() - t0) * 254 / 64
    speedup = scalar_time / benchmark.stats["mean"]
    print(f"\nvectorized row-update speedup vs per-element: {speedup:.0f}X")
    assert speedup > 4
    record(benchmark, vector_speedup=speedup)


@pytest.mark.parametrize("barrier_name", ["sense_reversing", "pthreads"])
def test_barrier_cost(benchmark, barrier_name):
    """Cost of one barrier crossing with 4 threads (Section III-B claim)."""
    n, crossings = 4, 200
    cls = SenseReversingBarrier if barrier_name == "sense_reversing" else PthreadsBarrier

    def run_phase():
        barrier = cls(n)
        def worker():
            for _ in range(crossings):
                barrier.wait()
        threads = [threading.Thread(target=worker) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

    benchmark.pedantic(run_phase, rounds=3, iterations=1)
    per_crossing_us = benchmark.stats["mean"] / crossings * 1e6
    print(f"\n{barrier_name}: {per_crossing_us:.1f} us per crossing (4 threads)")
    record(benchmark, us_per_crossing=per_crossing_us)


def test_simulated_scaling_curve(benchmark):
    """Section VII-A's 3.6X-on-4-cores, from the timing simulator."""
    from repro.machine import (
        CORE_I7,
        FAST_BARRIER_S,
        PTHREAD_BARRIER_S,
        scaling_curve,
    )

    def curves():
        return (
            scaling_curve(CORE_I7, tile=360, barrier_s=FAST_BARRIER_S),
            scaling_curve(CORE_I7, tile=360, barrier_s=PTHREAD_BARRIER_S),
            scaling_curve(CORE_I7, tile=64, barrier_s=PTHREAD_BARRIER_S),
        )

    fast, slow, slow_small = benchmark(curves)
    print(banner("Simulated core scaling (7pt SP, dim_T=2)"))
    print(f"fast barrier, tile 360 : {[round(v, 2) for v in fast.values()]}")
    print(f"pthread barrier, 360   : {[round(v, 2) for v in slow.values()]}")
    print(f"pthread barrier, 64    : {[round(v, 2) for v in slow_small.values()]}")
    print("paper: 3.6X on 4 cores with the fast software barrier")
    assert fast[4] > 3.6
    assert slow_small[4] < 2.0
    record(benchmark, fast_4t=fast[4], pthread_small_4t=slow_small[4])
