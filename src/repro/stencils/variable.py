"""Variable-coefficient 7-point stencil (heterogeneous-media diffusion).

PDE solvers over heterogeneous media (the paper's Section I application
list: diffusion, electromagnetics) carry per-cell coefficients:

.. math::

   B_{x} = \\alpha(x) A_{x} + \\beta(x) \\sum_{n \\in N(x)} A_n

The coefficient fields are auxiliary per-cell state addressed through the
kernel's global coordinates — the same mechanism the LBM flag field uses —
so this kernel doubles as a stress test of blocked executors' coordinate
plumbing: any off-by-one in a tile's global offset changes the answer.

Per-update cost: 7 loads + 2 coefficient loads + 1 store + 7 multiplies +
6 adds = 23 ops.  The element size relevant to blocking capacity includes
the two coefficient values (paper-E convention, like LBM's flag).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .base import PlaneKernel, ScratchArena, validate_footprint

__all__ = ["VariableCoefficientStencil"]


class VariableCoefficientStencil(PlaneKernel):
    """Radius-1 star stencil with per-cell alpha/beta coefficient fields."""

    radius = 1
    ncomp = 1
    ops_per_update = 23
    flops_per_update = 13

    def __init__(self, alpha: np.ndarray, beta: np.ndarray) -> None:
        if alpha.ndim != 3 or beta.shape != alpha.shape:
            raise ValueError("alpha and beta must be matching (nz, ny, nx) fields")
        self.alpha = alpha
        self.beta = beta

    @classmethod
    def layered(
        cls,
        shape: tuple[int, int, int],
        diffusivities: Sequence[float],
        dt_factor: float = 1.0 / 8.0,
        dtype=np.float64,
    ) -> "VariableCoefficientStencil":
        """Horizontally layered medium: diffusivity varies by z-layer.

        Each z-slab gets one of the given diffusivities D; the explicit
        Euler step uses beta = D * dt_factor, alpha = 1 - 6*beta.
        """
        nz = shape[0]
        beta = np.empty(shape, dtype=dtype)
        bands = np.array_split(np.arange(nz), len(diffusivities))
        for band, d in zip(bands, diffusivities):
            beta[band] = d * dt_factor
        alpha = 1.0 - 6.0 * beta
        return cls(alpha=alpha, beta=beta)

    def element_size(self, dtype) -> int:
        """Grid value plus the two resident coefficients (paper-E style)."""
        return 3 * np.dtype(dtype).itemsize

    def __repr__(self) -> str:
        return f"VariableCoefficientStencil(shape={self.alpha.shape})"

    def padded_for(self, halo: int, shape: tuple[int, int, int]):
        if self.alpha.shape != tuple(shape):
            raise ValueError(
                f"coefficient shape {self.alpha.shape} does not match grid {shape}"
            )
        if halo == 0:
            return self
        return VariableCoefficientStencil(
            np.pad(self.alpha, halo, mode="wrap"),
            np.pad(self.beta, halo, mode="wrap"),
        )

    def restricted_to(self, zlo: int, zhi: int) -> "VariableCoefficientStencil":
        """A kernel addressing only the Z slab ``[zlo, zhi)``."""
        if not 0 <= zlo < zhi <= self.alpha.shape[0]:
            raise ValueError(f"invalid slab [{zlo}, {zhi})")
        return VariableCoefficientStencil(
            self.alpha[zlo:zhi], self.beta[zlo:zhi]
        )

    def compute_plane(
        self,
        out: np.ndarray,
        src: Sequence[np.ndarray],
        yr: tuple[int, int],
        xr: tuple[int, int],
        gz: int = 0,
        gy0: int = 0,
        gx0: int = 0,
    ) -> None:
        validate_footprint(out.shape[1:], yr, xr, self.radius)
        y0, y1 = yr
        x0, x1 = xr
        ys = slice(y0, y1)
        xs = slice(x0, x1)
        below, mid, above = src[0][0], src[1][0], src[2][0]
        a = self.alpha[gz, gy0 + y0 : gy0 + y1, gx0 + x0 : gx0 + x1]
        b = self.beta[gz, gy0 + y0 : gy0 + y1, gx0 + x0 : gx0 + x1]
        acc = below[ys, xs] + above[ys, xs]
        acc += mid[slice(y0 - 1, y1 - 1), xs]
        acc += mid[slice(y0 + 1, y1 + 1), xs]
        acc += mid[ys, slice(x0 - 1, x1 - 1)]
        acc += mid[ys, slice(x0 + 1, x1 + 1)]
        out[0, ys, xs] = a * mid[ys, xs] + b * acc

    def compute_plane_inplace(
        self,
        out: np.ndarray,
        src: Sequence[np.ndarray],
        yr: tuple[int, int],
        xr: tuple[int, int],
        gz: int = 0,
        gy0: int = 0,
        gx0: int = 0,
        *,
        arena: ScratchArena,
        seam_writable: bool = False,
    ) -> None:
        # Same neighbor accumulation order as compute_plane; coefficient
        # slices are views, so only the two scratch planes are reused.
        # (seam_writable is accepted but unused: this path writes only the
        # target region already.)
        validate_footprint(out.shape[1:], yr, xr, self.radius)
        y0, y1 = yr
        x0, x1 = xr
        ys = slice(y0, y1)
        xs = slice(x0, x1)
        below, mid, above = src[0][0], src[1][0], src[2][0]
        a = self.alpha[gz, gy0 + y0 : gy0 + y1, gx0 + x0 : gx0 + x1]
        b = self.beta[gz, gy0 + y0 : gy0 + y1, gx0 + x0 : gx0 + x1]
        shape = (y1 - y0, x1 - x0)
        acc = arena.get("varco.acc", shape, out.dtype)
        tmp = arena.get("varco.tmp", shape, out.dtype)
        np.add(below[ys, xs], above[ys, xs], out=acc)
        acc += mid[slice(y0 - 1, y1 - 1), xs]
        acc += mid[slice(y0 + 1, y1 + 1), xs]
        acc += mid[ys, slice(x0 - 1, x1 - 1)]
        acc += mid[ys, slice(x0 + 1, x1 + 1)]
        np.multiply(a, mid[ys, xs], out=tmp)
        np.multiply(b, acc, out=acc)
        np.add(tmp, acc, out=out[0, ys, xs])
