"""Atomic checkpoint/restart for long sweeps.

A blocked sweep's only state between rounds is the grid itself plus the
number of steps already applied, so a checkpoint is exactly that: the field
data and a step counter (plus free-form metadata so a resume can refuse a
snapshot taken by a different experiment).  Snapshots are written with the
same crash-safety discipline as the tuning cache — serialize to a temporary
file in the same directory, then ``os.replace`` — so a crash mid-write can
never destroy the previous good snapshot, and a truncated file found at
load time is quarantined (renamed to ``*.corrupt``), never trusted.

Restart is bit-exact: re-running the remaining rounds from a snapshot
produces the same bits as the uninterrupted run, because each round reads
only the full grid state of the previous one (the test suite asserts this).
"""

from __future__ import annotations

import json
import os
import zipfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .faultinject import ResilienceError

__all__ = ["Checkpoint", "CheckpointError", "CheckpointStore"]


class CheckpointError(ResilienceError):
    """A snapshot could not be written, or a resume was inconsistent."""


@dataclass
class Checkpoint:
    """One loaded snapshot: grid data, steps already applied, metadata."""

    data: np.ndarray  # (ncomp, nz, ny, nx), as Field3D stores it
    step: int
    meta: dict = field(default_factory=dict)


class CheckpointStore:
    """Atomic on-disk snapshots of (grid, step index) at a fixed path."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.exists()

    def save(self, data: np.ndarray, step: int, meta: dict | None = None) -> None:
        """Atomically replace the snapshot with (``data``, ``step``)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        try:
            with open(tmp, "wb") as fh:
                np.savez(
                    fh,
                    data=np.ascontiguousarray(data),
                    step=np.int64(step),
                    meta=np.frombuffer(
                        json.dumps(meta or {}).encode(), dtype=np.uint8
                    ),
                )
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
        except OSError as exc:
            raise CheckpointError(
                f"cannot write checkpoint {self.path}: {exc}"
            ) from exc

    def load(self) -> Checkpoint | None:
        """The stored snapshot, or ``None`` (missing or quarantined-corrupt)."""
        try:
            with np.load(self.path, allow_pickle=False) as npz:
                data = npz["data"]
                step = int(npz["step"])
                meta = json.loads(bytes(npz["meta"]).decode() or "{}")
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile):
            self._quarantine()
            return None
        if data.ndim != 4 or step < 0 or not isinstance(meta, dict):
            self._quarantine()
            return None
        return Checkpoint(data=data, step=step, meta=meta)

    def _quarantine(self) -> None:
        """Move a corrupt snapshot aside (``*.corrupt``) instead of trusting it."""
        corrupt = self.path.with_name(self.path.name + ".corrupt")
        try:
            os.replace(self.path, corrupt)
        except OSError:
            pass

    def clear(self) -> None:
        """Delete the snapshot (end of a completed run)."""
        try:
            self.path.unlink()
        except OSError:
            pass
