"""Obstacle and domain geometry builders for LBM workloads.

These generate the flag fields for the flow scenarios used by the examples
and benchmarks: empty box, channel with a spherical obstacle, porous medium,
and a solid-walled cavity.  The paper's kernels run on obstacle-flagged
lattices ("reading ... a flag array to find if the cell is an obstacle or
boundary", Section IV-B).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "empty_box",
    "solid_walls",
    "sphere_obstacle",
    "channel_with_sphere",
    "porous_medium",
]


def empty_box(shape: tuple[int, int, int]) -> np.ndarray:
    """All-fluid flags."""
    return np.zeros(shape, dtype=np.uint8)


def solid_walls(shape: tuple[int, int, int], width: int = 1) -> np.ndarray:
    """Flags with a solid shell of the given width (a closed box)."""
    flags = np.zeros(shape, dtype=np.uint8)
    w = width
    flags[:w], flags[-w:] = 1, 1
    flags[:, :w], flags[:, -w:] = 1, 1
    flags[:, :, :w], flags[:, :, -w:] = 1, 1
    return flags


def sphere_obstacle(
    shape: tuple[int, int, int],
    center: tuple[float, float, float],
    radius: float,
) -> np.ndarray:
    """Flags with a solid sphere."""
    nz, ny, nx = shape
    z, y, x = np.ogrid[:nz, :ny, :nx]
    cz, cy, cx = center
    mask = (z - cz) ** 2 + (y - cy) ** 2 + (x - cx) ** 2 <= radius**2
    flags = np.zeros(shape, dtype=np.uint8)
    flags[mask] = 1
    return flags


def channel_with_sphere(
    shape: tuple[int, int, int], sphere_radius: float | None = None
) -> np.ndarray:
    """A wall-bounded channel with a spherical obstacle at 1/3 length."""
    nz, ny, nx = shape
    if sphere_radius is None:
        sphere_radius = min(shape) / 6
    flags = solid_walls(shape)
    flags |= sphere_obstacle(shape, (nz / 2, ny / 2, nx / 3), sphere_radius)
    return flags


def porous_medium(
    shape: tuple[int, int, int],
    porosity: float = 0.85,
    seed: int = 0,
    grain_radius: float = 2.0,
) -> np.ndarray:
    """Random spherical grains until the target porosity is (approximately) hit."""
    if not 0.0 < porosity <= 1.0:
        raise ValueError("porosity must be in (0, 1]")
    rng = np.random.default_rng(seed)
    nz, ny, nx = shape
    flags = solid_walls(shape)
    target_solid = 1.0 - porosity
    for _ in range(10_000):
        if flags[1:-1, 1:-1, 1:-1].mean() >= target_solid:
            break
        center = rng.uniform([1, 1, 1], [nz - 2, ny - 2, nx - 2])
        flags |= sphere_obstacle(shape, tuple(center), grain_radius)
    return flags
