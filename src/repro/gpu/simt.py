"""SIMT execution model of the GTX 285 (paper Sections III-D and VI-A).

The GTX 285 has 30 streaming multiprocessors; each instruction is executed
by a 32-thread *warp* (logical 32-wide SIMD over 8 scalar units).  Per SM
the on-chip storage is a 16 KB shared memory and a 64 KB register file — the
capacities that determine which kernels can be 3.5D-blocked at all.

Two facilities live here:

* :class:`SMConfig` / :func:`occupancy` — the capacity math that limits how
  many blocks and warps an SM can run concurrently.
* :func:`simt_stencil_plane` — a *functional* warp-level execution of one
  XY-plane stencil update, written the way the paper's CUDA kernel works:
  each thread keeps its z-column values in registers, stores the current
  plane value to shared memory, synchronizes, then reads its X/Y neighbors
  from shared memory ("Since CUDA does not allow for explicit inter-thread
  communication, we use the shared memory to communicate between threads",
  Section VI-A).  It returns the computed plane together with shared-memory
  traffic and synchronization counts, and must agree bit-for-bit with the
  plane kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SMConfig", "GTX285_SM", "Occupancy", "occupancy", "SharedTraffic", "simt_stencil_plane"]


@dataclass(frozen=True)
class SMConfig:
    """Per-SM resource limits."""

    warp_size: int = 32
    sm_count: int = 30
    shared_mem_bytes: int = 16 << 10
    register_file_bytes: int = 64 << 10
    max_threads_per_sm: int = 1024
    max_blocks_per_sm: int = 8
    shared_banks: int = 16

    @property
    def registers_per_sm(self) -> int:
        return self.register_file_bytes // 4  # 32-bit registers


#: the GTX 285's streaming multiprocessor
GTX285_SM = SMConfig()


@dataclass(frozen=True)
class Occupancy:
    """Concurrency one kernel configuration achieves on an SM."""

    blocks_per_sm: int
    warps_per_sm: int
    threads_per_sm: int
    occupancy: float
    limited_by: str


def occupancy(
    threads_per_block: int,
    regs_per_thread: int,
    shared_bytes_per_block: int,
    cfg: SMConfig = GTX285_SM,
) -> Occupancy:
    """Blocks/warps an SM sustains for a kernel's resource footprint."""
    if threads_per_block <= 0:
        raise ValueError("threads_per_block must be positive")
    limits = {
        "threads": cfg.max_threads_per_sm // threads_per_block,
        "blocks": cfg.max_blocks_per_sm,
    }
    if regs_per_thread > 0:
        limits["registers"] = cfg.registers_per_sm // (
            regs_per_thread * threads_per_block
        )
    if shared_bytes_per_block > 0:
        limits["shared_memory"] = cfg.shared_mem_bytes // shared_bytes_per_block
    limiter = min(limits, key=limits.get)
    blocks = max(0, limits[limiter])
    threads = blocks * threads_per_block
    warps = threads // cfg.warp_size
    return Occupancy(
        blocks_per_sm=blocks,
        warps_per_sm=warps,
        threads_per_sm=threads,
        occupancy=threads / cfg.max_threads_per_sm,
        limited_by=limiter,
    )


@dataclass
class SharedTraffic:
    """Shared-memory operations of a SIMT plane update."""

    shared_stores: int = 0
    shared_loads: int = 0
    syncthreads: int = 0
    register_reads: int = 0


def simt_stencil_plane(
    alpha: float,
    beta: float,
    below: np.ndarray,
    mid: np.ndarray,
    above: np.ndarray,
    cfg: SMConfig = GTX285_SM,
) -> tuple[np.ndarray, SharedTraffic]:
    """One 7-point-stencil plane computed in explicit SIMT style.

    ``below``/``mid``/``above`` are (ny, nx) planes held in the threads'
    registers (z-column register blocking, as in the Nvidia 3DFD kernel the
    paper builds on).  The interior ``(ny-2) x (nx-2)`` output is computed
    warp-by-warp: every thread stores its ``mid`` value into the shared-
    memory tile, the block synchronizes, then each thread gathers its 4
    in-plane neighbors from shared memory and its z neighbors from
    registers.
    """
    ny, nx = mid.shape
    dtype = mid.dtype.type
    out = np.zeros_like(mid)
    traffic = SharedTraffic()

    # stage the plane into "shared memory" one block-row at a time
    shared = np.empty_like(mid)
    n_threads = ny * nx
    n_warps = (n_threads + cfg.warp_size - 1) // cfg.warp_size
    flat_src = mid.reshape(-1)
    flat_dst = shared.reshape(-1)
    for w in range(n_warps):
        lo = w * cfg.warp_size
        hi = min(lo + cfg.warp_size, n_threads)
        flat_dst[lo:hi] = flat_src[lo:hi]  # one coalesced shared store per lane
        traffic.shared_stores += hi - lo
    traffic.syncthreads += 1

    # each interior thread now reads 4 neighbors from shared memory and the
    # two z-neighbors from its registers
    interior = np.s_[1 : ny - 1, 1 : nx - 1]
    acc = below[interior] + above[interior]
    traffic.register_reads += 2 * (ny - 2) * (nx - 2)
    # paired opposite-neighbor adds, matching SevenPointStencil's
    # mirror-invariant evaluation order
    acc = acc + (shared[: ny - 2, 1 : nx - 1] + shared[2:ny, 1 : nx - 1])
    acc = acc + (shared[1 : ny - 1, : nx - 2] + shared[1 : ny - 1, 2:nx])
    traffic.shared_loads += 4 * (ny - 2) * (nx - 2)
    out[interior] = dtype(alpha) * shared[interior] + dtype(beta) * acc
    traffic.shared_loads += (ny - 2) * (nx - 2)
    return out, traffic
