"""Distributed-memory layer: slab decomposition + simulated message passing."""

from .comm import CommFailedError, CommStats, SimComm, transfer_time
from .decompose import Slab, decompose_z
from .runner import DistributedJacobi

__all__ = [
    "SimComm",
    "CommFailedError",
    "CommStats",
    "transfer_time",
    "Slab",
    "decompose_z",
    "DistributedJacobi",
]
