"""Scheme-level throughput predictions (regenerates Figure 4).

For each (kernel, platform, precision, grid, blocking scheme) this module
composes:

* the machine's rates (:mod:`repro.machine.spec`),
* the kernel's per-update costs (:mod:`repro.perf.kernels`),
* the blocking scheme's traffic/compute inflation
  (:mod:`repro.core.overestimation`, Equations 2-4), and
* the implementation-efficiency constants with paper provenance
  (:mod:`repro.perf.calibration`)

into a roofline throughput.  The benches print these against the paper's
reported numbers; agreement within ~10-15% and, more importantly, the same
*shape* — who is bandwidth bound where, which grid sizes benefit, where
blocking is infeasible — is the reproduction target.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.overestimation import kappa_4d, kappa_35d
from ..core.params import blocking_dim, min_dim_t
from ..machine.spec import CORE_I7, GTX_285, MachineSpec
from .calibration import CPU_CAL, GPU_CAL, CpuCalibration, GpuCalibration
from .kernels import LBM_D3Q19, SEVEN_POINT, KernelModel

__all__ = [
    "PerfEstimate",
    "predict_7pt_cpu",
    "predict_lbm_cpu",
    "predict_7pt_gpu",
    "predict_lbm_gpu",
    "SCHEMES",
]

SCHEMES = ("none", "spatial", "temporal", "4d", "35d")


@dataclass(frozen=True)
class PerfEstimate:
    """One predicted throughput point."""

    kernel: str
    platform: str
    precision: str
    scheme: str
    grid: int
    mupdates_per_s: float
    bandwidth_bound: bool
    bytes_per_update: float
    ops_per_update: float
    note: str = ""


def _esize(precision: str) -> int:
    return 4 if precision == "sp" else 8


def _roofline(compute_limit: float, bw_limit: float) -> tuple[float, bool]:
    if bw_limit < compute_limit:
        return bw_limit, True
    return compute_limit, False


# ----------------------------------------------------------------------
# 7-point stencil on the Core i7 (Figure 4b)
# ----------------------------------------------------------------------
def predict_7pt_cpu(
    scheme: str,
    precision: str = "sp",
    grid: int = 256,
    machine: MachineSpec = CORE_I7,
    cal: CpuCalibration = CPU_CAL,
    kernel: KernelModel = SEVEN_POINT,
) -> PerfEstimate:
    esize = _esize(precision)
    simd_eff = cal.simd_efficiency_sp if precision == "sp" else cal.simd_efficiency_dp
    compute_rate = machine.peak_ops(precision) * cal.core_scaling * simd_eff
    grid_bytes = 2 * grid**3 * esize  # Jacobi double buffer
    slabs_fit = 3 * grid * grid * esize <= machine.llc_bytes
    note = ""

    if scheme in ("none", "spatial"):
        ops = kernel.ops_per_update
        if grid_bytes <= machine.llc_bytes:
            bytes_pu = 0.0  # whole problem cache resident (the 64^3 case)
            note = "entire data set fits in cache"
        elif slabs_fit or scheme == "spatial":
            # streaming stores + slab reuse: compulsory traffic only
            bytes_pu = kernel.bytes_ideal(precision)
        else:
            bytes_pu = (2 * kernel.radius + 2) * esize
        eff = 1.0
        if scheme == "spatial" and grid_bytes <= machine.llc_bytes:
            eff = 0.97  # block-addressing overhead: the small-grid slowdown
    elif scheme in ("temporal", "35d", "4d"):
        gamma = kernel.gamma_blocked(precision)
        dim_t = min_dim_t(gamma, machine.bytes_per_op(precision))
        if scheme == "4d":
            d3 = round((machine.blocking_capacity / (esize * dim_t)) ** (1 / 3))
            kappa = kappa_4d(1, dim_t, d3)
            note = f"dim_T={dim_t}, block side {d3}"
        else:
            dim_x = blocking_dim(machine.blocking_capacity, esize, 1, dim_t, align=4)
            if scheme == "temporal":
                # temporal blocking without XY blocking: the plane pair must
                # fit the blocking budget or there is no reuse at all
                plane_buffer = esize * (2 * kernel.radius + 2) * dim_t * grid * grid
                if plane_buffer > machine.blocking_capacity:
                    return predict_7pt_cpu(
                        "none", precision, grid, machine, cal, kernel
                    )._retag("temporal", "buffer exceeds cache: no benefit")
                dim_x = grid
            kappa = kappa_35d(1, dim_t, dim_x)
            note = f"dim_T={dim_t}, dim_X={dim_x}"
        ops = kernel.ops_per_update * kappa
        bytes_pu = kernel.bytes_ideal(precision) * kappa / dim_t
        eff = cal.blocking_residual_7pt
    else:
        raise ValueError(f"unknown scheme {scheme!r}")

    compute_limit = compute_rate * eff / ops
    bw_limit = (
        machine.achievable_bandwidth / bytes_pu if bytes_pu > 0 else float("inf")
    )
    ups, bw_bound = _roofline(compute_limit, bw_limit)
    return PerfEstimate(
        kernel="7pt",
        platform="cpu",
        precision=precision,
        scheme=scheme,
        grid=grid,
        mupdates_per_s=ups / 1e6,
        bandwidth_bound=bw_bound,
        bytes_per_update=bytes_pu,
        ops_per_update=ops,
        note=note,
    )


# ----------------------------------------------------------------------
# LBM on the Core i7 (Figure 4a)
# ----------------------------------------------------------------------
def predict_lbm_cpu(
    scheme: str,
    precision: str = "sp",
    grid: int = 256,
    machine: MachineSpec = CORE_I7,
    cal: CpuCalibration = CPU_CAL,
    kernel: KernelModel = LBM_D3Q19,
    use_simd: bool = True,
    ilp: bool = True,
) -> PerfEstimate:
    esize = _esize(precision)
    scalar_rate = machine.cores * machine.frequency_ghz * 1e9 * cal.scalar_ops_per_cycle
    simd_scale = (
        (cal.lbm_simd_scaling_sp if precision == "sp" else cal.lbm_simd_scaling_dp)
        if use_simd
        else 1.0
    )
    compute_rate = scalar_rate * simd_scale
    note = ""

    if scheme in ("none", "spatial"):
        # LBM has no spatial reuse: spatial blocking changes nothing (Fig 5a)
        ops = kernel.ops_per_update
        bytes_pu = kernel.bytes_unblocked(precision, streaming_stores=False)
        bytes_pu += esize  # the flag read
        eff = 1.0
    elif scheme in ("temporal", "35d", "4d"):
        gamma = kernel.gamma(precision)
        dim_t = min_dim_t(gamma, machine.bytes_per_op(precision))
        E = kernel.element_size(precision)
        if scheme == "4d":
            d3 = round((machine.blocking_capacity / (E * dim_t)) ** (1 / 3))
            kappa = kappa_4d(1, dim_t, d3)
            note = f"dim_T={dim_t}, block side {d3}"
        elif scheme == "temporal":
            plane_buffer = E * (2 * kernel.radius + 2) * dim_t * grid * grid
            if plane_buffer > machine.blocking_capacity:
                return predict_lbm_cpu(
                    "none", precision, grid, machine, cal, kernel, use_simd, ilp
                )._retag("temporal", "XY slabs exceed cache: no benefit")
            kappa = 1.0  # whole-plane tiles: no XY ghosts at all
            note = f"dim_T={dim_t}, whole-plane tiles"
        else:
            dim_x = blocking_dim(machine.blocking_capacity, E, 1, dim_t, align=4)
            kappa = kappa_35d(1, dim_t, dim_x)
            note = f"dim_T={dim_t}, dim_X={dim_x}"
        ops = kernel.ops_per_update * kappa
        # one read (+flag) and one write per dim_T steps; streaming stores
        # still impossible, but the write-allocate traffic stays in cache
        bytes_pu = (kernel.bytes_ideal(precision) + esize) * kappa / dim_t
        eff = cal.blocking_residual_lbm
    else:
        raise ValueError(f"unknown scheme {scheme!r}")

    if ilp and scheme in ("temporal", "35d", "4d"):
        eff *= cal.lbm_ilp_boost
    compute_limit = compute_rate * eff / ops
    bw_limit = machine.achievable_bandwidth / bytes_pu
    ups, bw_bound = _roofline(compute_limit, bw_limit)
    return PerfEstimate(
        kernel="lbm",
        platform="cpu",
        precision=precision,
        scheme=scheme,
        grid=grid,
        mupdates_per_s=ups / 1e6,
        bandwidth_bound=bw_bound,
        bytes_per_update=bytes_pu,
        ops_per_update=ops,
        note=note,
    )


# ----------------------------------------------------------------------
# 7-point stencil on the GTX 285 (Figure 4c)
# ----------------------------------------------------------------------
def predict_7pt_gpu(
    scheme: str,
    precision: str = "sp",
    grid: int = 256,
    machine: MachineSpec = GTX_285,
    cal: GpuCalibration = GPU_CAL,
    kernel: KernelModel = SEVEN_POINT,
    ilp: bool = True,
) -> PerfEstimate:
    esize = _esize(precision)
    note = ""
    if precision == "dp":
        # DP is compute bound with spatial blocking alone (Section VII-A);
        # measured 4600 MU/s = 79% of the raw DP peak
        if scheme == "none":
            bytes_pu = cal.naive_values_per_update * esize
            ups = machine.achievable_bandwidth / bytes_pu
            return PerfEstimate(
                "7pt", "gpu", precision, scheme, grid, ups / 1e6, True,
                bytes_pu, kernel.ops_per_update, "no on-chip reuse",
            )
        ups = machine.peak_ops("dp") * 0.79 / kernel.ops_per_update
        return PerfEstimate(
            "7pt", "gpu", precision, scheme, grid, ups / 1e6, False,
            kernel.bytes_ideal(precision), kernel.ops_per_update,
            "compute bound; temporal blocking unnecessary (Section VII-A)",
        )

    derated = machine.stencil_ops("sp")
    if scheme == "none":
        bytes_pu = cal.naive_values_per_update * esize
        ups = machine.achievable_bandwidth / bytes_pu
        return PerfEstimate(
            "7pt", "gpu", precision, scheme, grid, ups / 1e6, True,
            bytes_pu, kernel.ops_per_update,
            "no caches: every neighbor re-fetched (Section VII-A)",
        )
    if scheme == "spatial":
        bytes_pu = (cal.spatial_read_overestimation + 1) * esize
        bw_limit = machine.achievable_bandwidth * cal.spatial_bw_utilization / bytes_pu
        compute_limit = derated / kernel.ops_per_update
        ups, bw_bound = _roofline(compute_limit, bw_limit)
        return PerfEstimate(
            "7pt", "gpu", precision, scheme, grid, ups / 1e6, bw_bound,
            bytes_pu, kernel.ops_per_update, "shared-memory tiling",
        )
    if scheme in ("4d", "35d"):
        dim_t = 2  # Section VI-A
        if scheme == "4d":
            d3 = round((machine.blocking_capacity / (esize * dim_t)) ** (1 / 3))
            kappa = kappa_4d(1, dim_t, d3)
            note = f"dim_T=2, 3D side {d3}"
        else:
            kappa = kappa_35d(1, dim_t, 32)  # warp-aligned dim_X = 32
            note = "dim_T=2, dim_X=32"
        eff = cal.blocked_compute_efficiency
        if ilp and scheme == "35d":
            eff *= cal.unroll_boost * cal.amortize_boost
        ops = kernel.ops_per_update * kappa
        compute_limit = derated * eff / ops
        bytes_pu = kernel.bytes_ideal(precision) * kappa / dim_t
        # the tuned space-time kernel streams coalesced loads/stores without
        # the spatial stage's staging stalls; full achievable bandwidth
        bw_limit = machine.achievable_bandwidth / bytes_pu
        ups, bw_bound = _roofline(compute_limit, bw_limit)
        return PerfEstimate(
            "7pt", "gpu", precision, scheme, grid, ups / 1e6, bw_bound,
            bytes_pu, ops, note,
        )
    raise ValueError(f"unknown scheme {scheme!r}")


# ----------------------------------------------------------------------
# LBM on the GTX 285 (Section VII-B)
# ----------------------------------------------------------------------
def predict_lbm_gpu(
    scheme: str,
    precision: str = "sp",
    grid: int = 256,
    machine: MachineSpec = GTX_285,
    cal: GpuCalibration = GPU_CAL,
    kernel: KernelModel = LBM_D3Q19,
) -> PerfEstimate:
    esize = _esize(precision)
    if precision == "dp":
        # compute bound even unblocked: ~39 DP Gops, 15-20% off peak
        ups = machine.stencil_ops("dp") * 0.84 / kernel.ops_per_update
        return PerfEstimate(
            "lbm", "gpu", precision, scheme, grid, ups / 1e6, False,
            kernel.bytes_unblocked(precision, False), kernel.ops_per_update,
            "compute bound without blocking (Section VII-B)",
        )
    if scheme in ("temporal", "35d", "4d"):
        from ..gpu.plan import plan_lbm_gpu

        plan = plan_lbm_gpu(precision, machine)
        if not plan.feasible:
            est = predict_lbm_gpu("none", precision, grid, machine, cal, kernel)
            return est._retag(scheme, f"infeasible: {plan.reason}")
    # bandwidth bound with uncoalesced-neighbor-write waste
    bytes_pu = kernel.bytes_unblocked(precision, streaming_stores=False) * 1.18
    ups = machine.achievable_bandwidth / bytes_pu
    return PerfEstimate(
        "lbm", "gpu", precision, scheme, grid, ups / 1e6, True,
        bytes_pu, kernel.ops_per_update, "bandwidth bound (485 MU/s reported)",
    )


def _retag(self: PerfEstimate, scheme: str, note: str) -> PerfEstimate:
    return PerfEstimate(
        kernel=self.kernel,
        platform=self.platform,
        precision=self.precision,
        scheme=scheme,
        grid=self.grid,
        mupdates_per_s=self.mupdates_per_s,
        bandwidth_bound=self.bandwidth_bound,
        bytes_per_update=self.bytes_per_update,
        ops_per_update=self.ops_per_update,
        note=note,
    )


PerfEstimate._retag = _retag  # type: ignore[attr-defined]
