"""Tests for the variable-coefficient stencil (aux-state coordinate plumbing)."""

import numpy as np
import pytest

from repro.core import (
    run_2_5d,
    run_3_5d,
    run_4d,
    run_cache_oblivious,
    run_naive,
)
from repro.runtime import run_parallel_3_5d
from repro.stencils import Field3D, SevenPointStencil, VariableCoefficientStencil


def random_coefficients(shape, seed=0, dtype=np.float64):
    rng = np.random.default_rng(seed)
    beta = (0.02 + 0.1 * rng.random(shape)).astype(dtype)
    alpha = (1.0 - 6.0 * beta).astype(dtype)
    return VariableCoefficientStencil(alpha=alpha, beta=beta)


class TestConstruction:
    def test_layered(self):
        k = VariableCoefficientStencil.layered((9, 4, 4), [1.0, 0.1, 0.5])
        assert k.beta[0, 0, 0] == pytest.approx(1.0 / 8.0)
        assert k.beta[4, 0, 0] == pytest.approx(0.1 / 8.0)
        assert k.beta[-1, 0, 0] == pytest.approx(0.5 / 8.0)
        np.testing.assert_allclose(k.alpha + 6 * k.beta, 1.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            VariableCoefficientStencil(np.zeros((3, 3, 3)), np.zeros((3, 3, 4)))

    def test_element_size_counts_coefficients(self):
        k = random_coefficients((4, 4, 4))
        assert k.element_size(np.float64) == 24
        assert k.ops_per_update == 23


class TestReducesToConstant:
    def test_uniform_coefficients_match_seven_point(self):
        shape = (8, 9, 10)
        alpha, beta = 0.4, 0.1
        kvar = VariableCoefficientStencil(
            np.full(shape, alpha), np.full(shape, beta)
        )
        kconst = SevenPointStencil(alpha=alpha, beta=beta)
        f = Field3D.random(shape, seed=1)
        a = run_naive(kvar, f, 4)
        b = run_naive(kconst, f, 4)
        np.testing.assert_allclose(a.data, b.data, rtol=1e-12)


class TestBlockedEquivalence:
    """Any coordinate-offset bug in an executor shows up immediately here."""

    @pytest.fixture(scope="class")
    def setup(self):
        shape = (12, 14, 16)
        kernel = random_coefficients(shape, seed=2)
        field = Field3D.random(shape, seed=3)
        ref = run_naive(kernel, field, 5)
        return kernel, field, ref

    def test_25d(self, setup):
        kernel, field, ref = setup
        out = run_2_5d(kernel, field, 5, 9, 7)
        assert np.array_equal(out.data, ref.data)

    def test_35d(self, setup):
        kernel, field, ref = setup
        out = run_3_5d(kernel, field, 5, 2, 12, 10, validate=True)
        assert np.array_equal(out.data, ref.data)

    def test_35d_sequential(self, setup):
        kernel, field, ref = setup
        out = run_3_5d(kernel, field, 5, 2, 12, 10, concurrent=False)
        assert np.array_equal(out.data, ref.data)

    def test_4d(self, setup):
        kernel, field, ref = setup
        out = run_4d(kernel, field, 5, 2, 10, 11, 12)
        assert np.array_equal(out.data, ref.data)

    def test_cache_oblivious(self, setup):
        kernel, field, ref = setup
        out = run_cache_oblivious(kernel, field, 5)
        assert np.array_equal(out.data, ref.data)

    def test_parallel(self, setup):
        kernel, field, ref = setup
        out = run_parallel_3_5d(kernel, field, 5, 2, 12, 10, n_threads=3)
        assert np.array_equal(out.data, ref.data)


class TestPhysics:
    def test_heat_diffuses_faster_in_high_diffusivity_layer(self):
        """A hot plane spreads further where D is larger."""
        shape = (9, 24, 24)
        k = VariableCoefficientStencil.layered(shape, [1.0, 1.0, 1.0])
        # same geometry but x-layered: build manually, beta varies along x
        beta = np.full(shape, 0.02)
        beta[:, :, 12:] = 0.12  # right half diffuses 6X faster
        kvar = VariableCoefficientStencil(1.0 - 6 * beta, beta)
        f = Field3D.zeros(shape)
        f.data[0, 4, 11:13, 11:13] = 100.0  # hot spot at the interface
        out = run_naive(kvar, f, 30)
        left = out.data[0, 4, 12, 6]   # 6 cells into the slow side
        right = out.data[0, 4, 12, 18]  # 6 cells into the fast side
        assert right > 3 * left
        _ = k
