#!/usr/bin/env python
"""Codegen benchmark: whole-sweep compiled kernels vs the ladder below.

Times the 3.5D executor with the ``codegen`` backend — one generated kernel
per (stencil kind, parallel) that executes a whole round (tile loop, ring
rotation, seam writes, all dim_T z-iterations) in a single call — against
``numpy`` and ``fused-numpy`` on the 7-point kernel, single thread.  Every
configuration is cross-checked bit-exactly against the naive reference
before it is timed.

The acceptance bar for this layer: ``codegen`` reaches at least **4x** the
single-thread GUPS of the per-plane ``numpy`` backend on the 7-point kernel
at 128^3 (run without ``--quick``).  The bar is enforced only when the
generated kernel really compiles (numba installed, ``REPRO_CODEGEN_MODE``
not forced to ``python``); the warm-up run populates the on-disk kernel
cache first, so cold JIT cost is excluded from the timed repeats — and the
warm-start section demonstrates that a fresh process would regenerate
nothing.

Alongside GUPS the benchmark reports achieved external bandwidth (measured
traffic bytes over the best wall time) against a STREAM-like measured copy
bandwidth and the Core i7 model's achievable/peak numbers, DaCe-style.

Results are also written as machine-readable JSON (``--json``, default
``BENCH_codegen.json`` next to this script) for CI artifact upload.

Usage::

    PYTHONPATH=src python benchmarks/bench_codegen.py          # full (128^3)
    PYTHONPATH=src python benchmarks/bench_codegen.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.core import Blocking35D, run_naive
from repro.core.traffic import TrafficStats
from repro.machine import CORE_I7
from repro.perf.backends import bound_rung
from repro.perf.codegen import (
    CODEGEN_STATS,
    CodegenCache,
    codegen_available,
    codegen_mode,
    clear_module_cache,
)
from repro.resilience import bind_with_fallback
from repro.stencils import Field3D, SevenPointStencil

BACKENDS = ["numpy", "fused-numpy", "codegen"]


def _timed(fn, *args) -> float:
    t0 = time.perf_counter()
    fn(*args)
    return time.perf_counter() - t0


def _stream_copy_bandwidth(nbytes: int, repeats: int = 3) -> float:
    """Measured large-array copy bandwidth (bytes moved per second).

    A ``np.copyto`` streams one read + one write per element — the same
    kind of traffic the stencil sweep's achieved bandwidth is made of.
    """
    n = max(1, nbytes // 4)
    a = np.zeros(n, dtype=np.float32)
    b = np.ones(n, dtype=np.float32)
    np.copyto(a, b)  # touch pages
    best = min(_timed(np.copyto, a, b) for _ in range(repeats))
    return 2 * n * 4 / best


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small grid / fewer repeats (CI smoke mode)")
    ap.add_argument("--grid", type=int, default=None,
                    help="override the grid side (default 128; 32 quick)")
    ap.add_argument("--steps", type=int, default=4)
    ap.add_argument("--dim-t", type=int, default=4)
    ap.add_argument("--tile", type=int, default=None,
                    help="square XY tile side (default min(grid, 64))")
    ap.add_argument("--repeats", type=int, default=None)
    ap.add_argument("--no-check", action="store_true",
                    help="skip the naive bit-exactness cross-check")
    ap.add_argument("--json", default=None, metavar="PATH",
                    help="machine-readable output path "
                    "(default BENCH_codegen.json next to this script)")
    args = ap.parse_args(argv)

    grid = args.grid or (32 if args.quick else 128)
    repeats = args.repeats or (1 if args.quick else 4)
    dim_t = args.dim_t
    tile = args.tile or min(grid, 64)
    n_updates = grid**3 * args.steps

    ok, reason = codegen_available()
    mode = codegen_mode()
    print(f"codegen: available={ok} mode={mode}"
          + (f" ({reason})" if reason else ""))

    kernel = SevenPointStencil()
    field = Field3D.random((grid, grid, grid), dtype=np.float32, seed=17)
    ref = run_naive(kernel, field, args.steps) if not args.no_check else None

    print(f"\n== 7pt  grid={grid}^3  steps={args.steps}  dim_T={dim_t}  "
          f"tile={tile}  threads=1 ==")
    print(f"{'backend':<14} {'rung':<14} {'ms/run':>9} {'GUPS':>8} {'vs numpy':>9}")

    CODEGEN_STATS.reset()
    executors = {}
    rungs = {}
    for bname in BACKENDS:
        bound = bind_with_fallback(kernel, bname)
        if bound.used != bname:
            print(f"{bname:<14} degraded to {bound.used}; skipped")
            continue
        ex = Blocking35D(bound.kernel, dim_t, tile, tile)
        out = ex.run(field, args.steps)  # warm-up: JIT + disk cache + arenas
        if ref is not None and not np.array_equal(out.data, ref.data):
            print(f"{bname:<14} BIT-EXACTNESS FAILURE vs naive reference")
            raise SystemExit(1)
        executors[bname] = ex
        rungs[bname] = bound_rung(ex.kernel)
    cold_stats = CODEGEN_STATS.snapshot()

    # Warm-start check: simulate a fresh process against the now-populated
    # disk cache — a rebind must load the generated module, compiling and
    # generating nothing.
    warm_stats = None
    if "codegen" in executors:
        clear_module_cache()
        CODEGEN_STATS.reset()
        rebound = bind_with_fallback(kernel, "codegen")
        Blocking35D(rebound.kernel, dim_t, tile, tile).run(field, args.steps)
        warm_stats = CODEGEN_STATS.snapshot()

    best = {bname: float("inf") for bname in executors}
    for _ in range(repeats):
        for bname, ex in executors.items():
            best[bname] = min(best[bname], _timed(ex.run, field, args.steps))
    gups = {bname: n_updates / t / 1e9 for bname, t in best.items()}
    for bname in executors:
        ratio = gups[bname] / gups["numpy"]
        print(f"{bname:<14} {rungs[bname]:<14} {best[bname] * 1e3:>9.2f} "
              f"{gups[bname]:>8.4f} {ratio:>8.2f}x")

    # Achieved-vs-peak bandwidth, DaCe style: one metered sweep yields the
    # external byte count; achieved = bytes / best wall time.
    bandwidth = None
    if "codegen" in executors:
        traffic = TrafficStats()
        executors["codegen"].run(field, args.steps, traffic)
        moved = traffic.bytes_read + traffic.bytes_written
        achieved = moved / best["codegen"]
        stream = _stream_copy_bandwidth(field.data.nbytes)
        bandwidth = {
            "traffic_bytes": moved,
            "achieved_GBs": achieved / 1e9,
            "stream_copy_GBs": stream / 1e9,
            "model_achievable_GBs": CORE_I7.achievable_bandwidth / 1e9,
            "model_peak_GBs": CORE_I7.peak_bandwidth / 1e9,
            "fraction_of_stream": achieved / stream,
            "fraction_of_model_achievable":
                achieved / CORE_I7.achievable_bandwidth,
        }
        print(f"\nbandwidth: achieved {bandwidth['achieved_GBs']:.2f} GB/s"
              f" = {100 * bandwidth['fraction_of_stream']:.0f}% of measured"
              f" copy ({bandwidth['stream_copy_GBs']:.2f} GB/s),"
              f" {100 * bandwidth['fraction_of_model_achievable']:.0f}% of the"
              f" Core i7 model's achievable"
              f" {bandwidth['model_achievable_GBs']:.0f} GB/s")

    cache = CodegenCache()
    entries = []
    try:
        entries = [os.path.basename(p) for p in cache.entries()]
    except OSError:
        pass
    print(f"codegen cache: dir={cache.dir()}")
    print(f"  cold run : {cold_stats}")
    if warm_stats is not None:
        print(f"  warm run : {warm_stats}"
              + (" (zero regeneration)" if warm_stats["generated"] == 0
                 else " (UNEXPECTED regeneration)"))
    print(f"  entries  : {entries}")

    rc = 0
    bar = 4.0
    speedup = None
    gate = "codegen" in gups and rungs.get("codegen") == "codegen" and ok
    if "codegen" in gups:
        speedup = gups["codegen"] / gups["numpy"]
        if not gate:
            verdict = "n/a (codegen did not bind)"
        elif mode != "numba":
            verdict = "n/a (interpreted REPRO_CODEGEN_MODE=python)"
        elif args.quick:
            verdict = "n/a (quick)"
        else:
            verdict = "PASS" if speedup >= bar else "FAIL"
            if speedup < bar:
                rc = 1
        print(f"\n7pt codegen vs numpy (dim_T={dim_t}): {speedup:.2f}x "
              f"(acceptance >= {bar}x at 128^3: {verdict})")
    else:
        verdict = f"skipped (codegen unavailable: {reason})"
        print(f"\nacceptance: {verdict}")

    if warm_stats is not None and warm_stats["generated"] != 0:
        print("error: warm start regenerated kernels (disk cache miss)",
              file=sys.stderr)
        rc = rc or 1

    json_path = args.json or os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "BENCH_codegen.json"
    )
    with open(json_path, "w", encoding="utf-8") as fh:
        json.dump(
            {
                "benchmark": "codegen",
                "grid": grid,
                "steps": args.steps,
                "dim_t": dim_t,
                "tile": tile,
                "quick": args.quick,
                "repeats": repeats,
                "mode": mode,
                "available": ok,
                "unavailable_reason": reason,
                "backends": list(executors),
                "bound_rungs": rungs,
                "gups": gups,
                "bandwidth": bandwidth,
                "cache": {
                    "dir": str(cache.dir()),
                    "entries": entries,
                    "cold_stats": cold_stats,
                    "warm_stats": warm_stats,
                },
                "acceptance": {
                    "bar": bar,
                    "speedup": speedup,
                    "verdict": verdict,
                },
            },
            fh, indent=2,
        )
        fh.write("\n")
    print(f"wrote {json_path}")
    return rc


if __name__ == "__main__":
    sys.exit(main())
