"""Normalized comparisons against prior work (paper Section VII-D).

The paper normalizes each prior result to its own platform (bandwidth ratio
for bandwidth-bound numbers, frequency/socket ratio for compute-bound ones)
and reports the speedup of its 3.5D implementation.  This module reproduces
each comparison row with the same normalization arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

from .model import (
    predict_7pt_cpu,
    predict_7pt_gpu,
    predict_lbm_cpu,
)

__all__ = ["Comparison", "section_viid_comparisons"]


@dataclass(frozen=True)
class Comparison:
    """One Section VII-D row: prior work vs this paper's implementation."""

    label: str
    prior_raw: float
    prior_normalized: float
    ours_modeled: float
    paper_ours: float
    paper_speedup: float
    normalization: str

    @property
    def modeled_speedup(self) -> float:
        return self.ours_modeled / self.prior_normalized


def section_viid_comparisons() -> list[Comparison]:
    """All Section VII-D comparison rows (CPU and GPU)."""
    rows: list[Comparison] = []

    # --- 7-point DP CPU vs Datta [10]: 1000 MU/s on Xeon X5550 @16.5 GB/s,
    # bandwidth bound -> normalize by bandwidth ratio 22/16.5.
    datta_dp_norm = 1000 * 22 / 16.5
    rows.append(
        Comparison(
            label="7pt DP CPU vs Datta [10]",
            prior_raw=1000,
            prior_normalized=datta_dp_norm,
            ours_modeled=predict_7pt_cpu("35d", "dp").mupdates_per_s,
            paper_ours=1995,
            paper_speedup=1.5,
            normalization="bandwidth ratio 22/16.5 (both bandwidth bound)",
        )
    )

    # --- 7-point SP CPU: best prior is bandwidth bound; our no-blocking
    # number is exactly that bound, so the comparison is 3.5D vs naive.
    sp_naive = predict_7pt_cpu("none", "sp").mupdates_per_s
    rows.append(
        Comparison(
            label="7pt SP CPU vs best bandwidth-bound prior",
            prior_raw=sp_naive,
            prior_normalized=sp_naive,
            ours_modeled=predict_7pt_cpu("35d", "sp").mupdates_per_s,
            paper_ours=4000,
            paper_speedup=1.5,
            normalization="prior equals the bandwidth-bound roofline",
        )
    )

    # --- LBM DP CPU vs Habich [13]: 64 MLUPS on dual-socket 2.66 GHz
    # Nehalem -> x0.5 sockets, x(3.2/2.66) frequency = 38.5 MLUPS.
    habich_norm = 64 * 0.5 * (3.2 / 2.66)
    rows.append(
        Comparison(
            label="LBM DP CPU vs Habich [13]",
            prior_raw=64,
            prior_normalized=habich_norm,
            ours_modeled=predict_lbm_cpu("35d", "dp").mupdates_per_s,
            paper_ours=80,
            paper_speedup=2.08,
            normalization="0.5 socket x 3.2/2.66 GHz (compute bound)",
        )
    )

    # --- LBM SP CPU: 3.5D vs the bandwidth-bound 87 MLUPS baseline.
    lbm_sp_naive = predict_lbm_cpu("none", "sp").mupdates_per_s
    rows.append(
        Comparison(
            label="LBM SP CPU vs bandwidth-bound baseline",
            prior_raw=lbm_sp_naive,
            prior_normalized=lbm_sp_naive,
            ours_modeled=predict_lbm_cpu("35d", "sp").mupdates_per_s,
            paper_ours=180,
            paper_speedup=2.1,
            normalization="prior equals the bandwidth-bound roofline",
        )
    )

    # --- 7-point SP GPU: 1.8X over the bandwidth-bound spatially blocked
    # implementation (Datta-class prior numbers are spatial-only).
    gpu_spatial = predict_7pt_gpu("spatial", "sp").mupdates_per_s
    rows.append(
        Comparison(
            label="7pt SP GPU vs spatially blocked prior",
            prior_raw=gpu_spatial,
            prior_normalized=gpu_spatial,
            ours_modeled=predict_7pt_gpu("35d", "sp").mupdates_per_s,
            paper_ours=17100,
            paper_speedup=1.8,
            normalization="prior equals the spatially blocked bound",
        )
    )

    # --- 7-point DP GPU vs Datta [11] on GTX 280: 4500 MU/s compute bound;
    # the paper is 10-15% *slower* after normalization (reported ~0.87X).
    rows.append(
        Comparison(
            label="7pt DP GPU vs Datta [11]",
            prior_raw=4500,
            prior_normalized=4500 * 1.18,  # GTX285/GTX280 DP throughput ratio
            ours_modeled=predict_7pt_gpu("spatial", "dp").mupdates_per_s,
            paper_ours=4600,
            paper_speedup=0.87,
            normalization="GTX 280 -> GTX 285 compute scaling ~1.18",
        )
    )
    return rows
