"""Quarantine bookkeeping for corrupt on-disk artifacts.

Every durable store in the tree (tuning cache, checkpoints, the serve
journal) follows the same discipline when it meets bytes it cannot trust:
move them aside as ``*.corrupt`` instead of deleting evidence or silently
restoring garbage.  That policy has a failure mode of its own — a host
with a flaky disk quarantines forever and the ``.corrupt`` graveyard grows
without bound.  This module centralizes the two missing pieces:

* :func:`quarantine` — move a file aside under a *unique* ``.corrupt``
  name (``name.corrupt``, ``name.1.corrupt``, ...), so repeated
  corruptions of the same path keep distinct evidence instead of
  overwriting the previous sample;
* :func:`gc_corrupt` — a count-capped garbage collector: keep the newest
  ``$REPRO_CORRUPT_KEEP`` (default 8) quarantined files per directory and
  delete the rest.  Every quarantine triggers a GC of its directory, and
  ``repro tune --prune`` sweeps the cache/checkpoint directories
  explicitly.
"""

from __future__ import annotations

import os
from pathlib import Path

__all__ = [
    "REPRO_CORRUPT_KEEP_ENV",
    "DEFAULT_CORRUPT_KEEP",
    "corrupt_keep",
    "gc_corrupt",
    "quarantine",
]

#: environment variable capping retained ``*.corrupt`` files per directory
REPRO_CORRUPT_KEEP_ENV = "REPRO_CORRUPT_KEEP"

#: quarantined files kept per directory when the env var is unset
DEFAULT_CORRUPT_KEEP = 8


def corrupt_keep(environ=None) -> int:
    """The per-directory retention cap (``$REPRO_CORRUPT_KEEP``, min 0)."""
    environ = os.environ if environ is None else environ
    raw = environ.get(REPRO_CORRUPT_KEEP_ENV, "")
    try:
        return max(0, int(raw))
    except ValueError:
        return DEFAULT_CORRUPT_KEEP


def _unique_corrupt_name(path: Path) -> Path:
    """First free ``name[.N].corrupt`` sibling of ``path``."""
    candidate = path.with_name(path.name + ".corrupt")
    n = 1
    while candidate.exists():
        candidate = path.with_name(f"{path.name}.{n}.corrupt")
        n += 1
    return candidate

def quarantine(path: str | os.PathLike, *, keep: int | None = None) -> Path | None:
    """Move ``path`` aside as evidence; returns the ``.corrupt`` path.

    The destination name is unique (never clobbers earlier evidence) and
    the directory is GC'd to the retention cap afterwards.  Returns
    ``None`` when the move itself fails (nothing to quarantine, or an
    unwritable directory) — quarantining is best-effort by design, the
    caller has already decided not to trust the bytes.
    """
    src = Path(path)
    dest = _unique_corrupt_name(src)
    try:
        os.replace(src, dest)
    except OSError:
        return None
    gc_corrupt(src.parent, keep=keep)
    return dest


def gc_corrupt(directory: str | os.PathLike, *, keep: int | None = None) -> list[Path]:
    """Delete all but the newest ``keep`` ``*.corrupt`` files in ``directory``.

    Returns the deleted paths (empty when under the cap).  Recency is
    judged by mtime, name-tiebroken, so the retained set is deterministic.
    """
    if keep is None:
        keep = corrupt_keep()
    root = Path(directory)
    try:
        victims = [p for p in root.iterdir()
                   if p.name.endswith(".corrupt") and p.is_file()]
    except OSError:
        return []

    def age_key(p: Path):
        try:
            return (p.stat().st_mtime_ns, p.name)
        except OSError:
            return (0, p.name)

    victims.sort(key=age_key, reverse=True)  # newest first
    removed: list[Path] = []
    for p in victims[keep:]:
        try:
            p.unlink()
            removed.append(p)
        except OSError:
            pass
    return removed
