"""Unit tests for the external-traffic accounting."""

import pytest

from repro.core import TrafficStats


class TestTrafficStats:
    def test_initial_state_is_zero(self):
        t = TrafficStats()
        assert t.bytes_read == 0
        assert t.bytes_written == 0
        assert t.updates == 0
        assert t.ops == 0
        assert t.total_bytes == 0

    def test_read_write_accumulate(self):
        t = TrafficStats()
        t.read(100, planes=2)
        t.read(50)
        t.write(30, planes=1)
        assert t.bytes_read == 150
        assert t.bytes_written == 30
        assert t.total_bytes == 180
        assert t.plane_loads == 2
        assert t.plane_stores == 1

    def test_update_counts_ops(self):
        t = TrafficStats()
        t.update(10, 16)
        t.update(5, 16)
        assert t.updates == 15
        assert t.ops == 240

    def test_bytes_per_update(self):
        t = TrafficStats()
        assert t.bytes_per_update() == 0.0
        t.read(64)
        t.write(64)
        t.update(16, 1)
        assert t.bytes_per_update() == 8.0

    def test_kappa_measured(self):
        t = TrafficStats()
        t.read(120)
        t.write(120)
        assert t.kappa_measured(200) == pytest.approx(1.2)

    def test_kappa_measured_rejects_bad_ideal(self):
        t = TrafficStats()
        with pytest.raises(ValueError):
            t.kappa_measured(0)

    def test_merge_and_add(self):
        a = TrafficStats()
        a.read(10)
        a.update(2, 3)
        b = TrafficStats()
        b.write(20)
        b.update(1, 3)
        c = a + b
        assert c.bytes_read == 10
        assert c.bytes_written == 20
        assert c.updates == 3
        assert c.ops == 9
        a.merge(b)
        assert a.bytes_written == 20
        assert a.updates == 3
