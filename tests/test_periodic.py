"""Tests for periodic boundary conditions over blocked executors."""

import numpy as np
import pytest

from repro.core import (
    run_3_5d_periodic,
    run_naive_periodic,
    wrap_pad,
)
from repro.stencils import (
    Field3D,
    SevenPointStencil,
    VariableCoefficientStencil,
    star_stencil,
)


@pytest.fixture(scope="module")
def seven():
    return SevenPointStencil(alpha=0.4, beta=0.1)


class TestWrapPad:
    def test_halo_values_wrap(self):
        f = Field3D.from_array(np.arange(27.0).reshape(3, 3, 3).copy())
        p = wrap_pad(f, 1)
        assert p.shape == (5, 5, 5)
        # the low-z halo plane is the high-z original plane
        assert np.array_equal(p.data[0, 0, 1:-1, 1:-1], f.data[0, -1])
        assert np.array_equal(p.data[0, -1, 1:-1, 1:-1], f.data[0, 0])
        # corners wrap in all axes
        assert p.data[0, 0, 0, 0] == f.data[0, -1, -1, -1]

    def test_zero_halo_is_copy(self):
        f = Field3D.random((3, 3, 3), seed=0)
        p = wrap_pad(f, 0)
        assert np.array_equal(p.data, f.data)
        assert not np.shares_memory(p.data, f.data)

    def test_halo_too_large(self):
        with pytest.raises(ValueError):
            wrap_pad(Field3D.zeros((4, 8, 8)), 4)
        with pytest.raises(ValueError):
            wrap_pad(Field3D.zeros((4, 8, 8)), -1)


class TestPeriodicCorrectness:
    @pytest.mark.parametrize("dim_t", [1, 2, 3])
    def test_35d_matches_naive_periodic(self, seven, dim_t):
        f = Field3D.random((10, 12, 14), seed=1)
        ref = run_naive_periodic(seven, f, 6)
        out = run_3_5d_periodic(seven, f, 6, dim_t, 10, 10, validate=True)
        assert np.array_equal(out.data, ref.data)

    @pytest.mark.parametrize("steps", [1, 4, 5])
    def test_remainder_steps(self, seven, steps):
        f = Field3D.random((8, 10, 10), seed=2)
        ref = run_naive_periodic(seven, f, steps)
        out = run_3_5d_periodic(seven, f, steps, 3, 8, 8)
        assert np.array_equal(out.data, ref.data)

    def test_radius2(self):
        k = star_stencil(2, center=0.3, arm=0.02)
        f = Field3D.random((12, 13, 14), seed=3)
        ref = run_naive_periodic(k, f, 4)
        out = run_3_5d_periodic(k, f, 4, 2, 10, 10, validate=True)
        assert np.array_equal(out.data, ref.data)

    def test_differs_from_fixed_boundary(self, seven):
        """Periodic and Dirichlet runs must genuinely differ at the edges."""
        from repro.core import run_naive

        f = Field3D.random((8, 8, 8), seed=4)
        periodic = run_naive_periodic(seven, f, 3)
        fixed = run_naive(seven, f, 3)
        assert not np.array_equal(periodic.data, fixed.data)
        # but the deep interior agrees for short times (information travels
        # one cell per step)
        assert np.array_equal(periodic.data[:, 4, 4, 4], fixed.data[:, 4, 4, 4])

    def test_translation_equivariance(self, seven):
        """Periodic dynamics commute with cyclic shifts — a strong check."""
        f = Field3D.random((8, 9, 10), seed=5)
        shifted = Field3D(np.roll(f.data, (2, 3, 1), axis=(1, 2, 3)))
        a = run_naive_periodic(seven, shifted, 4)
        b = run_naive_periodic(seven, f, 4)
        np.testing.assert_allclose(
            a.data, np.roll(b.data, (2, 3, 1), axis=(1, 2, 3)), rtol=1e-12
        )

    def test_conservation_with_unit_weight_sum(self):
        """alpha + 6*beta = 1 conserves the total on a torus exactly-ish."""
        k = SevenPointStencil(alpha=1 - 6 * 0.1, beta=0.1)
        f = Field3D.random((8, 8, 8), seed=6)
        out = run_3_5d_periodic(k, f, 10, 2, 8, 8)
        assert out.data.sum(dtype=np.float64) == pytest.approx(
            f.data.sum(dtype=np.float64), rel=1e-12
        )


class TestPeriodicAuxState:
    def test_lbm_periodic(self):
        from repro.lbm import Lattice, make_kernel, total_mass

        rng = np.random.default_rng(7)
        shape = (8, 10, 12)
        lat = Lattice.from_moments(
            1.0 + 0.05 * rng.random(shape),
            0.02 * (rng.random((3,) + shape) - 0.5),
        )
        kernel = make_kernel(lat, omega=1.2)
        ref = run_naive_periodic(kernel, lat.f, 4)
        out = run_3_5d_periodic(kernel, lat.f, 4, 2, 8, 8)
        assert np.array_equal(out.data, ref.data)
        # fully periodic fluid: mass is conserved exactly
        assert total_mass(out) == pytest.approx(total_mass(lat.f), rel=1e-12)

    def test_lbm_flags_shape_checked(self):
        from repro.lbm import LBMKernel

        kernel = LBMKernel(np.zeros((4, 4, 4), dtype=np.uint8))
        with pytest.raises(ValueError):
            kernel.padded_for(1, (5, 5, 5))

    def test_variable_coefficients_periodic(self):
        k = VariableCoefficientStencil.layered((8, 10, 10), [0.2, 1.0, 0.5])
        f = Field3D.random((8, 10, 10), seed=8)
        ref = run_naive_periodic(k, f, 4)
        out = run_3_5d_periodic(k, f, 4, 2, 8, 8, validate=True)
        assert np.array_equal(out.data, ref.data)


class TestNeumannBoundaries:
    """symmetric (zero-gradient) padding mode for reflection-symmetric kernels."""

    def test_blocked_matches_per_step_reference(self, seven):
        from repro.core import run_3_5d_padded, run_naive_padded

        f = Field3D.random((10, 12, 14), seed=20)
        ref = run_naive_padded(seven, f, 5, mode="symmetric")
        out = run_3_5d_padded(seven, f, 5, 2, 10, 10, mode="symmetric", validate=True)
        assert np.array_equal(out.data, ref.data)

    def test_mirror_symmetry_preserved(self, seven):
        """A mirror-symmetric initial field stays bitwise mirror-symmetric."""
        from repro.core import run_naive_padded

        half = np.random.default_rng(21).random((1, 8, 8, 5))
        data = np.concatenate([half, half[:, :, :, ::-1]], axis=3)
        out = run_naive_padded(seven, Field3D(data.copy()), 4, mode="symmetric")
        assert np.array_equal(out.data, out.data[:, :, :, ::-1])

    def test_zero_gradient_keeps_uniform_field(self, seven):
        """With alpha + 6 beta = 1, a uniform field is a Neumann fixed point."""
        from repro.core import run_naive_padded

        k = SevenPointStencil(alpha=1 - 6 * 0.1, beta=0.1)
        f = Field3D(np.full((1, 6, 6, 6), 3.7))
        out = run_naive_padded(k, f, 5, mode="symmetric")
        np.testing.assert_allclose(out.data, 3.7, rtol=1e-14)

    def test_neumann_differs_from_periodic(self, seven):
        from repro.core import run_naive_padded

        f = Field3D.random((8, 8, 8), seed=22)
        a = run_naive_padded(seven, f, 3, mode="wrap")
        b = run_naive_padded(seven, f, 3, mode="symmetric")
        assert not np.array_equal(a.data, b.data)

    def test_aux_state_kernels_rejected(self):
        from repro.core import run_naive_padded
        from repro.lbm import Lattice, make_kernel

        lat = Lattice.uniform((6, 6, 6))
        kernel = make_kernel(lat)
        with pytest.raises(ValueError, match="auxiliary state"):
            run_naive_padded(kernel, lat.f, 2, mode="symmetric")

    def test_invalid_mode(self, seven):
        from repro.core import pad_field

        f = Field3D.random((6, 6, 6), seed=23)
        with pytest.raises(ValueError, match="mode"):
            pad_field(f, 1, mode="edge")
