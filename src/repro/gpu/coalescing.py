"""Global-memory coalescing analysis (paper Section VI-A).

"Global memory (GDDR) accesses on the GPU are optimized for the case that
every thread in a warp loads 4/8 bytes of a contiguous region of memory."
On the GT200 generation a warp's accesses are serviced by 32/64/128-byte
segment transactions; a fully coalesced 32-lane SP load is a single 128-byte
transaction, while a strided or misaligned pattern fans out into many.

This is why the paper sets ``dim_X`` to a multiple of the warp size (32):
every row load of a tile is then segment-aligned and fully coalesced.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "transactions_for_warp",
    "warp_row_transactions",
    "coalescing_efficiency",
]


def transactions_for_warp(addresses, segment: int = 128) -> int:
    """Memory transactions needed to service one warp's byte addresses.

    Models the GT200 coalescer: the set of distinct ``segment``-aligned
    blocks touched by the warp, one transaction each.
    """
    addrs = np.asarray(list(addresses), dtype=np.int64)
    if addrs.size == 0:
        return 0
    if (addrs < 0).any():
        raise ValueError("addresses must be non-negative")
    return len(np.unique(addrs // segment))


def warp_row_transactions(
    base: int,
    n_lanes: int = 32,
    elem_size: int = 4,
    stride: int = 1,
    segment: int = 128,
) -> int:
    """Transactions for a warp reading ``n_lanes`` elements from a row.

    ``stride`` is in elements; contiguous unit-stride aligned access is the
    fully coalesced case (1 transaction for 32 SP lanes).
    """
    addrs = base + np.arange(n_lanes, dtype=np.int64) * stride * elem_size
    return transactions_for_warp(addrs, segment)


def coalescing_efficiency(
    base: int,
    n_lanes: int = 32,
    elem_size: int = 4,
    stride: int = 1,
    segment: int = 128,
) -> float:
    """Useful bytes over transferred bytes for one warp access."""
    n_tx = warp_row_transactions(base, n_lanes, elem_size, stride, segment)
    useful = n_lanes * elem_size
    return useful / (n_tx * segment)
