"""Unit tests for the XY-plane ring buffers (Section V-C buffer management)."""

import numpy as np
import pytest

from repro.core import PlaneRing, RingSet, ring_slots


class TestRingSlots:
    def test_paper_slot_counts(self):
        # Section V-C: 2R+1 planes suffice sequentially; 2R+2 enable
        # concurrent execution of all time instances.
        assert ring_slots(1, concurrent=False) == 3
        assert ring_slots(1, concurrent=True) == 4
        assert ring_slots(2, concurrent=True) == 6


class TestPlaneRing:
    def test_modular_slot_mapping(self):
        ring = PlaneRing(4, 1, 2, 2, np.float64)
        a = ring.slot_for(5)
        b = ring.get(5)
        assert np.shares_memory(a, b)
        # plane 9 maps to the same physical slot (9 % 4 == 5 % 4)
        c = ring.slot_for(9)
        assert np.shares_memory(a, c)

    def test_liveness_enforced(self):
        ring = PlaneRing(3, 1, 2, 2, np.float64)
        ring.slot_for(0)[...] = 1.0
        ring.slot_for(3)  # recycles plane 0's slot
        with pytest.raises(LookupError):
            ring.get(0)

    def test_holds(self):
        ring = PlaneRing(3, 1, 2, 2, np.float64)
        assert not ring.holds(2)
        ring.slot_for(2)
        assert ring.holds(2)

    def test_reset(self):
        ring = PlaneRing(3, 1, 2, 2, np.float64)
        ring.slot_for(1)
        ring.reset()
        assert not ring.holds(1)

    def test_rejects_zero_slots(self):
        with pytest.raises(ValueError):
            PlaneRing(0, 1, 2, 2, np.float64)


class TestRingSet:
    def test_capacity_matches_equation_1(self):
        # E * (2R+2) * dim_T * dim_X * dim_Y
        rs = RingSet(dim_t=3, radius=1, ncomp=1, ny=16, nx=16, dtype=np.float32)
        assert rs.nbytes == 4 * 4 * 3 * 16 * 16

    def test_lbm_element_size(self):
        # LBM SP: E = 80 bytes/cell with the flag; here 19 components of the
        # distributions themselves.
        rs = RingSet(dim_t=3, radius=1, ncomp=19, ny=8, nx=8, dtype=np.float32)
        assert rs.nbytes == 19 * 4 * 4 * 3 * 64

    def test_rings_are_independent(self):
        rs = RingSet(dim_t=2, radius=1, ncomp=1, ny=4, nx=4, dtype=np.float64)
        rs.ring(0).slot_for(7)[...] = 1.0
        with pytest.raises(LookupError):
            rs.ring(1).get(7)

    def test_reset_clears_all(self):
        rs = RingSet(dim_t=2, radius=1, ncomp=1, ny=4, nx=4, dtype=np.float64)
        rs.ring(0).slot_for(3)
        rs.ring(1).slot_for(3)
        rs.reset()
        assert not rs.ring(0).holds(3)
        assert not rs.ring(1).holds(3)

    def test_invalid_dim_t(self):
        with pytest.raises(ValueError):
            RingSet(dim_t=0, radius=1, ncomp=1, ny=4, nx=4, dtype=np.float64)
