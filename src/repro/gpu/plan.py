"""GPU 3.5D blocking plans (paper Sections VI-A and VI-B, GPU parts).

Derives the complete kernel-launch configuration the paper describes for the
GTX 285:

* **7-point stencil, SP** — temporal blocking pays (γ = 0.5 > Γ_eff = 0.43);
  ``dim_T = 2``; the 64 KB register file bounds ``dim_X ≤ 45``, and warp
  alignment picks ``dim_X = 32``; κ ≈ 1.31.  Threads keep their z-columns in
  registers and exchange X/Y neighbors through shared memory; each thread
  covers several Y rows to amortize per-thread overheads (Section VII-C).
* **7-point stencil, DP** — γ = 1.0 < Γ = 1.7: already compute bound, no
  temporal blocking (``dim_T = 1``).
* **LBM, SP** — needs ``dim_T ≥ 7`` but 16 KB of shared memory bounds
  ``dim_X ≤ 2`` (≤ 3 even at dim_T = 2), below the ``2·R·dim_T`` ghost
  minimum: infeasible, exactly the paper's conclusion.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.overestimation import kappa_35d
from ..core.params import blocking_dim, min_dim_t
from ..lbm.lattice import element_size_with_flag
from ..machine.spec import GTX_285, MachineSpec
from .simt import GTX285_SM, Occupancy, SMConfig, occupancy

__all__ = ["Gpu35DPlan", "plan_7pt_gpu", "plan_lbm_gpu"]


@dataclass(frozen=True)
class Gpu35DPlan:
    """A complete GPU 3.5D launch configuration with feasibility verdict."""

    kernel: str
    precision: str
    dim_t: int
    dim_x: int
    dim_y: int
    kappa: float
    feasible: bool
    reason: str
    threads_per_block: int
    rows_per_thread: int
    regs_per_thread: int
    shared_bytes_per_block: int
    occupancy: Occupancy | None

    @property
    def uses_temporal_blocking(self) -> bool:
        return self.feasible and self.dim_t > 1


def plan_7pt_gpu(
    precision: str = "sp",
    machine: MachineSpec = GTX_285,
    sm: SMConfig = GTX285_SM,
    rows_per_thread: int = 4,
) -> Gpu35DPlan:
    """The paper's GTX 285 7-point-stencil configuration."""
    esize = 4 if precision == "sp" else 8
    gamma = 2 * esize / 16  # 0.5 SP / 1.0 DP (Section IV-A1)
    big_gamma = machine.bytes_per_op(precision, derated=True)
    if gamma <= big_gamma:
        # DP case: compute bound as-is; spatial blocking only (Section VII-A)
        dim_t = 1
        reason = (
            f"gamma={gamma:.2f} <= Gamma={big_gamma:.2f}: compute bound without "
            "temporal blocking"
        )
    else:
        dim_t = min_dim_t(gamma, big_gamma)
        reason = ""
    # the register file is the blocking store (Section VI-A / Nvidia 3DFD)
    bound = blocking_dim(machine.blocking_capacity, esize, 1, dim_t, align=1)
    dim_x = blocking_dim(
        machine.blocking_capacity, esize, 1, dim_t, align=sm.warp_size
    )
    if dim_x < 2 * dim_t + 1:
        dim_x = min(bound, sm.warp_size)
    dim_y = dim_x
    feasible = dim_x >= 2 * dim_t + 1
    kappa = kappa_35d(1, dim_t, dim_x) if feasible else math.inf
    threads_per_block = dim_x * max(1, dim_y // rows_per_thread)
    # 4 grid elements per time instance per thread (Section VI-A), plus scratch
    regs_per_thread = 4 * dim_t * (esize // 4) + 8
    shared_bytes = dim_x * (dim_y + 2) * esize  # one padded exchange plane
    occ = occupancy(threads_per_block, regs_per_thread, shared_bytes, sm)
    return Gpu35DPlan(
        kernel="7pt",
        precision=precision,
        dim_t=dim_t,
        dim_x=dim_x,
        dim_y=dim_y,
        kappa=kappa,
        feasible=feasible,
        reason=reason,
        threads_per_block=threads_per_block,
        rows_per_thread=rows_per_thread,
        regs_per_thread=regs_per_thread,
        shared_bytes_per_block=shared_bytes,
        occupancy=occ,
    )


def plan_lbm_gpu(
    precision: str = "sp",
    machine: MachineSpec = GTX_285,
    sm: SMConfig = GTX285_SM,
) -> Gpu35DPlan:
    """The paper's GTX 285 LBM feasibility analysis (Section VI-B).

    LBM must double-buffer its 19 distributions in the 16 KB shared memory,
    so the effective per-cell footprint is twice the 80/160-byte element.
    """
    dtype = "float32" if precision == "sp" else "float64"
    esize = 2 * element_size_with_flag(dtype)  # src + dst buffers
    gamma = 0.88 if precision == "sp" else 1.75
    # the compute-bound test uses the stencil-derated Γ (Section IV-C: LBM DP
    # "is compute-bound on GPU"); the dim_T requirement below uses the raw
    # peak ratio, reproducing the paper's "dim_T >= 6.1" for SP.
    if gamma <= machine.bytes_per_op(precision, derated=True):
        big_gamma = machine.bytes_per_op(precision, derated=True)
        return Gpu35DPlan(
            kernel="lbm",
            precision=precision,
            dim_t=1,
            dim_x=0,
            dim_y=0,
            kappa=1.0,
            feasible=False,
            reason=(
                f"gamma={gamma:.2f} <= Gamma={big_gamma:.2f}: LBM {precision.upper()} "
                "is already compute bound on this GPU; blocking cannot help"
            ),
            threads_per_block=0,
            rows_per_thread=1,
            regs_per_thread=0,
            shared_bytes_per_block=0,
            occupancy=None,
        )
    dim_t = min_dim_t(gamma, machine.bytes_per_op(precision, derated=False))
    shared = sm.shared_mem_bytes
    for dt in (dim_t, 2):  # paper also checks the minimum useful dim_T = 2
        d = blocking_dim(shared, esize, 1, dt, align=1)
        if d >= 2 * dt + 1:
            kappa = kappa_35d(1, dt, d)
            return Gpu35DPlan(
                kernel="lbm",
                precision=precision,
                dim_t=dt,
                dim_x=d,
                dim_y=d,
                kappa=kappa,
                feasible=True,
                reason="",
                threads_per_block=d * d,
                rows_per_thread=1,
                regs_per_thread=24,
                shared_bytes_per_block=esize * d * d * 4 * dt,
                occupancy=occupancy(d * d, 24, esize * d * d, sm),
            )
    d_best = blocking_dim(shared, esize, 1, 2, align=1)
    return Gpu35DPlan(
        kernel="lbm",
        precision=precision,
        dim_t=dim_t,
        dim_x=d_best,
        dim_y=d_best,
        kappa=math.inf,
        feasible=False,
        reason=(
            f"needs dim_T >= {dim_t} but {shared // 1024} KB shared memory bounds "
            f"dim_X <= {d_best} even at dim_T=2 — below the 2*R*dim_T ghost minimum "
            "(Section VI-B: no 3.5D blocking for LBM on this GPU)"
        ),
        threads_per_block=0,
        rows_per_thread=1,
        regs_per_thread=0,
        shared_bytes_per_block=0,
        occupancy=None,
    )
