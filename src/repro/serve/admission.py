"""Admission control: token buckets, per-tenant quotas, bounded queues.

A long-lived daemon dies one of two deaths under overload: unbounded queue
growth (memory, then latency, then the OOM killer) or an accept loop that
blocks (a hang indistinguishable from a crash).  Admission control rules
out both by construction — every submit is answered *immediately* with
either an acceptance or a rejection that names its reason:

* a global :class:`TokenBucket` caps the sustained accept rate (burst
  tolerant, so a tenant can submit a batch without tripping it);
* per-tenant inflight quotas stop one tenant from monopolizing the queue
  — the cross-job interference the paper's Eq. 2 never had to consider
  becomes a managed resource;
* the :class:`BoundedPriorityQueue` has a hard capacity; when it is full
  a new job either displaces ("sheds") the lowest-priority queued job —
  strictly-better priority only — or is itself rejected.

Everything takes an injectable ``clock`` so tests never sleep.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from .protocol import JobRecord

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "BoundedPriorityQueue",
    "TokenBucket",
]


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/s refill, ``burst`` capacity."""

    def __init__(self, rate: float, burst: float, clock=time.monotonic):
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be positive")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._last = clock()
        self._lock = threading.Lock()

    def _refill(self) -> None:
        now = self._clock()
        self._tokens = min(
            self.burst, self._tokens + (now - self._last) * self.rate
        )
        self._last = now

    def try_take(self, n: float = 1.0) -> bool:
        """Consume ``n`` tokens if available; never blocks."""
        with self._lock:
            self._refill()
            if self._tokens >= n:
                self._tokens -= n
                return True
            return False

    def available(self) -> float:
        with self._lock:
            self._refill()
            return self._tokens


class BoundedPriorityQueue:
    """Thread-safe priority queue with a hard capacity.

    Lower ``priority`` numbers pop first; ties pop FIFO.  ``push`` never
    blocks and never grows the queue past ``capacity`` — the caller
    (admission control) decides between rejecting the newcomer and
    :meth:`shed_lowest` before pushing.  ``pop`` blocks with a timeout so
    worker loops stay responsive to drain/stop flags.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._items: list[tuple[int, int, object]] = []  # (prio, seq, item)
        self._seq = 0
        self._cond = threading.Condition()

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)

    def full(self) -> bool:
        with self._cond:
            return len(self._items) >= self.capacity

    def push(self, item, priority: int, force: bool = False) -> None:
        """Enqueue ``item``.  The capacity check guards *admission*; requeues
        of already-accepted work (preemption, crash recovery, a shed victim
        restored after an accept-drop) pass ``force=True`` — they were
        admitted under the cap once and must never be lost to it, and the
        transient overshoot is bounded by the worker count."""
        with self._cond:
            if not force and len(self._items) >= self.capacity:
                raise OverflowError(
                    f"queue full ({self.capacity} jobs); admission control "
                    "must shed or reject before pushing"
                )
            self._seq += 1
            entry = (priority, self._seq, item)
            idx = len(self._items)
            for i, other in enumerate(self._items):
                if entry[:2] < other[:2]:
                    idx = i
                    break
            self._items.insert(idx, entry)
            self._cond.notify()

    def pop(self, timeout: float | None = None):
        """Highest-priority item, or None when the wait times out."""
        with self._cond:
            if not self._items:
                self._cond.wait(timeout)
            if not self._items:
                return None
            return self._items.pop(0)[2]

    def shed_lowest(self):
        """Remove and return the lowest-priority item (None when empty)."""
        with self._cond:
            if not self._items:
                return None
            return self._items.pop()[2]

    def worst_priority(self) -> int | None:
        with self._cond:
            return self._items[-1][0] if self._items else None

    def remove(self, predicate) -> list:
        """Remove (and return) every queued item matching ``predicate``."""
        with self._cond:
            removed = [e[2] for e in self._items if predicate(e[2])]
            self._items = [e for e in self._items if not predicate(e[2])]
            return removed

    def snapshot(self) -> list:
        with self._cond:
            return [e[2] for e in self._items]


@dataclass
class AdmissionDecision:
    """The immediate answer to a submit: accept, and whom we shed for it."""

    ok: bool
    reason: str = ""
    #: queue item (a job id) displaced to make room (terminal status ``shed``)
    shed: object | None = None
    details: dict = field(default_factory=dict)


class AdmissionController:
    """Decides accept/reject/shed for one submit; owns no queue state.

    The controller is pure policy: the server core passes the current
    queue and per-tenant inflight counts, and gets back an
    :class:`AdmissionDecision` whose rejection reasons are stable strings
    (tested, surfaced verbatim to clients and the journal).
    """

    def __init__(
        self,
        *,
        rate: float = 50.0,
        burst: float = 100.0,
        tenant_quota: int = 8,
        clock=time.monotonic,
    ):
        if tenant_quota < 1:
            raise ValueError("tenant_quota must be >= 1")
        self.bucket = TokenBucket(rate, burst, clock=clock)
        self.tenant_quota = tenant_quota

    def admit(
        self,
        record: JobRecord,
        queue: BoundedPriorityQueue,
        tenant_inflight: int,
        draining: bool = False,
    ) -> AdmissionDecision:
        spec = record.spec
        if draining:
            return AdmissionDecision(
                ok=False, reason="draining: the daemon is shutting down"
            )
        bad = spec.validate()
        if bad is not None:
            return AdmissionDecision(ok=False, reason=f"invalid job: {bad}")
        if tenant_inflight >= self.tenant_quota:
            return AdmissionDecision(
                ok=False,
                reason=(
                    f"tenant quota exceeded: {spec.tenant!r} already has "
                    f"{tenant_inflight} job(s) inflight "
                    f"(quota {self.tenant_quota})"
                ),
            )
        # the bucket is drawn last so rejected submits never burn rate budget
        if not self.bucket.try_take():
            return AdmissionDecision(
                ok=False,
                reason=(
                    f"rate limit exceeded ({self.bucket.rate:g} jobs/s "
                    f"sustained, burst {self.bucket.burst:g})"
                ),
            )
        if queue.full():
            worst = queue.worst_priority()
            if worst is not None and spec.priority < worst:
                victim = queue.shed_lowest()
                return AdmissionDecision(
                    ok=True,
                    reason="accepted by displacing lower-priority work",
                    shed=victim,
                )
            return AdmissionDecision(
                ok=False,
                reason=(
                    f"queue full ({queue.capacity} jobs) and no queued job "
                    f"has lower priority than {spec.priority}"
                ),
            )
        return AdmissionDecision(ok=True)
