"""SIMD instruction-count model (Section VII-A's SSE scaling factors).

The paper reports 3.2X SP and 1.65X DP scaling from 4-/2-wide SSE — below
the ideal 4X/2X.  The gap has a mechanical explanation the model captures:
the ``x ± 1`` neighbor loads of a stencil row are unavoidably unaligned
("Depending on the alignment of the memory, we did require unaligned
load/store instructions", Section VI-A), and on Nehalem an unaligned vector
load that straddles a cache line costs several times an aligned one.

Counting instruction-equivalents per vector iteration of the 7-point
stencil row update:

* scalar: 16 ops per update (Section IV-A1);
* W-wide SIMD: 8 arithmetic + 5 aligned loads (center, y±1, z±1) +
  2 unaligned loads (x±1) + 1 store per W updates.

With an unaligned-load cost of ~3 instruction-equivalents, the model lands
on both reported scalings at once — one microarchitectural constant instead
of two calibrated ones.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SimdCost", "simd_speedup", "sse_scaling_7pt"]

#: effective cost of a (cache-line-straddling) unaligned vector load on a
#: Nehalem-class core, in aligned-instruction equivalents
UNALIGNED_LOAD_COST = 3.0


@dataclass(frozen=True)
class SimdCost:
    """Instruction-equivalents of one vectorized iteration."""

    width: int
    arithmetic: int
    aligned_loads: int
    unaligned_loads: int
    stores: int
    unaligned_cost: float = UNALIGNED_LOAD_COST

    @property
    def instruction_equivalents(self) -> float:
        return (
            self.arithmetic
            + self.aligned_loads
            + self.unaligned_loads * self.unaligned_cost
            + self.stores
        )


def simd_speedup(scalar_ops_per_update: float, cost: SimdCost) -> float:
    """Speedup of the vector loop over the scalar loop."""
    scalar_per_iter = scalar_ops_per_update * cost.width
    return scalar_per_iter / cost.instruction_equivalents


def sse_scaling_7pt(precision: str, unaligned_cost: float = UNALIGNED_LOAD_COST) -> float:
    """The 7-point stencil's SSE scaling on a Nehalem-class core.

    SP (width 4) evaluates to ~3.2X and DP (width 2) to ~1.7X with the
    default unaligned cost — the Section VII-A numbers.
    """
    width = 4 if precision == "sp" else 2
    cost = SimdCost(
        width=width,
        arithmetic=8,  # 2 mult + 6 add, vectorized
        aligned_loads=5,  # center, y-1, y+1, z-1, z+1
        unaligned_loads=2,  # x-1, x+1
        stores=1,
        unaligned_cost=unaligned_cost,
    )
    return simd_speedup(16, cost)
