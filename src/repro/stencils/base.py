"""Kernel protocol shared by all blocking executors.

A *plane kernel* computes one output XY sub-plane from the ``2R+1`` source
sub-planes it depends on.  Expressing kernels at plane granularity is what
lets a single set of executors implement every scheme in the paper — naive
sweeps, 3D/2.5D spatial blocking and 3.5D space-time blocking — for both PDE
stencils (Section IV-A) and D3Q19 LBM (Section IV-B).

Coordinate conventions
----------------------
Planes are arrays of shape ``(ncomp, ny, nx)``.  ``compute_plane`` receives
the target region as half-open ranges ``yr=(y0, y1)``, ``xr=(x0, x1)`` in
*plane-local* coordinates, plus the global offset ``(gz, gy0, gx0)`` of the
plane so kernels with auxiliary per-cell state (the LBM obstacle flags) can
address it.  Executors guarantee the full stencil footprint
``[y0-R, y1+R) x [x0-R, x1+R)`` lies inside the passed planes.
"""

from __future__ import annotations

import abc
import threading
from collections.abc import Sequence

import numpy as np

__all__ = ["PlaneKernel", "ScratchArena", "validate_footprint"]


class ScratchArena:
    """Preallocated, reusable scratch buffers keyed by ``(tag, shape, dtype)``.

    The allocation-free kernel paths (:meth:`PlaneKernel.compute_plane_inplace`)
    draw every temporary they need from an arena instead of allocating fresh
    NumPy arrays.  Buffers are cached per *thread*: the row-partitioned 3.5D
    executor calls kernels from several workers concurrently, often with
    identical region shapes, so sharing buffers across threads would race.

    The arena only ever grows — one buffer per distinct (tag, shape, dtype)
    per thread — which is bounded in practice by the handful of region shapes
    a blocking schedule produces.
    """

    def __init__(self) -> None:
        self._tls = threading.local()
        self._lock = threading.Lock()
        #: per-thread buffer dicts, kept for aggregate accounting
        self._pools: list[dict] = []
        #: number of buffers ever allocated (across all threads)
        self.allocations = 0
        #: number of ``get`` calls served from an existing buffer
        self.hits = 0

    def _pool(self) -> dict:
        pool = getattr(self._tls, "pool", None)
        if pool is None:
            pool = self._tls.pool = {}
            with self._lock:
                self._pools.append(pool)
        return pool

    def get(self, tag: str, shape: tuple[int, ...], dtype) -> np.ndarray:
        """The scratch buffer for ``tag`` at this shape/dtype (contents stale)."""
        pool = self._pool()
        if not isinstance(dtype, np.dtype):
            dtype = np.dtype(dtype)
        key = (tag, tuple(shape), dtype)
        buf = pool.get(key)
        if buf is None:
            # Zero-filled so the flat kernel paths' seam lanes start finite
            # (see PlaneRing); np.empty would hand back arbitrary bits.
            buf = np.zeros(key[1], dtype=dtype)
            pool[key] = buf
            self.allocations += 1
        else:
            self.hits += 1
        return buf

    @property
    def nbytes(self) -> int:
        """Total bytes currently held across all threads' pools."""
        with self._lock:
            return sum(b.nbytes for pool in self._pools for b in pool.values())

    def clear(self) -> None:
        """Drop every cached buffer (they are re-created on demand)."""
        with self._lock:
            for pool in self._pools:
                pool.clear()


class PlaneKernel(abc.ABC):
    """Abstract base class for plane-granularity stencil kernels."""

    #: stencil radius R (Manhattan radius for k-point stencils,
    #: L-infinity for LBM) — both are 1 for the paper's kernels.
    radius: int = 1
    #: values stored per grid point (1 for PDE stencils, 19 for D3Q19).
    ncomp: int = 1
    #: operations per grid-point update, per the Section IV accounting.
    ops_per_update: int = 0

    @abc.abstractmethod
    def compute_plane(
        self,
        out: np.ndarray,
        src: Sequence[np.ndarray],
        yr: tuple[int, int],
        xr: tuple[int, int],
        gz: int = 0,
        gy0: int = 0,
        gx0: int = 0,
    ) -> None:
        """Compute ``out[:, y0:y1, x0:x1]`` from source planes.

        Parameters
        ----------
        out:
            Destination plane ``(ncomp, ny, nx)``; only the target region is
            written.
        src:
            The ``2R+1`` source planes ordered ``z-R .. z+R``, each with the
            same ``(ncomp, ny, nx)`` extent as ``out``.
        yr, xr:
            Half-open target region in plane-local coordinates.
        gz, gy0, gx0:
            Global coordinates of ``out``'s plane index and of local
            ``(y=0, x=0)``; used for auxiliary state lookup.
        """

    def compute_plane_inplace(
        self,
        out: np.ndarray,
        src: Sequence[np.ndarray],
        yr: tuple[int, int],
        xr: tuple[int, int],
        gz: int = 0,
        gy0: int = 0,
        gx0: int = 0,
        *,
        arena: "ScratchArena",
        seam_writable: bool = False,
    ) -> None:
        """Allocation-free variant of :meth:`compute_plane`.

        Must produce results *bit-identical* to :meth:`compute_plane` — same
        operand pairing, same reduction order — while drawing every temporary
        from ``arena`` (``np.add/np.multiply(..., out=...)`` style).  The base
        implementation falls back to the allocating path, so kernels without
        a hand-written in-place path stay correct under the ``numpy-inplace``
        backend, just not allocation-free.

        ``seam_writable=True`` is a caller promise that positions of ``out``
        in rows ``[y0, y1)`` but *outside* columns ``[x0, x1)`` are dead: the
        caller either overwrites them after this call or never reads them
        (true for the blocking executors' intermediate ring planes, whose
        boundary strips are refreshed after every compute step).  The flat
        contiguous fast paths then accumulate straight into ``out``'s
        underlying buffer — clobbering those seam positions with junk —
        instead of going through a scratch buffer plus a strided copy-out.
        The promise also implies ``out`` aliases none of the ``src`` planes.
        Target-region values are bit-identical either way.
        """
        self.compute_plane(out, src, yr, xr, gz, gy0, gx0)

    def element_size(self, dtype) -> int:
        """Bytes per grid point (the paper's E) for a given precision."""
        return self.ncomp * np.dtype(dtype).itemsize

    def padded_for(
        self, halo: int, shape: tuple[int, int, int]
    ) -> "PlaneKernel":
        """The kernel to use on a periodically ``halo``-padded grid.

        Pure stencils are translation invariant, so the default returns
        ``self``.  Kernels with auxiliary per-cell state (LBM flags)
        override this to wrap that state alongside the grid.
        """
        return self

    def restricted_to(self, zlo: int, zhi: int) -> "PlaneKernel":
        """The kernel to use on the Z sub-range ``[zlo, zhi)`` of the grid.

        Used by the distributed runner, whose ranks address planes in
        slab-local coordinates.  Translation-invariant kernels return
        ``self``; kernels with per-cell state slice it.
        """
        return self

    def bytes_per_update_ideal(self, dtype) -> int:
        """Compulsory bytes per update after perfect blocking: 1 read + 1 write."""
        return 2 * self.element_size(dtype)

    def gamma(self, dtype) -> float:
        """Kernel bandwidth-to-compute ratio (bytes/op) after spatial blocking."""
        return self.bytes_per_update_ideal(dtype) / self.ops_per_update


def validate_footprint(
    shape: tuple[int, int],
    yr: tuple[int, int],
    xr: tuple[int, int],
    radius: int,
) -> None:
    """Assert the stencil footprint of the target region fits in the plane."""
    ny, nx = shape
    y0, y1 = yr
    x0, x1 = xr
    if y0 - radius < 0 or y1 + radius > ny or x0 - radius < 0 or x1 + radius > nx:
        raise ValueError(
            f"stencil footprint out of bounds: region y={yr} x={xr}, "
            f"radius {radius}, plane {shape}"
        )
    if y0 >= y1 or x0 >= x1:
        raise ValueError(f"empty target region y={yr} x={xr}")
