"""Figure 4(c): 7-point stencil on the GTX 285.

Model series checked against the paper's anchors (naive 3300, spatial 9234
— a 2.8X gain from explicit on-chip staging since the GPU has no caches —
3.5D 17100; DP compute bound at 4600 with spatial blocking alone), plus a
functional run of the GPU-plan executor with its SIMT accounting.
"""

import numpy as np
import pytest

from repro.core import run_naive
from repro.gpu import GpuExecutor35D, plan_7pt_gpu
from repro.perf import format_table, predict_7pt_gpu
from repro.stencils import Field3D, SevenPointStencil

from .conftest import banner, record

SCHEMES = ("none", "spatial", "35d")


def model_series():
    return {
        (p, s): predict_7pt_gpu(s, p) for p in ("sp", "dp") for s in SCHEMES
    }


def test_fig4c_model_series(benchmark):
    series = benchmark(model_series)
    rows = [
        (p.upper(), *(f"{series[(p, s)].mupdates_per_s:.0f}" for s in SCHEMES))
        for p in ("sp", "dp")
    ]
    print(banner("Figure 4(c): 7pt GPU MU/s (model)"))
    print(format_table(["precision", "no blocking", "spatial", "3.5D"], rows))

    assert series[("sp", "none")].mupdates_per_s == pytest.approx(3300, rel=0.1)
    assert series[("sp", "spatial")].mupdates_per_s == pytest.approx(9234, rel=0.1)
    assert series[("sp", "35d")].mupdates_per_s == pytest.approx(17100, rel=0.1)
    # "Spatial blocking gives a large benefit of 2.8X over no-blocking"
    assert (
        series[("sp", "spatial")].mupdates_per_s / series[("sp", "none")].mupdates_per_s
    ) == pytest.approx(2.8, abs=0.3)
    # "This results in a performance gain of 1.9X-2X" (3.5D over spatial)
    gain = series[("sp", "35d")].mupdates_per_s / series[("sp", "spatial")].mupdates_per_s
    assert 1.7 <= gain <= 2.1
    # DP: spatial blocking alone reaches the compute bound; 4600 MU/s
    assert series[("dp", "spatial")].mupdates_per_s == pytest.approx(4600, rel=0.05)
    assert series[("dp", "35d")].mupdates_per_s == pytest.approx(
        series[("dp", "spatial")].mupdates_per_s
    )
    record(benchmark, sp_35d=series[("sp", "35d")].mupdates_per_s)


def test_fig4c_functional_gpu_executor(benchmark):
    """The GPU plan executed functionally: bit-exact, warp-aligned tiles."""
    kernel = SevenPointStencil()
    field = Field3D.random((16, 64, 64), dtype=np.float32, seed=0)
    plan = plan_7pt_gpu("sp")
    ex = GpuExecutor35D(kernel, plan)

    report = benchmark(ex.run, field, 4)
    ref = run_naive(kernel, field, 4)
    assert np.array_equal(report.result.data, ref.data)
    print(banner("GPU 3.5D execution accounting"))
    print(f"plan: dim_T={plan.dim_t}, dim_X={plan.dim_x} (warp-aligned), "
          f"kappa={plan.kappa:.2f}, occupancy={plan.occupancy.occupancy:.2f}")
    print(f"global transactions : {report.global_transactions}")
    print(f"coalescing efficiency: {report.coalescing_efficiency:.2f}")
    print(f"shared stores/loads : {report.shared_stores}/{report.shared_loads}")
    print(f"syncthreads         : {report.syncthreads}")
    print(f"divergent warps     : {report.divergent_warps}")
    assert report.coalescing_efficiency == pytest.approx(1.0)
    record(benchmark, transactions=report.global_transactions)
