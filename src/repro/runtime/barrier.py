"""Software barriers (paper Sections III-B and VII-A), with watchdogs.

The paper implements a centralized sense-reversing barrier ("we implement
our own barrier that is 50X faster than pthreads barrier", citing
Mellor-Crummey & Scott) and places one barrier per z-iteration of the 3.5D
schedule.  We provide the same algorithm — a shared counter plus a
sense flag each thread compares against its local sense — alongside a
wrapper over :class:`threading.Barrier` (the "pthreads barrier" analog) so
the benchmark harness can compare the two.

In CPython the GIL changes the constants (a spin barrier burns the very
lock the other threads need), so the spin loop yields; the *structure* of
the algorithm is what this reproduces, and the bench reports the measured
ratio honestly.

Both barriers carry the resilience contract of ``docs/robustness.md``:

* ``wait(timeout=...)`` bounds the spin — a peer that never arrives turns
  a silent deadlock into a :class:`BarrierTimeoutError` (which *poisons*
  the barrier, so every other waiter is released with
  :class:`BarrierBrokenError` instead of spinning forever);
* ``abort()`` poisons the barrier explicitly — the move a worker makes
  from an exception handler mid z-iteration (see :meth:`guard`), so one
  crashed thread releases its peers instead of hanging them;
* ``reset()`` clears the poison for reuse by a fresh cohort.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from ..resilience.faultinject import ResilienceError

__all__ = [
    "BarrierBrokenError",
    "BarrierTimeoutError",
    "PthreadsBarrier",
    "SenseReversingBarrier",
]


class BarrierBrokenError(ResilienceError):
    """The barrier was poisoned (a peer aborted or timed out)."""


class BarrierTimeoutError(BarrierBrokenError):
    """This waiter's own timeout expired; the barrier is now poisoned."""


class _GuardMixin:
    """Shared abort-on-exception helper for both barrier flavors."""

    @contextmanager
    def guard(self):
        """Poison the barrier when the block raises — the idiom for worker
        loops: ``with barrier.guard(): compute(); barrier.wait(timeout=t)``.

        Re-raises the original exception; peers blocked in ``wait`` are
        released with :class:`BarrierBrokenError`.
        """
        try:
            yield self
        except BaseException:
            self.abort()
            raise


class SenseReversingBarrier(_GuardMixin):
    """Centralized sense-reversing barrier (Mellor-Crummey & Scott, 1991).

    The last thread to arrive flips the shared sense; earlier arrivals spin
    (with a yield) until they observe the flip, the poison flag, or their
    timeout.
    """

    def __init__(self, n_threads: int) -> None:
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        self.n_threads = n_threads
        self._count = n_threads
        self._sense = False
        self._broken = False
        self._lock = threading.Lock()
        self._local = threading.local()

    @property
    def broken(self) -> bool:
        """True while the barrier is poisoned (until :meth:`reset`)."""
        return self._broken

    def wait(self, timeout: float | None = None) -> None:
        """Block until all ``n_threads`` arrive.

        Raises :class:`BarrierBrokenError` if the barrier is (or becomes)
        poisoned, and :class:`BarrierTimeoutError` — poisoning the barrier
        for everyone else — when ``timeout`` seconds pass first.
        """
        local_sense = not getattr(self._local, "sense", False)
        self._local.sense = local_sense
        with self._lock:
            if self._broken:
                raise BarrierBrokenError("barrier is poisoned")
            self._count -= 1
            last = self._count == 0
            if last:
                self._count = self.n_threads
                self._sense = local_sense
        if last:
            return
        # spin until the last arrival flips the sense; yield to keep the
        # GIL available for the threads still working
        deadline = None if timeout is None else time.monotonic() + timeout
        while self._sense != local_sense:
            if self._broken:
                raise BarrierBrokenError("barrier poisoned while waiting")
            if deadline is not None and time.monotonic() >= deadline:
                self.abort()
                raise BarrierTimeoutError(
                    f"barrier wait exceeded {timeout}s "
                    f"({self.n_threads - self._count}/{self.n_threads} arrived); "
                    "barrier poisoned"
                )
            time.sleep(0)

    def abort(self) -> None:
        """Poison the barrier: every current and future waiter raises."""
        with self._lock:
            self._broken = True

    def reset(self) -> None:
        with self._lock:
            self._count = self.n_threads
            self._sense = False
            self._broken = False


class PthreadsBarrier(_GuardMixin):
    """The heavyweight reference barrier (condition-variable based)."""

    def __init__(self, n_threads: int) -> None:
        self._barrier = threading.Barrier(n_threads)
        self.n_threads = n_threads

    @property
    def broken(self) -> bool:
        return self._barrier.broken

    def wait(self, timeout: float | None = None) -> None:
        start = time.monotonic()
        try:
            self._barrier.wait(timeout)
        except threading.BrokenBarrierError:
            # threading.Barrier aborts itself on timeout, so a timed-out
            # waiter and its released peers both land here; only the waiter
            # whose own clock ran out reports the timeout flavor
            if timeout is not None and time.monotonic() - start >= timeout:
                raise BarrierTimeoutError(
                    f"barrier wait exceeded {timeout}s; barrier poisoned"
                ) from None
            raise BarrierBrokenError("barrier is poisoned") from None

    def abort(self) -> None:
        self._barrier.abort()

    def reset(self) -> None:
        self._barrier.reset()
