"""Tests for the resilient execution layer (repro.resilience + hooks).

Every recovery path is exercised through its named fault site, so these
tests run identically on a healthy machine: fault injection is the test
double for flaky JITs, dying threads, lossy links and crashed writers.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core import Blocking35D, run_naive
from repro.resilience import (
    CHECKPOINT_SCHEMA_VERSION,
    FALLBACK_ORDER,
    CheckpointError,
    CheckpointStore,
    DegradedExecutionWarning,
    FallbackExhaustedError,
    FaultSpec,
    GuardedSweep,
    HealthCheckError,
    HealthWarning,
    InjectedFault,
    ResilienceError,
    RunReport,
    SweepRetriesExhaustedError,
    bind_with_fallback,
    fallback_chain,
    grid_is_finite,
)
from repro.resilience.faultinject import FAULTS, FaultInjector
from repro.runtime import (
    BarrierBrokenError,
    BarrierTimeoutError,
    PthreadsBarrier,
    SenseReversingBarrier,
    WorkerPool,
    WorkerTimeoutError,
)

from .conftest import assert_fields_equal


@pytest.fixture(autouse=True)
def _disarm_faults():
    """No test may leak armed faults into the rest of the suite."""
    yield
    FAULTS.disarm()


# ======================================================================
# fault specs and the injector
# ======================================================================
class TestFaultSpec:
    def test_parse_full_syntax(self):
        spec = FaultSpec.parse("backend.bind=fused-numba:3@2")
        assert spec.site == "backend.bind"
        assert spec.arg == "fused-numba"
        assert spec.times == 3
        assert spec.after == 2

    def test_parse_defaults(self):
        spec = FaultSpec.parse("grid.nan")
        assert (spec.arg, spec.times, spec.after) == (None, 1, 0)

    def test_parse_unlimited(self):
        assert FaultSpec.parse("comm.drop:*").times == -1

    def test_roundtrip_str(self):
        for text in ("grid.nan", "comm.drop=2:*", "backend.compute=x:4@1"):
            assert str(FaultSpec.parse(text)) == text

    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec.parse("no.such.site")

    def test_bad_budget_rejected(self):
        with pytest.raises(ValueError):
            FaultSpec(site="grid.nan", times=0)


class TestFaultInjector:
    def test_disarmed_is_silent(self):
        inj = FaultInjector()
        assert not inj.should("grid.nan")
        inj.fire("grid.nan")  # no-op

    def test_budget_is_consumed(self):
        inj = FaultInjector()
        inj.arm("grid.nan:2")
        assert inj.should("grid.nan")
        assert inj.should("grid.nan")
        assert not inj.should("grid.nan")
        assert inj.fired == [("grid.nan", None), ("grid.nan", None)]

    def test_after_skips_probes(self):
        inj = FaultInjector()
        inj.arm("comm.drop@2")
        assert [inj.should("comm.drop") for _ in range(4)] == [
            False, False, True, False,
        ]

    def test_arg_filters_detail(self):
        inj = FaultInjector()
        inj.arm("backend.bind=fused-numpy")
        assert not inj.should("backend.bind", detail="numpy-inplace")
        assert inj.should("backend.bind", detail="fused-numpy")

    def test_fire_raises_typed_fault(self):
        inj = FaultInjector()
        inj.arm("backend.compute=abc")
        with pytest.raises(InjectedFault) as err:
            inj.fire("backend.compute", detail="abc")
        assert err.value.site == "backend.compute"
        assert isinstance(err.value, ResilienceError)

    def test_injected_context_restores(self):
        inj = FaultInjector()
        with inj.injected("grid.nan:*"):
            assert inj.armed("grid.nan")
        assert not inj.armed()

    def test_env_loading(self):
        inj = FaultInjector()
        n = inj.load_env({"REPRO_FAULTS": "grid.nan, comm.drop:2"})
        assert n == 2
        assert inj.armed("grid.nan") and inj.armed("comm.drop")


# ======================================================================
# backend fallback chain
# ======================================================================
class TestFallbackChain:
    def test_order(self):
        assert fallback_chain("codegen") == list(FALLBACK_ORDER)
        assert fallback_chain("fused-numba") == [
            "fused-numba", "fused-numpy", "numpy-inplace", "numpy",
        ]
        assert fallback_chain("fused-numpy") == [
            "fused-numpy", "numpy-inplace", "numpy",
        ]
        assert fallback_chain("numpy") == ["numpy"]

    def test_custom_backend_falls_to_reference(self):
        assert fallback_chain("weird") == ["weird", "numpy"]

    def test_unknown_backend_is_usage_error(self, seven_point, small_field):
        with pytest.raises(ValueError, match="unknown backend"):
            bind_with_fallback(seven_point, "no-such-backend", small_field)

    def test_bind_fault_degrades_one_step(self, seven_point, small_field):
        with FAULTS.injected("backend.bind=fused-numpy"):
            with pytest.warns(DegradedExecutionWarning):
                bound = bind_with_fallback(
                    seven_point, "fused-numpy", probe_field=small_field
                )
        assert bound.used == "numpy-inplace"
        assert bound.degraded
        (deg,) = bound.degradations
        assert (deg.stage, deg.backend, deg.fallback) == (
            "bind", "fused-numpy", "numpy-inplace",
        )

    def test_first_tile_probe_catches_compute_fault(self, seven_point, small_field):
        with FAULTS.injected("backend.compute=numpy-inplace"):
            with pytest.warns(DegradedExecutionWarning):
                bound = bind_with_fallback(
                    seven_point, "numpy-inplace", probe_field=small_field
                )
        assert bound.used == "numpy"
        assert bound.degradations[0].stage == "probe"

    def test_chain_exhaustion_raises(self, seven_point, small_field):
        with FAULTS.injected("backend.bind:*", "backend.compute:*"):
            with pytest.warns(DegradedExecutionWarning):
                with pytest.raises(FallbackExhaustedError):
                    bind_with_fallback(
                        seven_point, "fused-numpy", probe_field=small_field
                    )

    def test_degraded_backend_is_bit_exact(self, seven_point, small_field):
        with FAULTS.injected("backend.bind=fused-numpy"):
            with pytest.warns(DegradedExecutionWarning):
                bound = bind_with_fallback(
                    seven_point, "fused-numpy", probe_field=small_field
                )
        out = Blocking35D(bound.kernel, 2, 8, 8).run(small_field, 4)
        assert_fields_equal(out, run_naive(seven_point, small_field, 4))

    def test_clean_bind_reports_no_degradation(self, seven_point, small_field):
        bound = bind_with_fallback(
            seven_point, "fused-numpy", probe_field=small_field
        )
        assert bound.used == "fused-numpy"
        assert not bound.degraded


# ======================================================================
# guarded sweeps: health, retry, repair
# ======================================================================
class TestGuardedSweep:
    def _executor(self, kernel, dim_t=2, tile=8):
        return Blocking35D(kernel, dim_t, tile, tile)

    def test_clean_run_is_bit_exact(self, seven_point, small_field):
        guard = GuardedSweep(self._executor(seven_point))
        out = guard.run(small_field, 5)
        assert_fields_equal(out, run_naive(seven_point, small_field, 5))
        assert guard.report.rounds == 3  # 2 + 2 + 1
        assert not guard.report.degraded

    def test_health_raise_on_nan(self, seven_point, small_field):
        guard = GuardedSweep(self._executor(seven_point), health="raise")
        with FAULTS.injected("grid.nan"):
            with pytest.raises(HealthCheckError, match="non-finite"):
                guard.run(small_field, 4)

    def test_health_warn_continues(self, seven_point, small_field):
        guard = GuardedSweep(self._executor(seven_point), health="warn")
        with FAULTS.injected("grid.nan@1"):
            with pytest.warns(HealthWarning):
                out = guard.run(small_field, 4)
        assert not grid_is_finite(out.data)
        assert guard.report.warnings

    def test_health_off_skips_checks(self, seven_point, small_field):
        guard = GuardedSweep(self._executor(seven_point), health="off")
        with FAULTS.injected("grid.nan"):
            out = guard.run(small_field, 4)
        assert not grid_is_finite(out.data)

    def test_repair_rolls_back_and_converges(self, seven_point, small_field):
        guard = GuardedSweep(self._executor(seven_point), health="repair")
        with FAULTS.injected("grid.nan@1"):  # poison after the second round
            out = guard.run(small_field, 6)
        assert guard.report.repairs == 1
        assert guard.report.degraded
        assert_fields_equal(out, run_naive(seven_point, small_field, 6))

    def test_repair_exhaustion_raises(self, seven_point, small_field):
        guard = GuardedSweep(self._executor(seven_point), health="repair")
        with FAULTS.injected("grid.nan:*"):
            with pytest.raises(HealthCheckError, match="repair attempts exhausted"):
                guard.run(small_field, 6)

    def test_retry_recovers_transient_fault(self, seven_point, small_field):
        calls = []

        class Flaky:
            dim_t = 2

            def __init__(self, inner):
                self.inner = inner

            def run(self, field, steps, traffic=None):
                calls.append(steps)
                if len(calls) <= 2:
                    raise RuntimeError("transient")
                return self.inner.run(field, steps, traffic)

        guard = GuardedSweep(
            Flaky(self._executor(seven_point)), max_retries=2,
            sleep=lambda s: None,
        )
        out = guard.run(small_field, 4)
        assert guard.report.retries == 2
        assert_fields_equal(out, run_naive(seven_point, small_field, 4))

    def test_retries_exhausted_raises(self, seven_point, small_field):
        class Broken:
            dim_t = 2

            def run(self, field, steps, traffic=None):
                raise RuntimeError("permanent")

        delays = []
        guard = GuardedSweep(
            Broken(), max_retries=3, backoff=0.01, sleep=delays.append
        )
        with pytest.raises(SweepRetriesExhaustedError, match="permanent"):
            guard.run(small_field, 4)
        # exponential backoff: each retry waits longer than the last
        assert delays == sorted(delays) and len(delays) == 3

    def test_no_retry_propagates_raw_exception(self, seven_point, small_field):
        class Broken:
            dim_t = 2

            def run(self, field, steps, traffic=None):
                raise ZeroDivisionError("untouched")

        guard = GuardedSweep(Broken())
        with pytest.raises(ZeroDivisionError):
            guard.run(small_field, 2)

    def test_invalid_policy_rejected(self, seven_point):
        with pytest.raises(ValueError, match="health policy"):
            GuardedSweep(self._executor(seven_point), health="panic")


# ======================================================================
# checkpoint / restart
# ======================================================================
class TestCheckpoint:
    def test_roundtrip(self, tmp_path, small_field):
        store = CheckpointStore(tmp_path / "snap.npz")
        store.save(small_field.data, 6, {"kernel": "7pt"})
        snap = store.load()
        assert snap.step == 6
        assert snap.meta == {"kernel": "7pt"}
        assert np.array_equal(snap.data, small_field.data)

    def test_missing_is_none(self, tmp_path):
        assert CheckpointStore(tmp_path / "nope.npz").load() is None

    def test_corrupt_snapshot_quarantined(self, tmp_path):
        path = tmp_path / "snap.npz"
        path.write_bytes(b"PK\x03\x04 definitely not a real zip")
        store = CheckpointStore(path)
        assert store.load() is None
        assert not path.exists()
        assert (tmp_path / "snap.npz.corrupt").exists()

    def test_save_replaces_atomically(self, tmp_path, small_field):
        store = CheckpointStore(tmp_path / "snap.npz")
        store.save(small_field.data, 2, {})
        store.save(small_field.data * 0, 4, {})
        assert store.load().step == 4
        assert not (tmp_path / "snap.npz.tmp").exists()

    def test_resume_is_bit_exact(self, seven_point, small_field, tmp_path):
        store = CheckpointStore(tmp_path / "snap.npz")
        meta = {"kernel": "7pt"}
        ex = Blocking35D(seven_point, 2, 8, 8)

        # an "interrupted" run: snapshots every round, killed after step 4
        class DiesAtStep4:
            dim_t = 2

            def __init__(self):
                self.done = 0

            def run(self, field, steps, traffic=None):
                if self.done >= 4:
                    raise RuntimeError("simulated crash")
                self.done += steps
                return ex.run(field, steps, traffic)

        guard = GuardedSweep(
            DiesAtStep4(), checkpoint=store, checkpoint_every=1, meta=meta
        )
        with pytest.raises(RuntimeError, match="simulated crash"):
            guard.run(small_field, 8)
        assert store.load().step == 4

        resumed = GuardedSweep(
            ex, checkpoint=store, checkpoint_every=1, meta=meta
        )
        out = resumed.run(small_field, 8, resume=True)
        assert resumed.report.resumed_from == 4
        assert_fields_equal(out, run_naive(seven_point, small_field, 8))

    def test_resume_refuses_foreign_snapshot(self, seven_point, small_field, tmp_path):
        store = CheckpointStore(tmp_path / "snap.npz")
        store.save(small_field.data, 2, {"kernel": "27pt"})
        guard = GuardedSweep(
            Blocking35D(seven_point, 2, 8, 8),
            checkpoint=store, meta={"kernel": "7pt"},
        )
        with pytest.warns(HealthWarning, match="does not match"):
            out = guard.run(small_field, 4, resume=True)
        assert guard.report.resumed_from is None
        assert_fields_equal(out, run_naive(seven_point, small_field, 4))


# ======================================================================
# checkpoint schema validation
# ======================================================================
class TestCheckpointSchema:
    def _restamp(self, path, mutate):
        """Rewrite the snapshot with its schema stamp altered by ``mutate``."""
        import json

        with np.load(path, allow_pickle=False) as npz:
            data, step = npz["data"], int(npz["step"])
            meta = json.loads(bytes(npz["meta"]).decode())
        mutate(meta)
        np.savez(path, data=data, step=np.int64(step),
                 meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8))

    def test_version_stamp_roundtrips(self, tmp_path, small_field):
        store = CheckpointStore(tmp_path / "snap.npz")
        store.save(small_field.data, 3, {"kernel": "7pt"})
        snap = store.load()
        assert snap.schema_version == CHECKPOINT_SCHEMA_VERSION
        assert snap.meta == {"kernel": "7pt"}  # stamp is not leaked to meta

    def test_missing_stamp_raises(self, tmp_path, small_field):
        store = CheckpointStore(tmp_path / "snap.npz")
        store.save(small_field.data, 3, {})
        self._restamp(store.path, lambda m: m.pop("_checkpoint"))
        with pytest.raises(CheckpointError, match="no schema_version stamp"):
            store.load()

    def test_future_version_raises(self, tmp_path, small_field):
        store = CheckpointStore(tmp_path / "snap.npz")
        store.save(small_field.data, 3, {})
        self._restamp(
            store.path,
            lambda m: m["_checkpoint"].update(schema_version=99),
        )
        with pytest.raises(CheckpointError, match="schema_version 99"):
            store.load()

    def test_inconsistent_stamp_raises(self, tmp_path, small_field):
        store = CheckpointStore(tmp_path / "snap.npz")
        store.save(small_field.data, 3, {})
        self._restamp(
            store.path,
            lambda m: m["_checkpoint"].update(shape=[1, 2, 3, 4]),
        )
        with pytest.raises(CheckpointError, match="internally inconsistent"):
            store.load()

    def test_shape_change_raises_clearly(self, tmp_path, small_field):
        store = CheckpointStore(tmp_path / "snap.npz")
        store.save(small_field.data, 3, {})
        wrong = tuple(d + 2 for d in small_field.data.shape)
        with pytest.raises(CheckpointError, match="geometry changed"):
            store.load(expected_shape=wrong)

    def test_dtype_change_raises_clearly(self, tmp_path, small_field):
        store = CheckpointStore(tmp_path / "snap.npz")
        store.save(small_field.data.astype(np.float32), 3, {})
        with pytest.raises(CheckpointError, match="precision"):
            store.load(expected_dtype=np.float64)

    def test_matching_expectations_load(self, tmp_path, small_field):
        store = CheckpointStore(tmp_path / "snap.npz")
        store.save(small_field.data, 3, {})
        snap = store.load(
            expected_shape=small_field.data.shape,
            expected_dtype=small_field.data.dtype,
        )
        assert snap.step == 3

    def test_guarded_resume_survives_bad_snapshot(
        self, seven_point, small_field, tmp_path
    ):
        # a refused snapshot degrades --resume to a scratch run, not exit 4
        store = CheckpointStore(tmp_path / "snap.npz")
        store.save(small_field.data, 2, {})
        self._restamp(store.path, lambda m: m.pop("_checkpoint"))
        guard = GuardedSweep(
            Blocking35D(seven_point, 2, 8, 8), checkpoint=store, meta={}
        )
        with pytest.warns(HealthWarning, match="schema_version"):
            out = guard.run(small_field, 4, resume=True)
        assert guard.report.resumed_from is None
        assert_fields_equal(out, run_naive(seven_point, small_field, 4))


# ======================================================================
# barrier watchdogs
# ======================================================================
@pytest.mark.timeout(30)
class TestBarrierWatchdog:
    @pytest.mark.parametrize("cls", [SenseReversingBarrier, PthreadsBarrier])
    def test_timeout_poisons(self, cls):
        barrier = cls(2)
        with pytest.raises(BarrierTimeoutError):
            barrier.wait(timeout=0.1)  # the peer never arrives
        assert barrier.broken
        with pytest.raises(BarrierBrokenError):
            barrier.wait(timeout=0.1)

    @pytest.mark.parametrize("cls", [SenseReversingBarrier, PthreadsBarrier])
    def test_reset_clears_poison(self, cls):
        barrier = cls(1)
        barrier.abort()
        assert barrier.broken
        barrier.reset()
        barrier.wait(timeout=1.0)  # single party: returns immediately

    def test_abort_releases_waiting_peer(self):
        barrier = SenseReversingBarrier(2)
        caught = []

        def waiter():
            try:
                barrier.wait(timeout=5.0)
            except BarrierBrokenError as exc:
                caught.append(exc)

        t = threading.Thread(target=waiter)
        t.start()
        barrier.abort()
        t.join(timeout=5)
        assert not t.is_alive()
        assert len(caught) == 1
        assert not isinstance(caught[0], BarrierTimeoutError)

    def test_guard_poisons_on_exception(self):
        barrier = SenseReversingBarrier(2)
        released = []

        def peer():
            try:
                barrier.wait(timeout=5.0)
            except BarrierBrokenError:
                released.append(True)

        t = threading.Thread(target=peer)
        t.start()
        with pytest.raises(RuntimeError, match="worker exploded"):
            with barrier.guard():
                raise RuntimeError("worker exploded")
        t.join(timeout=5)
        assert released == [True]


# ======================================================================
# worker pool watchdog
# ======================================================================
@pytest.mark.timeout(60)
class TestWorkerPoolWatchdog:
    def test_deadline_dumps_stacks(self):
        release = threading.Event()
        with WorkerPool(2) as pool:
            with pytest.raises(WorkerTimeoutError) as err:
                pool.run_spmd(lambda tid: release.wait(10), deadline=0.3)
            release.set()  # let the stragglers finish so shutdown is quick
        assert "deadline" in str(err.value)
        assert err.value.stacks  # one formatted stack per worker
        assert any("release.wait" in s for s in err.value.stacks.values())

    def test_worker_death_detected(self):
        with WorkerPool(2) as pool:
            with FAULTS.injected("worker.death=1"):
                with pytest.raises(WorkerTimeoutError, match="died"):
                    pool.run_spmd(lambda tid: None)

    def test_shutdown_from_inside_worker(self):
        pool = WorkerPool(2)
        pool.run_spmd(lambda tid: pool.shutdown() if tid == 0 else None)
        assert pool.closed
        pool.shutdown()  # idempotent

    def test_pool_survives_abandoned_launch(self):
        """A timed-out launch must not poison the next one (generation tag)."""
        release = threading.Event()
        with WorkerPool(2) as pool:
            with pytest.raises(WorkerTimeoutError):
                pool.run_spmd(lambda tid: release.wait(10), deadline=0.2)
            release.set()
            hits = []
            pool.run_spmd(lambda tid: hits.append(tid))
            assert sorted(hits) == [0, 1]


# ======================================================================
# end-to-end: threaded sweep under a deadline
# ======================================================================
@pytest.mark.timeout(60)
class TestThreadedDeadline:
    def test_generous_deadline_is_bit_exact(self, seven_point, small_field):
        from repro.runtime import ParallelBlocking35D

        ex = ParallelBlocking35D(seven_point, 2, 8, 8, 2, spmd_deadline=30.0)
        out = ex.run(small_field, 4)
        assert_fields_equal(out, run_naive(seven_point, small_field, 4))

    def test_dead_worker_surfaces_not_hangs(self, seven_point, small_field):
        from repro.runtime import ParallelBlocking35D

        ex = ParallelBlocking35D(seven_point, 2, 8, 8, 2, spmd_deadline=30.0)
        with FAULTS.injected("worker.death=1"):
            with pytest.raises(WorkerTimeoutError):
                ex.run(small_field, 4)


# ======================================================================
# run reports
# ======================================================================
class TestRunReport:
    def test_clean_report(self):
        report = RunReport(requested_backend="numpy", used_backend="numpy")
        assert not report.degraded
        assert report.lines() == []

    def test_degraded_report_lines(self):
        report = RunReport(
            requested_backend="fused-numba", used_backend="fused-numpy",
            retries=2, repairs=1, resumed_from=4, checkpoints_written=3,
        )
        assert report.degraded
        text = "\n".join(report.lines())
        assert "fused-numpy" in text
        assert "retries" in text and "repairs" in text
        assert "from step 4" in text
