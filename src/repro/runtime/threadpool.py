"""A persistent worker pool (the pthreads analog of Section VI).

The paper keeps one pthread per core alive for the whole run and
synchronizes them with its software barrier; spawning threads per time step
would dwarf the stencil work.  This pool mirrors that: N persistent workers,
each with a task queue, plus a ``run_spmd`` entry that hands every worker
the same function with its thread id — the SPMD launch shape of the 3.5D
algorithm.

The pool is a context manager and its :meth:`~WorkerPool.shutdown` is
idempotent and thread-safe: closing twice, closing after a worker raised,
or closing *from inside a worker* (an error handler) must neither hang nor
raise — a worker never tries to join itself, and joins happen outside any
lock so a slow worker cannot serialize concurrent shutdown callers.  Each
``run_spmd`` launch carries a generation tag so completions left over from
an interrupted launch (e.g. the caller was interrupted between enqueueing
and draining) can never satisfy a later launch's join.

``run_spmd`` is also the pool's watchdog: an optional ``deadline`` bounds
the whole launch, and the drain loop notices workers that died without
posting a completion (including the injected ``worker.death`` fault).
Either way the caller gets a :class:`WorkerTimeoutError` carrying a stack
dump of every worker thread — a stuck launch diagnoses itself instead of
hanging the sweep forever.
"""

from __future__ import annotations

import queue
import sys
import threading
import time
import traceback
from collections.abc import Callable

import numpy as np

from ..obs.metrics import METRICS
from ..obs.trace import TRACE
from ..resilience.faultinject import FAULTS, ResilienceError

__all__ = ["WorkerPool", "WorkerTimeoutError"]

#: seconds between liveness/deadline checks while draining completions
_POLL_S = 0.05


class WorkerTimeoutError(ResilienceError):
    """An SPMD launch did not complete: deadline exceeded or a worker died.

    ``stacks`` maps worker thread names to their formatted stack at the
    moment of failure (``"<dead>"`` for threads that already exited).
    """

    def __init__(self, message: str, stacks: dict[str, str]) -> None:
        dump = "\n".join(
            f"--- {name} ---\n{stack}" for name, stack in stacks.items()
        )
        super().__init__(f"{message}\nworker stacks:\n{dump}")
        self.stacks = stacks


class WorkerPool:
    """N persistent worker threads executing SPMD tasks."""

    def __init__(self, n_threads: int) -> None:
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        self.n_threads = n_threads
        self._queues: list[queue.Queue] = [queue.Queue() for _ in range(n_threads)]
        self._done: queue.Queue = queue.Queue()
        self._shutdown = False
        self._generation = 0
        # _launch_lock serializes run_spmd launches; _state_lock protects the
        # shutdown flag and generation counter.  They are separate so that
        # shutdown() — possibly called from inside a worker while a launch is
        # draining — never blocks on an in-flight launch.
        self._launch_lock = threading.Lock()
        self._state_lock = threading.Lock()
        # per-worker completion timestamps of the current SPMD launch, used
        # for barrier-wait accounting when the metrics registry is armed
        # (preallocated: the hot path must not allocate)
        self._spmd_ends = np.zeros(n_threads, dtype=np.int64)
        self._threads = [
            threading.Thread(target=self._worker, args=(tid,), daemon=True)
            for tid in range(n_threads)
        ]
        for t in self._threads:
            t.start()

    @property
    def closed(self) -> bool:
        """True once :meth:`shutdown` has begun."""
        return self._shutdown

    def _worker(self, tid: int) -> None:
        q = self._queues[tid]
        while True:
            task = q.get()
            if task is None:
                return
            gen, fn = task
            if FAULTS.should("worker.death", detail=str(tid)):
                return  # simulated crash: exit without posting a completion
            try:
                fn(tid)
                self._done.put((gen, tid, None))
            except BaseException as exc:  # propagate to the caller
                self._done.put((gen, tid, exc))

    def _thread_stacks(self) -> dict[str, str]:
        """Formatted stack of every worker thread (``<dead>`` if exited)."""
        frames = sys._current_frames()
        stacks = {}
        for t in self._threads:
            frame = frames.get(t.ident) if t.is_alive() else None
            stacks[t.name] = (
                "".join(traceback.format_stack(frame)) if frame else "<dead>"
            )
        return stacks

    def run_spmd(
        self, fn: Callable[[int], None], deadline: float | None = None
    ) -> None:
        """Run ``fn(thread_id)`` on every worker; blocks until all finish.

        The first worker exception is re-raised in the caller (after all
        workers of this launch have finished, so the pool stays reusable).
        Launches are serialized: concurrent callers take turns.

        ``deadline`` bounds the whole launch in seconds; when it expires —
        or when a worker thread dies without completing its task — the
        launch is abandoned with a :class:`WorkerTimeoutError` carrying
        per-thread stack dumps.  (The generation tag keeps any completions
        that straggle in afterwards from satisfying a later launch.)
        """
        with self._launch_lock:
            with self._state_lock:
                if self._shutdown:
                    raise RuntimeError("pool is shut down")
                self._generation += 1
                gen = self._generation
            # Observability wrap: per-worker completion timestamps feed the
            # barrier-wait counters (wait_i = last_finisher - finish_i), and
            # an armed tracer gets one "spmd" span per worker so Perfetto
            # shows each worker thread's share of the launch.
            record = METRICS.armed
            if record or TRACE.armed:
                ends = self._spmd_ends
                ends[:] = 0
                user_fn = fn

                def fn(tid: int, _fn=user_fn, _ends=ends, _rec=record) -> None:
                    with TRACE.span("spmd", tid=tid):
                        try:
                            _fn(tid)
                        finally:
                            if _rec:
                                _ends[tid] = time.perf_counter_ns()

                t_start = time.perf_counter_ns()
            for q in self._queues:
                q.put((gen, fn))
            first_exc: BaseException | None = None
            pending = set(range(self.n_threads))
            t_end = None if deadline is None else time.monotonic() + deadline
            while pending:
                try:
                    got_gen, tid, exc = self._done.get(timeout=_POLL_S)
                except queue.Empty:
                    if t_end is not None and time.monotonic() >= t_end:
                        raise WorkerTimeoutError(
                            f"SPMD launch exceeded its {deadline}s deadline "
                            f"with {len(pending)} worker(s) outstanding "
                            f"(tids {sorted(pending)})",
                            self._thread_stacks(),
                        ) from None
                    dead = [
                        tid for tid in pending
                        if not self._threads[tid].is_alive()
                    ]
                    if dead:
                        raise WorkerTimeoutError(
                            f"worker thread(s) {dead} died without completing "
                            "their task; launch abandoned",
                            self._thread_stacks(),
                        ) from None
                    continue
                if got_gen != gen:
                    # stale completion from an interrupted earlier launch
                    continue
                pending.discard(tid)
                if exc is not None and first_exc is None:
                    first_exc = exc
            if record:
                done_ns = time.perf_counter_ns()
                ends = self._spmd_ends
                valid = ends[ends > 0]
                if len(valid):
                    METRICS.inc("barrier.wait_ns",
                                int((valid.max() - valid).sum()))
                    METRICS.inc("barrier.spmd_ns", done_ns - t_start)
                    METRICS.inc("barrier.launches", 1)
                    METRICS.set_gauge("barrier.threads", self.n_threads)
            if first_exc is not None:
                raise first_exc

    def shutdown(self) -> None:
        """Stop the workers.  Safe to call repeatedly, from any thread —
        including a worker thread itself (the caller is never joined)."""
        with self._state_lock:
            first = not self._shutdown
            self._shutdown = True
        if first:
            for q in self._queues:
                q.put(None)
        me = threading.current_thread()
        for t in self._threads:
            if t is me:
                continue  # a worker closing the pool cannot join itself
            t.join(timeout=5)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()
