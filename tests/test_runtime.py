"""Tests for the parallel runtime: barriers, pool, partitioning, threaded 3.5D."""

import threading

import numpy as np
import pytest

from repro.core import TrafficStats, run_naive
from repro.runtime import (
    ParallelBlocking35D,
    PthreadsBarrier,
    SenseReversingBarrier,
    WorkerPool,
    partition_balance,
    partition_rows,
    partition_span,
    run_parallel_3_5d,
)
from repro.stencils import Field3D, SevenPointStencil


class TestBarriers:
    @pytest.mark.parametrize("barrier_cls", [SenseReversingBarrier, PthreadsBarrier])
    def test_phases_stay_in_lockstep(self, barrier_cls):
        """No thread may enter phase p+1 before all have finished phase p."""
        n, phases = 4, 25
        barrier = barrier_cls(n)
        counts = [0] * phases
        lock = threading.Lock()
        errors = []

        def worker():
            for p in range(phases):
                with lock:
                    counts[p] += 1
                barrier.wait()
                with lock:
                    if counts[p] != n:
                        errors.append((p, counts[p]))

        threads = [threading.Thread(target=worker) for _ in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        assert counts == [n] * phases

    def test_single_thread_barrier_trivial(self):
        b = SenseReversingBarrier(1)
        for _ in range(5):
            b.wait()

    def test_invalid_thread_count(self):
        with pytest.raises(ValueError):
            SenseReversingBarrier(0)


class TestWorkerPool:
    def test_spmd_runs_all_threads(self):
        seen = set()
        lock = threading.Lock()
        with WorkerPool(4) as pool:
            def fn(tid):
                with lock:
                    seen.add(tid)
            pool.run_spmd(fn)
        assert seen == {0, 1, 2, 3}

    def test_spmd_blocks_until_done(self):
        results = []
        with WorkerPool(3) as pool:
            pool.run_spmd(lambda tid: results.append(tid))
            assert len(results) == 3

    def test_exception_propagates(self):
        with WorkerPool(2) as pool:
            def fail(tid):
                if tid == 1:
                    raise RuntimeError("boom")
            with pytest.raises(RuntimeError, match="boom"):
                pool.run_spmd(fail)
            # pool still usable afterwards
            pool.run_spmd(lambda tid: None)

    def test_shutdown_idempotent(self):
        pool = WorkerPool(2)
        pool.shutdown()
        pool.shutdown()
        with pytest.raises(RuntimeError):
            pool.run_spmd(lambda tid: None)

    def test_closed_property(self):
        pool = WorkerPool(2)
        assert not pool.closed
        pool.shutdown()
        assert pool.closed

    def test_context_manager_closes(self):
        with WorkerPool(2) as pool:
            assert not pool.closed
        assert pool.closed

    def test_shutdown_after_worker_exception(self):
        """A raised SPMD task must not wedge the queues for shutdown."""
        pool = WorkerPool(3)

        def fail(tid):
            raise ValueError("bad")

        with pytest.raises(ValueError):
            pool.run_spmd(fail)
        pool.shutdown()  # must return promptly, not hang
        assert pool.closed

    def test_stale_completion_discarded(self):
        """Completions tagged with an older generation never satisfy a newer
        launch's join (regression for interrupted launches)."""
        pool = WorkerPool(2)
        try:
            # forge a leftover completion from a long-gone launch
            pool._done.put((pool._generation, 0, None))
            results = []
            lock = threading.Lock()

            def fn(tid):
                with lock:
                    results.append(tid)

            pool.run_spmd(fn)
            assert sorted(results) == [0, 1]
            # the stale entry was consumed, not left to poison a later launch
            assert pool._done.empty()
        finally:
            pool.shutdown()

    def test_concurrent_launches_serialized(self):
        """run_spmd from several threads at once: each launch completes with
        exactly its own workers' completions."""
        pool = WorkerPool(2)
        errors = []

        def launcher(n):
            try:
                for _ in range(10):
                    pool.run_spmd(lambda tid: None)
            except Exception as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=launcher, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        pool.shutdown()
        assert not errors


class TestPartition:
    def test_even_split(self):
        assert partition_rows(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_remainder_spread(self):
        parts = partition_rows(10, 4)
        sizes = [hi - lo for lo, hi in parts]
        assert sorted(sizes) == [2, 2, 3, 3]
        assert partition_balance(parts) == 1

    def test_paper_examples(self):
        # Section VI-A: 360/4 = 90 rows; Section VI-B: 64/4 = 16, 44/4 = 11
        assert all(hi - lo == 90 for lo, hi in partition_rows(360, 4))
        assert all(hi - lo == 16 for lo, hi in partition_rows(64, 4))
        assert all(hi - lo == 11 for lo, hi in partition_rows(44, 4))

    def test_more_threads_than_rows(self):
        parts = partition_rows(2, 4)
        assert sum(hi - lo for lo, hi in parts) == 2
        assert len(parts) == 4

    def test_span_offset(self):
        assert partition_span(5, 11, 3) == [(5, 7), (7, 9), (9, 11)]

    def test_contiguous_coverage(self):
        parts = partition_span(3, 100, 7)
        assert parts[0][0] == 3 and parts[-1][1] == 100
        for a, b in zip(parts, parts[1:]):
            assert a[1] == b[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            partition_span(0, 10, 0)
        with pytest.raises(ValueError):
            partition_span(10, 5, 2)


class TestParallel35D:
    @pytest.mark.parametrize("n_threads", [1, 2, 3, 5])
    def test_bit_exact_vs_naive(self, n_threads):
        k = SevenPointStencil()
        f = Field3D.random((12, 22, 20), dtype=np.float32, seed=31)
        ref = run_naive(k, f, 5)
        out = run_parallel_3_5d(k, f, 5, 2, 16, 14, n_threads=n_threads, validate=True)
        assert np.array_equal(out.data, ref.data)

    def test_remainder_round(self):
        k = SevenPointStencil()
        f = Field3D.random((10, 18, 18), seed=32)
        ref = run_naive(k, f, 5)
        out = run_parallel_3_5d(k, f, 5, 3, 14, 14, n_threads=4)
        assert np.array_equal(out.data, ref.data)

    def test_load_balance(self):
        """Section V-D: every thread does ~the same traffic and compute."""
        k = SevenPointStencil()
        f = Field3D.random((16, 48, 48), seed=33)
        per = []
        ex = ParallelBlocking35D(k, 2, 48, 48, 4)
        ex.run(f, 4, per_thread_traffic=per)
        updates = [p.updates for p in per]
        assert max(updates) <= 1.2 * min(updates)
        tbytes = [p.total_bytes for p in per]
        assert max(tbytes) <= 1.2 * min(tbytes)

    def test_merged_traffic_matches_serial(self):
        from repro.core import Blocking35D

        k = SevenPointStencil()
        f = Field3D.random((12, 30, 30), seed=34)
        t_par, t_ser = TrafficStats(), TrafficStats()
        ParallelBlocking35D(k, 2, 20, 20, 3).run(f, 4, traffic=t_par)
        Blocking35D(k, 2, 20, 20).run(f, 4, t_ser)
        assert t_par.updates == t_ser.updates
        assert t_par.bytes_written == t_ser.bytes_written
        assert t_par.bytes_read == t_ser.bytes_read

    def test_shared_pool_reuse(self):
        k = SevenPointStencil()
        with WorkerPool(2) as pool:
            ex = ParallelBlocking35D(k, 2, 16, 16, 2, pool=pool)
            for seed in (1, 2):
                f = Field3D.random((10, 16, 16), seed=seed)
                out = ex.run(f, 2)
                assert np.array_equal(out.data, run_naive(k, f, 2).data)
            # pool not shut down by the executor
            pool.run_spmd(lambda tid: None)

    def test_lbm_parallel(self):
        from repro.lbm import Lattice, channel_with_sphere, make_kernel, run_lbm

        flags = channel_with_sphere((10, 14, 14), 2.0)
        rng = np.random.default_rng(35)
        lat = Lattice.from_moments(
            1.0 + 0.05 * rng.random((10, 14, 14)),
            0.02 * (rng.random((3, 10, 14, 14)) - 0.5),
            flags,
        )
        ref = run_lbm(lat, 4, omega=1.2)
        kernel = make_kernel(lat, omega=1.2)
        out = ParallelBlocking35D(kernel, 2, 12, 12, 3).run(lat.f, 4)
        assert np.array_equal(out.data, ref.f.data)

    def test_zero_steps(self):
        k = SevenPointStencil()
        f = Field3D.random((8, 10, 10), seed=36)
        out = run_parallel_3_5d(k, f, 0, 2, 10, 10, n_threads=2)
        assert np.array_equal(out.data, f.data)

    def test_invalid_thread_count(self):
        with pytest.raises(ValueError):
            ParallelBlocking35D(SevenPointStencil(), 2, 10, 10, 0)


class TestWorkerDeathMidIteration:
    """A worker dying mid z-iteration must poison the shared barrier:
    survivors get BarrierBrokenError (never a hang) and run_spmd surfaces
    the dead worker with its ``<dead>`` stack marker."""

    @pytest.mark.timeout(30)
    def test_survivors_released_and_death_reported(self):
        from repro.resilience import FAULTS
        from repro.runtime import BarrierBrokenError, WorkerTimeoutError

        n = 3
        barrier = SenseReversingBarrier(n)
        survivor_errors = []

        def z_sweep(tid):
            # two "z-iterations"; worker 1 never even starts (it is killed
            # by the worker.death site before running its task)
            for _ in range(2):
                try:
                    barrier.wait(timeout=2.0)
                except BarrierBrokenError as exc:
                    survivor_errors.append((tid, exc))
                    raise

        with WorkerPool(n) as pool:
            with FAULTS.injected("worker.death=1"):
                with pytest.raises(WorkerTimeoutError) as err:
                    pool.run_spmd(z_sweep)

        # the launch names the dead worker and carries its <dead> stack
        assert "died" in str(err.value)
        assert "[1]" in str(err.value)
        dead_stacks = [s for s in err.value.stacks.values() if s == "<dead>"]
        assert len(dead_stacks) == 1
        # both survivors were released by barrier poisoning, not a hang
        assert sorted(tid for tid, _ in survivor_errors) == [0, 2]
        assert barrier.broken

    @pytest.mark.timeout(30)
    def test_pool_reusable_after_death(self):
        from repro.resilience import FAULTS
        from repro.runtime import WorkerTimeoutError

        with WorkerPool(2) as pool:
            with FAULTS.injected("worker.death=0"):
                with pytest.raises(WorkerTimeoutError):
                    pool.run_spmd(lambda tid: None)
            # the dead thread stays dead, so later launches keep failing
            # loudly instead of hanging
            with pytest.raises(WorkerTimeoutError):
                pool.run_spmd(lambda tid: None)
