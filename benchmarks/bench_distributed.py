"""Ablation: distributed temporal blocking (extension of Section II lineage).

Not a paper figure — the paper is single-node — but the direct distributed
consequence of 3.5D blocking that its Section II positions against
(Wittmann/Hager/Wellein): one halo exchange per ``dim_T`` steps cuts the
message count (and hence the latency term of the alpha-beta cost) by
``dim_T`` at constant byte volume.
"""

import numpy as np
import pytest

from repro.core import run_naive
from repro.distributed import DistributedJacobi, transfer_time
from repro.perf import format_table
from repro.stencils import Field3D, SevenPointStencil

from .conftest import banner, record


def test_message_reduction_sweep(benchmark):
    kernel = SevenPointStencil()
    field = Field3D.random((48, 24, 24), dtype=np.float32, seed=0)
    steps, ranks = 12, 4
    ref = run_naive(kernel, field, steps)

    def sweep():
        rows = []
        for dim_t in (1, 2, 3, 4):
            dj = DistributedJacobi(kernel, ranks, dim_t=dim_t)
            out, comm = dj.run(field, steps)
            assert np.array_equal(out.data, ref.data)
            total = comm.total_stats()
            rows.append(
                (
                    dim_t,
                    total.messages_sent,
                    total.bytes_sent,
                    transfer_time(total.messages_sent, total.bytes_sent) * 1e6,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(banner(f"Distributed 3.5D: {ranks} ranks, {steps} steps, 48x24x24 SP"))
    print(
        format_table(
            ["dim_T", "messages", "bytes", "alpha-beta cost (us)"],
            [(d, m, b, f"{t:.1f}") for d, m, b, t in rows],
        )
    )
    msgs = {d: m for d, m, _, _ in rows}
    assert msgs[1] == 2 * msgs[2] == 3 * msgs[3]
    volumes = {b for _, _, b, _ in rows}
    assert len(volumes) == 1  # byte volume independent of dim_T
    times = [t for *_, t in rows]
    assert times == sorted(times, reverse=True)  # latency term shrinks
    record(benchmark, messages_dt1=msgs[1], messages_dt4=msgs[4])


def test_distributed_executor_wallclock(benchmark):
    """Wall-clock of a 4-rank simulated run (structure, not hardware)."""
    kernel = SevenPointStencil()
    field = Field3D.random((32, 48, 48), dtype=np.float32, seed=1)
    dj = DistributedJacobi(kernel, 4, dim_t=2)
    out, _ = benchmark.pedantic(dj.run, (field, 4), rounds=3, iterations=1)
    assert np.array_equal(out.data, run_naive(kernel, field, 4).data)
