"""Figure 5(a): LBM CPU optimization breakdown, model vs paper bars.

Also runs the stage *mechanisms* on the real substrate where they are
observable: scalar-vs-vectorized collision and the 4D-vs-3.5D recompute gap.
"""

import numpy as np
import pytest

from repro.core import TrafficStats, run_4d
from repro.lbm import Lattice, collide_bgk, run_lbm_35d
from repro.perf import breakdown_lbm_cpu, format_stages

from .conftest import banner, record

PAPER_BARS = [52, 87, 87, 94, 157, 171]


def test_fig5a_breakdown(benchmark):
    stages = benchmark(breakdown_lbm_cpu)
    print()
    print(format_stages(stages, "Figure 5(a): LBM SP on Core i7"))
    assert [s.paper_mups for s in stages] == PAPER_BARS
    for s in stages:
        assert s.ratio == pytest.approx(1.0, abs=0.15), s.name
    record(benchmark, final_mlups=stages[-1].modeled_mups)


def test_fig5a_vectorized_collision_speedup(benchmark):
    """The +SSE bar's mechanism: vectorized collision vs per-cell scalar.

    NumPy's array programming is our SIMD; the bench shows the same
    'vectorize the collision' step the paper's second bar captures.
    """
    rng = np.random.default_rng(0)
    f = 0.02 + rng.random((19, 32, 32)).astype(np.float32) * 0.05

    def scalar_collide():
        out = np.empty_like(f)
        for y in range(32):
            for x in range(0, 32, 8):  # sample every 8th column: keep it quick
                out[:, y, x : x + 1] = collide_bgk(f[:, y, x : x + 1], 1.2)
        return out

    vec_time_probe = []

    def vectorized_collide():
        return collide_bgk(f, 1.2)

    benchmark(vectorized_collide)
    import time

    t0 = time.perf_counter()
    scalar_collide()
    scalar_time = (time.perf_counter() - t0) * 8  # sampled 1/8 of the cells
    speedup = scalar_time / benchmark.stats["mean"]
    print(f"\nvectorized collision speedup vs per-cell: {speedup:.0f}X")
    assert speedup > 4  # the mechanism is real (and in Python, dramatic)
    record(benchmark, vector_speedup=speedup)
    _ = vec_time_probe


def test_fig5a_4d_recomputes_more_than_35d(benchmark):
    """The 4D-vs-3.5D gap: measured redundant updates on the substrate."""
    shape = (20, 40, 40)
    rng = np.random.default_rng(1)
    lat = Lattice.from_moments(
        1.0 + 0.02 * rng.random(shape), 0.01 * (rng.random((3,) + shape) - 0.5)
    )
    from repro.lbm import make_kernel

    kernel = make_kernel(lat, omega=1.2)

    def measure():
        t4, t35 = TrafficStats(), TrafficStats()
        run_4d(kernel, lat.f, 3, 3, 16, 16, 16, traffic=t4)
        run_lbm_35d(lat, 3, dim_t=3, tile=16, traffic=t35)
        return t4.updates / t35.updates, t4.bytes_read / t35.bytes_read

    update_ratio, read_ratio = benchmark.pedantic(measure, rounds=1, iterations=1)
    print(
        f"\n4D/3.5D redundant-update ratio: {update_ratio:.2f}X, "
        f"ghost-read ratio: {read_ratio:.2f}X (z ghosts are pure overhead)"
    )
    assert update_ratio > 1.05  # 4D recomputes z ghosts; 3.5D streams z
    assert read_ratio > 1.2
    record(benchmark, update_ratio=update_ratio, read_ratio=read_ratio)
