"""Software barriers (paper Sections III-B and VII-A).

The paper implements a centralized sense-reversing barrier ("we implement
our own barrier that is 50X faster than pthreads barrier", citing
Mellor-Crummey & Scott) and places one barrier per z-iteration of the 3.5D
schedule.  We provide the same algorithm — a shared counter plus a
sense flag each thread compares against its local sense — alongside a
wrapper over :class:`threading.Barrier` (the "pthreads barrier" analog) so
the benchmark harness can compare the two.

In CPython the GIL changes the constants (a spin barrier burns the very
lock the other threads need), so the spin loop yields; the *structure* of
the algorithm is what this reproduces, and the bench reports the measured
ratio honestly.
"""

from __future__ import annotations

import threading
import time

__all__ = ["SenseReversingBarrier", "PthreadsBarrier"]


class SenseReversingBarrier:
    """Centralized sense-reversing barrier (Mellor-Crummey & Scott, 1991).

    The last thread to arrive flips the shared sense; earlier arrivals spin
    (with a yield) until they observe the flip.
    """

    def __init__(self, n_threads: int) -> None:
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        self.n_threads = n_threads
        self._count = n_threads
        self._sense = False
        self._lock = threading.Lock()
        self._local = threading.local()

    def wait(self) -> None:
        local_sense = not getattr(self._local, "sense", False)
        self._local.sense = local_sense
        with self._lock:
            self._count -= 1
            last = self._count == 0
            if last:
                self._count = self.n_threads
                self._sense = local_sense
        if last:
            return
        # spin until the last arrival flips the sense; yield to keep the
        # GIL available for the threads still working
        while self._sense != local_sense:
            time.sleep(0)

    def reset(self) -> None:
        with self._lock:
            self._count = self.n_threads
            self._sense = False


class PthreadsBarrier:
    """The heavyweight reference barrier (condition-variable based)."""

    def __init__(self, n_threads: int) -> None:
        self._barrier = threading.Barrier(n_threads)
        self.n_threads = n_threads

    def wait(self) -> None:
        self._barrier.wait()

    def reset(self) -> None:
        self._barrier.reset()
