"""Arbitrary-coefficient stencils of any radius.

The paper fixes :math:`R = 1` for its two kernels but develops the blocking
formulation for general radius (Section V, Notation).  This module provides
star and box stencils of arbitrary radius so the general-R scheduling and
overestimation machinery can be exercised and property-tested.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence

import numpy as np

from .base import PlaneKernel, validate_footprint

__all__ = ["GenericStencil", "star_stencil", "box_stencil"]


class GenericStencil(PlaneKernel):
    """A stencil defined by a mapping ``(dz, dy, dx) -> weight``.

    The per-update op count follows the paper's convention: one load per tap,
    one store, one add per tap beyond the first, and one multiply per distinct
    weight group (we conservatively count one multiply per tap).
    """

    ncomp = 1

    def __init__(self, taps: Mapping[tuple[int, int, int], float]) -> None:
        if not taps:
            raise ValueError("a stencil needs at least one tap")
        self.taps = dict(taps)
        self.radius = max(max(abs(d) for d in off) for off in self.taps)
        if self.radius < 1:
            raise ValueError("stencil radius must be >= 1")
        ntaps = len(self.taps)
        # loads + store + adds + multiplies
        self.ops_per_update = ntaps + 1 + (ntaps - 1) + ntaps
        self.flops_per_update = (ntaps - 1) + ntaps
        # Pre-sort taps for a deterministic evaluation order (bit-exactness
        # across all blocking schedules depends on it).
        self._order = sorted(self.taps)

    def __repr__(self) -> str:
        return f"GenericStencil(radius={self.radius}, taps={len(self.taps)})"

    def compute_plane(
        self,
        out: np.ndarray,
        src: Sequence[np.ndarray],
        yr: tuple[int, int],
        xr: tuple[int, int],
        gz: int = 0,
        gy0: int = 0,
        gx0: int = 0,
    ) -> None:
        validate_footprint(out.shape[1:], yr, xr, self.radius)
        y0, y1 = yr
        x0, x1 = xr
        dtype = out.dtype.type
        acc = np.zeros((y1 - y0, x1 - x0), dtype=out.dtype)
        for dz, dy, dx in self._order:
            w = dtype(self.taps[(dz, dy, dx)])
            plane = src[dz + self.radius][0]
            acc += w * plane[y0 + dy : y1 + dy, x0 + dx : x1 + dx]
        out[0, y0:y1, x0:x1] = acc


def star_stencil(radius: int, center: float = 0.4, arm: float = 0.05) -> GenericStencil:
    """A star (axis-aligned) stencil of the given radius."""
    taps: dict[tuple[int, int, int], float] = {(0, 0, 0): center}
    for r in range(1, radius + 1):
        for axis in range(3):
            for sign in (-1, 1):
                off = [0, 0, 0]
                off[axis] = sign * r
                taps[tuple(off)] = arm
    return GenericStencil(taps)


def box_stencil(radius: int, center: float = 0.4, other: float = 0.01) -> GenericStencil:
    """A dense box stencil covering the full ``(2R+1)^3`` cube."""
    taps = {
        (dz, dy, dx): (center if (dz, dy, dx) == (0, 0, 0) else other)
        for dz in range(-radius, radius + 1)
        for dy in range(-radius, radius + 1)
        for dx in range(-radius, radius + 1)
    }
    return GenericStencil(taps)
