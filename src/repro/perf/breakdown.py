"""Optimization-breakdown series (regenerates Figure 5) and measured phases.

Figure 5 shows the cumulative effect of applying each optimization in
sequence.  Each stage entry pairs the model's prediction with the paper's
reported bar so benches and EXPERIMENTS.md can show both.

:func:`measured_breakdown` is the *measured* counterpart: it arms the span
tracer of :mod:`repro.obs`, executes a real sweep, and reports per-phase
times from ``perf_counter_ns`` spans — sweep/round/tile/z_iter self-times
that nest correctly and sum to the sweep wall time, instead of ad-hoc
wall-clock deltas around arbitrary code regions.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..machine.spec import CORE_I7, GTX_285, MachineSpec
from .calibration import CPU_CAL, GPU_CAL, CpuCalibration, GpuCalibration
from .kernels import LBM_D3Q19, SEVEN_POINT
from .model import (
    predict_7pt_gpu,
    predict_lbm_cpu,
)

__all__ = [
    "Stage",
    "breakdown_lbm_cpu",
    "breakdown_7pt_gpu",
    "MeasuredPhase",
    "measured_phases",
    "measured_breakdown",
]


@dataclass(frozen=True)
class Stage:
    """One bar of a breakdown figure."""

    name: str
    modeled_mups: float
    paper_mups: float
    mechanism: str

    @property
    def ratio(self) -> float:
        return self.modeled_mups / self.paper_mups if self.paper_mups else float("nan")


def breakdown_lbm_cpu(
    machine: MachineSpec = CORE_I7, cal: CpuCalibration = CPU_CAL
) -> list[Stage]:
    """Figure 5(a): LBM SP on the Core i7, cumulative optimizations."""
    kernel = LBM_D3Q19
    scalar_rate = machine.cores * machine.frequency_ghz * 1e9 * cal.scalar_ops_per_cycle
    stages = [
        Stage(
            "parallel scalar (no SSE)",
            scalar_rate / kernel.ops_per_update / 1e6,
            52,
            "compute bound on 4 scalar cores",
        ),
        Stage(
            "+ 4-wide SSE",
            predict_lbm_cpu("none", "sp", ilp=False).mupdates_per_s,
            87,
            "compute limit x4 but now bandwidth bound at ~21 GB/s",
        ),
        Stage(
            "+ spatial blocking",
            predict_lbm_cpu("spatial", "sp", ilp=False).mupdates_per_s,
            87,
            "no spatial reuse in LBM: no change",
        ),
        Stage(
            "4D blocking",
            predict_lbm_cpu("4d", "sp", ilp=False).mupdates_per_s,
            94,
            "temporal reuse but ~2X ghost recompute in 3 dimensions",
        ),
        Stage(
            "3.5D blocking",
            predict_lbm_cpu("35d", "sp", ilp=False).mupdates_per_s,
            157,
            "dim_T=3 traffic cut at kappa~1.21: compute bound",
        ),
        Stage(
            "+ ILP (unroll, prefetch)",
            predict_lbm_cpu("35d", "sp", ilp=True).mupdates_per_s,
            171,
            "software pipelining and loop unrolling",
        ),
    ]
    return stages


def breakdown_7pt_gpu(
    machine: MachineSpec = GTX_285, cal: GpuCalibration = GPU_CAL
) -> list[Stage]:
    """Figure 5(b): 7-point stencil SP on the GTX 285."""
    base_35d = predict_7pt_gpu("35d", "sp", ilp=False).mupdates_per_s
    return [
        Stage(
            "naive (no blocking)",
            predict_7pt_gpu("none", "sp").mupdates_per_s,
            3300,
            "no caches: every neighbor is a separate global load",
        ),
        Stage(
            "spatial blocking",
            predict_7pt_gpu("spatial", "sp").mupdates_per_s,
            9234,
            "shared-memory tiles, ~1 read/element (13% overestimation)",
        ),
        Stage(
            "4D blocking",
            predict_7pt_gpu("4d", "sp").mupdates_per_s,
            9700,
            "small 3D blocks -> high overestimation: only ~5% gain",
        ),
        Stage(
            "3.5D blocking",
            base_35d,
            13252,
            "register/shared 2.5D+T blocking, compute bound",
        ),
        Stage(
            "+ loop unrolling",
            base_35d * cal.unroll_boost,
            14345,
            "ILP within each thread",
        ),
        Stage(
            "+ amortize thread overheads",
            base_35d * cal.unroll_boost * cal.amortize_boost,
            17115,
            "multiple updates per thread: fewer index/branch instructions",
        ),
    ]


# ----------------------------------------------------------------------
@dataclass(frozen=True)
class MeasuredPhase:
    """One span name's aggregate over a traced run (perf_counter_ns based).

    ``self_ns`` excludes time attributed to nested child spans, so phase
    self-times are disjoint and sum to (at most) the traced wall time.
    """

    name: str
    count: int
    total_ns: int
    self_ns: int
    fraction: float  # of the summed self time across all phases

    @property
    def total_ms(self) -> float:
        return self.total_ns / 1e6

    @property
    def self_ms(self) -> float:
        return self.self_ns / 1e6


def measured_phases(events) -> list[MeasuredPhase]:
    """Aggregate recorded spans into per-phase times, largest self first."""
    from ..obs.export import aggregate_spans

    agg = aggregate_spans(events)
    total_self = sum(e["self_ns"] for e in agg.values()) or 1
    return [
        MeasuredPhase(
            name=name,
            count=int(e["count"]),
            total_ns=int(e["total_ns"]),
            self_ns=int(e["self_ns"]),
            fraction=e["self_ns"] / total_self,
        )
        for name, e in sorted(agg.items(), key=lambda kv: -kv[1]["self_ns"])
    ]


def measured_breakdown(executor, field, steps: int, traffic=None) -> list[MeasuredPhase]:
    """Run ``executor`` once under an armed tracer; return its phase times.

    Arms (and therefore resets) the global tracer for the duration of the
    run; the tracer is returned to its previous armed/disarmed state, but
    previously recorded spans are discarded.
    """
    from ..obs.trace import TRACE

    was_armed = TRACE.armed
    TRACE.arm()
    try:
        executor.run(field, steps, traffic)
        events = TRACE.events()
    finally:
        if not was_armed:
            TRACE.disarm()
    return measured_phases(events)
