"""The 7-point Jacobi stencil (paper Section IV-A1).

.. math::

   B_{x,y,z}(t+1) = \\alpha A_{x,y,z}(t) + \\beta \\bigl(A_{x\\pm1,y,z}(t)
                    + A_{x,y\\pm1,z}(t) + A_{x,y,z\\pm1}(t)\\bigr)

Per-update cost accounting (Section IV-A1): 16 ops — 2 multiplies, 6 adds,
7 loads, 1 store.  After spatial blocking the compulsory traffic is one read
of A and one write of B per point: 8 bytes SP, 16 bytes DP, so
:math:`\\gamma = 0.5` (SP) and :math:`1.0` (DP).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .base import PlaneKernel, validate_footprint

__all__ = ["SevenPointStencil"]


class SevenPointStencil(PlaneKernel):
    """Radius-1 7-point star stencil with coefficients alpha, beta."""

    radius = 1
    ncomp = 1
    # 2 mults + 6 adds + 7 loads + 1 store (Section IV-A1)
    ops_per_update = 16
    flops_per_update = 8

    def __init__(self, alpha: float = 0.4, beta: float = 0.1) -> None:
        self.alpha = alpha
        self.beta = beta

    def __repr__(self) -> str:
        return f"SevenPointStencil(alpha={self.alpha}, beta={self.beta})"

    def compute_plane(
        self,
        out: np.ndarray,
        src: Sequence[np.ndarray],
        yr: tuple[int, int],
        xr: tuple[int, int],
        gz: int = 0,
        gy0: int = 0,
        gx0: int = 0,
    ) -> None:
        validate_footprint(out.shape[1:], yr, xr, self.radius)
        below, mid, above = src[0][0], src[1][0], src[2][0]
        y0, y1 = yr
        x0, x1 = xr
        ys = slice(y0, y1)
        xs = slice(x0, x1)
        # Evaluate the exact expression of the reference sweep so every
        # blocking schedule is bit-identical to the naive result.  Opposite
        # neighbors are paired before accumulation: a single FP add of a
        # commuted pair is bitwise mirror-invariant, so reflections of the
        # grid produce bitwise reflections of the result — which makes the
        # symmetric (Neumann) padded boundary mode exact (docs/algorithms.md).
        acc = below[ys, xs] + above[ys, xs]
        acc += mid[slice(y0 - 1, y1 - 1), xs] + mid[slice(y0 + 1, y1 + 1), xs]
        acc += mid[ys, slice(x0 - 1, x1 - 1)] + mid[ys, slice(x0 + 1, x1 + 1)]
        dtype = out.dtype.type
        out[0, ys, xs] = dtype(self.alpha) * mid[ys, xs] + dtype(self.beta) * acc
