"""Tests for the MRT (multiple-relaxation-time) collision operator."""

import numpy as np
import pytest

from repro.core import run_3_5d, run_naive, run_naive_periodic
from repro.lbm import Lattice, collide_bgk, velocity
from repro.lbm.mrt import (
    MRTLBMKernel,
    collide_mrt,
    collision_matrix,
    moment_basis,
    relaxation_rates,
)


class TestMomentBasis:
    def test_orthonormal(self):
        M, _ = moment_basis()
        np.testing.assert_allclose(M @ M.T, np.eye(19), atol=1e-12)

    def test_group_counts(self):
        _, groups = moment_basis()
        counts = {g: groups.count(g) for g in set(groups)}
        assert counts == {"conserved": 4, "bulk": 1, "shear": 5, "ghost": 9}

    def test_conserved_rows_span_collision_invariants(self):
        """Rows tagged conserved span {1, z, y, x} on the velocity set."""
        from repro.lbm import VELOCITIES

        M, groups = moment_basis()
        conserved = M[[i for i, g in enumerate(groups) if g == "conserved"]]
        targets = np.stack(
            [np.ones(19)] + [VELOCITIES[:, a].astype(float) for a in range(3)]
        )
        # each target must be reconstructible from the conserved rows
        coeffs = conserved @ targets.T
        np.testing.assert_allclose(coeffs.T @ conserved, targets, atol=1e-12)

    def test_collision_matrix_symmetric(self):
        K = collision_matrix(tuple(relaxation_rates(1.2, 1.5, 1.9)))
        np.testing.assert_allclose(K, K.T, atol=1e-13)

    def test_rates_validation(self):
        with pytest.raises(ValueError):
            collision_matrix((1.0, 2.0))


class TestMRTCollision:
    def test_uniform_rates_equal_bgk(self):
        rng = np.random.default_rng(0)
        f = 0.02 + rng.random((19, 5, 5)) * 0.05
        for omega in (0.8, 1.0, 1.5):
            mrt = collide_mrt(f, relaxation_rates(omega, omega, omega))
            bgk = collide_bgk(f, omega)
            np.testing.assert_allclose(mrt, bgk, rtol=1e-9, atol=1e-14)

    def test_conserves_mass_and_momentum_any_rates(self):
        from repro.lbm import momentum

        rng = np.random.default_rng(1)
        f = 0.02 + rng.random((19, 4, 4)) * 0.05
        out = collide_mrt(f, relaxation_rates(1.3, 0.9, 1.95))
        np.testing.assert_allclose(out.sum(axis=0), f.sum(axis=0), rtol=1e-11)
        np.testing.assert_allclose(momentum(out), momentum(f), atol=1e-13)

    def test_equilibrium_fixed_point(self):
        from repro.lbm import equilibrium

        feq = equilibrium(np.full((3, 3), 1.1), np.full((3, 3, 3), 0.02))
        out = collide_mrt(feq, relaxation_rates(1.4, 1.0, 1.9))
        np.testing.assert_allclose(out, feq, atol=1e-13)

    def test_shape_independent(self):
        rng = np.random.default_rng(2)
        f = 0.02 + rng.random((19, 6, 6)) * 0.05
        rates = relaxation_rates(1.2, 1.4, 1.8)
        full = collide_mrt(f, rates)
        cell = collide_mrt(f[:, 2:3, 3:4], rates)
        assert np.array_equal(full[:, 2, 3], cell[:, 0, 0])


class TestMRTKernel:
    def test_blocked_matches_naive(self):
        rng = np.random.default_rng(3)
        lat = Lattice.from_moments(
            1 + 0.05 * rng.random((10, 10, 10)),
            0.02 * (rng.random((3, 10, 10, 10)) - 0.5),
        )
        k = MRTLBMKernel(lat.flags, s_nu=1.3, s_ghost=1.8)
        ref = run_naive(k, lat.f, 4)
        out = run_3_5d(k, lat.f, 4, 2, 8, 8, validate=True)
        assert np.array_equal(out.data, ref.data)

    def test_distributed_matches(self):
        from repro.distributed import DistributedJacobi

        rng = np.random.default_rng(4)
        lat = Lattice.from_moments(
            1 + 0.05 * rng.random((16, 8, 8)),
            0.02 * (rng.random((3, 16, 8, 8)) - 0.5),
        )
        k = MRTLBMKernel(lat.flags, s_nu=1.1, s_ghost=1.7)
        ref = run_naive(k, lat.f, 4)
        out, _ = DistributedJacobi(k, 2, dim_t=2).run(lat.f, 4)
        assert np.array_equal(out.data, ref.data)


class TestMRTPhysics:
    def measured_over_expected_decay(self, s_nu: float, s_ghost: float) -> float:
        n, steps, amp = 24, 40, 0.005
        z = np.arange(n)
        u = np.zeros((3, n, n, n))
        u[2] = amp * np.sin(2 * np.pi * z / n)[:, None, None]
        lat = Lattice.from_moments(np.ones((n, n, n)), u)
        k = MRTLBMKernel(lat.flags, s_nu=s_nu, s_ghost=s_ghost)
        out = run_naive_periodic(k, lat.f, steps)
        ux = velocity(out)[2]
        measured = np.abs(np.fft.fft(ux.mean(axis=(1, 2)))[1]) * 2 / n
        nu = (1 / s_nu - 0.5) / 3
        return measured / (amp * np.exp(-nu * (2 * np.pi / n) ** 2 * steps))

    def test_shear_rate_sets_viscosity(self):
        assert self.measured_over_expected_decay(1.2, 1.9) == pytest.approx(1.0, abs=0.02)

    def test_ghost_rates_do_not_affect_viscosity(self):
        """The MRT selling point: ghost damping is hydrodynamically inert."""
        a = self.measured_over_expected_decay(1.2, 1.9)
        b = self.measured_over_expected_decay(1.2, 0.7)
        assert a == pytest.approx(b, abs=0.01)

    def test_mrt_more_stable_than_bgk_at_low_viscosity(self):
        """Under-resolved low-viscosity flow: hard ghost damping keeps MRT
        bounded where plain BGK develops larger spurious oscillations."""
        from repro.lbm import density, make_kernel

        n, s_nu = 12, 1.98  # nu ~ 1.7e-3: aggressively low
        rng = np.random.default_rng(5)
        u = 0.08 * (rng.random((3, n, n, n)) - 0.5)  # rough initial field
        lat = Lattice.from_moments(np.ones((n, n, n)), u)
        bgk = make_kernel(lat, omega=s_nu)
        mrt = MRTLBMKernel(lat.flags, s_nu=s_nu, s_bulk=1.2, s_ghost=1.2)
        out_bgk = run_naive_periodic(bgk, lat.f, 30)
        out_mrt = run_naive_periodic(mrt, lat.f, 30)
        dev_bgk = np.abs(density(out_bgk) - 1.0).max()
        dev_mrt = np.abs(density(out_mrt) - 1.0).max()
        assert np.isfinite(out_mrt.data).all()
        assert dev_mrt < dev_bgk
