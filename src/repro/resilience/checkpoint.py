"""Atomic checkpoint/restart for long sweeps.

A blocked sweep's only state between rounds is the grid itself plus the
number of steps already applied, so a checkpoint is exactly that: the field
data and a step counter (plus free-form metadata so a resume can refuse a
snapshot taken by a different experiment).  Snapshots are written with the
same crash-safety discipline as the tuning cache — serialize to a temporary
file in the same directory, then ``os.replace`` — so a crash mid-write can
never destroy the previous good snapshot, and a truncated file found at
load time is quarantined (renamed to ``*.corrupt``), never trusted.

Restart is bit-exact: re-running the remaining rounds from a snapshot
produces the same bits as the uninterrupted run, because each round reads
only the full grid state of the previous one (the test suite asserts this).

Snapshots are **versioned and self-describing**: ``save`` stamps a
``schema_version`` plus the grid's shape and dtype alongside the caller's
metadata, and ``load`` validates all three — an unknown version, an
internally inconsistent snapshot, or a geometry/dtype change between write
and resume (``expected_shape``/``expected_dtype``) raises a clear
:class:`CheckpointError` up front instead of surfacing later as a numpy
broadcast error halfway into the resumed sweep.
"""

from __future__ import annotations

import hashlib
import json
import os
import zipfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from .faultinject import FAULTS, ResilienceError
from .quarantine import quarantine

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "Checkpoint",
    "CheckpointError",
    "CheckpointStore",
]

#: version stamped into every snapshot; bumped on layout changes
#: (v2: a sha256 content digest of the grid payload joined the stamp, so
#: bitrot between write and restore is refused instead of trusted)
CHECKPOINT_SCHEMA_VERSION = 2

#: reserved key carrying the schema stamp inside the stored metadata JSON
_SCHEMA_KEY = "_checkpoint"


class CheckpointError(ResilienceError):
    """A snapshot could not be written, or a resume was inconsistent."""


@dataclass
class Checkpoint:
    """One loaded snapshot: grid data, steps already applied, metadata."""

    data: np.ndarray  # (ncomp, nz, ny, nx), as Field3D stores it
    step: int
    meta: dict = field(default_factory=dict)
    schema_version: int = CHECKPOINT_SCHEMA_VERSION


class CheckpointStore:
    """Atomic on-disk snapshots of (grid, step index) at a fixed path."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.exists()

    def save(self, data: np.ndarray, step: int, meta: dict | None = None) -> None:
        """Atomically replace the snapshot with (``data``, ``step``).

        The stored metadata is stamped with the schema version and the
        grid's shape/dtype so :meth:`load` can refuse a stale or foreign
        snapshot with a typed error.
        """
        payload = np.ascontiguousarray(data)
        meta_doc = dict(meta or {})
        meta_doc[_SCHEMA_KEY] = {
            "schema_version": CHECKPOINT_SCHEMA_VERSION,
            "shape": list(data.shape),
            "dtype": str(data.dtype),
            "sha256": hashlib.sha256(payload).hexdigest(),
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(self.path.name + ".tmp")
        try:
            with open(tmp, "wb") as fh:
                np.savez(
                    fh,
                    data=payload,
                    step=np.int64(step),
                    meta=np.frombuffer(
                        json.dumps(meta_doc).encode(), dtype=np.uint8
                    ),
                )
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
        except OSError as exc:
            raise CheckpointError(
                f"cannot write checkpoint {self.path}: {exc}"
            ) from exc
        if FAULTS.should("disk.bitrot", self.path.name):
            # the persisted payload rots *after* the fsync: the next load
            # must refuse the snapshot via its content digest
            from .sdc import rot_file

            rot_file(self.path)

    def load(
        self,
        expected_shape: tuple[int, ...] | None = None,
        expected_dtype=None,
    ) -> Checkpoint | None:
        """The stored snapshot, or ``None`` (missing or quarantined-corrupt).

        A readable snapshot is *validated* before it is trusted:

        * it must carry a known ``schema_version`` stamp (a pre-versioning
          or future-version snapshot raises :class:`CheckpointError`);
        * the stamped shape/dtype must match the stored payload (an
          inconsistent snapshot raises rather than resuming garbage);
        * when the caller states what geometry it is about to resume
          (``expected_shape``/``expected_dtype``), a mismatch raises a
          clear :class:`CheckpointError` instead of letting the geometry
          change surface as a numpy broadcast error mid-resume.
        """
        try:
            with np.load(self.path, allow_pickle=False) as npz:
                data = npz["data"]
                step = int(npz["step"])
                meta = json.loads(bytes(npz["meta"]).decode() or "{}")
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, EOFError, zipfile.BadZipFile):
            self._quarantine()
            return None
        if data.ndim != 4 or step < 0 or not isinstance(meta, dict):
            self._quarantine()
            return None
        stamp = meta.pop(_SCHEMA_KEY, None)
        if not isinstance(stamp, dict) or "schema_version" not in stamp:
            raise CheckpointError(
                f"checkpoint {self.path} carries no schema_version stamp "
                "(written by a pre-versioning build?); refusing to resume "
                "from it — delete the file to start fresh"
            )
        version = stamp["schema_version"]
        if version != CHECKPOINT_SCHEMA_VERSION:
            raise CheckpointError(
                f"checkpoint {self.path} has schema_version {version}; this "
                f"build reads version {CHECKPOINT_SCHEMA_VERSION} — delete "
                "the file or load it with a matching build"
            )
        if (
            list(stamp.get("shape", [])) != list(data.shape)
            or str(stamp.get("dtype", "")) != str(data.dtype)
        ):
            raise CheckpointError(
                f"checkpoint {self.path} is internally inconsistent: stamped "
                f"{stamp.get('shape')}/{stamp.get('dtype')} but stores "
                f"{list(data.shape)}/{data.dtype}"
            )
        digest = hashlib.sha256(np.ascontiguousarray(data)).hexdigest()
        if digest != stamp.get("sha256"):
            # bitrot between write and restore: quarantine the evidence and
            # refuse loudly — silently resuming corrupted state would seed
            # every subsequent round with wrong bits
            self._quarantine()
            raise CheckpointError(
                f"checkpoint {self.path} failed its content digest "
                f"(stored {str(stamp.get('sha256'))[:12]}..., recomputed "
                f"{digest[:12]}...); the payload rotted on disk — the file "
                "was quarantined, restart from an earlier state"
            )
        if expected_shape is not None and tuple(expected_shape) != data.shape:
            raise CheckpointError(
                f"checkpoint {self.path} holds a grid of shape "
                f"{data.shape}, but this run uses {tuple(expected_shape)} — "
                "the geometry changed since the snapshot was written"
            )
        if expected_dtype is not None and np.dtype(expected_dtype) != data.dtype:
            raise CheckpointError(
                f"checkpoint {self.path} holds dtype {data.dtype}, but this "
                f"run uses {np.dtype(expected_dtype)} — the precision "
                "changed since the snapshot was written"
            )
        return Checkpoint(data=data, step=step, meta=meta,
                          schema_version=version)

    def _quarantine(self) -> None:
        """Move a corrupt snapshot aside (``*.corrupt``) instead of trusting it.

        Quarantined names are unique and the directory is GC'd to the
        ``$REPRO_CORRUPT_KEEP`` retention cap (see
        :mod:`repro.resilience.quarantine`).
        """
        quarantine(self.path)

    def clear(self) -> None:
        """Delete the snapshot (end of a completed run)."""
        try:
            self.path.unlink()
        except OSError:
            pass
