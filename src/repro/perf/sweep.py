"""Structured sweep data and CSV export for the reproduced figures.

Collects every Figure-4 series and Figure-5 breakdown into flat records —
the form a downstream analysis or plotting pipeline wants — and writes them
as CSV (stdlib only).  ``examples/export_results.py`` uses this to emit the
complete reproduction dataset.
"""

from __future__ import annotations

import csv
import io
from collections.abc import Iterable, Mapping
from dataclasses import asdict

from .breakdown import breakdown_7pt_gpu, breakdown_lbm_cpu
from .comparisons import section_viid_comparisons
from .model import (
    predict_7pt_cpu,
    predict_7pt_gpu,
    predict_lbm_cpu,
    predict_lbm_gpu,
)

__all__ = [
    "figure4_records",
    "figure5_records",
    "comparison_records",
    "all_records",
    "to_csv",
]

_PAPER_ANCHORS = {
    # (kernel, platform, precision, scheme, grid) -> paper-reported MU/s
    ("lbm", "cpu", "sp", "none", 256): 87,
    ("lbm", "cpu", "sp", "35d", 256): 171,
    ("lbm", "cpu", "dp", "35d", 256): 80,
    ("7pt", "cpu", "sp", "none", 256): 2600,
    ("7pt", "cpu", "sp", "35d", 256): 3900,
    ("7pt", "cpu", "dp", "35d", 256): 1995,
    ("7pt", "gpu", "sp", "none", 256): 3300,
    ("7pt", "gpu", "sp", "spatial", 256): 9234,
    ("7pt", "gpu", "sp", "35d", 256): 17115,
    ("7pt", "gpu", "dp", "spatial", 256): 4600,
    ("lbm", "gpu", "sp", "none", 256): 485,
}


def figure4_records() -> list[dict]:
    """All Figure 4 model points as flat dicts, with paper anchors attached."""
    records: list[dict] = []
    specs = [
        (predict_lbm_cpu, ("none", "temporal", "35d"), (64, 256, 512)),
        (predict_7pt_cpu, ("none", "spatial", "35d"), (64, 256, 512)),
        (predict_7pt_gpu, ("none", "spatial", "35d"), (256,)),
        (predict_lbm_gpu, ("none", "35d"), (256,)),
    ]
    for predict, schemes, grids in specs:
        for precision in ("sp", "dp"):
            for grid in grids:
                for scheme in schemes:
                    est = predict(scheme, precision, grid)
                    rec = asdict(est)
                    key = (est.kernel, est.platform, precision, scheme, grid)
                    rec["paper_mupdates_per_s"] = _PAPER_ANCHORS.get(key, "")
                    records.append(rec)
    return records


def figure5_records() -> list[dict]:
    """Figure 5(a)/(b) breakdown stages as flat dicts."""
    records = []
    for figure, stages in (
        ("5a_lbm_cpu", breakdown_lbm_cpu()),
        ("5b_7pt_gpu", breakdown_7pt_gpu()),
    ):
        for i, s in enumerate(stages):
            records.append(
                {
                    "figure": figure,
                    "stage_index": i,
                    "stage": s.name,
                    "model_mups": s.modeled_mups,
                    "paper_mups": s.paper_mups,
                    "ratio": s.ratio,
                    "mechanism": s.mechanism,
                }
            )
    return records


def comparison_records() -> list[dict]:
    """Section VII-D comparison rows as flat dicts."""
    return [
        {
            "comparison": c.label,
            "prior_raw": c.prior_raw,
            "prior_normalized": c.prior_normalized,
            "ours_modeled": c.ours_modeled,
            "modeled_speedup": c.modeled_speedup,
            "paper_speedup": c.paper_speedup,
            "normalization": c.normalization,
        }
        for c in section_viid_comparisons()
    ]


def all_records() -> dict[str, list[dict]]:
    """Every reproduced dataset, keyed by artifact name."""
    return {
        "figure4": figure4_records(),
        "figure5": figure5_records(),
        "comparisons": comparison_records(),
    }


def to_csv(records: Iterable[Mapping]) -> str:
    """Render records (dicts with a common key set) as a CSV string."""
    records = list(records)
    if not records:
        return ""
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=list(records[0].keys()))
    writer.writeheader()
    writer.writerows(records)
    return buf.getvalue()
