"""Standalone (unfused) streaming steps — references for testing the kernel.

The production path fuses streaming with collision in
:class:`~repro.lbm.kernel.LBMKernel`; this module provides streaming on its
own in both formulations so tests can cross-check them:

* :func:`stream_pull` — gather: ``f_i'(x) = f_i(x - c_i)``, with half-way
  bounce-back off solid source neighbors.  This matches the fused kernel's
  propagation stage.
* :func:`stream_push` — scatter: push each cell's ``f_i`` to its ``+ c_i``
  neighbor, the formulation the paper describes ("Propagate the 19 new
  values to 18 neighboring sites and the local site", Section IV-B).

On an all-fluid interior the two are exactly equivalent; the test suite
asserts it.  Both update only the interior and leave the boundary shell and
solid cells unchanged, consistent with the blocking framework's fixed-shell
convention.
"""

from __future__ import annotations

import numpy as np

from ..stencils.grid import Field3D
from .d3q19 import N_DIRECTIONS, OPPOSITE, VELOCITIES
from .lattice import CellType

__all__ = ["stream_pull", "stream_push"]


def stream_pull(f: Field3D, flags: np.ndarray) -> Field3D:
    """Gather-streaming of the interior with bounce-back at solids."""
    out = f.copy()
    nz, ny, nx = f.shape
    solid = flags == CellType.SOLID
    for i in range(N_DIRECTIONS):
        cz, cy, cx = VELOCITIES[i]
        src = f.data[
            i, 1 - cz : nz - 1 - cz, 1 - cy : ny - 1 - cy, 1 - cx : nx - 1 - cx
        ]
        gathered = src.copy()
        nbr_solid = solid[
            1 - cz : nz - 1 - cz, 1 - cy : ny - 1 - cy, 1 - cx : nx - 1 - cx
        ]
        if nbr_solid.any():
            own_opposite = f.data[OPPOSITE[i], 1:-1, 1:-1, 1:-1]
            gathered[nbr_solid] = own_opposite[nbr_solid]
        out.data[i, 1:-1, 1:-1, 1:-1] = gathered
    own_solid = solid[1:-1, 1:-1, 1:-1]
    if own_solid.any():
        out.data[:, 1:-1, 1:-1, 1:-1][:, own_solid] = f.data[
            :, 1:-1, 1:-1, 1:-1
        ][:, own_solid]
    return out


def stream_push(f: Field3D, flags: np.ndarray) -> Field3D:
    """Scatter-streaming of the interior (no bounce-back; all-fluid use).

    Every interior destination cell whose source ``x - c_i`` is also inside
    the grid receives that value; destinations fed from the boundary shell
    take the shell's (constant) value, mirroring the pull formulation.
    """
    out = f.copy()
    nz, ny, nx = f.shape
    for i in range(N_DIRECTIONS):
        cz, cy, cx = VELOCITIES[i]
        # scatter: source region s maps onto destination region s + c_i;
        # restrict the destination to the interior.
        dz0, dy0, dx0 = 1, 1, 1
        dz1, dy1, dx1 = nz - 1, ny - 1, nx - 1
        out.data[i, dz0:dz1, dy0:dy1, dx0:dx1] = f.data[
            i, dz0 - cz : dz1 - cz, dy0 - cy : dy1 - cy, dx0 - cx : dx1 - cx
        ]
    solid = flags == CellType.SOLID
    own_solid = solid[1:-1, 1:-1, 1:-1]
    if own_solid.any():
        out.data[:, 1:-1, 1:-1, 1:-1][:, own_solid] = f.data[
            :, 1:-1, 1:-1, 1:-1
        ][:, own_solid]
    return out
