"""Traffic-accounting integration tests: measured κ vs the analytic formulas."""

import numpy as np
import pytest

from repro.core import (
    Blocking35D,
    TrafficStats,
    kappa_35d,
    run_2_5d,
    run_3_5d,
    run_3d,
    run_4d,
    run_naive,
)
from repro.stencils import Field3D, SevenPointStencil, interior_points


def ideal_round_bytes(field: Field3D, radius: int) -> int:
    """Compulsory traffic for one blocked round: read grid once, write interior."""
    nz, ny, nx = field.shape
    esize = field.element_size()
    return nz * ny * nx * esize + interior_points(field.shape, radius) * esize


@pytest.fixture(scope="module")
def seven():
    return SevenPointStencil()


class TestNaiveTraffic:
    def test_per_sweep_traffic(self, seven):
        f = Field3D.random((10, 12, 14), seed=0)
        t = TrafficStats()
        run_naive(seven, f, 3, traffic=t)
        esize = f.element_size()
        assert t.bytes_read == 3 * 10 * 12 * 14 * esize
        assert t.bytes_written == 3 * interior_points(f.shape, 1) * esize
        assert t.updates == 3 * interior_points(f.shape, 1)
        assert t.ops == t.updates * 16


class Test35DTraffic:
    def test_single_tile_has_no_ghost_traffic(self, seven):
        """A tile covering the whole plane loads each plane exactly once."""
        f = Field3D.random((16, 12, 12), seed=1)
        t = TrafficStats()
        run_3_5d(seven, f, 2, 2, 64, 64, traffic=t)
        esize = f.element_size()
        assert t.bytes_read == 16 * 12 * 12 * esize
        assert t.bytes_written == interior_points(f.shape, 1) * esize

    def test_bandwidth_reduction_vs_naive(self, seven):
        """dim_T steps per round cut traffic by ~dim_T/κ vs naive (Sec. V-E)."""
        f = Field3D.random((24, 40, 40), seed=2)
        naive_t = TrafficStats()
        run_naive(seven, f, 4, traffic=naive_t)
        blocked_t = TrafficStats()
        run_3_5d(seven, f, 4, 4, 40, 40, traffic=blocked_t)
        ratio = naive_t.total_bytes / blocked_t.total_bytes
        assert ratio > 3.5  # ~4X for dim_T=4 with a single (ghost-free) tile

    def test_measured_kappa_matches_analytic(self, seven):
        """With interior tiles, measured traffic inflation approaches Eq. 2."""
        f = Field3D.random((20, 130, 130), seed=3)
        dim_t, tile = 2, 32
        t = TrafficStats()
        run_3_5d(seven, f, dim_t, dim_t, tile, tile, traffic=t)
        measured = t.kappa_measured(ideal_round_bytes(f, 1))
        analytic = kappa_35d(1, dim_t, tile)
        # Edge tiles need less halo, z-shell reloads add a little; stay close.
        assert measured == pytest.approx(analytic, rel=0.15)

    def test_compute_overestimation_measured(self, seven):
        """Redundant ghost recomputation shows up in the update counter."""
        f = Field3D.random((16, 66, 66), seed=4)
        t = TrafficStats()
        run_3_5d(seven, f, 3, 3, 22, 22, traffic=t)
        ideal_updates = 3 * interior_points(f.shape, 1)
        assert t.updates > ideal_updates
        assert t.updates / ideal_updates < kappa_35d(1, 3, 22) * 1.1

    def test_notes_record_tiling(self, seven):
        f = Field3D.random((12, 40, 40), seed=5)
        t = TrafficStats()
        run_3_5d(seven, f, 2, 2, 20, 20, traffic=t)
        assert t.notes["tiles_per_round"] >= 4
        assert t.notes["dim_t"] == 2

    def test_buffer_bytes_equation1(self, seven):
        ex = Blocking35D(seven, dim_t=2, tile_y=360, tile_x=360)
        # E(2R+2) dim_T dim_X dim_Y = 4*4*2*360*360 ~ 4 MB (Section VI-A)
        assert ex.buffer_bytes(np.float32) == 4 * 4 * 2 * 360 * 360
        assert ex.buffer_bytes(np.float32) <= 4 << 20


class TestSchemeTrafficOrdering:
    """2.5D < 3D ghost traffic; 3.5D << per-step traffic of spatial-only."""

    def test_25d_loads_less_than_3d(self, seven):
        f = Field3D.random((24, 48, 48), seed=6)
        t3, t25 = TrafficStats(), TrafficStats()
        run_3d(seven, f, 1, 12, 12, 12, traffic=t3)
        run_2_5d(seven, f, 1, 12, 12, traffic=t25)
        assert t25.bytes_read < t3.bytes_read

    def test_4d_recomputes_more_than_35d(self, seven):
        f = Field3D.random((24, 48, 48), seed=7)
        t4, t35 = TrafficStats(), TrafficStats()
        run_4d(seven, f, 2, 2, 16, 16, 16, traffic=t4)
        run_3_5d(seven, f, 2, 2, 16, 16, traffic=t35)
        assert t4.updates > t35.updates
        assert t4.bytes_read > t35.bytes_read

    def test_25d_traffic_equals_35d_at_dim_t_1(self, seven):
        f = Field3D.random((16, 30, 30), seed=8)
        t25, t35 = TrafficStats(), TrafficStats()
        run_2_5d(seven, f, 2, 15, 15, traffic=t25)
        run_3_5d(seven, f, 2, 1, 15, 15, concurrent=False, traffic=t35)
        assert t25.updates == t35.updates
        assert t25.bytes_written == t35.bytes_written
