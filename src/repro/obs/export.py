"""Exporters: chrome-trace JSON, metrics JSON, span aggregation.

``chrome_trace`` emits the Trace Event Format ("X" complete events plus
"M" thread-name metadata) that chrome://tracing and Perfetto's legacy
JSON importer load directly; ``metrics_document`` emits the flat
metrics/validation JSON that the benchmarks embed in their BENCH files.
Both documents carry a ``schema`` tag validated by
:mod:`repro.obs.schema` in CI.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Iterable

from .metrics import METRICS, MetricsRegistry
from .trace import TRACE, SpanRecord, SpanTracer

__all__ = [
    "TRACE_SCHEMA_ID",
    "METRICS_SCHEMA_ID",
    "SPAN_PHASES",
    "chrome_trace",
    "write_chrome_trace",
    "metrics_document",
    "write_metrics",
    "aggregate_spans",
    "summarize_trace",
]

TRACE_SCHEMA_ID = "repro.trace/v1"
METRICS_SCHEMA_ID = "repro.metrics/v1"

#: span name -> phase family, so ``repro trace`` can roll a mixed trace up
#: into meaningful groups instead of dumping serve/job spans into "other"
SPAN_PHASES: dict[str, str] = {
    # executor phases
    "sweep": "compute", "round": "compute", "tile": "compute",
    "z_iter": "compute", "codegen_round": "compute",
    # threaded runtime
    "spmd": "parallel",
    # resilience
    "guarded_run": "resilience", "guard_round": "resilience",
    # distributed
    "halo_exchange": "distributed", "rank_compute": "distributed",
    "halo_wait": "distributed", "rank_recovery": "distributed",
    # serving: the per-job lifecycle spans minted by repro submit / the
    # serve daemon (trace_id-stamped), plus the daemon-side job wrapper
    "job_submit": "serving", "job_admit": "serving",
    "job_queue_wait": "serving", "job_run": "serving",
    "job_round": "serving", "job_respond": "serving",
    "serve_job": "serving",
}


def chrome_trace(
    events: Iterable[SpanRecord] | None = None,
    *,
    tracer: SpanTracer | None = None,
    pid: int = 1,
) -> dict[str, Any]:
    """Build a chrome trace_event document from recorded spans.

    Thread idents are remapped to small stable tids (0 = first thread
    seen, usually the main thread) so Perfetto's track names stay
    readable.
    """
    if events is None:
        events = (tracer or TRACE).events()
    events = list(events)
    names = (tracer or TRACE).thread_names()

    tid_map: dict[int, int] = {}
    trace_events: list[dict[str, Any]] = []
    for rec in events:
        tid = tid_map.setdefault(rec.tid, len(tid_map))
        ev: dict[str, Any] = {
            "name": rec.name,
            "cat": "repro",
            "ph": "X",
            "ts": rec.start_ns / 1000.0,
            "dur": rec.dur_ns / 1000.0,
            "pid": pid,
            "tid": tid,
        }
        if rec.attrs:
            ev["args"] = {k: _jsonable(v) for k, v in rec.attrs.items()}
        trace_events.append(ev)
    meta = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": names.get(ident, f"thread-{tid}")},
        }
        for ident, tid in tid_map.items()
    ]
    return {
        "schema": TRACE_SCHEMA_ID,
        "displayTimeUnit": "ms",
        "traceEvents": meta + trace_events,
        "otherData": {
            "generator": "repro.obs",
            "dropped_spans": (tracer or TRACE).dropped(),
        },
    }


def _jsonable(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


def write_chrome_trace(path: str, *, tracer: SpanTracer | None = None) -> dict[str, Any]:
    doc = chrome_trace(tracer=tracer)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)
        fh.write("\n")
    dropped = doc.get("otherData", {}).get("dropped_spans", 0)
    if dropped:
        print(
            f"warning: {path}: {dropped} span(s) dropped (tracer ring "
            "buffer wrapped); re-arm with a larger capacity for a "
            "complete trace",
            file=sys.stderr,
        )
    return doc


def metrics_document(
    metrics: MetricsRegistry | None = None,
    *,
    validation: Any = None,
    run: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Flat metrics JSON; ``validation`` may be a ModelValidation."""
    doc: dict[str, Any] = {"schema": METRICS_SCHEMA_ID}
    doc.update((metrics or METRICS).to_dict())
    # trace loss is a metrics fact too: silently truncated spans would
    # make every span-derived number quietly wrong, so the counter is
    # always present once spans have been dropped
    dropped = TRACE.dropped()
    if dropped:
        doc.setdefault("counters", {})["obs.dropped_spans"] = dropped
    if run:
        doc["run"] = run
    if validation is not None:
        doc["validation"] = (
            validation.to_dict() if hasattr(validation, "to_dict") else validation
        )
    return doc


def write_metrics(
    path: str,
    metrics: MetricsRegistry | None = None,
    *,
    validation: Any = None,
    run: dict[str, Any] | None = None,
) -> dict[str, Any]:
    doc = metrics_document(metrics, validation=validation, run=run)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=2)
        fh.write("\n")
    return doc


# ----------------------------------------------------------------------
def aggregate_spans(
    events: Iterable[SpanRecord],
) -> dict[str, dict[str, float]]:
    """Per-span-name totals: count, total wall ns, and *self* ns.

    Self time subtracts every directly-nested child interval from its
    parent, per thread, so the per-phase numbers sum to at most the
    sweep wall time instead of double-counting nesting levels.
    """
    agg: dict[str, dict[str, float]] = {}
    by_tid: dict[int, list[SpanRecord]] = {}
    for rec in events:
        by_tid.setdefault(rec.tid, []).append(rec)

    for recs in by_tid.values():
        recs.sort(key=lambda r: (r.start_ns, -r.dur_ns))
        stack: list[tuple[int, dict[str, float]]] = []  # (end_ns, entry)
        for rec in recs:
            entry = agg.setdefault(
                rec.name, {"count": 0, "total_ns": 0, "self_ns": 0})
            entry["count"] += 1
            entry["total_ns"] += rec.dur_ns
            entry["self_ns"] += rec.dur_ns
            while stack and rec.start_ns >= stack[-1][0]:
                stack.pop()
            if stack:
                stack[-1][1]["self_ns"] -= rec.dur_ns
            stack.append((rec.end_ns, entry))
    return agg


def summarize_trace(doc: dict[str, Any]) -> list[str]:
    """Human summary of a chrome-trace document (for ``repro trace``)."""
    spans = [ev for ev in doc.get("traceEvents", []) if ev.get("ph") == "X"]
    if not spans:
        return ["trace contains no spans"]
    # rebuild SpanRecords from the document (µs -> ns) for aggregation
    recs = [
        SpanRecord(
            name=ev["name"],
            tid=ev.get("tid", 0),
            thread_name=str(ev.get("tid", 0)),
            start_ns=int(ev["ts"] * 1000),
            dur_ns=int(ev.get("dur", 0) * 1000),
            depth=0,
            attrs=ev.get("args", {}),
        )
        for ev in spans
    ]
    agg = aggregate_spans(recs)
    t0 = min(r.start_ns for r in recs)
    t1 = max(r.end_ns for r in recs)
    wall_ms = (t1 - t0) / 1e6
    threads = len({r.tid for r in recs})
    lines = [
        f"{len(recs)} spans on {threads} thread(s), {wall_ms:.2f} ms wall",
        f"{'span':<16} {'count':>8} {'total ms':>10} {'self ms':>10} {'self %':>7}",
    ]
    total_self = sum(e["self_ns"] for e in agg.values()) or 1
    for name, entry in sorted(
            agg.items(), key=lambda kv: -kv[1]["self_ns"]):
        lines.append(
            f"{name:<16} {int(entry['count']):>8} "
            f"{entry['total_ns'] / 1e6:>10.2f} "
            f"{entry['self_ns'] / 1e6:>10.2f} "
            f"{100 * entry['self_ns'] / total_self:>6.1f}%"
        )
    # phase-family rollup: compute/parallel/distributed/resilience/serving
    # (a traced daemon run gets attributed lines, not one "other" bucket)
    phases: dict[str, float] = {}
    for name, entry in agg.items():
        phases.setdefault(SPAN_PHASES.get(name, "other"), 0.0)
        phases[SPAN_PHASES.get(name, "other")] += entry["self_ns"]
    if len(phases) > 1 or "other" not in phases:
        lines.append("by phase:")
        for phase, self_ns in sorted(phases.items(), key=lambda kv: -kv[1]):
            lines.append(
                f"  {phase:<14} {self_ns / 1e6:>10.2f} ms "
                f"{100 * self_ns / total_self:>6.1f}%"
            )
    dropped = doc.get("otherData", {}).get("dropped_spans", 0)
    if dropped:
        lines.append(f"warning: {dropped} spans dropped (ring buffer wrapped)")
    return lines
