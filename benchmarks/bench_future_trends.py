"""Section VIII (Discussion): architecture-trend projections.

The machine specs are data, so the Discussion section's qualitative claims
become parameter sweeps:

* falling bandwidth-to-compute ratio Γ -> larger required dim_T -> larger
  cache needed to keep κ in check;
* Fermi-class shared memory ("an order of magnitude larger cache") makes
  LBM SP blocking feasible on GPU;
* rising GPU DP compute eventually makes DP stencils bandwidth bound,
  requiring 3.5D blocking for DP too.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.core import tune
from repro.gpu import GTX285_SM, plan_lbm_gpu
from repro.machine import CORE_I7, GTX_285, is_bandwidth_bound, scaled_machine
from repro.perf import format_table
from repro.stencils import SevenPointStencil

from .conftest import banner, record


def test_falling_gamma_needs_larger_dim_t(benchmark):
    """Westmere-and-beyond: compute grows, bandwidth lags -> dim_T rises."""
    kernel = SevenPointStencil()

    def sweep():
        rows = []
        for scale in (1, 2, 4, 8):
            m = scaled_machine(CORE_I7, compute_scale=scale)
            t = tune(kernel, m, np.float32, derated=False)
            rows.append((scale, t.params.dim_t, round(t.params.kappa, 3)))
        return rows

    rows = benchmark(sweep)
    print(banner("Section VIII: dim_T vs compute growth (7pt SP, 4 MB cache)"))
    print(format_table(["compute scale", "dim_T", "kappa"], rows))
    dim_ts = [r[1] for r in rows]
    kappas = [r[2] for r in rows]
    assert dim_ts == sorted(dim_ts) and dim_ts[-1] > dim_ts[0]
    assert kappas[-1] > kappas[0]  # "requires a proportionately larger cache"
    record(benchmark, dim_t_at_8x=dim_ts[-1])


def test_larger_cache_restores_overhead(benchmark):
    """The fix for rising κ: scale the cache with dim_T."""
    kernel = SevenPointStencil()
    fast = scaled_machine(CORE_I7, compute_scale=4.0)

    def sweep():
        return [
            tune(
                kernel,
                scaled_machine(fast, capacity_scale=c),
                np.float32,
                derated=False,
            ).params.kappa
            for c in (1, 2, 4, 8)
        ]

    kappas = benchmark(sweep)
    print(banner("kappa vs cache scale at 4X compute"))
    for c, k in zip((1, 2, 4, 8), kappas):
        print(f"cache x{c}: kappa = {k:.3f}")
    assert kappas == sorted(kappas, reverse=True)


def test_fermi_class_cache_enables_lbm_gpu(benchmark):
    """'kernels like LBM SP should benefit from our blocking algorithm.'"""

    def sweep():
        out = []
        for kb in (16, 48, 64, 128, 256):
            sm = replace(GTX285_SM, shared_mem_bytes=kb << 10)
            out.append((kb, plan_lbm_gpu("sp", sm=sm).feasible))
        return out

    rows = benchmark(sweep)
    print(banner("LBM SP GPU blocking feasibility vs shared-memory size"))
    for kb, ok in rows:
        print(f"{kb:4d} KB shared memory: {'feasible' if ok else 'infeasible'}")
    by_kb = dict(rows)
    assert not by_kb[16]  # GTX 285 (the paper's conclusion)
    assert by_kb[256]  # an order of magnitude more: feasible
    record(benchmark, min_feasible_kb=min(kb for kb, ok in rows if ok))


def test_gpu_dp_growth_makes_dp_bandwidth_bound(benchmark):
    """'we believe 3.5D blocking would be required for DP stencil kernels
    on GPU too' — once Fermi-class DP compute arrives."""

    def check():
        now = is_bandwidth_bound(GTX_285, "dp", 1.0, derated=True)
        fermi_ish = scaled_machine(GTX_285, compute_scale=4.0)  # DP x4
        future = is_bandwidth_bound(fermi_ish, "dp", 1.0, derated=True)
        return now, future

    now, future = benchmark(check)
    print(f"\n7pt DP on GTX 285: {'BW bound' if now else 'compute bound'}; "
          f"on 4X-DP future GPU: {'BW bound' if future else 'compute bound'}")
    assert not now
    assert future
