"""BGK collision operator and equilibrium distributions.

The single-relaxation-time (BGK) collision relaxes the distributions toward
the discrete Maxwell-Boltzmann equilibrium:

.. math::

   f_i^{eq} = w_i \\rho \\bigl(1 + 3 (c_i \\cdot u) + 4.5 (c_i \\cdot u)^2
              - 1.5 u^2\\bigr)

   f_i' = f_i - \\omega (f_i - f_i^{eq})

The paper's op accounting for a D3Q19 cell update is 259 ops — about 12
flops per direction (220 total) plus 20 reads and 19 writes (Section IV-B).

All functions are vectorized over trailing spatial axes, matching the
structure-of-arrays layout the paper requires for SIMD (Section III-B).
"""

from __future__ import annotations

import numpy as np

from .d3q19 import N_DIRECTIONS, VELOCITIES, WEIGHTS

__all__ = ["equilibrium", "collide_bgk", "OPS_PER_UPDATE", "FLOPS_PER_UPDATE"]

#: Section IV-B: 220 flops + 20 reads + 19 writes
OPS_PER_UPDATE = 259
FLOPS_PER_UPDATE = 220


def equilibrium(rho: np.ndarray, u: np.ndarray) -> np.ndarray:
    """Equilibrium distributions for density ``rho`` and velocity ``u``.

    Parameters
    ----------
    rho:
        Density, shape ``S`` (any trailing spatial shape).
    u:
        Velocity, shape ``(3,) + S`` ordered (uz, uy, ux).

    Returns
    -------
    Array of shape ``(19,) + S``.
    """
    rho = np.asarray(rho)
    u = np.asarray(u)
    dtype = np.result_type(rho, u)
    one5 = dtype.type(1.5)
    three = dtype.type(3.0)
    four5 = dtype.type(4.5)
    usq = u[0] * u[0] + u[1] * u[1] + u[2] * u[2]
    feq = np.empty((N_DIRECTIONS,) + rho.shape, dtype=dtype)
    for i in range(N_DIRECTIONS):
        cz, cy, cx = VELOCITIES[i]
        cu = dtype.type(cz) * u[0] + dtype.type(cy) * u[1] + dtype.type(cx) * u[2]
        feq[i] = (
            dtype.type(WEIGHTS[i])
            * rho
            * (dtype.type(1.0) + three * cu + four5 * cu * cu - one5 * usq)
        )
    return feq


def collide_bgk(f: np.ndarray, omega: float) -> np.ndarray:
    """Apply one BGK collision to distributions ``f`` of shape ``(19,) + S``.

    Returns the post-collision distributions (a new array).
    """
    f = np.asarray(f)
    dtype = f.dtype
    # Explicit sequential reduction: np.sum(axis=0) switches between
    # pairwise and sequential strategies depending on the trailing shape,
    # which would break the bit-exactness contract between blocking
    # schedules that compute different-sized regions of the same cells.
    rho = f[0].copy()
    for i in range(1, N_DIRECTIONS):
        rho += f[i]
    u = np.zeros((3,) + f.shape[1:], dtype=dtype)
    for i in range(N_DIRECTIONS):
        cz, cy, cx = VELOCITIES[i]
        if cz:
            u[0] += dtype.type(cz) * f[i]
        if cy:
            u[1] += dtype.type(cy) * f[i]
        if cx:
            u[2] += dtype.type(cx) * f[i]
    inv_rho = dtype.type(1.0) / rho
    u *= inv_rho
    feq = equilibrium(rho, u)
    w = dtype.type(omega)
    return f + w * (feq - f)
