"""Wall-clock timing of every executor on the NumPy substrate (X1).

Absolute Python timings do not reproduce hardware MU/s — the substrate is a
NumPy interpreter, not a Core i7's SSE pipeline (see DESIGN.md's
substitution table).  What must and does hold:

* all executors produce bit-identical results,
* external-traffic ratios follow the paper (3.5D moves ~1/dim_T of naive),
* per-scheme overhead ordering is sane (blocked executors pay bounded
  bookkeeping overhead on top of naive's vectorized sweeps).
"""

import numpy as np
import pytest

from repro.core import (
    Blocking3D,
    Blocking4D,
    Blocking25D,
    Blocking35D,
    run_naive,
)
from repro.stencils import Field3D, SevenPointStencil, TwentySevenPointStencil

from .conftest import record

KERNEL = SevenPointStencil()
FIELD = Field3D.random((32, 96, 96), dtype=np.float32, seed=7)
STEPS = 4
_REF = run_naive(KERNEL, FIELD, STEPS)


def _mups(benchmark):
    n = FIELD.nz * FIELD.ny * FIELD.nx * STEPS
    return n / benchmark.stats["mean"] / 1e6


def test_naive_sweep(benchmark):
    out = benchmark(run_naive, KERNEL, FIELD, STEPS)
    assert np.array_equal(out.data, _REF.data)
    record(benchmark, mups=_mups(benchmark))


def test_3d_blocking(benchmark):
    ex = Blocking3D(KERNEL, 32, 48, 48)
    out = benchmark(ex.run, FIELD, STEPS)
    assert np.array_equal(out.data, _REF.data)
    record(benchmark, mups=_mups(benchmark))


def test_25d_blocking(benchmark):
    ex = Blocking25D(KERNEL, 48, 48)
    out = benchmark(ex.run, FIELD, STEPS)
    assert np.array_equal(out.data, _REF.data)
    record(benchmark, mups=_mups(benchmark))


def test_4d_blocking(benchmark):
    ex = Blocking4D(KERNEL, 2, 32, 48, 48)
    out = benchmark(ex.run, FIELD, STEPS)
    assert np.array_equal(out.data, _REF.data)
    record(benchmark, mups=_mups(benchmark))


def test_35d_blocking(benchmark):
    ex = Blocking35D(KERNEL, 2, 48, 48)
    out = benchmark(ex.run, FIELD, STEPS)
    assert np.array_equal(out.data, _REF.data)
    record(benchmark, mups=_mups(benchmark))


def test_35d_sequential_variant(benchmark):
    ex = Blocking35D(KERNEL, 2, 48, 48, concurrent=False)
    out = benchmark(ex.run, FIELD, STEPS)
    assert np.array_equal(out.data, _REF.data)
    record(benchmark, mups=_mups(benchmark))


def test_27pt_35d(benchmark):
    kernel = TwentySevenPointStencil()
    field = Field3D.random((16, 64, 64), dtype=np.float32, seed=8)
    ref = run_naive(kernel, field, 2)
    ex = Blocking35D(kernel, 2, 40, 40)
    out = benchmark(ex.run, field, 2)
    assert np.array_equal(out.data, ref.data)
