"""Distributed-memory layer: slab decomposition + simulated message passing."""

from .comm import CommStats, SimComm, transfer_time
from .decompose import Slab, decompose_z
from .runner import DistributedJacobi

__all__ = [
    "SimComm",
    "CommStats",
    "transfer_time",
    "Slab",
    "decompose_z",
    "DistributedJacobi",
]
