"""Tests for the finite-difference stencil builders: convergence orders."""

import numpy as np
import pytest

from repro.core import run_3_5d, run_naive, run_naive_periodic
from repro.stencils import (
    Field3D,
    heat_stencil,
    laplacian_coefficients,
    laplacian_stencil,
    stable_dt_factor,
)


class TestCoefficients:
    def test_order2(self):
        center, side = laplacian_coefficients(2)
        assert center == -2.0
        assert side == [1.0]

    def test_order4(self):
        center, side = laplacian_coefficients(4)
        assert center == pytest.approx(-5 / 2)
        assert side == pytest.approx([4 / 3, -1 / 12])

    def test_coefficients_sum_to_zero(self):
        """A Laplacian annihilates constants: taps sum to 0."""
        for order in (2, 4, 6, 8):
            center, side = laplacian_coefficients(order)
            assert center + 2 * sum(side) == pytest.approx(0.0, abs=1e-14)

    def test_second_moment_normalized(self):
        """The m2/2! = 1 normalization that makes the stencil a d2/dx2."""
        for order in (2, 4, 6, 8):
            _, side = laplacian_coefficients(order)
            m2 = 2 * sum(c * k * k for k, c in enumerate(side, 1))
            assert m2 == pytest.approx(2.0, abs=1e-12)

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            laplacian_coefficients(3)

    def test_radius_matches_order(self):
        for order in (2, 4, 6, 8):
            assert laplacian_stencil(order).radius == order // 2


class TestConvergenceOrder:
    """The headline numerics check: observed order matches the design order."""

    def laplacian_error(self, order: int, n: int) -> float:
        dx = 2 * np.pi / n
        lap = laplacian_stencil(order, dx=dx)
        x = 2 * np.pi * np.arange(n) / n
        f = np.broadcast_to(np.sin(x), (n, n, n)).copy()
        out = run_naive_periodic(lap, Field3D.from_array(f), 1)
        exact = -np.sin(x)
        return float(np.abs(out.data[0, n // 2, n // 2] - exact).max())

    @pytest.mark.parametrize("order", [2, 4, 6])
    def test_observed_order(self, order):
        e_coarse = self.laplacian_error(order, 16)
        e_fine = self.laplacian_error(order, 32)
        observed = np.log2(e_coarse / e_fine)
        assert observed == pytest.approx(order, abs=0.3)

    def test_higher_order_is_more_accurate(self):
        errs = [self.laplacian_error(order, 16) for order in (2, 4, 6)]
        assert errs[0] > errs[1] > errs[2]


class TestHeatStencil:
    def test_conserves_mass_on_torus(self):
        k = heat_stencil(order=4, diffusivity=1.0, dt=0.05)
        f = Field3D.random((10, 10, 10), seed=0)
        out = run_naive_periodic(k, f, 8)
        assert out.data.sum(dtype=np.float64) == pytest.approx(
            f.data.sum(dtype=np.float64), rel=1e-12
        )

    def test_stable_below_bound(self):
        for order in (2, 4, 6):
            bound = stable_dt_factor(order)
            k = heat_stencil(order, diffusivity=1.0, dt=0.95 * bound)
            f = Field3D.random((8, 8, 8), seed=1)
            out = run_naive_periodic(k, f, 40)
            assert np.abs(out.data).max() <= np.abs(f.data).max() + 1e-9

    def test_unstable_above_bound(self):
        bound = stable_dt_factor(2)
        k = heat_stencil(2, diffusivity=1.0, dt=1.3 * bound)
        # seed the most unstable (checkerboard) mode
        n = 8
        z, y, x = np.meshgrid(*(np.arange(n),) * 3, indexing="ij")
        f = Field3D.from_array(((-1.0) ** (z + y + x)) * 0.01)
        out = run_naive_periodic(k, f, 30)
        assert np.abs(out.data).max() > 1.0

    def test_order2_equals_seven_point(self):
        from repro.stencils import SevenPointStencil

        beta = 0.1
        k_fd = heat_stencil(order=2, diffusivity=1.0, dt=beta)
        k_7p = SevenPointStencil(alpha=1 - 6 * beta, beta=beta)
        f = Field3D.random((8, 8, 8), seed=2)
        a = run_naive(k_fd, f, 3)
        b = run_naive(k_7p, f, 3)
        np.testing.assert_allclose(a.data, b.data, rtol=1e-12)


class TestHighOrderBlocking:
    """Radius-2 and radius-3 FD kernels through the full 3.5D machinery."""

    @pytest.mark.parametrize("order", [4, 6])
    def test_35d_bit_exact(self, order):
        k = heat_stencil(order, diffusivity=1.0, dt=0.5 * stable_dt_factor(order))
        r = k.radius
        n = 8 * r + 6
        f = Field3D.random((n, n, n), seed=order)
        ref = run_naive(k, f, 4)
        out = run_3_5d(k, f, 4, 2, n - 2, n - 4, validate=True)
        assert np.array_equal(out.data, ref.data)

    def test_order4_distributed(self):
        from repro.distributed import DistributedJacobi

        k = heat_stencil(4, diffusivity=1.0, dt=0.5 * stable_dt_factor(4))
        f = Field3D.random((28, 14, 14), seed=9)
        ref = run_naive(k, f, 4)
        out, _ = DistributedJacobi(k, 2, dim_t=2).run(f, 4)
        assert np.array_equal(out.data, ref.data)
