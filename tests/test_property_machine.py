"""Property-based tests for the machine simulators against reference models."""

from collections import OrderedDict

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gpu import transactions_for_warp
from repro.machine import Cache, Tlb


class ReferenceLru:
    """A trivially-correct fully-associative LRU for cross-checking."""

    def __init__(self, capacity_lines: int) -> None:
        self.capacity = capacity_lines
        self.lines: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def access(self, lineno: int) -> bool:
        if lineno in self.lines:
            self.hits += 1
            self.lines.move_to_end(lineno)
            return True
        self.misses += 1
        if len(self.lines) >= self.capacity:
            self.lines.popitem(last=False)
        self.lines[lineno] = None
        return False


@settings(max_examples=40, deadline=None)
@given(
    n_lines=st.integers(2, 16),
    trace=st.lists(st.integers(0, 31), min_size=1, max_size=300),
)
def test_fully_associative_cache_matches_reference(n_lines, trace):
    """With one set (assoc = capacity), Cache must equal the reference LRU."""
    cache = Cache(n_lines * 64, line=64, assoc=n_lines)
    ref = ReferenceLru(n_lines)
    for lineno in trace:
        assert cache.access_line(lineno) == ref.access(lineno)
    assert cache.stats.hits == ref.hits
    assert cache.stats.misses == ref.misses


@settings(max_examples=40, deadline=None)
@given(
    sets=st.integers(1, 8),
    assoc=st.integers(1, 8),
    trace=st.lists(st.integers(0, 63), min_size=1, max_size=200),
)
def test_set_associative_cache_decomposes_into_per_set_lrus(sets, assoc, trace):
    """A set-associative cache is exactly `sets` independent LRUs."""
    cache = Cache(sets * assoc * 64, line=64, assoc=assoc)
    refs = [ReferenceLru(assoc) for _ in range(sets)]
    for lineno in trace:
        expected = refs[lineno % sets].access(lineno // sets)
        assert cache.access_line(lineno) == expected


@settings(max_examples=40, deadline=None)
@given(trace=st.lists(st.integers(0, 200), min_size=1, max_size=200))
def test_bigger_cache_never_misses_more(trace):
    """LRU inclusion: doubling capacity cannot increase misses."""
    small = Cache(8 * 64, 64, assoc=8)
    big = Cache(16 * 64, 64, assoc=16)
    for lineno in trace:
        small.access_line(lineno)
        big.access_line(lineno)
    assert big.stats.misses <= small.stats.misses


@settings(max_examples=40, deadline=None)
@given(
    entries=st.integers(1, 32),
    trace=st.lists(st.integers(0, 1 << 20), min_size=1, max_size=200),
)
def test_tlb_matches_reference_lru(entries, trace):
    tlb = Tlb(entries=entries, page_size=4096)
    ref = ReferenceLru(entries)
    for addr in trace:
        assert tlb.access(addr) == ref.access(addr // 4096)


@settings(max_examples=60, deadline=None)
@given(
    addrs=st.lists(st.integers(0, 1 << 16), min_size=1, max_size=32),
    segment=st.sampled_from([32, 64, 128]),
)
def test_coalescing_transaction_bounds(addrs, segment):
    """1 <= transactions <= lanes; union of touched segments is exact."""
    n = transactions_for_warp(addrs, segment)
    assert 1 <= n <= len(addrs)
    assert n == len({a // segment for a in addrs})


@settings(max_examples=30, deadline=None)
@given(
    base=st.integers(0, 1 << 12),
    lanes=st.integers(1, 32),
    elem=st.sampled_from([4, 8]),
)
def test_unit_stride_transactions_are_minimal(base, lanes, elem):
    """Contiguous access touches ceil(span/segment)+alignment segments."""
    from repro.gpu import warp_row_transactions

    n = warp_row_transactions(base, lanes, elem, stride=1, segment=128)
    span = lanes * elem
    lower = -(-span // 128)
    assert lower <= n <= lower + 1  # +1 for misalignment straddle
