"""Section V-A overestimation examples, analytic vs *measured* on executors.

Regenerates the κ examples (3D: 1.95X/4.62X, 2.5D: 1.2X/1.77X at R = 10%/20%
of the 3D block side) and validates Equation 2 against the traffic counters
of the real 3.5D executor.
"""

import numpy as np
import pytest

from repro.core import (
    TrafficStats,
    kappa_3d,
    kappa_25d,
    kappa_35d,
    run_3_5d,
    wavefront_working_set,
)
from repro.perf import format_table
from repro.stencils import Field3D, SevenPointStencil, interior_points

from .conftest import banner, record


def kappa_examples():
    """The Section V-A worked examples at a 3D block side of 100."""
    cap_over_e = 100**3
    rows = []
    for pct, r in ((10, 10), (20, 20)):
        d25 = round((cap_over_e / (2 * r + 1)) ** 0.5)
        rows.append(
            (
                f"R = {pct}% of 3D side",
                f"{kappa_3d(r, 100):.2f}",
                f"{kappa_25d(r, d25):.2f}",
                f"{kappa_3d(r, 100) / kappa_25d(r, d25):.1f}X",
            )
        )
    return rows


def test_section5a_kappa_examples(benchmark):
    rows = benchmark(kappa_examples)
    print(banner("Section V-A: ghost-layer overestimation examples"))
    print(format_table(["case", "kappa 3D", "kappa 2.5D", "reduction"], rows))
    assert kappa_3d(10, 100) == pytest.approx(1.95, abs=0.02)  # paper: ~1.95X
    assert kappa_3d(20, 100) == pytest.approx(4.62, abs=0.03)  # paper: 4.62X
    cap = 100**3
    assert kappa_25d(10, round((cap / 21) ** 0.5)) == pytest.approx(1.2, abs=0.05)
    assert kappa_25d(20, round((cap / 41) ** 0.5)) == pytest.approx(1.77, abs=0.06)


def test_measured_kappa_matches_equation2(benchmark):
    """Equation 2 vs the executor's actual external traffic."""
    kernel = SevenPointStencil()
    field = Field3D.random((16, 130, 130), dtype=np.float32, seed=0)
    dim_t, tile = 2, 32

    def run():
        t = TrafficStats()
        run_3_5d(kernel, field, dim_t, dim_t, tile, tile, traffic=t)
        return t

    t = benchmark(run)
    esize = field.element_size()
    nz, ny, nx = field.shape
    ideal = nz * ny * nx * esize + interior_points(field.shape, 1) * esize
    measured = t.kappa_measured(ideal)
    analytic = kappa_35d(1, dim_t, tile)
    print(banner("Equation 2 vs measured executor traffic"))
    print(f"kappa analytic (Eq. 2): {analytic:.3f}")
    print(f"kappa measured        : {measured:.3f}")
    assert measured == pytest.approx(analytic, rel=0.15)
    record(benchmark, kappa_analytic=analytic, kappa_measured=measured)


def test_wavefront_working_set_growth(benchmark):
    """Section V-A1: the wavefront working set is O(N^2) — grid dependent."""
    sizes = (16, 32, 64)
    ws = benchmark(lambda: [wavefront_working_set(n, n, n) for n in sizes])
    rows = [(f"{n}^3", w, f"{w / n**2:.2f} N^2") for n, w in zip(sizes, ws)]
    print(banner("Section V-A1: wavefront peak working set"))
    print(format_table(["grid", "resident points", "scaling"], rows))
    # quadratic growth: ~4X per doubling
    assert ws[1] / ws[0] == pytest.approx(4, rel=0.3)
    assert ws[2] / ws[1] == pytest.approx(4, rel=0.3)

