"""Distributed Jacobi driver: slab-decomposed 3.5D blocking over SimComm.

Per blocked round of ``round_t`` time steps:

1. **halo exchange** — every rank sends its ``h = R * round_t`` boundary
   planes to each neighbor and receives the matching ghost planes (one
   ``sendrecv`` pair per internal boundary per round);
2. **local compute** — each rank runs one 3.5D round (or ``round_t`` naive
   sweeps) on its ghost-augmented slab.  By the depth induction of
   :mod:`repro.core.periodic`, every owned plane sits at depth ``>= h``
   from the slab cuts and is therefore exact; stale values nearer the cut
   are discarded;
3. the owned slab is replaced by the augmented result's core.

The naive scheme exchanges width-R halos every time step; temporal blocking
sends the *same total volume* in ``1/dim_T`` as many messages — the
latency-term reduction that distributed temporal blocking exists for
(Wittmann et al., Section II), which `transfer_time` makes quantitative.
"""

from __future__ import annotations

import numpy as np

from ..core.blocking35d import Blocking35D
from ..core.naive import naive_sweep
from ..core.traffic import TrafficStats
from ..obs.metrics import METRICS
from ..obs.trace import TRACE
from ..stencils.base import PlaneKernel
from ..stencils.grid import Field3D, copy_shell
from .comm import CommStats, SimComm
from .decompose import Slab, decompose_z

__all__ = ["DistributedJacobi"]

_TAG_UP = 1  # planes travelling toward higher z
_TAG_DOWN = 2


class DistributedJacobi:
    """Slab-parallel Jacobi with per-round halo exchange.

    Parameters
    ----------
    kernel:
        Any :class:`PlaneKernel`; kernels with per-cell state must
        implement ``restricted_to``.
    n_ranks:
        Number of simulated ranks (Z slabs).
    dim_t:
        Temporal blocking factor; 1 reproduces the classic
        exchange-every-step scheme.
    scheme:
        ``"35d"`` runs a 3.5D round per exchange; ``"naive"`` runs plain
        sweeps (still ``dim_t`` per exchange — set ``dim_t=1`` for the
        classic baseline).
    """

    def __init__(
        self,
        kernel: PlaneKernel,
        n_ranks: int,
        dim_t: int = 1,
        tile_y: int | None = None,
        tile_x: int | None = None,
        scheme: str = "35d",
        loss: float = 0.0,
        corruption: float = 0.0,
        comm_seed: int = 0,
        max_retries: int = 3,
    ) -> None:
        if scheme not in ("35d", "naive"):
            raise ValueError(f"unknown scheme {scheme!r}")
        if dim_t < 1:
            raise ValueError("dim_t must be >= 1")
        self.kernel = kernel
        self.n_ranks = n_ranks
        self.dim_t = dim_t
        self.tile_y = tile_y
        self.tile_x = tile_x
        self.scheme = scheme
        # transport imperfection model, forwarded to SimComm: halo exchanges
        # survive injected/random drops via its ack/retry protocol
        self.loss = loss
        self.corruption = corruption
        self.comm_seed = comm_seed
        self.max_retries = max_retries

    # ------------------------------------------------------------------
    def run(
        self,
        field: Field3D,
        steps: int,
        traffic: TrafficStats | None = None,
    ) -> tuple[Field3D, SimComm]:
        """Advance ``field`` by ``steps``; returns (result, communicator).

        The communicator carries the per-rank message/byte statistics.
        """
        if steps < 0:
            raise ValueError("steps must be >= 0")
        r = self.kernel.radius
        halo = r * self.dim_t
        slabs = decompose_z(field.nz, self.n_ranks, halo)
        comm = SimComm(
            self.n_ranks,
            loss=self.loss,
            corruption=self.corruption,
            seed=self.comm_seed,
            max_retries=self.max_retries,
        )
        local = [field.data[:, s.z0 : s.z1].copy() for s in slabs]

        with TRACE.span("sweep", executor="distributed", steps=steps,
                        ranks=self.n_ranks, scheme=self.scheme):
            remaining = steps
            round_index = 0
            while remaining > 0:
                round_t = min(self.dim_t, remaining)
                with TRACE.span("round", index=round_index, round_t=round_t):
                    self._exchange_and_compute(
                        field, slabs, local, comm, round_t, traffic
                    )
                remaining -= round_t
                round_index += 1

        gathered = Field3D(np.concatenate(local, axis=1))
        assert comm.pending() == 0
        if METRICS.armed:
            METRICS.merge_comm(comm)
        return gathered, comm

    # ------------------------------------------------------------------
    def _exchange_and_compute(
        self,
        field: Field3D,
        slabs: list[Slab],
        local: list[np.ndarray],
        comm: SimComm,
        round_t: int,
        traffic: TrafficStats | None,
    ) -> None:
        r = self.kernel.radius
        h = r * round_t
        # phase A: every rank posts its boundary planes
        with TRACE.span("halo_exchange", phase="send", halo=h):
            for s in slabs:
                if s.hi_neighbor is not None:
                    comm.send(s.rank, s.hi_neighbor, _TAG_UP,
                              local[s.rank][:, -h:])
                if s.lo_neighbor is not None:
                    comm.send(s.rank, s.lo_neighbor, _TAG_DOWN,
                              local[s.rank][:, :h])
        # phase B: every rank assembles its augmented slab and computes
        for s in slabs:
            parts = []
            zlo = s.z0
            with TRACE.span("halo_exchange", phase="recv", rank=s.rank):
                if s.lo_neighbor is not None:
                    parts.append(comm.recv(s.lo_neighbor, s.rank, _TAG_UP))
                    zlo = s.z0 - h
                parts.append(local[s.rank])
                zhi = s.z1
                if s.hi_neighbor is not None:
                    parts.append(comm.recv(s.hi_neighbor, s.rank, _TAG_DOWN))
                    zhi = s.z1 + h
            with TRACE.span("rank_compute", rank=s.rank):
                aug = Field3D(np.concatenate(parts, axis=1))
                out = self._advance_local(aug, zlo, zhi, round_t, traffic)
                lo_off = s.z0 - zlo
                local[s.rank] = out.data[:, lo_off : lo_off + s.owned].copy()

    def _advance_local(
        self,
        aug: Field3D,
        zlo: int,
        zhi: int,
        round_t: int,
        traffic: TrafficStats | None,
    ) -> Field3D:
        kernel = self.kernel.restricted_to(zlo, zhi)
        if self.scheme == "35d":
            ty = self.tile_y or aug.ny
            tx = self.tile_x or aug.nx
            ex = Blocking35D(kernel, dim_t=round_t, tile_y=ty, tile_x=tx)
            return ex.run(aug, round_t, traffic)
        src = aug.copy()
        dst = aug.like()
        copy_shell(src, dst, kernel.radius)
        for _ in range(round_t):
            naive_sweep(kernel, src, dst, traffic)
            src, dst = dst, src
        return src

    # ------------------------------------------------------------------
    def expected_messages(self, nz: int, steps: int) -> int:
        """Messages a full run generates: 2 per internal boundary per round."""
        rounds = -(-steps // self.dim_t)
        return 2 * (self.n_ranks - 1) * rounds

    def expected_bytes(self, field: Field3D, steps: int) -> int:
        """Total exchanged payload: volume is dim_T-independent."""
        r = self.kernel.radius
        per_round_planes = r * self.dim_t
        rounds, rem = divmod(steps, self.dim_t)
        plane = field.ny * field.nx * field.element_size()
        total = 2 * (self.n_ranks - 1) * per_round_planes * plane * rounds
        if rem:
            total += 2 * (self.n_ranks - 1) * r * rem * plane
        return total
