"""Figure 5(b): GPU 7-point-stencil optimization breakdown, model vs paper.

The per-stage mechanisms are also exercised on the GPU model substrate:
coalescing fan-out for the naive kernel, occupancy of the 3.5D launch, and
the per-thread-overhead amortization arithmetic.
"""

import pytest

from repro.gpu import (
    occupancy,
    plan_7pt_gpu,
    warp_row_transactions,
)
from repro.perf import breakdown_7pt_gpu, format_stages

from .conftest import banner, record

PAPER_BARS = [3300, 9234, 9700, 13252, 14345, 17115]


def test_fig5b_breakdown(benchmark):
    stages = benchmark(breakdown_7pt_gpu)
    print()
    print(format_stages(stages, "Figure 5(b): 7pt SP on GTX 285"))
    assert [s.paper_mups for s in stages] == PAPER_BARS
    for s in stages:
        assert s.ratio == pytest.approx(1.0, abs=0.15), s.name
    # the figure's story: 4D is a dead end, 3.5D is the step change
    vals = [s.modeled_mups for s in stages]
    assert vals[2] < 1.15 * vals[1]
    assert vals[3] > 1.3 * vals[2]
    record(benchmark, final_mups=vals[-1])


def test_fig5b_naive_coalescing_waste(benchmark):
    """Naive kernel mechanism: neighbor loads split into extra transactions."""

    def count():
        # a warp reading x-1, x, x+1 neighbors: the shifted loads straddle
        # segment boundaries -> 2 transactions each instead of 1
        aligned = warp_row_transactions(1024, 32, 4, 1)
        shifted = warp_row_transactions(1024 - 4, 32, 4, 1)
        return aligned, shifted

    aligned, shifted = benchmark(count)
    print(f"\naligned row: {aligned} txn; shifted (x-1) row: {shifted} txn")
    assert aligned == 1
    assert shifted == 2


def test_fig5b_35d_occupancy(benchmark):
    """The 3.5D launch keeps enough warps in flight to hide latency."""
    plan = plan_7pt_gpu("sp")
    occ = benchmark(
        occupancy,
        plan.threads_per_block,
        plan.regs_per_thread,
        plan.shared_bytes_per_block,
    )
    print(f"\n3.5D launch occupancy: {occ.occupancy:.2f} "
          f"({occ.warps_per_sm} warps/SM, limited by {occ.limited_by})")
    assert occ.occupancy >= 0.5
    record(benchmark, occupancy=occ.occupancy)


def test_fig5b_amortization_arithmetic(benchmark):
    """More updates per thread -> fewer per-thread overhead instructions.

    The final Figure 5(b) step (14345 -> 17115) comes from each thread
    computing several Y rows.  With ~o overhead instructions per thread and
    u useful ops per update, r updates/thread give u + o/r ops per update.
    """

    def model(overhead_per_thread=8, useful=16):
        return {
            r: useful + overhead_per_thread / r for r in (1, 2, 4, 8)
        }

    costs = benchmark(model)
    speedup_4 = costs[1] / costs[4]
    print(f"\nper-update op cost by updates/thread: "
          + ", ".join(f"{r}: {c:.1f}" for r, c in costs.items()))
    print(f"speedup at 4 updates/thread: {speedup_4:.2f}X (paper step: 1.19X)")
    assert speedup_4 == pytest.approx(17115 / 14345, abs=0.15)
