"""Set-associative LRU cache simulator.

Stands in for the Core i7's cache hierarchy when verifying the paper's
working-set arguments (Section III, Section VII-A: "3 XY slabs of data fit
well in the 8 MB L3 cache even without explicit blocking").  The simulator
operates at cache-line granularity on explicit address streams; the
companion trace generators in :mod:`repro.machine.memory` produce the
streams for stencil sweeps and blocked schedules.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

__all__ = ["CacheStats", "Cache"]


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return 1.0 - self.hit_rate if self.accesses else 0.0


class Cache:
    """A single cache level: ``size`` bytes, ``line`` -byte lines, LRU sets."""

    def __init__(self, size: int, line: int = 64, assoc: int = 8) -> None:
        if size <= 0 or line <= 0 or assoc <= 0:
            raise ValueError("size, line and assoc must be positive")
        if size % (line * assoc):
            raise ValueError(
                f"size {size} must be a multiple of line*assoc = {line * assoc}"
            )
        self.size = size
        self.line = line
        self.assoc = assoc
        self.n_sets = size // (line * assoc)
        # each set is an OrderedDict tag -> dirty flag, LRU first
        self._sets: list[OrderedDict[int, bool]] = [
            OrderedDict() for _ in range(self.n_sets)
        ]
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    def access(self, addr: int, write: bool = False) -> bool:
        """Access one byte address; returns True on hit.

        Write misses allocate (write-allocate policy, as on the Core i7 —
        the read-for-ownership traffic the paper eliminates with streaming
        stores, Section IV-A1).
        """
        lineno = addr // self.line
        s = self._sets[lineno % self.n_sets]
        tag = lineno // self.n_sets
        if tag in s:
            self.stats.hits += 1
            s.move_to_end(tag)
            if write:
                s[tag] = True
            return True
        self.stats.misses += 1
        if len(s) >= self.assoc:
            _, dirty = s.popitem(last=False)
            if dirty:
                self.stats.writebacks += 1
        s[tag] = write
        return False

    def access_line(self, lineno: int, write: bool = False) -> bool:
        """Access by line number directly (used by the trace generators)."""
        return self.access(lineno * self.line, write)

    # ------------------------------------------------------------------
    def resident_lines(self) -> int:
        return sum(len(s) for s in self._sets)

    def contains(self, addr: int) -> bool:
        lineno = addr // self.line
        return (lineno // self.n_sets) in self._sets[lineno % self.n_sets]

    def flush(self) -> int:
        """Evict everything; returns the number of dirty lines written back."""
        dirty = 0
        for s in self._sets:
            dirty += sum(1 for d in s.values() if d)
            s.clear()
        self.stats.writebacks += dirty
        return dirty

    def reset_stats(self) -> None:
        self.stats = CacheStats()
