"""Minimal JSON-schema validator for the obs export formats.

Supports the subset the checked-in schemas use — ``type``, ``required``,
``properties``, ``items``, ``enum``, ``minimum``, ``minItems``,
``additionalProperties`` (schema form) — so CI can validate emitted
trace/metrics files without adding a jsonschema dependency.

CLI::

    python -m repro.obs.schema trace.json metrics.json

Each file is matched to its schema by its top-level ``"schema"`` tag
(``repro.trace/v1`` or ``repro.metrics/v1``); exit 1 on any violation.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Any

__all__ = ["validate", "load_schema", "validate_file", "main"]

_SCHEMA_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "schemas")
_SCHEMA_FILES = {
    "repro.trace/v1": "trace.schema.json",
    "repro.metrics/v1": "metrics.schema.json",
}

_TYPES = {
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
    "object": dict,
    "array": list,
    "null": type(None),
}


def _type_ok(value: Any, tname: str) -> bool:
    py = _TYPES[tname]
    if tname in ("integer", "number") and isinstance(value, bool):
        return False
    return isinstance(value, py)


def validate(instance: Any, schema: dict[str, Any], path: str = "$") -> list[str]:
    """Return a list of human-readable violations (empty = valid)."""
    errors: list[str] = []
    stype = schema.get("type")
    if stype is not None:
        types = stype if isinstance(stype, list) else [stype]
        if not any(_type_ok(instance, t) for t in types):
            errors.append(
                f"{path}: expected {' or '.join(types)}, "
                f"got {type(instance).__name__}")
            return errors
    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not in {schema['enum']}")
    if "minimum" in schema and isinstance(instance, (int, float)) \
            and not isinstance(instance, bool) and instance < schema["minimum"]:
        errors.append(f"{path}: {instance} < minimum {schema['minimum']}")
    if isinstance(instance, dict):
        for key in schema.get("required", []):
            if key not in instance:
                errors.append(f"{path}: missing required key {key!r}")
        props = schema.get("properties", {})
        for key, sub in props.items():
            if key in instance:
                errors.extend(validate(instance[key], sub, f"{path}.{key}"))
        extra = schema.get("additionalProperties")
        if isinstance(extra, dict):
            for key, val in instance.items():
                if key not in props:
                    errors.extend(validate(val, extra, f"{path}.{key}"))
    if isinstance(instance, list):
        if "minItems" in schema and len(instance) < schema["minItems"]:
            errors.append(
                f"{path}: {len(instance)} items < minItems {schema['minItems']}")
        items = schema.get("items")
        if isinstance(items, dict):
            for i, val in enumerate(instance):
                errors.extend(validate(val, items, f"{path}[{i}]"))
    return errors


def load_schema(schema_id: str) -> dict[str, Any]:
    try:
        fname = _SCHEMA_FILES[schema_id]
    except KeyError:
        raise ValueError(f"unknown schema id {schema_id!r}") from None
    with open(os.path.join(_SCHEMA_DIR, fname), encoding="utf-8") as fh:
        return json.load(fh)


def validate_file(path: str) -> list[str]:
    """Validate one emitted JSON file against its self-declared schema."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    if not isinstance(doc, dict) or "schema" not in doc:
        return [f"{path}: no top-level 'schema' tag"]
    try:
        schema = load_schema(doc["schema"])
    except ValueError as exc:
        return [f"{path}: {exc}"]
    return [f"{path}: {err}" for err in validate(doc, schema)]


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv:
        print("usage: python -m repro.obs.schema FILE [FILE ...]",
              file=sys.stderr)
        return 2
    rc = 0
    for path in argv:
        errors = validate_file(path)
        if errors:
            rc = 1
            for err in errors:
                print(f"FAIL {err}")
        else:
            print(f"OK   {path}")
    return rc


if __name__ == "__main__":
    sys.exit(main())
