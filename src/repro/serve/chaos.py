"""Chaos soak for the serve daemon: seeded fault schedules, zero silent loss.

The daemon's contract is stronger than "doesn't crash": every accepted job
must reach a terminal status with an honest verdict, every *completed* job
must be bit-exact against the fault-free naive reference, and every
refused job must carry an explicit reason.  This soak earns that contract
the same way :mod:`repro.resilience.chaos` earns the rank-recovery one —
derive a random-but-reproducible fault schedule from a seed (accept drops,
worker stalls, journal tears, deadline storms, a mid-run hard kill with
restart-and-recover), run a batch of jobs through a real
:class:`~repro.serve.server.ServeCore` under it, and judge the wreckage.

Entry points mirror the distributed soak: :func:`make_serve_case`,
:func:`run_serve_case`, :func:`run_serve_soak`; ``repro chaos --target
serve`` and the serve CI job drive them.
"""

from __future__ import annotations

import shutil
import tempfile
import time
from dataclasses import asdict, dataclass, field

import numpy as np

from ..core.naive import run_naive
from ..resilience.faultinject import FAULTS
from .protocol import JobSpec
from .server import ServeCore, grid_sha256, make_field, make_kernel

__all__ = [
    "SERVE_SCHEDULES",
    "ServeChaosCase",
    "ServeChaosResult",
    "make_serve_case",
    "run_serve_case",
    "run_serve_soak",
]

#: every fault family the serve schedule generator knows how to draw
SERVE_SCHEDULES = ("accept", "stall", "journal", "deadline", "kill")


@dataclass
class ServeChaosCase:
    """One seeded soak iteration: the job mix plus its fault schedule."""

    seed: int
    jobs: int
    grid: int
    steps: int
    dim_t: int
    workers: int
    queue_cap: int
    specs: list[str] = field(default_factory=list)
    #: hard-kill the daemon after this many submissions, then restart on
    #: the same state dir and recover (0 = no kill)
    kill_after: int = 0
    deadline_s: float | None = None

    def describe(self) -> str:
        faults = ", ".join(self.specs) if self.specs else "no injected faults"
        kill = f"; kill after {self.kill_after} submits" if self.kill_after else ""
        return (
            f"seed {self.seed}: {self.jobs} jobs of {self.grid}^3 x "
            f"{self.steps} steps (dim_T={self.dim_t}), {self.workers} "
            f"workers, queue {self.queue_cap}; {faults}{kill}"
        )


@dataclass
class ServeChaosResult:
    """Outcome of one soak iteration."""

    case: ServeChaosCase
    ok: bool
    error: str | None
    submitted: int
    accepted: int
    refused: int
    completed: int
    degraded: int
    failed: int
    shed: int
    non_terminal: int
    hash_mismatches: int
    missing_reasons: int
    #: billing-vs-metering disagreements on the surviving core (the ledger
    #: and the counters are both per-core, so after a kill+restart the
    #: reconciliation covers everything the recovered core executed)
    ledger_mismatches: int
    recovered: int
    resumes: int
    quarantined_records: int
    elapsed_s: float

    def to_dict(self) -> dict:
        doc = asdict(self)
        doc["case"] = asdict(self.case)
        return doc


def make_serve_case(
    seed: int,
    *,
    jobs: int = 12,
    grid: int = 12,
    steps: int = 6,
    dim_t: int = 2,
    workers: int = 2,
    queue_cap: int = 6,
    schedules: tuple[str, ...] = SERVE_SCHEDULES,
) -> ServeChaosCase:
    """Derive a deterministic serve fault schedule from ``seed``."""
    unknown = set(schedules) - set(SERVE_SCHEDULES)
    if unknown:
        raise ValueError(
            f"unknown serve chaos schedule(s) {sorted(unknown)}; "
            f"known: {', '.join(SERVE_SCHEDULES)}"
        )
    rng = np.random.default_rng(seed)
    specs: list[str] = []
    kill_after = 0
    deadline_s: float | None = None
    if "accept" in schedules:
        after = int(rng.integers(0, jobs))
        specs.append("serve.accept" + (f"@{after}" if after else ""))
    if "stall" in schedules:
        times = int(rng.integers(1, 4))
        specs.append(f"serve.stall:{times}")
    if "journal" in schedules:
        # tear a non-commit record: "accepted" is exempt by design (the
        # fsync-before-reply commit point), so aim at progress/terminal
        # events — a torn "done" means the job re-runs on restart, which
        # recovery must absorb bit-exactly
        event = ("done", "requeued", "started")[int(rng.integers(0, 3))]
        specs.append(f"serve.journal={event}")
    if "deadline" in schedules:
        specs.append("serve.deadline")
        deadline_s = 30.0
    if "kill" in schedules:
        kill_after = int(rng.integers(2, max(3, jobs - 1)))
    return ServeChaosCase(
        seed=seed, jobs=jobs, grid=grid, steps=steps, dim_t=dim_t,
        workers=workers, queue_cap=queue_cap, specs=specs,
        kill_after=kill_after, deadline_s=deadline_s,
    )


def _reference_sha(spec: JobSpec, cache: dict) -> str:
    """Fault-free naive result hash for a spec (memoized across jobs)."""
    key = (spec.kernel, spec.grid, spec.steps, spec.precision, spec.seed)
    if key not in cache:
        out = run_naive(make_kernel(spec), make_field(spec), spec.steps)
        cache[key] = grid_sha256(out.data)
    return cache[key]


def _new_core(case: ServeChaosCase, state_dir: str) -> ServeCore:
    core = ServeCore(
        state_dir,
        workers=case.workers,
        queue_cap=case.queue_cap,
        rate=1000.0,
        burst=1000.0,
        tenant_quota=case.jobs + 1,
        fsync=False,  # soak I/O; durability is exercised by the unit tests
    )
    core.start()
    return core


def _wait_all(core: ServeCore, timeout: float) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if all(r.terminal for r in core.jobs()):
            return True
        time.sleep(0.02)
    return False


def run_serve_case(case: ServeChaosCase, *, timeout: float = 60.0) -> ServeChaosResult:
    """One soak iteration: drive a job mix through a core under the schedule.

    Judgement: (a) every accepted job reaches a terminal status — across a
    hard kill + restart when the schedule includes one; (b) every completed
    (done/degraded) job's result hash equals the fault-free naive
    reference; (c) every refused/shed/failed job carries a non-empty
    reason.  Deadline misses and injected accept-drops are *correct*
    outcomes, not failures — the soak fails only on silent loss, hangs, or
    wrong bits.
    """
    rng = np.random.default_rng(case.seed)
    state_dir = tempfile.mkdtemp(prefix="repro-serve-chaos-")
    refs: dict = {}
    refused = 0
    error = None
    t0 = time.perf_counter()
    try:
        with FAULTS.injected(*case.specs):
            core = _new_core(case, state_dir)
            for i in range(case.jobs):
                spec = JobSpec(
                    kernel="7pt",
                    grid=case.grid,
                    steps=case.steps,
                    dim_t=case.dim_t,
                    tile=8,
                    seed=int(rng.integers(0, 3)),
                    priority=int(rng.integers(0, 3)),
                    tenant=f"t{int(rng.integers(0, 2))}",
                    deadline_s=case.deadline_s,
                    verify=False,  # bit-exactness is judged against refs below
                )
                reply = core.submit(spec.to_dict())
                if not reply.get("ok"):
                    refused += 1
                    if not reply.get("reason"):
                        error = f"refusal without a reason: {reply!r}"
                if case.kill_after and i + 1 == case.kill_after:
                    time.sleep(0.05)  # let some work start
                    core.kill()
                    core = _new_core(case, state_dir)
            if not _wait_all(core, timeout):
                error = error or "timeout: accepted jobs never drained"
            core.drain(timeout=timeout)
        records = core.jobs()
        completed = [r for r in records if r.status in ("done", "degraded")]
        hash_mismatches = sum(
            1 for r in completed if r.sha256 != _reference_sha(r.spec, refs)
        )
        missing_reasons = sum(
            1
            for r in records
            if r.status in ("failed", "shed", "cancelled") and not r.reason
        )
        non_terminal = sum(1 for r in records if not r.terminal)
        ledger_bad = core.ledger_reconciliation()
        if ledger_bad and error is None:
            error = "ledger/counter mismatch: " + "; ".join(ledger_bad)
        result = ServeChaosResult(
            case=case,
            ok=(
                error is None
                and non_terminal == 0
                and hash_mismatches == 0
                and missing_reasons == 0
                and not ledger_bad
            ),
            error=error,
            submitted=case.jobs,
            accepted=len(records),
            refused=refused,
            completed=sum(1 for r in records if r.status == "done"),
            degraded=sum(1 for r in records if r.status == "degraded"),
            failed=sum(1 for r in records if r.status == "failed"),
            shed=sum(1 for r in records if r.status == "shed"),
            non_terminal=non_terminal,
            hash_mismatches=hash_mismatches,
            missing_reasons=missing_reasons,
            ledger_mismatches=len(ledger_bad),
            recovered=core.counters["recovered"],
            resumes=core.counters["resumes"],
            quarantined_records=core.replay_info.get("quarantined_records", 0),
            elapsed_s=time.perf_counter() - t0,
        )
    finally:
        shutil.rmtree(state_dir, ignore_errors=True)
    return result


def run_serve_soak(
    seeds,
    *,
    jobs: int = 12,
    grid: int = 12,
    steps: int = 6,
    dim_t: int = 2,
    workers: int = 2,
    queue_cap: int = 6,
    schedules: tuple[str, ...] = SERVE_SCHEDULES,
    timeout: float = 60.0,
) -> list[ServeChaosResult]:
    """One :func:`run_serve_case` per seed; callers inspect ``result.ok``."""
    return [
        run_serve_case(
            make_serve_case(
                seed, jobs=jobs, grid=grid, steps=steps, dim_t=dim_t,
                workers=workers, queue_cap=queue_cap, schedules=schedules,
            ),
            timeout=timeout,
        )
        for seed in seeds
    ]
