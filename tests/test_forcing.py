"""Tests for body-force LBM (Guo forcing) including Poiseuille validation."""

import numpy as np
import pytest

from repro.core import run_3_5d, run_naive, run_naive_periodic
from repro.distributed import DistributedJacobi
from repro.lbm import (
    ForcedLBMKernel,
    Lattice,
    collide_bgk,
    collide_bgk_forced,
    density,
    momentum,
    velocity,
)


class TestForcedCollision:
    def test_zero_force_equals_plain_bgk(self):
        rng = np.random.default_rng(0)
        f = 0.02 + rng.random((19, 4, 4)) * 0.05
        forced = collide_bgk_forced(f, 1.3, (0.0, 0.0, 0.0))
        plain = collide_bgk(f, 1.3)
        np.testing.assert_allclose(forced, plain, rtol=1e-14)

    def test_mass_conserved(self):
        rng = np.random.default_rng(1)
        f = 0.02 + rng.random((19, 4, 4)) * 0.05
        out = collide_bgk_forced(f, 1.2, (1e-4, -2e-4, 3e-4))
        np.testing.assert_allclose(out.sum(axis=0), f.sum(axis=0), rtol=1e-11)

    def test_momentum_gains_force(self):
        """Guo forcing adds exactly F per unit time to the momentum."""
        rng = np.random.default_rng(2)
        f = 0.02 + rng.random((19, 4, 4)) * 0.05
        force = (2e-4, -1e-4, 3e-4)
        out = collide_bgk_forced(f, 1.2, force)
        dm = momentum(out) - momentum(f)
        for a in range(3):
            np.testing.assert_allclose(dm[a], force[a], rtol=1e-6, atol=1e-12)

    def test_shape_independent(self):
        """Same bitwise contract as the unforced collision."""
        rng = np.random.default_rng(3)
        f = 0.02 + rng.random((19, 5, 5)) * 0.05
        full = collide_bgk_forced(f, 1.1, (0, 0, 1e-4))
        cell = collide_bgk_forced(f[:, 2:3, 2:3], 1.1, (0, 0, 1e-4))
        assert np.array_equal(full[:, 2, 2], cell[:, 0, 0])


class TestForcedKernel:
    def test_blocked_matches_naive(self):
        flags = np.zeros((12, 10, 10), dtype=np.uint8)
        flags[0] = 1
        flags[-1] = 1
        lat = Lattice.uniform((12, 10, 10))
        k = ForcedLBMKernel(flags, omega=1.3, force=(0, 0, 5e-6))
        ref = run_naive(k, lat.f, 5)
        out = run_3_5d(k, lat.f, 5, 2, 8, 8, validate=True)
        assert np.array_equal(out.data, ref.data)

    def test_distributed_matches(self):
        flags = np.zeros((18, 8, 8), dtype=np.uint8)
        flags[0] = 1
        flags[-1] = 1
        lat = Lattice.uniform((18, 8, 8))
        k = ForcedLBMKernel(flags, omega=1.2, force=(0, 0, 5e-6))
        ref = run_naive(k, lat.f, 4)
        out, _ = DistributedJacobi(k, 3, dim_t=2).run(lat.f, 4)
        assert np.array_equal(out.data, ref.data)

    def test_periodic_padding_preserves_force(self):
        k = ForcedLBMKernel(np.zeros((6, 6, 6), dtype=np.uint8), force=(0, 0, 1e-5))
        pk = k.padded_for(2, (6, 6, 6))
        assert isinstance(pk, ForcedLBMKernel)
        assert pk.force == k.force

    def test_force_validation(self):
        with pytest.raises(ValueError):
            ForcedLBMKernel(np.zeros((4, 4, 4), dtype=np.uint8), force=(1.0, 2.0))

    def test_ops_accounting(self):
        k = ForcedLBMKernel(np.zeros((4, 4, 4), dtype=np.uint8), force=(0, 0, 0))
        assert k.ops_per_update > 259


class TestPoiseuille:
    """The classic forced-channel validation: parabolic velocity profile."""

    @pytest.fixture(scope="class")
    def steady_channel(self):
        nz, ny, nx = 14, 5, 5
        flags = np.zeros((nz, ny, nx), dtype=np.uint8)
        flags[0] = 1
        flags[-1] = 1
        lat = Lattice.uniform((nz, ny, nx))
        force = 1e-6
        k = ForcedLBMKernel(flags, omega=1.4, force=(0, 0, force))
        state = run_naive_periodic(k, lat.f, 3000)
        return state, force, 1.4

    def test_parabolic_profile(self, steady_channel):
        state, force, omega = steady_channel
        ux = velocity(state)[2].mean(axis=(1, 2))
        nu = (1 / omega - 0.5) / 3
        z = np.arange(14)
        zc, h = 6.5, 12.0  # half-way bounce-back walls at z = 0.5, 12.5
        analytic = force / (2 * nu) * ((h / 2) ** 2 - (z - zc) ** 2)
        fluid = slice(1, 13)
        err = np.abs(ux[fluid] - analytic[fluid]).max() / analytic[fluid].max()
        assert err < 0.01

    def test_profile_symmetric(self, steady_channel):
        state, _, _ = steady_channel
        ux = velocity(state)[2].mean(axis=(1, 2))
        np.testing.assert_allclose(ux[1:13], ux[1:13][::-1], rtol=1e-6)

    def test_peak_at_center(self, steady_channel):
        state, _, _ = steady_channel
        ux = velocity(state)[2].mean(axis=(1, 2))
        assert ux.argmax() in (6, 7)

    def test_transverse_velocities_vanish(self, steady_channel):
        state, _, _ = steady_channel
        u = velocity(state)
        assert np.abs(u[0, 1:13]).max() < 1e-9
        assert np.abs(u[1, 1:13]).max() < 1e-9

    def test_density_uniform(self, steady_channel):
        state, _, _ = steady_channel
        rho = density(state)[1:13]
        np.testing.assert_allclose(rho, 1.0, atol=1e-6)
