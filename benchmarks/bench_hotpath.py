#!/usr/bin/env python
"""Hot-path benchmark: per-backend GUPS and allocation counts.

Runs the 3.5D executor over the 7-point, 27-point and LBM kernels under each
available kernel backend (see :mod:`repro.perf.backends`) and reports

* sustained update throughput (GUPS — giga lattice-site updates per second),
* the number and volume of plane-sized allocations in the steady state,
  measured with :mod:`tracemalloc` after a warm-up sweep,
* the scratch-arena hit statistics for the in-place backends.

The acceptance bar for this layer is that ``numpy-inplace`` reaches at least
1.5x the single-thread GUPS of the reference ``numpy`` backend on the 7-point
kernel at 128^3 (run without ``--quick``), while every backend stays
bit-identical to the naive reference.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py          # full (128^3)
    PYTHONPATH=src python benchmarks/bench_hotpath.py --quick  # CI smoke
"""

from __future__ import annotations

import argparse
import json
import sys
import time
import tracemalloc

import numpy as np

from repro.core import Blocking35D, run_naive
from repro.perf.backends import available_backends, bound_rung, wrap_kernel
from repro.stencils import Field3D, SevenPointStencil, TwentySevenPointStencil

#: allocations at least this large count as "plane-sized" in the steady state
PLANE_BYTES_THRESHOLD = 16 * 1024


def _make_case(name: str, grid: int, steps: int, dim_t: int, tile: int):
    if name == "7pt":
        kernel = SevenPointStencil()
        field = Field3D.random((grid, grid, grid), dtype=np.float32, seed=11)
    elif name == "27pt":
        kernel = TwentySevenPointStencil()
        field = Field3D.random((grid, grid, grid), dtype=np.float32, seed=12)
    elif name == "lbm":
        from repro.lbm import LBMKernel, Lattice

        shape = (grid, grid, grid)
        rng = np.random.default_rng(13)
        lat = Lattice.from_moments(
            (1.0 + 0.02 * rng.random(shape)).astype(np.float32),
            (0.01 * (rng.random((3,) + shape) - 0.5)).astype(np.float32),
        )
        kernel = LBMKernel(lat.flags, omega=1.2)
        field = lat.f
    else:  # pragma: no cover - guarded by argparse choices
        raise ValueError(name)
    return kernel, field, steps, dim_t, tile


def _steady_state_allocs(executor, field, steps: int) -> tuple[int, int]:
    """Allocation behavior of a post-warm-up run.

    Returns ``(net_count, peak_transient_bytes)``: the number of surviving
    plane-sized allocations (should be 0 once every cache is warm, for every
    backend) and the peak of transient allocations above the resting level
    during the run — the churn of per-call temporaries that the in-place
    backends eliminate.
    """
    from repro.stencils.grid import copy_shell

    # Benchmark sweep_round on preallocated src/dst so the (inherent,
    # API-level) field copies of run() don't drown the per-kernel churn.
    src = field.copy()
    dst = field.like()
    copy_shell(src, dst, executor.kernel.radius)
    round_t = min(executor.dim_t, steps)
    executor.sweep_round(src, dst, round_t)  # warm-up: caches, arenas, rings
    tracemalloc.start()
    before = tracemalloc.take_snapshot()
    baseline, _ = tracemalloc.get_traced_memory()
    tracemalloc.reset_peak()
    executor.sweep_round(src, dst, round_t)
    _, peak = tracemalloc.get_traced_memory()
    after = tracemalloc.take_snapshot()
    tracemalloc.stop()
    net_count = 0
    for stat in after.compare_to(before, "lineno"):
        if stat.size_diff > PLANE_BYTES_THRESHOLD and stat.count_diff > 0:
            net_count += stat.count_diff
    return net_count, max(0, peak - baseline)


def bench_case(
    name: str,
    grid: int,
    steps: int,
    dim_t: int,
    tile: int,
    backends: list[str],
    repeats: int,
    check: bool,
    rungs: dict[str, str] | None = None,
) -> dict[str, float]:
    kernel, field, steps, dim_t, tile = _make_case(name, grid, steps, dim_t, tile)
    n_updates = grid**3 * steps
    ref = run_naive(kernel, field, steps) if check else None

    print(f"\n== {name}  grid={grid}^3  steps={steps}  dim_T={dim_t}  tile={tile} ==")
    print(f"{'backend':<16} {'GUPS':>8} {'vs numpy':>9} {'net':>7} "
          f"{'peak KB':>9} {'arena':>12}")
    executors: dict[str, Blocking35D] = {}
    for bname in backends:
        ex = Blocking35D(wrap_kernel(kernel, bname), dim_t, tile, tile)
        if rungs is not None:
            # the ladder rung actually bound — codegen/fused requests serve
            # the fused numpy plan for kernels outside their supported set
            rungs[bname] = bound_rung(ex.kernel)
        out = ex.run(field, steps)  # warm-up + correctness
        if ref is not None and not np.array_equal(out.data, ref.data):
            print(f"{bname:<16} BIT-EXACTNESS FAILURE vs naive reference")
            raise SystemExit(1)
        executors[bname] = ex
    # Interleave the timed repeats across backends so drift in machine speed
    # (noisy neighbors, turbo states) hits every backend alike instead of
    # whichever one happened to own the slow measurement window.
    best = {bname: float("inf") for bname in backends}
    for _ in range(repeats):
        for bname, ex in executors.items():
            best[bname] = min(best[bname], _timed(ex.run, field, steps))
    gups = {bname: n_updates / t / 1e9 for bname, t in best.items()}
    for bname, ex in executors.items():
        net, peak = _steady_state_allocs(ex, field, steps)
        arena = getattr(ex.kernel, "arena", None)
        arena_info = (
            f"{arena.allocations}a/{arena.hits}h" if arena is not None else "-"
        )
        ratio = gups[bname] / gups[backends[0]]
        print(f"{bname:<16} {gups[bname]:>8.4f} {ratio:>8.2f}x {net:>7d} "
              f"{peak / 1024:>9.1f} {arena_info:>12}")
    return gups


def _timed(fn, *args) -> float:
    t0 = time.perf_counter()
    fn(*args)
    return time.perf_counter() - t0


def main(argv: list[str] | None = None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small grids / fewer repeats (CI smoke mode)")
    ap.add_argument("--grid", type=int, default=None,
                    help="override the 7pt/27pt grid side (default 128; 32 quick)")
    ap.add_argument("--repeats", type=int, default=None)
    ap.add_argument("--kernels", nargs="+", default=["7pt", "27pt", "lbm"],
                    choices=["7pt", "27pt", "lbm"])
    ap.add_argument("--backends", nargs="+", default=None,
                    help="backend names (default: all available)")
    ap.add_argument("--no-check", action="store_true",
                    help="skip the naive bit-exactness cross-check")
    ap.add_argument("--json", default=None, metavar="PATH",
                    help="also write machine-readable results to this file")
    args = ap.parse_args(argv)

    grid = args.grid or (32 if args.quick else 128)
    lbm_grid = min(grid, 24 if args.quick else 64)
    repeats = args.repeats or (1 if args.quick else 4)
    backends = args.backends or available_backends()
    if backends[0] != "numpy":
        backends = ["numpy"] + [b for b in backends if b != "numpy"]
    try:
        for bname in backends:
            wrap_kernel(SevenPointStencil(), bname)  # fail fast on bad names
    except Exception as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    results = {}
    bound_rungs: dict[str, dict[str, str]] = {}
    for name in args.kernels:
        if name == "lbm":
            g, steps, dim_t, tile = lbm_grid, 2 if args.quick else 4, 2, lbm_grid
        else:
            g, steps, dim_t, tile = grid, 2 if args.quick else 4, 4, min(grid, 128)
        results[name] = bench_case(
            name, g, steps, dim_t, tile, backends, repeats, not args.no_check,
            rungs=bound_rungs.setdefault(name, {}),
        )

    rc = 0
    verdict = None
    speedup = None
    if "7pt" in results and "numpy-inplace" in results["7pt"]:
        speedup = results["7pt"]["numpy-inplace"] / results["7pt"]["numpy"]
        bar = 1.5
        verdict = "PASS" if speedup >= bar else ("n/a (quick)" if args.quick else "FAIL")
        print(f"\n7pt numpy-inplace vs numpy: {speedup:.2f}x "
              f"(acceptance >= {bar}x at 128^3: {verdict})")
        if not args.quick and speedup < bar:
            rc = 1
    if args.json:
        # One extra metered sweep (outside the timed repeats) joins measured
        # traffic against the Eq. 2 model so CI can watch kappa drift.
        from repro.obs.validate import metered_sweep_metrics

        mbackend = ("numpy-inplace" if "numpy-inplace" in backends
                    else backends[0])
        mkernel, mfield, msteps, mdim_t, mtile = _make_case(
            "7pt", grid, 2 if args.quick else 4, 4, min(grid, 128))
        metrics_block = metered_sweep_metrics(
            wrap_kernel(mkernel, mbackend), mfield, msteps,
            dim_t=mdim_t, tile=mtile,
        )
        metrics_block["kernel"] = "7pt"
        metrics_block["backend"] = mbackend
        metrics_block["bound_rung"] = bound_rungs.get("7pt", {}).get(
            mbackend, mbackend)
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(
                {
                    "benchmark": "hotpath",
                    "grid": grid,
                    "quick": args.quick,
                    "repeats": repeats,
                    "backends": backends,
                    "bound_rungs": bound_rungs,
                    "gups": results,
                    "metrics": metrics_block,
                    "acceptance": {"speedup": speedup, "verdict": verdict},
                },
                fh, indent=2,
            )
            fh.write("\n")
        print(f"wrote {args.json}")
    return rc


if __name__ == "__main__":
    sys.exit(main())
