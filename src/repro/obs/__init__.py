"""Observability layer: span tracer, metrics registry, exporters.

Only the tracer and metrics singletons are imported eagerly — they
depend on nothing outside the stdlib and numpy, so core executors can
import them without cycles.  The exporters (:mod:`repro.obs.export`),
the model-validation join (:mod:`repro.obs.validate`), the schema
checker (:mod:`repro.obs.schema`), the serving telemetry
(:mod:`repro.obs.serving`) and the bench regression differ
(:mod:`repro.obs.regress`) import ``repro.core`` / ``repro.machine`` or
touch the filesystem and must be imported explicitly by their consumers.
"""

from .metrics import METRICS, MetricsRegistry, QuantileSketch
from .trace import TRACE, SpanRecord, SpanTracer, span

__all__ = [
    "METRICS",
    "MetricsRegistry",
    "QuantileSketch",
    "TRACE",
    "SpanRecord",
    "SpanTracer",
    "span",
]
