"""Integration tests: every blocking executor is bit-exact vs the naive sweep.

The paper's schemes reorganize *when* and *where* updates happen but never
change the arithmetic of an individual update, so all results must be
bitwise identical to the reference Jacobi sweep.
"""

import numpy as np
import pytest

from repro.core import (
    Blocking35D,
    run_2_5d,
    run_3_5d,
    run_3d,
    run_4d,
    run_naive,
)
from repro.stencils import (
    Field3D,
    SevenPointStencil,
    TwentySevenPointStencil,
    star_stencil,
)

from .conftest import assert_fields_equal


@pytest.fixture(scope="module")
def field32():
    return Field3D.random((18, 20, 22), dtype=np.float32, seed=101)


@pytest.fixture(scope="module")
def field64():
    return Field3D.random((18, 20, 22), dtype=np.float64, seed=102)


@pytest.fixture(scope="module")
def seven():
    return SevenPointStencil(alpha=0.37, beta=0.105)


class TestNaive:
    def test_zero_steps_is_copy(self, seven, field32):
        out = run_naive(seven, field32, 0)
        assert_fields_equal(out, field32)
        assert not np.shares_memory(out.data, field32.data)

    def test_input_not_modified(self, seven, field32):
        snapshot = field32.copy()
        run_naive(seven, field32, 3)
        assert_fields_equal(field32, snapshot)

    def test_boundary_fixed_over_time(self, seven, field32):
        out = run_naive(seven, field32, 5)
        assert np.array_equal(out.data[:, 0], field32.data[:, 0])
        assert np.array_equal(out.data[:, -1], field32.data[:, -1])
        assert np.array_equal(out.data[:, :, 0], field32.data[:, :, 0])
        assert np.array_equal(out.data[:, :, :, -1], field32.data[:, :, :, -1])

    def test_interior_changes(self, seven, field32):
        out = run_naive(seven, field32, 1)
        assert not np.array_equal(
            out.data[:, 1:-1, 1:-1, 1:-1], field32.data[:, 1:-1, 1:-1, 1:-1]
        )

    def test_matches_direct_numpy_formula(self, seven):
        f = Field3D.random((6, 6, 6), seed=9)
        a = f.data[0]
        expected = f.data.copy()
        expected[0, 1:-1, 1:-1, 1:-1] = seven.alpha * a[1:-1, 1:-1, 1:-1] + seven.beta * (
            a[:-2, 1:-1, 1:-1]
            + a[2:, 1:-1, 1:-1]
            + a[1:-1, :-2, 1:-1]
            + a[1:-1, 2:, 1:-1]
            + a[1:-1, 1:-1, :-2]
            + a[1:-1, 1:-1, 2:]
        )
        out = run_naive(seven, f, 1)
        np.testing.assert_allclose(out.data, expected, rtol=1e-12)

    def test_too_small_grid_rejected(self, seven):
        with pytest.raises(ValueError):
            run_naive(seven, Field3D.random((2, 5, 5), seed=1), 1)

    def test_negative_steps_rejected(self, seven, field32):
        with pytest.raises(ValueError):
            run_naive(seven, field32, -1)


class TestSpatialBlocking:
    @pytest.mark.parametrize("tile", [(6, 7, 8), (18, 20, 22), (5, 5, 5)])
    def test_3d_blocking_matches(self, seven, field32, tile):
        ref = run_naive(seven, field32, 3)
        out = run_3d(seven, field32, 3, *tile)
        assert_fields_equal(out, ref)

    @pytest.mark.parametrize("tile", [(7, 8), (20, 22), (5, 9)])
    def test_25d_blocking_matches(self, seven, field32, tile):
        ref = run_naive(seven, field32, 3)
        out = run_2_5d(seven, field32, 3, *tile)
        assert_fields_equal(out, ref)

    def test_25d_double_precision(self, seven, field64):
        ref = run_naive(seven, field64, 2)
        out = run_2_5d(seven, field64, 2, 9, 11)
        assert_fields_equal(out, ref)


class TestTemporalBlocking:
    @pytest.mark.parametrize("dim_t", [1, 2, 3])
    @pytest.mark.parametrize("concurrent", [True, False])
    def test_35d_matches(self, seven, field32, dim_t, concurrent):
        ref = run_naive(seven, field32, 6)
        out = run_3_5d(
            seven, field32, 6, dim_t, 16, 14, concurrent=concurrent, validate=True
        )
        assert_fields_equal(out, ref)

    @pytest.mark.parametrize("steps", [1, 2, 5, 7])
    def test_35d_remainder_steps(self, seven, field32, steps):
        """steps not divisible by dim_t runs a shorter final round."""
        ref = run_naive(seven, field32, steps)
        out = run_3_5d(seven, field32, steps, 3, 16, 16, validate=True)
        assert_fields_equal(out, ref)

    def test_35d_double_precision(self, seven, field64):
        ref = run_naive(seven, field64, 4)
        out = run_3_5d(seven, field64, 4, 2, 12, 14)
        assert_fields_equal(out, ref)

    def test_35d_single_tile_whole_plane(self, seven, field32):
        ref = run_naive(seven, field32, 4)
        out = run_3_5d(seven, field32, 4, 2, 64, 64)
        assert_fields_equal(out, ref)

    @pytest.mark.parametrize("dim_t", [1, 2])
    def test_4d_matches(self, seven, field32, dim_t):
        ref = run_naive(seven, field32, 4)
        out = run_4d(seven, field32, 4, dim_t, 12, 11, 13)
        assert_fields_equal(out, ref)

    def test_35d_agrees_with_4d_cross_check(self, seven, field64):
        """Two independent space-time schedules must agree bit-for-bit."""
        a = run_3_5d(seven, field64, 6, 3, 18, 18, validate=True)
        b = run_4d(seven, field64, 6, 3, 18, 18, 18)
        assert_fields_equal(a, b)

    def test_27_point(self, field32):
        k = TwentySevenPointStencil()
        ref = run_naive(k, field32, 5)
        out = run_3_5d(k, field32, 5, 2, 14, 12, validate=True)
        assert_fields_equal(out, ref)

    def test_radius2_star(self):
        k = star_stencil(2, center=0.3, arm=0.02)
        f = Field3D.random((16, 17, 18), seed=55)
        ref = run_naive(k, f, 4)
        out = run_3_5d(k, f, 4, 2, 15, 16, validate=True)
        assert_fields_equal(out, ref)

    def test_radius2_sequential(self):
        k = star_stencil(2, center=0.3, arm=0.02)
        f = Field3D.random((14, 15, 16), seed=56)
        ref = run_naive(k, f, 4)
        out = run_3_5d(k, f, 4, 2, 14, 15, concurrent=False, validate=True)
        assert_fields_equal(out, ref)

    def test_executor_reusable_across_fields(self, seven):
        ex = Blocking35D(seven, dim_t=2, tile_y=12, tile_x=12)
        for seed in (1, 2):
            f = Field3D.random((12, 14, 16), seed=seed)
            assert_fields_equal(ex.run(f, 4), run_naive(seven, f, 4))

    def test_multicomponent_kernel_supported(self, seven, field32):
        """ncomp > 1 fields flow through the machinery (LBM's layout)."""
        # duplicate the field into two components computed independently
        class TwoComp(SevenPointStencil):
            ncomp = 2

            def compute_plane(self, out, src, yr, xr, gz=0, gy0=0, gx0=0):
                for c in range(2):
                    sub_out = out[c : c + 1]
                    sub_src = [p[c : c + 1] for p in src]
                    super().compute_plane(sub_out, sub_src, yr, xr, gz, gy0, gx0)

        k = TwoComp()
        f = Field3D(np.concatenate([field32.data, 2 * field32.data]))
        ref = run_naive(k, f, 3)
        out = run_3_5d(k, f, 3, 3, 14, 14, validate=True)
        assert_fields_equal(out, ref)
