"""Ablations of the design choices DESIGN.md calls out.

* **2R+1 vs 2R+2 ring planes** (Section V-C): the extra plane buys
  intra-iteration independence (dim_T x parallelism) for a measured
  capacity cost and no change in traffic or results.
* **tile aspect ratio** (Equation 4's square-is-optimal claim): measured κ
  across shapes of equal area is minimized by the square tile.
* **dim_T sweep** (Equation 3's "minimum dim_T" advice): traffic falls as
  1/dim_T but redundant compute grows with κ — past the compute-bound
  point, larger dim_T only hurts.
* **cache-oblivious vs 3.5D** (Section II positioning): both beat sweep
  order on locality; 3.5D additionally bounds the buffer to Equation 1.
"""

import numpy as np
import pytest

from repro.core import (
    Blocking35D,
    TrafficStats,
    kappa_35d,
    ring_slots,
    run_naive,
    trapezoid_trace,
)
from repro.machine import Cache
from repro.perf import format_table
from repro.stencils import Field3D, SevenPointStencil, interior_points

from .conftest import banner, record

KERNEL = SevenPointStencil()


def test_ring_variant_ablation(benchmark):
    """Sequential (2R+1) vs concurrent (2R+2) rings: capacity vs parallelism."""
    field = Field3D.random((16, 40, 40), dtype=np.float32, seed=0)
    ref = run_naive(KERNEL, field, 4)

    def run_both():
        out = {}
        for concurrent in (False, True):
            t = TrafficStats()
            ex = Blocking35D(KERNEL, 2, 24, 24, concurrent=concurrent)
            res = ex.run(field, 4, t)
            assert np.array_equal(res.data, ref.data)
            out[concurrent] = (ring_slots(1, concurrent), t.total_bytes, t.updates)
        return out

    result = benchmark.pedantic(run_both, rounds=1, iterations=1)
    rows = [
        ("sequential (2R+1)", *result[False], 1),
        ("concurrent (2R+2)", *result[True], "dim_T"),
    ]
    print(banner("Ring-plane ablation (Section V-C)"))
    print(format_table(
        ["variant", "planes/instance", "ext. bytes", "updates", "parallel steps"], rows
    ))
    # identical work and traffic; capacity differs by exactly one plane
    assert result[False][1] == result[True][1]
    assert result[False][2] == result[True][2]
    assert result[True][0] == result[False][0] + 1


def test_tile_aspect_ratio(benchmark):
    """Equal-area tiles: the square minimizes measured κ (Equation 4)."""
    field = Field3D.random((12, 200, 200), dtype=np.float32, seed=1)
    esize = field.element_size()
    ideal = (
        field.nz * field.ny * field.nx * esize
        + interior_points(field.shape, 1) * esize
    )
    shapes = [(36, 36), (24, 54), (18, 72), (12, 108)]

    def sweep():
        out = []
        for ty, tx in shapes:
            t = TrafficStats()
            Blocking35D(KERNEL, 2, ty, tx).run(field, 2, t)
            out.append((f"{ty}x{tx}", t.kappa_measured(ideal), kappa_35d(1, 2, ty, tx)))
        return out

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(banner("Tile aspect-ratio ablation (equal area ~1296)"))
    print(format_table(
        ["tile", "kappa measured", "kappa Eq.2"],
        [(n, f"{m:.3f}", f"{a:.3f}") for n, m, a in rows],
    ))
    analytic = [a for *_, a in rows]
    assert analytic[0] == min(analytic)  # Eq. 4: square minimizes κ exactly
    assert analytic == sorted(analytic)
    measured = [m for _, m, _ in rows]
    # measured values track the formula (boundary tiles and divisibility
    # remainders perturb the middle of the range by a few percent)
    for m, a in zip(measured, analytic):
        assert m == pytest.approx(a, rel=0.2)
    assert measured[-1] > measured[0]  # extreme skew clearly loses
    record(benchmark, square_kappa=measured[0], skewed_kappa=measured[-1])


def test_dim_t_sweep(benchmark):
    """Traffic ~1/dim_T vs compute ~kappa: Equation 3's minimum is the knee."""
    field = Field3D.random((16, 130, 130), dtype=np.float32, seed=2)
    esize = field.element_size()
    ideal_round = (
        field.nz * field.ny * field.nx * esize
        + interior_points(field.shape, 1) * esize
    )

    def sweep():
        out = []
        steps = 12
        for dim_t in (1, 2, 3, 4, 6):
            t = TrafficStats()
            Blocking35D(KERNEL, dim_t, 32, 32).run(field, steps, t)
            rounds = steps / dim_t
            out.append(
                (
                    dim_t,
                    t.total_bytes / (rounds * ideal_round),  # per-round κ
                    t.total_bytes,
                    t.updates / (steps * interior_points(field.shape, 1)),
                )
            )
        return out

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    print(banner("dim_T sweep: traffic falls, redundant compute rises"))
    print(format_table(
        ["dim_T", "kappa/round", "total bytes", "compute inflation"],
        [(d, f"{k:.3f}", b, f"{c:.3f}") for d, k, b, c in rows],
    ))
    totals = [b for _, _, b, _ in rows]
    assert totals == sorted(totals, reverse=True)  # traffic monotone down
    inflations = [c for *_, c in rows]
    assert inflations == sorted(inflations)  # compute monotone up
    record(benchmark, bytes_dt1=totals[0], bytes_dt6=totals[-1])


def test_cache_oblivious_vs_sweep_locality(benchmark):
    """Plane-reuse locality: cache-oblivious order ≫ sweep order."""
    nz, steps = 128, 32

    def hit_rates():
        def run(order):
            cache = Cache(32 * 64, line=64, assoc=32)
            for t, z in order:
                for dz in (-1, 0, 1):
                    cache.access_line((t % 2) * nz + z + dz)
                cache.access_line(((t + 1) % 2) * nz + z, write=True)
            return cache.stats.hit_rate

        co = run(trapezoid_trace(nz, steps))
        sweep = run((t, z) for t in range(steps) for z in range(1, nz - 1))
        return co, sweep

    co, sweep = benchmark.pedantic(hit_rates, rounds=1, iterations=1)
    print(f"\nplane-cache hit rate: cache-oblivious {co:.3f} vs sweep {sweep:.3f}")
    assert co > sweep + 0.2
    record(benchmark, co_hit_rate=co, sweep_hit_rate=sweep)
