"""Performance analysis reproducing the paper's tables and figures."""

from .backends import (
    Backend,
    BackendUnavailableError,
    InplaceKernel,
    available_backends,
    backend_names,
    default_backend_name,
    get_backend,
    register_backend,
    wrap_kernel,
)
from .breakdown import (
    MeasuredPhase,
    Stage,
    breakdown_7pt_gpu,
    breakdown_lbm_cpu,
    measured_breakdown,
    measured_phases,
)
from .calibration import CPU_CAL, GPU_CAL, CpuCalibration, GpuCalibration
from .comparisons import Comparison, section_viid_comparisons
from .kernels import KERNELS, LBM_D3Q19, SEVEN_POINT, TWENTY_SEVEN_POINT, KernelModel
from .model import (
    SCHEMES,
    PerfEstimate,
    predict_7pt_cpu,
    predict_7pt_gpu,
    predict_lbm_cpu,
    predict_lbm_gpu,
)
from .report import format_comparisons, format_phases, format_stages, format_table

__all__ = [
    "KernelModel",
    "SEVEN_POINT",
    "TWENTY_SEVEN_POINT",
    "LBM_D3Q19",
    "KERNELS",
    "CpuCalibration",
    "GpuCalibration",
    "CPU_CAL",
    "GPU_CAL",
    "PerfEstimate",
    "SCHEMES",
    "predict_7pt_cpu",
    "predict_lbm_cpu",
    "predict_7pt_gpu",
    "predict_lbm_gpu",
    "Stage",
    "breakdown_lbm_cpu",
    "breakdown_7pt_gpu",
    "MeasuredPhase",
    "measured_phases",
    "measured_breakdown",
    "format_phases",
    "Comparison",
    "section_viid_comparisons",
    "format_table",
    "format_stages",
    "format_comparisons",
    "Backend",
    "BackendUnavailableError",
    "InplaceKernel",
    "available_backends",
    "backend_names",
    "default_backend_name",
    "get_backend",
    "register_backend",
    "wrap_kernel",
]
