"""Shared helpers for the benchmark harness.

Every bench regenerates one paper artifact (table or figure): it prints the
paper-vs-reproduced numbers (run with ``-s`` to see them inline), stores the
key values in ``benchmark.extra_info`` for the JSON report, and asserts the
reproduction tolerances so a regression fails loudly.
"""

from __future__ import annotations


def record(benchmark, **values) -> None:
    """Stash reproduction numbers in the benchmark's extra_info."""
    for key, val in values.items():
        benchmark.extra_info[key] = val


def banner(title: str) -> str:
    line = "=" * len(title)
    return f"\n{line}\n{title}\n{line}"
