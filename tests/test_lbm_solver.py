"""Integration tests: LBM solvers, physics invariants, blocking equivalence."""

import numpy as np
import pytest

from repro.core import TrafficStats
from repro.lbm import (
    LBMKernel,
    Lattice,
    channel_with_sphere,
    density,
    kinetic_energy,
    run_lbm,
    run_lbm_35d,
    run_lbm_temporal_only,
    solid_walls,
    stream_pull,
    stream_push,
    total_mass,
    velocity,
)


def perturbed_lattice(shape, flags=None, seed=0, amp=0.05, dtype=np.float64):
    rng = np.random.default_rng(seed)
    rho = (1.0 + amp * rng.random(shape)).astype(dtype)
    u = (0.4 * amp * (rng.random((3,) + shape) - 0.5)).astype(dtype)
    lat = Lattice.from_moments(rho, u, flags)
    return lat


class TestSolverEquivalence:
    """All schedules drive the same kernel -> bit-identical lattices."""

    def test_35d_matches_naive(self):
        lat = perturbed_lattice((10, 12, 14))
        ref = run_lbm(lat, 5, omega=1.2)
        out = run_lbm_35d(lat, 5, dim_t=2, tile=(10, 11), omega=1.2, validate=True)
        assert np.array_equal(out.f.data, ref.f.data)

    def test_35d_with_obstacles_matches_naive(self):
        flags = channel_with_sphere((10, 12, 14), 2.0)
        lat = perturbed_lattice((10, 12, 14), flags, seed=1)
        ref = run_lbm(lat, 4, omega=1.5)
        out = run_lbm_35d(lat, 4, dim_t=2, tile=(9, 10), omega=1.5, validate=True)
        assert np.array_equal(out.f.data, ref.f.data)

    def test_temporal_only_matches_naive(self):
        lat = perturbed_lattice((8, 10, 10), seed=2)
        ref = run_lbm(lat, 6, omega=0.9)
        out = run_lbm_temporal_only(lat, 6, dim_t=3, omega=0.9)
        assert np.array_equal(out.f.data, ref.f.data)

    def test_paper_dim_t_3_sp(self):
        lat = perturbed_lattice((8, 70, 70), seed=3, dtype=np.float32)
        ref = run_lbm(lat, 3, omega=1.1)
        # the paper's SP config: dim_T=3, dim_X=dim_Y=64
        out = run_lbm_35d(lat, 3, dim_t=3, tile=64, omega=1.1)
        assert np.array_equal(out.f.data, ref.f.data)

    def test_capacity_derived_tile(self):
        lat = perturbed_lattice((8, 70, 70), seed=4, dtype=np.float32)
        ref = run_lbm(lat, 3, omega=1.1)
        out = run_lbm_35d(lat, 3, dim_t=3, capacity=4 << 20, omega=1.1)
        assert np.array_equal(out.f.data, ref.f.data)

    def test_capacity_too_small_raises(self):
        lat = perturbed_lattice((8, 10, 10))
        # the GTX 285's 16 KB shared memory: infeasible (Section VI-B)
        with pytest.raises(ValueError, match="too small"):
            run_lbm_35d(lat, 3, dim_t=6, capacity=16 << 10)

    def test_flags_preserved(self):
        flags = solid_walls((8, 8, 8))
        lat = perturbed_lattice((8, 8, 8), flags, seed=5)
        out = run_lbm(lat, 2)
        assert np.array_equal(out.flags, flags)


class TestPhysicsInvariants:
    def test_equilibrium_is_global_fixed_point(self):
        lat = Lattice.uniform((8, 8, 8), rho=1.3)
        out = run_lbm(lat, 5, omega=1.6)
        np.testing.assert_allclose(out.f.data, lat.f.data, atol=1e-13)

    def test_uniform_flow_is_invariant_in_open_box(self):
        """Uniform rho and u is an exact solution when the shell matches."""
        lat = Lattice.uniform((8, 8, 8), rho=1.0, velocity=(0.0, 0.0, 0.04))
        out = run_lbm(lat, 4, omega=1.0)
        np.testing.assert_allclose(out.f.data, lat.f.data, rtol=1e-12)

    def test_mass_conserved_in_closed_box(self):
        flags = solid_walls((10, 10, 10))
        lat = perturbed_lattice((10, 10, 10), flags, seed=6)
        mask = lat.fluid_mask()
        m0 = total_mass(lat.f, mask)
        out = run_lbm(lat, 12, omega=1.0)
        assert total_mass(out.f, mask) == pytest.approx(m0, rel=1e-12)

    def test_mass_conserved_with_interior_obstacle(self):
        flags = solid_walls((12, 12, 12))
        from repro.lbm import sphere_obstacle

        flags |= sphere_obstacle((12, 12, 12), (6, 6, 6), 2.5)
        lat = perturbed_lattice((12, 12, 12), flags, seed=7)
        mask = lat.fluid_mask()
        m0 = total_mass(lat.f, mask)
        out = run_lbm(lat, 8, omega=1.4)
        assert total_mass(out.f, mask) == pytest.approx(m0, rel=1e-12)

    def test_perturbation_decays(self):
        """Viscous dissipation: kinetic energy of a perturbation decreases."""
        flags = solid_walls((10, 10, 10))
        lat = perturbed_lattice((10, 10, 10), flags, seed=8)
        mask = lat.fluid_mask()
        e0 = kinetic_energy(lat.f, mask)
        out = run_lbm(lat, 20, omega=1.0)
        assert kinetic_energy(out.f, mask) < e0

    def test_density_stays_positive(self):
        flags = channel_with_sphere((10, 10, 16), 2.0)
        lat = perturbed_lattice((10, 10, 16), flags, seed=9)
        out = run_lbm(lat, 10, omega=1.2)
        assert (density(out.f) > 0).all()

    def test_solid_cells_frozen(self):
        flags = solid_walls((8, 8, 8))
        lat = perturbed_lattice((8, 8, 8), flags, seed=10)
        out = run_lbm(lat, 5, omega=1.1)
        solid = ~lat.fluid_mask()
        assert np.array_equal(out.f.data[:, solid], lat.f.data[:, solid])

    def test_lid_driven_cavity_develops_flow(self):
        lat = Lattice.uniform((10, 10, 10))
        lat.set_equilibrium_shell(velocity_top=(0.0, 0.0, 0.08))
        out = run_lbm(lat, 30, omega=1.2)
        u = velocity(out.f)
        # fluid near the lid is dragged along +x
        assert u[2, -2, 5, 5] > 1e-4
        # and some return flow develops lower down (not uniformly positive)
        assert u[2, 1:-1, 1:-1, 1:-1].min() < 0


class TestKernelVsUnfusedReference:
    def test_fused_equals_stream_then_collide(self):
        """The fused pull kernel == stream_pull followed by collide."""
        from repro.lbm import collide_bgk
        from repro.stencils import Field3D

        flags = channel_with_sphere((8, 9, 10), 2.0)
        lat = perturbed_lattice((8, 9, 10), flags, seed=11)
        omega = 1.3
        fused = run_lbm(lat, 1, omega=omega)

        streamed = stream_pull(lat.f, flags)
        collided = Field3D(np.ascontiguousarray(collide_bgk(streamed.data, omega)))
        # interior fluid cells must agree; shell + solid cells are frozen
        interior = np.zeros(lat.shape, dtype=bool)
        interior[1:-1, 1:-1, 1:-1] = True
        fluid_interior = interior & lat.fluid_mask()
        np.testing.assert_allclose(
            fused.f.data[:, fluid_interior],
            collided.data[:, fluid_interior],
            rtol=1e-12,
        )

    def test_pull_equals_push_all_fluid(self):
        lat = perturbed_lattice((8, 8, 8), seed=12)
        flags = np.zeros((8, 8, 8), dtype=np.uint8)
        a = stream_pull(lat.f, flags)
        b = stream_push(lat.f, flags)
        assert np.array_equal(a.data, b.data)


class TestKernelValidation:
    def test_bad_omega(self):
        flags = np.zeros((4, 4, 4), dtype=np.uint8)
        with pytest.raises(ValueError):
            LBMKernel(flags, omega=2.5)
        with pytest.raises(ValueError):
            LBMKernel(flags, omega=0.0)

    def test_bad_flags(self):
        with pytest.raises(ValueError):
            LBMKernel(np.zeros((4, 4), dtype=np.uint8))

    def test_element_size(self):
        k = LBMKernel(np.zeros((4, 4, 4), dtype=np.uint8))
        assert k.element_size(np.float32) == 80
        assert k.element_size(np.float64) == 160
        assert k.ops_per_update == 259


class TestLBMTraffic:
    def test_35d_reduces_traffic_by_dim_t(self):
        lat = perturbed_lattice((12, 34, 34), seed=13, dtype=np.float32)
        t_naive, t_35 = TrafficStats(), TrafficStats()
        run_lbm(lat, 3, traffic=t_naive)
        run_lbm_35d(lat, 3, dim_t=3, tile=34, traffic=t_35)
        assert t_naive.total_bytes / t_35.total_bytes > 2.5
