"""Implementation-efficiency constants, each sourced from a paper statement.

The roofline model predicts limits; real kernels reach a fraction of them.
The paper quantifies every such fraction somewhere in Sections VI-VII, and
this module collects them with their provenance.  Nothing here is fit to
the headline numbers being reproduced — each constant comes from an
*independent* statement (a scaling factor, an overhead percentage), and the
experiment harness then checks that the composed model lands on the
reported throughputs.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["CpuCalibration", "GpuCalibration", "CPU_CAL", "GPU_CAL"]


@dataclass(frozen=True)
class CpuCalibration:
    """Core i7 constants (Sections VI-A, VII-A, VII-C)."""

    #: scalar (pre-SSE) op throughput per core, ops/cycle — the Figure 5a
    #: base bar: 52 MLUPS * 259 ops / (4 cores * 3.2 GHz) ~ 1.05
    scalar_ops_per_cycle: float = 1.05
    #: "we achieve around 3.2X SP SSE scaling" (VII-A) -> 3.2/4
    simd_efficiency_sp: float = 3.2 / 4
    #: "... and 1.65X DP SSE scaling" -> 1.65/2
    simd_efficiency_dp: float = 1.65 / 2
    #: "parallel scalability of around 3.6X on 4-cores" -> 3.6/4
    core_scaling: float = 3.6 / 4
    #: LBM's op mix (no madds, heavy shuffles) reaches ~half the nominal
    #: SSE peak: the Fig 5a SSE bar saturates at 4x the scalar rate
    lbm_simd_scaling_sp: float = 4.0
    lbm_simd_scaling_dp: float = 2.0
    #: "optimizations to increase ILP ... takes performance to the final
    #: 171" (VII-C): 171/157
    lbm_ilp_boost: float = 171 / 157
    #: 7pt 3.5D lands "only 15% off the performance for small inputs"
    #: (VII-A) — ghost recompute (κ~1.02) plus barrier/addressing residue
    blocking_residual_7pt: float = 0.85
    #: LBM "around 20% drop in performance due to the overestimation at
    #: the boundaries" (VII-B); κ=1.21 carries most of it, leave the rest
    blocking_residual_lbm: float = 0.97
    #: large pages "improve performance between 5% and 20%" (Section VI);
    #: the model assumes they are on (no extra TLB penalty)
    tlb_penalty_small_pages: float = 0.88


@dataclass(frozen=True)
class GpuCalibration:
    """GTX 285 constants (Sections VI-A, VII-A, VII-C)."""

    #: naive kernel: 7 scattered reads + 1 write with partial coalescing
    #: waste — Fig 5b base bar (3300 MU/s at 131 GB/s) implies ~40 B/update
    naive_values_per_update: float = 10.0
    #: spatial blocking "brings down the elements read to about one per
    #: element - there is a bandwidth overestimation of 13%" (VII-C)
    spatial_read_overestimation: float = 1.13
    #: the spatially blocked kernel sustains ~60% of achievable bandwidth
    #: (9234 MU/s * 8.5 B = 78 GB/s of 131): shared-memory staging and
    #: synchronization stalls — the GT200-era cost of tiling
    spatial_bw_utilization: float = 0.60
    #: 3.5D bar before ILP work: sync + divergence + index overheads leave
    #: ~75% of the derated compute peak (13252 * 16 * 1.31 / 372G)
    blocked_compute_efficiency: float = 0.75
    #: "loop unrolling ... gives us 14345" (VII-C): 14345/13252
    unroll_boost: float = 14345 / 13252
    #: "making each thread perform more than one update" amortizes
    #: per-thread overheads: 17115/14345
    amortize_boost: float = 17115 / 14345
    #: DP spatial-only kernel reaches ~95% of the derated DP peak
    #: (4600 MU/s * 16 ops / (93G/2))
    dp_compute_efficiency: float = 0.95


CPU_CAL = CpuCalibration()
GPU_CAL = GpuCalibration()
