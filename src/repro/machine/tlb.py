"""TLB simulator: virtual-page translation caching (paper Section III-A).

The LBM kernel's 19+ concurrent streams thrash a small TLB at 4 KB pages;
the paper uses 2 MB large pages, "which improve performance between 5% and
20%" (Section VI).  The simulator makes that mechanism measurable: the same
sweep trace produces orders of magnitude fewer TLB misses with large pages.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

__all__ = ["TlbStats", "Tlb", "PAGE_4K", "PAGE_2M"]

PAGE_4K = 4 << 10
PAGE_2M = 2 << 20


@dataclass
class TlbStats:
    hits: int = 0
    misses: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Tlb:
    """Fully-associative LRU TLB with ``entries`` slots of ``page_size`` pages.

    Nehalem's second-level TLB holds 512 small-page entries; its large-page
    DTLB holds 32.  Defaults model the small-page case.
    """

    def __init__(self, entries: int = 512, page_size: int = PAGE_4K) -> None:
        if entries <= 0 or page_size <= 0:
            raise ValueError("entries and page_size must be positive")
        self.entries = entries
        self.page_size = page_size
        self._slots: OrderedDict[int, None] = OrderedDict()
        self.stats = TlbStats()

    def access(self, addr: int) -> bool:
        """Translate one address; returns True on TLB hit."""
        page = addr // self.page_size
        if page in self._slots:
            self.stats.hits += 1
            self._slots.move_to_end(page)
            return True
        self.stats.misses += 1
        if len(self._slots) >= self.entries:
            self._slots.popitem(last=False)
        self._slots[page] = None
        return False

    def reach(self) -> int:
        """Bytes of address space the TLB can map (entries * page size)."""
        return self.entries * self.page_size

    def reset_stats(self) -> None:
        self.stats = TlbStats()
