"""Empirical auto-tuning: pick blocking parameters by measurement.

The analytic tuner (:mod:`repro.core.tuner`) applies the paper's closed
forms.  The related work the paper compares against (Datta et al.) instead
*searches* the parameter space with measurements; this module provides that
style on top of our traffic counters: run one blocked round of each
candidate configuration on a small probe grid, measure the external traffic
and executed ops, convert both to a roofline time on the target machine,
and rank.

On the paper's configurations the empirical search lands on the same knee
as Equation 3/4 (the test suite checks this agreement) — the two tuners
cross-validate each other.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..stencils.base import PlaneKernel
from ..stencils.grid import Field3D, interior_points
from .blocking35d import Blocking35D
from .params import capacity_bytes_needed
from .traffic import TrafficStats

__all__ = [
    "Candidate",
    "DEFAULT_TUNE_CACHE_MAX_ENTRIES",
    "REPRO_TUNE_CACHE_ENV",
    "REPRO_TUNE_CACHE_MAX_ENV",
    "TuningCache",
    "WallClockCandidate",
    "WallClockResult",
    "autotune_empirical",
    "autotune_wallclock",
    "machine_fingerprint",
    "shape_class",
    "validate_probe_shape",
]

#: environment variable overriding the on-disk tuning-cache location
REPRO_TUNE_CACHE_ENV = "REPRO_TUNE_CACHE"

#: environment variable capping the number of cached tuning entries
REPRO_TUNE_CACHE_MAX_ENV = "REPRO_TUNE_CACHE_MAX_ENTRIES"

#: default entry cap — generous for interactive use, finite for a daemon
DEFAULT_TUNE_CACHE_MAX_ENTRIES = 256


def validate_probe_shape(
    probe_shape: tuple[int, int, int], kernel: PlaneKernel
) -> None:
    """Reject probe grids with no interior for the kernel's radius.

    A radius-R kernel updates only ``[R, n-R)`` of each axis; a probe axis
    of ``2R`` or less therefore has an *empty* interior, which silently
    makes every per-update statistic a division by zero (or, one point
    wider, a grid that is all edge effects and misleads the ranking).
    """
    r = kernel.radius
    if len(probe_shape) != 3:
        raise ValueError(f"probe_shape must be (nz, ny, nx), got {probe_shape!r}")
    if min(probe_shape) <= 2 * r:
        raise ValueError(
            f"probe_shape {probe_shape} has no interior for kernel radius "
            f"{r}: every axis must exceed 2*R = {2 * r} "
            f"(got minimum {min(probe_shape)})"
        )


@dataclass(frozen=True)
class Candidate:
    """One measured configuration, ranked by predicted roofline time."""

    dim_t: int
    tile: int
    bytes_per_update: float
    ops_per_update: float
    predicted_time_per_update: float
    buffer_bytes: int
    fits_capacity: bool


def autotune_empirical(
    kernel: PlaneKernel,
    machine,
    dtype=np.float32,
    probe_shape: tuple[int, int, int] = (12, 96, 96),
    dim_t_candidates: tuple[int, ...] = (1, 2, 3, 4, 6),
    tile_candidates: tuple[int, ...] | None = None,
    capacity: int | None = None,
    precision: str | None = None,
    seed: int = 0,
    backend: str | None = None,
) -> list[Candidate]:
    """Measure candidate (dim_T, tile) configurations; best first.

    Predicted time per update is the roofline
    ``max(bytes / achievable_BW, ops / stencil_ops_rate)`` using *measured*
    bytes and ops per update (so the probe grid's real edge effects and κ
    are included).  Configurations whose Equation-1 buffer exceeds the
    capacity are measured but marked and ranked after fitting ones.

    ``backend`` names a kernel backend from :mod:`repro.perf.backends` to run
    the probe sweeps with (the traffic model is backend-independent, but the
    wall-clock of the search itself benefits from the hot-path backends).
    """
    validate_probe_shape(probe_shape, kernel)
    if precision is None:
        precision = "sp" if np.dtype(dtype).itemsize == 4 else "dp"
    if backend is not None:
        # lazy import: repro.core must not depend on repro.perf at module level
        from ..perf.backends import wrap_kernel

        kernel = wrap_kernel(kernel, backend)
    cap = machine.blocking_capacity if capacity is None else capacity
    esize = kernel.element_size(dtype)
    field = Field3D.random(probe_shape, ncomp=kernel.ncomp, dtype=dtype, seed=seed)
    npts = interior_points(probe_shape, kernel.radius)
    bw = machine.achievable_bandwidth
    ops_rate = machine.stencil_ops(precision)

    if tile_candidates is None:
        tile_candidates = tuple(
            t for t in (16, 24, 32, 48, 64, 96) if t <= min(probe_shape[1:])
        )

    results: list[Candidate] = []
    for dim_t in dim_t_candidates:
        for tile in tile_candidates:
            if tile <= 2 * kernel.radius * dim_t:
                continue
            traffic = TrafficStats()
            try:
                Blocking35D(kernel, dim_t, tile, tile).run(field, dim_t, traffic)
            except ValueError:
                continue
            bpu = traffic.total_bytes / (npts * dim_t)
            opu = traffic.ops / (npts * dim_t)
            time_pu = max(bpu / bw, opu / ops_rate)
            buf = capacity_bytes_needed(esize, kernel.radius, dim_t, tile, tile)
            results.append(
                Candidate(
                    dim_t=dim_t,
                    tile=tile,
                    bytes_per_update=bpu,
                    ops_per_update=opu,
                    predicted_time_per_update=time_pu,
                    buffer_bytes=buf,
                    fits_capacity=buf <= cap,
                )
            )
    if not results:
        raise ValueError("no feasible candidate configurations")
    results.sort(key=lambda c: (not c.fits_capacity, c.predicted_time_per_update))
    return results


# ----------------------------------------------------------------------
# Wall-clock auto-tuning with a persistent on-disk cache
# ----------------------------------------------------------------------


def machine_fingerprint() -> str:
    """Short stable hash identifying the measuring machine + toolchain.

    Cached tuning results are only valid on the host (and library stack)
    that produced them, so cache entries carry this fingerprint and are
    invalidated when it changes.
    """
    try:
        import numba  # noqa: F401

        numba_version = numba.__version__
    except Exception:
        numba_version = "none"
    try:
        # lazy import: repro.core must not depend on repro.perf at module
        # level.  The compiled-kernel cache location is part of the
        # fingerprint so retargeting the codegen cache (or a toolchain
        # change relocating it) invalidates tuning entries that were
        # measured against differently-cached compiled kernels.
        from ..perf.codegen import codegen_cache_dir

        codegen_dir = str(codegen_cache_dir())
    except Exception:  # pragma: no cover - defensive
        codegen_dir = "none"
    blob = "|".join(
        (
            platform.machine(),
            platform.processor() or "",
            platform.python_version(),
            str(os.cpu_count() or 0),
            np.__version__,
            numba_version,
            codegen_dir,
        )
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def shape_class(shape: tuple[int, ...]) -> str:
    """Bucket a grid shape per-axis to the next power of two.

    Wall-clock winners transfer well between nearby sizes, so the cache is
    keyed by this coarse class rather than the exact shape — a 120^3 and a
    128^3 probe share the entry, a 512^3 one does not.
    """
    return "x".join(
        str(1 << max(0, int(n - 1).bit_length())) for n in shape
    )


class TuningCache:
    """Persistent JSON store of wall-clock tuning winners.

    Location: explicit ``path`` argument, else ``$REPRO_TUNE_CACHE``, else
    ``$XDG_CACHE_HOME/repro/tuning.json`` (default ``~/.cache/repro``).
    Entries are keyed by ``kernel|backend|dtype|shape-class`` and carry the
    :func:`machine_fingerprint` of the measuring host; a lookup with a
    different fingerprint is a miss, so stale entries self-invalidate.

    The store is **bounded**: every :meth:`put` stamps a monotonic ``seq``
    and evicts the least-recently-written entries beyond ``max_entries``
    (``$REPRO_TUNE_CACHE_MAX_ENTRIES``, default
    :data:`DEFAULT_TUNE_CACHE_MAX_ENTRIES`), so a long-lived daemon that
    tunes many job shapes cannot grow the file without bound.
    :meth:`prune` applies the same policy on demand (``repro tune
    --prune``).
    """

    def __init__(
        self,
        path: str | os.PathLike | None = None,
        max_entries: int | None = None,
    ) -> None:
        if path is None:
            path = os.environ.get(REPRO_TUNE_CACHE_ENV)
        if path is None:
            base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
                os.path.expanduser("~"), ".cache"
            )
            path = os.path.join(base, "repro", "tuning.json")
        self.path = Path(path)
        if max_entries is None:
            try:
                max_entries = int(
                    os.environ.get(REPRO_TUNE_CACHE_MAX_ENV, "")
                    or DEFAULT_TUNE_CACHE_MAX_ENTRIES
                )
            except ValueError:
                max_entries = DEFAULT_TUNE_CACHE_MAX_ENTRIES
        self.max_entries = max(1, max_entries)

    @staticmethod
    def key(
        kernel: PlaneKernel, backend: str, dtype, shape: tuple[int, ...]
    ) -> str:
        name = type(getattr(kernel, "inner", kernel)).__name__
        return "|".join(
            (name, backend, np.dtype(dtype).name, shape_class(shape))
        )

    def _load(self) -> dict:
        """The cache contents; malformed files are quarantined, never fatal.

        A truncated or corrupt JSON file (a crash mid-write, a bad disk) is
        renamed to ``*.corrupt`` and treated as empty, so a poisoned cache
        can neither kill ``run --tune wallclock`` at startup nor keep
        re-poisoning every later run.
        """
        try:
            with open(self.path, encoding="utf-8") as fh:
                data = json.load(fh)
        except OSError:
            return {}
        except ValueError:
            self._quarantine()
            return {}
        if not isinstance(data, dict):
            self._quarantine()
            return {}
        return data

    def _quarantine(self) -> None:
        # in-function import: core stays free of a module-level resilience
        # dependency (same layering as the FAULTS probe in save())
        from ..resilience.quarantine import quarantine

        # unique .corrupt evidence, count-capped GC of the cache directory
        quarantine(self.path)

    def get(self, key: str, fingerprint: str | None = None) -> dict | None:
        """Return the entry for ``key`` if its fingerprint matches."""
        if fingerprint is None:
            fingerprint = machine_fingerprint()
        entry = self._load().get(key)
        if not isinstance(entry, dict):
            return None
        if entry.get("fingerprint") != fingerprint:
            return None
        # ``seq`` is the LRU bookkeeping stamp, not part of the entry
        return {k: v for k, v in entry.items() if k != "seq"}

    def put(self, key: str, entry: dict) -> None:
        """Insert/replace ``key``; crash-safe via write-to-temp + rename.

        The temp file is flushed and fsynced before the atomic
        ``os.replace``, so a crash at any point leaves either the old
        complete file or the new complete file — never a truncated one.
        (The ``cache.corrupt`` fault site simulates the crash a *non*-atomic
        writer would suffer, for the quarantine tests.)
        """
        from ..resilience.faultinject import FAULTS

        data = self._load()
        entry = dict(entry)
        entry["seq"] = 1 + max(
            (
                int(e.get("seq", 0))
                for e in data.values()
                if isinstance(e, dict)
            ),
            default=0,
        )
        data[key] = entry
        self._evict(data)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        serialized = json.dumps(data, indent=2, sort_keys=True) + "\n"
        if FAULTS.should("cache.corrupt"):
            # simulated crash mid-write: a half-written JSON at the real path
            with open(self.path, "w", encoding="utf-8") as fh:
                fh.write(serialized[: max(1, len(serialized) // 2)])
            return
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(serialized)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)

    def _evict(self, data: dict) -> int:
        """Drop least-recently-written entries beyond ``max_entries``."""
        evicted = 0
        while len(data) > self.max_entries:
            victim = min(
                data,
                key=lambda k: int(data[k].get("seq", 0))
                if isinstance(data[k], dict)
                else -1,
            )
            del data[victim]
            evicted += 1
        return evicted

    def prune(self, max_entries: int | None = None) -> tuple[int, int]:
        """Apply the entry cap now; returns ``(removed, remaining)``.

        ``max_entries`` overrides the configured cap for this call (``repro
        tune --prune --cache-max N``).  A no-op prune leaves the file
        untouched.
        """
        if max_entries is not None:
            self.max_entries = max(1, max_entries)
        data = self._load()
        removed = self._evict(data)
        if removed:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            serialized = json.dumps(data, indent=2, sort_keys=True) + "\n"
            tmp = self.path.with_name(self.path.name + ".tmp")
            with open(tmp, "w", encoding="utf-8") as fh:
                fh.write(serialized)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
        return removed, len(data)

    def clear(self) -> None:
        try:
            self.path.unlink()
        except OSError:
            pass


@dataclass(frozen=True)
class WallClockCandidate:
    """One configuration timed on the probe grid (best-first in results)."""

    dim_t: int
    tile: int
    seconds_per_round: float
    seconds_per_update: float
    buffer_bytes: int
    fits_capacity: bool


@dataclass
class WallClockResult:
    """Outcome of :func:`autotune_wallclock`.

    ``probe_runs`` counts every timed/warmup sweep executed; a warm-cache
    invocation answers from disk with ``probe_runs == 0``.
    """

    best: WallClockCandidate
    candidates: list[WallClockCandidate] = field(default_factory=list)
    probe_runs: int = 0
    from_cache: bool = False
    cache_key: str = ""
    backend: str = ""


def autotune_wallclock(
    kernel: PlaneKernel,
    machine=None,
    dtype=np.float32,
    probe_shape: tuple[int, int, int] = (12, 96, 96),
    dim_t_candidates: tuple[int, ...] = (1, 2, 3, 4, 6),
    tile_candidates: tuple[int, ...] | None = None,
    capacity: int | None = None,
    seed: int = 0,
    backend: str = "fused-numpy",
    repeats: int = 3,
    warmup: int = 1,
    probe_field: Field3D | None = None,
    cache: TuningCache | None = None,
    use_cache: bool = True,
    refresh: bool = False,
) -> WallClockResult:
    """Pick (dim_T, tile) by timing real fused sweeps; persist the winner.

    Unlike :func:`autotune_empirical` (roofline on *modelled* machines) this
    ranks candidates by measured wall-clock on *this* host: each feasible
    configuration runs ``warmup`` untimed rounds then ``repeats`` timed ones
    through the requested backend, and the median seconds-per-round decides.

    Winners are persisted in a :class:`TuningCache` keyed by
    (kernel, backend, dtype, shape-class, machine fingerprint); a repeat
    invocation with a warm cache performs **zero** probe runs
    (``result.from_cache`` is True, ``result.probe_runs == 0``).  Pass
    ``refresh=True`` to force re-measurement, ``use_cache=False`` to bypass
    the cache entirely.

    ``machine``/``capacity`` only gate the Equation-1 capacity flag; with
    neither given every candidate is considered fitting (the measurement
    itself already reflects the real cache hierarchy).
    """
    if probe_field is not None:
        probe_shape = probe_field.shape
    validate_probe_shape(probe_shape, kernel)
    fingerprint = machine_fingerprint()
    if cache is None and use_cache:
        cache = TuningCache()
    key = TuningCache.key(kernel, backend, dtype, probe_shape)

    if use_cache and cache is not None and not refresh:
        entry = cache.get(key, fingerprint)
        if entry is not None:
            best = WallClockCandidate(
                dim_t=int(entry["dim_t"]),
                tile=int(entry["tile"]),
                seconds_per_round=float(entry["seconds_per_round"]),
                seconds_per_update=float(entry["seconds_per_update"]),
                buffer_bytes=int(entry["buffer_bytes"]),
                fits_capacity=bool(entry["fits_capacity"]),
            )
            return WallClockResult(
                best=best,
                candidates=[best],
                probe_runs=0,
                from_cache=True,
                cache_key=key,
                backend=backend,
            )

    # lazy import: repro.core must not depend on repro.perf at module level
    from ..perf.backends import wrap_kernel

    run_kernel = wrap_kernel(kernel, backend)
    if capacity is None and machine is not None:
        capacity = machine.blocking_capacity
    esize = run_kernel.element_size(dtype)
    if probe_field is None:
        probe_field = Field3D.random(
            probe_shape, ncomp=kernel.ncomp, dtype=dtype, seed=seed
        )
    npts = interior_points(probe_shape, kernel.radius)

    if tile_candidates is None:
        tile_candidates = tuple(
            t for t in (16, 24, 32, 48, 64, 96) if t <= min(probe_shape[1:])
        )

    probe_runs = 0
    results: list[WallClockCandidate] = []
    for dim_t in dim_t_candidates:
        for tile in tile_candidates:
            if tile <= 2 * kernel.radius * dim_t:
                continue
            try:
                executor = Blocking35D(run_kernel, dim_t, tile, tile)
                times = []
                for rep in range(warmup + repeats):
                    t0 = time.perf_counter()
                    executor.run(probe_field, dim_t)
                    elapsed = time.perf_counter() - t0
                    probe_runs += 1
                    if rep >= warmup:
                        times.append(elapsed)
            except ValueError:
                continue
            sec = float(np.median(times))
            buf = capacity_bytes_needed(esize, kernel.radius, dim_t, tile, tile)
            results.append(
                WallClockCandidate(
                    dim_t=dim_t,
                    tile=tile,
                    seconds_per_round=sec,
                    seconds_per_update=sec / (npts * dim_t),
                    buffer_bytes=buf,
                    fits_capacity=capacity is None or buf <= capacity,
                )
            )
    if not results:
        raise ValueError("no feasible candidate configurations")
    results.sort(key=lambda c: (not c.fits_capacity, c.seconds_per_update))
    best = results[0]

    if use_cache and cache is not None:
        cache.put(
            key,
            {
                "fingerprint": fingerprint,
                "dim_t": best.dim_t,
                "tile": best.tile,
                "seconds_per_round": best.seconds_per_round,
                "seconds_per_update": best.seconds_per_update,
                "buffer_bytes": best.buffer_bytes,
                "fits_capacity": best.fits_capacity,
                "probe_shape": list(probe_shape),
            },
        )
    return WallClockResult(
        best=best,
        candidates=results,
        probe_runs=probe_runs,
        from_cache=False,
        cache_key=key,
        backend=backend,
    )
