"""Perf-regression tracking: diff BENCH_*.json against committed baselines.

Every benchmark in this repo writes a structured ``BENCH_<name>.json``;
until now nothing compared those numbers across commits, so a 20% p99 or
GUPS regression could merge silently.  ``repro bench diff`` closes the
loop: baselines are *full copies* of known-good BENCH files committed
under ``benchmarks/baselines/``, and a diff walks both documents,
compares the metrics a :class:`MetricRule` matches, and fails CI when a
metric moved the wrong way by more than the rule's noise allowance.

Noise-awareness is two-layered, because shared CI runners jitter:

* a **relative** threshold (default 15%) scaled to the baseline value,
* an **absolute floor** below which a relative excursion is ignored —
  a 2 ms p99 doubling to 4 ms is scheduler noise, not a regression.

Both must be exceeded, in the harmful direction, to fail.  Improvements
are reported but never fail, and ``--update`` refreshes a baseline in
place once a change is understood and intended.

Exit codes follow the CLI contract: 0 clean, 2 usage error (no baseline
to compare against), 4 regression detected.
"""

from __future__ import annotations

import json
import shutil
from dataclasses import dataclass, field
from fnmatch import fnmatch
from pathlib import Path
from typing import Any

__all__ = [
    "DEFAULT_RULES",
    "MetricRule",
    "compare_docs",
    "diff_bench_file",
    "flatten_numeric",
    "format_report",
]

#: diff exit codes (mirrors the repro run 0/2/3/4 contract)
EXIT_OK, EXIT_USAGE, EXIT_REGRESSION = 0, 2, 4


@dataclass
class MetricRule:
    """Which flattened metrics to watch, and what movement is harmful."""

    pattern: str                  # fnmatch over dotted flattened paths
    direction: str                # "higher" or "lower" is better
    rel_tol: float = 0.15         # relative change allowed before failing
    abs_floor: float = 0.0        # ignore deltas smaller than this
    label: str = ""

    def matches(self, path: str) -> bool:
        return fnmatch(path, self.pattern)


#: default watchlist covering the serve and fused BENCH documents
DEFAULT_RULES: list[MetricRule] = [
    MetricRule("latency_p99_s", "lower", 0.15, 0.010, "serve p99 latency"),
    MetricRule("latency_p50_s", "lower", 0.25, 0.010, "serve p50 latency"),
    MetricRule("queue_wait_p99_s", "lower", 0.25, 0.010, "queue-wait p99"),
    MetricRule("service_p99_s", "lower", 0.25, 0.010, "service-time p99"),
    MetricRule("jobs_per_s", "higher", 0.15, 1.0, "serve throughput"),
    MetricRule("gups.*", "higher", 0.15, 0.02, "kernel GUPS"),
    MetricRule("acceptance.fused_numpy_speedup", "higher", 0.15, 0.1,
               "fused speedup"),
    # SDC defense (BENCH_sdc.json): the off tier must stay ~free, full
    # detection must stay exhaustive, spot may sit anywhere >= 95%, and
    # the surgical heal must keep replaying a small fraction of a
    # full-round restart.  Floors are in rate/ratio points, not seconds.
    MetricRule("overhead.off", "lower", 1.0, 0.03, "sdc off-tier overhead"),
    MetricRule("detection.full_rate", "higher", 0.0, 0.0,
               "sdc full detection"),
    MetricRule("detection.spot_rate", "higher", 0.05, 0.05,
               "sdc spot detection"),
    MetricRule("healing.heal_replay_ratio", "lower", 1.0, 0.05,
               "surgical heal cost"),
]


def flatten_numeric(doc: Any, prefix: str = "") -> dict[str, float]:
    """Dotted-path -> value for every int/float leaf of a JSON document."""
    out: dict[str, float] = {}
    if isinstance(doc, dict):
        for key, value in doc.items():
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten_numeric(value, path))
    elif isinstance(doc, bool):
        pass  # bool is an int subclass; verdict flags are not metrics
    elif isinstance(doc, (int, float)):
        out[prefix] = float(doc)
    return out


@dataclass
class MetricVerdict:
    """One compared metric: the numbers and the call."""

    metric: str
    baseline: float | None
    current: float | None
    direction: str
    rel_tol: float
    abs_floor: float
    #: "ok" | "improved" | "regressed" | "missing"
    status: str = "ok"
    delta: float = 0.0
    delta_rel: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        return dict(self.__dict__)


def compare_docs(
    current: dict[str, Any],
    baseline: dict[str, Any],
    rules: list[MetricRule] | None = None,
) -> list[MetricVerdict]:
    """Judge every rule-matched metric of ``current`` against ``baseline``."""
    rules = DEFAULT_RULES if rules is None else rules
    cur = flatten_numeric(current)
    base = flatten_numeric(baseline)
    verdicts: list[MetricVerdict] = []
    paths = sorted(set(cur) | set(base))
    for path in paths:
        rule = next((r for r in rules if r.matches(path)), None)
        if rule is None:
            continue
        b, c = base.get(path), cur.get(path)
        v = MetricVerdict(
            metric=path, baseline=b, current=c,
            direction=rule.direction, rel_tol=rule.rel_tol,
            abs_floor=rule.abs_floor,
        )
        if b is None:
            v.status = "ok"  # new metric: starts accumulating, can't regress
        elif c is None:
            v.status = "missing"  # a watched metric vanished: fail loudly
        else:
            v.delta = c - b
            v.delta_rel = (c - b) / b if b else 0.0
            harmful = v.delta < 0 if rule.direction == "higher" else v.delta > 0
            beyond_rel = abs(v.delta_rel) > rule.rel_tol if b else False
            beyond_abs = abs(v.delta) > rule.abs_floor
            if harmful and beyond_rel and beyond_abs:
                v.status = "regressed"
            elif (not harmful) and beyond_rel and beyond_abs:
                v.status = "improved"
        verdicts.append(v)
    return verdicts


def format_report(
    name: str, verdicts: list[MetricVerdict]
) -> list[str]:
    """Human-readable diff table, worst news first."""
    order = {"regressed": 0, "missing": 1, "improved": 2, "ok": 3}
    marks = {"regressed": "FAIL", "missing": "GONE",
             "improved": "  up", "ok": "  ok"}
    lines = [f"{name}: {len(verdicts)} watched metric(s)"]
    for v in sorted(verdicts, key=lambda v: (order[v.status], v.metric)):
        b = "-" if v.baseline is None else f"{v.baseline:.6g}"
        c = "-" if v.current is None else f"{v.current:.6g}"
        lines.append(
            f"  [{marks[v.status]}] {v.metric}: {b} -> {c} "
            f"({v.delta_rel:+.1%}, {v.direction} is better, "
            f"tol {v.rel_tol:.0%})"
        )
    return lines


def diff_bench_file(
    current_path: str,
    baselines_dir: str,
    *,
    rules: list[MetricRule] | None = None,
    update: bool = False,
) -> tuple[int, list[str], list[MetricVerdict]]:
    """Diff one BENCH file against its committed baseline (by basename).

    Returns ``(exit_code, report_lines, verdicts)`` with the 0/2/4
    contract.  ``update=True`` copies the current file over the baseline
    (creating it on first run) and reports what changed, always exit 0.
    """
    cur_path = Path(current_path)
    base_path = Path(baselines_dir) / cur_path.name
    if not cur_path.exists():
        return EXIT_USAGE, [f"{cur_path}: no such bench result"], []
    current = json.loads(cur_path.read_text())
    if not base_path.exists():
        if update:
            base_path.parent.mkdir(parents=True, exist_ok=True)
            shutil.copyfile(cur_path, base_path)
            return EXIT_OK, [f"{cur_path.name}: baseline created"], []
        return EXIT_USAGE, [
            f"{cur_path.name}: no baseline at {base_path} "
            "(run `repro bench diff --update` to create it)"
        ], []
    baseline = json.loads(base_path.read_text())
    verdicts = compare_docs(current, baseline, rules)
    lines = format_report(cur_path.name, verdicts)
    if update:
        shutil.copyfile(cur_path, base_path)
        lines.append(f"  baseline refreshed from {cur_path}")
        return EXIT_OK, lines, verdicts
    bad = [v for v in verdicts if v.status in ("regressed", "missing")]
    return (EXIT_REGRESSION if bad else EXIT_OK), lines, verdicts
