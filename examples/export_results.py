"""Export the full reproduction dataset as CSV files.

Writes figure4.csv, figure5.csv and comparisons.csv (model values alongside
the paper's reported anchors) into ``results/`` — the machine-readable
counterpart of EXPERIMENTS.md.

Run:  python examples/export_results.py [output_dir]
"""

import pathlib
import sys

from repro.perf.sweep import all_records, to_csv


def main(out_dir: str = "results") -> None:
    out = pathlib.Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    for name, records in all_records().items():
        path = out / f"{name}.csv"
        path.write_text(to_csv(records))
        print(f"wrote {path} ({len(records)} rows)")


if __name__ == "__main__":
    main(*sys.argv[1:2])
