"""No-blocking Jacobi reference sweeps.

This is the paper's baseline ("no blocking" bars in Figure 4): each time step
sweeps the whole grid once, reading the source array and writing the
destination array.  On real hardware the working set of a full sweep exceeds
the last-level cache for the medium/large grids, so every element is fetched
from external memory once per sweep — the traffic accounting here records
exactly that compulsory per-sweep traffic.

The result of :func:`run_naive` is the ground truth every blocking executor
must match bit-for-bit.
"""

from __future__ import annotations

from ..stencils.base import PlaneKernel
from ..stencils.grid import Field3D, copy_shell, interior_points
from .traffic import TrafficStats

__all__ = ["naive_sweep", "run_naive"]


def naive_sweep(
    kernel: PlaneKernel,
    src: Field3D,
    dst: Field3D,
    traffic: TrafficStats | None = None,
) -> None:
    """One Jacobi time step: update every interior plane of ``dst`` from ``src``."""
    r = kernel.radius
    nz, ny, nx = src.shape
    if min(nz, ny, nx) < 2 * r + 1:
        raise ValueError(f"grid {src.shape} too small for radius {r}")
    esize = src.element_size()
    for z in range(r, nz - r):
        planes = [src.plane(z + dz) for dz in range(-r, r + 1)]
        kernel.compute_plane(dst.plane(z), planes, (r, ny - r), (r, nx - r), gz=z)
    if traffic is not None:
        npts = interior_points(src.shape, r)
        # Each sweep streams the source in and the destination out once.
        traffic.read(nz * ny * nx * esize, planes=nz)
        traffic.write(npts * esize, planes=nz - 2 * r)
        traffic.update(npts, kernel.ops_per_update)


def run_naive(
    kernel: PlaneKernel,
    field: Field3D,
    steps: int,
    traffic: TrafficStats | None = None,
) -> Field3D:
    """Advance ``field`` by ``steps`` Jacobi time steps; returns the new field.

    The input field is not modified.
    """
    if steps < 0:
        raise ValueError("steps must be >= 0")
    if steps == 0:
        return field.copy()
    src = field.copy()
    dst = field.like()
    copy_shell(src, dst, kernel.radius)
    for _ in range(steps):
        naive_sweep(kernel, src, dst, traffic)
        src, dst = dst, src
    return src
