"""Ghost-layer overestimation factors (paper Sections V-A and V-C).

Blocking loads ghost layers that are read (and, with temporal blocking,
recomputed) redundantly.  The *overestimation* :math:`\\kappa` is the ratio
of traffic actually moved to the compulsory traffic.  The paper derives:

* 3D blocking (Section V-A2):
  :math:`\\kappa^{3D} = ((1-2R/d_x)(1-2R/d_y)(1-2R/d_z))^{-1}`
* 2.5D blocking (Section V-A3):
  :math:`\\kappa^{2.5D} = ((1-2R/d_x)(1-2R/d_y))^{-1}` — no Z ghosts at all.
* 3.5D blocking (Equation 2):
  :math:`\\kappa^{3.5D} = ((1-2R\\,dim_T/d_x)(1-2R\\,dim_T/d_y))^{-1}`
* 4D blocking: the same with a third factor for Z.

The compute overestimation of a temporal scheme (redundant recomputation of
ghost cells at intermediate time instances) is "similar to" :math:`\\kappa`
per the paper; :func:`compute_overestimation_35d` gives the exact average
over the ``dim_T`` trapezoid instances, which the executors' measured op
counts match.
"""

from __future__ import annotations

import math

__all__ = [
    "kappa_3d",
    "kappa_25d",
    "kappa_35d",
    "kappa_4d",
    "compute_overestimation_35d",
    "compute_overestimation_4d",
    "wavefront_working_set",
]


def _factor(radius: int, dim_t: int, d: int) -> float:
    loss = 2 * radius * dim_t / d
    if loss >= 1:
        raise ValueError(
            f"block dimension {d} cannot host 2*R*dim_T = {2 * radius * dim_t} ghosts"
        )
    return 1.0 - loss


def kappa_3d(radius: int, dx: int, dy: int | None = None, dz: int | None = None) -> float:
    """3D spatial blocking overestimation (Section V-A2)."""
    dy = dx if dy is None else dy
    dz = dx if dz is None else dz
    return 1.0 / (
        _factor(radius, 1, dx) * _factor(radius, 1, dy) * _factor(radius, 1, dz)
    )


def kappa_25d(radius: int, dx: int, dy: int | None = None) -> float:
    """2.5D spatial blocking overestimation (Section V-A3)."""
    dy = dx if dy is None else dy
    return 1.0 / (_factor(radius, 1, dx) * _factor(radius, 1, dy))


def kappa_35d(radius: int, dim_t: int, dx: int, dy: int | None = None) -> float:
    """3.5D blocking overestimation (Equation 2)."""
    dy = dx if dy is None else dy
    return 1.0 / (_factor(radius, dim_t, dx) * _factor(radius, dim_t, dy))


def kappa_4d(
    radius: int,
    dim_t: int,
    dx: int,
    dy: int | None = None,
    dz: int | None = None,
) -> float:
    """4D (3D spatial + temporal) blocking overestimation."""
    dy = dx if dy is None else dy
    dz = dx if dz is None else dz
    return 1.0 / (
        _factor(radius, dim_t, dx)
        * _factor(radius, dim_t, dy)
        * _factor(radius, dim_t, dz)
    )


def _trapezoid_compute_ratio(radius: int, dim_t: int, dims: tuple[int, ...]) -> float:
    """Average redundant-compute ratio over the dim_T trapezoid instances.

    At instance t (1-based) the computed region per cut axis is the core
    expanded by ``R * (dim_t - t)`` on each side; the ratio of total points
    computed to ``dim_t * core`` is the compute overestimation.
    """
    total = 0.0
    for t in range(1, dim_t + 1):
        vol = 1.0
        for d in dims:
            core = d - 2 * radius * dim_t
            if core <= 0:
                raise ValueError(f"dimension {d} leaves no core for dim_t={dim_t}")
            vol *= core + 2 * radius * (dim_t - t)
        total += vol
    core_vol = math.prod(d - 2 * radius * dim_t for d in dims)
    return total / (dim_t * core_vol)


def compute_overestimation_35d(
    radius: int, dim_t: int, dx: int, dy: int | None = None
) -> float:
    """Exact redundant-compute ratio of 3.5D blocking (ghosts in X, Y only)."""
    dy = dx if dy is None else dy
    return _trapezoid_compute_ratio(radius, dim_t, (dx, dy))


def compute_overestimation_4d(
    radius: int,
    dim_t: int,
    dx: int,
    dy: int | None = None,
    dz: int | None = None,
) -> float:
    """Exact redundant-compute ratio of 4D blocking (ghosts in X, Y and Z)."""
    dy = dx if dy is None else dy
    dz = dx if dz is None else dz
    return _trapezoid_compute_ratio(radius, dim_t, (dx, dy, dz))


def wavefront_working_set(nx: int, ny: int, nz: int, radius: int = 1) -> int:
    """Peak resident grid points of diagonal wavefront blocking (Section V-A1).

    The wavefront at distance s keeps all points with
    ``s - R <= |P| <= s + R`` resident; the widest diagonal cross-section of
    the box is O(Nx^2 + Ny^2 + Nz^2).  We return the exact maximum by
    counting lattice points on the fattest anti-diagonal slab.
    """
    best = 0
    for s in range(nx + ny + nz - 2):
        count = 0
        lo, hi = s - radius, s + radius
        # count points with lo <= x+y+z <= hi via per-z 2D diagonal counts
        for z in range(nz):
            for d in range(max(0, lo - z), min(nx + ny - 2, hi - z) + 1):
                # lattice points on x+y=d within [0,nx)x[0,ny)
                x0 = max(0, d - (ny - 1))
                x1 = min(nx - 1, d)
                if x1 >= x0:
                    count += x1 - x0 + 1
        best = max(best, count)
    return best
