"""Property-based tests (hypothesis): blocking invariants over random configs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    axis_tiles,
    build_schedule,
    kappa_35d,
    run_3_5d,
    run_4d,
    run_naive,
)
from repro.stencils import Field3D, SevenPointStencil, star_stencil

SEVEN = SevenPointStencil(alpha=0.45, beta=0.09)


@st.composite
def blocking_configs(draw):
    """Random grid/tile/dim_t configurations that are structurally valid."""
    radius = draw(st.integers(1, 2))
    dim_t = draw(st.integers(1, 3))
    halo = radius * dim_t
    nz = draw(st.integers(2 * radius + 1, 14))
    ny = draw(st.integers(2 * radius + 1, 20))
    nx = draw(st.integers(2 * radius + 1, 20))
    # tile either covers the axis or leaves room for ghosts
    def tile_for(n):
        if draw(st.booleans()):
            return n + draw(st.integers(0, 3))
        lo = 2 * halo + 1
        if lo >= n:
            return n
        return draw(st.integers(lo, n))

    ty, tx = tile_for(ny), tile_for(nx)
    steps = draw(st.integers(1, 5))
    concurrent = draw(st.booleans())
    return radius, dim_t, (nz, ny, nx), (ty, tx), steps, concurrent


@settings(max_examples=40, deadline=None)
@given(cfg=blocking_configs(), seed=st.integers(0, 2**16))
def test_35d_always_matches_naive(cfg, seed):
    radius, dim_t, shape, (ty, tx), steps, concurrent = cfg
    kernel = SEVEN if radius == 1 else star_stencil(radius, center=0.3, arm=0.02)
    field = Field3D.random(shape, dtype=np.float64, seed=seed)
    ref = run_naive(kernel, field, steps)
    out = run_3_5d(
        kernel, field, steps, dim_t, ty, tx, concurrent=concurrent, validate=True
    )
    assert np.array_equal(out.data, ref.data)


@settings(max_examples=25, deadline=None)
@given(cfg=blocking_configs(), seed=st.integers(0, 2**16))
def test_4d_always_matches_naive(cfg, seed):
    radius, dim_t, shape, (ty, tx), steps, _ = cfg
    kernel = SEVEN if radius == 1 else star_stencil(radius, center=0.3, arm=0.02)
    field = Field3D.random(shape, dtype=np.float64, seed=seed)
    ref = run_naive(kernel, field, steps)
    out = run_4d(kernel, field, steps, dim_t, shape[0] + 1, ty, tx)
    assert np.array_equal(out.data, ref.data)


@settings(max_examples=60, deadline=None)
@given(
    nz=st.integers(3, 60),
    radius=st.integers(1, 3),
    dim_t=st.integers(1, 4),
    concurrent=st.booleans(),
)
def test_schedule_always_valid(nz, radius, dim_t, concurrent):
    if nz < 2 * radius + 1:
        nz = 2 * radius + 1
    s = build_schedule(nz, radius, dim_t, concurrent)
    s.validate()
    # every interior plane is stored exactly once
    from repro.core import StepKind

    stores = sorted(st_.z for st_ in s.steps if st_.kind is StepKind.STORE)
    assert stores == list(range(radius, nz - radius))
    loads = sorted(st_.z for st_ in s.steps if st_.kind is StepKind.LOAD)
    assert loads == list(range(nz))


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(8, 300),
    radius=st.integers(1, 2),
    dim_t=st.integers(1, 3),
    tile=st.integers(3, 310),
)
def test_axis_tiles_partition_property(n, radius, dim_t, tile):
    if n <= 2 * radius:
        return
    try:
        tiles = axis_tiles(n, radius, dim_t, tile)
    except ValueError:
        assert tile < n and tile - 2 * radius * dim_t < 1
        return
    # cores tile the interior contiguously
    assert tiles[0].core[0] == radius
    assert tiles[-1].core[1] == n - radius
    for a, b in zip(tiles, tiles[1:]):
        assert a.core[1] == b.core[0]
    for t in tiles:
        assert 0 <= t.extent[0] <= t.core[0] < t.core[1] <= t.extent[1] <= n


@settings(max_examples=50, deadline=None)
@given(
    radius=st.integers(1, 3),
    dim_t=st.integers(1, 5),
    scale=st.integers(3, 40),
)
def test_kappa_bounds_property(radius, dim_t, scale):
    d = 2 * radius * dim_t + scale
    k = kappa_35d(radius, dim_t, d)
    assert k >= 1.0
    # κ shrinks toward 1 as the block grows
    assert kappa_35d(radius, dim_t, 4 * d) < k
