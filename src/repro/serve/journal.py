"""Append-only, crash-safe job journal for the serve daemon.

The journal is the daemon's source of truth across crashes: a job is
"accepted" exactly when its acceptance record is durably appended, and the
zero-loss drain/restart guarantees are phrased against it — every job with
an ``accepted`` record and no terminal record is requeued on restart.

Records are newline-delimited JSON, each stamped with a monotonically
increasing ``seq`` and a CRC-32 of its own canonical payload.  That makes
torn writes (a crash — or the ``serve.journal`` fault site — mid-append)
*detectable*: replay verifies every line, quarantines anything that fails
to parse or checksum into ``<journal>.corrupt`` (appending, so repeated
crashes accumulate evidence rather than overwrite it), truncates a torn
tail back to the last good record, and continues.  A corrupt journal can
cost at most the records that were never durably written; it can never
poison the replay or kill the daemon.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from ..resilience.faultinject import FAULTS
from ..resilience.quarantine import gc_corrupt

__all__ = ["JobJournal", "JournalReplay"]


def _crc(doc: dict) -> int:
    """CRC-32 of the canonical JSON of ``doc`` without its ``crc`` key."""
    body = {k: v for k, v in doc.items() if k != "crc"}
    return zlib.crc32(
        json.dumps(body, sort_keys=True, separators=(",", ":")).encode()
    )


@dataclass
class JournalReplay:
    """What a replay recovered: the good records plus quarantine accounting."""

    records: list[dict] = field(default_factory=list)
    quarantined_records: int = 0
    quarantined_bytes: int = 0
    truncated_tail: bool = False


class JobJournal:
    """Append-only JSONL journal with per-record CRC framing."""

    def __init__(self, path: str | os.PathLike, fsync: bool = True):
        self.path = Path(path)
        self.fsync = fsync
        self._seq = 0
        self._fh = None

    # -- writing -------------------------------------------------------
    def _open(self):
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._fh = open(self.path, "ab")
        return self._fh

    def append(self, event: str, *, durable: bool = True, **fields) -> dict:
        """Append one record; returns the record as written.

        ``durable`` records are fsynced — acceptance and terminal events
        must survive a crash; progress breadcrumbs may opt out.  The
        ``serve.journal`` fault site simulates a crash mid-append: half the
        serialized line lands on disk with no newline and no fsync, which
        is exactly the torn tail replay must quarantine.
        """
        self._seq += 1
        doc = {"seq": self._seq, "ev": event, **fields}
        doc["crc"] = _crc(doc)
        line = json.dumps(doc, sort_keys=True, separators=(",", ":")) + "\n"
        fh = self._open()
        # the tear fault never applies to "accepted": acceptance is the
        # commit point (fsync-before-reply), and loss before it is modeled
        # by the serve.accept site — the client sees the rejection either way
        if event != "accepted" and FAULTS.should("serve.journal", detail=event):
            fh.write(line[: max(1, len(line) // 2)].encode())
            fh.flush()
            return doc
        fh.write(line.encode())
        fh.flush()
        if durable and self.fsync:
            os.fsync(fh.fileno())
        return doc

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    # -- replay --------------------------------------------------------
    def replay(self) -> JournalReplay:
        """Validate every record; quarantine damage; resume the seq counter.

        Replay must run before the first :meth:`append` of a restarted
        daemon: it truncates any torn tail (so new appends start at a
        record boundary) and restores ``seq`` continuity.
        """
        out = JournalReplay()
        self.close()
        try:
            raw = self.path.read_bytes()
        except FileNotFoundError:
            return out
        good_lines: list[bytes] = []
        quarantined: list[bytes] = []
        pos = 0
        while pos < len(raw):
            nl = raw.find(b"\n", pos)
            if nl < 0:
                # unterminated tail: torn by definition
                quarantined.append(raw[pos:])
                out.truncated_tail = True
                break
            line = raw[pos : nl + 1]
            pos = nl + 1
            try:
                doc = json.loads(line.decode())
                if not isinstance(doc, dict) or doc.get("crc") != _crc(doc):
                    raise ValueError("crc mismatch")
            except (ValueError, UnicodeDecodeError):
                quarantined.append(line)
                if pos >= len(raw):
                    out.truncated_tail = True
                continue
            out.records.append(doc)
            good_lines.append(line)
        out.quarantined_records = len(quarantined)
        out.quarantined_bytes = sum(len(q) for q in quarantined)
        if quarantined:
            corrupt = self.path.with_name(self.path.name + ".corrupt")
            with open(corrupt, "ab") as fh:
                fh.writelines(quarantined)
                fh.flush()
                os.fsync(fh.fileno())
            # compact the journal to exactly the validated records, so the
            # damage is quarantined once, not on every later restart
            tmp = self.path.with_name(self.path.name + ".tmp")
            with open(tmp, "wb") as fh:
                fh.writelines(good_lines)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path)
            # cap the .corrupt graveyard (checkpoints quarantine into the
            # same state directory)
            gc_corrupt(self.path.parent)
        self._seq = max(
            (r["seq"] for r in out.records if isinstance(r.get("seq"), int)),
            default=0,
        )
        return out
